// Multiapp: three-application co-execution with run-time SM
// reallocation (ILP+SMRA, Sections 3.2.3–3.2.4). The SMRA controller
// watches per-application IPC and bandwidth every TC cycles, moves SMs
// away from applications that hold cores without converting them into
// throughput, and recycles the cores of finished applications.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	cfg := config.GTX480()
	p := core.MustNew(cfg)
	fmt.Println("calibrating pipeline (one-time)...")
	start := time.Now()
	if err := p.Init(workloads.All()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated in %v\n\n", time.Since(start).Round(time.Second))

	arrival := []string{
		"GUPS", "BLK", "FFT", "3DS", "BP", "LPS",
		"HS", "SAD", "JPEG", "LUD", "BFS2", "SPMV",
	}
	queue, err := p.Queue(arrival)
	if err != nil {
		log.Fatal(err)
	}

	for _, pol := range []sched.Policy{sched.FCFS, sched.ILP, sched.ILPSMRA} {
		rep, err := p.Run(queue, 3, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v (3 concurrent apps):\n", pol)
		for _, g := range rep.Groups {
			fmt.Printf("  %v: %d cycles", g.Apps, g.Cycles)
			if g.SMMoves > 0 {
				fmt.Printf(" (%d SM reallocations)", g.SMMoves)
			}
			fmt.Println()
		}
		fmt.Printf("  device throughput %.1f instr/cycle\n\n", rep.Throughput())
	}
}
