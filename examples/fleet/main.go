// Fleet walkthrough: jobs arrive over simulated time to a small
// heterogeneous fleet of simulated GPUs, and the online dispatcher
// forms co-run groups from the live queue — the paper's machinery
// applied in an arrival-driven setting, across mixed hardware
// generations rather than on a single device model.
//
// The example calibrates two device types on the full workload suite
// (a big GTX480-class device and a small 8-SM one; calibration is
// disk-cached per config name), generates a deterministic Poisson
// arrival stream, runs the mixed roster under FCFS and under the
// placement-aware windowed-ILP policy, and prints both summaries plus
// a per-job latency trace for the ILP run. Note the per-device
// utilization labels: each device reports under its own config name,
// and the dispatcher scored each device's groups with that device
// type's interference matrix.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	start := time.Now()
	var roster []fleet.DeviceSpec
	for _, cfg := range []config.GPUConfig{config.GTX480(), config.Small()} {
		log.Printf("calibrating %s ...", cfg.Name)
		pipe, err := core.LoadOrInit(cfg, workloads.All())
		if err != nil {
			log.Fatal(err)
		}
		roster = append(roster, fleet.DeviceSpec{Pipe: pipe, Count: 1})
	}
	log.Printf("roster ready in %v", time.Since(start).Round(time.Second))

	// 48 jobs drawn uniformly from the suite, Poisson arrivals at one
	// job per 1250 cycles — enough pressure that the 2-device mixed
	// fleet keeps a real queue.
	arrivals, err := fleet.ArrivalConfig{
		Kind: fleet.Poisson, Jobs: 48, Rate: 0.8, Seed: 2018,
	}.Generate(workloads.Names)
	if err != nil {
		log.Fatal(err)
	}

	for _, policy := range []sched.Policy{sched.FCFS, sched.ILPSMRA} {
		f, err := fleet.New(fleet.Config{Devices: roster, NC: 2, Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		res, err := f.Run(arrivals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Summary())

		if policy == sched.ILPSMRA {
			fmt.Println("first jobs of the ILP-SMRA run:")
			for _, j := range res.Jobs[:8] {
				fmt.Printf("  job %2d %-5s (%v) dev%d[%s] arrive=%7d wait=%7d turnaround=%7d\n",
					j.ID, j.Name, j.Class, j.Device, res.DeviceConfig[j.Device], j.Arrival, j.Wait(), j.Turnaround())
			}
			fmt.Println()
		}
	}

	// SLO classes: the same traffic shape, but 30% of the jobs are
	// latency-class with a deadline of twice the slowest device type's
	// mean solo duration (a latency job may land on either generation,
	// so the deadline must be meetable on the small one). Latency jobs
	// queue ahead of batch work, the ILP ages pattern efficiencies by
	// member wait, and the dispatcher may evict a running all-batch
	// group (checkpointing its progress) when a waiting latency job
	// would miss its deadline. The summary grows per-class percentiles,
	// the deadline-miss rate and the eviction count.
	meanSolo := uint64(0)
	for _, spec := range roster {
		sum := uint64(0)
		for _, r := range spec.Pipe.Profiles() {
			sum += r.Cycles
		}
		if mean := sum / uint64(len(spec.Pipe.Profiles())); mean > meanSolo {
			meanSolo = mean
		}
	}
	sloArrivals, err := fleet.ArrivalConfig{
		Kind: fleet.Poisson, Jobs: 48, Rate: 0.8, Seed: 2018,
		LatencyFrac: 0.3, Deadline: 2 * meanSolo,
	}.Generate(workloads.Names)
	if err != nil {
		log.Fatal(err)
	}
	f, err := fleet.New(fleet.Config{
		Devices: roster, NC: 2, Policy: sched.ILPSMRA, Aging: 1,
		SLO: fleet.SLOConfig{Enabled: true, Preempt: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := f.Run(sloArrivals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with SLO classes (deadline %d kcycles, preemption on):\n%s", 2*meanSolo/1000, res.Summary())
	if trace := res.EvictionTrace(); trace != "" {
		fmt.Printf("evictions:\n%s", trace)
	}
}
