// Fleet walkthrough: jobs arrive over simulated time to a small fleet
// of simulated GPUs, and the online dispatcher forms co-run groups from
// the live queue — the paper's machinery applied in an arrival-driven
// setting rather than to a static batch.
//
// The example initializes the pipeline on the full workload suite,
// generates a deterministic Poisson arrival stream, runs it under FCFS
// and under the windowed-ILP policy, and prints both summaries plus a
// per-job latency trace for the ILP run.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	cfg := config.GTX480()
	pipe := core.MustNew(cfg)
	log.Printf("initializing pipeline on %s ...", cfg.Name)
	start := time.Now()
	if err := pipe.Init(workloads.All()); err != nil {
		log.Fatal(err)
	}
	log.Printf("ready in %v", time.Since(start).Round(time.Second))

	// 48 jobs drawn uniformly from the suite, Poisson arrivals at one
	// job per 1250 cycles — enough pressure that a 2-device fleet keeps
	// a real queue.
	arrivals, err := fleet.ArrivalConfig{
		Kind: fleet.Poisson, Jobs: 48, Rate: 0.8, Seed: 2018,
	}.Generate(workloads.Names)
	if err != nil {
		log.Fatal(err)
	}

	for _, policy := range []sched.Policy{sched.FCFS, sched.ILPSMRA} {
		f, err := fleet.New(pipe, fleet.Config{Devices: 2, NC: 2, Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		res, err := f.Run(arrivals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Summary())

		if policy == sched.ILPSMRA {
			fmt.Println("first jobs of the ILP-SMRA run:")
			for _, j := range res.Jobs[:8] {
				fmt.Printf("  job %2d %-5s (%v) dev%d arrive=%7d wait=%7d turnaround=%7d\n",
					j.ID, j.Name, j.Class, j.Device, j.Arrival, j.Wait(), j.Turnaround())
			}
		}
	}
}
