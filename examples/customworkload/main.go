// Customworkload: define your own synthetic kernel, profile it, see
// which class the paper's criteria assign it, and find out which of the
// standard benchmarks the ILP matcher would co-schedule it with.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/classify"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	cfg := config.GTX480()

	// A user-defined kernel: a periodic table-lookup workload — mostly
	// arithmetic, with a shared lookup table that stays L2-resident.
	custom := kernel.Params{
		Name: "LUT", CTAs: 200, WarpsPerCTA: 6, InstrsPerWarp: 900,
		MemEvery: 12, SFUFraction: 0.1,
		Pattern: kernel.PatternHotset, HotBytes: 96 << 10, HotFraction: 0.9,
		CoalescedLines: 2, FootprintBytes: 8 << 20,
		RegsPerThread: 24, Seed: 0x777,
	}

	// Build the pipeline over the standard suite plus the custom kernel.
	universe := append(workloads.All(), custom)
	p := core.MustNew(cfg)
	fmt.Println("calibrating pipeline over 15 applications (one-time)...")
	start := time.Now()
	if err := p.Init(universe); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated in %v\n\n", time.Since(start).Round(time.Second))

	for _, row := range p.Classification() {
		if row.Name == custom.Name {
			fmt.Printf("custom kernel %q classified as class %s\n", row.Name, row.Class)
			fmt.Printf("  signature: %s\n\n", row.Metrics)
		}
	}

	// Queue the custom kernel against a mixed backlog and let the ILP
	// decide its partner.
	queue, err := p.Queue([]string{"GUPS", "LUT", "BLK", "HS"})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := p.Run(queue, 2, sched.ILP)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range rep.Groups {
		fmt.Printf("ILP grouped %v (%v), %d cycles\n", g.Apps, g.Classes, g.Cycles)
	}

	// Show the class thresholds the decision used.
	th := p.Thresholds()
	fmt.Printf("\nthresholds: alpha=%.1f beta=%.1f gamma=%.1f GB/s, epsilon=%.0f IPC (classes %v)\n",
		th.AlphaGBps, th.BetaGBps, th.GammaGBps, th.EpsilonIPC, classify.All())
}
