// Pairing: the paper's headline scenario. A queue of applications
// arrives at a shared GPU; instead of pairing them first-come
// first-served, the pipeline classifies them, measures per-class
// interference once, and solves an ILP to choose which applications
// should share the device. The example prints both schedules and the
// throughput difference.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	cfg := config.GTX480()
	p := core.MustNew(cfg)
	fmt.Println("calibrating (solo profiles + all-pairs interference, one-time)...")
	start := time.Now()
	if err := p.Init(workloads.All()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated in %v\n\n", time.Since(start).Round(time.Second))

	fmt.Println("per-class interference (Figure 3.4):")
	fmt.Println(p.Matrix())

	// A bursty queue: two memory hogs, two cache-sensitive apps, and
	// four compute apps, in unlucky arrival order (hogs adjacent).
	arrival := []string{"GUPS", "BLK", "BFS2", "SPMV", "HS", "SAD", "JPEG", "LUD"}
	queue, err := p.Queue(arrival)
	if err != nil {
		log.Fatal(err)
	}

	for _, pol := range []sched.Policy{sched.FCFS, sched.ILP} {
		rep, err := p.Run(queue, 2, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v pairs:\n", pol)
		for _, g := range rep.Groups {
			fmt.Printf("  %v (%v): %d cycles\n", g.Apps, g.Classes, g.Cycles)
		}
		fmt.Printf("  device throughput %.1f instr/cycle over %d cycles\n\n",
			rep.Throughput(), rep.TotalCycles)
	}
}
