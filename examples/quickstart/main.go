// Quickstart: simulate one GPU kernel, read its profile, and co-run two
// kernels on a partitioned device — the three core operations of the
// library in ~40 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kernel"
	"repro/internal/workloads"
)

func main() {
	cfg := config.GTX480()

	// 1. Run the HS (HotSpot-like) benchmark alone on the whole device.
	d := gpu.MustNew(cfg)
	hs := kernel.MustNew(workloads.MustParams("HS"), cfg.L1.LineBytes)
	all := make([]int, cfg.NumSMs)
	for i := range all {
		all[i] = i
	}
	h, err := d.Launch(hs, all)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("solo:  ", d.AppMetrics(h))

	// 2. Co-run HS with the bandwidth-hungry GUPS on half the SMs each.
	d2 := gpu.MustNew(cfg)
	hs2 := kernel.MustNew(workloads.MustParams("HS"), cfg.L1.LineBytes)
	gups := kernel.MustNew(workloads.MustParams("GUPS"), cfg.L1.LineBytes)
	gups.BaseAddr = 1 << 40 // disjoint address space
	left, right := all[:cfg.NumSMs/2], all[cfg.NumSMs/2:]
	hHS, err := d2.Launch(hs2, left)
	if err != nil {
		log.Fatal(err)
	}
	hGUPS, err := d2.Launch(gups, right)
	if err != nil {
		log.Fatal(err)
	}
	if err := d2.Run(20_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("co-run:", d2.AppMetrics(hHS))
	fmt.Println("       ", d2.AppMetrics(hGUPS))
	fmt.Printf("device throughput co-running: %.1f instructions/cycle (%.1f%% of peak)\n",
		d2.DeviceStats().Throughput(), 100*d2.DeviceStats().Utilization(cfg))
}
