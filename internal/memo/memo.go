// Package memo provides a concurrency-safe memoization table for
// deterministic computations: each key is computed at most once, with
// concurrent requests for an in-flight key waiting on the single
// computation instead of duplicating it (singleflight with permanent
// memoization). Errors are memoized too — a deterministic computation
// that failed once fails identically forever.
package memo

import "sync"

// Table memoizes a deterministic computation by string key.
type Table[V any] struct {
	mu    sync.Mutex
	ok    map[string]V
	fails map[string]error
	// inflight holds one channel per key being computed; it is closed
	// when the result is published.
	inflight map[string]chan struct{}
}

// NewTable returns an empty table.
func NewTable[V any]() *Table[V] {
	return &Table[V]{
		ok:       make(map[string]V),
		fails:    make(map[string]error),
		inflight: make(map[string]chan struct{}),
	}
}

// Do returns the memoized result for key, computing it with compute if
// absent. Concurrent calls for the same key share one computation.
func (t *Table[V]) Do(key string, compute func() (V, error)) (V, error) {
	for {
		t.mu.Lock()
		if v, ok := t.ok[key]; ok {
			t.mu.Unlock()
			return v, nil
		}
		if err, ok := t.fails[key]; ok {
			t.mu.Unlock()
			var zero V
			return zero, err
		}
		wait, busy := t.inflight[key]
		if !busy {
			done := make(chan struct{})
			t.inflight[key] = done
			t.mu.Unlock()
			v, err := compute()
			t.mu.Lock()
			if err == nil {
				t.ok[key] = v
			} else {
				t.fails[key] = err
			}
			delete(t.inflight, key)
			close(done)
			t.mu.Unlock()
			return v, err
		}
		t.mu.Unlock()
		// Another goroutine is computing this key; wait for it to
		// publish and re-check.
		<-wait
	}
}

// Get returns the memoized success value for key, if present. It never
// computes.
func (t *Table[V]) Get(key string) (V, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.ok[key]
	return v, ok
}

// Put seeds the table with an externally obtained value (restored
// snapshots, primed calibrations).
func (t *Table[V]) Put(key string, v V) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ok[key] = v
}

// Snapshot returns a copy of every memoized success value.
func (t *Table[V]) Snapshot() map[string]V {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]V, len(t.ok))
	for k, v := range t.ok {
		out[k] = v
	}
	return out
}
