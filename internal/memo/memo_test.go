package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOncePerKey(t *testing.T) {
	tab := NewTable[int]()
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := tab.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
}

func TestDoMemoizesErrors(t *testing.T) {
	tab := NewTable[int]()
	boom := errors.New("boom")
	var calls atomic.Int32
	for i := 0; i < 3; i++ {
		if _, err := tab.Do("k", func() (int, error) {
			calls.Add(1)
			return 0, boom
		}); !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("failing compute ran %d times, want 1", calls.Load())
	}
	if _, ok := tab.Get("k"); ok {
		t.Fatal("Get returned a value for a failed key")
	}
}

func TestPutGetSnapshot(t *testing.T) {
	tab := NewTable[string]()
	tab.Put("a", "x")
	if v, ok := tab.Get("a"); !ok || v != "x" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := tab.Get("b"); ok {
		t.Fatal("Get hit for absent key")
	}
	snap := tab.Snapshot()
	delete(snap, "a")
	if _, ok := tab.Get("a"); !ok {
		t.Fatal("mutating a snapshot drained the table")
	}
	if _, err := tab.Do("a", func() (string, error) {
		t.Fatal("compute ran despite Put-seeded value")
		return "", nil
	}); err != nil {
		t.Fatal(err)
	}
}
