// Package workloads defines the 14 Rodinia-like synthetic benchmarks the
// paper evaluates (Table 3.2): BFS2, BLK, BP, LUD, FFT, JPEG, 3DS, HS,
// LPS, RAY, GUPS, SPMV, SAD and NN.
//
// Real Rodinia CUDA binaries cannot run in this substrate, so each
// benchmark is a seeded synthetic kernel whose parameters are tuned so
// its measured profile signature — DRAM bandwidth, L2→L1 bandwidth, IPC
// and memory-to-compute ratio R — lands in the same region of the
// classification space as the paper reports:
//
//   - class M  (memory):        BLK (streaming), GUPS (random scatter)
//   - class MC (memory+cache):  BP, FFT, 3DS, LPS, RAY
//   - class C  (cache):         BFS2, SPMV
//   - class A  (compute):       LUD, JPEG, HS, SAD, NN
//
// The methodology only consumes these signatures, so matching the
// region (not the absolute GB/s of a 2009 benchmark suite on 2017
// silicon) preserves every downstream code path: classification,
// interference analysis, ILP matching and SM reallocation.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
)

// KB and MB are byte-size helpers for footprint declarations.
const (
	KB = 1 << 10
	MB = 1 << 20
)

// Names lists the benchmarks in the paper's Table 3.2 order.
var Names = []string{
	"BFS2", "BLK", "BP", "LUD", "FFT", "JPEG", "3DS",
	"HS", "LPS", "RAY", "GUPS", "SPMV", "SAD", "NN",
}

// ExpectedClass records the classification the paper reports for each
// benchmark (Table 3.2); tests assert the synthetic suite reproduces it.
var ExpectedClass = map[string]string{
	"BFS2": "C", "BLK": "M", "BP": "MC", "LUD": "A", "FFT": "MC",
	"JPEG": "A", "3DS": "MC", "HS": "A", "LPS": "MC", "RAY": "MC",
	"GUPS": "M", "SPMV": "C", "SAD": "A", "NN": "A",
}

// params returns the tuned parameter table. Sizes are scaled so a solo
// run on the 60-SM device finishes within roughly 30k–150k cycles,
// keeping the full experiment suite tractable while leaving per-class
// contrasts intact.
func params() map[string]kernel.Params {
	return map[string]kernel.Params{
		// BLK (BlackScholes): streaming option pricing. Long coalesced
		// bursts (16 lines) keep DRAM rows open under FR-FCFS: the
		// highest bandwidth in the suite AND respectable IPC — the
		// archetypal class M citizen.
		"BLK": {
			Name: "BLK", CTAs: 60, WarpsPerCTA: 6, InstrsPerWarp: 160,
			MemEvery: 16, StoreFraction: 0.25, SFUFraction: 0.20,
			Pattern: kernel.PatternStream, CoalescedLines: 32,
			FootprintBytes: 128 * MB, RegsPerThread: 24, Seed: 0xb11,
		},
		// GUPS (RandomAccess): giant updates per second. Uncoalesced
		// random scatter/gather: saturates DRAM with row misses while
		// retiring almost nothing — high MB, the lowest IPC anywhere.
		"GUPS": {
			Name: "GUPS", CTAs: 48, WarpsPerCTA: 6, InstrsPerWarp: 32,
			MemEvery: 2, StoreFraction: 0.5,
			Pattern: kernel.PatternRandom, CoalescedLines: 16,
			FootprintBytes: 256 * MB, RegsPerThread: 16, Seed: 0x9f5,
		},
		// BP (Backprop): layered neural training sweeps; strided weight
		// matrix traversal with shared-memory staging. Class MC.
		"BP": {
			Name: "BP", CTAs: 120, WarpsPerCTA: 6, InstrsPerWarp: 360,
			MemEvery: 8, StoreFraction: 0.2, SharedFraction: 0.15,
			BarrierEvery: 80, Pattern: kernel.PatternHotset,
			HotBytes: 384 * KB, HotFraction: 0.55,
			CoalescedLines: 4, FootprintBytes: 32 * MB,
			RegsPerThread: 24, SharedMemPerCTA: 8 * KB, Seed: 0xb9,
		},
		// FFT: butterfly exchanges with power-of-two-ish strides; high
		// bandwidth with partial reuse. Class MC; saturates and then
		// degrades with extra cores (Fig 3.5).
		"FFT": {
			Name: "FFT", CTAs: 100, WarpsPerCTA: 6, InstrsPerWarp: 320,
			MemEvery: 8, StoreFraction: 0.3, SFUFraction: 0.25,
			Pattern:  kernel.PatternHotset,
			HotBytes: 256 * KB, HotFraction: 0.50, CoalescedLines: 4,
			FootprintBytes: 64 * MB,
			RegsPerThread:  32, Seed: 0xff7,
		},
		// 3DS (3D stencil): neighbour exchanges over a volume; streaming
		// with plane reuse. Class MC.
		"3DS": {
			Name: "3DS", CTAs: 110, WarpsPerCTA: 6, InstrsPerWarp: 300,
			MemEvery: 10, StoreFraction: 0.25,
			Pattern: kernel.PatternHotset, HotBytes: 384 * KB, HotFraction: 0.62,
			CoalescedLines: 4, FootprintBytes: 64 * MB,
			RegsPerThread: 28, Seed: 0x3d5,
		},
		// LPS (Laplace solver): structured-grid sweeps, moderate
		// parallelism that saturates past ~20 cores. Class MC.
		"LPS": {
			Name: "LPS", CTAs: 80, WarpsPerCTA: 8, InstrsPerWarp: 400,
			MemEvery: 10, StoreFraction: 0.25, BarrierEvery: 100,
			Pattern:  kernel.PatternHotset,
			HotBytes: 512 * KB, HotFraction: 0.65, CoalescedLines: 4,
			FootprintBytes: 32 * MB,
			RegsPerThread:  28, SharedMemPerCTA: 12 * KB, Seed: 0x195,
		},
		// RAY (ray tracing): divergent scene traversal; moderate
		// bandwidth, poorly coalesced. Class MC.
		"RAY": {
			Name: "RAY", CTAs: 90, WarpsPerCTA: 6, InstrsPerWarp: 280,
			MemEvery: 10, SFUFraction: 0.30,
			Pattern: kernel.PatternHotset, HotBytes: 256 * KB, HotFraction: 0.55,
			CoalescedLines: 6, FootprintBytes: 64 * MB,
			RegsPerThread: 40, Seed: 0x4a9,
		},
		// BFS2 (breadth-first search): pointer chasing over a frontier
		// that lives in the L2 but thrashes the L1 — low DRAM bandwidth,
		// heavy L2→L1 refill traffic, low IPC. Class C.
		"BFS2": {
			Name: "BFS2", CTAs: 120, WarpsPerCTA: 4, InstrsPerWarp: 200,
			MemEvery: 4, StoreFraction: 0.1,
			Pattern: kernel.PatternHotset, HotBytes: 384 * KB, HotFraction: 0.97,
			CoalescedLines: 8, FootprintBytes: 32 * MB,
			RegsPerThread: 16, Seed: 0xbf5,
		},
		// SPMV (sparse matrix-vector): irregular gathers with a hot
		// vector resident in L2. Class C.
		"SPMV": {
			Name: "SPMV", CTAs: 140, WarpsPerCTA: 4, InstrsPerWarp: 220,
			MemEvery: 5, StoreFraction: 0.08,
			Pattern: kernel.PatternHotset, HotBytes: 512 * KB, HotFraction: 0.985,
			CoalescedLines: 6, FootprintBytes: 32 * MB,
			RegsPerThread: 20, Seed: 0x59c,
		},
		// LUD (LU decomposition): tiny working set, long dependency
		// chains, and a grid too small to fill the device — IPC is low
		// and flat regardless of core count (Fig 3.5). Class A.
		"LUD": {
			Name: "LUD", CTAs: 24, WarpsPerCTA: 4, InstrsPerWarp: 3000,
			MemEvery: 40, SFUFraction: 0.15, SharedFraction: 0.35,
			BarrierEvery: 60, Pattern: kernel.PatternHotset,
			HotBytes: 256 * KB, HotFraction: 0.95, CoalescedLines: 2,
			FootprintBytes: 2 * MB, RegsPerThread: 32,
			SharedMemPerCTA: 16 * KB, Seed: 0x10d,
		},
		// JPEG (image codec): blockwise transforms over an image tile
		// that stays L2-resident; mostly arithmetic. Class A.
		"JPEG": {
			Name: "JPEG", CTAs: 220, WarpsPerCTA: 6, InstrsPerWarp: 1500,
			MemEvery: 16, StoreFraction: 0.3, SFUFraction: 0.20,
			SharedFraction: 0.10, Pattern: kernel.PatternHotset,
			HotBytes: 12 * KB, HotFraction: 0.92, CoalescedLines: 2,
			FootprintBytes: 512 * KB,
			RegsPerThread:  24, Seed: 0x1be,
		},
		// HS (HotSpot): thermal stencil with high arithmetic intensity
		// and shared-memory tiling; near-peak IPC. Class A.
		"HS": {
			Name: "HS", CTAs: 280, WarpsPerCTA: 6, InstrsPerWarp: 1800,
			MemEvery: 32, SharedFraction: 0.20, BarrierEvery: 120,
			Pattern: kernel.PatternStream, CoalescedLines: 2,
			FootprintBytes: 256 * KB, RegsPerThread: 24,
			SharedMemPerCTA: 8 * KB, Seed: 0x45,
		},
		// SAD (sum of absolute differences): dense motion estimation,
		// almost pure integer arithmetic on a cached search window.
		// Class A with the suite's top IPC.
		"SAD": {
			Name: "SAD", CTAs: 300, WarpsPerCTA: 6, InstrsPerWarp: 2200,
			MemEvery: 40, Pattern: kernel.PatternHotset,
			HotBytes: 16 * KB, HotFraction: 0.97, CoalescedLines: 1,
			FootprintBytes: 4 * MB, RegsPerThread: 20, Seed: 0x5ad,
		},
		// NN (nearest neighbour): tiny per-thread record scan that fits
		// in the L1; scales with cores but never fills the device.
		// Class A.
		"NN": {
			Name: "NN", CTAs: 60, WarpsPerCTA: 2, InstrsPerWarp: 3600,
			MemEvery: 8, Pattern: kernel.PatternHotset,
			HotBytes: 8 * KB, HotFraction: 0.98, CoalescedLines: 2,
			FootprintBytes: 512 * KB, RegsPerThread: 16, Seed: 0x22,
		},
	}
}

// Params returns the tuned kernel parameters of one benchmark.
func Params(name string) (kernel.Params, error) {
	p, ok := params()[name]
	if !ok {
		return kernel.Params{}, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	return p, nil
}

// MustParams is Params panicking on unknown names.
func MustParams(name string) kernel.Params {
	p, err := Params(name)
	if err != nil {
		panic(err)
	}
	return p
}

// New instantiates one benchmark kernel for a device line size.
func New(name string, lineBytes int) (*kernel.Kernel, error) {
	p, err := Params(name)
	if err != nil {
		return nil, err
	}
	return kernel.New(p, lineBytes)
}

// MustNew is New panicking on error.
func MustNew(name string, lineBytes int) *kernel.Kernel {
	k, err := New(name, lineBytes)
	if err != nil {
		panic(err)
	}
	return k
}

// All returns every benchmark's parameters sorted in Table 3.2 order.
func All() []kernel.Params {
	ps := params()
	out := make([]kernel.Params, 0, len(ps))
	for _, n := range Names {
		out = append(out, ps[n])
	}
	return out
}

// ByClass returns the benchmark names of one expected class, sorted.
func ByClass(class string) []string {
	var out []string
	for n, c := range ExpectedClass {
		if c == class {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
