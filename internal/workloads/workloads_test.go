package workloads

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/config"
	"repro/internal/kernel"
	"repro/internal/profile"
)

func TestAllParamsValid(t *testing.T) {
	cfg := config.GTX480()
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if _, err := kernel.New(p, cfg.L1.LineBytes); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestNamesCoverSuiteExactly(t *testing.T) {
	if len(Names) != 14 {
		t.Fatalf("suite has %d names, want 14", len(Names))
	}
	seen := map[string]bool{}
	for _, n := range Names {
		if seen[n] {
			t.Fatalf("duplicate name %s", n)
		}
		seen[n] = true
		if _, err := Params(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if _, ok := ExpectedClass[n]; !ok {
			t.Fatalf("%s has no expected class", n)
		}
	}
	if _, err := Params("NOPE"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestByClassPartition(t *testing.T) {
	total := 0
	for _, c := range []string{"M", "MC", "C", "A"} {
		total += len(ByClass(c))
	}
	if total != 14 {
		t.Fatalf("ByClass covers %d benchmarks", total)
	}
	// The paper's composition: 2 M, 5 MC, 2 C, 5 A.
	if len(ByClass("M")) != 2 || len(ByClass("MC")) != 5 ||
		len(ByClass("C")) != 2 || len(ByClass("A")) != 5 {
		t.Fatalf("class sizes: M=%d MC=%d C=%d A=%d",
			len(ByClass("M")), len(ByClass("MC")), len(ByClass("C")), len(ByClass("A")))
	}
}

// TestClassificationMatchesPaper is the headline calibration assertion:
// the synthetic suite, profiled on the default device with calibrated
// thresholds, reproduces every class of Table 3.2.
func TestClassificationMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-device profiling is slow")
	}
	cfg := config.GTX480()
	prof := profile.New(cfg)
	profiles, err := prof.RunAll(All(), 0)
	if err != nil {
		t.Fatal(err)
	}
	th := classify.CalibrateThresholds(cfg, profiles)
	for _, c := range classify.Table(th, profiles) {
		want := ExpectedClass[c.Name]
		if c.Class.String() != want {
			t.Errorf("%s classified %s, paper reports %s (%s)", c.Name, c.Class, want, c.Metrics)
		}
	}
}
