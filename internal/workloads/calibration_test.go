package workloads

import (
	"testing"

	"repro/internal/config"
	"repro/internal/profile"
)

// TestCalibrationTable prints the measured Table 3.2 signature of every
// benchmark on the full device. It is the primary tuning aid for the
// synthetic suite; assertions live in the classify package tests.
func TestCalibrationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full-device calibration is slow")
	}
	cfg := config.GTX480()
	p := profile.New(cfg)
	for _, params := range All() {
		r, err := p.Run(params, 0)
		if err != nil {
			t.Fatalf("%s: %v", params.Name, err)
		}
		t.Logf("%s (expect class %s)", r, ExpectedClass[params.Name])
	}
}
