package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sched"
	"repro/internal/testkit"
)

func TestCalibrationRoundTrip(t *testing.T) {
	p := initPipeline(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "cal.json")
	if err := p.SaveCalibration(path); err != nil {
		t.Fatal(err)
	}

	q := MustNew(testkit.Config())
	if err := q.LoadCalibration(path, testkit.Universe()); err != nil {
		t.Fatal(err)
	}
	// Classification and matrix must be identical.
	for name, cls := range p.Classes() {
		if q.Classes()[name] != cls {
			t.Fatalf("class of %s changed across round trip", name)
		}
	}
	for a := range p.Matrix().Slowdown {
		for b := range p.Matrix().Slowdown[a] {
			if p.Matrix().Slowdown[a][b] != q.Matrix().Slowdown[a][b] {
				t.Fatalf("matrix cell [%d][%d] changed", a, b)
			}
		}
	}
	// The restored pipeline must be runnable without Init.
	queue, err := q.Queue([]string{"miniM", "miniA"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := q.Run(queue, 2, sched.ILP)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput() <= 0 {
		t.Fatal("restored pipeline produced no throughput")
	}
}

func TestLoadCalibrationValidation(t *testing.T) {
	p := initPipeline(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "cal.json")
	if err := p.SaveCalibration(path); err != nil {
		t.Fatal(err)
	}

	q := MustNew(testkit.Config())
	// Universe mismatch: fewer apps.
	if err := q.LoadCalibration(path, testkit.Universe()[:2]); err == nil {
		t.Error("short universe accepted")
	}
	// Universe mismatch: renamed app.
	apps := testkit.Universe()
	apps[0].Name = "other"
	if err := q.LoadCalibration(path, apps); err == nil {
		t.Error("renamed universe accepted")
	}
	// Missing file.
	if err := q.LoadCalibration(filepath.Join(dir, "nope.json"), testkit.Universe()); err == nil {
		t.Error("missing file accepted")
	}
	// Corrupt file.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := q.LoadCalibration(bad, testkit.Universe()); err == nil {
		t.Error("corrupt file accepted")
	}
}

func TestSaveCalibrationRequiresInit(t *testing.T) {
	p := MustNew(testkit.Config())
	if err := p.SaveCalibration(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("uninitialized save accepted")
	}
	var none []kernel.Params
	_ = none
}
