package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/classify"
	"repro/internal/config"
	"repro/internal/interference"
	"repro/internal/kernel"
	"repro/internal/profile"
	"repro/internal/sched"
)

// calibrationFileVersion guards the on-disk format.
const calibrationFileVersion = 1

// CalibrationCachePath resolves where a device's calibration cache
// lives, honoring the REPRO_CALIBRATION environment variable: "off"
// disables caching (empty return), an explicit value is used verbatim,
// and by default the cache sits in the OS temp directory keyed by
// device name. cmd/experiments and cmd/fleet share this resolution so
// one calibration serves both.
func CalibrationCachePath(device string) string {
	switch v := os.Getenv("REPRO_CALIBRATION"); v {
	case "off":
		return ""
	case "":
		return filepath.Join(os.TempDir(), "repro-calibration-"+device+".json")
	default:
		return v
	}
}

// LoadOrInit returns an initialized pipeline for cfg over apps: it
// restores the disk-cached calibration when one matches (same device
// name, same workload fingerprint) and otherwise runs the expensive
// Init — solo profiles plus the all-pairs interference campaign — and
// saves the result best-effort. REPRO_CALIBRATION governs the cache
// location ("off" disables it). cmd/experiments, cmd/fleet and
// heterogeneous fleet rosters all share this path, so one calibration
// per device name serves them all.
func LoadOrInit(cfg config.GPUConfig, apps []kernel.Params) (*Pipeline, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	path := CalibrationCachePath(cfg.Name)
	if path != "" && p.LoadCalibration(path, apps) == nil {
		return p, nil
	}
	if err := p.Init(apps); err != nil {
		return nil, err
	}
	if path != "" {
		// Best-effort: a read-only filesystem only costs the cache.
		_ = p.SaveCalibration(path)
	}
	return p, nil
}

// Fingerprint summarizes an application universe (names and every
// parameter) so cached calibrations are invalidated when workloads are
// retuned. The rendering of kernel.Params is stable for a fixed struct
// definition, which is exactly the invalidation granularity wanted.
func Fingerprint(apps []kernel.Params) string {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, a := range apps {
		for _, b := range []byte(fmt.Sprintf("%+v|", a)) {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	return fmt.Sprintf("%016x", h)
}

// calibrationFile is the serialized form of an initialized pipeline's
// expensive state: solo profiles, thresholds, classes and the
// interference matrix. Kernels themselves are not stored — the caller
// re-supplies the application universe and the file is validated
// against it.
type calibrationFile struct {
	Version     int                 `json:"version"`
	Device      string              `json:"device"`
	Fingerprint string              `json:"fingerprint"`
	Apps        []string            `json:"apps"`
	Profiles    []profile.Result    `json:"profiles"`
	Thresholds  classify.Thresholds `json:"thresholds"`
	Classes     map[string]string   `json:"classes"`
	Matrix      serializedMatrix    `json:"matrix"`
}

type serializedMatrix struct {
	Slowdown [classify.NumClasses][classify.NumClasses]float64 `json:"slowdown"`
	Samples  [classify.NumClasses][classify.NumClasses]int     `json:"samples"`
	Pairs    []interference.PairResult                         `json:"pairs"`
}

// SaveCalibration writes the pipeline's calibrated state to path. The
// pipeline must be initialized.
func (p *Pipeline) SaveCalibration(path string) error {
	if !p.ready {
		return fmt.Errorf("core: pipeline not initialized")
	}
	f := calibrationFile{
		Version:     calibrationFileVersion,
		Device:      p.cfg.Name,
		Fingerprint: Fingerprint(p.apps),
		Thresholds:  p.thresholds,
		Profiles:    p.profiles,
		Classes:     make(map[string]string, len(p.classes)),
		Matrix: serializedMatrix{
			Slowdown: p.matrix.Slowdown,
			Samples:  p.matrix.Samples,
			Pairs:    p.matrix.Pairs,
		},
	}
	for _, a := range p.apps {
		f.Apps = append(f.Apps, a.Name)
	}
	for name, cls := range p.classes {
		f.Classes[name] = cls.String()
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode calibration: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: write calibration: %w", err)
	}
	return nil
}

// LoadCalibration restores a previously saved calibration for the given
// application universe, skipping the profiling and all-pairs campaign.
// The file must have been produced for the same device name and the
// same set of application names; otherwise an error describes the
// mismatch and the caller should fall back to Init.
func (p *Pipeline) LoadCalibration(path string, apps []kernel.Params) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("core: read calibration: %w", err)
	}
	var f calibrationFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("core: decode calibration: %w", err)
	}
	if f.Version != calibrationFileVersion {
		return fmt.Errorf("core: calibration version %d, want %d", f.Version, calibrationFileVersion)
	}
	if f.Device != p.cfg.Name {
		return fmt.Errorf("core: calibration for device %q, this pipeline is %q", f.Device, p.cfg.Name)
	}
	if fp := Fingerprint(apps); f.Fingerprint != fp {
		return fmt.Errorf("core: calibration fingerprint %s does not match universe %s (workloads changed)", f.Fingerprint, fp)
	}
	if len(f.Apps) != len(apps) {
		return fmt.Errorf("core: calibration covers %d apps, universe has %d", len(f.Apps), len(apps))
	}
	for i, a := range apps {
		if f.Apps[i] != a.Name {
			return fmt.Errorf("core: calibration app %d is %q, universe has %q", i, f.Apps[i], a.Name)
		}
	}
	if len(f.Profiles) != len(apps) {
		return fmt.Errorf("core: calibration has %d profiles for %d apps", len(f.Profiles), len(apps))
	}
	// Iterate class names sorted so a file with several bad labels
	// reports the same one on every run.
	names := make([]string, 0, len(f.Classes))
	for name := range f.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	classes := make(map[string]classify.Class, len(f.Classes))
	for _, name := range names {
		cls, err := classify.ParseClass(f.Classes[name])
		if err != nil {
			return fmt.Errorf("core: calibration class for %s: %w", name, err)
		}
		classes[name] = cls
	}
	for _, a := range apps {
		if _, ok := classes[a.Name]; !ok {
			return fmt.Errorf("core: calibration missing class for %s", a.Name)
		}
	}
	p.apps = apps
	p.profiles = f.Profiles
	p.thresholds = f.Thresholds
	p.classes = classes
	// Seed the profiler memo so schedulers that consult solo profiles
	// (duration-aware grouping, serial reuse) skip re-simulation.
	for _, r := range f.Profiles {
		p.prof.Prime(r.Name, r)
	}
	p.matrix = &interference.Matrix{
		Slowdown: f.Matrix.Slowdown,
		Samples:  f.Matrix.Samples,
		Pairs:    f.Matrix.Pairs,
	}
	p.scheduler = sched.New(p.cfg, p.prof, p.matrix)
	p.ready = true
	return nil
}
