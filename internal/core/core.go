// Package core is the library façade: it wires the full methodology of
// the paper into one Pipeline —
//
//  1. profile every application solo (Section 3.2.1),
//  2. calibrate thresholds and classify (Table 3.1/3.2),
//  3. measure per-class interference from all-pairs co-runs
//     (Section 3.2.2, Figure 3.4),
//  4. match queued applications into co-run groups with the ILP
//     (Section 3.2.3), and
//  5. execute with run-time SM reallocation (Section 3.2.4).
//
// Downstream code (examples, cmd tools, the experiment harness) should
// only need this package plus the workload definitions.
package core

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/config"
	"repro/internal/interference"
	"repro/internal/kernel"
	"repro/internal/profile"
	"repro/internal/sched"
)

// Pipeline holds the calibrated state of the methodology for one device
// configuration and one application universe. Build it once with New and
// Init; every later query (classification tables, matchings, queue runs)
// reuses the memoized profiles and interference matrix.
type Pipeline struct {
	cfg        config.GPUConfig
	prof       *profile.Profiler
	apps       []kernel.Params
	profiles   []profile.Result
	thresholds classify.Thresholds
	classes    map[string]classify.Class
	matrix     *interference.Matrix
	scheduler  *sched.Scheduler
	ready      bool
}

// New creates an uninitialized pipeline for the device configuration.
func New(cfg config.GPUConfig) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg, prof: profile.New(cfg)}, nil
}

// MustNew is New panicking on error.
func MustNew(cfg config.GPUConfig) *Pipeline {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Init profiles, classifies and measures interference for the given
// application universe. It is the expensive step: one solo simulation
// per application plus one co-run per pair (executed in parallel).
func (p *Pipeline) Init(apps []kernel.Params) error {
	if len(apps) == 0 {
		return fmt.Errorf("core: empty application universe")
	}
	p.apps = apps
	profiles, err := p.prof.RunAll(apps, 0)
	if err != nil {
		return err
	}
	p.profiles = profiles
	p.thresholds = classify.CalibrateThresholds(p.cfg, profiles)
	p.classes = make(map[string]classify.Class, len(apps))
	for _, c := range classify.Table(p.thresholds, profiles) {
		p.classes[c.Name] = c.Class
	}
	m, err := interference.Compute(p.cfg, p.prof, p.classes, apps)
	if err != nil {
		return err
	}
	p.matrix = m
	p.scheduler = sched.New(p.cfg, p.prof, m)
	p.ready = true
	return nil
}

// Config returns the device configuration.
func (p *Pipeline) Config() config.GPUConfig { return p.cfg }

// Profiler exposes the memoized profiler (scalability figures).
func (p *Pipeline) Profiler() *profile.Profiler { return p.prof }

// Apps returns the application universe.
func (p *Pipeline) Apps() []kernel.Params { return p.apps }

// Profiles returns the solo profiles in universe order.
func (p *Pipeline) Profiles() []profile.Result { return p.profiles }

// Thresholds returns the calibrated classification thresholds.
func (p *Pipeline) Thresholds() classify.Thresholds { return p.thresholds }

// Classes maps application names to classes.
func (p *Pipeline) Classes() map[string]classify.Class { return p.classes }

// ClassOf returns one application's class.
func (p *Pipeline) ClassOf(name string) (classify.Class, error) {
	c, ok := p.classes[name]
	if !ok {
		return 0, fmt.Errorf("core: %q not in the initialized universe", name)
	}
	return c, nil
}

// Matrix returns the per-class interference matrix.
func (p *Pipeline) Matrix() *interference.Matrix { return p.matrix }

// Scheduler returns the policy runner.
func (p *Pipeline) Scheduler() *sched.Scheduler { return p.scheduler }

// Classification returns the Table 3.2 reproduction rows.
func (p *Pipeline) Classification() []classify.Classification {
	return classify.Table(p.thresholds, p.profiles)
}

// Queue materializes a waiting queue from application names (arrival
// order = slice order).
func (p *Pipeline) Queue(names []string) ([]sched.QueuedApp, error) {
	if !p.ready {
		return nil, fmt.Errorf("core: pipeline not initialized")
	}
	byName := make(map[string]kernel.Params, len(p.apps))
	for _, a := range p.apps {
		byName[a.Name] = a
	}
	out := make([]sched.QueuedApp, 0, len(names))
	for i, n := range names {
		params, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("core: unknown application %q", n)
		}
		out = append(out, sched.QueuedApp{Params: params, Class: p.classes[n], Arrival: i})
	}
	return out, nil
}

// Run executes a queue under a policy with co-run groups of nc.
func (p *Pipeline) Run(queue []sched.QueuedApp, nc int, policy sched.Policy) (sched.Report, error) {
	if !p.ready {
		return sched.Report{}, fmt.Errorf("core: pipeline not initialized")
	}
	return p.scheduler.Run(queue, nc, policy)
}
