package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/testkit"
)

func initPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p := MustNew(testkit.Config())
	if err := p.Init(testkit.Universe()); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineInitClassifiesAndMeasures(t *testing.T) {
	p := initPipeline(t)
	if len(p.Profiles()) != 4 {
		t.Fatalf("profiles = %d, want 4", len(p.Profiles()))
	}
	for name, class := range p.Classes() {
		t.Logf("%s -> class %s", name, class)
	}
	m := p.Matrix()
	t.Logf("\n%s", m)
	// Co-running on half the device is at best mildly super-linear for
	// tiny low-parallelism kernels; anything below this bound indicates
	// broken accounting rather than scheduling behaviour.
	for a := range m.Slowdown {
		for b := range m.Slowdown[a] {
			if m.Samples[a][b] > 0 && m.Slowdown[a][b] <= 0.75 {
				t.Fatalf("slowdown[%d][%d] = %v, implausibly fast", a, b, m.Slowdown[a][b])
			}
		}
	}
}

func TestPipelineQueueUnknownApp(t *testing.T) {
	p := initPipeline(t)
	if _, err := p.Queue([]string{"nope"}); err == nil {
		t.Fatal("expected error for unknown application")
	}
}

func TestPipelineRunAllPolicies(t *testing.T) {
	p := initPipeline(t)
	queue, err := p.Queue([]string{"miniM", "miniA", "miniC", "miniMC"})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []sched.Policy{sched.Serial, sched.FCFS, sched.ProfileBased, sched.ILP, sched.ILPSMRA} {
		rep, err := p.Run(queue, 2, pol)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if rep.Throughput() <= 0 {
			t.Fatalf("%v: zero throughput", pol)
		}
		var want uint64
		for _, a := range p.Apps() {
			want += a.TotalInstrs() * uint64(p.Config().WarpSize)
		}
		if rep.ThreadInstructions != want {
			t.Fatalf("%v: instructions %d, want %d (every app must fully retire)", pol, rep.ThreadInstructions, want)
		}
		t.Logf("%-14v throughput=%.1f cycles=%d groups=%d", pol, rep.Throughput(), rep.TotalCycles, len(rep.Groups))
	}
}

func TestPipelineSerialSlowerThanCoRun(t *testing.T) {
	p := initPipeline(t)
	queue, err := p.Queue([]string{"miniM", "miniA", "miniC", "miniMC"})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := p.Run(queue, 1, sched.Serial)
	if err != nil {
		t.Fatal(err)
	}
	ilp, err := p.Run(queue, 2, sched.ILP)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serial=%d cycles, ilp=%d cycles", serial.TotalCycles, ilp.TotalCycles)
	if ilp.TotalCycles >= serial.TotalCycles {
		t.Errorf("co-scheduling (%d cycles) should beat serial (%d cycles) on underutilized kernels",
			ilp.TotalCycles, serial.TotalCycles)
	}
}
