package ilp

import (
	"fmt"
	"math"
	"sort"
)

// intTol is the distance from an integer below which a relaxation value
// counts as integral.
const intTol = 1e-6

// maxNodes bounds the branch-and-bound tree; the paper's instances need
// a handful of nodes, so hitting this indicates a malformed problem.
const maxNodes = 200_000

type node struct {
	lower []float64 // per-variable lower bounds
	upper []float64 // per-variable upper bounds (+inf when free)
	bound float64   // parent relaxation objective (upper bound)
}

// Solve finds an optimal integral solution by branch-and-bound over LP
// relaxations. Variables without the Integer mark stay continuous.
func Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if p.Integer == nil {
		return SolveLP(p)
	}
	n := len(p.Objective)
	root := node{
		lower: make([]float64, n),
		upper: make([]float64, n),
		bound: math.Inf(1),
	}
	for j := range root.upper {
		root.upper[j] = math.Inf(1)
	}
	best := Solution{Status: Infeasible, Objective: math.Inf(-1)}
	queue := []node{root}
	sawUnbounded := false
	for nodes := 0; len(queue) > 0; nodes++ {
		if nodes > maxNodes {
			return Solution{}, fmt.Errorf("ilp: branch-and-bound node limit reached")
		}
		// Best-first: explore the node with the highest parent bound.
		sort.SliceStable(queue, func(i, j int) bool { return queue[i].bound < queue[j].bound })
		nd := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if nd.bound <= best.Objective+intTol {
			continue // cannot beat the incumbent
		}
		rel, err := SolveLP(withBounds(p, nd))
		if err != nil {
			return Solution{}, err
		}
		switch rel.Status {
		case Infeasible:
			continue
		case Unbounded:
			// An unbounded relaxation at the root of an integer problem:
			// remember it; if no incumbent appears the problem really is
			// unbounded.
			sawUnbounded = true
			continue
		}
		if rel.Objective <= best.Objective+intTol {
			continue
		}
		frac := mostFractional(rel.X, p.Integer)
		if frac < 0 {
			// Integral: new incumbent.
			rounded := append([]float64(nil), rel.X...)
			for j := range rounded {
				if p.Integer[j] {
					rounded[j] = math.Round(rounded[j])
				}
			}
			best = Solution{Status: Optimal, X: rounded, Objective: rel.Objective}
			continue
		}
		v := rel.X[frac]
		down := nd.clone()
		down.upper[frac] = math.Floor(v)
		down.bound = rel.Objective
		up := nd.clone()
		up.lower[frac] = math.Ceil(v)
		up.bound = rel.Objective
		queue = append(queue, down, up)
	}
	if best.Status != Optimal && sawUnbounded {
		return Solution{Status: Unbounded}, nil
	}
	return best, nil
}

func (nd node) clone() node {
	return node{
		lower: append([]float64(nil), nd.lower...),
		upper: append([]float64(nil), nd.upper...),
		bound: nd.bound,
	}
}

// withBounds appends the node's variable bounds as constraint rows.
func withBounds(p Problem, nd node) Problem {
	out := Problem{Objective: p.Objective, Constraints: append([]Constraint(nil), p.Constraints...)}
	n := len(p.Objective)
	for j := 0; j < n; j++ {
		if nd.lower[j] > 0 {
			row := make([]float64, n)
			row[j] = 1
			out.Constraints = append(out.Constraints, Constraint{Coeffs: row, Rel: GE, RHS: nd.lower[j]})
		}
		if !math.IsInf(nd.upper[j], 1) {
			row := make([]float64, n)
			row[j] = 1
			out.Constraints = append(out.Constraints, Constraint{Coeffs: row, Rel: LE, RHS: nd.upper[j]})
		}
	}
	return out
}

// mostFractional returns the index of the integer-constrained variable
// farthest from integrality, or -1 when all are integral.
func mostFractional(x []float64, integer []bool) int {
	best, bestDist := -1, intTol
	for j, v := range x {
		if !integer[j] {
			continue
		}
		dist := math.Abs(v - math.Round(v))
		if dist > bestDist {
			best, bestDist = j, dist
		}
	}
	return best
}
