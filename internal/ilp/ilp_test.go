package ilp

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveLPSimple2D(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6  → x=4, y=0, z=12.
	p := Problem{
		Objective: []float64{3, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Rel: LE, RHS: 6},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almostEq(s.Objective, 12) {
		t.Fatalf("got %+v, want objective 12", s)
	}
}

func TestSolveLPWithEquality(t *testing.T) {
	// max x + y s.t. x + y == 5, x <= 3 → z=5.
	p := Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 5},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 3},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almostEq(s.Objective, 5) {
		t.Fatalf("got %+v, want objective 5", s)
	}
}

func TestSolveLPGEConstraint(t *testing.T) {
	// max -x s.t. x >= 3 → x=3, z=-3.
	p := Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 3},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almostEq(s.Objective, -3) {
		t.Fatalf("got %+v, want objective -3", s)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	p := Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", s.Status)
	}
}

func TestSolveLPUnbounded(t *testing.T) {
	p := Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 0},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("got %v, want unbounded", s.Status)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// max x s.t. -x <= -2 (i.e. x >= 2), x <= 5 → 5.
	p := Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, RHS: -2},
			{Coeffs: []float64{1}, Rel: LE, RHS: 5},
		},
	}
	s, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almostEq(s.Objective, 5) {
		t.Fatalf("got %+v, want 5", s)
	}
}

func TestSolveILPKnapsack(t *testing.T) {
	// max 8a + 11b + 6c + 4d s.t. 5a+7b+4c+3d <= 14, vars in {0,1}.
	// Optimal: b,c,d = 1 → 21.
	one := func(j int) []float64 { r := make([]float64, 4); r[j] = 1; return r }
	p := Problem{
		Objective: []float64{8, 11, 6, 4},
		Constraints: []Constraint{
			{Coeffs: []float64{5, 7, 4, 3}, Rel: LE, RHS: 14},
			{Coeffs: one(0), Rel: LE, RHS: 1},
			{Coeffs: one(1), Rel: LE, RHS: 1},
			{Coeffs: one(2), Rel: LE, RHS: 1},
			{Coeffs: one(3), Rel: LE, RHS: 1},
		},
		Integer: []bool{true, true, true, true},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almostEq(s.Objective, 21) {
		t.Fatalf("got %+v, want 21", s)
	}
}

func TestSolveILPRequiresBranching(t *testing.T) {
	// max x + y s.t. 2x + 2y <= 5, integers → 2 (LP relaxation 2.5).
	p := Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{2, 2}, Rel: LE, RHS: 5},
		},
		Integer: []bool{true, true},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !almostEq(s.Objective, 2) {
		t.Fatalf("got %+v, want 2", s)
	}
	for _, v := range s.X {
		if math.Abs(v-math.Round(v)) > 1e-6 {
			t.Fatalf("non-integral solution %v", s.X)
		}
	}
}

func TestSolveILPInfeasible(t *testing.T) {
	p := Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 3},
			{Coeffs: []float64{2, 2}, Rel: EQ, RHS: 5}, // contradicts (x+y=2.5)
		},
		Integer: []bool{true, true},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", s.Status)
	}
}

// TestSolveILPMatchesEnumeration cross-checks branch-and-bound against
// brute-force enumeration on random small knapsack-like instances.
func TestSolveILPMatchesEnumeration(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := uint64(seedRaw)
		next := func() uint64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return seed >> 33
		}
		n := int(next()%4) + 2 // 2..5 vars
		obj := make([]float64, n)
		w := make([]float64, n)
		for j := 0; j < n; j++ {
			obj[j] = float64(next()%9) + 1
			w[j] = float64(next()%5) + 1
		}
		cap := float64(next()%12) + 2
		ub := float64(next()%3) + 1
		cons := []Constraint{{Coeffs: w, Rel: LE, RHS: cap}}
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			cons = append(cons, Constraint{Coeffs: row, Rel: LE, RHS: ub})
		}
		integer := make([]bool, n)
		for j := range integer {
			integer[j] = true
		}
		s, err := Solve(Problem{Objective: obj, Constraints: cons, Integer: integer})
		if err != nil || s.Status != Optimal {
			return false
		}
		// Enumerate.
		bestZ := math.Inf(-1)
		var rec func(j int, weight, z float64)
		rec = func(j int, weight, z float64) {
			if weight > cap {
				return
			}
			if j == n {
				if z > bestZ {
					bestZ = z
				}
				return
			}
			for v := 0.0; v <= ub; v++ {
				rec(j+1, weight+v*w[j], z+v*obj[j])
			}
		}
		rec(0, 0, 0)
		return almostEq(s.Objective, bestZ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveLPFeasibilityInvariant checks with random instances that any
// Optimal solution actually satisfies its constraints.
func TestSolveLPFeasibilityInvariant(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := uint64(seedRaw)
		next := func() uint64 {
			seed = seed*6364136223846793005 + 1442695040888963407
			return seed >> 33
		}
		n := int(next()%4) + 1
		m := int(next()%4) + 1
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = float64(int(next()%11)) - 5
		}
		cons := make([]Constraint, m)
		for i := range cons {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(int(next()%7)) - 3
			}
			cons[i] = Constraint{
				Coeffs: row,
				Rel:    Relation(next() % 3),
				RHS:    float64(int(next()%15)) - 5,
			}
		}
		s, err := SolveLP(Problem{Objective: obj, Constraints: cons})
		if err != nil || s.Status != Optimal {
			return true // infeasible/unbounded are fine outcomes
		}
		for j, v := range s.X {
			if v < -1e-6 {
				t.Logf("negative variable x[%d]=%v", j, v)
				return false
			}
		}
		for i, c := range cons {
			lhs := 0.0
			for j := range c.Coeffs {
				lhs += c.Coeffs[j] * s.X[j]
			}
			ok := true
			switch c.Rel {
			case LE:
				ok = lhs <= c.RHS+1e-6
			case GE:
				ok = lhs >= c.RHS-1e-6
			case EQ:
				ok = math.Abs(lhs-c.RHS) < 1e-6
			}
			if !ok {
				t.Logf("constraint %d violated: lhs=%v rel=%v rhs=%v x=%v", i, lhs, c.Rel, c.RHS, s.X)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
