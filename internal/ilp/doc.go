// Package ilp is a small exact integer linear programming solver: a
// two-phase primal simplex over dense tableaus for the LP relaxation
// (simplex.go), wrapped in best-first branch-and-bound for integrality
// (branchbound.go).
//
// The paper solves its contention-minimization matching (Section 3.2.3,
// Appendix A) with an off-the-shelf ILP solver; problem instances there
// are tiny (≤ 20 pattern variables, ≤ 5 constraints), which this
// implementation solves exactly in microseconds using only the standard
// library.
//
// A Problem is a maximization over non-negative variables: an objective
// vector, a list of ≤ / ≥ / = constraints, and an optional per-variable
// integrality mask. Solve returns an optimal Solution or a status
// (Infeasible, Unbounded) — there is no tolerance tuning to do at these
// problem sizes. The windowed ILP dispatcher (internal/fleet) and the
// offline matcher (internal/match) both bottom out here; see
// match.BuildProblem for the exact formulation of Equations 3.3–3.7.
package ilp
