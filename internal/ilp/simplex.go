package ilp

import (
	"fmt"
	"math"
)

// Relation is a constraint sense.
type Relation int

const (
	// LE is a ≤ constraint.
	LE Relation = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

// String renders the relation symbol.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return "?"
	}
}

// Constraint is one linear row: Coeffs·x  Rel  RHS.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a maximization over non-negative variables.
type Problem struct {
	// Objective holds the coefficients of the function to maximize.
	Objective []float64
	// Constraints are the linear rows.
	Constraints []Constraint
	// Integer marks variables required to take integral values; nil
	// means a pure LP.
	Integer []bool
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal: an optimal solution was found.
	Optimal Status = iota
	// Infeasible: no point satisfies the constraints.
	Infeasible
	// Unbounded: the objective can grow without limit.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const (
	eps      = 1e-9
	pivotEps = 1e-9
	maxIters = 100_000
)

// Validate reports structural problems.
func (p Problem) Validate() error {
	n := len(p.Objective)
	if n == 0 {
		return fmt.Errorf("ilp: empty objective")
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return fmt.Errorf("ilp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
	}
	if p.Integer != nil && len(p.Integer) != n {
		return fmt.Errorf("ilp: Integer mask has %d entries, want %d", len(p.Integer), n)
	}
	return nil
}

// tableau is a dense simplex tableau: rows are constraints in equality
// form (original + slack + artificial columns), with the RHS in the last
// column. basis[i] is the column basic in row i.
type tableau struct {
	a     [][]float64
	basis []int
	rows  int
	cols  int // excluding RHS
	rhs   int // index of RHS column
}

// SolveLP solves the continuous relaxation with two-phase primal
// simplex (Bland's rule, so it cannot cycle).
func SolveLP(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.Objective)
	m := len(p.Constraints)

	// Normalize to non-negative RHS.
	rows := make([]Constraint, m)
	for i, c := range p.Constraints {
		rows[i] = Constraint{Coeffs: append([]float64(nil), c.Coeffs...), Rel: c.Rel, RHS: c.RHS}
		if rows[i].RHS < 0 {
			for j := range rows[i].Coeffs {
				rows[i].Coeffs[j] = -rows[i].Coeffs[j]
			}
			rows[i].RHS = -rows[i].RHS
			switch rows[i].Rel {
			case LE:
				rows[i].Rel = GE
			case GE:
				rows[i].Rel = LE
			}
		}
	}

	// Count slack/surplus and artificial columns.
	nSlack, nArt := 0, 0
	for _, c := range rows {
		switch c.Rel {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}
	cols := n + nSlack + nArt
	t := &tableau{
		a:     make([][]float64, m),
		basis: make([]int, m),
		rows:  m,
		cols:  cols,
		rhs:   cols,
	}
	artStart := n + nSlack
	slackIdx, artIdx := n, artStart
	for i, c := range rows {
		t.a[i] = make([]float64, cols+1)
		copy(t.a[i], c.Coeffs)
		t.a[i][t.rhs] = c.RHS
		switch c.Rel {
		case LE:
			t.a[i][slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			t.a[i][slackIdx] = -1
			slackIdx++
			t.a[i][artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		case EQ:
			t.a[i][artIdx] = 1
			t.basis[i] = artIdx
			artIdx++
		}
	}

	// Phase 1: maximize -(sum of artificials).
	if nArt > 0 {
		phase1 := make([]float64, cols)
		for j := artStart; j < cols; j++ {
			phase1[j] = -1
		}
		z, err := t.maximize(phase1, nil)
		if err != nil {
			return Solution{}, err
		}
		if z < -1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Pivot any artificial still basic (at zero) out of the basis.
		for i := 0; i < m; i++ {
			if t.basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[i][j]) > pivotEps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it (harmless).
				for j := 0; j <= t.rhs; j++ {
					t.a[i][j] = 0
				}
			}
		}
	}

	// Phase 2: maximize the real objective, artificials barred.
	obj := make([]float64, cols)
	copy(obj, p.Objective)
	barred := make([]bool, cols)
	for j := artStart; j < cols; j++ {
		barred[j] = true
	}
	if _, err := t.maximize(obj, barred); err != nil {
		if err == errUnbounded {
			return Solution{Status: Unbounded}, nil
		}
		return Solution{}, err
	}

	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.a[i][t.rhs]
		}
	}
	objVal := 0.0
	for j := range x {
		objVal += p.Objective[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: objVal}, nil
}

var errUnbounded = fmt.Errorf("ilp: unbounded")

// maximize runs primal simplex for the given objective over the current
// tableau. barred columns may never enter the basis.
func (t *tableau) maximize(obj []float64, barred []bool) (float64, error) {
	for iter := 0; iter < maxIters; iter++ {
		// Reduced costs: rc_j = c_j - c_B · column_j.
		enter := -1
		for j := 0; j < t.cols; j++ {
			if barred != nil && barred[j] {
				continue
			}
			rc := obj[j]
			for i := 0; i < t.rows; i++ {
				if cb := obj[t.basis[i]]; cb != 0 {
					rc -= cb * t.a[i][j]
				}
			}
			if rc > eps {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter < 0 {
			z := 0.0
			for i := 0; i < t.rows; i++ {
				z += obj[t.basis[i]] * t.a[i][t.rhs]
			}
			return z, nil
		}
		// Ratio test (Bland tie-break on smallest basis index).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.rows; i++ {
			if t.a[i][enter] > pivotEps {
				ratio := t.a[i][t.rhs] / t.a[i][enter]
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, errUnbounded
		}
		t.pivot(leave, enter)
	}
	return 0, fmt.Errorf("ilp: simplex iteration limit reached")
}

// pivot makes column c basic in row r.
func (t *tableau) pivot(r, c int) {
	pr := t.a[r]
	pv := pr[c]
	for j := 0; j <= t.rhs; j++ {
		pr[j] /= pv
	}
	for i := 0; i < t.rows; i++ {
		if i == r {
			continue
		}
		f := t.a[i][c]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j <= t.rhs; j++ {
			row[j] -= f * pr[j]
		}
	}
	t.basis[r] = c
}
