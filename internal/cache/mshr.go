package cache

import "repro/internal/rng"

// mshrTable is a linear-probing open-addressing hash table from line
// address to miss-status entry. Caches sit on the simulator's hottest
// path (three lookups per memory access), and a specialized table with
// backward-shift deletion is several times faster than a generic map.
type mshrTable struct {
	// keys holds line+1 so that line address 0 is representable; 0
	// marks an empty slot.
	keys []uint64
	vals []mshrEntry
	mask uint64
	n    int
}

func newMSHRTable(entries int) *mshrTable {
	size := 4
	for size < entries*4 {
		size <<= 1
	}
	return &mshrTable{
		keys: make([]uint64, size),
		vals: make([]mshrEntry, size),
		mask: uint64(size - 1),
	}
}

func (t *mshrTable) len() int { return t.n }

func (t *mshrTable) slot(line uint64) uint64 { return rng.Mix64(line) & t.mask }

// get returns a pointer to the entry for line, or nil. The pointer is
// invalidated by the next insert or delete.
func (t *mshrTable) get(line uint64) *mshrEntry {
	key := line + 1
	for i := t.slot(line); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case key:
			return &t.vals[i]
		case 0:
			return nil
		}
	}
}

// insert adds an entry for line with one initial waiter. The caller
// must ensure the line is not already present.
func (t *mshrTable) insert(line uint64, waiter uint64) {
	key := line + 1
	for i := t.slot(line); ; i = (i + 1) & t.mask {
		if t.keys[i] == 0 {
			t.keys[i] = key
			e := &t.vals[i]
			e.line = line
			e.waiters = append(e.waiters[:0], waiter)
			t.n++
			return
		}
	}
}

// remove deletes the entry for line and returns its waiters (valid
// until the entry's slot is reused). It returns nil when absent.
func (t *mshrTable) remove(line uint64) []uint64 {
	key := line + 1
	i := t.slot(line)
	for {
		switch t.keys[i] {
		case key:
			waiters := t.vals[i].waiters
			t.deleteAt(i)
			t.n--
			return waiters
		case 0:
			return nil
		}
		i = (i + 1) & t.mask
	}
}

// deleteAt clears slot i and backward-shifts the following cluster so
// probe sequences stay unbroken (no tombstones).
func (t *mshrTable) deleteAt(i uint64) {
	t.keys[i] = 0
	j := (i + 1) & t.mask
	for t.keys[j] != 0 {
		home := t.slot(t.keys[j] - 1)
		// Rehome j into i when i lies cyclically between home and j.
		if (j-home)&t.mask >= (j-i)&t.mask {
			t.keys[i] = t.keys[j]
			// Swap entry bodies to preserve the evicted slot's waiter
			// backing array for reuse.
			t.vals[i], t.vals[j] = t.vals[j], t.vals[i]
			t.keys[j] = 0
			i = j
		}
		j = (j + 1) & t.mask
	}
}
