package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func testConfig() config.CacheConfig {
	return config.CacheConfig{
		SizeBytes:     4 * 1024,
		LineBytes:     128,
		Assoc:         4,
		LatencyCycles: 1,
		MSHREntries:   4,
		MSHRMaxMerged: 2,
		WriteBack:     false,
		WriteAllocate: false,
	}
}

func writeBackConfig() config.CacheConfig {
	c := testConfig()
	c.WriteBack = true
	c.WriteAllocate = true
	return c
}

func lineAt(i int) uint64 { return uint64(i) * 128 }

func TestMissThenFillThenHit(t *testing.T) {
	c := MustNew(testConfig())
	if got := c.Access(lineAt(1), false, 7, 0); got != Miss {
		t.Fatalf("first access = %v, want miss", got)
	}
	waiters, _, evicted := c.Fill(lineAt(1), 0, false)
	if evicted {
		t.Fatal("fill into empty cache evicted")
	}
	if len(waiters) != 1 || waiters[0] != 7 {
		t.Fatalf("waiters = %v, want [7]", waiters)
	}
	if got := c.Access(lineAt(1), false, 8, 0); got != Hit {
		t.Fatalf("post-fill access = %v, want hit", got)
	}
}

func TestMSHRMergeAndLimit(t *testing.T) {
	c := MustNew(testConfig())
	if got := c.Access(lineAt(1), false, 1, 0); got != Miss {
		t.Fatalf("got %v", got)
	}
	if got := c.Access(lineAt(1), false, 2, 0); got != MissMerged {
		t.Fatalf("merge = %v, want miss-merged", got)
	}
	// Merge limit is 2 waiters.
	if got := c.Access(lineAt(1), false, 3, 0); got != Stall {
		t.Fatalf("over-merge = %v, want stall", got)
	}
	if c.CanMerge(lineAt(1)) {
		t.Fatal("CanMerge should be false at merge limit")
	}
	// MSHR entry limit is 4.
	for i := 2; i <= 4; i++ {
		if got := c.Access(lineAt(i), false, uint64(i), 0); got != Miss {
			t.Fatalf("line %d: %v", i, got)
		}
	}
	if got := c.Access(lineAt(5), false, 5, 0); got != Stall {
		t.Fatalf("MSHR exhaustion = %v, want stall", got)
	}
	if c.MSHRFree() != 0 {
		t.Fatalf("MSHRFree = %d, want 0", c.MSHRFree())
	}
	waiters := mustFill(t, c, lineAt(1))
	if len(waiters) != 2 {
		t.Fatalf("waiters = %v, want 2 entries", waiters)
	}
	if c.MSHRFree() != 1 {
		t.Fatalf("MSHRFree after fill = %d, want 1", c.MSHRFree())
	}
}

func mustFill(t *testing.T, c *Cache, ln uint64) []uint64 {
	t.Helper()
	waiters, _, _ := c.Fill(ln, 0, false)
	return waiters
}

func TestLRUEviction(t *testing.T) {
	cfg := testConfig()
	c := MustNew(cfg)
	// All lines with the same set index; with hashed indexing, collect
	// lines mapping to one set first.
	var sameSet []uint64
	want := c.setIndex(lineAt(0))
	for i := 0; len(sameSet) < cfg.Assoc+1; i++ {
		if c.setIndex(lineAt(i)) == want {
			sameSet = append(sameSet, lineAt(i))
		}
	}
	for _, ln := range sameSet[:cfg.Assoc] {
		c.Access(ln, false, 0, 0)
		c.Fill(ln, 0, false)
	}
	// Touch the first line so the second becomes LRU.
	if got := c.Access(sameSet[0], false, 0, 0); got != Hit {
		t.Fatalf("warm line = %v, want hit", got)
	}
	// Fill one more line into the set: must evict the LRU (sameSet[1]).
	c.Access(sameSet[cfg.Assoc], false, 0, 0)
	c.Fill(sameSet[cfg.Assoc], 0, false)
	if got := c.Access(sameSet[1], false, 0, 0); got == Hit {
		t.Fatal("LRU victim still resident")
	}
	if got := c.Access(sameSet[0], false, 0, 0); got != Hit {
		t.Fatal("MRU line was evicted")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := MustNew(testConfig())
	if got := c.Access(lineAt(1), true, 0, 3); got != Bypass {
		t.Fatalf("store miss = %v, want bypass", got)
	}
	if c.ResidentLines() != 0 {
		t.Fatal("store miss allocated a line")
	}
	c.Access(lineAt(2), false, 0, 3)
	c.Fill(lineAt(2), 3, false)
	if got := c.Access(lineAt(2), true, 0, 3); got != Hit {
		t.Fatalf("store hit = %v, want hit", got)
	}
	// Write-through: the line stays clean; a conflicting fill must not
	// report a dirty eviction.
	_, _, evicted := c.Fill(lineAt(2), 3, false)
	_ = evicted // re-fill of resident line never evicts
}

func TestWriteBackDirtyEviction(t *testing.T) {
	cfg := writeBackConfig()
	c := MustNew(cfg)
	var sameSet []uint64
	want := c.setIndex(lineAt(0))
	for i := 0; len(sameSet) < cfg.Assoc+1; i++ {
		if c.setIndex(lineAt(i)) == want {
			sameSet = append(sameSet, lineAt(i))
		}
	}
	// Dirty one line via fill(dirty).
	c.Fill(sameSet[0], 5, true)
	for _, ln := range sameSet[1:cfg.Assoc] {
		c.Fill(ln, 0, false)
	}
	// Next fill in the set evicts the dirty LRU line.
	_, ev, evicted := c.Fill(sameSet[cfg.Assoc], 0, false)
	if !evicted {
		t.Fatal("expected dirty eviction")
	}
	if ev.Line != sameSet[0] || ev.Owner != 5 {
		t.Fatalf("eviction = %+v, want line %#x owner 5", ev, sameSet[0])
	}
}

func TestInvalidateAllPreservesMSHRs(t *testing.T) {
	c := MustNew(testConfig())
	c.Access(lineAt(1), false, 1, 0)
	c.Access(lineAt(2), false, 2, 0)
	c.Fill(lineAt(2), 0, false)
	c.InvalidateAll()
	if c.ResidentLines() != 0 {
		t.Fatal("lines survived InvalidateAll")
	}
	if c.OutstandingMisses() != 1 {
		t.Fatalf("outstanding misses = %d, want 1", c.OutstandingMisses())
	}
	waiters := mustFill(t, c, lineAt(1))
	if len(waiters) != 1 || waiters[0] != 1 {
		t.Fatalf("waiters = %v, want [1]", waiters)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := MustNew(testConfig())
	c.Access(lineAt(1), false, 0, 0) // miss
	c.Access(lineAt(1), false, 1, 0) // merged
	c.Fill(lineAt(1), 0, false)
	c.Access(lineAt(1), false, 2, 0) // hit
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 1 || st.Misses != 1 || st.Merged != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() <= 0.33 || st.HitRate() >= 0.34 {
		t.Fatalf("hit rate = %v, want 1/3", st.HitRate())
	}
}

// TestResidencyInvariant drives random access/fill sequences and checks
// that resident lines never exceed capacity and MSHRs never exceed
// their limit.
func TestResidencyInvariant(t *testing.T) {
	cfg := testConfig()
	f := func(ops []uint16) bool {
		c := MustNew(cfg)
		var outstanding []uint64
		for _, op := range ops {
			ln := lineAt(int(op % 64))
			switch {
			case op%3 == 0 && len(outstanding) > 0:
				// Fill the oldest outstanding miss.
				c.Fill(outstanding[0], 0, false)
				outstanding = outstanding[1:]
			default:
				res := c.Access(ln, op%5 == 0, uint64(op), 0)
				if res == Miss {
					outstanding = append(outstanding, ln)
				}
			}
			if c.ResidentLines() > cfg.Sets()*cfg.Assoc {
				return false
			}
			if c.OutstandingMisses() > cfg.MSHREntries {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMSHRTableRandomOps cross-checks the open-addressing MSHR table
// against a map reference under random insert/remove/get sequences.
func TestMSHRTableRandomOps(t *testing.T) {
	f := func(ops []uint16) bool {
		tab := newMSHRTable(16)
		ref := map[uint64][]uint64{}
		for _, op := range ops {
			key := uint64(op % 37)
			switch op % 3 {
			case 0:
				if _, ok := ref[key]; !ok && len(ref) < 16 {
					tab.insert(key, uint64(op))
					ref[key] = []uint64{uint64(op)}
				}
			case 1:
				got := tab.remove(key)
				want := ref[key]
				delete(ref, key)
				if (got == nil) != (want == nil) {
					return false
				}
				if len(got) != len(want) {
					return false
				}
			case 2:
				e := tab.get(key)
				_, ok := ref[key]
				if (e != nil) != ok {
					return false
				}
			}
			if tab.len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
