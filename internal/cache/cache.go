// Package cache implements the set-associative caches of the simulator:
// the per-SM L1 data caches and the banked, shared L2.
//
// The cache is generic over its clients: miss tracking uses opaque waiter
// tokens, so the L1 can record which warp slots wait on a line while an
// L2 bank records which upstream requests merged onto one DRAM fetch.
// Replacement is LRU; miss-status holding registers (MSHRs) merge
// concurrent misses to the same line and bound the number of outstanding
// misses, producing the structural stalls that real GPUs exhibit under
// memory pressure.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/config"
)

// AccessResult classifies the outcome of a cache access.
type AccessResult int

const (
	// Hit: the line is resident; no downstream traffic.
	Hit AccessResult = iota
	// Miss: a new MSHR entry was allocated; the caller must send one
	// request downstream.
	Miss
	// MissMerged: the line already has an outstanding miss; the waiter
	// was queued onto it and no downstream request is needed.
	MissMerged
	// Stall: no MSHR entry (or merge slot) is available; the caller must
	// retry later. No state was changed.
	Stall
	// Bypass: the access does not allocate (write-through, no-allocate
	// store miss); the caller forwards it downstream without tracking.
	Bypass
)

// String names the result for traces and test failures.
func (r AccessResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case MissMerged:
		return "miss-merged"
	case Stall:
		return "stall"
	case Bypass:
		return "bypass"
	default:
		return fmt.Sprintf("AccessResult(%d)", int(r))
	}
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	owner   int16 // application index for write-back attribution
	lastUse uint64
}

type mshrEntry struct {
	line    uint64
	waiters []uint64
}

// Stats counts cache events. Accesses = Hits + Misses + Merged; stalls
// are retried and not double-counted as accesses.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	Merged   uint64
	Stalls   uint64
	Fills    uint64
	Evicts   uint64
}

// HitRate returns Hits/Accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is one set-associative cache with LRU replacement and MSHRs.
// It is not safe for concurrent use; the simulator is single-threaded
// per device.
type Cache struct {
	cfg       config.CacheConfig
	sets      [][]line
	setShift  uint
	setMask   uint64
	mshrs     *mshrTable
	mshrLimit int
	useClock  uint64
	stats     Stats
}

// New builds a cache from a validated configuration.
func New(cfg config.CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setShift:  uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(nsets - 1),
		mshrs:     newMSHRTable(cfg.MSHREntries),
		mshrLimit: cfg.MSHREntries,
	}, nil
}

// MustNew is New for configurations known to be valid; it panics on error.
func MustNew(cfg config.CacheConfig) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr truncates an address to its line base.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

// setIndex hashes the line address into a set. Hashing (rather than
// slicing address bits) prevents pathological aliasing: lines are
// interleaved across memory partitions, so an L2 bank only ever sees
// every Nth line and bit-sliced indexing would strand a fraction of its
// sets; power-of-two strides would do the same to the L1. Real GPU
// caches use XOR-folded indices for the same reason.
func (c *Cache) setIndex(lineAddr uint64) uint64 {
	x := lineAddr >> c.setShift
	x ^= x >> 13
	x *= 0x9e3779b97f4a7c15
	return (x >> 32) & c.setMask
}

// Probe reports whether the line is resident, without touching LRU state
// or statistics. Used by issue logic to pre-check structural capacity.
func (c *Cache) Probe(lineAddr uint64) bool {
	set := c.sets[c.setIndex(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// ProbeMiss reports whether accessing the line would require a *new*
// MSHR allocation (i.e. it is neither resident nor already outstanding).
func (c *Cache) ProbeMiss(lineAddr uint64) bool {
	if c.Probe(lineAddr) {
		return false
	}
	return c.mshrs.get(lineAddr) == nil
}

// MSHRFree returns the number of unallocated MSHR entries.
func (c *Cache) MSHRFree() int { return c.mshrLimit - c.mshrs.len() }

// CanMerge reports whether a load to a line with an outstanding miss
// could still join its MSHR entry. It returns true for lines with no
// outstanding miss.
func (c *Cache) CanMerge(lineAddr uint64) bool {
	e := c.mshrs.get(lineAddr)
	return e == nil || len(e.waiters) < c.cfg.MSHRMaxMerged
}

// Access performs a load (write=false) or store (write=true) for waiter.
//
// Loads: Hit touches LRU; Miss allocates an MSHR recording waiter;
// MissMerged appends waiter to the existing entry; Stall means MSHR
// capacity was exhausted and nothing changed.
//
// Stores: with write-allocate the store behaves like a load that also
// dirties the line when it (eventually) arrives — on miss the waiter is
// recorded so the fill can complete it. Without write-allocate a store
// miss returns Bypass and the line is not cached; a store hit updates
// the line in place (dirtying it only under write-back).
//
// owner attributes the line for write-back accounting.
func (c *Cache) Access(lineAddr uint64, write bool, waiter uint64, owner int16) AccessResult {
	set := c.sets[c.setIndex(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			c.useClock++
			set[i].lastUse = c.useClock
			if write {
				if c.cfg.WriteBack {
					set[i].dirty = true
					set[i].owner = owner
				}
				// Write-through: the caller forwards the write
				// downstream; the resident copy stays clean.
			}
			c.stats.Accesses++
			c.stats.Hits++
			return Hit
		}
	}
	if write && !c.cfg.WriteAllocate {
		c.stats.Accesses++
		c.stats.Misses++
		return Bypass
	}
	if e := c.mshrs.get(lineAddr); e != nil {
		if len(e.waiters) >= c.cfg.MSHRMaxMerged {
			c.stats.Stalls++
			return Stall
		}
		e.waiters = append(e.waiters, waiter)
		c.stats.Accesses++
		c.stats.Merged++
		return MissMerged
	}
	if c.mshrs.len() >= c.mshrLimit {
		c.stats.Stalls++
		return Stall
	}
	c.mshrs.insert(lineAddr, waiter)
	c.stats.Accesses++
	c.stats.Misses++
	return Miss
}

// Eviction describes a dirty line displaced by a fill; the caller must
// write it back downstream.
type Eviction struct {
	Line  uint64
	Owner int16
}

// Fill installs a line that arrived from downstream, releases its MSHR
// entry, and returns the recorded waiters plus an optional dirty victim.
// dirty marks the incoming line dirty immediately (write-allocate store
// miss completion).
//
// Filling a line with no outstanding MSHR entry is allowed (prefetch or
// write-validate style fills) and returns no waiters.
func (c *Cache) Fill(lineAddr uint64, owner int16, dirty bool) (waiters []uint64, ev Eviction, evicted bool) {
	waiters = c.mshrs.remove(lineAddr)
	set := c.sets[c.setIndex(lineAddr)]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			// Already resident (racing fill); just merge state.
			if dirty && c.cfg.WriteBack {
				set[i].dirty = true
				set[i].owner = owner
			}
			c.stats.Fills++
			return waiters, Eviction{}, false
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		c.stats.Evicts++
		if v.dirty {
			ev = Eviction{Line: v.tag, Owner: v.owner}
			evicted = true
		}
	}
	c.useClock++
	*v = line{tag: lineAddr, valid: true, dirty: dirty && c.cfg.WriteBack, owner: owner, lastUse: c.useClock}
	c.stats.Fills++
	return waiters, ev, evicted
}

// MarkDirty dirties a resident line (write-back write hit performed by a
// component that used Probe first). It reports whether the line was
// resident.
func (c *Cache) MarkDirty(lineAddr uint64, owner int16) bool {
	set := c.sets[c.setIndex(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].dirty = true
			set[i].owner = owner
			return true
		}
	}
	return false
}

// OutstandingMisses returns the number of allocated MSHR entries.
func (c *Cache) OutstandingMisses() int { return c.mshrs.len() }

// InvalidateAll drops every resident line (dirty contents are discarded;
// the simulator uses this only when an SM is handed to another
// application, where the synthetic address spaces are disjoint). MSHR
// state is preserved so in-flight fills still complete.
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for i := range c.sets[s] {
			c.sets[s][i] = line{}
		}
	}
}

// ResidentLines returns the number of valid lines (test helper).
func (c *Cache) ResidentLines() int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				n++
			}
		}
	}
	return n
}
