package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/memreq"
)

func testCfg() config.DRAMConfig {
	return config.DRAMConfig{
		Banks:       4,
		RowBytes:    1024,
		QueueSize:   8,
		CASLatency:  10,
		RPLatency:   10,
		RCDLatency:  10,
		BurstCycles: 4,
		Sched:       config.MemFRFCFS,
	}
}

func read(line uint64, app int16) memreq.Request {
	return memreq.Request{Kind: memreq.Read, Line: line, App: app, Size: memreq.ControlBytes}
}

func write(line uint64, app int16) memreq.Request {
	return memreq.Request{Kind: memreq.Write, Line: line, App: app, Size: 128}
}

// drain ticks until every request completes, returning completed reads.
func drain(t *testing.T, c *Controller, start uint64, maxCycles int) []memreq.Request {
	t.Helper()
	var out []memreq.Request
	for i := 0; i < maxCycles; i++ {
		out = append(out, c.Tick(start+uint64(i))...)
		if c.Pending() == 0 {
			return out
		}
	}
	t.Fatalf("controller did not drain in %d cycles (pending=%d)", maxCycles, c.Pending())
	return nil
}

func TestSingleReadCompletes(t *testing.T) {
	c := MustNew(testCfg(), 128)
	if !c.Enqueue(read(0, 0), 0) {
		t.Fatal("enqueue failed")
	}
	done := drain(t, c, 1, 1000)
	if len(done) != 1 || done[0].Line != 0 {
		t.Fatalf("completed = %v", done)
	}
	st := c.Stats()
	if st.Reads != 1 || st.RowMisses != 1 || st.RowHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRowHitDetection(t *testing.T) {
	c := MustNew(testCfg(), 128)
	// Two lines in the same 1 kB row.
	c.Enqueue(read(0, 0), 0)
	c.Enqueue(read(128, 0), 0)
	drain(t, c, 1, 1000)
	st := c.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Fatalf("row stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := testCfg()
	c := MustNew(cfg, 128)
	// First request opens row 0 of its bank. Then queue a row-conflict
	// request (same bank, different row) ahead of a row-hit request.
	rowBytes := uint64(cfg.RowBytes)
	banks := uint64(cfg.Banks)
	c.Enqueue(read(0, 0), 0)
	// Same bank, next row: rowID differs by banks (bank = f(rowID)).
	conflict := rowBytes * banks // rowID = banks → may be another bank due to swizzle; find one matching
	b0, _ := c.bankAndRow(0)
	for {
		if b, r := c.bankAndRow(conflict); b == b0 && r != 0 {
			break
		}
		conflict += rowBytes
	}
	hit := uint64(128) // same row as line 0
	// Serve the first request.
	for i := uint64(1); c.Pending() > 0; i++ {
		c.Tick(i)
	}
	c.Enqueue(read(conflict, 0), 100)
	c.Enqueue(read(hit, 0), 101)
	// The next scheduled command must be the row hit despite arriving
	// later.
	var first uint64
	for i := uint64(102); ; i++ {
		done := c.Tick(i)
		if len(done) > 0 {
			first = done[0].Line
			break
		}
	}
	if first != hit {
		t.Fatalf("first completion = %#x, want row hit %#x", first, hit)
	}
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	cfg := testCfg()
	cfg.Sched = config.MemFCFS
	c := MustNew(cfg, 128)
	c.Enqueue(read(0, 0), 0)
	c.Enqueue(read(128, 0), 0)
	c.Enqueue(read(256, 0), 0)
	done := drain(t, c, 1, 2000)
	// FCFS must complete strictly in order.
	if done[0].Line != 0 || done[1].Line != 128 || done[2].Line != 256 {
		t.Fatalf("completion order = %v", done)
	}
}

func TestWritePriorityReadsFirst(t *testing.T) {
	c := MustNew(testCfg(), 128)
	// Queue many writes then one read; the read must complete before the
	// write backlog fully drains (reads have priority).
	for i := 0; i < 8; i++ {
		c.Enqueue(write(uint64(i*4096), 1), 0)
	}
	c.Enqueue(read(128, 0), 0)
	var readDone, writesDone int
	for i := uint64(1); readDone == 0 && i < 5000; i++ {
		for _, d := range c.Tick(i) {
			if d.Kind == memreq.Read {
				readDone = int(i)
			}
		}
		writesDone = int(c.Stats().Writes)
	}
	if readDone == 0 {
		t.Fatal("read never completed")
	}
	if writesDone >= 8 {
		t.Fatal("all writes drained before the read — no read priority")
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := testCfg()
	c := MustNew(cfg, 128)
	for i := 0; i < cfg.QueueSize; i++ {
		if !c.Enqueue(read(uint64(i*128), 0), 0) {
			t.Fatalf("enqueue %d refused below limit", i)
		}
	}
	if c.Enqueue(read(9999*128, 0), 0) {
		t.Fatal("enqueue accepted above read queue limit")
	}
	if c.CanAccept() {
		t.Fatal("CanAccept true with full read queue")
	}
}

func TestPerAppByteAttribution(t *testing.T) {
	c := MustNew(testCfg(), 128)
	c.Enqueue(read(0, 3), 0)
	c.Enqueue(write(4096, 5), 0)
	drain(t, c, 1, 2000)
	if got := c.AppBytes(3); got != 128 {
		t.Fatalf("app 3 bytes = %d, want 128", got)
	}
	if got := c.AppBytes(5); got != 128 {
		t.Fatalf("app 5 bytes = %d, want 128", got)
	}
	if got := c.AppBytes(-1); got != 0 {
		t.Fatalf("unattributed bytes = %d, want 0", got)
	}
}

// TestAllRequestsEventuallyComplete is a liveness property: any random
// mix of reads and writes drains, with reads completing exactly once.
func TestAllRequestsEventuallyComplete(t *testing.T) {
	f := func(lines []uint16) bool {
		if len(lines) > 24 {
			lines = lines[:24]
		}
		c := MustNew(testCfg(), 128)
		reads := 0
		completedEarly := 0
		now := uint64(1)
		for i, l := range lines {
			req := read(uint64(l)*128, 0)
			if i%3 == 0 {
				req = write(uint64(l)*128, 0)
			} else {
				reads++
			}
			for !c.Enqueue(req, now) {
				for _, d := range c.Tick(now) {
					if d.Kind == memreq.Read {
						completedEarly++
					}
				}
				now++
			}
		}
		completed := completedEarly
		for i := 0; i < 100000 && c.Pending() > 0; i++ {
			completed += len(c.Tick(now))
			now++
		}
		return c.Pending() == 0 && completed == reads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
