// Package dram models one memory partition's DRAM controller and
// devices: a bounded request queue, per-bank row buffers, a shared data
// bus, and two scheduling disciplines — FR-FCFS (first-ready FCFS, the
// GPGPU-Sim default that prioritizes row-buffer hits) and plain FCFS.
//
// FR-FCFS is the mechanism the paper singles out (Section 3.2.2): it
// favours streaming, row-local traffic, which is why class M
// applications both achieve high bandwidth and impose large slowdowns on
// everything they co-run with.
package dram

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/memreq"
)

type bank struct {
	openRow   uint64
	hasOpen   bool
	busyUntil uint64
}

type queued struct {
	req     memreq.Request
	arrival uint64
}

type inflight struct {
	req  memreq.Request
	done uint64
}

// Stats counts controller events.
type Stats struct {
	Reads      uint64
	Writes     uint64
	RowHits    uint64
	RowMisses  uint64
	BusyCycles uint64 // cycles the data bus was transferring
}

// RowHitRate returns RowHits / (RowHits+RowMisses), or 0 when idle.
func (s Stats) RowHitRate() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

// Controller is one partition's memory controller. It is driven by
// Tick once per core cycle.
type Controller struct {
	cfg       config.DRAMConfig
	lineBytes int
	banks     []bank
	// queue holds reads; writes buffer separately and drain when the
	// read queue is empty or the write buffer passes its high watermark,
	// as real GPU memory controllers do. Read requests therefore do not
	// sit behind store bursts.
	queue      []queued
	writeQ     []queued
	writeDrain bool
	inflight   []inflight
	busBusy    uint64
	stats      Stats
	// doneBuf backs Tick's completed-request return value so steady-state
	// ticking performs no allocations.
	doneBuf []memreq.Request
	// lastNow is the cycle of the last Tick. Callers may skip ticks
	// whose timing NextEvent proves irrelevant; the next Tick accounts
	// for the gap's bus-busy cycles arithmetically (busBusy is constant
	// across unticked cycles — nothing was scheduled or retired).
	lastNow uint64
	// perApp accumulates data-bus bytes per application index; it grows
	// on demand and ignores unattributed (negative) owners.
	perApp []uint64
}

// New builds a controller for one partition.
func New(cfg config.DRAMConfig, lineBytes int) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if lineBytes <= 0 {
		return nil, fmt.Errorf("dram: line size must be positive (got %d)", lineBytes)
	}
	return &Controller{
		cfg:       cfg,
		lineBytes: lineBytes,
		banks:     make([]bank, cfg.Banks),
	}, nil
}

// MustNew is New panicking on error, for tables and tests.
func MustNew(cfg config.DRAMConfig, lineBytes int) *Controller {
	c, err := New(cfg, lineBytes)
	if err != nil {
		panic(err)
	}
	return c
}

// Stats returns a snapshot of the event counters.
func (c *Controller) Stats() Stats { return c.stats }

// Progress returns a monotone counter of scheduled commands, for cheap
// per-cycle activity detection.
func (c *Controller) Progress() uint64 { return c.stats.Reads + c.stats.Writes }

// AppBytes returns data-bus bytes transferred on behalf of app.
func (c *Controller) AppBytes(app int16) uint64 {
	if app < 0 || int(app) >= len(c.perApp) {
		return 0
	}
	return c.perApp[app]
}

func (c *Controller) chargeApp(app int16, bytes uint64) {
	if app < 0 {
		return
	}
	for int(app) >= len(c.perApp) {
		c.perApp = append(c.perApp, 0)
	}
	c.perApp[app] += bytes
}

// QueueLen returns the number of waiting (unscheduled) requests.
func (c *Controller) QueueLen() int { return len(c.queue) + len(c.writeQ) }

// CanAccept reports whether Enqueue would succeed for either kind.
func (c *Controller) CanAccept() bool {
	return len(c.queue) < c.cfg.QueueSize && len(c.writeQ) < 2*c.cfg.QueueSize
}

// Enqueue adds a request to the controller. It returns false when the
// corresponding queue is full (backpressure), in which case the caller
// retries.
func (c *Controller) Enqueue(req memreq.Request, now uint64) bool {
	if req.Kind == memreq.Write {
		if len(c.writeQ) >= 2*c.cfg.QueueSize {
			return false
		}
		c.writeQ = append(c.writeQ, queued{req: req, arrival: now})
		return true
	}
	if len(c.queue) >= c.cfg.QueueSize {
		return false
	}
	c.queue = append(c.queue, queued{req: req, arrival: now})
	return true
}

// EnqueueForced adds a request even when its queue is over the limit.
// Used only for write-backs evicted by fills, which cannot be refused
// without deadlock; the overflow is bounded by L2 associativity.
func (c *Controller) EnqueueForced(req memreq.Request, now uint64) {
	if req.Kind == memreq.Write {
		c.writeQ = append(c.writeQ, queued{req: req, arrival: now})
		return
	}
	c.queue = append(c.queue, queued{req: req, arrival: now})
}

// bankAndRow decomposes a line address: consecutive rows interleave
// across banks, and the bank index is swizzled with higher-order row
// bits (as real controllers do) so power-of-two strided streams spread
// across banks instead of camping on one.
func (c *Controller) bankAndRow(line uint64) (int, uint64) {
	rowID := line / uint64(c.cfg.RowBytes)
	banks := uint64(c.cfg.Banks)
	row := rowID / banks
	bank := (rowID ^ row ^ (row >> 3)) % banks
	return int(bank), row
}

// Tick advances one core cycle: possibly schedules one queued request
// and returns the read requests whose data transfer completed this
// cycle (writes complete silently). The returned slice is reused by the
// next Tick; callers consume it before ticking again.
func (c *Controller) Tick(now uint64) []memreq.Request {
	if now > c.lastNow+1 && c.busBusy > c.lastNow+1 {
		// Catch up the bus-busy counter over skipped cycles (lastNow+1
		// through now-1, each of which saw the same busBusy value this
		// Tick still sees — nothing was scheduled or retired meanwhile).
		hi := now - 1
		if c.busBusy-1 < hi {
			hi = c.busBusy - 1
		}
		c.stats.BusyCycles += hi - c.lastNow
	}
	c.lastNow = now
	completed := c.doneBuf[:0]
	for i := 0; i < len(c.inflight); {
		if c.inflight[i].done <= now {
			if c.inflight[i].req.Kind == memreq.Read {
				completed = append(completed, c.inflight[i].req)
			}
			c.inflight[i] = c.inflight[len(c.inflight)-1]
			c.inflight = c.inflight[:len(c.inflight)-1]
		} else {
			i++
		}
	}
	c.doneBuf = completed
	if c.busBusy > now {
		c.stats.BusyCycles++
	}
	// One command per cycle may be scheduled; bank busy windows
	// serialize per-bank access while the shared data bus is reserved
	// burst-by-burst, so independent banks overlap their latencies.
	//
	// Reads are served ahead of buffered writes; the write buffer drains
	// in bursts once it passes its high watermark or when no read is
	// serviceable (write-drain hysteresis).
	if !c.writeDrain && len(c.writeQ) >= 3*c.cfg.QueueSize/2 {
		c.writeDrain = true
	}
	if c.writeDrain && len(c.writeQ) <= c.cfg.QueueSize/4 {
		c.writeDrain = false
	}
	if !c.writeDrain {
		if idx := c.pick(c.queue, now); idx >= 0 {
			q := c.queue[idx]
			c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
			c.service(q.req, now)
			return completed
		}
	}
	if idx := c.pick(c.writeQ, now); idx >= 0 {
		q := c.writeQ[idx]
		c.writeQ = append(c.writeQ[:idx], c.writeQ[idx+1:]...)
		c.service(q.req, now)
	} else if c.writeDrain {
		// No serviceable write this cycle: let reads through anyway.
		if idx := c.pick(c.queue, now); idx >= 0 {
			q := c.queue[idx]
			c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
			c.service(q.req, now)
		}
	}
	return completed
}

// pick selects the next request index to service from q, or -1.
//
// FR-FCFS: the oldest request that hits an open row in a ready bank; if
// none, the oldest request whose bank is ready. FCFS: the head request,
// only if its bank is ready (head-of-line blocking is the point).
func (c *Controller) pick(q []queued, now uint64) int {
	if len(q) == 0 {
		return -1
	}
	if c.cfg.Sched == config.MemFCFS {
		b, _ := c.bankAndRow(q[0].req.Line)
		if c.banks[b].busyUntil <= now {
			return 0
		}
		return -1
	}
	firstReady := -1
	for i := range q {
		b, row := c.bankAndRow(q[i].req.Line)
		if c.banks[b].busyUntil > now {
			continue
		}
		if c.banks[b].hasOpen && c.banks[b].openRow == row {
			return i // first-ready row hit
		}
		if firstReady < 0 {
			firstReady = i
		}
	}
	return firstReady
}

// service performs the DRAM timing for one request. Row hits pipeline:
// the column pipeline overlaps CAS latency across back-to-back hits, so
// a hit occupies its bank only for the data burst, while a miss holds it
// through precharge and activation. Completion (data arrival) always
// includes the access latency.
func (c *Controller) service(req memreq.Request, now uint64) {
	bIdx, row := c.bankAndRow(req.Line)
	b := &c.banks[bIdx]
	var lat, occupancy uint64
	if b.hasOpen && b.openRow == row {
		lat = uint64(c.cfg.CASLatency)
		occupancy = uint64(c.cfg.BurstCycles)
		c.stats.RowHits++
	} else {
		lat = uint64(c.cfg.RowMissLatency())
		occupancy = lat + uint64(c.cfg.BurstCycles)
		c.stats.RowMisses++
	}
	b.openRow = row
	b.hasOpen = true
	start := now + lat
	if c.busBusy > start {
		start = c.busBusy
	}
	done := start + uint64(c.cfg.BurstCycles)
	c.busBusy = done
	b.busyUntil = now + occupancy
	if done > b.busyUntil {
		b.busyUntil = done - lat + occupancy // burst slot pushes occupancy window
	}
	c.inflight = append(c.inflight, inflight{req: req, done: done})
	if req.Kind == memreq.Read {
		c.stats.Reads++
	} else {
		c.stats.Writes++
	}
	c.chargeApp(req.App, uint64(c.lineBytes))
}

// Pending returns queued plus in-flight requests (drain check).
func (c *Controller) Pending() int { return len(c.queue) + len(c.writeQ) + len(c.inflight) }

// NoEvent is the NextEvent result of a controller with no outstanding
// work.
const NoEvent = ^uint64(0)

// NextEvent returns the earliest future cycle (> now) at which the
// controller could make progress: an in-flight transfer completes, or a
// queued request's bank frees up and the request becomes serviceable. A
// request whose bank is already free is serviceable on the very next
// tick. The result is a sound lower bound: ticking the controller
// strictly before it is a no-op (modulo the bus-busy counter, which
// FastForward accrues arithmetically).
func (c *Controller) NextEvent(now uint64) uint64 {
	next := uint64(NoEvent)
	for i := range c.inflight {
		if d := c.inflight[i].done; d <= now {
			return now + 1
		} else if d < next {
			next = d
		}
	}
	if t := c.queueNext(c.queue, now); t < next {
		next = t
	}
	if t := c.queueNext(c.writeQ, now); t < next {
		next = t
	}
	return next
}

// queueNext returns the earliest cycle a request in q could be
// scheduled. Under FCFS only the head can ever be picked; under FR-FCFS
// any request whose bank is ready competes.
func (c *Controller) queueNext(q []queued, now uint64) uint64 {
	if len(q) == 0 {
		return NoEvent
	}
	if c.cfg.Sched == config.MemFCFS {
		b, _ := c.bankAndRow(q[0].req.Line)
		if bu := c.banks[b].busyUntil; bu > now {
			return bu
		}
		return now + 1
	}
	next := uint64(NoEvent)
	for i := range q {
		b, _ := c.bankAndRow(q[i].req.Line)
		bu := c.banks[b].busyUntil
		if bu <= now {
			return now + 1
		}
		if bu < next {
			next = bu
		}
	}
	return next
}
