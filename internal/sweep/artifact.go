package sweep

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// CellResult is one grid point's row: its identifying parameter values
// (Artifact.Params order) and its metrics (Artifact.Metrics order).
type CellResult struct {
	Params []string  `json:"params"`
	Values []float64 `json:"values"`
}

// Artifact is one sweep's combined output: every cell's metrics in grid
// order, self-describing via the column name lists. The CSV and JSON
// renderings round-trip through Load, and both are deterministic.
type Artifact struct {
	Params  []string     `json:"params"`
	Metrics []string     `json:"metrics"`
	Cells   []CellResult `json:"cells"`
}

// key is the cell's identity across artifacts: its parameter values
// joined. Two sweeps of the same grid shape produce matching keys even
// if the metric set evolved between them.
func (c CellResult) key() string { return strings.Join(c.Params, " ") }

// WriteCSV renders the artifact as one tidy table: parameter columns
// first, then metric columns, one row per cell. Floats use the shortest
// round-trippable form, so the output is deterministic and loses no
// precision.
func (a *Artifact) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write(append(append([]string{}, a.Params...), a.Metrics...)); err != nil {
		return fmt.Errorf("sweep: write csv: %w", err)
	}
	rec := make([]string, 0, len(a.Params)+len(a.Metrics))
	for _, c := range a.Cells {
		rec = append(rec[:0], c.Params...)
		for _, v := range c.Values {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("sweep: write csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("sweep: write csv: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sweep: write csv: %w", err)
	}
	return nil
}

// WriteJSON renders the artifact as one JSON document, deterministic
// like the CSV form.
func (a *Artifact) WriteJSON(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(a); err != nil {
		return fmt.Errorf("sweep: write json: %w", err)
	}
	return nil
}

// Load reads an artifact back from either rendering, sniffing the
// format from the first byte ('{' = JSON, else CSV). CSV columns are
// split into parameters and metrics by name: the leading run of
// ParamColumns names is the identity, everything after is numeric.
func Load(r io.Reader) (*Artifact, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sweep: load: %w", err)
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("sweep: load: empty artifact")
	}
	if trimmed[0] == '{' {
		var a Artifact
		if err := json.Unmarshal(trimmed, &a); err != nil {
			return nil, fmt.Errorf("sweep: load json: %w", err)
		}
		return &a, nil
	}
	records, err := csv.NewReader(bytes.NewReader(trimmed)).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("sweep: load csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("sweep: load csv: no header")
	}
	header := records[0]
	isParam := make(map[string]bool, len(ParamColumns))
	for _, p := range ParamColumns {
		isParam[p] = true
	}
	np := 0
	for np < len(header) && isParam[header[np]] {
		np++
	}
	if np == 0 {
		return nil, fmt.Errorf("sweep: load csv: no parameter columns in header %v", header)
	}
	a := &Artifact{Params: header[:np], Metrics: header[np:]}
	for i, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("sweep: load csv: row %d has %d fields, header has %d", i+1, len(rec), len(header))
		}
		c := CellResult{Params: rec[:np]}
		for _, s := range rec[np:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("sweep: load csv: row %d: %w", i+1, err)
			}
			c.Values = append(c.Values, v)
		}
		a.Cells = append(a.Cells, c)
	}
	return a, nil
}

// metric returns cell c's value for the named metric in a, or false
// when a's metric set does not include it.
func (a *Artifact) metric(c CellResult, name string) (float64, bool) {
	for i, m := range a.Metrics {
		if m == name && i < len(c.Values) {
			return c.Values[i], true
		}
	}
	return 0, false
}

// Delta prints a cell-by-cell, metric-by-metric comparison of two sweep
// artifacts, mirroring scripts/benchdelta's snapshot diff: cells in the
// new artifact's order first (baseline-only cells appended), each
// metric as baseline -> new with the relative change, and one-sided
// cells or metrics reported as new/gone rather than misreported.
func Delta(base, cur *Artifact, w io.Writer) error {
	bw := bufio.NewWriter(w)
	baseBy := make(map[string]CellResult, len(base.Cells))
	for _, c := range base.Cells {
		baseBy[c.key()] = c
	}
	curSeen := make(map[string]bool, len(cur.Cells))
	for _, c := range cur.Cells {
		curSeen[c.key()] = true
	}
	cells := append([]CellResult(nil), cur.Cells...)
	onlyBase := map[string]bool{}
	for _, c := range base.Cells {
		if !curSeen[c.key()] {
			cells = append(cells, c)
			onlyBase[c.key()] = true
		}
	}
	for _, c := range cells {
		if onlyBase[c.key()] {
			fmt.Fprintf(bw, "%-64s gone (was in baseline)\n", c.key())
			continue
		}
		b, hasBase := baseBy[c.key()]
		if !hasBase {
			fmt.Fprintf(bw, "%-64s new cell\n", c.key())
			// Still print its metrics so the new cell is readable.
		}
		// The new artifact's metric order, then baseline-only metrics.
		metrics := append([]string(nil), cur.Metrics...)
		for _, m := range base.Metrics {
			if _, ok := cur.metric(c, m); !ok {
				metrics = append(metrics, m)
			}
		}
		for _, m := range metrics {
			nv, hasN := cur.metric(c, m)
			var ov float64
			hasO := false
			if hasBase {
				ov, hasO = base.metric(b, m)
			}
			label := fmt.Sprintf("%s %s", c.key(), m)
			switch {
			case !hasN && !hasO:
			case !hasN:
				fmt.Fprintf(bw, "  %-72s %12.4g -> gone\n", label, ov)
			case !hasO:
				fmt.Fprintf(bw, "  %-72s %12s -> %-12.4g (new)\n", label, "-", nv)
			default:
				delta := "n/a"
				if ov != 0 {
					delta = fmt.Sprintf("%+.1f%%", 100*(nv-ov)/math.Abs(ov))
				} else if nv == 0 {
					delta = "±0.0%"
				}
				fmt.Fprintf(bw, "  %-72s %12.4g -> %-12.4g %s\n", label, ov, nv, delta)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("sweep: delta: %w", err)
	}
	return nil
}
