package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/fleet"
	"repro/internal/rng"
)

// Runner executes a grid's cells over a bounded worker pool.
type Runner struct {
	// Workers bounds concurrent cells (0 = NumCPU). Each cell is a full
	// fleet run; under the modeled engine a cell is pure computation, so
	// one worker per core is the sweet spot.
	Workers int
	// Roster resolves a grid roster label to calibrated device specs.
	// cmd/sweep parses labels like "2xGTX480,2xSmall-8SM" and calibrates
	// via the disk cache; tests and the experiments scenario resolve
	// labels to pre-built testkit pipelines instead.
	Roster func(label string) ([]fleet.DeviceSpec, error)
	// Names is the application universe arrivals draw from.
	Names []string
	// Progress, when set, observes each completed cell (called from
	// worker goroutines; must be safe for concurrent use).
	Progress func(done, total int)
}

// Run expands and executes the grid, returning one artifact with a row
// per cell in grid order. Rosters are resolved once per distinct label
// before any cell runs (calibration is sequential and shared), and each
// arrival kind's stream is generated once and replayed by every cell of
// that kind — differences between cells are pure configuration, never
// traffic. The first cell error aborts the sweep.
func (r Runner) Run(g Grid) (*Artifact, error) {
	g = g.withDefaults()
	cells, err := g.Expand()
	if err != nil {
		return nil, err
	}
	if r.Roster == nil {
		return nil, fmt.Errorf("sweep: Runner needs a roster resolver")
	}
	if len(r.Names) == 0 {
		return nil, fmt.Errorf("sweep: Runner needs an application universe")
	}
	// Resolve every distinct roster up front. Calibration hits the disk
	// cache (or runs the campaign once); doing it here keeps the worker
	// pool free of the one genuinely serial, expensive step.
	rosters := make(map[string][]fleet.DeviceSpec)
	for _, c := range cells {
		if _, ok := rosters[c.Roster]; ok {
			continue
		}
		specs, err := r.Roster(c.Roster)
		if err != nil {
			return nil, fmt.Errorf("sweep: roster %q: %w", c.Roster, err)
		}
		rosters[c.Roster] = specs
	}
	// One arrival stream per kind, seeded from the grid seed and the
	// kind alone — every cell of a kind replays identical traffic.
	// Closed-loop cells have no stream: their traffic is generated
	// inside the run, seeded the same way, so every closed cell's
	// clients also replay identical draws.
	streams := make(map[fleet.ArrivalKind][]fleet.Arrival)
	for _, c := range cells {
		if _, ok := streams[c.Arrival]; ok || c.Arrival == fleet.ClosedLoop {
			continue
		}
		acfg := fleet.ArrivalConfig{
			Kind: c.Arrival, Jobs: g.Jobs, Rate: g.Rate,
			LatencyFrac: g.LatencyFrac, Deadline: g.Deadline,
			Seed: rng.Hash2(g.Seed, uint64(c.Arrival)+1),
		}
		arr, err := acfg.Generate(r.Names)
		if err != nil {
			return nil, fmt.Errorf("sweep: %v arrivals: %w", c.Arrival, err)
		}
		streams[c.Arrival] = arr
	}

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	// Results land at their cell's index, so the artifact's order is the
	// grid's regardless of worker scheduling.
	values := make([][]float64, len(cells))
	errs := make([]error, len(cells))
	idx := make(chan int)
	var wg sync.WaitGroup
	var done int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				values[i], errs[i] = r.runCell(g, cells[i], rosters[cells[i].Roster], streams[cells[i].Arrival])
				if r.Progress != nil {
					mu.Lock()
					done++
					r.Progress(done, len(cells))
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: cell %v: %w", cells[i].Params(), err)
		}
	}
	art := &Artifact{Params: append([]string(nil), ParamColumns...), Metrics: append([]string(nil), MetricColumns...)}
	for i, c := range cells {
		art.Cells = append(art.Cells, CellResult{Params: c.Params(), Values: values[i]})
	}
	return art, nil
}

// runCell executes one grid point.
func (r Runner) runCell(g Grid, c Cell, roster []fleet.DeviceSpec, arrivals []fleet.Arrival) ([]float64, error) {
	cfg := fleet.Config{
		Devices:    roster,
		NC:         g.NC,
		Policy:     c.Policy,
		Aging:      g.Aging,
		SLO:        c.SLO,
		Engine:     c.Engine,
		HybridWarm: g.HybridWarm,
		Admission:  c.Admission,
		Autoscale:  c.Autoscale,
		Chaos:      c.Chaos,
		Shards:     c.Shards,
	}
	if c.Arrival == fleet.ClosedLoop {
		cfg.Closed = fleet.ClosedConfig{
			Enabled: true, Clients: g.Clients, Requests: g.Requests,
			Think: g.Think, Timeout: g.Timeout, Retries: g.Retries,
			LatencyFrac: g.LatencyFrac, Deadline: g.Deadline,
			Seed:     rng.Hash2(g.Seed, uint64(fleet.ClosedLoop)+1),
			Universe: r.Names,
		}
	}
	f, err := fleet.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := f.Run(arrivals)
	if err != nil {
		return nil, err
	}
	return Metrics(res), nil
}
