// Package sweep expands a scenario grid — dispatch policy × completion
// engine × roster × arrival process × SLO mode — into fleet runs, fans
// them over a bounded worker pool, and collects every cell's summary
// metrics into one tidy artifact (CSV or JSON) with the cell parameters
// as leading columns. It is the Go-native analogue of mgpusim's
// collect-stats/compare-stats scripting: one command produces the whole
// comparison table, and Delta diffs two such artifacts cell by cell.
//
// Determinism carries through: the grid expands in a fixed order, every
// arrival process is generated once per kind from a seed derived only
// from the grid seed, cells of the same arrival kind see the very same
// traffic (so differences between cells are pure configuration), and
// the artifact's cells appear in grid order regardless of which worker
// finished first — the same grid twice is byte-identical output.
package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fleet"
	"repro/internal/sched"
)

// Grid is a sweep specification: the axes to cross plus the scalar
// parameters every cell shares. The JSON form is what cmd/sweep's
// -config flag reads.
type Grid struct {
	// Policies, Engines, Rosters, Arrivals and SLOs are the grid axes,
	// spelled exactly like the cmd/fleet flags (-policy, -engine,
	// -fleet, -arrivals, -slo). Empty axes default to a single entry:
	// ilp-smra, modeled, 4xGTX480, poisson, off.
	Policies []string `json:"policies"`
	Engines  []string `json:"engines"`
	Rosters  []string `json:"rosters"`
	Arrivals []string `json:"arrivals"`
	SLOs     []string `json:"slos"`
	// Admissions and Autoscales are the control-surface axes, spelled
	// like fleet.ParseAdmission / fleet.ParseAutoscale: "off",
	// "reject[-modeled]:MAXWAIT" or "degrade[-modeled]:MAXWAIT", and
	// "off" or "MIN:MAX". Empty axes default to off — existing grids are
	// unchanged.
	Admissions []string `json:"admissions"`
	Autoscales []string `json:"autoscales"`
	// Chaoses is the failure-injection axis, spelled like
	// fleet.ParseChaosSpec: "off", a "KIND@CYCLE:DEV,..." trace, or
	// "mtbf:MTBF:MTTR[:HORIZON]" for the generator (seeded from the grid
	// seed). Empty defaults to off.
	Chaoses []string `json:"chaoses"`
	// Shards is the event-loop shard axis (-shards); it only applies to
	// modeled-engine cells. Each count is deterministic (repeat sweeps
	// are byte-identical), and counts above 1 split the backlog K ways,
	// so the axis exposes both the wall-time win and the K-way
	// partition's scheduling cost. Empty defaults to the single
	// classic loop.
	Shards []int `json:"shards"`
	// NC, Jobs, Rate, LatencyFrac, Deadline, Aging and HybridWarm are
	// shared by every cell (zero picks the cmd/fleet defaults: NC 2,
	// 32 jobs, rate 0.5/kcycle).
	NC          int     `json:"nc"`
	Jobs        int     `json:"jobs"`
	Rate        float64 `json:"rate"`
	LatencyFrac float64 `json:"latency_frac"`
	Deadline    uint64  `json:"deadline"`
	Aging       float64 `json:"aging"`
	HybridWarm  int     `json:"hybrid_warm"`
	// Clients, Requests, Think, Timeout and Retries shape closed-loop
	// cells (an "closed" entry on the Arrivals axis): client-pool count,
	// requests per client, mean think time, per-request patience and the
	// retry budget. Zero picks the fleet defaults (8 clients). Open-loop
	// cells ignore them.
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	Think    float64 `json:"think"`
	Timeout  uint64  `json:"timeout"`
	Retries  int     `json:"retries"`
	// Seed seeds the arrival streams (one derived stream per arrival
	// kind, so every cell of a kind replays identical traffic).
	Seed uint64 `json:"seed"`
}

// withDefaults resolves empty axes and zero scalars.
func (g Grid) withDefaults() Grid {
	def := func(axis []string, v string) []string {
		if len(axis) == 0 {
			return []string{v}
		}
		return axis
	}
	g.Policies = def(g.Policies, "ilp-smra")
	g.Engines = def(g.Engines, "modeled")
	g.Rosters = def(g.Rosters, "4xGTX480")
	g.Arrivals = def(g.Arrivals, "poisson")
	g.SLOs = def(g.SLOs, "off")
	g.Admissions = def(g.Admissions, "off")
	g.Autoscales = def(g.Autoscales, "off")
	g.Chaoses = def(g.Chaoses, "off")
	if len(g.Shards) == 0 {
		g.Shards = []int{1}
	}
	if g.NC == 0 {
		g.NC = 2
	}
	if g.Clients == 0 {
		g.Clients = 8
	}
	if g.Jobs == 0 {
		g.Jobs = 32
	}
	if g.Rate == 0 {
		g.Rate = 0.5
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	return g
}

// Cell is one fully-resolved grid point.
type Cell struct {
	Policy        sched.Policy
	Engine        fleet.EngineMode
	Roster        string
	Arrival       fleet.ArrivalKind
	SLOName       string
	SLO           fleet.SLOConfig
	AdmissionName string
	Admission     fleet.AdmissionConfig
	AutoscaleName string
	Autoscale     fleet.AutoscaleConfig
	ChaosName     string
	Chaos         fleet.ChaosConfig
	Shards        int
}

// ParamColumns names Cell.Params' entries, in order — the artifact's
// leading columns, and how Delta identifies the same cell across two
// artifacts.
var ParamColumns = []string{"policy", "engine", "roster", "arrivals", "slo", "admission", "autoscale", "shards", "chaos"}

// Params is the cell's identity as column values, in ParamColumns
// order. Policies use the CLI spelling (fcfs, ilp-smra) rather than the
// paper's display names (Even/FCFS), so an artifact's parameter columns
// feed straight back into a grid — and two artifacts key the same cell
// identically even when their grids used different aliases.
func (c Cell) Params() []string {
	return []string{
		policyName(c.Policy), c.Engine.String(), c.Roster, c.Arrival.String(),
		c.SLOName, c.AdmissionName, c.AutoscaleName, strconv.Itoa(c.Shards),
		c.ChaosName,
	}
}

// policyName is the canonical CLI spelling of a policy (Policy.String
// renders the paper's display names instead).
func policyName(p sched.Policy) string {
	switch p {
	case sched.Serial:
		return "serial"
	case sched.FCFS:
		return "fcfs"
	case sched.ProfileBased:
		return "profile"
	case sched.ILP:
		return "ilp"
	case sched.ILPSMRA:
		return "ilp-smra"
	default:
		return strings.ToLower(p.String())
	}
}

// Expand resolves the grid into its cells, validating every axis entry
// up front (a typo fails the whole sweep before any cell runs). The
// order is fixed — roster, then arrivals, then policy, then engine,
// then SLO mode, then shards, then chaos — so the artifact's rows are
// reproducible.
func (g Grid) Expand() ([]Cell, error) {
	g = g.withDefaults()
	policies := make([]sched.Policy, len(g.Policies))
	for i, s := range g.Policies {
		p, err := sched.ParsePolicy(s)
		if err != nil {
			return nil, err
		}
		policies[i] = p
	}
	engines := make([]fleet.EngineMode, len(g.Engines))
	for i, s := range g.Engines {
		e, err := fleet.ParseEngine(s)
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}
	arrivals := make([]fleet.ArrivalKind, len(g.Arrivals))
	for i, s := range g.Arrivals {
		k, err := fleet.ParseArrivalKind(s)
		if err != nil {
			return nil, err
		}
		if k == fleet.Trace {
			return nil, fmt.Errorf("sweep: trace arrivals need per-entry data; grids sweep generated processes (poisson, bursty)")
		}
		arrivals[i] = k
	}
	slos := make([]fleet.SLOConfig, len(g.SLOs))
	for i, s := range g.SLOs {
		cfg, err := fleet.ParseSLOMode(s)
		if err != nil {
			return nil, err
		}
		slos[i] = cfg
	}
	admissions := make([]fleet.AdmissionConfig, len(g.Admissions))
	for i, s := range g.Admissions {
		cfg, err := fleet.ParseAdmission(s)
		if err != nil {
			return nil, err
		}
		admissions[i] = cfg
	}
	autoscales := make([]fleet.AutoscaleConfig, len(g.Autoscales))
	for i, s := range g.Autoscales {
		cfg, err := fleet.ParseAutoscale(s)
		if err != nil {
			return nil, err
		}
		autoscales[i] = cfg
	}
	chaoses := make([]fleet.ChaosConfig, len(g.Chaoses))
	for i, s := range g.Chaoses {
		cfg, err := fleet.ParseChaosSpec(s)
		if err != nil {
			return nil, err
		}
		// Generator cells draw their failure schedule from the grid seed,
		// so repeat sweeps stay byte-identical.
		cfg.Seed = g.Seed
		chaoses[i] = cfg
	}
	for _, r := range g.Rosters {
		if r == "" {
			return nil, fmt.Errorf("sweep: empty roster entry")
		}
	}
	for _, s := range g.Shards {
		if s < 1 {
			return nil, fmt.Errorf("sweep: shard count %d must be at least 1", s)
		}
		if s > 1 {
			for _, e := range engines {
				if e != fleet.Modeled {
					return nil, fmt.Errorf("sweep: shards > 1 only applies to the modeled engine (grid includes %v)", e)
				}
			}
		}
	}
	var cells []Cell
	for _, roster := range g.Rosters {
		for _, arr := range arrivals {
			for _, pol := range policies {
				for _, eng := range engines {
					for si, slo := range slos {
						for ai, adm := range admissions {
							for oi, scale := range autoscales {
								for _, sh := range g.Shards {
									for ci, chaos := range chaoses {
										name := strings.ToLower(g.Chaoses[ci])
										if name == "" {
											name = "off"
										}
										cells = append(cells, Cell{
											Policy:  pol,
											Engine:  eng,
											Roster:  roster,
											Arrival: arr,
											// Normalized spelling, so two artifacts key the
											// same cell identically whatever case the grid
											// used.
											SLOName:       strings.ToLower(g.SLOs[si]),
											SLO:           slo,
											AdmissionName: strings.ToLower(g.Admissions[ai]),
											Admission:     adm,
											AutoscaleName: strings.ToLower(g.Autoscales[oi]),
											Autoscale:     scale,
											ChaosName:     name,
											Chaos:         chaos,
											Shards:        sh,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// MetricColumns names every cell's collected metrics, in the order
// Metrics returns them. Cycle-valued metrics are reported in kilocycles
// to match the summary's spelling.
var MetricColumns = []string{
	"throughput", "makespan_kcyc", "mean_util",
	"wait_p50_kcyc", "wait_p95_kcyc", "wait_p99_kcyc",
	"turn_p50_kcyc", "turn_p95_kcyc", "turn_p99_kcyc",
	"latency_jobs", "misses", "miss_rate", "evictions", "wasted_kcyc",
	"groups", "groups_ilp", "groups_cycle", "groups_modeled",
	"submitted", "completed", "rejected", "degraded", "abandoned", "retried",
	"provisions", "decommissions",
	"failures", "drains", "restores", "chaos_evictions",
}

// Metrics projects one run's result onto MetricColumns. The control
// counters (submitted through decommissions) are zero on cells without
// a control surface — the submission ledger only runs when closed-loop
// traffic, admission control or the autoscaler is configured.
func Metrics(res fleet.Result) []float64 {
	wait := res.WaitSummary()
	turn := res.TurnaroundSummary()
	return []float64{
		res.Throughput(), float64(res.Makespan) / 1000, res.MeanUtilization(),
		wait.P50, wait.P95, wait.P99,
		turn.P50, turn.P95, turn.P99,
		float64(res.LatencyJobs()), float64(res.DeadlineMisses()), res.MissRate(),
		float64(len(res.Evictions)), float64(res.WastedCycles()) / 1000,
		float64(res.Groups), float64(res.ILPGroups), float64(res.CycleGroups), float64(res.ModeledGroups),
		float64(res.Submitted), float64(res.CompletedJobs()), float64(res.Rejected),
		float64(res.Degraded), float64(res.Abandoned), float64(res.Retried),
		float64(res.Provisions), float64(res.Decommissions),
		float64(res.Failures), float64(res.Drains), float64(res.Restores),
		float64(res.ChaosEvictions),
	}
}
