package sweep

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/testkit"
)

var (
	pipeMu   sync.Mutex
	testPipe *core.Pipeline
)

// testRunner builds a Runner over the miniature testkit device and
// universe (calibrated once, shared across tests).
func testRunner(t *testing.T, workers int) Runner {
	t.Helper()
	pipeMu.Lock()
	defer pipeMu.Unlock()
	if testPipe == nil {
		p, err := core.New(testkit.Config())
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Init(testkit.Universe()); err != nil {
			t.Fatal(err)
		}
		testPipe = p
	}
	pipe := testPipe
	return Runner{
		Workers: workers,
		Names:   []string{"miniM", "miniMC", "miniC", "miniA"},
		Roster: func(label string) ([]fleet.DeviceSpec, error) {
			// Tests spell rosters as a bare device count over the one
			// test pipeline.
			count := int(label[0] - '0')
			return []fleet.DeviceSpec{{Pipe: pipe, Count: count}}, nil
		},
	}
}

func TestGridExpandOrderAndDefaults(t *testing.T) {
	g := Grid{
		Policies: []string{"fcfs", "ilp-smra"},
		SLOs:     []string{"off", "PREEMPT"},
		Rosters:  []string{"2"},
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	// SLO varies fastest, policy above it; defaults fill the rest.
	wantSLO := []string{"off", "preempt", "off", "preempt"}
	wantPolicy := []string{"fcfs", "fcfs", "ilp-smra", "ilp-smra"}
	for i, c := range cells {
		if c.SLOName != wantSLO[i] || policyName(c.Policy) != wantPolicy[i] {
			t.Fatalf("cell %d = %v, want policy %s slo %s", i, c.Params(), wantPolicy[i], wantSLO[i])
		}
		if c.Engine != fleet.Modeled || c.Arrival != fleet.Poisson {
			t.Fatalf("cell %d defaults wrong: %v", i, c.Params())
		}
		if len(c.Params()) != len(ParamColumns) {
			t.Fatalf("params/columns mismatch: %v vs %v", c.Params(), ParamColumns)
		}
	}
}

func TestGridExpandRejectsBadAxes(t *testing.T) {
	cases := []Grid{
		{Policies: []string{"nope"}},
		{Engines: []string{"warp-speed"}},
		{Arrivals: []string{"trace"}},
		{SLOs: []string{"sometimes"}},
		{Rosters: []string{""}},
	}
	for i, g := range cases {
		if _, err := g.Expand(); err == nil {
			t.Errorf("case %d: bad grid %+v expanded without error", i, g)
		}
	}
}

// smokeGrid is the 2×2 grid the CI smoke step runs: two policies under
// two SLO modes on the modeled engine, identical traffic everywhere.
func smokeGrid() Grid {
	return Grid{
		Policies:    []string{"fcfs", "ilp-smra"},
		SLOs:        []string{"off", "preempt"},
		Engines:     []string{"modeled"},
		Rosters:     []string{"2"},
		Jobs:        24,
		Rate:        1.2,
		LatencyFrac: 0.25,
		Deadline:    60_000,
		Seed:        0xABC,
	}
}

// TestSweepSmokeDeterministic runs the smoke grid twice over a parallel
// worker pool and requires byte-identical artifacts — worker scheduling
// must never leak into the output. This is the test CI's sweep smoke
// step runs in short mode.
func TestSweepSmokeDeterministic(t *testing.T) {
	r := testRunner(t, 4)
	a, err := r.Run(smokeGrid())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(smokeGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(a.Cells))
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteCSV(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("two identical sweeps differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", bufA.String(), bufB.String())
	}
	// The artifact parses back and survives the round trip.
	loaded, err := Load(bytes.NewReader(bufA.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := loaded.WriteCSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), buf2.Bytes()) {
		t.Fatalf("CSV round trip not identical:\n%s\nvs\n%s", bufA.String(), buf2.String())
	}
	// Sanity on content: every cell completed all jobs somewhere — the
	// groups metric is positive, throughput is positive.
	for _, c := range loaded.Cells {
		if v, ok := loaded.metric(c, "throughput"); !ok || v <= 0 {
			t.Errorf("cell %v: throughput %v", c.Params, v)
		}
		if v, ok := loaded.metric(c, "groups"); !ok || v <= 0 {
			t.Errorf("cell %v: groups %v", c.Params, v)
		}
	}
}

// TestSweepClosedLoopAxes runs a control-surface grid: closed-loop
// traffic crossed with admission off/reject and an elastic roster.
// Determinism must hold (repeat sweeps byte-identical), every closed
// cell must carry the submission ledger, and the admission ablation
// must be visible in the rejected column.
func TestSweepClosedLoopAxes(t *testing.T) {
	grid := func() Grid {
		return Grid{
			Policies:    []string{"ilp-smra"},
			Engines:     []string{"modeled"},
			Rosters:     []string{"4"},
			Arrivals:    []string{"closed"},
			Admissions:  []string{"off", "reject:25000"},
			Autoscales:  []string{"off", "1:4"},
			Clients:     12,
			Requests:    4,
			Think:       5_000,
			LatencyFrac: 0.25,
			Deadline:    60_000,
			Seed:        0xC10,
		}
	}
	r := testRunner(t, 4)
	a, err := r.Run(grid())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(a.Cells))
	}
	b, err := r.Run(grid())
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.WriteCSV(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteCSV(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("two identical closed sweeps differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", bufA.String(), bufB.String())
	}
	loaded, err := Load(bytes.NewReader(bufA.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range loaded.Cells {
		sub, ok := loaded.metric(c, "submitted")
		if !ok || sub < 48 {
			t.Errorf("cell %v: submitted %v, want >= 48", c.Params, sub)
		}
		comp, _ := loaded.metric(c, "completed")
		rej, _ := loaded.metric(c, "rejected")
		aband, _ := loaded.metric(c, "abandoned")
		if sub != comp+rej+aband {
			t.Errorf("cell %v: conservation broken: %v != %v + %v + %v", c.Params, sub, comp, rej, aband)
		}
		// The admission axis must bite exactly on its cells.
		admission := c.Params[5]
		if rejecting := admission != "off"; (rej > 0) != rejecting {
			t.Errorf("cell %v: admission %q but rejected %v", c.Params, admission, rej)
		}
	}
}

func TestArtifactJSONRoundTrip(t *testing.T) {
	a := &Artifact{
		Params:  []string{"policy", "slo"},
		Metrics: []string{"throughput", "miss_rate"},
		Cells: []CellResult{
			{Params: []string{"fcfs", "off"}, Values: []float64{1.25, 0}},
			{Params: []string{"ilp-smra", "preempt"}, Values: []float64{1.5, 0.125}},
		},
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := loaded.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("JSON round trip differs:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestDeltaHandlesOneSidedCellsAndMetrics(t *testing.T) {
	base := &Artifact{
		Params:  []string{"policy"},
		Metrics: []string{"throughput", "old_metric"},
		Cells: []CellResult{
			{Params: []string{"fcfs"}, Values: []float64{1.0, 7}},
			{Params: []string{"serial"}, Values: []float64{0.5, 3}},
		},
	}
	cur := &Artifact{
		Params:  []string{"policy"},
		Metrics: []string{"throughput", "new_metric"},
		Cells: []CellResult{
			{Params: []string{"fcfs"}, Values: []float64{1.25, 9}},
			{Params: []string{"ilp"}, Values: []float64{1.5, 11}},
		},
	}
	var buf bytes.Buffer
	if err := Delta(base, cur, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"+25.0%",                 // fcfs throughput 1.0 -> 1.25
		"new cell",               // ilp only in cur
		"gone (was in baseline)", // serial only in base
		"fcfs old_metric",        // baseline-only metric still reported
		"-> gone",                // ... as gone
		"(new)",                  // cur-only metric marked new
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delta output missing %q:\n%s", want, out)
		}
	}
}
