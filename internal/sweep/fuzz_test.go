package sweep

import (
	"encoding/json"
	"reflect"
	"testing"
)

// fuzzCellCap bounds the grids the fuzzer will expand: the axis cross
// product grows multiplicatively, and the fuzzer will happily invent
// grids with thousands of entries per axis. Oversized grids are still
// parsed (Unmarshal must not panic) but not expanded.
const fuzzCellCap = 4096

// gridCells is the expansion size before Expand materializes it.
func gridCells(g Grid) int {
	n := 1
	for _, axis := range [][]string{
		g.Policies, g.Engines, g.Rosters, g.Arrivals,
		g.SLOs, g.Admissions, g.Autoscales,
	} {
		if len(axis) > 0 {
			n *= len(axis)
		}
		if n > fuzzCellCap {
			return n
		}
	}
	if len(g.Shards) > 0 {
		n *= len(g.Shards)
	}
	return n
}

// FuzzGridJSON drives cmd/sweep's -config path: arbitrary bytes are
// unmarshalled into a Grid and expanded. Neither step may panic, and
// any grid that expands must do so deterministically — a JSON
// round-trip of the grid re-expands to identical cells, each carrying
// exactly ParamColumns parameters.
func FuzzGridJSON(f *testing.F) {
	seeds := []Grid{
		{},
		smokeGrid(),
		{
			Policies: []string{"fcfs", "ilp-smra"}, Engines: []string{"modeled"},
			Rosters: []string{"2"}, Arrivals: []string{"closed"},
			Admissions: []string{"off", "reject:25000"}, Autoscales: []string{"off", "1:4"},
			Shards: []int{1, 2}, Clients: 12, Requests: 4, Think: 5000,
			Timeout: 60000, Retries: 1, Deadline: 60000, Seed: 7,
		},
	}
	for _, g := range seeds {
		data, err := json.Marshal(g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"policies":["nope"]}`))
	f.Add([]byte(`{"shards":[0]}`))
	f.Add([]byte(`{"shards":[4],"engines":["cycle"]}`))
	f.Add([]byte(`{"arrivals":["trace"]}`))
	f.Add([]byte(`{"rosters":[""]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"jobs":-1,"rate":-0.5,"seed":18446744073709551615}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Grid
		if json.Unmarshal(data, &g) != nil {
			return
		}
		if gridCells(g) > fuzzCellCap {
			return
		}
		cells, err := g.Expand()
		if err != nil {
			return
		}
		if len(cells) == 0 {
			t.Fatalf("grid %s expanded to no cells without error", data)
		}
		for i, c := range cells {
			if len(c.Params()) != len(ParamColumns) {
				t.Fatalf("grid %s cell %d: %d params, want %d", data, i, len(c.Params()), len(ParamColumns))
			}
		}
		// Round-trip: the grid survives JSON and re-expands identically.
		again, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("grid %s does not re-marshal: %v", data, err)
		}
		var g2 Grid
		if err := json.Unmarshal(again, &g2); err != nil {
			t.Fatalf("grid %s JSON round-trip does not parse: %v", again, err)
		}
		cells2, err := g2.Expand()
		if err != nil {
			t.Fatalf("grid %s JSON round-trip does not expand: %v", again, err)
		}
		if len(cells) != len(cells2) {
			t.Fatalf("grid %s round-trip: %d cells, want %d", again, len(cells2), len(cells))
		}
		for i := range cells {
			if !reflect.DeepEqual(cells[i].Params(), cells2[i].Params()) {
				t.Fatalf("grid %s round-trip cell %d: %v, want %v", again, i, cells2[i].Params(), cells[i].Params())
			}
		}
	})
}
