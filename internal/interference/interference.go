// Package interference reproduces the paper's interference analysis
// (Section 3.2.2, Figure 3.4): every application is co-run with every
// other application on an evenly partitioned device, the slowdown of
// each relative to its solo full-device run is recorded, and the results
// are averaged per (class, co-runner class) pair.
//
// The resulting matrix is the input to the ILP matcher: the inverse
// slowdowns of a candidate pattern are what the objective function
// maximizes (Equations 3.3–3.4).
package interference

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/classify"
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kernel"
	"repro/internal/profile"
	"repro/internal/stats"
)

// MaxCoRunCycles bounds one co-run simulation.
const MaxCoRunCycles = 60_000_000

// appBaseStride separates concurrently resident address spaces.
const appBaseStride = uint64(1) << 40

// CoRun executes the given kernels concurrently, each on its own SM
// set, until every one finishes. smSets[i] lists the SM ids of kernels[i].
// It returns the per-application counters in input order.
func CoRun(cfg config.GPUConfig, kernels []kernel.Params, smSets [][]int) ([]stats.App, error) {
	if len(kernels) == 0 || len(kernels) != len(smSets) {
		return nil, fmt.Errorf("interference: %d kernels with %d SM sets", len(kernels), len(smSets))
	}
	d, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	handles := make([]gpu.AppHandle, len(kernels))
	for i, params := range kernels {
		k, err := kernel.New(params, cfg.L1.LineBytes)
		if err != nil {
			return nil, err
		}
		k.BaseAddr = uint64(i+1) * appBaseStride
		h, err := d.Launch(k, smSets[i])
		if err != nil {
			return nil, err
		}
		handles[i] = h
	}
	if err := d.Run(MaxCoRunCycles); err != nil {
		return nil, err
	}
	out := make([]stats.App, len(kernels))
	for i, h := range handles {
		out[i] = d.AppStats(h)
	}
	return out, nil
}

// EvenSplit partitions numSMs cores into n contiguous equal sets.
func EvenSplit(numSMs, n int) [][]int {
	sets := make([][]int, n)
	per := numSMs / n
	next := 0
	for i := range sets {
		count := per
		if i < numSMs%n {
			count++
		}
		sets[i] = make([]int, 0, count)
		for j := 0; j < count; j++ {
			sets[i] = append(sets[i], next)
			next++
		}
	}
	return sets
}

// PairResult records one co-run's slowdowns.
type PairResult struct {
	A, B        string
	SlowdownA   float64
	SlowdownB   float64
	CyclesA     uint64
	CyclesB     uint64
	CoRunCycles uint64 // makespan of the pair
	SoloCyclesA uint64
	SoloCyclesB uint64
}

// Matrix is the per-class average slowdown table of Figure 3.4:
// Slowdown[i][j] is the mean slowdown of a class-i application when
// co-running with a class-j application.
type Matrix struct {
	Slowdown [classify.NumClasses][classify.NumClasses]float64
	Samples  [classify.NumClasses][classify.NumClasses]int
	Pairs    []PairResult
}

// At returns the average slowdown of class a against class b, falling
// back to a neutral estimate when the cell has no samples.
func (m *Matrix) At(a, b classify.Class) float64 {
	if m.Samples[a][b] == 0 {
		return 2 // even-split with no interference: roughly half speed
	}
	return m.Slowdown[a][b]
}

// String renders the matrix with class labels.
func (m *Matrix) String() string {
	s := "slowdown of \\ with   M      MC     C      A\n"
	for _, a := range classify.All() {
		s += fmt.Sprintf("%-18s", a)
		for _, b := range classify.All() {
			s += fmt.Sprintf(" %6.2f", m.At(a, b))
		}
		s += "\n"
	}
	return s
}

// Compute runs the all-pairs campaign and folds it into the class
// matrix. classes maps each application name to its class (from the
// classification step). Pair simulations run in parallel, one device
// per worker.
func Compute(cfg config.GPUConfig, prof *profile.Profiler, classes map[string]classify.Class, apps []kernel.Params) (*Matrix, error) {
	type pairJob struct{ i, j int }
	var jobs []pairJob
	for i := 0; i < len(apps); i++ {
		for j := i + 1; j < len(apps); j++ {
			jobs = append(jobs, pairJob{i, j})
		}
	}
	// Solo profiles first (memoized; sequential to share the cache).
	solo := make(map[string]uint64, len(apps))
	for _, a := range apps {
		r, err := prof.Run(a, 0)
		if err != nil {
			return nil, err
		}
		solo[a.Name] = r.Cycles
	}
	results := make([]PairResult, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for idx, job := range jobs {
		wg.Add(1)
		go func(idx int, job pairJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			a, b := apps[job.i], apps[job.j]
			sets := EvenSplit(cfg.NumSMs, 2)
			sts, err := CoRun(cfg, []kernel.Params{a, b}, sets)
			if err != nil {
				errs[idx] = fmt.Errorf("pair %s+%s: %w", a.Name, b.Name, err)
				return
			}
			pr := PairResult{
				A: a.Name, B: b.Name,
				CyclesA:     sts[0].Cycles(),
				CyclesB:     sts[1].Cycles(),
				SoloCyclesA: solo[a.Name],
				SoloCyclesB: solo[b.Name],
			}
			if pr.CyclesA > pr.CyclesB {
				pr.CoRunCycles = pr.CyclesA
			} else {
				pr.CoRunCycles = pr.CyclesB
			}
			pr.SlowdownA = float64(pr.CyclesA) / float64(pr.SoloCyclesA)
			pr.SlowdownB = float64(pr.CyclesB) / float64(pr.SoloCyclesB)
			results[idx] = pr
		}(idx, job)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	m := &Matrix{}
	var sums [classify.NumClasses][classify.NumClasses]float64
	for idx, job := range jobs {
		pr := results[idx]
		ca := classes[apps[job.i].Name]
		cb := classes[apps[job.j].Name]
		sums[ca][cb] += pr.SlowdownA
		m.Samples[ca][cb]++
		sums[cb][ca] += pr.SlowdownB
		m.Samples[cb][ca]++
		m.Pairs = append(m.Pairs, pr)
	}
	for a := range sums {
		for b := range sums[a] {
			if m.Samples[a][b] > 0 {
				m.Slowdown[a][b] = sums[a][b] / float64(m.Samples[a][b])
			}
		}
	}
	return m, nil
}

// TripleSlowdown estimates the slowdown of class a co-running with
// classes b and c by composing pairwise interference. A pairwise
// slowdown factors into parallelism loss (×2 from the even split) and a
// contention factor S/2; for three applications the parallelism loss is
// ×3 and the contention factors of both co-runners compose
// multiplicatively. This mirrors how the paper extends its pairwise
// analysis (Section 3.2.3, "replicated for three application
// execution").
func (m *Matrix) TripleSlowdown(a, b, c classify.Class) float64 {
	return 3 * (m.At(a, b) / 2) * (m.At(a, c) / 2)
}
