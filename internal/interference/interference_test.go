package interference

import (
	"math"
	"testing"

	"repro/internal/classify"
	"repro/internal/kernel"
	"repro/internal/profile"
	"repro/internal/testkit"
)

func TestEvenSplitPartitions(t *testing.T) {
	cases := []struct{ sms, n int }{{60, 2}, {60, 3}, {8, 2}, {7, 2}, {10, 3}}
	for _, c := range cases {
		sets := EvenSplit(c.sms, c.n)
		if len(sets) != c.n {
			t.Fatalf("%d/%d: %d sets", c.sms, c.n, len(sets))
		}
		seen := map[int]bool{}
		total := 0
		for _, set := range sets {
			for _, sm := range set {
				if seen[sm] {
					t.Fatalf("%d/%d: SM %d duplicated", c.sms, c.n, sm)
				}
				seen[sm] = true
				total++
			}
		}
		if total != c.sms {
			t.Fatalf("%d/%d: covered %d SMs", c.sms, c.n, total)
		}
		// Balanced within one.
		for _, set := range sets {
			if len(set) < c.sms/c.n || len(set) > c.sms/c.n+1 {
				t.Fatalf("%d/%d: unbalanced set size %d", c.sms, c.n, len(set))
			}
		}
	}
}

func TestMatrixAtFallback(t *testing.T) {
	m := &Matrix{}
	if got := m.At(classify.ClassM, classify.ClassA); got != 2 {
		t.Fatalf("empty cell = %v, want neutral 2", got)
	}
	m.Slowdown[classify.ClassM][classify.ClassA] = 3.5
	m.Samples[classify.ClassM][classify.ClassA] = 2
	if got := m.At(classify.ClassM, classify.ClassA); got != 3.5 {
		t.Fatalf("cell = %v", got)
	}
}

func TestTripleSlowdownComposition(t *testing.T) {
	m := &Matrix{}
	for a := range m.Slowdown {
		for b := range m.Slowdown[a] {
			m.Slowdown[a][b] = 2
			m.Samples[a][b] = 1
		}
	}
	// No contention: pure parallelism loss of 3.
	if got := m.TripleSlowdown(classify.ClassA, classify.ClassA, classify.ClassA); math.Abs(got-3) > 1e-12 {
		t.Fatalf("neutral triple slowdown = %v, want 3", got)
	}
	m.Slowdown[classify.ClassC][classify.ClassM] = 4 // 2x contention from M
	got := m.TripleSlowdown(classify.ClassC, classify.ClassM, classify.ClassA)
	if math.Abs(got-6) > 1e-12 {
		t.Fatalf("one-hog triple slowdown = %v, want 6", got)
	}
	got = m.TripleSlowdown(classify.ClassC, classify.ClassM, classify.ClassM)
	if math.Abs(got-12) > 1e-12 {
		t.Fatalf("two-hog triple slowdown = %v, want 12", got)
	}
}

func TestCoRunValidation(t *testing.T) {
	cfg := testkit.Config()
	if _, err := CoRun(cfg, nil, nil); err == nil {
		t.Fatal("empty co-run accepted")
	}
	if _, err := CoRun(cfg, []kernel.Params{testkit.MiniA()}, [][]int{{0}, {1}}); err == nil {
		t.Fatal("mismatched SM sets accepted")
	}
}

func TestComputeMatrixOnMiniUniverse(t *testing.T) {
	cfg := testkit.Config()
	prof := profile.New(cfg)
	apps := testkit.Universe()
	classes := map[string]classify.Class{
		"miniM": classify.ClassM, "miniMC": classify.ClassMC,
		"miniC": classify.ClassC, "miniA": classify.ClassA,
	}
	m, err := Compute(cfg, prof, classes, apps)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pairs) != 6 {
		t.Fatalf("pairs = %d, want C(4,2)=6", len(m.Pairs))
	}
	// With one app per class, every cross-class cell has one sample.
	for a := range m.Samples {
		for b := range m.Samples[a] {
			if a == b {
				continue
			}
			if m.Samples[a][b] != 1 {
				t.Fatalf("cell [%d][%d] samples = %d", a, b, m.Samples[a][b])
			}
		}
	}
	// The memory hog must hurt the cache app more than the compute app
	// hurts it (the paper's central observation).
	hurtByM := m.At(classify.ClassC, classify.ClassM)
	hurtByA := m.At(classify.ClassC, classify.ClassA)
	t.Logf("C slowed by M: %.2f, by A: %.2f\n%s", hurtByM, hurtByA, m)
	if hurtByM <= hurtByA {
		t.Errorf("class M co-runner (%.2f) should hurt class C more than class A (%.2f)", hurtByM, hurtByA)
	}
}
