// Package testkit provides miniature workloads and devices for unit and
// integration tests: a scaled-down GPU (8 SMs) and a four-application
// universe with one representative of each class shape. Full-suite
// calibration lives in internal/workloads; testkit trades fidelity for
// speed so package tests finish in milliseconds.
package testkit

import (
	"repro/internal/config"
	"repro/internal/kernel"
)

// Config returns the small test device.
func Config() config.GPUConfig { return config.Small() }

// MiniM is a streaming, bandwidth-saturating kernel (class M shape).
func MiniM() kernel.Params {
	return kernel.Params{
		Name: "miniM", CTAs: 24, WarpsPerCTA: 4, InstrsPerWarp: 96,
		MemEvery: 6, StoreFraction: 0.2,
		Pattern: kernel.PatternStream, CoalescedLines: 16,
		FootprintBytes: 16 << 20, Seed: 0x11,
	}
}

// MiniMC is a partially cached, bandwidth-hungry kernel (class MC shape).
func MiniMC() kernel.Params {
	return kernel.Params{
		Name: "miniMC", CTAs: 32, WarpsPerCTA: 4, InstrsPerWarp: 160,
		MemEvery: 8, StoreFraction: 0.2,
		Pattern: kernel.PatternHotset, HotBytes: 16 << 10, HotFraction: 0.55,
		CoalescedLines: 4, FootprintBytes: 16 << 20, Seed: 0x22,
	}
}

// MiniC is an L2-resident, L1-thrashing kernel (class C shape).
func MiniC() kernel.Params {
	return kernel.Params{
		Name: "miniC", CTAs: 24, WarpsPerCTA: 4, InstrsPerWarp: 120,
		MemEvery: 4,
		Pattern:  kernel.PatternHotset, HotBytes: 32 << 10, HotFraction: 0.97,
		CoalescedLines: 4, FootprintBytes: 8 << 20, Seed: 0x33,
	}
}

// MiniA is a compute-bound kernel (class A shape).
func MiniA() kernel.Params {
	return kernel.Params{
		Name: "miniA", CTAs: 32, WarpsPerCTA: 4, InstrsPerWarp: 400,
		MemEvery: 40, SFUFraction: 0.2,
		Pattern: kernel.PatternHotset, HotBytes: 4 << 10, HotFraction: 0.97,
		CoalescedLines: 1, FootprintBytes: 1 << 20, Seed: 0x44,
	}
}

// Universe returns the four mini applications.
func Universe() []kernel.Params {
	return []kernel.Params{MiniM(), MiniMC(), MiniC(), MiniA()}
}
