// Package fleet is the online layer of the reproduction: jobs arrive
// over simulated time to a fleet of N simulated GPUs, and the paper's
// classification / interference / matching machinery is applied
// incrementally to the live queue instead of to a static batch.
//
// The paper's evaluation (and internal/sched) is offline: the whole
// queue is known up front, groups are formed once and run to
// completion. A production deployment sees neither — applications
// arrive continuously, and a device that frees up must choose its next
// co-run group from whatever is waiting *now*. Package fleet models
// exactly that as a deterministic discrete-event simulation:
//
//   - arrival processes (Poisson, bursty on-off, fixed trace) generate
//     a deterministic stream of jobs from a seed (arrivals.go);
//   - whenever a device frees up, an online dispatcher forms the next
//     co-run group from the current queue — greedily when the queue is
//     shallow (latency matters more than packing) and with a windowed
//     ILP over the queue prefix when it is deep (dispatch.go);
//   - group executions run concurrently on a worker pool, one in-flight
//     group per device, through sched.Scheduler.RunGroup — the same
//     single-group path the offline scheduler uses (sim.go);
//   - per-job latency (wait, turnaround) and per-device utilization are
//     accounted and summarized with stats.Summarize (report.go).
//
// Everything is a pure function of the seed and configuration: two runs
// with the same inputs produce byte-identical summaries, regardless of
// how the host schedules the worker goroutines.
package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
)

// Config parameterizes the fleet.
type Config struct {
	// Devices is the number of simulated GPUs (all share the pipeline's
	// device configuration).
	Devices int
	// NC is the co-run group size (applications per device). Serial
	// policy forces 1.
	NC int
	// Policy selects how the dispatcher forms groups: Serial and FCFS
	// ignore the interference matrix; ILP and ILPSMRA use the paper's
	// matcher on the live queue.
	Policy sched.Policy
	// Window bounds how much of the queue prefix the windowed ILP
	// considers (0 selects DefaultWindow).
	Window int
	// GreedyBelow is the queue depth under which ILP policies fall back
	// to greedy group formation (0 selects 2*NC). The windowed ILP only
	// pays off once the queue offers real choice.
	GreedyBelow int

	// forceSpec makes the event loop pre-simulate likely next groups
	// even on a single-CPU host, where speculation otherwise only burns
	// cycles. Tests use it to exercise the speculative path; results
	// are identical either way.
	forceSpec bool
}

// DefaultWindow is the ILP window when Config.Window is zero: large
// enough that the matcher sees a representative class mix, small enough
// that dispatch stays cheap at deep queues.
const DefaultWindow = 16

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Policy == sched.Serial {
		c.NC = 1
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.GreedyBelow == 0 {
		c.GreedyBelow = 2 * c.NC
	}
	return c
}

// validate rejects impossible configurations.
func (c Config) validate() error {
	if c.Devices < 1 {
		return fmt.Errorf("fleet: need at least one device (got %d)", c.Devices)
	}
	if c.NC < 1 {
		return fmt.Errorf("fleet: group size %d", c.NC)
	}
	if c.Window < 1 {
		return fmt.Errorf("fleet: ILP window %d", c.Window)
	}
	if c.GreedyBelow < 1 {
		return fmt.Errorf("fleet: greedy threshold %d", c.GreedyBelow)
	}
	switch c.Policy {
	case sched.Serial, sched.FCFS, sched.ProfileBased, sched.ILP, sched.ILPSMRA:
	default:
		return fmt.Errorf("fleet: unknown policy %v", c.Policy)
	}
	return nil
}

// Fleet dispatches an arrival stream onto N simulated devices using an
// initialized pipeline's classes, interference matrix and scheduler.
type Fleet struct {
	pipe *core.Pipeline
	cfg  Config
}

// New builds a fleet over an initialized pipeline.
func New(pipe *core.Pipeline, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if pipe == nil || pipe.Scheduler() == nil {
		return nil, fmt.Errorf("fleet: pipeline not initialized")
	}
	if (cfg.Policy == sched.ILP || cfg.Policy == sched.ILPSMRA) && pipe.Matrix() == nil {
		return nil, fmt.Errorf("fleet: %v policy requires an interference matrix", cfg.Policy)
	}
	return &Fleet{pipe: pipe, cfg: cfg}, nil
}

// Config returns the resolved configuration.
func (f *Fleet) Config() Config { return f.cfg }
