package fleet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/sched"
)

// DeviceSpec is one roster entry: Count identical devices of the type
// calibrated by Pipe. The pipeline carries everything placement needs —
// device configuration, solo profiles, classes and the interference
// matrix measured on that hardware generation.
type DeviceSpec struct {
	Pipe  *core.Pipeline
	Count int
}

// Config parameterizes the fleet.
type Config struct {
	// Devices is the fleet roster. Each entry contributes Count devices
	// of one calibrated device type; a single entry is the homogeneous
	// fleet of earlier revisions.
	Devices []DeviceSpec
	// NC is the co-run group size (applications per device). Serial
	// policy forces 1.
	NC int
	// Policy selects how the dispatcher forms groups: Serial and FCFS
	// ignore the interference matrix; ILP and ILPSMRA use the paper's
	// matcher on the live queue.
	Policy sched.Policy
	// Window bounds how much of the queue prefix the windowed ILP
	// considers. 0 selects the adaptive window: sized from the live
	// queue depth and its class mix at every dispatch (see windowFor),
	// between MinWindow and MaxWindow. A nonzero value pins it.
	Window int
	// GreedyBelow is the queue depth under which ILP policies fall back
	// to greedy group formation (0 selects 2*NC). The windowed ILP only
	// pays off once the queue offers real choice.
	GreedyBelow int
	// Aging weights pattern efficiency by member wait time in the ILP
	// and greedy scorers: a candidate's (or pattern's) efficiency is
	// multiplied by 1 + Aging*w, where w is the member's wait normalized
	// to the longest wait in the window. 0 disables aging and scores by
	// raw packing efficiency alone; around 1, a job that has waited the
	// longest doubles its patterns' appeal — tail latency is optimized
	// rather than pure throughput.
	Aging float64
	// SLO configures class-aware dispatch and preemption; the zero value
	// disables both.
	SLO SLOConfig
	// Engine selects the completion engine: Cycle (the default)
	// simulates every dispatched group cycle-accurately, Modeled
	// computes completions analytically from solo profiles and the
	// interference matrix with zero simulations, and Hybrid simulates
	// the first HybridWarm occurrences of each (device type, group
	// composition) to calibrate the model and serves the rest from it.
	Engine EngineMode
	// HybridWarm is how many occurrences of each (device type,
	// composition) the Hybrid engine runs cycle-accurately before
	// switching to the calibrated model (0 selects DefaultHybridWarm;
	// ignored outside Hybrid).
	HybridWarm int
	// SampleEvery enables the per-interval time-series collector: every
	// SampleEvery fleet cycles the event loop samples queue depth,
	// per-device occupancy and the cumulative counters into
	// Result.Series (see internal/obs). 0 — the default — disables
	// sampling entirely; the collector is purely an observer and never
	// changes dispatch decisions or event order.
	SampleEvery uint64
	// Shards partitions the roster into this many independent event
	// loops, each running on its own goroutine with its own clock,
	// queue and completion heap, coupled only through the arrival
	// router's epoch barrier (see shard.go). 0 or 1 — the default —
	// runs the single classic loop, byte-identical to previous
	// releases. The determinism contract holds at every count: a given
	// seed and shard count always reproduce byte-identical summaries
	// and time series, however the host schedules the shard
	// goroutines. Counts above 1 partition the backlog, so the
	// simulated schedule is that of a K-way-split fleet — reproducible
	// for that K, not a byte-copy of the single-loop schedule.
	// Requires the Modeled engine (the Cycle and Hybrid engines
	// already parallelize across their worker pool).
	Shards int
	// ShardEpoch is the router's synchronization quantum in fleet
	// cycles: arrivals are assigned to shards one epoch at a time, at a
	// barrier where every shard's state is settled and deterministic. 0
	// selects DefaultShardEpoch; ignored with Shards <= 1.
	ShardEpoch uint64
	// Closed switches the run to closed-loop traffic: client pools that
	// submit, wait (with timeout, retry and backoff) and think, instead
	// of an open arrival stream. Enabled runs pass no arrivals to Run.
	Closed ClosedConfig
	// Admission gates every submission on the predicted queueing wait,
	// rejecting or degrading over-bound ones (see AdmissionConfig).
	Admission AdmissionConfig
	// Autoscale grows and shrinks the active roster on queue-pressure
	// watermarks with a provisioning delay (see AutoscaleConfig).
	Autoscale AutoscaleConfig
	// Chaos injects deterministic device failures, drains and restores
	// mid-run, from an explicit trace or an MTBF/MTTR generator (see
	// ChaosConfig, chaos.go).
	Chaos ChaosConfig

	// forceSpec makes the event loop pre-simulate likely next groups
	// even on a single-CPU host, where speculation otherwise only burns
	// cycles. Tests use it to exercise the speculative path; results
	// are identical either way.
	forceSpec bool
}

// The adaptive window's operating range: windowFor sizes the window
// between these from backlog depth and class-mix entropy. MinWindow
// keeps the matcher fed with a representative class mix even at
// shallow queues; MaxWindow keeps dispatch cheap at deep ones.
const (
	MinWindow = 8
	MaxWindow = 32
)

// withDefaults resolves zero fields. Window deliberately stays 0 when
// unset: that selects per-dispatch adaptive sizing (windowFor).
func (c Config) withDefaults() Config {
	if c.Policy == sched.Serial {
		c.NC = 1
	}
	if c.GreedyBelow == 0 {
		c.GreedyBelow = 2 * c.NC
	}
	if c.Engine == Hybrid && c.HybridWarm == 0 {
		c.HybridWarm = DefaultHybridWarm
	}
	if c.Shards > 1 && c.ShardEpoch == 0 {
		c.ShardEpoch = DefaultShardEpoch
	}
	if c.Closed.Enabled {
		if c.Closed.Requests == 0 {
			c.Closed.Requests = DefaultClosedRequests
		}
		if c.Closed.LatencyFrac > 0 && c.Closed.Deadline == 0 {
			c.Closed.Deadline = DefaultDeadline
		}
		if c.Closed.Retries > 0 && c.Closed.Backoff == 0 {
			c.Closed.Backoff = DefaultBackoff
		}
	}
	if c.Autoscale.Enabled {
		if c.Autoscale.Min == 0 {
			c.Autoscale.Min = 1
		}
		if c.Autoscale.Max == 0 {
			c.Autoscale.Max = c.TotalDevices()
		}
		if c.Autoscale.High == 0 {
			c.Autoscale.High = DefaultScaleHigh
		}
		if c.Autoscale.Low == 0 {
			c.Autoscale.Low = DefaultScaleLow
		}
		if c.Autoscale.Delay == 0 {
			c.Autoscale.Delay = DefaultProvisionDelay
		}
		if c.Autoscale.Epoch == 0 {
			c.Autoscale.Epoch = c.ShardEpoch
			if c.Autoscale.Epoch == 0 {
				c.Autoscale.Epoch = DefaultShardEpoch
			}
		}
	}
	c.SLO = c.SLO.withDefaults()
	c.Chaos = c.Chaos.withDefaults()
	return c
}

// TotalDevices sums the roster counts.
func (c Config) TotalDevices() int {
	n := 0
	for _, s := range c.Devices {
		n += s.Count
	}
	return n
}

// RosterString renders the roster as the CLI spells it, e.g.
// "2xGTX480-60SM,2xSmall-8SM".
func (c Config) RosterString() string {
	parts := make([]string, len(c.Devices))
	for i, s := range c.Devices {
		name := "?"
		if s.Pipe != nil {
			name = s.Pipe.Config().Name
		}
		parts[i] = fmt.Sprintf("%dx%s", s.Count, name)
	}
	return strings.Join(parts, ",")
}

// validate rejects impossible configurations.
func (c Config) validate() error {
	if len(c.Devices) == 0 || c.TotalDevices() < 1 {
		return fmt.Errorf("fleet: need at least one device in the roster")
	}
	for i, s := range c.Devices {
		if s.Count < 1 {
			return fmt.Errorf("fleet: roster entry %d has count %d", i, s.Count)
		}
		if s.Pipe == nil || s.Pipe.Scheduler() == nil {
			return fmt.Errorf("fleet: roster entry %d has an uninitialized pipeline", i)
		}
	}
	if c.NC < 1 {
		return fmt.Errorf("fleet: group size %d", c.NC)
	}
	if c.Window < 0 {
		return fmt.Errorf("fleet: ILP window %d", c.Window)
	}
	if c.GreedyBelow < 1 {
		return fmt.Errorf("fleet: greedy threshold %d", c.GreedyBelow)
	}
	if c.Aging < 0 {
		return fmt.Errorf("fleet: aging weight %g must not be negative", c.Aging)
	}
	if err := c.SLO.validate(); err != nil {
		return err
	}
	switch c.Policy {
	case sched.Serial, sched.FCFS, sched.ProfileBased, sched.ILP, sched.ILPSMRA:
	default:
		return fmt.Errorf("fleet: unknown policy %v", c.Policy)
	}
	if c.Policy == sched.ILP || c.Policy == sched.ILPSMRA {
		for i, s := range c.Devices {
			if s.Pipe.Matrix() == nil {
				return fmt.Errorf("fleet: %v policy requires an interference matrix (roster entry %d)", c.Policy, i)
			}
		}
	}
	switch c.Engine {
	case Cycle, Modeled, Hybrid:
	default:
		return fmt.Errorf("fleet: unknown engine %v", c.Engine)
	}
	if c.HybridWarm < 0 {
		return fmt.Errorf("fleet: hybrid warm-up count %d must not be negative", c.HybridWarm)
	}
	if c.Shards < 0 {
		return fmt.Errorf("fleet: shard count %d must not be negative", c.Shards)
	}
	if c.Shards > 1 {
		if c.Engine != Modeled {
			return fmt.Errorf("fleet: %v engine cannot shard (its worker pool already parallelizes simulations); Shards > 1 requires the modeled engine", c.Engine)
		}
		if c.Shards > c.TotalDevices() {
			return fmt.Errorf("fleet: %d shards exceed the roster's %d devices", c.Shards, c.TotalDevices())
		}
	}
	if c.Engine != Cycle && c.NC >= 2 {
		// The analytic model predicts co-run slowdowns from the
		// interference matrix; without one it would silently model every
		// co-run at solo speed.
		for i, s := range c.Devices {
			if s.Pipe.Matrix() == nil {
				return fmt.Errorf("fleet: %v engine requires an interference matrix (roster entry %d)", c.Engine, i)
			}
		}
	}
	if c.Closed.Enabled {
		if c.Closed.Clients < 1 {
			return fmt.Errorf("fleet: closed-loop runs need at least one client (got %d)", c.Closed.Clients)
		}
		if c.Closed.Requests < 1 {
			return fmt.Errorf("fleet: closed-loop requests per client %d must be positive", c.Closed.Requests)
		}
		if c.Closed.Think < 0 {
			return fmt.Errorf("fleet: closed-loop think time %g must not be negative", c.Closed.Think)
		}
		if c.Closed.LatencyFrac < 0 || c.Closed.LatencyFrac > 1 {
			return fmt.Errorf("fleet: closed-loop latency fraction %g outside [0,1]", c.Closed.LatencyFrac)
		}
		if c.Closed.Retries < 0 {
			return fmt.Errorf("fleet: closed-loop retry budget %d must not be negative", c.Closed.Retries)
		}
		if len(c.Closed.Universe) == 0 {
			return fmt.Errorf("fleet: closed-loop runs need a benchmark universe")
		}
	}
	if c.Admission.Enabled && c.Admission.MaxWait == 0 {
		return fmt.Errorf("fleet: admission control needs a positive wait bound")
	}
	if err := c.Chaos.validate(c.TotalDevices()); err != nil {
		return err
	}
	if c.Autoscale.Enabled {
		if c.Autoscale.Min < 1 || c.Autoscale.Min > c.Autoscale.Max || c.Autoscale.Max > c.TotalDevices() {
			return fmt.Errorf("fleet: autoscale bounds %d..%d invalid for a %d-device roster",
				c.Autoscale.Min, c.Autoscale.Max, c.TotalDevices())
		}
		if c.Autoscale.Low < 0 || c.Autoscale.High <= c.Autoscale.Low {
			return fmt.Errorf("fleet: autoscale watermarks high=%g low=%g must satisfy high > low >= 0",
				c.Autoscale.High, c.Autoscale.Low)
		}
		if c.Shards > 1 && c.Autoscale.Min < c.Shards {
			return fmt.Errorf("fleet: autoscale floor %d must cover every one of the %d shards",
				c.Autoscale.Min, c.Shards)
		}
	}
	// Every device type must be calibrated over the same application
	// universe — names AND kernel parameters (a same-named workload with
	// different tuning is a different job), which is exactly what
	// core.Fingerprint hashes.
	base := core.Fingerprint(c.Devices[0].Pipe.Apps())
	for i, s := range c.Devices[1:] {
		if fp := core.Fingerprint(s.Pipe.Apps()); fp != base {
			return fmt.Errorf("fleet: roster entry %d is calibrated over a different universe (fingerprint %s, entry 0 has %s)",
				i+1, fp, base)
		}
	}
	return nil
}

// Fleet dispatches an arrival stream onto the roster's devices using
// each device type's calibrated classes, interference matrix and
// scheduler.
type Fleet struct {
	cfg Config
	// types holds one pipeline per roster entry (device type).
	types []*core.Pipeline
	// devType maps flat device index -> type index; devices are
	// numbered in roster order.
	devType []int
	// order is the placement scan order: device indices sorted by
	// descending peak IPC (ties by index), so idle fast devices are
	// offered work before idle slow ones. orderPos inverts it
	// (device index -> scan position).
	order    []int
	orderPos []int

	// Memoized matcher inputs (see buildMatchTables): the class-pattern
	// lists for every group size up to NC and each pattern's efficiency
	// per device type. Nil outside the ILP policies (or for NC outside
	// the packed-key range), where the direct computation is used
	// instead. All read-only after New — the mutable solve memo lives on
	// each event loop's dispatcher so shards never share writes.
	patIndex   map[uint64]int
	effAll     [][]float64
	ncPatterns []match.Pattern
	ncEff      [][]float64

	// meanSlow[t][cls] is the mean co-run slowdown the type-t
	// interference matrix predicts for a class-cls job over uniform
	// NC-1-partner company, averaged across partner classes — the
	// modeled admission predictor's per-job inflation factor (resolve
	// bakes it into job.coEst). Nil when any type lacks a matrix or
	// NC < 2; coEst then equals soloEst.
	meanSlow [][]float64
}

// New builds a fleet over the configured roster.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg}
	for t, s := range cfg.Devices {
		f.types = append(f.types, s.Pipe)
		for i := 0; i < s.Count; i++ {
			f.devType = append(f.devType, t)
		}
	}
	f.order = make([]int, len(f.devType))
	for i := range f.order {
		f.order[i] = i
	}
	// Stable sort keeps ascending device index within equal peak IPC.
	sort.SliceStable(f.order, func(a, b int) bool {
		pa := f.types[f.devType[f.order[a]]].Config().PeakIPC()
		pb := f.types[f.devType[f.order[b]]].Config().PeakIPC()
		return pa > pb
	})
	f.orderPos = make([]int, len(f.devType))
	for pos, d := range f.order {
		f.orderPos[d] = pos
	}
	f.buildMatchTables()
	f.buildMeanSlow()
	return f, nil
}

// buildMeanSlow precomputes the per-type per-class mean co-run slowdown
// tables the modeled admission predictor reads. It mirrors
// coRunCycles's uniform-company patterns but takes the mean over
// partner classes instead of the worst case: admission wants the
// expected backlog drain time, not deadline-protection pessimism.
func (f *Fleet) buildMeanSlow() {
	if f.cfg.NC < 2 {
		return
	}
	tables := make([][]float64, len(f.types))
	for t, pipe := range f.types {
		m := pipe.Matrix()
		if m == nil {
			return
		}
		table := make([]float64, classify.NumClasses)
		p := make(match.Pattern, f.cfg.NC)
		for cls := classify.Class(0); cls < classify.NumClasses; cls++ {
			sum := 0.0
			for c := classify.Class(0); c < classify.NumClasses; c++ {
				p[0] = cls
				for i := 1; i < f.cfg.NC; i++ {
					p[i] = c
				}
				sum += match.MemberSlowdown(m, p, 0)
			}
			table[cls] = sum / float64(classify.NumClasses)
		}
		tables[t] = table
	}
	f.meanSlow = tables
}

// NewHomogeneous builds a fleet of count identical devices over one
// calibrated pipeline — the single-generation special case.
func NewHomogeneous(pipe *core.Pipeline, count int, cfg Config) (*Fleet, error) {
	cfg.Devices = []DeviceSpec{{Pipe: pipe, Count: count}}
	return New(cfg)
}

// Config returns the resolved configuration.
func (f *Fleet) Config() Config { return f.cfg }

// deviceName returns the config name of device d's type.
func (f *Fleet) deviceName(d int) string {
	return f.types[f.devType[d]].Config().Name
}
