package fleet

import (
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/stats"
)

// sloArrivals is the shared SLO-ablation stream: a saturating Poisson
// mix over the mini universe with 40% latency jobs on a deadline tight
// enough that a congested 2-device fleet misses it without preemption.
// The class draws are independent of the time/name draws, so this is
// the *same traffic* the class-blind runs see.
func sloArrivals(t *testing.T) []Arrival {
	t.Helper()
	arr, err := ArrivalConfig{
		Kind: Poisson, Jobs: 24, Rate: 2, Seed: 5,
		LatencyFrac: 0.4, Deadline: 60_000,
	}.Generate(testNames())
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func runSLO(t *testing.T, arr []Arrival, cfg Config) Result {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPreemptionLowersMissRate is the headline SLO property (and the
// fleet-scale version of the FleetSLO experiments scenario's
// acceptance): on the same seed and trace, enabling preemption strictly
// lowers the latency-class deadline-miss rate versus SLO-aware dispatch
// alone, at some recorded batch cost.
func TestPreemptionLowersMissRate(t *testing.T) {
	p := testPipeline(t)
	arr := sloArrivals(t)
	base := runSLO(t, arr, Config{Devices: homo(p, 2), NC: 2, Policy: sched.ILP,
		SLO: SLOConfig{Enabled: true}})
	pre := runSLO(t, arr, Config{Devices: homo(p, 2), NC: 2, Policy: sched.ILP,
		SLO: SLOConfig{Enabled: true, Preempt: true}})

	if base.DeadlineMisses() == 0 {
		t.Fatal("ablation is vacuous: no deadline misses without preemption")
	}
	if len(pre.Evictions) == 0 {
		t.Fatal("preemption enabled but nothing was ever evicted")
	}
	if pre.MissRate() >= base.MissRate() {
		t.Fatalf("preemption did not lower the miss rate: %.3f -> %.3f",
			base.MissRate(), pre.MissRate())
	}
	// Both runs account every job, including the evicted-and-rerun ones.
	if len(base.Jobs) != len(arr) || len(pre.Jobs) != len(arr) {
		t.Fatalf("jobs accounted: base %d, preempt %d, want %d", len(base.Jobs), len(pre.Jobs), len(arr))
	}
	evicted := 0
	for _, j := range pre.Jobs {
		evicted += j.Evictions
		if j.Complete <= j.Dispatch {
			t.Errorf("job %d complete %d not after dispatch %d", j.ID, j.Complete, j.Dispatch)
		}
	}
	want := 0
	for _, e := range pre.Evictions {
		want += len(e.Jobs)
		if e.Wasted == 0 {
			t.Errorf("eviction at %d wasted no cycles: %v", e.Cycle, e)
		}
	}
	if evicted != want {
		t.Errorf("per-job eviction counts sum to %d, records say %d", evicted, want)
	}
	// The summary carries the per-class block for both runs.
	for _, s := range []string{base.Summary(), pre.Summary()} {
		for _, field := range []string{"latency wait", "latency slack", "batch turnaround", "deadline-miss", "evictions"} {
			if !strings.Contains(s, field) {
				t.Fatalf("summary missing %q:\n%s", field, s)
			}
		}
	}
}

// TestPreemptionDeterminism extends the reproducibility contract to the
// eviction path: same seed, same config — byte-identical summaries and
// byte-identical eviction/re-dispatch traces.
func TestPreemptionDeterminism(t *testing.T) {
	p := testPipeline(t)
	arr := sloArrivals(t)
	var summaries, traces []string
	for i := 0; i < 2; i++ {
		res := runSLO(t, arr, Config{Devices: homo(p, 2), NC: 2, Policy: sched.ILP,
			SLO: SLOConfig{Enabled: true, Preempt: true}})
		summaries = append(summaries, res.Summary())
		traces = append(traces, res.EvictionTrace())
	}
	if traces[0] == "" {
		t.Fatal("golden is vacuous: no evictions happened")
	}
	if traces[0] != traces[1] {
		t.Fatalf("eviction traces differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", traces[0], traces[1])
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("summaries differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", summaries[0], summaries[1])
	}
}

// TestSLOPriorityDispatch checks the queue discipline without
// preemption: under SLO-aware dispatch a latency job arriving behind a
// pile of batch work queues ahead of it and must wait no longer than it
// would under class-blind dispatch.
func TestSLOPriorityDispatch(t *testing.T) {
	p := testPipeline(t)
	var arr []Arrival
	for i := 0; i < 8; i++ {
		arr = append(arr, Arrival{Name: testNames()[i%4], Cycle: uint64(i)})
	}
	arr = append(arr, Arrival{Name: "miniA", Cycle: 8, SLO: Latency, Deadline: 300_000})
	blind := runSLO(t, arr, Config{Devices: homo(p, 1), NC: 2, Policy: sched.ILP})
	aware := runSLO(t, arr, Config{Devices: homo(p, 1), NC: 2, Policy: sched.ILP,
		SLO: SLOConfig{Enabled: true}})
	id := len(arr) - 1
	if aware.Jobs[id].Dispatch > blind.Jobs[id].Dispatch {
		t.Fatalf("SLO-aware dispatch delayed the latency job: %d > %d",
			aware.Jobs[id].Dispatch, blind.Jobs[id].Dispatch)
	}
	// It must be the first job dispatched once a device frees after its
	// arrival: no batch job that arrived before it and was still waiting
	// may dispatch strictly earlier.
	for _, j := range aware.Jobs[:id] {
		if j.Dispatch > aware.Jobs[id].Arrival && j.Dispatch < aware.Jobs[id].Dispatch {
			t.Fatalf("batch job %d dispatched at %d ahead of the waiting latency job (dispatched %d)",
				j.ID, j.Dispatch, aware.Jobs[id].Dispatch)
		}
	}
}

// TestAgingImprovesStarvedP99 exercises the aging term of the windowed
// ILP. The traffic is round-structured: each round leads with a C job
// and an MC job, then floods with fresh C/A work while the device is
// still draining the previous round. On the mini universe's matrix MC
// is every class's least attractive partner (C-A pairs at 0.78, C-MC at
// 0.63), so the packing-optimal matcher keeps choosing the fresh C/A
// arrivals and the MC straggler waits until it reaches the queue head —
// the jobs this test calls starved. With aging on, a pattern containing
// the long-waiting MC class outbids the marginally better-packing one
// and the starved jobs' tail wait drops.
func TestAgingImprovesStarvedP99(t *testing.T) {
	p := testPipeline(t)
	var arr []Arrival
	for r := 0; r < 6; r++ {
		base := uint64(r) * 60_000
		arr = append(arr,
			Arrival{Name: "miniC", Cycle: base},
			Arrival{Name: "miniMC", Cycle: base + 1_000},
			Arrival{Name: "miniA", Cycle: base + 30_000},
			Arrival{Name: "miniC", Cycle: base + 32_000},
			Arrival{Name: "miniA", Cycle: base + 34_000},
			Arrival{Name: "miniC", Cycle: base + 36_000},
		)
	}
	starvedWaits := func(res Result) []float64 {
		var out []float64
		for _, j := range res.Jobs {
			if j.Name == "miniMC" {
				out = append(out, float64(j.Wait())/1000)
			}
		}
		return out
	}
	plain := runSLO(t, arr, Config{Devices: homo(p, 1), NC: 2, Policy: sched.ILP})
	aged := runSLO(t, arr, Config{Devices: homo(p, 1), NC: 2, Policy: sched.ILP, Aging: 2})
	sPlain := stats.Summarize(starvedWaits(plain))
	sAged := stats.Summarize(starvedWaits(aged))
	if sPlain.N == 0 {
		t.Fatal("no starved-class jobs in the stream")
	}
	if sAged.P99 >= sPlain.P99 {
		t.Fatalf("aging did not improve starved p99 wait: %.1f -> %.1f kcycles", sPlain.P99, sAged.P99)
	}
	if sAged.Mean >= sPlain.Mean {
		t.Fatalf("aging did not improve starved mean wait: %.1f -> %.1f kcycles", sPlain.Mean, sAged.Mean)
	}
}

// TestWindowForAdaptive pins the adaptive window policy: a set Window
// wins unconditionally; otherwise the window stays inside
// [MinWindow, MaxWindow] and a uniform class mix earns a wider window
// than a degenerate one at the same depth.
func TestWindowForAdaptive(t *testing.T) {
	p := testPipeline(t)
	f, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.ILP, Window: 5})
	if err != nil {
		t.Fatal(err)
	}
	mkQueue := func(names []string, n int) []*job {
		var arr []Arrival
		for i := 0; i < n; i++ {
			arr = append(arr, Arrival{Name: names[i%len(names)], Cycle: uint64(i)})
		}
		jobs, err := f.resolve(arr)
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	mixed := mkQueue(testNames(), 64)
	if got := f.windowFor(mixed, 0); got != 5 {
		t.Fatalf("pinned window = %d, want 5", got)
	}
	f2, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.ILP})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, 16, 64, 200} {
		w := f2.windowFor(mkQueue(testNames(), n), 0)
		if w < MinWindow || w > MaxWindow {
			t.Fatalf("adaptive window %d for depth %d outside [%d, %d]", w, n, MinWindow, MaxWindow)
		}
	}
	deep := 64
	uniform := f2.windowFor(mkQueue(testNames(), deep), 0)
	degenerate := f2.windowFor(mkQueue([]string{"miniA"}, deep), 0)
	if uniform <= degenerate {
		t.Fatalf("uniform mix window %d not wider than one-class window %d", uniform, degenerate)
	}
}

// TestSLOValidation rejects impossible SLO and aging configurations and
// mistagged traces.
func TestSLOValidation(t *testing.T) {
	p := testPipeline(t)
	bad := []Config{
		{Devices: homo(p, 1), NC: 2, Policy: sched.FCFS, SLO: SLOConfig{Preempt: true}},
		{Devices: homo(p, 1), NC: 2, Policy: sched.FCFS, SLO: SLOConfig{Enabled: true, RestartFrac: -0.1}},
		{Devices: homo(p, 1), NC: 2, Policy: sched.FCFS, SLO: SLOConfig{Enabled: true, RestartFrac: 1}},
		{Devices: homo(p, 1), NC: 2, Policy: sched.FCFS, SLO: SLOConfig{Enabled: true, MaxCheckpoint: 1.5}},
		{Devices: homo(p, 1), NC: 2, Policy: sched.ILP, Aging: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Trace arrivals must be tagged consistently.
	names := testNames()
	for _, trace := range [][]Arrival{
		{{Name: "miniA", Cycle: 0, SLO: Latency}},                // latency without deadline
		{{Name: "miniA", Cycle: 0, SLO: Batch, Deadline: 1_000}}, // batch with deadline
	} {
		if _, err := (ArrivalConfig{Kind: Trace, Trace: trace}).Generate(names); err == nil {
			t.Errorf("mistagged trace accepted: %+v", trace)
		}
	}
	if _, err := (ArrivalConfig{Kind: Trace, LatencyFrac: 0.5,
		Trace: []Arrival{{Name: "miniA", Cycle: 0}}}).Generate(names); err == nil {
		t.Error("LatencyFrac accepted alongside an explicit trace")
	}
	if _, err := (ArrivalConfig{Kind: Trace, Deadline: 100_000,
		Trace: []Arrival{{Name: "miniA", Cycle: 0}}}).Generate(names); err == nil {
		t.Error("config-level Deadline accepted alongside an explicit trace")
	}
	if _, err := (ArrivalConfig{Kind: Poisson, Jobs: 4, Rate: 1, LatencyFrac: 1.5}).Generate(names); err == nil {
		t.Error("LatencyFrac outside [0,1] accepted")
	}
}

// TestSLOTaggingKeepsTraffic asserts the ablation contract of the
// arrival generator: sweeping the class mix never perturbs the arrival
// times or names, so SLO comparisons see identical traffic.
func TestSLOTaggingKeepsTraffic(t *testing.T) {
	gen := func(frac float64) []Arrival {
		arr, err := ArrivalConfig{Kind: Poisson, Jobs: 32, Rate: 1, Seed: 11,
			LatencyFrac: frac}.Generate(testNames())
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}
	plain, tagged := gen(0), gen(0.5)
	latency := 0
	for i := range plain {
		if plain[i].Cycle != tagged[i].Cycle || plain[i].Name != tagged[i].Name {
			t.Fatalf("tagging changed traffic at %d: %+v vs %+v", i, plain[i], tagged[i])
		}
		if plain[i].SLO != Batch || plain[i].Deadline != 0 {
			t.Fatalf("frac 0 stream has a tagged arrival: %+v", plain[i])
		}
		if tagged[i].SLO == Latency {
			latency++
			if tagged[i].Deadline != DefaultDeadline {
				t.Fatalf("latency arrival %d has deadline %d, want default %d",
					i, tagged[i].Deadline, DefaultDeadline)
			}
		}
	}
	if latency == 0 || latency == len(tagged) {
		t.Fatalf("latency share %d of %d is degenerate", latency, len(tagged))
	}
}
