package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/sched"
)

// job is the dispatcher's mutable per-job state. A job's class (and the
// QueuedApp handed to the scheduler) depends on which hardware
// generation runs it, so apps is indexed by device type.
type job struct {
	id       int
	apps     []sched.QueuedApp
	arrival  uint64
	dispatch uint64
	complete uint64
	device   int
}

// name returns the application name (identical across device types).
func (j *job) name() string { return j.apps[0].Params.Name }

// inflight is one group executing on one device. The simulation result
// (rep) is computed on a worker goroutine; the event loop learns the
// group's completion time by waiting on done — but only when it has to,
// thanks to the earliest lower bound below.
type inflight struct {
	device   int
	typ      int
	dispatch uint64
	// earliest is a sound lower bound on the completion cycle, known at
	// dispatch time without simulating: the device cannot retire warp
	// instructions faster than its peak issue rate. It lets the event
	// loop commit to arrivals and already-resolved completions that
	// provably precede this group's completion while the simulation is
	// still running on its worker — the pipelining that makes a 4-device
	// fleet measurably faster than 4 sequential sims.
	earliest uint64
	jobs     []*job
	ilp      bool

	done     chan struct{}
	rep      sched.GroupReport
	err      error
	resolved bool
	complete uint64
}

// lowerBoundCycles bounds a group's makespan on device type t from
// below without simulating. Two sound bounds, take the tighter:
//
//   - issue rate: every member must issue all of its warp instructions,
//     and even owning the whole device it cannot issue more than that
//     type's NumSMs*SchedulersPerSM per cycle. Weak for memory-bound
//     kernels, which run far below peak issue. (Warp instructions, not
//     thread instructions: PeakIPC counts issue slots, and one issued
//     instruction covers a whole warp.)
//   - solo profile: a member co-running on an SM partition with memory
//     contention cannot finish faster than its solo run on the whole
//     device of the same type. Calibration memoizes every universe
//     member's solo profile per type, so Peek is free; half the solo
//     duration leaves margin for simulator nonmonotonicities
//     (partitioning shifts cache and DRAM row locality in both
//     directions).
//
// On a heterogeneous roster the bound must come from the device that
// will actually run the group — a big device's peak issue rate is not
// sound for a small one. The bound's only job is to be sound and large
// enough that the event loop can commit to other devices' completions
// while this group is still simulating — that is where the fleet's
// wall-clock concurrency comes from.
func (f *Fleet) lowerBoundCycles(members []*job, t int) uint64 {
	peak := f.types[t].Config().PeakIPC()
	prof := f.types[t].Profiler()
	bound := 1.0
	for _, m := range members {
		lb := float64(m.apps[t].Params.TotalInstrs()) / peak
		if r, ok := prof.Peek(m.name(), 0); ok {
			if solo := float64(r.Cycles) / 2; solo > lb {
				lb = solo
			}
		}
		if lb > bound {
			bound = lb
		}
	}
	return uint64(bound)
}

// Run executes the arrival stream on the fleet and returns the per-job
// and per-device accounting. The loop is a discrete-event simulation
// over three event sources — job arrivals (known in advance), resolved
// group completions, and unresolved in-flight groups (whose completion
// is bounded below) — and always processes the provably-earliest event,
// so the outcome is independent of worker timing.
func (f *Fleet) Run(arrivals []Arrival) (Result, error) {
	if len(arrivals) == 0 {
		return Result{}, fmt.Errorf("fleet: empty arrival stream")
	}
	jobs, err := f.resolve(arrivals)
	if err != nil {
		return Result{}, err
	}

	devices := len(f.devType)
	res := Result{
		Policy:     f.cfg.Policy,
		Roster:     f.cfg.RosterString(),
		Devices:    devices,
		NC:         f.cfg.NC,
		DeviceBusy: make([]uint64, devices),
	}
	for d := range f.devType {
		res.DeviceConfig = append(res.DeviceConfig, f.deviceName(d))
	}
	idle := make([]bool, devices)
	for d := range idle {
		idle[d] = true
	}
	// The pool holds one slot per device for the in-flight groups plus
	// as many again for speculative pre-simulation, capped by the host.
	workers := 2 * devices
	if n := runtime.NumCPU(); workers > n {
		workers = n
	}
	if workers < 2 {
		workers = 2
	}
	sem := make(chan struct{}, workers)
	var specWG sync.WaitGroup
	defer specWG.Wait()
	speculated := make(map[string]bool)

	const inf = math.MaxUint64
	var (
		flights   []*inflight
		queue     []*job
		now       uint64
		nextArr   int
		remaining = len(jobs)
	)
	for remaining > 0 {
		// Admit arrivals due by now.
		for nextArr < len(jobs) && jobs[nextArr].arrival <= now {
			queue = append(queue, jobs[nextArr])
			nextArr++
		}
		// Dispatch to idle devices while work is waiting, fastest device
		// first: group formation is placement-aware, scoring candidates
		// with the chosen device type's interference matrix.
		for len(queue) > 0 {
			d := -1
			for _, cand := range f.order {
				if idle[cand] {
					d = cand
					break
				}
			}
			if d < 0 {
				break
			}
			t := f.devType[d]
			members, usedILP := f.formGroup(&queue, t)
			idle[d] = false
			fl := &inflight{
				device:   d,
				typ:      t,
				dispatch: now,
				earliest: now + f.lowerBoundCycles(members, t),
				jobs:     members,
				ilp:      usedILP,
				done:     make(chan struct{}),
			}
			flights = append(flights, fl)
			go func(fl *inflight) {
				sem <- struct{}{}
				defer func() { <-sem }()
				g := make(sched.Group, len(fl.jobs))
				for i, m := range fl.jobs {
					g[i] = m.apps[fl.typ]
				}
				fl.rep, fl.err = f.types[fl.typ].Scheduler().RunGroup(g, f.cfg.Policy)
				close(fl.done)
			}(fl)
		}
		// Pick the provably-earliest next event. Ties go to arrivals
		// first (a job landing the instant a device frees still queues
		// before the dispatch decision), then to the lowest device id.
		tArr := uint64(inf)
		if nextArr < len(jobs) {
			tArr = jobs[nextArr].arrival
		}
		var cBest, uBest *inflight
		cTime, uTime := uint64(inf), uint64(inf)
		for _, fl := range flights {
			if fl.resolved {
				if fl.complete < cTime || (fl.complete == cTime && fl.device < cBest.device) {
					cBest, cTime = fl, fl.complete
				}
			} else {
				if fl.earliest < uTime {
					uBest, uTime = fl, fl.earliest
				}
			}
		}
		switch {
		case tArr != inf && tArr <= cTime && tArr <= uTime:
			now = tArr
		case cBest != nil && cTime <= uTime:
			now = cTime
			f.retire(cBest, &res)
			remaining -= len(cBest.jobs)
			idle[cBest.device] = true
			flights = removeFlight(flights, cBest)
		case uBest != nil:
			// The unresolved group with the earliest possible completion
			// might be the next event; block until its worker reports.
			// Every other in-flight simulation keeps running meanwhile —
			// and so do speculative runs of the groups the still-busy
			// devices will most likely dispatch when they free up.
			// Group formation is a pure function of queue content and
			// device type, so in drained-arrival phases the prediction is
			// exact and the real dispatch later finds its simulation
			// already done (or in flight — the scheduler dedups identical
			// executions).
			if runtime.NumCPU() > 1 || f.cfg.forceSpec {
				f.speculate(queue, idle, sem, &specWG, speculated)
			}
			<-uBest.done
			if uBest.err != nil {
				f.drain(flights)
				return Result{}, uBest.err
			}
			uBest.resolved = true
			uBest.complete = uBest.dispatch + uBest.rep.Cycles
			if uBest.complete < uBest.earliest {
				// The bound was not sound after all — fail loudly rather
				// than silently reorder events.
				f.drain(flights)
				return Result{}, fmt.Errorf("fleet: completion %d before lower bound %d for group on device %d",
					uBest.complete, uBest.earliest, uBest.device)
			}
		default:
			return Result{}, fmt.Errorf("fleet: no dispatchable work with %d jobs outstanding", remaining)
		}
	}

	for _, j := range jobs {
		t := f.devType[j.device]
		res.Jobs = append(res.Jobs, JobRecord{
			ID:       j.id,
			Name:     j.name(),
			Class:    j.apps[t].Class,
			Arrival:  j.arrival,
			Dispatch: j.dispatch,
			Complete: j.complete,
			Device:   j.device,
		})
	}
	return res, nil
}

// speculate warms the schedulers' group memos with the groups each
// still-busy device would most likely dispatch next from the current
// queue. Results and errors are deliberately dropped: this only moves
// simulation work off the critical path, it never changes what the real
// dispatch computes (the memo is keyed by group content and simulations
// are pure). A wrong guess — arrivals landing in the window before the
// device actually frees, or busy devices freeing in a different order —
// costs one wasted simulation, never correctness.
func (f *Fleet) speculate(queue []*job, idle []bool, sem chan struct{}, wg *sync.WaitGroup, seen map[string]bool) {
	if len(queue) == 0 {
		return
	}
	// formGroup filters the queue in place, so work on a copy. Busy
	// devices are predicted in placement order — the same order real
	// dispatch would offer them work if they all freed at once.
	spec := append([]*job(nil), queue...)
	for _, d := range f.order {
		if idle[d] || len(spec) == 0 {
			continue
		}
		t := f.devType[d]
		members, _ := f.formGroup(&spec, t)
		sig := fmt.Sprintf("t%d:", t)
		for _, m := range members {
			sig += m.name() + "|"
		}
		if seen[sig] {
			continue
		}
		seen[sig] = true
		g := make(sched.Group, len(members))
		for j, m := range members {
			g[j] = m.apps[t]
		}
		wg.Add(1)
		go func(t int, g sched.Group) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, _ = f.types[t].Scheduler().RunGroup(g, f.cfg.Policy)
		}(t, g)
	}
}

// resolve materializes jobs from the arrival stream using each device
// type's workload definitions and classes: the same application may
// classify differently across hardware generations, so every job
// carries one QueuedApp per type.
func (f *Fleet) resolve(arrivals []Arrival) ([]*job, error) {
	names := make([]string, len(arrivals))
	for i, a := range arrivals {
		names[i] = a.Name
	}
	perType := make([][]sched.QueuedApp, len(f.types))
	for t, pipe := range f.types {
		queued, err := pipe.Queue(names)
		if err != nil {
			return nil, err
		}
		perType[t] = queued
	}
	jobs := make([]*job, len(arrivals))
	for i := range arrivals {
		if i > 0 && arrivals[i].Cycle < arrivals[i-1].Cycle {
			return nil, fmt.Errorf("fleet: arrivals not in cycle order (job %d at %d after %d)",
				i, arrivals[i].Cycle, arrivals[i-1].Cycle)
		}
		apps := make([]sched.QueuedApp, len(f.types))
		for t := range f.types {
			apps[t] = perType[t][i]
		}
		jobs[i] = &job{id: i, apps: apps, arrival: arrivals[i].Cycle}
	}
	return jobs, nil
}

// retire records a completed group into the result and its jobs.
func (f *Fleet) retire(fl *inflight, res *Result) {
	for i, j := range fl.jobs {
		j.dispatch = fl.dispatch
		j.device = fl.device
		end := fl.rep.Cycles
		if i < len(fl.rep.Stats) && fl.rep.Stats[i].EndCycle > 0 {
			end = fl.rep.Stats[i].EndCycle
		}
		j.complete = fl.dispatch + end
	}
	res.DeviceBusy[fl.device] += fl.rep.Cycles
	if devEnd := fl.dispatch + fl.rep.Cycles; devEnd > res.Makespan {
		res.Makespan = devEnd
	}
	for _, st := range fl.rep.Stats {
		res.ThreadInstructions += st.ThreadInstructions
	}
	res.Groups++
	if fl.ilp {
		res.ILPGroups++
	} else {
		res.GreedyGroups++
	}
	res.SMMoves += fl.rep.SMMoves
}

// drain waits out every outstanding worker before an error return, so
// no goroutine outlives the run.
func (f *Fleet) drain(flights []*inflight) {
	for _, fl := range flights {
		if !fl.resolved {
			<-fl.done
		}
	}
}

// removeFlight drops one element, preserving order.
func removeFlight(flights []*inflight, target *inflight) []*inflight {
	out := flights[:0]
	for _, fl := range flights {
		if fl != target {
			out = append(out, fl)
		}
	}
	return out
}
