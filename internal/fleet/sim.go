package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/sched"
)

// job is the dispatcher's mutable per-job state.
type job struct {
	id       int
	app      sched.QueuedApp
	arrival  uint64
	dispatch uint64
	complete uint64
	device   int
}

// inflight is one group executing on one device. The simulation result
// (rep) is computed on a worker goroutine; the event loop learns the
// group's completion time by waiting on done — but only when it has to,
// thanks to the earliest lower bound below.
type inflight struct {
	device   int
	dispatch uint64
	// earliest is a sound lower bound on the completion cycle, known at
	// dispatch time without simulating: the device cannot retire warp
	// instructions faster than its peak issue rate. It lets the event
	// loop commit to arrivals and already-resolved completions that
	// provably precede this group's completion while the simulation is
	// still running on its worker — the pipelining that makes a 4-device
	// fleet measurably faster than 4 sequential sims.
	earliest uint64
	jobs     []*job
	ilp      bool

	done     chan struct{}
	rep      sched.GroupReport
	err      error
	resolved bool
	complete uint64
}

// lowerBoundCycles bounds a group's makespan from below without
// simulating. Two sound bounds, take the tighter:
//
//   - issue rate: every member must issue all of its warp instructions,
//     and even owning the whole device it cannot issue more than
//     NumSMs*SchedulersPerSM per cycle. Weak for memory-bound kernels,
//     which run far below peak issue.
//   - solo profile: a member co-running on an SM partition with memory
//     contention cannot finish faster than its solo run on the whole
//     device. Calibration memoizes every universe member's solo
//     profile, so Peek is free; half the solo duration leaves margin
//     for simulator nonmonotonicities (partitioning shifts cache and
//     DRAM row locality in both directions).
//
// The bound's only job is to be sound and large enough that the event
// loop can commit to other devices' completions while this group is
// still simulating — that is where the fleet's wall-clock concurrency
// comes from.
func (f *Fleet) lowerBoundCycles(members []*job) uint64 {
	peak := f.pipe.Config().PeakIPC()
	bound := 1.0
	for _, m := range members {
		lb := float64(m.app.Params.TotalInstrs()) / peak
		if r, ok := f.pipe.Profiler().Peek(m.app.Params.Name, 0); ok {
			if solo := float64(r.Cycles) / 2; solo > lb {
				lb = solo
			}
		}
		if lb > bound {
			bound = lb
		}
	}
	return uint64(bound)
}

// Run executes the arrival stream on the fleet and returns the per-job
// and per-device accounting. The loop is a discrete-event simulation
// over three event sources — job arrivals (known in advance), resolved
// group completions, and unresolved in-flight groups (whose completion
// is bounded below) — and always processes the provably-earliest event,
// so the outcome is independent of worker timing.
func (f *Fleet) Run(arrivals []Arrival) (Result, error) {
	if len(arrivals) == 0 {
		return Result{}, fmt.Errorf("fleet: empty arrival stream")
	}
	jobs, err := f.resolve(arrivals)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Policy:     f.cfg.Policy,
		Devices:    f.cfg.Devices,
		NC:         f.cfg.NC,
		DeviceBusy: make([]uint64, f.cfg.Devices),
	}
	idle := make([]bool, f.cfg.Devices)
	for d := range idle {
		idle[d] = true
	}
	// The pool holds one slot per device for the in-flight groups plus
	// as many again for speculative pre-simulation, capped by the host.
	workers := 2 * f.cfg.Devices
	if n := runtime.NumCPU(); workers > n {
		workers = n
	}
	if workers < 2 {
		workers = 2
	}
	sem := make(chan struct{}, workers)
	var specWG sync.WaitGroup
	defer specWG.Wait()
	speculated := make(map[string]bool)

	const inf = math.MaxUint64
	var (
		flights   []*inflight
		queue     []*job
		now       uint64
		nextArr   int
		remaining = len(jobs)
	)
	for remaining > 0 {
		// Admit arrivals due by now.
		for nextArr < len(jobs) && jobs[nextArr].arrival <= now {
			queue = append(queue, jobs[nextArr])
			nextArr++
		}
		// Dispatch to idle devices while work is waiting.
		for len(queue) > 0 {
			d := -1
			for i, ok := range idle {
				if ok {
					d = i
					break
				}
			}
			if d < 0 {
				break
			}
			members, usedILP := f.formGroup(&queue)
			idle[d] = false
			fl := &inflight{
				device:   d,
				dispatch: now,
				earliest: now + f.lowerBoundCycles(members),
				jobs:     members,
				ilp:      usedILP,
				done:     make(chan struct{}),
			}
			flights = append(flights, fl)
			go func(fl *inflight) {
				sem <- struct{}{}
				defer func() { <-sem }()
				g := make(sched.Group, len(fl.jobs))
				for i, m := range fl.jobs {
					g[i] = m.app
				}
				fl.rep, fl.err = f.pipe.Scheduler().RunGroup(g, f.cfg.Policy)
				close(fl.done)
			}(fl)
		}
		// Pick the provably-earliest next event. Ties go to arrivals
		// first (a job landing the instant a device frees still queues
		// before the dispatch decision), then to the lowest device id.
		tArr := uint64(inf)
		if nextArr < len(jobs) {
			tArr = jobs[nextArr].arrival
		}
		var cBest, uBest *inflight
		cTime, uTime := uint64(inf), uint64(inf)
		for _, fl := range flights {
			if fl.resolved {
				if fl.complete < cTime || (fl.complete == cTime && fl.device < cBest.device) {
					cBest, cTime = fl, fl.complete
				}
			} else {
				if fl.earliest < uTime {
					uBest, uTime = fl, fl.earliest
				}
			}
		}
		switch {
		case tArr != inf && tArr <= cTime && tArr <= uTime:
			now = tArr
		case cBest != nil && cTime <= uTime:
			now = cTime
			f.retire(cBest, &res)
			remaining -= len(cBest.jobs)
			idle[cBest.device] = true
			flights = removeFlight(flights, cBest)
		case uBest != nil:
			// The unresolved group with the earliest possible completion
			// might be the next event; block until its worker reports.
			// Every other in-flight simulation keeps running meanwhile —
			// and so do speculative runs of the groups the still-busy
			// devices will most likely dispatch when they free up.
			// Group formation is a pure function of queue content, so
			// in drained-arrival phases the prediction is exact and the
			// real dispatch later finds its simulation already done (or
			// in flight — the scheduler dedups identical executions).
			if runtime.NumCPU() > 1 || f.cfg.forceSpec {
				busy := 0
				for _, ok := range idle {
					if !ok {
						busy++
					}
				}
				f.speculate(queue, busy, sem, &specWG, speculated)
			}
			<-uBest.done
			if uBest.err != nil {
				f.drain(flights)
				return Result{}, uBest.err
			}
			uBest.resolved = true
			uBest.complete = uBest.dispatch + uBest.rep.Cycles
			if uBest.complete < uBest.earliest {
				// The bound was not sound after all — fail loudly rather
				// than silently reorder events.
				f.drain(flights)
				return Result{}, fmt.Errorf("fleet: completion %d before lower bound %d for group on device %d",
					uBest.complete, uBest.earliest, uBest.device)
			}
		default:
			return Result{}, fmt.Errorf("fleet: no dispatchable work with %d jobs outstanding", remaining)
		}
	}

	for _, j := range jobs {
		res.Jobs = append(res.Jobs, JobRecord{
			ID:       j.id,
			Name:     j.app.Params.Name,
			Class:    j.app.Class,
			Arrival:  j.arrival,
			Dispatch: j.dispatch,
			Complete: j.complete,
			Device:   j.device,
		})
	}
	return res, nil
}

// speculate warms the scheduler's group memo with the next k groups
// the dispatcher would form from the current queue. Results and errors
// are deliberately dropped: this only moves simulation work off the
// critical path, it never changes what the real dispatch computes (the
// memo is keyed by group content and simulations are pure). A wrong
// guess — arrivals landing in the window before the device actually
// frees — costs one wasted simulation, never correctness.
func (f *Fleet) speculate(queue []*job, k int, sem chan struct{}, wg *sync.WaitGroup, seen map[string]bool) {
	if k <= 0 || len(queue) == 0 {
		return
	}
	// formGroup filters the queue in place, so work on a copy.
	spec := append([]*job(nil), queue...)
	for i := 0; i < k && len(spec) > 0; i++ {
		members, _ := f.formGroup(&spec)
		sig := ""
		for _, m := range members {
			sig += m.app.Params.Name + "|"
		}
		if seen[sig] {
			continue
		}
		seen[sig] = true
		g := make(sched.Group, len(members))
		for j, m := range members {
			g[j] = m.app
		}
		wg.Add(1)
		go func(g sched.Group) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, _ = f.pipe.Scheduler().RunGroup(g, f.cfg.Policy)
		}(g)
	}
}

// resolve materializes jobs from the arrival stream using the
// pipeline's workload definitions and classes.
func (f *Fleet) resolve(arrivals []Arrival) ([]*job, error) {
	names := make([]string, len(arrivals))
	for i, a := range arrivals {
		names[i] = a.Name
	}
	queued, err := f.pipe.Queue(names)
	if err != nil {
		return nil, err
	}
	jobs := make([]*job, len(arrivals))
	for i := range arrivals {
		if i > 0 && arrivals[i].Cycle < arrivals[i-1].Cycle {
			return nil, fmt.Errorf("fleet: arrivals not in cycle order (job %d at %d after %d)",
				i, arrivals[i].Cycle, arrivals[i-1].Cycle)
		}
		jobs[i] = &job{id: i, app: queued[i], arrival: arrivals[i].Cycle}
	}
	return jobs, nil
}

// retire records a completed group into the result and its jobs.
func (f *Fleet) retire(fl *inflight, res *Result) {
	for i, j := range fl.jobs {
		j.dispatch = fl.dispatch
		j.device = fl.device
		end := fl.rep.Cycles
		if i < len(fl.rep.Stats) && fl.rep.Stats[i].EndCycle > 0 {
			end = fl.rep.Stats[i].EndCycle
		}
		j.complete = fl.dispatch + end
	}
	res.DeviceBusy[fl.device] += fl.rep.Cycles
	if devEnd := fl.dispatch + fl.rep.Cycles; devEnd > res.Makespan {
		res.Makespan = devEnd
	}
	for _, st := range fl.rep.Stats {
		res.ThreadInstructions += st.ThreadInstructions
	}
	res.Groups++
	if fl.ilp {
		res.ILPGroups++
	} else {
		res.GreedyGroups++
	}
	res.SMMoves += fl.rep.SMMoves
}

// drain waits out every outstanding worker before an error return, so
// no goroutine outlives the run.
func (f *Fleet) drain(flights []*inflight) {
	for _, fl := range flights {
		if !fl.resolved {
			<-fl.done
		}
	}
}

// removeFlight drops one element, preserving order.
func removeFlight(flights []*inflight, target *inflight) []*inflight {
	out := flights[:0]
	for _, fl := range flights {
		if fl != target {
			out = append(out, fl)
		}
	}
	return out
}
