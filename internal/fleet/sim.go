package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/classify"
	"repro/internal/match"
	"repro/internal/sched"
)

// job is the dispatcher's mutable per-job state. A job's class (and the
// QueuedApp handed to the scheduler) depends on which hardware
// generation runs it, so apps is indexed by device type.
type job struct {
	id   int
	apps []sched.QueuedApp
	// solo caches the per-type solo profile (resolve fills it once from
	// the profiler's memo), so the hot loop's runtime estimates and the
	// analytic engine never take the profiler's lock or build its
	// string key per call.
	solo     []soloProfile
	arrival  uint64
	dispatch uint64
	complete uint64
	device   int
	// slo and deadline come from the arrival; deadline is relative to
	// arrival (0 for batch jobs).
	slo      SLOClass
	deadline uint64
	// progress is the checkpointed completed fraction preserved across
	// evictions, in [0, MaxCheckpoint]. evictions counts how often the
	// job was preempted.
	progress  float64
	evictions int
	// client is the closed-loop client pool that owns the job, -1 for
	// open-loop arrivals. attempts counts submissions (retries
	// included); state is the lifecycle the conservation accounting
	// reads (jsPending .. jsRejected, control.go).
	client   int
	attempts int
	state    uint8
	// soloEst is the mean calibrated solo duration across device types
	// (0 when never calibrated): the queue's O(1) backlog-work counter
	// and the admission predictor read it without touching profiles.
	soloEst uint64
	// coEst is soloEst inflated by the interference matrices' mean
	// co-run slowdown for this job's class (equal to soloEst when no
	// matrix is calibrated): the modeled admission predictor's
	// backlog-work unit.
	coEst uint64
}

// soloProfile is one job's cached solo-run profile on one device type:
// the calibrated cycles and retired thread instructions, and whether
// the profiler had them at all (ok false = never calibrated).
type soloProfile struct {
	cycles uint64
	instrs uint64
	ok     bool
}

// name returns the application name (identical across device types).
func (j *job) name() string { return j.apps[0].Params.Name }

// deadlineAbs is the absolute fleet cycle the job must complete by
// (only meaningful for latency jobs).
func (j *job) deadlineAbs() uint64 { return j.arrival + j.deadline }

// remainingFrac is the share of the job's duration a (re-)dispatch must
// still execute: everything for a fresh job; for a checkpointed one the
// un-preserved remainder plus the explicit restart cost (re-reading
// inputs, replaying the un-checkpointed tail), capped at a full re-run.
func (j *job) remainingFrac(slo SLOConfig) float64 {
	if j.progress == 0 {
		return 1
	}
	rem := 1 - j.progress + slo.RestartFrac
	if rem > 1 {
		rem = 1
	}
	return rem
}

// effectiveCycles scales a simulated per-member completion to the
// checkpoint model: a job that preserved fraction p of itself only
// occupies the device for its remaining fraction of the simulated run.
func (f *Fleet) effectiveCycles(j *job, end uint64) uint64 {
	rem := j.remainingFrac(f.cfg.SLO)
	if rem >= 1 {
		return end
	}
	e := uint64(math.Ceil(float64(end) * rem))
	if e < 1 {
		e = 1
	}
	return e
}

// inflight is one group executing on one device. Under the Cycle engine
// the result (rep) is computed on a worker goroutine and the event loop
// learns the completion by waiting on done — but only when it has to,
// thanks to the earliest lower bound below. Modeled flights are born
// resolved: rep is the analytic prediction and done is already closed.
type inflight struct {
	device   int
	typ      int
	dispatch uint64
	// seq is the dispatch sequence number; the unresolved heap breaks
	// earliest-bound ties by it, reproducing the old linear scan's
	// first-dispatched-wins order.
	seq int
	// earliest is a sound lower bound on the completion cycle, known at
	// dispatch time without simulating: the device cannot retire warp
	// instructions faster than its peak issue rate. It lets the event
	// loop commit to arrivals and already-resolved completions that
	// provably precede this group's completion while the simulation is
	// still running on its worker — the pipelining that makes a 4-device
	// fleet measurably faster than 4 sequential sims.
	earliest uint64
	jobs     []*job
	ilp      bool
	// state tracks the flight through the event core's heaps (pending →
	// resolved → retired, or → evicted from either); modeled marks
	// completions computed by the analytic model rather than simulated.
	state   flightState
	modeled bool
	// calKey is set on Hybrid warm-up flights: the composition whose
	// calibration this flight's resolution feeds.
	calKey string

	done     chan struct{}
	rep      sched.GroupReport
	err      error
	complete uint64
}

// closedDone is the pre-closed completion channel modeled flights
// carry, so eviction bookkeeping can wait on any flight uniformly.
var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// lowerBoundCycles bounds a group's makespan on device type t from
// below without simulating. Two sound bounds, take the tighter:
//
//   - issue rate: every member must issue all of its warp instructions,
//     and even owning the whole device it cannot issue more than that
//     type's NumSMs*SchedulersPerSM per cycle. Weak for memory-bound
//     kernels, which run far below peak issue. (Warp instructions, not
//     thread instructions: PeakIPC counts issue slots, and one issued
//     instruction covers a whole warp.)
//   - solo profile: a member co-running on an SM partition with memory
//     contention cannot finish faster than its solo run on the whole
//     device of the same type. resolve caches every job's solo profile
//     per type up front, so the lookup is a slice index; half the solo
//     duration leaves margin for simulator nonmonotonicities
//     (partitioning shifts cache and DRAM row locality in both
//     directions).
//
// On a heterogeneous roster the bound must come from the device that
// will actually run the group — a big device's peak issue rate is not
// sound for a small one. The bound's only job is to be sound and large
// enough that the event loop can commit to other devices' completions
// while this group is still simulating — that is where the fleet's
// wall-clock concurrency comes from.
func (f *Fleet) lowerBoundCycles(members []*job, t int) uint64 {
	peak := f.types[t].Config().PeakIPC()
	bound := 1.0
	for _, m := range members {
		lb := float64(m.apps[t].Params.TotalInstrs()) / peak
		if sp := m.solo[t]; sp.ok {
			if solo := float64(sp.cycles) / 2; solo > lb {
				lb = solo
			}
		}
		// A checkpointed member's effective runtime is its simulated end
		// scaled by the remaining fraction, so its bound scales the same
		// way (end >= lb implies end*rem >= lb*rem).
		lb *= m.remainingFrac(f.cfg.SLO)
		if lb > bound {
			bound = lb
		}
	}
	return uint64(bound)
}

// Run executes the arrival stream on the fleet and returns the per-job
// and per-device accounting. The loop is a discrete-event simulation
// over three event sources — job arrivals (known in advance), resolved
// group completions, and unresolved in-flight groups (whose completion
// is bounded below) — and always processes the provably-earliest event,
// so the outcome is independent of worker timing. All three sources are
// indexed (completion and bound min-heaps, an idle-device heap in
// placement order, a head-indexed priority queue), so one event costs
// O(log n) instead of a scan over every flight and device.
func (f *Fleet) Run(arrivals []Arrival) (Result, error) {
	closed := f.cfg.Closed.Enabled
	if closed && len(arrivals) > 0 {
		return Result{}, fmt.Errorf("fleet: closed-loop runs generate their own submissions; pass no arrivals")
	}
	if !closed && len(arrivals) == 0 {
		return Result{}, fmt.Errorf("fleet: empty arrival stream")
	}
	var (
		jobs      []*job
		perClient [][]*job
		err       error
	)
	if closed {
		jobs, perClient, err = f.resolveClosed()
	} else {
		jobs, err = f.resolve(arrivals)
	}
	if err != nil {
		return Result{}, err
	}
	if f.cfg.Shards > 1 {
		// The sharded path partitions the roster into independent event
		// loops (shard.go); one shard is exactly the classic loop below.
		return f.runSharded(jobs, perClient)
	}

	devices := len(f.devType)
	res := Result{
		Policy:     f.cfg.Policy,
		Engine:     f.cfg.Engine,
		Roster:     f.cfg.RosterString(),
		Devices:    devices,
		NC:         f.cfg.NC,
		Closed:     closed,
		Admission:  f.cfg.Admission.Enabled,
		Autoscale:  f.cfg.Autoscale.Enabled,
		Chaos:      f.cfg.Chaos.Enabled,
		DeviceBusy: make([]uint64, devices),
	}
	for d := range f.devType {
		res.DeviceConfig = append(res.DeviceConfig, f.deviceName(d))
	}
	// idle mirrors "no flight in progress" for the speculation pass; the
	// heap itself hands the dispatch pass the fastest idle device.
	idle := make([]bool, devices)
	for d := range idle {
		idle[d] = true
	}
	idleDevs := deviceHeap{pos: f.orderPos}
	// The pool holds one slot per device for the in-flight groups plus
	// as many again for speculative pre-simulation, capped by the host.
	// The Modeled engine never simulates, so it skips the pool.
	var sem chan struct{}
	if f.cfg.Engine != Modeled {
		workers := 2 * devices
		if n := runtime.NumCPU(); workers > n {
			workers = n
		}
		if workers < 2 {
			workers = 2
		}
		sem = make(chan struct{}, workers)
	}
	var specWG sync.WaitGroup
	defer specWG.Wait()
	speculated := make(map[string]bool)
	disp := f.newDispatcher()

	const inf = math.MaxUint64
	var (
		// flightOf indexes the live flight by device (one per device);
		// resolved/unresolved order them by completion and by earliest
		// bound. Flights leave the heaps lazily via their state.
		flightOf   = make([]*inflight, devices)
		resolved   = flightHeap{live: flightResolved, less: completionLess}
		unresolved = flightHeap{live: flightPending, less: func(a, b *inflight) bool {
			return a.earliest < b.earliest || (a.earliest == b.earliest && a.seq < b.seq)
		}}
		queue     = jobQueue{slo: f.cfg.SLO.Enabled}
		now       uint64
		nextArr   int
		seq       int
		remaining = len(jobs)
		hybrid    map[string]*hybridCal
		// abandoned holds evicted flights whose simulations are still
		// running; their results are discarded, but Run must not return
		// (and tests must not race) while their workers live.
		abandoned []*inflight
	)
	if f.cfg.Engine == Hybrid {
		hybrid = make(map[string]*hybridCal)
	}
	// arr is the open-loop admission stream; closed-loop submissions
	// arrive through the control-event heap instead.
	arr := jobs
	if closed {
		arr = nil
	}
	// The control block; nil when no control surface is configured, so
	// the hot loop pays one pointer check per event.
	var ctl *loopCtl
	if f.ctlEnabled() {
		ctl = f.newLoopCtl(&res, &queue, &idleDevs, flightOf, nil, &remaining,
			f.order, f.cfg.Autoscale.Min, f.cfg.Autoscale.Max)
		// Chaos events enter the heap first, so at equal cycles a failure
		// fires before that cycle's client submissions and timers (lower
		// push seq) — a submission never races onto a device the same
		// cycle kills.
		if f.cfg.Chaos.Enabled {
			ctl.initChaos(f.resolveChaos())
		}
		if closed {
			ids := make([]int, f.cfg.Closed.Clients)
			for i := range ids {
				ids[i] = i
			}
			ctl.initClients(perClient, ids)
		}
	}
	// Seed the idle heap with the initially-active devices (all of them,
	// unless the autoscaler starts the roster at its floor).
	for d := range f.devType {
		if ctl == nil || ctl.active[d] {
			idleDevs.push(d)
		}
	}
	// The observability sampler; nil when sampling is off, so the hot
	// loop pays exactly one pointer check per time advance.
	var col *sampler
	if f.cfg.SampleEvery > 0 {
		col = newSampler(f.cfg.SampleEvery, devices, ctl != nil, f.cfg.Chaos.Enabled)
		col.ctl = ctl
	}
	if ctl != nil {
		// Failure evictions need the same side bookkeeping the
		// preemption block below does: the aborted attempt's device time
		// is busy time, a Hybrid warm-up refunds its calibration slot,
		// and a Cycle-engine worker must be waited out before Run
		// returns. The freed device stays out of the idle heap —
		// chaosFail owns that.
		ctl.onChaosEvict = func(fl *inflight, at uint64) {
			if col != nil {
				col.addBusy(fl.device, fl.dispatch, at)
			}
			if fl.calKey != "" {
				hybrid[fl.calKey].started--
				fl.calKey = ""
			}
			idle[fl.device] = true
			abandoned = append(abandoned, fl)
		}
	}
	defer func() {
		for _, fl := range abandoned {
			<-fl.done
		}
	}()
	for remaining > 0 {
		// Admit arrivals due by now (priority order when SLO-aware);
		// admission control may reject or degrade a submission first.
		for nextArr < len(arr) && arr[nextArr].arrival <= now {
			j := arr[nextArr]
			nextArr++
			if ctl != nil && !ctl.admitOpen(j, now) {
				continue
			}
			queue.insert(j)
		}
		// Dispatch to idle devices while work is waiting, fastest device
		// first: group formation is placement-aware, scoring candidates
		// with the chosen device type's interference matrix.
		for queue.Len() > 0 {
			d := idleDevs.pop()
			if d < 0 {
				break
			}
			t := f.devType[d]
			fl := disp.newFlight()
			members, usedILP := disp.formGroup(fl.jobs[:0], &queue, t, now)
			for _, m := range members {
				m.state = jsRunning
			}
			idle[d] = false
			fl.device = d
			fl.typ = t
			fl.dispatch = now
			fl.seq = seq
			fl.jobs = members
			fl.ilp = usedILP
			seq++
			useModel, calib := f.cfg.Engine == Modeled, 1.0
			if f.cfg.Engine == Hybrid {
				key := compositionKey(members, t)
				cal := hybrid[key]
				if cal == nil {
					cal = &hybridCal{}
					hybrid[key] = cal
				}
				if cal.started < f.cfg.HybridWarm {
					cal.started++
					fl.calKey = key
				} else {
					useModel, calib = true, cal.calibration()
				}
			}
			if useModel {
				// Born resolved: the model is the completion; commitModeled
				// batches the whole group into one heap event.
				if err := disp.commitModeled(fl, now, calib, &resolved); err != nil {
					f.drain(flightOf)
					return Result{}, err
				}
			} else {
				fl.done = make(chan struct{})
				fl.earliest = now + f.lowerBoundCycles(members, t)
				unresolved.push(fl)
				go func(fl *inflight) {
					sem <- struct{}{}
					defer func() { <-sem }()
					g := make(sched.Group, len(fl.jobs))
					for i, m := range fl.jobs {
						g[i] = m.apps[fl.typ]
					}
					fl.rep, fl.err = f.types[fl.typ].Scheduler().RunGroup(g, f.cfg.Policy)
					close(fl.done)
				}(fl)
			}
			flightOf[d] = fl
		}
		// A drained queue means no pending speculation guess can be
		// dispatched next, so the dedup signatures are dead weight: reset
		// the map rather than let a 100k-job run accumulate every
		// historical group signature. A signature that recurs later costs
		// one re-submitted RunGroup, which the scheduler's memo dedups.
		if queue.Len() == 0 && len(speculated) > 0 {
			clear(speculated)
		}
		// Preemption: when the head of the queue is a latency job that
		// would miss its deadline waiting for the predicted next natural
		// completion, clear one running all-batch group and loop back so
		// the dispatch pass places the trigger on the freed device.
		if f.cfg.SLO.Preempt && queue.Len() > 0 && queue.at(0).slo == Latency {
			if victim := f.preemptVictim(queue.at(0), flightOf, ctl, now); victim != nil {
				f.evict(victim, queue.at(0), now, &res)
				if col != nil {
					// The aborted attempt's device time is real busy time.
					col.addBusy(victim.device, victim.dispatch, now)
				}
				if victim.calKey != "" {
					// An evicted Hybrid warm-up never resolves, so it can
					// never feed its composition's calibration — refund the
					// warm-up slot so a later dispatch runs it instead of
					// the composition silently staying uncalibrated.
					hybrid[victim.calKey].started--
					victim.calKey = ""
				}
				victim.state = flightEvicted
				flightOf[victim.device] = nil
				idle[victim.device] = true
				idleDevs.push(victim.device)
				abandoned = append(abandoned, victim)
				for _, j := range victim.jobs {
					queue.insert(j)
				}
				continue
			}
		}
		// Pick the provably-earliest next event. Ties go to arrivals
		// first (a job landing the instant a device frees still queues
		// before the dispatch decision), then to control events
		// (submissions, timeouts, scaling), then to the lowest device id
		// among resolved completions (the heap key).
		tArr := uint64(inf)
		if nextArr < len(arr) {
			tArr = arr[nextArr].arrival
		}
		tCtl := uint64(inf)
		if ctl != nil {
			tCtl = ctl.next()
		}
		cBest, uBest := resolved.peek(), unresolved.peek()
		cTime, uTime := uint64(inf), uint64(inf)
		if cBest != nil {
			cTime = cBest.complete
		}
		if uBest != nil {
			uTime = uBest.earliest
		}
		switch {
		case tArr != inf && tArr <= tCtl && tArr <= cTime && tArr <= uTime:
			// Sample every interval boundary the advance crosses with the
			// pre-advance state; events at tArr itself fold into the row
			// at (or after) tArr, emitted on a later advance.
			if col != nil {
				col.advanceTo(tArr, &queue, flightOf, &res)
			}
			now = tArr
		case tCtl != inf && tCtl <= cTime && tCtl <= uTime:
			if col != nil {
				col.advanceTo(tCtl, &queue, flightOf, &res)
			}
			now = tCtl
			ctl.step(now)
		case cBest != nil && cTime <= uTime:
			if col != nil {
				col.advanceTo(cTime, &queue, flightOf, &res)
			}
			now = cTime
			resolved.pop()
			cBest.state = flightRetired
			f.retire(cBest, &res)
			if col != nil {
				col.noteRetire(cBest)
				col.addBusy(cBest.device, cBest.dispatch, cBest.complete)
			}
			remaining -= len(cBest.jobs)
			flightOf[cBest.device] = nil
			idle[cBest.device] = true
			if ctl == nil || ctl.deviceUp(cBest.device) {
				// A draining device's last flight retires it out of
				// placement order; a restore pushes it back.
				idleDevs.push(cBest.device)
			}
			if ctl != nil {
				// Before recycle: closed-loop clients read the member
				// references to schedule their next submissions.
				ctl.onRetire(cBest, now)
			}
			if cBest.modeled {
				// A retired modeled flight has left every heap (it was only
				// ever in resolved, and pop removed it), so its record and
				// buffers can serve the next dispatch.
				disp.recycle(cBest)
			}
		case uBest != nil:
			// The unresolved group with the earliest possible completion
			// might be the next event; block until its worker reports.
			// Every other in-flight simulation keeps running meanwhile —
			// and so do speculative runs of the groups the still-busy
			// devices will most likely dispatch when they free up.
			// Group formation is a pure function of queue content and
			// device type, so in drained-arrival phases the prediction is
			// exact and the real dispatch later finds its simulation
			// already done (or in flight — the scheduler dedups identical
			// executions).
			if runtime.NumCPU() > 1 || f.cfg.forceSpec {
				f.speculate(disp, queue.view(), idle, now, sem, &specWG, speculated)
			}
			<-uBest.done
			if uBest.err != nil {
				f.drain(flightOf)
				return Result{}, uBest.err
			}
			uBest.complete = uBest.dispatch + f.flightCycles(uBest)
			if uBest.complete < uBest.earliest {
				// The bound was not sound after all — fail loudly rather
				// than silently reorder events.
				f.drain(flightOf)
				return Result{}, fmt.Errorf("fleet: completion %d before lower bound %d for group on device %d",
					uBest.complete, uBest.earliest, uBest.device)
			}
			if uBest.calKey != "" {
				if err := f.calibrate(hybrid[uBest.calKey], uBest); err != nil {
					f.drain(flightOf)
					return Result{}, err
				}
			}
			uBest.state = flightResolved
			resolved.push(uBest)
		default:
			if ctl != nil && ctl.failedCount+ctl.drainingCount > 0 {
				return Result{}, fmt.Errorf("fleet: no dispatchable work with %d jobs outstanding (%d devices failed, %d draining, and no restore scheduled)",
					remaining, ctl.failedCount, ctl.drainingCount)
			}
			return Result{}, fmt.Errorf("fleet: no dispatchable work with %d jobs outstanding", remaining)
		}
	}
	if col != nil {
		res.Series = col.finish(res.Makespan, &queue, flightOf, &res)
	}
	if hybrid != nil {
		samples, delta := 0, 0.0
		for _, cal := range hybrid {
			samples += cal.n
			delta += cal.delta
		}
		if samples > 0 {
			res.ModelDelta = delta / float64(samples)
		}
	}

	for _, j := range jobs {
		res.Jobs = append(res.Jobs, f.jobRecord(j))
	}
	return res, nil
}

// jobRecord projects one job's final state onto its record — the one
// place outcome, device and class are decided, shared by the classic
// and sharded paths so the two can never disagree.
func (f *Fleet) jobRecord(j *job) JobRecord {
	rec := JobRecord{
		ID:        j.id,
		Name:      j.name(),
		SLO:       j.slo,
		Deadline:  j.deadline,
		Arrival:   j.arrival,
		Dispatch:  j.dispatch,
		Complete:  j.complete,
		Device:    j.device,
		Evictions: j.evictions,
		Attempts:  j.attempts,
	}
	// Open-loop jobs outside control runs never count attempts; report
	// the one submission they had.
	if rec.Attempts == 0 {
		rec.Attempts = 1
	}
	t := 0
	switch j.state {
	case jsRejected:
		rec.Outcome = Rejected
		rec.Device = -1
	case jsAbandoned:
		rec.Outcome = Abandoned
		rec.Device = -1
	default:
		rec.Outcome = Done
		t = f.devType[j.device]
	}
	rec.Class = j.apps[t].Class
	return rec
}

// calibrate folds a resolved Hybrid warm-up flight into its
// composition's calibration: the simulated per-member ends against the
// raw (uncalibrated) model's predictions for the same group.
func (f *Fleet) calibrate(cal *hybridCal, fl *inflight) error {
	model, err := f.modelReport(fl.jobs, fl.typ, 1)
	if err != nil {
		return err
	}
	actual := make([]uint64, len(fl.jobs))
	predicted := make([]uint64, len(fl.jobs))
	for i := range fl.jobs {
		// Raw simulated ends (group makespan fallback), deliberately not
		// checkpoint-scaled: the model predicts full runs and the
		// checkpoint scaling is applied downstream of both engines.
		e := fl.rep.Cycles
		if i < len(fl.rep.Stats) && fl.rep.Stats[i].EndCycle > 0 {
			e = fl.rep.Stats[i].EndCycle
		}
		actual[i] = e
		predicted[i] = model.Stats[i].EndCycle
	}
	cal.observe(actual, predicted)
	return nil
}

// preemptVictim decides whether evicting a running group saves the
// trigger latency job, and which group to clear. It returns nil when no
// eviction is justified: the trigger can still meet its deadline by
// waiting (the predicted next device free time plus the fastest solo
// run on the roster makes it), or no running group is evictable (every
// group shields a latency member), or the deadline is already
// unreachable even on a device freed right now (eviction would burn
// batch progress without saving anything).
func (f *Fleet) preemptVictim(trigger *job, flightOf []*inflight, ctl *loopCtl, now uint64) *inflight {
	// Waiting means the dispatch loop hands the queue head to the FIRST
	// device that frees — there is no holding back for a faster one —
	// so the no-eviction outcome is the co-run on that flight's own
	// device type. Ties between simultaneously freeing devices resolve
	// by placement order, exactly as the real dispatch pass scans them.
	// A draining device's flight frees nothing dispatchable, so down
	// devices are out on both sides of the decision: their completions
	// never serve the trigger, and evicting them frees a device the
	// dispatch pass would skip anyway.
	var first *inflight
	firstFree := uint64(math.MaxUint64)
	for _, fl := range flightOf {
		if fl == nil {
			continue
		}
		if ctl != nil && !ctl.deviceUp(fl.device) {
			continue
		}
		free := f.predictedFree(fl)
		if first == nil || free < firstFree ||
			(free == firstFree && f.orderPos[fl.device] < f.orderPos[first.device]) {
			first, firstFree = fl, free
		}
	}
	if first == nil {
		return nil
	}
	run, ok := f.coRunCycles(trigger, first.typ)
	if !ok {
		return nil // no solo profile to estimate with; never evict blindly
	}
	deadline := trigger.deadlineAbs()
	if firstFree+run <= deadline {
		return nil
	}
	// Candidate victims: running groups with no latency member, whose
	// freed device could still let the trigger meet the deadline. The
	// two sides of the decision are deliberately asymmetric: the
	// would-miss test above uses the pessimistic co-run estimate (missing
	// a needed rescue forfeits the deadline for good), while this
	// can-save test uses the solo optimum (a rescue that might work is
	// worth one batch group's progress; if it fails anyway, the waste is
	// bounded and reported).
	var victim *inflight
	for _, fl := range flightOf {
		if fl == nil {
			continue
		}
		if ctl != nil && !ctl.deviceUp(fl.device) {
			continue
		}
		evictable := true
		for _, j := range fl.jobs {
			if j.slo == Latency {
				evictable = false
				break
			}
		}
		if !evictable {
			continue
		}
		// A device already predicted to free at the current cycle gives
		// eviction no head start over waiting — clearing it would throw
		// away a (possibly finished) run for zero latency gain.
		if f.predictedFree(fl) <= now {
			continue
		}
		if solo, ok := f.soloCycles(trigger, fl.typ); !ok || now+solo > deadline {
			continue
		}
		if victim == nil || fl.dispatch > victim.dispatch ||
			(fl.dispatch == victim.dispatch && fl.device < victim.device) {
			victim = fl
		}
	}
	return victim
}

// coRunCycles estimates the trigger's co-run duration on device type t:
// its remaining solo duration scaled by the least favorable pairwise
// slowdown the interference matrix predicts, or the plain solo when no
// matrix is calibrated. Deadline protection deliberately assumes the
// worst co-partner: the per-class matrix entries are averages, so an
// optimistic estimate predicts "will meet it" for jobs the simulation
// then misses by a small margin, and the rescue never fires.
func (f *Fleet) coRunCycles(j *job, t int) (uint64, bool) {
	solo, ok := f.soloCycles(j, t)
	if !ok {
		return 0, false
	}
	m := f.types[t].Matrix()
	if m == nil || f.cfg.NC < 2 {
		return solo, true
	}
	// The worst case is modeled as NC-1 partners of one class (the
	// class whose uniform company slows this job most) — it covers the
	// pairwise and triple matrix entries exactly and stays O(NT) rather
	// than enumerating mixed partner multisets.
	cls := j.apps[t].Class
	worst := 1.0
	for c := classify.Class(0); c < classify.NumClasses; c++ {
		p := make(match.Pattern, f.cfg.NC)
		p[0] = cls
		for i := 1; i < f.cfg.NC; i++ {
			p[i] = c
		}
		if s := match.MemberSlowdown(m, p, 0); s > worst {
			worst = s
		}
	}
	return uint64(float64(solo) * worst), true
}

// chaosTriggerID is the EvictionRecord.TriggerJob sentinel for
// evictions forced by a device failure rather than a latency job.
const chaosTriggerID = -1

// evict aborts fl at cycle now: its jobs re-enter the queue with
// checkpointed progress and the device frees immediately. Under the
// Cycle engine the group's simulation keeps running on its worker — its
// result is discarded, but the memo may still serve a later identical
// dispatch — so eviction never blocks the event loop; a modeled
// flight's done channel is already closed.
//
// The checkpoint is taken from the solo-profile progress model, not from
// simulator state: a job that ran elapsed cycles preserves up to
// elapsed/solo of itself (optimistic — co-running is slower than solo),
// capped at MaxCheckpoint. Wasted accounts the attempt time the
// checkpoints do not preserve plus the restart tax the re-dispatch will
// pay.
func (f *Fleet) evict(fl *inflight, trigger *job, now uint64, res *Result) {
	f.evictAs(fl, trigger.id, now, res)
}

// evictAs is evict with an explicit trigger id, shared by preemption
// (the trigger job's id) and the chaos layer (chaosTriggerID): both
// re-queue the members through the same checkpoint model, so a failure
// wastes exactly what a preemption of the same flight would have.
func (f *Fleet) evictAs(fl *inflight, triggerID int, now uint64, res *Result) {
	elapsed := now - fl.dispatch
	rec := EvictionRecord{Cycle: now, Device: fl.device, TriggerJob: triggerID}
	slo := f.cfg.SLO
	for _, j := range fl.jobs {
		before := j.progress
		var solo float64
		if sp := j.solo[fl.typ]; sp.ok {
			solo = float64(sp.cycles)
		}
		if solo > 0 {
			// A re-dispatched attempt spends its first min(RestartFrac,
			// progress)*solo cycles replaying already-checkpointed work;
			// only the time past that replay earns new progress —
			// otherwise repeated evictions would mint checkpoint credit
			// out of restarts alone.
			fresh := float64(elapsed)
			if before > 0 {
				replay := slo.RestartFrac
				if before < replay {
					replay = before
				}
				fresh -= replay * solo
				if fresh < 0 {
					fresh = 0
				}
			}
			j.progress += fresh / solo
			if j.progress > slo.MaxCheckpoint {
				j.progress = slo.MaxCheckpoint
			}
		}
		j.evictions++
		rec.Jobs = append(rec.Jobs, j.id)
		rec.Progress = append(rec.Progress, j.progress)
		waste := float64(elapsed) - (j.progress-before)*solo
		if waste < 0 {
			waste = 0
		}
		// The restart tax actually charged on re-dispatch is capped by
		// remainingFrac at min(RestartFrac, progress) of the solo run —
		// a job with no checkpoint re-runs from scratch and pays none.
		tax := slo.RestartFrac
		if j.progress < tax {
			tax = j.progress
		}
		waste += tax * solo
		rec.Wasted += uint64(waste)
	}
	// The aborted attempt occupied the device for real.
	res.DeviceBusy[fl.device] += elapsed
	res.Evictions = append(res.Evictions, rec)
}

// predictedFree estimates when fl's device frees: the exact completion
// once the simulation has resolved, otherwise dispatch plus the longest
// member's remaining solo duration scaled by its class's expected
// co-run slowdown from the interference matrix (the model's own
// Equation 3.4 ingredients; plain solo when no matrix is calibrated).
// This is deliberately the model's likely free time, not the event
// loop's (halved) safety bound: the preemption decision wants a
// realistic estimate, while event ordering needs a provable one.
func (f *Fleet) predictedFree(fl *inflight) uint64 {
	if fl.state == flightResolved {
		return fl.complete
	}
	est := fl.earliest
	m := f.types[fl.typ].Matrix()
	var pat match.Pattern
	if m != nil {
		pat = make(match.Pattern, len(fl.jobs))
		for i, j := range fl.jobs {
			pat[i] = j.apps[fl.typ].Class
		}
	}
	for i, j := range fl.jobs {
		solo, ok := f.soloCycles(j, fl.typ)
		if !ok {
			continue
		}
		dur := float64(solo)
		if pat != nil {
			dur *= match.MemberSlowdown(m, pat, i)
		}
		if e := fl.dispatch + uint64(dur); e > est {
			est = e
		}
	}
	return est
}

// soloCycles estimates how long job j would run alone on device type t,
// scaled to its checkpointed remainder. It is the dispatcher's cheapest
// (and fastest-possible) runtime estimate — resolve cached every job's
// solo profile per type, so this is a slice index.
func (f *Fleet) soloCycles(j *job, t int) (uint64, bool) {
	sp := j.solo[t]
	if !sp.ok {
		return 0, false
	}
	c := uint64(math.Ceil(float64(sp.cycles) * j.remainingFrac(f.cfg.SLO)))
	if c < 1 {
		c = 1
	}
	return c, true
}

// memberEnd is member i's checkpoint-scaled completion offset within
// flight fl: its per-member end (simulated or modeled, falling back to
// the group makespan) through the effective-cycles scaling. Both the
// event loop's completion ordering (flightCycles) and the final
// accounting (retire) read ends through this one helper, so the two can
// never disagree.
func (f *Fleet) memberEnd(fl *inflight, i int) uint64 {
	e := fl.rep.Cycles
	if i < len(fl.rep.Stats) && fl.rep.Stats[i].EndCycle > 0 {
		e = fl.rep.Stats[i].EndCycle
	}
	return f.effectiveCycles(fl.jobs[i], e)
}

// flightCycles is the group's effective device occupancy: the max of
// the members' checkpoint-scaled completion cycles (exactly the
// simulated group makespan when no member carries a checkpoint).
func (f *Fleet) flightCycles(fl *inflight) uint64 {
	end := uint64(0)
	for i := range fl.jobs {
		if e := f.memberEnd(fl, i); e > end {
			end = e
		}
	}
	return end
}

// speculate warms the schedulers' group memos with the groups each
// still-busy device would most likely dispatch next from the current
// queue. Results and errors are deliberately dropped: this only moves
// simulation work off the critical path, it never changes what the real
// dispatch computes (the memo is keyed by group content and simulations
// are pure). A wrong guess — arrivals landing in the window before the
// device actually frees, or busy devices freeing in a different order —
// costs one wasted simulation, never correctness.
func (f *Fleet) speculate(disp *dispatcher, queue []*job, idle []bool, now uint64, sem chan struct{}, wg *sync.WaitGroup, seen map[string]bool) {
	if len(queue) == 0 {
		return
	}
	// formGroup filters the queue in place, so work on a copy (the copy
	// owns its buffer, so compaction cannot touch the real queue). Busy
	// devices are predicted in placement order — the same order real
	// dispatch would offer them work if they all freed at once. With
	// aging on the prediction also guesses the dispatch time (now); a
	// stale guess costs one wasted simulation, never correctness.
	spec := jobQueue{slo: f.cfg.SLO.Enabled, buf: append([]*job(nil), queue...)}
	for _, d := range f.order {
		if idle[d] || spec.Len() == 0 {
			continue
		}
		t := f.devType[d]
		members, _ := disp.formGroup(nil, &spec, t, now)
		sig := fmt.Sprintf("t%d:", t)
		for _, m := range members {
			sig += m.name() + "|"
		}
		if seen[sig] {
			continue
		}
		seen[sig] = true
		g := make(sched.Group, len(members))
		for j, m := range members {
			g[j] = m.apps[t]
		}
		wg.Add(1)
		go func(t int, g sched.Group) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, _ = f.types[t].Scheduler().RunGroup(g, f.cfg.Policy)
		}(t, g)
	}
}

// resolve materializes jobs from the arrival stream using each device
// type's workload definitions and classes: the same application may
// classify differently across hardware generations, so every job
// carries one QueuedApp per type.
func (f *Fleet) resolve(arrivals []Arrival) ([]*job, error) {
	// Arrival streams repeat a small application universe, so the
	// per-type pipeline work (Queue's workload lookup, the profiler's
	// locked solo-profile table) is done once per distinct name and
	// fanned out to the jobs — resolve cost scales with the universe,
	// not the job count.
	distinct := make([]string, 0, 16)
	nameIdx := make(map[string]int)
	for _, a := range arrivals {
		if _, ok := nameIdx[a.Name]; !ok {
			nameIdx[a.Name] = len(distinct)
			distinct = append(distinct, a.Name)
		}
	}
	perType := make([][]sched.QueuedApp, len(f.types))
	soloByType := make([][]soloProfile, len(f.types))
	for t, pipe := range f.types {
		queued, err := pipe.Queue(distinct)
		if err != nil {
			return nil, err
		}
		perType[t] = queued
		solos := make([]soloProfile, len(distinct))
		for d, name := range distinct {
			if r, ok := pipe.Profiler().Peek(name, 0); ok {
				solos[d] = soloProfile{cycles: r.Cycles, instrs: r.ThreadInstructions, ok: true}
			}
		}
		soloByType[t] = solos
	}
	// Jobs are arena-allocated: one backing array for the records, one
	// for the per-type QueuedApps and one for the per-type solo cache —
	// three allocations for the whole run instead of three per job.
	nt := len(f.types)
	arena := make([]job, len(arrivals))
	appsArena := make([]sched.QueuedApp, len(arrivals)*nt)
	soloArena := make([]soloProfile, len(arrivals)*nt)
	jobs := make([]*job, len(arrivals))
	for i := range arrivals {
		if i > 0 && arrivals[i].Cycle < arrivals[i-1].Cycle {
			return nil, fmt.Errorf("fleet: arrivals not in cycle order (job %d at %d after %d)",
				i, arrivals[i].Cycle, arrivals[i-1].Cycle)
		}
		j := &arena[i]
		j.id = i
		j.client = -1
		j.apps = appsArena[i*nt : (i+1)*nt : (i+1)*nt]
		j.solo = soloArena[i*nt : (i+1)*nt : (i+1)*nt]
		d := nameIdx[arrivals[i].Name]
		est, cnt := uint64(0), uint64(0)
		for t := range f.types {
			qa := perType[t][d]
			// Queue defines Arrival as the queue position; restore the
			// job's own so within-group FCFS ordering is exactly what a
			// per-job Queue call would have produced.
			qa.Arrival = i
			j.apps[t] = qa
			j.solo[t] = soloByType[t][d]
			if sp := j.solo[t]; sp.ok {
				est += sp.cycles
				cnt++
			}
		}
		if cnt > 0 {
			j.soloEst = est / cnt
			j.coEst = j.soloEst
			if f.meanSlow != nil {
				// The interference-aware estimate: each calibrated type's
				// solo duration inflated by the mean co-run slowdown the
				// matrix predicts for this job's class there.
				co := 0.0
				for t := range f.types {
					if sp := j.solo[t]; sp.ok {
						co += float64(sp.cycles) * f.meanSlow[t][j.apps[t].Class]
					}
				}
				j.coEst = uint64(co / float64(cnt))
			}
		}
		j.arrival = arrivals[i].Cycle
		j.slo = arrivals[i].SLO
		j.deadline = arrivals[i].Deadline
		jobs[i] = j
	}
	return jobs, nil
}

// retire records a completed group into the result and its jobs. All
// cycle accounting goes through the checkpoint-scaled effective ends,
// which coincide with the simulated ones for groups of fresh jobs.
func (f *Fleet) retire(fl *inflight, res *Result) {
	groupEnd := uint64(0)
	for i, j := range fl.jobs {
		j.dispatch = fl.dispatch
		j.device = fl.device
		j.state = jsDone
		end := f.memberEnd(fl, i)
		if end > groupEnd {
			groupEnd = end
		}
		j.complete = fl.dispatch + end
	}
	res.DeviceBusy[fl.device] += groupEnd
	if devEnd := fl.dispatch + groupEnd; devEnd > res.Makespan {
		res.Makespan = devEnd
	}
	for _, st := range fl.rep.Stats {
		res.ThreadInstructions += st.ThreadInstructions
	}
	res.Groups++
	if fl.ilp {
		res.ILPGroups++
	} else {
		res.GreedyGroups++
	}
	if fl.modeled {
		res.ModeledGroups++
	} else {
		res.CycleGroups++
	}
	res.SMMoves += fl.rep.SMMoves
}

// drain waits out every outstanding worker before an error return, so
// no goroutine outlives the run.
func (f *Fleet) drain(flightOf []*inflight) {
	for _, fl := range flightOf {
		if fl != nil && fl.state == flightPending {
			<-fl.done
		}
	}
}
