package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/rng"
)

// ArrivalKind selects the arrival process.
type ArrivalKind int

const (
	// Poisson draws i.i.d. exponential inter-arrival times at Rate.
	Poisson ArrivalKind = iota
	// Bursty is an on-off modulated Poisson process: exponential ON
	// phases at BurstRate alternate with silent OFF phases, the classic
	// heavy-traffic stress shape.
	Bursty
	// Trace replays an explicit list of (benchmark, cycle) arrivals.
	Trace
)

// String names the kind as the CLI spells it.
func (k ArrivalKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Trace:
		return "trace"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(k))
	}
}

// ParseArrivalKind parses the CLI spelling.
func ParseArrivalKind(s string) (ArrivalKind, error) {
	switch strings.ToLower(s) {
	case "poisson":
		return Poisson, nil
	case "bursty", "onoff", "on-off":
		return Bursty, nil
	case "trace":
		return Trace, nil
	default:
		return 0, fmt.Errorf("fleet: unknown arrival process %q (poisson, bursty, trace)", s)
	}
}

// Arrival is one job arrival: which benchmark, and when.
type Arrival struct {
	Name  string
	Cycle uint64
}

// ArrivalConfig parameterizes a deterministic arrival stream. Rates are
// expressed in expected arrivals per 1000 simulated cycles, a scale on
// which the suite's 30k–150k-cycle solo runs give rates near 1 a
// saturating feel.
type ArrivalConfig struct {
	// Kind selects the process.
	Kind ArrivalKind
	// Jobs is how many arrivals to generate (Poisson and Bursty).
	Jobs int
	// Rate is the mean arrival rate (per kilocycle) for Poisson.
	Rate float64
	// BurstRate is the ON-phase rate for Bursty (0 selects 4*Rate).
	BurstRate float64
	// MeanOn and MeanOff are the mean ON/OFF phase lengths in cycles
	// for Bursty (0 selects 20_000 and 60_000).
	MeanOn, MeanOff float64
	// Trace is the explicit arrival list for Kind == Trace.
	Trace []Arrival
	// Seed drives every random draw; same seed, same stream.
	Seed uint64
}

// Generate materializes the arrival stream. universe lists the
// benchmark names jobs are drawn from (uniformly); it is ignored for
// Kind == Trace.
func (c ArrivalConfig) Generate(universe []string) ([]Arrival, error) {
	switch c.Kind {
	case Trace:
		if len(c.Trace) == 0 {
			return nil, fmt.Errorf("fleet: trace arrivals need a non-empty trace")
		}
		out := append([]Arrival(nil), c.Trace...)
		sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
		return out, nil
	case Poisson, Bursty:
	default:
		return nil, fmt.Errorf("fleet: unknown arrival kind %v", c.Kind)
	}
	if len(universe) == 0 {
		return nil, fmt.Errorf("fleet: empty benchmark universe")
	}
	if c.Jobs < 1 {
		return nil, fmt.Errorf("fleet: need at least one job (got %d)", c.Jobs)
	}
	// Bursty only consults Rate as the 4x fallback when BurstRate is
	// unset, so an explicit BurstRate stands on its own.
	if c.Rate <= 0 && !(c.Kind == Bursty && c.BurstRate > 0) {
		return nil, fmt.Errorf("fleet: arrival rate must be positive (got %g)", c.Rate)
	}
	stream := rng.NewStream(rng.Hash2(c.Seed, 0xf1ee7))
	ratePerCycle := c.Rate / 1000
	out := make([]Arrival, 0, c.Jobs)
	switch c.Kind {
	case Poisson:
		t := 0.0
		for i := 0; i < c.Jobs; i++ {
			t += expo(stream) / ratePerCycle
			out = append(out, Arrival{Name: universe[stream.Intn(len(universe))], Cycle: uint64(t)})
		}
	case Bursty:
		burst := c.BurstRate / 1000
		if burst <= 0 {
			burst = 4 * ratePerCycle
		}
		meanOn, meanOff := c.MeanOn, c.MeanOff
		if meanOn <= 0 {
			meanOn = 20_000
		}
		if meanOff <= 0 {
			meanOff = 60_000
		}
		t := 0.0
		onUntil := expo(stream) * meanOn
		for i := 0; i < c.Jobs; i++ {
			t += expo(stream) / burst
			// Arrivals only land inside ON phases; residual exponential
			// time that falls past the phase end carries across the OFF
			// gap into the next ON phase.
			for t > onUntil {
				off := expo(stream) * meanOff
				on := expo(stream) * meanOn
				t += off
				onUntil += off + on
			}
			out = append(out, Arrival{Name: universe[stream.Intn(len(universe))], Cycle: uint64(t)})
		}
	}
	return out, nil
}

// expo draws a unit-mean exponential variate.
func expo(s *rng.Stream) float64 {
	u := s.Float64()
	// Float64 is in [0,1); 1-u is in (0,1], so the log is finite.
	return -math.Log(1 - u)
}
