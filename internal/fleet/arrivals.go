package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/rng"
)

// ArrivalKind selects the arrival process.
type ArrivalKind int

const (
	// Poisson draws i.i.d. exponential inter-arrival times at Rate.
	Poisson ArrivalKind = iota
	// Bursty is an on-off modulated Poisson process: exponential ON
	// phases at BurstRate alternate with silent OFF phases, the classic
	// heavy-traffic stress shape.
	Bursty
	// Trace replays an explicit list of (benchmark, cycle) arrivals.
	Trace
)

// String names the kind as the CLI spells it.
func (k ArrivalKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Trace:
		return "trace"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(k))
	}
}

// ParseArrivalKind parses the CLI spelling.
func ParseArrivalKind(s string) (ArrivalKind, error) {
	switch strings.ToLower(s) {
	case "poisson":
		return Poisson, nil
	case "bursty", "onoff", "on-off":
		return Bursty, nil
	case "trace":
		return Trace, nil
	default:
		return 0, fmt.Errorf("fleet: unknown arrival process %q (poisson, bursty, trace)", s)
	}
}

// Arrival is one job arrival: which benchmark, when, and under which
// service-level class. The zero SLO (Batch, no deadline) reproduces the
// pre-SLO arrival shape.
type Arrival struct {
	Name  string
	Cycle uint64
	// SLO is the job's service-level class.
	SLO SLOClass
	// Deadline is the latency job's relative deadline in cycles from
	// arrival (0 for batch jobs).
	Deadline uint64
}

// ArrivalConfig parameterizes a deterministic arrival stream. Rates are
// expressed in expected arrivals per 1000 simulated cycles, a scale on
// which the suite's 30k–150k-cycle solo runs give rates near 1 a
// saturating feel.
type ArrivalConfig struct {
	// Kind selects the process.
	Kind ArrivalKind
	// Jobs is how many arrivals to generate (Poisson and Bursty).
	Jobs int
	// Rate is the mean arrival rate (per kilocycle) for Poisson.
	Rate float64
	// BurstRate is the ON-phase rate for Bursty (0 selects 4*Rate).
	BurstRate float64
	// MeanOn and MeanOff are the mean ON/OFF phase lengths in cycles
	// for Bursty (0 selects 20_000 and 60_000).
	MeanOn, MeanOff float64
	// Trace is the explicit arrival list for Kind == Trace.
	Trace []Arrival
	// LatencyFrac is the fraction of generated jobs tagged with the
	// latency SLO class (Poisson and Bursty; 0 keeps every job batch).
	// The class draws come from a stream independent of the time/name
	// draws, so the same seed produces the same arrival times and names
	// whatever the class mix — SLO comparisons see identical traffic.
	LatencyFrac float64
	// Deadline is the relative deadline (cycles from arrival) stamped on
	// generated latency jobs (0 selects DefaultDeadline).
	Deadline uint64
	// Seed drives every random draw; same seed, same stream.
	Seed uint64
}

// DefaultMeanOn and DefaultMeanOff are the bursty process's mean ON/OFF
// phase lengths (cycles) when the config leaves them zero.
const (
	DefaultMeanOn  = 20_000
	DefaultMeanOff = 60_000
)

// DefaultDeadline is the relative deadline stamped on generated latency
// jobs when the config leaves it zero: a few multiples of a typical
// solo run on the suite's 30k–150k-cycle scale, so a lightly loaded
// fleet meets it comfortably and a congested one does not.
const DefaultDeadline = 250_000

// Resolved fills the generation defaults — BurstRate 0 selects 4*Rate,
// MeanOn/MeanOff 0 select DefaultMeanOn/DefaultMeanOff, Deadline 0
// selects DefaultDeadline when latency jobs are being generated — so
// callers (the CLI header, logs) can report the parameters Generate
// actually uses.
func (c ArrivalConfig) Resolved() ArrivalConfig {
	if c.LatencyFrac > 0 && c.Deadline == 0 {
		c.Deadline = DefaultDeadline
	}
	if c.Kind != Bursty {
		return c
	}
	if c.BurstRate <= 0 {
		c.BurstRate = 4 * c.Rate
	}
	if c.MeanOn <= 0 {
		c.MeanOn = DefaultMeanOn
	}
	if c.MeanOff <= 0 {
		c.MeanOff = DefaultMeanOff
	}
	return c
}

// Generate materializes the arrival stream. universe lists the
// benchmark names jobs are drawn from (uniformly); for Kind == Trace it
// is the validation set the trace's names must come from.
func (c ArrivalConfig) Generate(universe []string) ([]Arrival, error) {
	switch c.Kind {
	case Trace:
		return c.generateTrace(universe)
	case Poisson, Bursty:
	default:
		return nil, fmt.Errorf("fleet: unknown arrival kind %v", c.Kind)
	}
	if len(universe) == 0 {
		return nil, fmt.Errorf("fleet: empty benchmark universe")
	}
	if c.Jobs < 1 {
		return nil, fmt.Errorf("fleet: need at least one job (got %d)", c.Jobs)
	}
	// Bursty only consults Rate as the 4x fallback when BurstRate is
	// unset, so an explicit BurstRate stands on its own.
	if c.Rate <= 0 && !(c.Kind == Bursty && c.BurstRate > 0) {
		return nil, fmt.Errorf("fleet: arrival rate must be positive (got %g)", c.Rate)
	}
	if c.LatencyFrac < 0 || c.LatencyFrac > 1 {
		return nil, fmt.Errorf("fleet: latency fraction %g outside [0,1]", c.LatencyFrac)
	}
	stream := rng.NewStream(rng.Hash2(c.Seed, 0xf1ee7))
	var out []Arrival
	if c.Kind == Bursty {
		out, _ = c.Resolved().burstyGen(stream, universe)
	} else {
		ratePerCycle := c.Rate / 1000
		out = make([]Arrival, 0, c.Jobs)
		t := 0.0
		for i := 0; i < c.Jobs; i++ {
			t += expo(stream) / ratePerCycle
			out = append(out, Arrival{Name: universe[stream.Intn(len(universe))], Cycle: uint64(t)})
		}
	}
	return c.tagSLO(out), nil
}

// tagSLO stamps a LatencyFrac share of the generated arrivals with the
// latency class and the configured relative deadline. The draws come
// from a stream derived independently of the time/name stream, so
// enabling (or sweeping) the class mix never perturbs the traffic
// itself — the property SLO ablations depend on.
func (c ArrivalConfig) tagSLO(out []Arrival) []Arrival {
	if c.LatencyFrac <= 0 {
		return out
	}
	deadline := c.Resolved().Deadline
	slo := rng.NewStream(rng.Hash2(c.Seed, 0x510c1a55))
	for i := range out {
		if slo.Float64() < c.LatencyFrac {
			out[i].SLO = Latency
			out[i].Deadline = deadline
		}
	}
	return out
}

// generateTrace validates and sorts an explicit arrival list. Unknown
// or empty benchmark names fail here, with the offending entry named —
// not deep inside Fleet.resolve after calibration already ran — and a
// trace must stand on its own: setting Jobs or Rate alongside one is
// rejected as ambiguous rather than silently ignored.
func (c ArrivalConfig) generateTrace(universe []string) ([]Arrival, error) {
	if len(c.Trace) == 0 {
		return nil, fmt.Errorf("fleet: trace arrivals need a non-empty trace")
	}
	if c.Jobs != 0 || c.Rate != 0 {
		return nil, fmt.Errorf("fleet: Jobs/Rate have no effect with a trace (got Jobs=%d Rate=%g); leave them zero",
			c.Jobs, c.Rate)
	}
	if c.LatencyFrac != 0 {
		return nil, fmt.Errorf("fleet: LatencyFrac has no effect with a trace; tag trace entries with their SLO class instead")
	}
	if c.Deadline != 0 {
		return nil, fmt.Errorf("fleet: Deadline has no effect with a trace; set each latency entry's Deadline instead")
	}
	if len(universe) == 0 {
		return nil, fmt.Errorf("fleet: empty benchmark universe")
	}
	known := make(map[string]bool, len(universe))
	for _, n := range universe {
		known[n] = true
	}
	for i, a := range c.Trace {
		if a.Name == "" {
			return nil, fmt.Errorf("fleet: trace entry %d has an empty benchmark name", i)
		}
		if !known[a.Name] {
			return nil, fmt.Errorf("fleet: trace entry %d names unknown benchmark %q", i, a.Name)
		}
		// A deadline is meaningful exactly for latency entries; anything
		// else is a mistagged trace, rejected rather than guessed at.
		if a.SLO == Latency && a.Deadline == 0 {
			return nil, fmt.Errorf("fleet: trace entry %d is latency-class but has no deadline", i)
		}
		if a.SLO == Batch && a.Deadline != 0 {
			return nil, fmt.Errorf("fleet: trace entry %d is batch-class but carries deadline %d", i, a.Deadline)
		}
	}
	out := append([]Arrival(nil), c.Trace...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out, nil
}

// onPhase is one ON interval of the bursty on-off process, in exact
// (float) cycle time. Exposed to tests so they can assert arrivals
// never land in OFF gaps.
type onPhase struct{ start, end float64 }

// burstyGen draws the on-off modulated stream. The receiver must be
// Resolved. It returns the arrivals plus the ON phases that were
// materialized while drawing them.
func (c ArrivalConfig) burstyGen(stream *rng.Stream, universe []string) ([]Arrival, []onPhase) {
	burst := c.BurstRate / 1000
	out := make([]Arrival, 0, c.Jobs)
	t := 0.0
	onUntil := expo(stream) * c.MeanOn
	phases := []onPhase{{start: 0, end: onUntil}}
	for i := 0; i < c.Jobs; i++ {
		t += expo(stream) / burst
		// Arrivals only land inside ON phases; residual exponential
		// time that falls past the phase end carries across the OFF
		// gap into the next ON phase.
		for t > onUntil {
			off := expo(stream) * c.MeanOff
			on := expo(stream) * c.MeanOn
			t += off
			phases = append(phases, onPhase{start: onUntil + off, end: onUntil + off + on})
			onUntil += off + on
		}
		out = append(out, Arrival{Name: universe[stream.Intn(len(universe))], Cycle: uint64(t)})
	}
	return out, phases
}

// expo draws a unit-mean exponential variate.
func expo(s *rng.Stream) float64 {
	u := s.Float64()
	// Float64 is in [0,1); 1-u is in (0,1], so the log is finite.
	return -math.Log(1 - u)
}
