package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// The closed-loop control surfaces. Three features share one mechanism:
//
//   - Closed traffic: K client pools each keep exactly one request in
//     the system — submit, wait for completion (or give up), think,
//     submit the next — so load is a feedback function of fleet speed
//     rather than an open schedule. Requests can time out while queued
//     (abandon) and retry with exponential backoff, bounded.
//   - Admission control: a submission whose predicted wait exceeds a
//     bound is rejected outright or degraded to the batch class, so an
//     overloaded fleet sheds or softens load instead of growing an
//     unbounded backlog.
//   - Elastic rosters: devices are provisioned (after a delay) and
//     decommissioned on queue-pressure watermarks, reconciled on a
//     fixed epoch grid so sharded runs scale at the same barriers they
//     route on.
//
// All of it is driven through one deterministic control-event heap
// (loopCtl) owned by each event loop — the classic loop owns one, each
// shard owns its own — ordered by (cycle, push sequence). Every random
// draw comes from per-client internal/rng streams derived only from the
// configured seed and the client id, never from which shard runs the
// client, so reruns are byte-identical at any shard count. With every
// feature disabled the loops carry a nil *loopCtl and the hot path pays
// one pointer check per event — the steady-state zero-allocation
// dispatch contract is untouched.

// ClosedConfig parameterizes the closed-loop arrival source
// (Config.Closed). Enabled runs replace the open arrival stream: Run
// must be called with no arrivals and generates each client's request
// sequence itself.
type ClosedConfig struct {
	// Enabled switches the fleet to closed-loop traffic.
	Enabled bool
	// Clients is the number of client pools, each with exactly one
	// request outstanding at a time.
	Clients int
	// Requests is how many requests each client issues over the run (0
	// selects DefaultClosedRequests).
	Requests int
	// Think is the mean think time in cycles between a request's
	// completion (or terminal failure) and the client's next submission,
	// drawn exponentially per client. 0 resubmits immediately.
	Think float64
	// Timeout is the per-request patience in cycles: a submission still
	// waiting in the queue Timeout cycles after it was submitted is
	// abandoned (running requests are never abandoned). 0 disables
	// abandonment.
	Timeout uint64
	// Retries bounds how many times a rejected or abandoned request is
	// resubmitted; Backoff is the base delay before the first retry,
	// doubling per attempt (0 selects DefaultBackoff when Retries > 0).
	Retries int
	Backoff uint64
	// LatencyFrac tags this share of requests with the latency SLO class
	// and Deadline (0 selects DefaultDeadline) — drawn from a per-client
	// stream independent of names and think times.
	LatencyFrac float64
	Deadline    uint64
	// Seed drives every client's draws; same seed, same traffic at any
	// shard count.
	Seed uint64
	// Universe is the benchmark names requests draw from (uniformly).
	Universe []string
}

// AdmissionConfig parameterizes admission control (Config.Admission):
// a submission is admitted only if the loop's predicted queueing wait
// is at most MaxWait.
type AdmissionConfig struct {
	Enabled bool
	// MaxWait is the admission bound in cycles on the predicted wait.
	MaxWait uint64
	// Degrade admits over-bound latency submissions as batch (dropping
	// class and deadline) instead of rejecting; batch submissions are
	// always admitted in this mode.
	Degrade bool
	// Modeled switches the predictor's backlog estimate from the plain
	// solo-work sum to the interference-aware one: each queued job's
	// solo duration scaled by its class's expected co-run slowdown from
	// the Modeled engine's MemberSlowdown tables (job.coEst), so a
	// backlog of mutually hostile classes predicts longer waits than an
	// equal amount of friendly work.
	Modeled bool
}

// AutoscaleConfig parameterizes the elastic roster (Config.Autoscale).
// Pressure is queue depth per active device, evaluated every Epoch
// cycles on the fixed epoch grid.
type AutoscaleConfig struct {
	Enabled bool
	// Min and Max bound the active device count (0 selects 1 and the
	// full roster). Sharded runs split both bounds across shards the
	// same way the roster is dealt, so Min must be at least the shard
	// count.
	Min, Max int
	// High and Low are the scale-up and scale-down pressure watermarks
	// (0 selects DefaultScaleHigh and DefaultScaleLow).
	High, Low float64
	// Delay is the provisioning latency in cycles between the scale-up
	// decision and the device accepting work (0 selects
	// DefaultProvisionDelay). Decommission is immediate — only idle
	// devices are released.
	Delay uint64
	// Epoch is the reconciliation quantum (0 selects ShardEpoch, or
	// DefaultShardEpoch outside sharded runs), so sharded fleets scale
	// at the same barriers they route on.
	Epoch uint64
}

// Closed-loop and autoscale defaults.
const (
	// DefaultClosedRequests is each client's request count when the
	// config leaves it zero.
	DefaultClosedRequests = 8
	// DefaultBackoff is the base retry backoff in cycles.
	DefaultBackoff = 25_000
	// DefaultScaleHigh and DefaultScaleLow are the autoscaler's
	// queue-pressure watermarks (waiting jobs per active device).
	DefaultScaleHigh = 4.0
	DefaultScaleLow  = 0.5
	// DefaultProvisionDelay is the scale-up provisioning latency.
	DefaultProvisionDelay = 25_000
)

// Job lifecycle states (job.state), the conservation test's ground
// truth: every submitted attempt ends done, abandoned or rejected. The
// zero value is jsPending so arena-allocated jobs start unsubmitted.
const (
	jsPending uint8 = iota
	jsWaiting
	jsRunning
	jsDone
	jsAbandoned
	jsRejected
)

// ctlKind enumerates the control-event kinds the loops process.
type ctlKind uint8

// ParseAdmission parses the CLI/sweep admission spelling: "off" (or
// empty) disables it, "reject:MAXWAIT" rejects over-bound submissions,
// "degrade:MAXWAIT" admits over-bound latency submissions as batch.
func ParseAdmission(s string) (AdmissionConfig, error) {
	if s == "" || strings.EqualFold(s, "off") {
		return AdmissionConfig{}, nil
	}
	mode, bound, ok := strings.Cut(s, ":")
	if !ok {
		return AdmissionConfig{}, fmt.Errorf("fleet: admission %q is not off, reject:MAXWAIT or degrade:MAXWAIT", s)
	}
	cfg := AdmissionConfig{Enabled: true}
	// A "-modeled" suffix selects the interference-aware predictor.
	modeName, modeled := strings.CutSuffix(strings.ToLower(mode), "-modeled")
	cfg.Modeled = modeled
	switch modeName {
	case "reject":
	case "degrade":
		cfg.Degrade = true
	default:
		return AdmissionConfig{}, fmt.Errorf("fleet: admission mode %q is not reject[-modeled] or degrade[-modeled]", mode)
	}
	w, err := strconv.ParseUint(bound, 10, 64)
	if err != nil || w == 0 {
		return AdmissionConfig{}, fmt.Errorf("fleet: admission bound %q is not a positive cycle count", bound)
	}
	cfg.MaxWait = w
	return cfg, nil
}

// ParseAutoscale parses the CLI/sweep autoscale spelling: "off" (or
// empty) disables it, "MIN:MAX" bounds the active device count.
// Watermarks, provisioning delay and epoch keep their defaults.
func ParseAutoscale(s string) (AutoscaleConfig, error) {
	if s == "" || strings.EqualFold(s, "off") {
		return AutoscaleConfig{}, nil
	}
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return AutoscaleConfig{}, fmt.Errorf("fleet: autoscale %q is not off or MIN:MAX", s)
	}
	min, err := strconv.Atoi(lo)
	if err != nil || min < 1 {
		return AutoscaleConfig{}, fmt.Errorf("fleet: autoscale floor %q is not a positive device count", lo)
	}
	max, err := strconv.Atoi(hi)
	if err != nil || max < min {
		return AutoscaleConfig{}, fmt.Errorf("fleet: autoscale ceiling %q is not a device count >= the floor", hi)
	}
	return AutoscaleConfig{Enabled: true, Min: min, Max: max}, nil
}

const (
	// evSubmit is a client's (first) submission of a request.
	evSubmit ctlKind = iota
	// evRetry resubmits a rejected or abandoned request after backoff.
	evRetry
	// evAbandon fires a queued request's timeout (aux = the attempt it
	// guards; stale timers no-op).
	evAbandon
	// evProvision activates a provisioning device (aux = device index).
	evProvision
	// evScale is the autoscaler's periodic pressure check.
	evScale
	// evFail, evDrain and evRestore are the chaos layer's scheduled
	// device actions (aux = device index; see chaos.go).
	evFail
	evDrain
	evRestore
)

// ctlEvent is one scheduled control action. seq is the push sequence,
// so same-cycle events process in schedule order — a pure function of
// the deterministic event history.
type ctlEvent struct {
	cycle uint64
	seq   int
	kind  ctlKind
	j     *job
	aux   int
}

// ctlHeap is a min-heap of control events by (cycle, seq).
type ctlHeap struct{ v []ctlEvent }

func ctlLess(a, b ctlEvent) bool {
	return a.cycle < b.cycle || (a.cycle == b.cycle && a.seq < b.seq)
}

func (h *ctlHeap) push(ev ctlEvent) {
	h.v = append(h.v, ev)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !ctlLess(h.v[i], h.v[p]) {
			break
		}
		h.v[i], h.v[p] = h.v[p], h.v[i]
		i = p
	}
}

func (h *ctlHeap) pop() ctlEvent {
	ev := h.v[0]
	n := len(h.v) - 1
	h.v[0] = h.v[n]
	h.v[n] = ctlEvent{}
	h.v = h.v[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && ctlLess(h.v[l], h.v[m]) {
			m = l
		}
		if r < n && ctlLess(h.v[r], h.v[m]) {
			m = r
		}
		if m == i {
			return ev
		}
		h.v[i], h.v[m] = h.v[m], h.v[i]
		i = m
	}
}

// clientState is one closed-loop client pool: its think/backoff stream,
// its request sequence, and the cursor of the request currently in the
// system (or just finished).
type clientState struct {
	stream *rng.Stream
	reqs   []*job
	cursor int
}

// loopCtl is one event loop's control state: the classic loop owns one,
// each shard owns its own over its clients and devices. It mutates only
// state the owning loop already owns (queue, idle heap, counters), so
// shards stay lock-free.
type loopCtl struct {
	f   *Fleet
	res *Result
	// The owning loop's structures. slot maps global device index to the
	// loop's flightOf slot (identity for the classic loop).
	queue     *jobQueue
	idleDevs  *deviceHeap
	flightOf  []*inflight
	slot      []int
	remaining *int

	events ctlHeap
	seq    int

	// clients is indexed by global client id; entries owned by other
	// shards keep a nil stream and are never touched here.
	clients []clientState

	// Elastic-roster state over the loop's devices. active and pending
	// are indexed by global device index; devices lists the loop's
	// devices in placement order (fastest first).
	active      []bool
	pending     []bool
	activeCount int
	pendingProv int
	minDev      int
	maxDev      int
	devices     []int
	epoch       uint64
	// scaleArmed tracks whether an evScale tick is scheduled; the tick
	// disarms itself once the loop has no outstanding work, so a drained
	// loop's event heap empties instead of ticking forever.
	scaleArmed bool
	// rmBuf is the single-job scratch abandon passes to removeJobs.
	rmBuf [1]*job

	// Chaos state over the loop's devices, indexed by global device
	// index. A failed or draining device is "down": it never sits in
	// the idle heap and the dispatch pass never sees it. downActive
	// counts down devices the autoscaler holds active, so the effective
	// roster (upActive) prices outages into pressure and predicted
	// wait. Failure is not decommissioning: active/activeCount are
	// untouched, so a restore needs no provisioning delay.
	failed        []bool
	draining      []bool
	failedCount   int
	drainingCount int
	downActive    int
	// onChaosEvict is the owning loop's bookkeeping hook for a chaos
	// eviction (sampler busy span, hybrid warm-up refund, worker
	// tracking); the shared handler does the queue/heap/accounting
	// work first, then invokes it.
	onChaosEvict func(fl *inflight, now uint64)
}

// ctlEnabled reports whether any control surface is configured — the
// loops allocate a loopCtl exactly then.
func (f *Fleet) ctlEnabled() bool {
	return f.cfg.Closed.Enabled || f.cfg.Admission.Enabled || f.cfg.Autoscale.Enabled ||
		f.cfg.Chaos.Enabled
}

// newLoopCtl wires a control block to one event loop. devices is the
// loop's device set in placement order; minDev/maxDev are the loop's
// share of the autoscale bounds (ignored unless autoscaling). A nil
// slot means flightOf is indexed by global device (the classic loop).
func (f *Fleet) newLoopCtl(res *Result, queue *jobQueue, idleDevs *deviceHeap, flightOf []*inflight, slot []int, remaining *int, devices []int, minDev, maxDev int) *loopCtl {
	total := len(f.devType)
	if slot == nil {
		slot = make([]int, total)
		for i := range slot {
			slot[i] = i
		}
	}
	c := &loopCtl{
		f: f, res: res, queue: queue, idleDevs: idleDevs,
		flightOf: flightOf, slot: slot, remaining: remaining,
		active: make([]bool, total), pending: make([]bool, total),
		failed: make([]bool, total), draining: make([]bool, total),
		minDev: minDev, maxDev: maxDev, devices: devices,
	}
	want := len(devices)
	if f.cfg.Autoscale.Enabled {
		want = minDev
		c.epoch = f.cfg.Autoscale.Epoch
	}
	for i, d := range devices {
		if i < want {
			c.active[d] = true
			c.activeCount++
		}
	}
	return c
}

// initClients seeds the given client ids (this loop's share) and
// schedules their first submissions after an initial think draw.
func (c *loopCtl) initClients(perClient [][]*job, ids []int) {
	cc := &c.f.cfg.Closed
	if c.clients == nil {
		c.clients = make([]clientState, cc.Clients)
	}
	for _, id := range ids {
		cs := &c.clients[id]
		cs.stream = rng.NewStream(rng.Hash3(cc.Seed, uint64(id), 3))
		cs.reqs = perClient[id]
		c.push(ctlEvent{cycle: c.thinkDraw(cs), kind: evSubmit, j: cs.reqs[0]})
	}
}

// push schedules ev, stamping the deterministic tie-break sequence.
func (c *loopCtl) push(ev ctlEvent) {
	ev.seq = c.seq
	c.seq++
	c.events.push(ev)
}

// next is the cycle of the earliest scheduled control event
// (MaxUint64 when none), the loop's third event source.
func (c *loopCtl) next() uint64 {
	if len(c.events.v) == 0 {
		return math.MaxUint64
	}
	return c.events.v[0].cycle
}

// step processes exactly one control event at its cycle. The owning
// loop runs its admit/dispatch passes between steps, so a submission is
// dispatchable before the next control action fires.
func (c *loopCtl) step(now uint64) {
	ev := c.events.pop()
	switch ev.kind {
	case evSubmit, evRetry:
		c.submit(ev.j, now, ev.kind == evRetry)
	case evAbandon:
		c.abandon(ev.j, ev.aux, now)
	case evProvision:
		c.provision(ev.aux)
	case evScale:
		c.scaleTick(now)
	case evFail:
		c.chaosFail(ev.aux, now)
	case evDrain:
		c.chaosDrain(ev.aux)
	case evRestore:
		c.chaosRestore(ev.aux)
	}
}

// initChaos schedules this loop's share of the chaos events (the
// classic loop owns every device; a shard skips devices it does not
// own). Called before initClients so the heap's tie-break sequence is
// a pure function of the configuration.
func (c *loopCtl) initChaos(events []ChaosEvent) {
	for _, ev := range events {
		if c.slot[ev.Device] < 0 {
			continue
		}
		var k ctlKind
		switch ev.Kind {
		case ChaosFail:
			k = evFail
		case ChaosDrain:
			k = evDrain
		default:
			k = evRestore
		}
		c.push(ctlEvent{cycle: ev.Cycle, kind: k, aux: ev.Device})
	}
}

// deviceUp reports whether device d may accept dispatches: neither
// failed nor draining. Retire sites gate their idle-heap push on it so
// a down device never re-enters placement order.
func (c *loopCtl) deviceUp(d int) bool { return !c.failed[d] && !c.draining[d] }

// upActive is the effective roster: active devices that are actually
// serving. The autoscaler's pressure and the admission predictor both
// divide by it, which is what makes a failure raise pressure (and may
// provision a spare) instead of silently shrinking the denominator's
// meaning.
func (c *loopCtl) upActive() int { return c.activeCount - c.downActive }

// chaosFail kills device d at cycle now. An in-flight group is evicted
// with checkpointed progress (trigger "chaos") and its jobs re-enter
// the queue; an idle device just leaves the idle heap. Failing a
// draining or already-failed device only hardens the state.
func (c *loopCtl) chaosFail(d int, now uint64) {
	if c.failed[d] {
		return
	}
	wasDown := c.draining[d]
	if wasDown {
		c.draining[d] = false
		c.drainingCount--
	}
	c.failed[d] = true
	c.failedCount++
	c.res.Failures++
	if c.active[d] && !wasDown {
		c.downActive++
	}
	if fl := c.flightOf[c.slot[d]]; fl != nil {
		c.f.evictAs(fl, chaosTriggerID, now, c.res)
		c.res.ChaosEvictions++
		fl.state = flightEvicted
		c.flightOf[c.slot[d]] = nil
		if c.onChaosEvict != nil {
			c.onChaosEvict(fl, now)
		}
		for _, j := range fl.jobs {
			c.queue.insert(j)
		}
	} else {
		c.idleDevs.remove(d)
	}
}

// chaosDrain stops new dispatch on device d: it leaves the idle heap,
// but a group in flight retires normally (the retire site's deviceUp
// gate keeps the device out of placement order afterwards).
func (c *loopCtl) chaosDrain(d int) {
	if c.failed[d] || c.draining[d] {
		return
	}
	c.draining[d] = true
	c.drainingCount++
	c.res.Drains++
	if c.active[d] {
		c.downActive++
	}
	c.idleDevs.remove(d)
}

// chaosRestore returns a failed or draining device to service: if the
// autoscaler holds it active and no flight is still retiring on it, it
// re-enters the idle heap immediately.
func (c *loopCtl) chaosRestore(d int) {
	if !c.failed[d] && !c.draining[d] {
		return
	}
	if c.failed[d] {
		c.failed[d] = false
		c.failedCount--
	}
	if c.draining[d] {
		c.draining[d] = false
		c.drainingCount--
	}
	c.res.Restores++
	if c.active[d] {
		c.downActive--
		if c.flightOf[c.slot[d]] == nil {
			c.idleDevs.push(d)
		}
	}
}

// submit is a closed-loop (re-)submission: count it, run admission,
// queue it and arm its timeout.
func (c *loopCtl) submit(j *job, now uint64, retry bool) {
	cc := &c.f.cfg.Closed
	j.attempts++
	j.arrival = now
	c.res.Submitted++
	if retry {
		c.res.Retried++
	}
	c.armScale(now)
	if !c.admit(j, now) {
		c.res.Rejected++
		c.fail(j, now, jsRejected)
		return
	}
	c.queue.insert(j)
	if cc.Timeout > 0 {
		c.push(ctlEvent{cycle: now + cc.Timeout, kind: evAbandon, j: j, aux: j.attempts})
	}
}

// admitOpen gates one open-loop arrival: counts the submission, arms
// the autoscaler and runs admission. It returns false when the job was
// terminally rejected (open arrivals never retry); the caller then
// skips the queue insert.
func (c *loopCtl) admitOpen(j *job, now uint64) bool {
	j.attempts = 1
	c.res.Submitted++
	c.armScale(now)
	if c.admit(j, now) {
		return true
	}
	c.res.Rejected++
	j.state = jsRejected
	*c.remaining -= 1
	return false
}

// admit applies admission control to one submission: true admits
// (possibly degrading a latency job to batch in Degrade mode).
func (c *loopCtl) admit(j *job, now uint64) bool {
	ad := &c.f.cfg.Admission
	if !ad.Enabled || c.predictedWait(now) <= ad.MaxWait {
		return true
	}
	if ad.Degrade {
		if j.slo == Latency {
			c.res.Degraded++
			j.slo = Batch
			j.deadline = 0
		}
		// Degrade mode never drops work; batch submissions ride out the
		// predicted wait.
		return true
	}
	return false
}

// predictedWait estimates the queueing wait a submission arriving now
// would see: zero with an idle active device; otherwise the time until
// the first device frees (the model's predicted completion — exact
// under the Modeled engine) plus the queued backlog's work spread over
// the effective (up) roster. Down devices are priced out on both
// sides: a draining device's flight frees no capacity when it retires,
// and a failed device contributes nothing to the denominator. With
// Admission.Modeled the backlog term uses the interference-aware
// per-job estimate (queue.cowork) instead of the plain solo sum.
func (c *loopCtl) predictedWait(now uint64) uint64 {
	if len(c.idleDevs.v) > 0 {
		return 0
	}
	earliest := uint64(math.MaxUint64)
	for _, fl := range c.flightOf {
		if fl == nil {
			continue
		}
		if !c.deviceUp(fl.device) {
			continue
		}
		if free := c.f.predictedFree(fl); free < earliest {
			earliest = free
		}
	}
	var wait uint64
	if earliest != math.MaxUint64 && earliest > now {
		wait = earliest - now
	}
	if up := c.upActive(); up > 0 {
		work := c.queue.work
		if c.f.cfg.Admission.Modeled {
			work = c.queue.cowork
		}
		wait += work / uint64(up)
	}
	return wait
}

// abandon fires a queued request's timeout. The guards make stale
// timers no-ops: only the attempt the timer was armed for, and only
// while it is still waiting (running or finished requests keep their
// outcome).
func (c *loopCtl) abandon(j *job, attempt int, now uint64) {
	if j.state != jsWaiting || j.attempts != attempt {
		return
	}
	c.rmBuf[0] = j
	c.queue.removeJobs(c.rmBuf[:1])
	c.res.Abandoned++
	c.fail(j, now, jsAbandoned)
}

// fail ends one attempt short of completion: schedule a backoff retry
// while the budget lasts, otherwise settle the request terminally and
// let its client move on.
func (c *loopCtl) fail(j *job, now uint64, terminal uint8) {
	cc := &c.f.cfg.Closed
	if j.client >= 0 && j.attempts <= cc.Retries {
		j.state = jsPending
		shift := uint(j.attempts - 1)
		if shift > 20 {
			shift = 20
		}
		c.push(ctlEvent{cycle: now + cc.Backoff<<shift, kind: evRetry, j: j})
		return
	}
	j.state = terminal
	*c.remaining -= 1
	if j.client >= 0 {
		c.clientAdvance(j.client, now, now)
	}
}

// onRetire advances every closed-loop client whose request just
// completed. Must run before the flight is recycled (recycle drops the
// member references).
func (c *loopCtl) onRetire(fl *inflight, now uint64) {
	for _, j := range fl.jobs {
		if j.client >= 0 {
			c.clientAdvance(j.client, now, j.complete)
		}
	}
}

// clientAdvance moves client id to its next request, thinking from
// base (the previous request's completion or failure cycle). The
// submission is clamped to now so event time never runs backwards —
// a member can complete before its group's retire event.
func (c *loopCtl) clientAdvance(id int, now, base uint64) {
	cs := &c.clients[id]
	cs.cursor++
	if cs.cursor >= len(cs.reqs) {
		return
	}
	at := base + c.thinkDraw(cs)
	if at < now {
		at = now
	}
	c.push(ctlEvent{cycle: at, kind: evSubmit, j: cs.reqs[cs.cursor]})
}

// thinkDraw draws one exponential think time from the client's stream.
func (c *loopCtl) thinkDraw(cs *clientState) uint64 {
	t := c.f.cfg.Closed.Think
	if t <= 0 {
		return 0
	}
	return uint64(expo(cs.stream) * t)
}

// armScale schedules the next autoscale tick on the epoch grid, unless
// one is already pending. Called on every submission, so a loop whose
// tick disarmed during a lull re-arms as soon as work returns.
func (c *loopCtl) armScale(now uint64) {
	if c.epoch == 0 || c.scaleArmed {
		return
	}
	c.scaleArmed = true
	c.push(ctlEvent{cycle: now - now%c.epoch + c.epoch, kind: evScale})
}

// scaleTick evaluates the pressure watermarks and reschedules itself.
// With no outstanding work it disarms instead, so a finished loop's
// event heap drains (armScale re-arms on the next submission).
func (c *loopCtl) scaleTick(now uint64) {
	if *c.remaining <= 0 {
		c.scaleArmed = false
		return
	}
	as := &c.f.cfg.Autoscale
	// Pressure is measured against the effective roster: a failed
	// device is not a decommission, but it serves nothing, so the same
	// queue reads as proportionally more pressure during an outage and
	// the walk may provision a spare around it. (With every device
	// down the division yields +Inf, which always trips the high
	// watermark.) Without chaos, upActive == activeCount exactly.
	pressure := float64(c.queue.Len()) / float64(c.upActive())
	if pressure > as.High && c.upActive()+c.pendingProv < c.maxDev {
		// Scale up: the first inactive, non-provisioning, serving
		// device in placement order starts provisioning and joins
		// after the delay. Down devices are skipped — provisioning a
		// failed device would add no capacity.
		for _, d := range c.devices {
			if !c.active[d] && !c.pending[d] && c.deviceUp(d) {
				c.pending[d] = true
				c.pendingProv++
				c.push(ctlEvent{cycle: now + as.Delay, kind: evProvision, aux: d})
				break
			}
		}
	} else if pressure < as.Low && c.upActive() > c.minDev {
		// Scale down: release the last active idle serving device in
		// placement order (the slowest), immediately. Busy devices are
		// never released — they retire their flight first — and down
		// devices are not decommissioned: their outage is transient
		// state the restore undoes, not a roster decision.
		for i := len(c.devices) - 1; i >= 0; i-- {
			d := c.devices[i]
			if c.active[d] && c.deviceUp(d) && c.flightOf[c.slot[d]] == nil {
				c.active[d] = false
				c.activeCount--
				c.idleDevs.remove(d)
				c.res.Decommissions++
				break
			}
		}
	}
	c.push(ctlEvent{cycle: now + c.epoch, kind: evScale})
}

// provision completes a scale-up: device d is active, and idle unless
// chaos took it down while it was provisioning.
func (c *loopCtl) provision(d int) {
	c.pending[d] = false
	c.pendingProv--
	c.active[d] = true
	c.activeCount++
	c.res.Provisions++
	if !c.deviceUp(d) {
		c.downActive++
		return
	}
	c.idleDevs.push(d)
}

// resolveClosed materializes the closed-loop request universe: every
// client's full request sequence, client-major (job id = client *
// Requests + request). Names and SLO tags come from per-client streams
// derived only from the seed and the client id, so the request mix is
// identical at any shard count. Submission cycles are stamped at
// submit time; resolve only needs the names in a fixed order.
func (f *Fleet) resolveClosed() ([]*job, [][]*job, error) {
	cc := f.cfg.Closed
	arrivals := make([]Arrival, 0, cc.Clients*cc.Requests)
	for c := 0; c < cc.Clients; c++ {
		names := rng.NewStream(rng.Hash3(cc.Seed, uint64(c), 1))
		slo := rng.NewStream(rng.Hash3(cc.Seed, uint64(c), 2))
		for r := 0; r < cc.Requests; r++ {
			a := Arrival{Name: cc.Universe[names.Intn(len(cc.Universe))]}
			if cc.LatencyFrac > 0 && slo.Float64() < cc.LatencyFrac {
				a.SLO = Latency
				a.Deadline = cc.Deadline
			}
			arrivals = append(arrivals, a)
		}
	}
	jobs, err := f.resolve(arrivals)
	if err != nil {
		return nil, nil, err
	}
	perClient := make([][]*job, cc.Clients)
	for c := 0; c < cc.Clients; c++ {
		reqs := jobs[c*cc.Requests : (c+1)*cc.Requests]
		for _, j := range reqs {
			j.client = c
		}
		perClient[c] = reqs
	}
	return jobs, perClient, nil
}

// splitBound is shard i's share of a fleet-wide device bound n dealt
// over k shards — the same round-robin split newShards deals the
// roster with, so per-shard autoscale bounds sum to the global ones.
func splitBound(n, k, i int) int {
	b := n / k
	if i < n%k {
		b++
	}
	return b
}
