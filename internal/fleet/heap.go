package fleet

// The event core's indexed structures. The old loop re-scanned every
// in-flight group and every device per event — O(events × devices) —
// which a 4-device fleet never notices and a 256-device one cannot
// afford. Three structures replace the scans:
//
//   - a min-heap of resolved flights keyed by (completion, device):
//     the provably-next completion is the root;
//   - a min-heap of unresolved flights keyed by (earliest bound, dispatch
//     sequence): the flight the loop may have to block on is the root,
//     and the sequence tie-break reproduces the old scan's first-
//     dispatched-wins order exactly;
//   - a min-heap of idle devices keyed by placement position, so the
//     dispatch pass pops the fastest idle device instead of scanning
//     the placement order for one.
//
// Flights leave the heaps lazily: eviction and resolution mark the
// flight's state and peek/pop discard stale roots, so removal never
// needs an index into the heap.
//
// Heap traffic is per flight, never per job: a modeled dispatch commits
// the whole group as one resolved entry (commitModeled), so an NC-member
// completion costs one push and one pop, not NC of each — the batching
// half of the steady-state zero-allocation dispatch contract.

// flightState tracks which heap (if any) a flight is live in.
type flightState int

const (
	// flightPending: simulation outstanding, live in the unresolved heap.
	flightPending flightState = iota
	// flightResolved: completion known, live in the resolved heap.
	flightResolved
	// flightEvicted: preempted; stale in whichever heap it was in.
	flightEvicted
	// flightRetired: completed and accounted; stale in the resolved heap.
	flightRetired
)

// flightHeap is a min-heap of in-flight groups under an arbitrary
// strict order, with lazy deletion driven by the live state.
type flightHeap struct {
	less func(a, b *inflight) bool
	live flightState
	v    []*inflight
}

func (h *flightHeap) push(fl *inflight) {
	h.v = append(h.v, fl)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.v[i], h.v[p]) {
			break
		}
		h.v[i], h.v[p] = h.v[p], h.v[i]
		i = p
	}
}

// peek returns the minimum live flight, discarding stale roots (evicted
// or state-transitioned flights), or nil when empty.
func (h *flightHeap) peek() *inflight {
	for len(h.v) > 0 {
		if h.v[0].state == h.live {
			return h.v[0]
		}
		h.popRoot()
	}
	return nil
}

// pop removes and returns the minimum live flight (nil when empty).
func (h *flightHeap) pop() *inflight {
	fl := h.peek()
	if fl != nil {
		h.popRoot()
	}
	return fl
}

func (h *flightHeap) popRoot() {
	n := len(h.v) - 1
	h.v[0] = h.v[n]
	h.v[n] = nil
	h.v = h.v[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(h.v[l], h.v[m]) {
			m = l
		}
		if r < n && h.less(h.v[r], h.v[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.v[i], h.v[m] = h.v[m], h.v[i]
		i = m
	}
}

// deviceHeap is a min-heap of idle device indices keyed by placement
// position (orderPos), so pop yields exactly the device the old linear
// scan over f.order would have found first.
type deviceHeap struct {
	pos []int // device index -> placement position (f.orderPos)
	v   []int
}

func (h *deviceHeap) push(d int) {
	h.v = append(h.v, d)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.pos[h.v[i]] >= h.pos[h.v[p]] {
			break
		}
		h.v[i], h.v[p] = h.v[p], h.v[i]
		i = p
	}
}

// remove deletes device d from the heap, wherever it sits — the
// autoscaler decommissions idle devices, which by the loop invariant
// are always heap members. The hole is filled by the last element and
// re-sifted both ways (swap-with-last can violate either direction).
// Returns false when d is not in the heap.
func (h *deviceHeap) remove(d int) bool {
	n := len(h.v)
	i := 0
	for ; i < n; i++ {
		if h.v[i] == d {
			break
		}
	}
	if i == n {
		return false
	}
	n--
	h.v[i] = h.v[n]
	h.v = h.v[:n]
	if i == n {
		return true
	}
	// Sift down.
	j := i
	for {
		l, r := 2*j+1, 2*j+2
		m := j
		if l < n && h.pos[h.v[l]] < h.pos[h.v[m]] {
			m = l
		}
		if r < n && h.pos[h.v[r]] < h.pos[h.v[m]] {
			m = r
		}
		if m == j {
			break
		}
		h.v[j], h.v[m] = h.v[m], h.v[j]
		j = m
	}
	// If it never moved down, sift up instead.
	if j == i {
		for j > 0 {
			p := (j - 1) / 2
			if h.pos[h.v[j]] >= h.pos[h.v[p]] {
				break
			}
			h.v[j], h.v[p] = h.v[p], h.v[j]
			j = p
		}
	}
	return true
}

// pop removes and returns the idle device first in placement order, or
// -1 when no device is idle.
func (h *deviceHeap) pop() int {
	if len(h.v) == 0 {
		return -1
	}
	d := h.v[0]
	n := len(h.v) - 1
	h.v[0] = h.v[n]
	h.v = h.v[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.pos[h.v[l]] < h.pos[h.v[m]] {
			m = l
		}
		if r < n && h.pos[h.v[r]] < h.pos[h.v[m]] {
			m = r
		}
		if m == i {
			return d
		}
		h.v[i], h.v[m] = h.v[m], h.v[i]
		i = m
	}
}
