package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// The chaos layer: deterministic device failure, drain and restore
// mid-run. A fleet serving real traffic does not get a permanently
// healthy roster, so the event loops accept an injected failure
// schedule and execute it on the same control-event heap that drives
// clients, admission and the autoscaler:
//
//   - fail kills a device outright. A group in flight is evicted
//     through the same EvictionRecord/RestartFrac machinery preemption
//     uses (trigger "chaos", id -1): its jobs re-enter the queue with
//     checkpointed progress and the device leaves the idle heap.
//   - drain stops new dispatch: the device leaves the idle heap but a
//     group in flight retires normally.
//   - restore returns a failed or draining device to placement order.
//
// The schedule comes either from an explicit trace (ChaosConfig.Trace,
// the CLI's "fail@CYCLE:DEV,..." spelling) or from a generator that
// draws per-device exponential time-between-failure and time-to-repair
// variates from dedicated internal/rng streams. Either way the
// schedule is a pure function of the configuration — never of shard
// count, goroutine timing or host — so chaos runs keep the byte-
// identical determinism contract at every shard count.
//
// Failure is deliberately not decommissioning: a failed device stays
// "active" in the autoscaler's books but is subtracted from the
// effective (up) roster, so pressure rises, the Min/Max walk may
// provision a spare around the outage, and the admission predictor
// prices the dead capacity out of its wait estimate (control.go).

// ChaosKind is one chaos action.
type ChaosKind uint8

const (
	// ChaosFail kills the device: its in-flight group is evicted with
	// checkpointed progress and the device accepts no work.
	ChaosFail ChaosKind = iota
	// ChaosDrain stops new dispatch; an in-flight group retires
	// normally.
	ChaosDrain
	// ChaosRestore returns a failed or draining device to service.
	ChaosRestore
)

// String names the kind as the CLI spells it.
func (k ChaosKind) String() string {
	switch k {
	case ChaosFail:
		return "fail"
	case ChaosDrain:
		return "drain"
	case ChaosRestore:
		return "restore"
	default:
		return fmt.Sprintf("ChaosKind(%d)", int(k))
	}
}

// ParseChaosKind parses the CLI spelling.
func ParseChaosKind(s string) (ChaosKind, error) {
	switch strings.ToLower(s) {
	case "fail":
		return ChaosFail, nil
	case "drain":
		return ChaosDrain, nil
	case "restore":
		return ChaosRestore, nil
	default:
		return 0, fmt.Errorf("fleet: unknown chaos kind %q (fail, drain, restore)", s)
	}
}

// ChaosEvent is one scheduled chaos action on one device.
type ChaosEvent struct {
	// Cycle is when the action fires (fleet time).
	Cycle uint64
	// Device is the global device index the action targets.
	Device int
	// Kind is what happens to it.
	Kind ChaosKind
}

// ChaosConfig parameterizes failure injection (Config.Chaos). Exactly
// one of Trace and the MTBF generator must be configured.
type ChaosConfig struct {
	// Enabled turns failure injection on.
	Enabled bool
	// Trace is the explicit failure schedule. Events may be listed in
	// any order; they execute in (cycle, device) order, same-cycle
	// same-device events in list order.
	Trace []ChaosEvent
	// MTBF and MTTR select the generator instead of a trace: each
	// device independently alternates exponential up-times (mean MTBF
	// cycles) ending in a fail and exponential outages (mean MTTR
	// cycles) ending in a restore. Both must be positive together.
	MTBF float64
	MTTR float64
	// Horizon bounds the generator: only fail/restore pairs that both
	// land before it are scheduled, so a generated outage always ends
	// and a drained run cannot strand work on permanently dead devices
	// (0 selects DefaultChaosHorizon).
	Horizon uint64
	// Seed drives the generator's per-device draws; same seed, same
	// schedule at any shard count. Ignored with an explicit trace.
	Seed uint64
}

// DefaultChaosHorizon is the generator's schedule bound when the
// config leaves it zero: a few multiples of the suite's typical
// makespans, so default runs see whole outage windows.
const DefaultChaosHorizon = 2_000_000

// chaosSalt derives the generator's per-device streams from the seed
// (rng.Hash3(seed, device, chaosSalt)), disjoint from the client
// streams' salts in control.go.
const chaosSalt = 0xC4A05

// withDefaults resolves zero fields.
func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Enabled && c.MTBF > 0 && c.Horizon == 0 {
		c.Horizon = DefaultChaosHorizon
	}
	return c
}

// validate rejects impossible chaos configurations against a roster of
// the given size.
func (c ChaosConfig) validate(devices int) error {
	if !c.Enabled {
		return nil
	}
	hasTrace, hasGen := len(c.Trace) > 0, c.MTBF > 0 || c.MTTR > 0
	if hasTrace == hasGen {
		return fmt.Errorf("fleet: chaos needs exactly one of an event trace or an MTBF/MTTR generator")
	}
	if hasGen {
		if c.MTBF <= 0 || c.MTTR <= 0 {
			return fmt.Errorf("fleet: chaos generator needs positive MTBF and MTTR (got %g/%g)", c.MTBF, c.MTTR)
		}
		if c.Horizon == 0 {
			return fmt.Errorf("fleet: chaos generator needs a positive horizon")
		}
	}
	for i, ev := range c.Trace {
		if ev.Device < 0 || ev.Device >= devices {
			return fmt.Errorf("fleet: chaos event %d targets device %d outside the %d-device roster", i, ev.Device, devices)
		}
		switch ev.Kind {
		case ChaosFail, ChaosDrain, ChaosRestore:
		default:
			return fmt.Errorf("fleet: chaos event %d has unknown kind %v", i, ev.Kind)
		}
	}
	return nil
}

// resolveChaos materializes the run's chaos schedule in execution
// order: the sorted trace, or the generator's per-device draws. Each
// device's generator stream depends only on the seed and the device
// index, so the schedule is identical at any shard count.
func (f *Fleet) resolveChaos() []ChaosEvent {
	ch := &f.cfg.Chaos
	if !ch.Enabled {
		return nil
	}
	var out []ChaosEvent
	if len(ch.Trace) > 0 {
		out = append(out, ch.Trace...)
	} else {
		for d := range f.devType {
			stream := rng.NewStream(rng.Hash3(ch.Seed, uint64(d), chaosSalt))
			t := 0.0
			for {
				t += expo(stream) * ch.MTBF
				failAt := uint64(t)
				t += expo(stream) * ch.MTTR
				restoreAt := uint64(t)
				// Only whole outage windows inside the horizon are
				// scheduled: a fail whose repair lands past it would
				// strand the device (and possibly queued work) forever.
				if failAt >= ch.Horizon || restoreAt >= ch.Horizon {
					break
				}
				out = append(out,
					ChaosEvent{Cycle: failAt, Device: d, Kind: ChaosFail},
					ChaosEvent{Cycle: restoreAt, Device: d, Kind: ChaosRestore})
			}
		}
	}
	// One device sees at most one fail and one restore per cycle pair,
	// and the stable sort keeps a same-cycle same-device fail ahead of
	// its restore (list order), so execution order is a total order.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Cycle != out[j].Cycle {
			return out[i].Cycle < out[j].Cycle
		}
		return out[i].Device < out[j].Device
	})
	return out
}

// ParseChaos parses the CLI chaos trace spelling
// "fail@CYCLE:DEV,drain@CYCLE:DEV,restore@CYCLE:DEV" into events.
// Device indices are validated against the roster later (Config
// validation); here only the shape is checked.
func ParseChaos(s string) ([]ChaosEvent, error) {
	if s == "" {
		return nil, fmt.Errorf("fleet: empty chaos trace; want KIND@CYCLE:DEV,...")
	}
	var out []ChaosEvent
	for _, entry := range strings.Split(s, ",") {
		kindStr, rest, ok := strings.Cut(strings.TrimSpace(entry), "@")
		if !ok {
			return nil, fmt.Errorf("fleet: chaos event %q is not KIND@CYCLE:DEV", entry)
		}
		kind, err := ParseChaosKind(kindStr)
		if err != nil {
			return nil, fmt.Errorf("fleet: chaos event %q: %v", entry, err)
		}
		cycleStr, devStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("fleet: chaos event %q is not KIND@CYCLE:DEV", entry)
		}
		cycle, err := strconv.ParseUint(cycleStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: chaos event %q cycle: %v", entry, err)
		}
		dev, err := strconv.Atoi(devStr)
		if err != nil || dev < 0 {
			return nil, fmt.Errorf("fleet: chaos event %q needs a non-negative device index", entry)
		}
		out = append(out, ChaosEvent{Cycle: cycle, Device: dev, Kind: kind})
	}
	return out, nil
}

// FormatChaos is the canonical rendering of a chaos trace — the fixed
// point ParseChaos round-trips through.
func FormatChaos(events []ChaosEvent) string {
	var b strings.Builder
	for i, ev := range events {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%v@%d:%d", ev.Kind, ev.Cycle, ev.Device)
	}
	return b.String()
}

// ParseChaosSpec parses the sweep axis / CLI spelling for a whole
// chaos configuration: "off" (or empty) disables it,
// "mtbf:MTBF:MTTR[:HORIZON]" selects the generator, anything else is a
// KIND@CYCLE:DEV trace.
func ParseChaosSpec(s string) (ChaosConfig, error) {
	if s == "" || strings.EqualFold(s, "off") {
		return ChaosConfig{}, nil
	}
	if rest, ok := strings.CutPrefix(strings.ToLower(s), "mtbf:"); ok {
		parts := strings.Split(rest, ":")
		if len(parts) != 2 && len(parts) != 3 {
			return ChaosConfig{}, fmt.Errorf("fleet: chaos generator %q is not mtbf:MTBF:MTTR[:HORIZON]", s)
		}
		mtbf, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || mtbf <= 0 {
			return ChaosConfig{}, fmt.Errorf("fleet: chaos MTBF %q is not a positive cycle count", parts[0])
		}
		mttr, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || mttr <= 0 {
			return ChaosConfig{}, fmt.Errorf("fleet: chaos MTTR %q is not a positive cycle count", parts[1])
		}
		cfg := ChaosConfig{Enabled: true, MTBF: mtbf, MTTR: mttr}
		if len(parts) == 3 {
			h, err := strconv.ParseUint(parts[2], 10, 64)
			if err != nil || h == 0 {
				return ChaosConfig{}, fmt.Errorf("fleet: chaos horizon %q is not a positive cycle count", parts[2])
			}
			cfg.Horizon = h
		}
		return cfg, nil
	}
	trace, err := ParseChaos(s)
	if err != nil {
		return ChaosConfig{}, err
	}
	return ChaosConfig{Enabled: true, Trace: trace}, nil
}
