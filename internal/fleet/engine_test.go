package fleet

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

// TestModeledEngineDeterminism extends the reproducibility contract to
// the analytic engine: two Modeled runs of the same stream are
// byte-identical, every group is modeled, and the summary says so.
func TestModeledEngineDeterminism(t *testing.T) {
	p := testPipeline(t)
	arr := testArrivals(t, 24, 3)
	var summaries []string
	for i := 0; i < 2; i++ {
		f, err := New(Config{Devices: homo(p, 3), NC: 2, Policy: sched.ILPSMRA, Engine: Modeled})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		if res.ModeledGroups != res.Groups || res.CycleGroups != 0 {
			t.Fatalf("modeled engine simulated: %d modeled, %d cycle of %d groups",
				res.ModeledGroups, res.CycleGroups, res.Groups)
		}
		summaries = append(summaries, res.Summary())
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("modeled summaries differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", summaries[0], summaries[1])
	}
	if !strings.Contains(summaries[0], "engine      modeled") {
		t.Fatalf("summary missing the engine line:\n%s", summaries[0])
	}
}

// TestModeledSerialMatchesCycle pins the model to the simulator where
// they provably coincide: a Serial dispatch runs every job alone, the
// model predicts a lone member at exactly its solo-profile duration,
// and RunGroup serves single-member groups from the same solo profile —
// so every per-job record must match exactly, not just within
// tolerance.
func TestModeledSerialMatchesCycle(t *testing.T) {
	p := testPipeline(t)
	arr := testArrivals(t, 10, 5)
	var runs []Result
	for _, engine := range []EngineMode{Cycle, Modeled} {
		f, err := New(Config{Devices: homo(p, 2), NC: 1, Policy: sched.Serial, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, res)
	}
	if len(runs[0].Jobs) != len(runs[1].Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(runs[0].Jobs), len(runs[1].Jobs))
	}
	for i := range runs[0].Jobs {
		if runs[0].Jobs[i] != runs[1].Jobs[i] {
			t.Errorf("job %d diverged:\ncycle:   %+v\nmodeled: %+v", i, runs[0].Jobs[i], runs[1].Jobs[i])
		}
	}
	if runs[0].Makespan != runs[1].Makespan {
		t.Errorf("makespan: cycle %d, modeled %d", runs[0].Makespan, runs[1].Makespan)
	}
	if runs[0].ThreadInstructions != runs[1].ThreadInstructions {
		t.Errorf("instructions: cycle %d, modeled %d", runs[0].ThreadInstructions, runs[1].ThreadInstructions)
	}
}

// TestHybridWithinTolerance checks the calibrated model tracks the
// simulator on a small config: the Hybrid run must mix cycle-accurate
// and modeled groups, report its fidelity delta, and land its headline
// summary statistics within a modeling tolerance of the all-cycle run.
func TestHybridWithinTolerance(t *testing.T) {
	p := testPipeline(t)
	arr := testArrivals(t, 24, 7)
	var runs []Result
	for _, engine := range []EngineMode{Cycle, Hybrid} {
		f, err := New(Config{Devices: homo(p, 2), NC: 2, Policy: sched.ILP, Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, res)
	}
	cycle, hybrid := runs[0], runs[1]
	if hybrid.CycleGroups == 0 || hybrid.ModeledGroups == 0 {
		t.Fatalf("hybrid did not mix engines: %d cycle, %d modeled", hybrid.CycleGroups, hybrid.ModeledGroups)
	}
	if !strings.Contains(hybrid.Summary(), "model delta") {
		t.Fatalf("hybrid summary missing the fidelity delta:\n%s", hybrid.Summary())
	}
	// The model is an approximation; what must hold is agreement on the
	// aggregate shape of the run, not cycle equality. The bounds are
	// deliberately loose enough to survive matrix recalibrations and
	// tight enough to catch unit mistakes (a warp-vs-thread or
	// solo-vs-co-run mixup is a >2x error).
	rel := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		d := a/b - 1
		if d < 0 {
			d = -d
		}
		return d
	}
	if d := rel(float64(hybrid.Makespan), float64(cycle.Makespan)); d > 0.35 {
		t.Errorf("hybrid makespan %d vs cycle %d (%.0f%% apart)", hybrid.Makespan, cycle.Makespan, 100*d)
	}
	if d := rel(hybrid.TurnaroundSummary().Mean, cycle.TurnaroundSummary().Mean); d > 0.35 {
		t.Errorf("hybrid mean turnaround %.1f vs cycle %.1f (%.0f%% apart)",
			hybrid.TurnaroundSummary().Mean, cycle.TurnaroundSummary().Mean, 100*d)
	}
	if hybrid.ModelDelta <= 0 || hybrid.ModelDelta > 0.5 {
		t.Errorf("model delta %.3f outside the plausible band (0, 0.5]", hybrid.ModelDelta)
	}
	if cycle.ThreadInstructions != hybrid.ThreadInstructions {
		t.Errorf("retired instructions differ: cycle %d, hybrid %d (the model must not invent work)",
			cycle.ThreadInstructions, hybrid.ThreadInstructions)
	}
}

// TestHybridDeterminism: the Hybrid engine's warm-up counting and
// calibration are part of the deterministic event loop, so identical
// runs must agree byte for byte.
func TestHybridDeterminism(t *testing.T) {
	p := testPipeline(t)
	arr := testArrivals(t, 20, 11)
	var summaries []string
	for i := 0; i < 2; i++ {
		f, err := New(Config{Devices: homo(p, 2), NC: 2, Policy: sched.ILPSMRA, Engine: Hybrid, HybridWarm: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, res.Summary())
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("hybrid summaries differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", summaries[0], summaries[1])
	}
}

// TestModeledPreemption exercises SLO preemption on top of the analytic
// engine: evictions, checkpoints and re-dispatch accounting must work
// without a simulator in the loop, deterministically.
func TestModeledPreemption(t *testing.T) {
	p := testPipeline(t)
	arr, err := ArrivalConfig{
		Kind: Poisson, Jobs: 30, Rate: 1.5,
		LatencyFrac: 0.25, Deadline: 60_000, Seed: 0x510,
	}.Generate(testNames())
	if err != nil {
		t.Fatal(err)
	}
	var summaries []string
	for i := 0; i < 2; i++ {
		f, err := New(Config{
			Devices: homo(p, 2), NC: 2, Policy: sched.ILPSMRA, Engine: Modeled,
			SLO: SLOConfig{Enabled: true, Preempt: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, res.Summary()+res.EvictionTrace())
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("modeled preemption runs differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", summaries[0], summaries[1])
	}
}

// TestHybridPreemptionDeterminism drives preemption into the Hybrid
// engine's warm-up phase: evicting a warm-up flight refunds its
// calibration slot (the abandoned simulation can never feed the
// calibration), and the whole dance must stay byte-reproducible.
func TestHybridPreemptionDeterminism(t *testing.T) {
	p := testPipeline(t)
	arr, err := ArrivalConfig{
		Kind: Poisson, Jobs: 30, Rate: 1.5,
		LatencyFrac: 0.25, Deadline: 60_000, Seed: 0x510,
	}.Generate(testNames())
	if err != nil {
		t.Fatal(err)
	}
	var summaries []string
	for i := 0; i < 2; i++ {
		f, err := New(Config{
			Devices: homo(p, 2), NC: 2, Policy: sched.ILPSMRA, Engine: Hybrid, HybridWarm: 1,
			SLO: SLOConfig{Enabled: true, Preempt: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, res.Summary()+res.EvictionTrace())
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("hybrid preemption runs differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", summaries[0], summaries[1])
	}
}

// TestParseEngine covers the CLI spellings.
func TestParseEngine(t *testing.T) {
	for s, want := range map[string]EngineMode{
		"cycle": Cycle, "modeled": Modeled, "model": Modeled, "hybrid": Hybrid, "HYBRID": Hybrid,
	} {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEngine("exact"); err == nil {
		t.Error("accepted unknown engine name")
	}
}

// TestEngineConfigValidation guards the engine-specific config checks.
func TestEngineConfigValidation(t *testing.T) {
	p := testPipeline(t)
	if _, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.FCFS, Engine: EngineMode(9)}); err == nil {
		t.Error("accepted unknown engine mode")
	}
	if _, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.FCFS, Engine: Hybrid, HybridWarm: -1}); err == nil {
		t.Error("accepted negative hybrid warm-up")
	}
	f, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.FCFS, Engine: Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	if f.Config().HybridWarm != DefaultHybridWarm {
		t.Errorf("HybridWarm default = %d, want %d", f.Config().HybridWarm, DefaultHybridWarm)
	}
}
