package fleet

import (
	"testing"
)

func u() []string { return []string{"A", "B", "C"} }

func TestPoissonArrivalsDeterministicAndOrdered(t *testing.T) {
	cfg := ArrivalConfig{Kind: Poisson, Jobs: 50, Rate: 1, Seed: 42}
	a1, err := cfg.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cfg.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 50 {
		t.Fatalf("len = %d", len(a1))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d differs across identical configs: %v vs %v", i, a1[i], a2[i])
		}
		if i > 0 && a1[i].Cycle < a1[i-1].Cycle {
			t.Fatalf("arrivals out of order at %d: %d < %d", i, a1[i].Cycle, a1[i-1].Cycle)
		}
	}
}

func TestPoissonRateScalesSpacing(t *testing.T) {
	slow, err := ArrivalConfig{Kind: Poisson, Jobs: 200, Rate: 0.5, Seed: 9}.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ArrivalConfig{Kind: Poisson, Jobs: 200, Rate: 5, Seed: 9}.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	if fast[199].Cycle >= slow[199].Cycle {
		t.Fatalf("10x rate did not compress the stream: fast end %d, slow end %d",
			fast[199].Cycle, slow[199].Cycle)
	}
}

func TestBurstyArrivalsClump(t *testing.T) {
	arr, err := ArrivalConfig{Kind: Bursty, Jobs: 200, Rate: 1, Seed: 4}.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	// An on-off process must show both tight clumps and long silences:
	// the largest inter-arrival gap dwarfs the median one.
	var gaps []uint64
	for i := 1; i < len(arr); i++ {
		gaps = append(gaps, arr[i].Cycle-arr[i-1].Cycle)
	}
	var max, sum uint64
	for _, g := range gaps {
		if g > max {
			max = g
		}
		sum += g
	}
	mean := sum / uint64(len(gaps))
	if max < 5*mean {
		t.Fatalf("no bursts: max gap %d vs mean %d", max, mean)
	}
}

func TestTraceArrivalsSortedAndValidated(t *testing.T) {
	cfg := ArrivalConfig{Kind: Trace, Trace: []Arrival{
		{Name: "B", Cycle: 500},
		{Name: "A", Cycle: 100},
	}}
	arr, err := cfg.Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if arr[0].Name != "A" || arr[1].Name != "B" {
		t.Fatalf("trace not sorted by cycle: %v", arr)
	}
	if _, err := (ArrivalConfig{Kind: Trace}).Generate(nil); err == nil {
		t.Fatal("accepted empty trace")
	}
}

func TestBurstyWithExplicitBurstRateNeedsNoBaseRate(t *testing.T) {
	arr, err := ArrivalConfig{Kind: Bursty, Jobs: 20, BurstRate: 2, Seed: 6}.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 20 {
		t.Fatalf("len = %d", len(arr))
	}
	if _, err := (ArrivalConfig{Kind: Bursty, Jobs: 20}).Generate(u()); err == nil {
		t.Fatal("accepted bursty with neither Rate nor BurstRate")
	}
}

func TestArrivalConfigRejectsBadInputs(t *testing.T) {
	if _, err := (ArrivalConfig{Kind: Poisson, Jobs: 0, Rate: 1}).Generate(u()); err == nil {
		t.Fatal("accepted zero jobs")
	}
	if _, err := (ArrivalConfig{Kind: Poisson, Jobs: 5, Rate: 0}).Generate(u()); err == nil {
		t.Fatal("accepted zero rate")
	}
	if _, err := (ArrivalConfig{Kind: Poisson, Jobs: 5, Rate: 1}).Generate(nil); err == nil {
		t.Fatal("accepted empty universe")
	}
}

func TestParseArrivalKindRoundTrips(t *testing.T) {
	for _, k := range []ArrivalKind{Poisson, Bursty, Trace} {
		got, err := ParseArrivalKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := ParseArrivalKind("uniform"); err == nil {
		t.Fatal("accepted unknown kind")
	}
}
