package fleet

import (
	"testing"

	"repro/internal/rng"
)

func u() []string { return []string{"A", "B", "C"} }

func TestPoissonArrivalsDeterministicAndOrdered(t *testing.T) {
	cfg := ArrivalConfig{Kind: Poisson, Jobs: 50, Rate: 1, Seed: 42}
	a1, err := cfg.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cfg.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 50 {
		t.Fatalf("len = %d", len(a1))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d differs across identical configs: %v vs %v", i, a1[i], a2[i])
		}
		if i > 0 && a1[i].Cycle < a1[i-1].Cycle {
			t.Fatalf("arrivals out of order at %d: %d < %d", i, a1[i].Cycle, a1[i-1].Cycle)
		}
	}
}

func TestPoissonRateScalesSpacing(t *testing.T) {
	slow, err := ArrivalConfig{Kind: Poisson, Jobs: 200, Rate: 0.5, Seed: 9}.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ArrivalConfig{Kind: Poisson, Jobs: 200, Rate: 5, Seed: 9}.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	if fast[199].Cycle >= slow[199].Cycle {
		t.Fatalf("10x rate did not compress the stream: fast end %d, slow end %d",
			fast[199].Cycle, slow[199].Cycle)
	}
}

func TestBurstyArrivalsClump(t *testing.T) {
	arr, err := ArrivalConfig{Kind: Bursty, Jobs: 200, Rate: 1, Seed: 4}.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	// An on-off process must show both tight clumps and long silences:
	// the largest inter-arrival gap dwarfs the median one.
	var gaps []uint64
	for i := 1; i < len(arr); i++ {
		gaps = append(gaps, arr[i].Cycle-arr[i-1].Cycle)
	}
	var max, sum uint64
	for _, g := range gaps {
		if g > max {
			max = g
		}
		sum += g
	}
	mean := sum / uint64(len(gaps))
	if max < 5*mean {
		t.Fatalf("no bursts: max gap %d vs mean %d", max, mean)
	}
}

func TestTraceArrivalsSortedAndValidated(t *testing.T) {
	cfg := ArrivalConfig{Kind: Trace, Trace: []Arrival{
		{Name: "B", Cycle: 500},
		{Name: "A", Cycle: 100},
	}}
	arr, err := cfg.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	if arr[0].Name != "A" || arr[1].Name != "B" {
		t.Fatalf("trace not sorted by cycle: %v", arr)
	}
	if _, err := (ArrivalConfig{Kind: Trace}).Generate(u()); err == nil {
		t.Fatal("accepted empty trace")
	}
}

// TestTraceArrivalsRejectBadEntries guards the up-front validation:
// unknown or empty benchmark names and stray Poisson parameters fail in
// Generate with the offending entry named, not later inside the fleet
// run with a confusing error.
func TestTraceArrivalsRejectBadEntries(t *testing.T) {
	good := []Arrival{{Name: "A", Cycle: 0}}
	if _, err := (ArrivalConfig{Kind: Trace, Trace: []Arrival{{Name: "nope", Cycle: 0}}}).Generate(u()); err == nil {
		t.Fatal("accepted a trace naming an unknown benchmark")
	}
	if _, err := (ArrivalConfig{Kind: Trace, Trace: []Arrival{{Name: "", Cycle: 0}}}).Generate(u()); err == nil {
		t.Fatal("accepted a trace entry with an empty name")
	}
	if _, err := (ArrivalConfig{Kind: Trace, Trace: good}).Generate(nil); err == nil {
		t.Fatal("accepted a trace with no universe to validate against")
	}
	if _, err := (ArrivalConfig{Kind: Trace, Trace: good, Jobs: 5}).Generate(u()); err == nil {
		t.Fatal("accepted Jobs set alongside a trace")
	}
	if _, err := (ArrivalConfig{Kind: Trace, Trace: good, Rate: 1}).Generate(u()); err == nil {
		t.Fatal("accepted Rate set alongside a trace")
	}
	if _, err := (ArrivalConfig{Kind: Trace, Trace: good}).Generate(u()); err != nil {
		t.Fatalf("rejected a valid trace: %v", err)
	}
}

func TestBurstyWithExplicitBurstRateNeedsNoBaseRate(t *testing.T) {
	arr, err := ArrivalConfig{Kind: Bursty, Jobs: 20, BurstRate: 2, Seed: 6}.Generate(u())
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 20 {
		t.Fatalf("len = %d", len(arr))
	}
	if _, err := (ArrivalConfig{Kind: Bursty, Jobs: 20}).Generate(u()); err == nil {
		t.Fatal("accepted bursty with neither Rate nor BurstRate")
	}
}

func TestArrivalConfigRejectsBadInputs(t *testing.T) {
	if _, err := (ArrivalConfig{Kind: Poisson, Jobs: 0, Rate: 1}).Generate(u()); err == nil {
		t.Fatal("accepted zero jobs")
	}
	if _, err := (ArrivalConfig{Kind: Poisson, Jobs: 5, Rate: 0}).Generate(u()); err == nil {
		t.Fatal("accepted zero rate")
	}
	if _, err := (ArrivalConfig{Kind: Poisson, Jobs: 5, Rate: 1}).Generate(nil); err == nil {
		t.Fatal("accepted empty universe")
	}
}

// TestBurstyArrivalsLandInOnPhases drives the generator directly and
// asserts every arrival falls inside one of the ON intervals the
// process materialized — none leak into OFF gaps (the carry-across-gap
// logic's contract). Cycles are floored floats, so the phase-start
// comparison allows one cycle of truncation slack; OFF gaps average
// tens of thousands of cycles, so the slack cannot mask a real leak.
func TestBurstyArrivalsLandInOnPhases(t *testing.T) {
	cfg := ArrivalConfig{Kind: Bursty, Jobs: 300, Rate: 1, Seed: 17}.Resolved()
	stream := rng.NewStream(rng.Hash2(cfg.Seed, 0xf1ee7))
	arr, phases := cfg.burstyGen(stream, u())
	if len(arr) != 300 {
		t.Fatalf("len = %d", len(arr))
	}
	if len(phases) < 2 {
		t.Fatalf("only %d ON phases over 300 arrivals", len(phases))
	}
	for i, a := range arr {
		inside := false
		for _, ph := range phases {
			if float64(a.Cycle) >= ph.start-1 && float64(a.Cycle) <= ph.end {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("arrival %d at cycle %d lands outside every ON phase %v", i, a.Cycle, phases)
		}
	}
}

// TestResolvedFillsBurstDefaults pins the documented fallbacks the CLI
// header reports.
func TestResolvedFillsBurstDefaults(t *testing.T) {
	r := ArrivalConfig{Kind: Bursty, Jobs: 10, Rate: 0.5}.Resolved()
	if r.BurstRate != 2 || r.MeanOn != DefaultMeanOn || r.MeanOff != DefaultMeanOff {
		t.Fatalf("resolved = %+v", r)
	}
	explicit := ArrivalConfig{Kind: Bursty, Jobs: 10, Rate: 0.5, BurstRate: 9, MeanOn: 1, MeanOff: 2}.Resolved()
	if explicit.BurstRate != 9 || explicit.MeanOn != 1 || explicit.MeanOff != 2 {
		t.Fatalf("explicit values overridden: %+v", explicit)
	}
	p := ArrivalConfig{Kind: Poisson, Jobs: 10, Rate: 0.5}
	if r := p.Resolved(); r.BurstRate != 0 || r.MeanOn != 0 || r.MeanOff != 0 {
		t.Fatalf("poisson config changed by Resolved: %+v", r)
	}
}

func TestParseArrivalKindRoundTrips(t *testing.T) {
	for _, k := range []ArrivalKind{Poisson, Bursty, Trace} {
		got, err := ParseArrivalKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := ParseArrivalKind("uniform"); err == nil {
		t.Fatal("accepted unknown kind")
	}
}
