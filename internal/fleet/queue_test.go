package fleet

import (
	"testing"

	"repro/internal/rng"
)

// TestJobQueueMatchesReference drives the head-indexed queue and a
// naive sorted-slice reference through the same randomized
// insert/remove script and demands identical contents at every step —
// the queue is the one data structure whose bugs would not crash but
// silently reorder dispatch.
func TestJobQueueMatchesReference(t *testing.T) {
	for _, slo := range []bool{false, true} {
		q := jobQueue{slo: slo}
		var ref []*job
		refInsert := func(j *job) {
			pos := len(ref)
			for i, r := range ref {
				if q.before(j, r) {
					pos = i
					break
				}
			}
			ref = append(ref, nil)
			copy(ref[pos+1:], ref[pos:])
			ref[pos] = j
		}
		check := func(step int) {
			t.Helper()
			if q.Len() != len(ref) {
				t.Fatalf("step %d: len %d, want %d", step, q.Len(), len(ref))
			}
			for i, r := range ref {
				if q.at(i) != r {
					t.Fatalf("step %d: slot %d holds j%d, want j%d", step, i, q.at(i).id, r.id)
				}
			}
		}
		stream := rng.NewStream(0xbeef)
		id := 0
		arrival := uint64(0)
		for step := 0; step < 2000; step++ {
			switch op := stream.Intn(10); {
			case op < 5 || len(ref) == 0:
				// In-order arrival (the common case: append position).
				arrival += uint64(stream.Intn(50))
				j := &job{id: id, arrival: arrival, slo: SLOClass(stream.Intn(2))}
				id++
				q.insert(j)
				refInsert(j)
			case op < 7:
				// Re-entry of an old (evicted) job: mid-queue insert.
				j := &job{id: id, arrival: arrival / 2, slo: SLOClass(stream.Intn(2))}
				id++
				q.insert(j)
				refInsert(j)
			case op < 9:
				// Window-prefix removal, like group formation.
				w := stream.Intn(MaxWindow) + 1
				if w > len(ref) {
					w = len(ref)
				}
				var taken []*job
				for i := 0; i < w; i++ {
					if stream.Intn(2) == 0 || len(taken) == 0 {
						taken = append(taken, ref[i])
					}
				}
				q.removeJobs(taken)
				out := ref[:0]
				for _, r := range ref {
					if !containsJob(taken, r) {
						out = append(out, r)
					}
				}
				ref = out
			default:
				// Prefix pop, like FCFS dispatch.
				n := stream.Intn(3) + 1
				if n > len(ref) {
					n = len(ref)
				}
				q.advance(n)
				ref = ref[n:]
			}
			check(step)
		}
	}
}
