package fleet

import (
	"bytes"
	"testing"

	"repro/internal/sched"
)

// seriesRun executes a small SLO-flavored fleet run with sampling on
// (preemption included, so the eviction busy-accounting path is
// exercised too) and returns the result.
func seriesRun(t *testing.T, sampleEvery uint64) Result {
	t.Helper()
	f, err := NewHomogeneous(testPipeline(t), 2, Config{
		NC: 2, Policy: sched.ILPSMRA,
		SLO:         SLOConfig{Enabled: true, Preempt: true},
		Engine:      Modeled,
		SampleEvery: sampleEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ArrivalConfig{
		Kind: Poisson, Jobs: 40, Rate: 1.5,
		LatencyFrac: 0.3, Deadline: 50_000, Seed: 0xBEEF,
	}.Generate(testNames())
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTimeseriesInvariants cross-checks the sampled series against the
// run's own end-of-run accounting: the sampler and the Result must
// never disagree about the same run.
func TestTimeseriesInvariants(t *testing.T) {
	const interval = 10_000
	res := seriesRun(t, interval)
	s := res.Series
	if s == nil {
		t.Fatal("no series sampled")
	}
	if s.Interval() != interval {
		t.Fatalf("interval = %d, want %d", s.Interval(), interval)
	}
	if s.Rows() == 0 {
		t.Fatal("empty series")
	}
	cCycle, cDone, cMissed, cEvic := s.Col("cycle"), s.Col("done"), s.Col("missed"), s.Col("evictions")
	if cCycle < 0 || cDone < 0 || cMissed < 0 || cEvic < 0 {
		t.Fatalf("missing fixed columns in %v", s.Columns())
	}
	// Cycle strictly increases, lands on interval boundaries except for
	// a final partial row, and ends exactly at the makespan.
	prev := uint64(0)
	for r := 0; r < s.Rows(); r++ {
		c := s.At(r, cCycle)
		if c <= prev {
			t.Fatalf("row %d: cycle %d not increasing past %d", r, c, prev)
		}
		if c%interval != 0 && r != s.Rows()-1 {
			t.Fatalf("row %d: off-boundary cycle %d before the last row", r, c)
		}
		prev = c
		// Cumulative columns are monotone.
		for _, c := range []int{cDone, cMissed, cEvic} {
			if r > 0 && s.At(r, c) < s.At(r-1, c) {
				t.Fatalf("row %d: cumulative column %s decreased", r, s.Columns()[c])
			}
		}
	}
	last := s.Rows() - 1
	if got := s.At(last, cCycle); got != res.Makespan {
		t.Fatalf("final row at cycle %d, want makespan %d", got, res.Makespan)
	}
	if got := s.At(last, cDone); got != uint64(len(res.Jobs)) {
		t.Fatalf("final done = %d, want %d", got, len(res.Jobs))
	}
	if got := s.At(last, cMissed); got != uint64(res.DeadlineMisses()) {
		t.Fatalf("final missed = %d, want %d", got, res.DeadlineMisses())
	}
	if got := s.At(last, cEvic); got != uint64(len(res.Evictions)) {
		t.Fatalf("final evictions = %d, want %d", got, len(res.Evictions))
	}
	if got := s.At(last, s.Col("groups")); got != uint64(res.Groups) {
		t.Fatalf("final groups = %d, want %d", got, res.Groups)
	}
	if got := s.At(last, s.Col("queue")); got != 0 {
		t.Fatalf("final queue depth = %d, want 0", got)
	}
	// Per-device busy columns tile the run: summed over rows they must
	// equal the Result's busy-cycle accounting exactly, and no row may
	// claim more busy time than its interval covers.
	for d := 0; d < res.Devices; d++ {
		col := s.Col("d0_busy") + d
		sum := uint64(0)
		for r := 0; r < s.Rows(); r++ {
			v := s.At(r, col)
			span := uint64(interval)
			if r == last && s.At(r, cCycle)%interval != 0 {
				span = s.At(r, cCycle) % interval
			}
			if v > span {
				t.Fatalf("row %d device %d: busy %d exceeds the row's %d-cycle span", r, d, v, span)
			}
			sum += v
		}
		if sum != res.DeviceBusy[d] {
			t.Fatalf("device %d: series busy sums to %d, Result says %d", d, sum, res.DeviceBusy[d])
		}
	}
	// Queue class split is consistent.
	cq, cl, cb := s.Col("queue"), s.Col("queue_latency"), s.Col("queue_batch")
	for r := 0; r < s.Rows(); r++ {
		if s.At(r, cl)+s.At(r, cb) != s.At(r, cq) {
			t.Fatalf("row %d: class split %d+%d != queue %d", r, s.At(r, cl), s.At(r, cb), s.At(r, cq))
		}
	}
}

// TestTimeseriesDeterministic runs the same seeded scenario twice and
// requires byte-identical CSV and JSON renderings — the summary's
// reproducibility contract extended to the time axis.
func TestTimeseriesDeterministic(t *testing.T) {
	a, b := seriesRun(t, 10_000), seriesRun(t, 10_000)
	var csvA, csvB, jsonA, jsonB bytes.Buffer
	if err := a.Series.WriteCSV(&csvA); err != nil {
		t.Fatal(err)
	}
	if err := b.Series.WriteCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvA.Bytes(), csvB.Bytes()) {
		t.Errorf("same-seed CSV series differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", csvA.String(), csvB.String())
	}
	if err := a.Series.WriteJSON(&jsonA); err != nil {
		t.Fatal(err)
	}
	if err := b.Series.WriteJSON(&jsonB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonA.Bytes(), jsonB.Bytes()) {
		t.Error("same-seed JSON series differ")
	}
}

// TestTimeseriesOffByDefault locks the zero-cost default: no sampling
// configured, no series on the result.
func TestTimeseriesOffByDefault(t *testing.T) {
	res := seriesRun(t, 0)
	if res.Series != nil {
		t.Fatal("Series present without SampleEvery")
	}
}
