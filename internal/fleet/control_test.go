package fleet

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

// closedCase is the canonical closed-loop scenario the control tests
// share: a heterogeneous roster under client-pool traffic with think
// time, timeouts and retries, plus admission control and an elastic
// roster — every control surface on at once, which is exactly the
// configuration most likely to break determinism.
func closedCase(t *testing.T, shards int) Config {
	t.Helper()
	small := testPipeline(t)
	tiny := pipelineFor(t, tinyConfig())
	return Config{
		Devices: []DeviceSpec{{Pipe: small, Count: 4}, {Pipe: tiny, Count: 4}},
		NC:      2,
		Policy:  sched.ILPSMRA,
		Engine:  Modeled,
		SLO:     SLOConfig{Enabled: true},
		Shards:  shards,
		// The epoch doubles as the router barrier and the autoscale
		// reconciliation grid; keep it short so runs cross many of both.
		ShardEpoch:  10_000,
		SampleEvery: goldenSampleEvery,
		Closed: ClosedConfig{
			Enabled: true, Clients: 16, Requests: 5,
			Think: 5_000, Timeout: 45_000, Retries: 2,
			LatencyFrac: 0.25, Deadline: 60_000,
			Seed: 0xC105ED, Universe: testNames(),
		},
		Admission: AdmissionConfig{Enabled: true, MaxWait: 60_000},
		// The low High watermark makes the roster actually move under
		// this load, so the goldens lock provision ordering too.
		Autoscale: AutoscaleConfig{Enabled: true, Min: 4, Max: 8, High: 1.2, Low: 0.5},
	}
}

// runClosedCase executes the scenario and renders the full observable
// output, mirroring runShardedCase for the control surfaces.
func runClosedCase(t *testing.T, shards int) (Result, string, string) {
	t.Helper()
	f, err := New(closedCase(t, shards))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := res.Series.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return res, res.Summary() + res.EvictionTrace(), csv.String()
}

// checkConservation asserts the job-conservation invariant on a drained
// run: every submitted attempt ended in exactly one of completed,
// rejected or abandoned (nothing is in flight once Run returns), and
// the per-job records agree with the aggregate counters.
func checkConservation(t *testing.T, label string, res Result, jobs int) {
	t.Helper()
	if got := res.Submitted; got != res.CompletedJobs()+res.Rejected+res.Abandoned {
		t.Errorf("%s: conservation broken: submitted %d != completed %d + rejected %d + abandoned %d",
			label, got, res.CompletedJobs(), res.Rejected, res.Abandoned)
	}
	if len(res.Jobs) != jobs {
		t.Errorf("%s: job records = %d, want %d", label, len(res.Jobs), jobs)
	}
	if res.Retried != res.Submitted-jobs {
		t.Errorf("%s: retried %d != submitted %d - jobs %d", label, res.Retried, res.Submitted, jobs)
	}
	attempts, done, rejected, abandoned := 0, 0, 0, 0
	for _, j := range res.Jobs {
		attempts += j.Attempts
		switch j.Outcome {
		case Done:
			done++
			if j.Device < 0 {
				t.Errorf("%s: job %d done on device %d", label, j.ID, j.Device)
			}
			if j.Complete < j.Dispatch || j.Dispatch < j.Arrival {
				t.Errorf("%s: job %d times out of order: arrival %d dispatch %d complete %d",
					label, j.ID, j.Arrival, j.Dispatch, j.Complete)
			}
		case Rejected:
			rejected++
		case Abandoned:
			abandoned++
		}
		if j.Attempts < 1 {
			t.Errorf("%s: job %d records %d attempts", label, j.ID, j.Attempts)
		}
	}
	if attempts != res.Submitted {
		t.Errorf("%s: per-job attempts sum %d != submitted %d", label, attempts, res.Submitted)
	}
	if done != res.CompletedJobs() {
		t.Errorf("%s: done records %d != CompletedJobs %d", label, done, res.CompletedJobs())
	}
	// The aggregate rejected/abandoned counters are per attempt; the
	// records carry only each job's terminal outcome, so the records
	// bound the counters from below.
	if rejected > res.Rejected || abandoned > res.Abandoned {
		t.Errorf("%s: terminal rejected/abandoned %d/%d exceed attempt counters %d/%d",
			label, rejected, abandoned, res.Rejected, res.Abandoned)
	}
}

// TestClosedLoopConservation is the property test behind the control
// surfaces: across engines, shard counts, policies and seeds, every
// submitted attempt is accounted for — no job is lost or double-counted
// whatever combination of timeouts, retries, rejections and roster
// changes the run went through.
func TestClosedLoopConservation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		engine EngineMode
		shards int
		policy sched.Policy
	}{
		{"cycle-fcfs", Cycle, 0, sched.FCFS},
		{"cycle-ilp", Cycle, 0, sched.ILPSMRA},
		{"modeled-1", Modeled, 1, sched.ILPSMRA},
		{"modeled-2", Modeled, 2, sched.ILPSMRA},
		{"modeled-4", Modeled, 4, sched.ILPSMRA},
	} {
		for _, seed := range []uint64{1, 2, 0xDEAD} {
			cfg := closedCase(t, tc.shards)
			cfg.Engine = tc.engine
			cfg.Policy = tc.policy
			cfg.Closed.Seed = seed
			// Tighten patience on one seed so abandonment and retry
			// exhaustion actually fire.
			if seed == 2 {
				cfg.Closed.Timeout = 20_000
				cfg.Admission.MaxWait = 30_000
			}
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			label := tc.name
			checkConservation(t, label, res, cfg.Closed.Clients*cfg.Closed.Requests)
		}
	}
}

// TestClosedGolden locks the closed-loop path's observable output at
// one and two shards — summary, eviction trace and time series with
// the control-column block. Regenerate with
//
//	go test ./internal/fleet -run ClosedGolden -update
//
// only when the control surfaces' behavior is meant to change.
func TestClosedGolden(t *testing.T) {
	for _, shards := range []int{1, 2} {
		res, summary, csv := runClosedCase(t, shards)
		if !res.Closed || !res.Admission || !res.Autoscale {
			t.Fatalf("shards=%d: control flags = %v/%v/%v, want all true",
				shards, res.Closed, res.Admission, res.Autoscale)
		}
		name := "closed_shard1"
		if shards == 2 {
			name = "closed_shard2"
		}
		compareGolden(t, name+".golden", summary)
		compareGolden(t, "timeseries_"+name+".golden", csv)
	}
}

// TestClosedShardedDeterminism mirrors TestShardedDeterminism for the
// control surfaces: with closed-loop clients, admission control and the
// autoscaler all live, repeated runs at every shard count must produce
// byte-identical summaries, traces and series. Runs under -race in CI.
func TestClosedShardedDeterminism(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		_, firstSum, firstCSV := runClosedCase(t, shards)
		for run := 1; run < 3; run++ {
			_, sum, csv := runClosedCase(t, shards)
			if sum != firstSum {
				t.Fatalf("shards=%d run %d summary diverged from run 0:\n--- first ---\n%s--- again ---\n%s",
					shards, run, firstSum, sum)
			}
			if csv != firstCSV {
				t.Fatalf("shards=%d run %d time series diverged from run 0", shards, run)
			}
		}
	}
}

// TestAdmissionReducesMisses is the ablation the FleetAdmission
// scenario reports: under a flash crowd (many clients, no think time),
// admission control must strictly reduce the deadline-miss rate, and
// the cost — rejections — must be visible in the counters.
func TestAdmissionReducesMisses(t *testing.T) {
	run := func(admission bool) Result {
		cfg := closedCase(t, 1)
		cfg.Autoscale = AutoscaleConfig{}
		cfg.Closed.Clients = 24
		cfg.Closed.Requests = 4
		// Nonzero think time is what gives rejection its teeth: a
		// rejected client leaves for a think period instead of hammering
		// the queue again in the same cycle.
		cfg.Closed.Think = 10_000
		cfg.Closed.Timeout = 0
		cfg.Closed.Retries = 0
		cfg.Closed.LatencyFrac = 0.5
		cfg.Admission = AdmissionConfig{}
		if admission {
			cfg.Admission = AdmissionConfig{Enabled: true, MaxWait: 25_000}
		}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(false), run(true)
	if off.Rejected != 0 {
		t.Fatalf("admission off rejected %d jobs", off.Rejected)
	}
	if on.Rejected == 0 {
		t.Fatal("admission on rejected nothing; the bound never bit")
	}
	if off.DeadlineMisses() == 0 {
		t.Fatal("flash crowd missed no deadlines; the ablation has no signal")
	}
	if on.MissRate() >= off.MissRate() {
		t.Errorf("admission on miss rate %.3f not below off %.3f (rejected %d)",
			on.MissRate(), off.MissRate(), on.Rejected)
	}
	checkConservation(t, "admission-off", off, 96)
	checkConservation(t, "admission-on", on, 96)
}

// TestAdmissionDegradeKeepsWork checks the degrade mode's contract:
// over-bound latency submissions are admitted as batch instead of
// rejected, so nothing is dropped and the degradations are counted.
func TestAdmissionDegradeKeepsWork(t *testing.T) {
	cfg := closedCase(t, 1)
	cfg.Autoscale = AutoscaleConfig{}
	cfg.Closed.Clients = 24
	cfg.Closed.Requests = 4
	cfg.Closed.Think = 0
	cfg.Closed.Timeout = 0
	cfg.Closed.Retries = 0
	cfg.Closed.LatencyFrac = 0.5
	cfg.Admission = AdmissionConfig{Enabled: true, MaxWait: 40_000, Degrade: true}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Errorf("degrade mode rejected %d submissions", res.Rejected)
	}
	if res.Degraded == 0 {
		t.Error("degrade mode degraded nothing; the bound never bit")
	}
	if got := res.CompletedJobs(); got != 96 {
		t.Errorf("completed %d of 96 jobs; degrade mode must not drop work", got)
	}
}

// TestAutoscaleScales checks the elastic roster actually moves: under
// sustained closed-loop pressure with a small floor, the run must
// provision devices, and scale-down must reclaim them by the end.
func TestAutoscaleScales(t *testing.T) {
	cfg := closedCase(t, 1)
	cfg.Autoscale = AutoscaleConfig{Enabled: true, Min: 1, Max: 8, High: 1.5, Low: 0.25}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Provisions == 0 {
		t.Error("autoscaler provisioned nothing under sustained pressure")
	}
	if res.Decommissions == 0 {
		t.Error("autoscaler never scaled down as the run drained")
	}
	checkConservation(t, "autoscale", res, cfg.Closed.Clients*cfg.Closed.Requests)
}

// TestClosedRejectsArrivals pins the Run contract: a closed-loop fleet
// generates its own submissions, so passing an open arrival stream is
// rejected rather than silently merged.
func TestClosedRejectsArrivals(t *testing.T) {
	cfg := closedCase(t, 1)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(testArrivals(t, 4, 1)); err == nil {
		t.Fatal("closed-loop Run accepted an arrival stream")
	}
}

// TestControlValidation covers the new Config surfaces' validation.
func TestControlValidation(t *testing.T) {
	base := func() Config { return closedCase(t, 1) }
	for _, tc := range []struct {
		name   string
		break_ func(*Config)
	}{
		{"no clients", func(c *Config) { c.Closed.Clients = 0 }},
		{"negative think", func(c *Config) { c.Closed.Think = -1 }},
		{"latency frac", func(c *Config) { c.Closed.LatencyFrac = 1.5 }},
		{"negative retries", func(c *Config) { c.Closed.Retries = -1 }},
		{"empty universe", func(c *Config) { c.Closed.Universe = nil }},
		{"admission bound", func(c *Config) { c.Admission.MaxWait = 0 }},
		{"autoscale min", func(c *Config) { c.Autoscale.Min = -1 }},
		{"autoscale order", func(c *Config) { c.Autoscale.Min = 6; c.Autoscale.Max = 2 }},
		{"autoscale roster", func(c *Config) { c.Autoscale.Max = 99 }},
		{"autoscale watermarks", func(c *Config) { c.Autoscale.High = 0.2; c.Autoscale.Low = 0.8 }},
		{"autoscale shards", func(c *Config) { c.Shards = 4; c.Autoscale.Min = 2 }},
	} {
		cfg := base()
		tc.break_(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

// TestSplitBound pins the autoscale bound split to the round-robin
// device deal: shares differ by at most one and sum to the whole.
func TestSplitBound(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{4, 1}, {5, 2}, {8, 4}, {3, 4}, {0, 2}} {
		sum := 0
		for i := 0; i < tc.k; i++ {
			s := splitBound(tc.n, tc.k, i)
			sum += s
			if s < tc.n/tc.k || s > tc.n/tc.k+1 {
				t.Errorf("splitBound(%d,%d,%d) = %d", tc.n, tc.k, i, s)
			}
		}
		if sum != tc.n {
			t.Errorf("splitBound(%d,%d,·) sums to %d", tc.n, tc.k, sum)
		}
	}
}
