package fleet

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
)

// update regenerates the Cycle-engine golden files. The goldens were
// captured from the pre-indexed-event-core engine (PR 4 state) and lock
// the Cycle engine's observable behavior — dispatch decisions, event
// ordering, eviction traces, all cycle accounting — across rewrites of
// the event loop's data structures: run
//
//	go test ./internal/fleet -run CycleEngineGoldens -update
//
// only when the Cycle engine's behavior is *meant* to change.
var update = flag.Bool("update", false, "rewrite the Cycle-engine golden files")

// goldenCases mirrors the three experiments scenarios (FleetOnline,
// FleetHetero, FleetSLO) scaled down to the testkit universe: the same
// roster shapes, policies and SLO modes, small enough that all three
// run in seconds.
func goldenCases(t *testing.T) []struct {
	name string
	cfg  func() Config
	arr  []Arrival
} {
	small := testPipeline(t)
	tiny := pipelineFor(t, tinyConfig())
	poisson := func(jobs int, rate float64, seed uint64) []Arrival {
		arr, err := ArrivalConfig{Kind: Poisson, Jobs: jobs, Rate: rate, Seed: seed}.Generate(testNames())
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}
	slo, err := ArrivalConfig{
		Kind: Poisson, Jobs: 30, Rate: 1.5,
		LatencyFrac: 0.25, Deadline: 60_000, Seed: 0x510,
	}.Generate(testNames())
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		cfg  func() Config
		arr  []Arrival
	}{
		{
			// FleetOnline shape: homogeneous roster, saturating Poisson
			// traffic, the windowed-ILP dispatcher.
			name: "online",
			cfg: func() Config {
				return Config{Devices: homo(small, 4), NC: 2, Policy: sched.ILPSMRA}
			},
			arr: poisson(24, 1.0, 0xF1EE7),
		},
		{
			// FleetHetero shape: mixed generations, placement-aware
			// dispatch with per-type matrices.
			name: "hetero",
			cfg: func() Config {
				return Config{
					Devices: []DeviceSpec{{Pipe: small, Count: 1}, {Pipe: tiny, Count: 2}},
					NC:      2,
					Policy:  sched.ILPSMRA,
				}
			},
			arr: poisson(20, 0.8, 0xE7E0),
		},
		{
			// FleetSLO shape: latency-class arrivals under preemptive
			// SLO dispatch (the eviction trace is part of the golden).
			name: "slo",
			cfg: func() Config {
				return Config{
					Devices: homo(small, 2), NC: 2, Policy: sched.ILPSMRA,
					SLO: SLOConfig{Enabled: true, Preempt: true},
				}
			},
			arr: slo,
		},
	}
}

// goldenSampleEvery is the sampling interval the golden runs enable.
// The runs predate the collector, so passing them with sampling ON is
// itself an assertion: the collector observes without perturbing a
// single dispatch decision or completion cycle.
const goldenSampleEvery = 20_000

// compareGolden asserts got matches the named golden file byte for
// byte, or rewrites it under -update.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to capture): %v", err)
	}
	if got != string(want) {
		t.Errorf("diverged from %s:\n--- want ---\n%s--- got ---\n%s", name, want, got)
	}
}

// TestCycleEngineGoldens asserts the Cycle engine reproduces the
// pre-rewrite dispatcher byte for byte on the three scenario shapes:
// the summary (throughput, utilization, all latency percentiles) and
// the eviction trace together pin every observable decision the event
// loop makes. The runs sample a time series on the side, locked by its
// own golden — and since the summary goldens predate the collector,
// their passing doubles as proof the sampler is purely passive.
func TestCycleEngineGoldens(t *testing.T) {
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			cfg.SampleEvery = goldenSampleEvery
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(tc.arr)
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, "cycle_"+tc.name+".golden", res.Summary()+res.EvictionTrace())
			if res.Series == nil {
				t.Fatal("SampleEvery set but Result.Series is nil")
			}
			var csv strings.Builder
			if err := res.Series.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, "timeseries_"+tc.name+".golden", csv.String())
		})
	}
}
