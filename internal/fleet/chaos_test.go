package fleet

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

// chaosCase is the canonical failure-injection scenario: the closed
// case (every control surface live) plus an explicit outage wave — two
// devices of different types crash mid-run, a third is drained, and
// all three come back before the run ends. Cycles sit well inside the
// case's ~550k-cycle makespan so every kind actually fires.
func chaosCase(t *testing.T, shards int) Config {
	t.Helper()
	cfg := closedCase(t, shards)
	cfg.Chaos = ChaosConfig{Enabled: true, Trace: []ChaosEvent{
		{Cycle: 60_000, Device: 0, Kind: ChaosFail},
		{Cycle: 60_000, Device: 4, Kind: ChaosFail},
		{Cycle: 120_000, Device: 1, Kind: ChaosDrain},
		{Cycle: 250_000, Device: 0, Kind: ChaosRestore},
		{Cycle: 250_000, Device: 4, Kind: ChaosRestore},
		{Cycle: 300_000, Device: 1, Kind: ChaosRestore},
	}}
	return cfg
}

// runChaosCase executes the scenario and renders the full observable
// output, mirroring runClosedCase.
func runChaosCase(t *testing.T, shards int) (Result, string, string) {
	t.Helper()
	f, err := New(chaosCase(t, shards))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := res.Series.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return res, res.Summary() + res.EvictionTrace(), csv.String()
}

// TestChaosGolden locks the failure-injection path's observable output
// at one and two shards — summary with the chaos counter line, the
// eviction trace's trigger=chaos records, and the time series with the
// failed/draining gauge columns. Regenerate with
//
//	go test ./internal/fleet -run ChaosGolden -update
//
// only when chaos behavior is meant to change.
func TestChaosGolden(t *testing.T) {
	for _, shards := range []int{1, 2} {
		res, summary, csv := runChaosCase(t, shards)
		if !res.Chaos {
			t.Fatalf("shards=%d: Result.Chaos = false", shards)
		}
		if res.Failures != 2 || res.Drains != 1 || res.Restores != 3 {
			t.Fatalf("shards=%d: failures/drains/restores = %d/%d/%d, want 2/1/3",
				shards, res.Failures, res.Drains, res.Restores)
		}
		name := "chaos_shard1"
		if shards == 2 {
			name = "chaos_shard2"
		}
		compareGolden(t, name+".golden", summary)
		compareGolden(t, "timeseries_"+name+".golden", csv)
	}
}

// TestChaosShardedDeterminism mirrors TestClosedShardedDeterminism
// with the outage wave live: repeated runs at every shard count must
// produce byte-identical summaries, eviction traces and series, and
// the three shard counts must agree with each other — the chaos
// schedule is a pure function of the configuration, never of shard
// layout. Runs under -race in CI.
func TestChaosShardedDeterminism(t *testing.T) {
	var baseSum string
	for _, shards := range []int{1, 2, 4} {
		_, firstSum, firstCSV := runChaosCase(t, shards)
		for run := 1; run < 3; run++ {
			_, sum, csv := runChaosCase(t, shards)
			if sum != firstSum {
				t.Fatalf("shards=%d run %d summary diverged from run 0:\n--- first ---\n%s--- again ---\n%s",
					shards, run, firstSum, sum)
			}
			if csv != firstCSV {
				t.Fatalf("shards=%d run %d time series diverged from run 0", shards, run)
			}
		}
		if shards == 1 {
			baseSum = firstSum
			continue
		}
		// Aggregate chaos counters and conservation totals must agree
		// across shard counts (per-device series layouts differ, so the
		// summary's shard-independent lines are compared via counters in
		// TestChaosConservation; here the counter lines suffice).
		for _, line := range strings.Split(firstSum, "\n") {
			if strings.HasPrefix(line, "chaos") {
				if !strings.Contains(baseSum, line) {
					t.Errorf("shards=%d chaos line %q not in shard-1 summary", shards, line)
				}
			}
		}
	}
}

// TestChaosConservation is the property test behind failure injection:
// across engines, shard counts and seeds, with a generated failure
// schedule constantly killing and restoring devices, every submitted
// attempt still ends in exactly one of completed, rejected or
// abandoned — a crash may strand progress, never a job.
func TestChaosConservation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		engine EngineMode
		shards int
		policy sched.Policy
	}{
		{"cycle-fcfs", Cycle, 0, sched.FCFS},
		{"cycle-ilp", Cycle, 0, sched.ILPSMRA},
		{"modeled-1", Modeled, 1, sched.ILPSMRA},
		{"modeled-2", Modeled, 2, sched.ILPSMRA},
		{"modeled-4", Modeled, 4, sched.ILPSMRA},
	} {
		for _, seed := range []uint64{1, 2, 0xDEAD} {
			cfg := closedCase(t, tc.shards)
			cfg.Engine = tc.engine
			cfg.Policy = tc.policy
			cfg.Closed.Seed = seed
			cfg.Chaos = ChaosConfig{Enabled: true, MTBF: 150_000, MTTR: 50_000, Seed: seed}
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			label := tc.name
			checkConservation(t, label, res, cfg.Closed.Clients*cfg.Closed.Requests)
			// The run ends when the traffic drains, which may be
			// mid-outage: restores bound failures from below only.
			if res.Failures == 0 || res.Restores > res.Failures {
				t.Errorf("%s seed %d: failures=%d restores=%d; want failures > 0 and restores <= failures",
					label, seed, res.Failures, res.Restores)
			}
		}
	}
}

// TestChaosDrainRetires pins the drain contract against the fail path
// on identical traffic: a drained device's in-flight group retires
// normally (no evictions from the drain), while the same schedule
// spelled as failures evicts whatever was on the devices.
func TestChaosDrainRetires(t *testing.T) {
	run := func(kind ChaosKind) Result {
		cfg := closedCase(t, 1)
		cfg.Chaos = ChaosConfig{Enabled: true, Trace: []ChaosEvent{
			{Cycle: 60_000, Device: 0, Kind: kind},
			{Cycle: 60_000, Device: 1, Kind: kind},
			{Cycle: 250_000, Device: 0, Kind: ChaosRestore},
			{Cycle: 250_000, Device: 1, Kind: ChaosRestore},
		}}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	drain, fail := run(ChaosDrain), run(ChaosFail)
	if drain.ChaosEvictions != 0 {
		t.Errorf("drain evicted %d flights; drains must retire in-flight work", drain.ChaosEvictions)
	}
	if fail.ChaosEvictions == 0 {
		t.Error("fail evicted nothing; outage cycle misses all in-flight work")
	}
	if drain.Drains != 2 || fail.Failures != 2 {
		t.Errorf("drains=%d failures=%d, want 2 each", drain.Drains, fail.Failures)
	}
}

// TestChaosValidation covers the chaos config surface's validation.
func TestChaosValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		break_ func(*Config)
	}{
		{"device out of range", func(c *Config) {
			c.Chaos.Trace = []ChaosEvent{{Cycle: 1, Device: 99, Kind: ChaosFail}}
		}},
		{"negative device", func(c *Config) {
			c.Chaos.Trace = []ChaosEvent{{Cycle: 1, Device: -1, Kind: ChaosFail}}
		}},
		{"unknown kind", func(c *Config) {
			c.Chaos.Trace = []ChaosEvent{{Cycle: 1, Device: 0, Kind: ChaosKind(9)}}
		}},
		{"trace and generator", func(c *Config) { c.Chaos.MTBF, c.Chaos.MTTR = 100, 100 }},
		{"neither trace nor generator", func(c *Config) { c.Chaos.Trace = nil }},
		{"mtbf without mttr", func(c *Config) { c.Chaos.Trace = nil; c.Chaos.MTBF = 100 }},
	} {
		cfg := chaosCase(t, 1)
		tc.break_(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
	// The generator spelling with sane parameters must be accepted.
	cfg := chaosCase(t, 1)
	cfg.Chaos = ChaosConfig{Enabled: true, MTBF: 100_000, MTTR: 20_000}
	if _, err := New(cfg); err != nil {
		t.Errorf("generator config rejected: %v", err)
	}
}

// TestParseChaosSpec covers the sweep-axis spelling: off, generator
// and trace forms, and the malformed variants in between.
func TestParseChaosSpec(t *testing.T) {
	for _, tc := range []struct {
		in      string
		enabled bool
		wantErr bool
	}{
		{"", false, false},
		{"off", false, false},
		{"OFF", false, false},
		{"mtbf:100000:20000", true, false},
		{"MTBF:100000:20000:500000", true, false},
		{"mtbf:0:100", false, true},
		{"mtbf:100", false, true},
		{"mtbf:100:200:0", false, true},
		{"fail@60000:0,restore@250000:0", true, false},
		{"explode@5:0", false, true},
	} {
		cfg, err := ParseChaosSpec(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseChaosSpec(%q) error = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && cfg.Enabled != tc.enabled {
			t.Errorf("ParseChaosSpec(%q).Enabled = %v, want %v", tc.in, cfg.Enabled, tc.enabled)
		}
	}
	// Trace specs round-trip through the canonical rendering.
	spec := "fail@60000:0,drain@120000:1,restore@250000:0"
	cfg, err := ParseChaosSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatChaos(cfg.Trace); got != spec {
		t.Errorf("FormatChaos round-trip = %q, want %q", got, spec)
	}
}
