// Package fleet is the online layer of the reproduction: jobs arrive
// over simulated time to a fleet of N simulated GPUs, and the paper's
// classification / interference / matching machinery is applied
// incrementally to the live queue instead of to a static batch.
//
// The paper's evaluation (and internal/sched) is offline: the whole
// queue is known up front, groups are formed once and run to
// completion. A production deployment sees neither — applications
// arrive continuously, and a device that frees up must choose its next
// co-run group from whatever is waiting *now*. Package fleet models
// exactly that as a deterministic discrete-event simulation:
//
//   - arrival processes (Poisson, bursty on-off, fixed trace) generate
//     a deterministic stream of jobs from a seed, each optionally
//     tagged with a service-level class and deadline (arrivals.go);
//   - whenever a device frees up, an online dispatcher forms the next
//     co-run group from the current queue — greedily when the queue is
//     shallow (latency matters more than packing) and with a windowed
//     ILP over the queue prefix when it is deep. The window adapts to
//     queue depth and class mix, and both scorers can weight pattern
//     efficiency by member wait time (dispatch.go);
//   - group executions run concurrently on a worker pool, one in-flight
//     group per device, through sched.Scheduler.RunGroup — the same
//     single-group path the offline scheduler uses (sim.go);
//   - per-job latency (wait, turnaround, deadline slack) and per-device
//     utilization are accounted and summarized with stats.Summarize
//     (report.go), and persist as per-job CSV artifacts (csv.go).
//
// # The event core and engine modes
//
// The event loop's three sources — arrivals, resolved completions, and
// in-flight groups bounded from below — are indexed: min-heaps order
// completions and completion bounds, an idle-device heap yields the
// fastest free device in placement order, and the live queue is a
// head-indexed priority queue with binary-search insertion (heap.go,
// queue.go). One event costs O(log n) whatever the fleet size, which is
// what lets the same loop serve 4 devices × 60 jobs and 64 devices ×
// 100k jobs.
//
// Config.Engine selects how a dispatched group's completion is learned
// (engine.go). Cycle simulates every group cycle-accurately — the
// reference. Modeled computes completions analytically from solo
// profiles and the interference matrix (each member's solo duration
// times its match.MemberSlowdown under the group's class pattern) with
// zero simulations: the model the dispatcher already trusts for lower
// bounds, preemption tests and checkpoint accounting, promoted to
// authoritative. Hybrid simulates the first HybridWarm occurrences of
// each (device type, composition), calibrates the model against them,
// and serves the rest from the calibrated model, reporting the fidelity
// delta in Result.Summary.
//
// # Service-level classes and preemption
//
// Jobs come in two SLO classes (slo.go): batch work that optimizes
// throughput, and latency work that carries a relative deadline. With
// SLOConfig.Enabled, latency jobs queue ahead of batch work and seed
// group formation first. With SLOConfig.Preempt, the dispatcher may
// additionally evict a running all-batch group when a waiting latency
// job would miss its deadline even if dispatched the instant the next
// device is predicted to free. The decision is deliberately asymmetric:
// "will it miss?" assumes the least favorable co-partner from the
// interference matrix (missing a needed rescue forfeits the deadline),
// while "can eviction save it?" assumes the solo optimum (a possible
// rescue is worth one batch group's progress). Evicted jobs re-enter
// the queue with their completed fraction checkpointed from the
// solo-profile progress model, capped at MaxCheckpoint; a re-dispatch
// runs the un-preserved remainder plus an explicit restart cost
// (RestartFrac). Groups containing a latency member are never evicted.
//
// # Heterogeneous rosters
//
// The fleet may be heterogeneous: the roster (Config.Devices) is a list
// of DeviceSpec entries, each contributing Count devices of one device
// type backed by its own calibrated core.Pipeline. Classification,
// interference matrices and solo profiles are all per device type —
// the same application can fall in different classes on different
// generations — so the dispatcher is placement-aware: when a device
// frees, group formation scores candidate groups with that device
// type's matrix, and the event loop's completion lower bounds use that
// device's peak issue rate and solo profiles. Devices are offered work
// fastest-first (descending peak IPC, ties by device index), so heavy
// backlogs drain through the big devices first.
//
// Everything is a pure function of the seed and configuration: two runs
// with the same inputs produce byte-identical summaries and eviction
// traces, regardless of how the host schedules the worker goroutines.
package fleet
