package fleet

import (
	"fmt"
	"strings"

	"repro/internal/classify"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/stats"
)

// JobRecord is one job's lifecycle in fleet time (cycles).
type JobRecord struct {
	// ID is the arrival index.
	ID int
	// Name and Class identify the application.
	Name  string
	Class classify.Class
	// SLO is the job's service-level class; Deadline is the latency
	// job's relative deadline in cycles from arrival (0 for batch).
	SLO      SLOClass
	Deadline uint64
	// Arrival, Dispatch and Complete are absolute fleet cycles.
	// Dispatch is the job's final (completing) dispatch; preempted
	// attempts are counted by Evictions and recorded in
	// Result.Evictions.
	Arrival  uint64
	Dispatch uint64
	Complete uint64
	// Device is which GPU ran the job (to completion).
	Device int
	// Evictions counts how many times the job was preempted before it
	// completed.
	Evictions int
	// Outcome is how the job left the system: Done (the only outcome in
	// open-loop runs without admission control), Rejected by admission,
	// or Abandoned by its client's timeout.
	Outcome JobOutcome
	// Attempts counts submissions, retries included (always 1 outside
	// closed-loop runs).
	Attempts int
}

// JobOutcome is a job's terminal state.
type JobOutcome uint8

const (
	// Done completed normally (the zero value, so pre-control records
	// read as completed).
	Done JobOutcome = iota
	// Rejected was refused by admission control and never ran.
	Rejected
	// Abandoned timed out in the queue and was withdrawn by its client.
	Abandoned
)

// String names the outcome as the CSV spells it.
func (o JobOutcome) String() string {
	switch o {
	case Done:
		return "done"
	case Rejected:
		return "rejected"
	case Abandoned:
		return "abandoned"
	default:
		return fmt.Sprintf("JobOutcome(%d)", int(o))
	}
}

// Wait is the queueing delay before the final dispatch (0 for jobs
// that never dispatched — rejected or abandoned ones).
func (j JobRecord) Wait() uint64 {
	if j.Dispatch < j.Arrival {
		return 0
	}
	return j.Dispatch - j.Arrival
}

// Turnaround is arrival to completion (0 for jobs that never
// completed).
func (j JobRecord) Turnaround() uint64 {
	if j.Complete < j.Arrival {
		return 0
	}
	return j.Complete - j.Arrival
}

// Missed reports whether a latency job completed past its deadline.
// Batch jobs never miss.
func (j JobRecord) Missed() bool {
	return j.SLO == Latency && j.Complete > j.Arrival+j.Deadline
}

// Slack is the margin to the deadline in cycles (negative = missed),
// meaningful for latency jobs only.
func (j JobRecord) Slack() int64 {
	return int64(j.Arrival+j.Deadline) - int64(j.Complete)
}

// Result is a whole fleet run's accounting.
type Result struct {
	Policy sched.Policy
	// Engine is the completion engine the run used.
	Engine EngineMode
	// Roster is the fleet composition as the CLI spells it, e.g.
	// "2xGTX480-60SM,2xSmall-8SM".
	Roster string
	// Devices is the total device count across the roster.
	Devices int
	NC      int
	// Shards is how many parallel event loops produced the result (0 or
	// 1 = the classic single loop). Counts above 1 partition the
	// backlog, so the accounting is that of a K-way-split fleet;
	// repeat runs at the same count are byte-identical.
	Shards int
	// Jobs holds every job in arrival order.
	Jobs []JobRecord
	// Makespan is when the last device went idle.
	Makespan uint64
	// ThreadInstructions sums retired instructions across the fleet.
	ThreadInstructions uint64
	// DeviceBusy is per-device busy cycles.
	DeviceBusy []uint64
	// DeviceConfig is each device's configuration name, indexed like
	// DeviceBusy (heterogeneous rosters mix names).
	DeviceConfig []string
	// Groups counts completed dispatches; GreedyGroups/ILPGroups split
	// them by how the group was formed. Preempted dispatches are not
	// counted here — they appear in Evictions.
	Groups       int
	GreedyGroups int
	ILPGroups    int
	// SMMoves counts completed SM reallocations (ILPSMRA only).
	SMMoves int
	// CycleGroups/ModeledGroups split Groups by how the completion was
	// obtained: cycle-accurate simulation vs the analytic model. Under
	// the Cycle engine every group is a CycleGroup; under Modeled every
	// group is a ModeledGroup; Hybrid mixes.
	CycleGroups   int
	ModeledGroups int
	// ModelDelta is the Hybrid engine's fidelity measure: the mean
	// absolute relative error between the raw model's and the
	// simulation's per-member completion cycles over the calibration
	// runs (0 outside Hybrid or before any calibration resolved).
	ModelDelta float64
	// Evictions records every preemption in event order.
	Evictions []EvictionRecord
	// Series is the per-interval time series sampled during the run,
	// present exactly when Config.SampleEvery > 0 (see internal/obs for
	// the column layout and renderings). Like the summary, it is
	// deterministic: same seed and configuration, byte-identical series.
	Series *obs.Series
	// Closed, Admission, Autoscale and Chaos record which control
	// surfaces the run had enabled; the control counters below are only
	// meaningful (and only rendered) when one of them is set.
	Closed    bool
	Admission bool
	Autoscale bool
	Chaos     bool
	// Submitted counts submissions (closed-loop attempts include
	// retries); Rejected, Degraded and Abandoned are admission and
	// timeout outcomes per attempt; Retried counts resubmissions.
	// Conservation: after a drained run, Submitted == completed jobs +
	// Rejected + Abandoned.
	Submitted int
	Rejected  int
	Degraded  int
	Abandoned int
	Retried   int
	// Provisions and Decommissions count autoscale roster changes.
	Provisions    int
	Decommissions int
	// Failures, Drains and Restores count executed chaos events;
	// ChaosEvictions counts the in-flight groups failures killed (also
	// present in Evictions with TriggerJob = chaosTriggerID).
	Failures       int
	Drains         int
	Restores       int
	ChaosEvictions int
}

// CompletedJobs counts jobs that ran to completion.
func (r Result) CompletedJobs() int {
	n := 0
	for _, j := range r.Jobs {
		if j.Outcome == Done {
			n++
		}
	}
	return n
}

// CompletedLatencyJobs counts latency-class jobs that ran to
// completion — the deadline-miss denominator (rejected or abandoned
// jobs never had a completion to judge).
func (r Result) CompletedLatencyJobs() int {
	n := 0
	for _, j := range r.Jobs {
		if j.SLO == Latency && j.Outcome == Done {
			n++
		}
	}
	return n
}

// Throughput is the fleet analogue of Equation 1.1: retired thread
// instructions over the fleet makespan. Devices run in parallel, so
// with N busy devices this approaches N times a single device's rate.
func (r Result) Throughput() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.ThreadInstructions) / float64(r.Makespan)
}

// Utilization is the fraction of the makespan device d spent executing.
func (r Result) Utilization(d int) float64 {
	if r.Makespan == 0 || d < 0 || d >= len(r.DeviceBusy) {
		return 0
	}
	return float64(r.DeviceBusy[d]) / float64(r.Makespan)
}

// MeanUtilization averages Utilization over the fleet.
func (r Result) MeanUtilization() float64 {
	if len(r.DeviceBusy) == 0 {
		return 0
	}
	sum := 0.0
	for d := range r.DeviceBusy {
		sum += r.Utilization(d)
	}
	return sum / float64(len(r.DeviceBusy))
}

// Waits returns every completed job's queueing delay in kilocycles
// (rejected and abandoned jobs have no dispatch to measure).
func (r Result) Waits() []float64 {
	out := make([]float64, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if j.Outcome == Done {
			out = append(out, float64(j.Wait())/1000)
		}
	}
	return out
}

// Turnarounds returns every completed job's turnaround in kilocycles.
func (r Result) Turnarounds() []float64 {
	out := make([]float64, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if j.Outcome == Done {
			out = append(out, float64(j.Turnaround())/1000)
		}
	}
	return out
}

// WaitSummary summarizes queueing delay (kilocycles).
func (r Result) WaitSummary() stats.Summary { return stats.Summarize(r.Waits()) }

// TurnaroundSummary summarizes turnaround (kilocycles).
func (r Result) TurnaroundSummary() stats.Summary { return stats.Summarize(r.Turnarounds()) }

// classSamples projects the jobs of one SLO class through f, in
// kilocycles.
func (r Result) classSamples(c SLOClass, f func(JobRecord) float64) []float64 {
	var out []float64
	for _, j := range r.Jobs {
		if j.SLO == c && j.Outcome == Done {
			out = append(out, f(j)/1000)
		}
	}
	return out
}

// WaitSummaryFor summarizes queueing delay (kilocycles) for one SLO
// class.
func (r Result) WaitSummaryFor(c SLOClass) stats.Summary {
	return stats.Summarize(r.classSamples(c, func(j JobRecord) float64 { return float64(j.Wait()) }))
}

// TurnaroundSummaryFor summarizes turnaround (kilocycles) for one SLO
// class.
func (r Result) TurnaroundSummaryFor(c SLOClass) stats.Summary {
	return stats.Summarize(r.classSamples(c, func(j JobRecord) float64 { return float64(j.Turnaround()) }))
}

// LatencySlacks returns every latency job's deadline slack in
// kilocycles (negative = missed), in arrival order.
func (r Result) LatencySlacks() []float64 {
	return r.classSamples(Latency, func(j JobRecord) float64 { return float64(j.Slack()) })
}

// SlackSummary summarizes the latency-class deadline slack
// (kilocycles); its percentiles are the per-class deadline-miss
// percentiles (P50 < 0 means the median latency job missed).
func (r Result) SlackSummary() stats.Summary { return stats.Summarize(r.LatencySlacks()) }

// LatencyJobs counts jobs of the latency class.
func (r Result) LatencyJobs() int {
	n := 0
	for _, j := range r.Jobs {
		if j.SLO == Latency {
			n++
		}
	}
	return n
}

// DeadlineMisses counts latency jobs that completed past their
// deadline.
func (r Result) DeadlineMisses() int {
	n := 0
	for _, j := range r.Jobs {
		if j.Missed() {
			n++
		}
	}
	return n
}

// MissRate is the fraction of completed latency jobs that missed their
// deadline (0 when there are none). Rejected and abandoned jobs are
// excluded from the denominator — admission shedding load must not
// masquerade as meeting deadlines for jobs it never ran.
func (r Result) MissRate() float64 {
	if n := r.CompletedLatencyJobs(); n > 0 {
		return float64(r.DeadlineMisses()) / float64(n)
	}
	return 0
}

// WastedCycles sums the eviction records' wasted work.
func (r Result) WastedCycles() uint64 {
	sum := uint64(0)
	for _, e := range r.Evictions {
		sum += e.Wasted
	}
	return sum
}

// EvictionTrace renders every preemption as one line per event, in
// event order — the deterministic trace the preemption golden test
// compares across runs. Empty string when nothing was evicted.
func (r Result) EvictionTrace() string {
	if len(r.Evictions) == 0 {
		return ""
	}
	lines := make([]string, len(r.Evictions))
	for i, e := range r.Evictions {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n") + "\n"
}

// deviceLabel names device d's configuration ("?" when unknown).
func (r Result) deviceLabel(d int) string {
	if d < len(r.DeviceConfig) {
		return r.DeviceConfig[d]
	}
	return "?"
}

// Summary renders the run as a deterministic multi-line report: two
// runs with the same seed and configuration produce byte-identical
// output (the reproducibility contract cmd/fleet and the tests rely
// on).
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: policy=%v devices=%d [%s] nc=%d jobs=%d\n", r.Policy, r.Devices, r.Roster, r.NC, len(r.Jobs))
	fmt.Fprintf(&b, "makespan    %d cycles\n", r.Makespan)
	fmt.Fprintf(&b, "throughput  %.2f instructions/cycle\n", r.Throughput())
	// SM moves is printed unconditionally — zero for non-SMRA policies —
	// so summaries keep one shape across policies and stay line-diffable.
	fmt.Fprintf(&b, "groups      %d (greedy %d, ilp %d), %d SM moves\n", r.Groups, r.GreedyGroups, r.ILPGroups, r.SMMoves)
	// The engine line appears exactly for the non-default engines, so
	// Cycle-mode summaries keep the historical (golden-locked) shape.
	if r.Engine != Cycle {
		fmt.Fprintf(&b, "engine      %v (%d cycle-accurate, %d modeled", r.Engine, r.CycleGroups, r.ModeledGroups)
		if r.Engine == Hybrid {
			fmt.Fprintf(&b, ", model delta %.1f%%", 100*r.ModelDelta)
		}
		b.WriteString(")\n")
	}
	// The control block appears exactly when a control surface was on,
	// so open-loop runs keep the historical (golden-locked) shape.
	if r.Closed || r.Admission || r.Autoscale || r.Chaos {
		fmt.Fprintf(&b, "control     submitted=%d completed=%d rejected=%d degraded=%d abandoned=%d retried=%d\n",
			r.Submitted, r.CompletedJobs(), r.Rejected, r.Degraded, r.Abandoned, r.Retried)
	}
	if r.Autoscale {
		fmt.Fprintf(&b, "autoscale   provisions=%d decommissions=%d\n", r.Provisions, r.Decommissions)
	}
	if r.Chaos {
		fmt.Fprintf(&b, "chaos       failures=%d drains=%d restores=%d evictions=%d\n",
			r.Failures, r.Drains, r.Restores, r.ChaosEvictions)
	}
	// The shard count is deliberately absent: the summary reports
	// simulated accounting only, and omitting the knob keeps shards=1
	// byte-identical to the pre-sharding format (Result.Shards carries
	// the count programmatically; cmd/fleet echoes it in its header).
	b.WriteString("device util")
	for d := range r.DeviceBusy {
		fmt.Fprintf(&b, " d%d[%s]=%.1f%%", d, r.deviceLabel(d), 100*r.Utilization(d))
	}
	fmt.Fprintf(&b, " mean=%.1f%%\n", 100*r.MeanUtilization())
	fmt.Fprintf(&b, "wait        (kcycles) %v\n", r.WaitSummary())
	fmt.Fprintf(&b, "turnaround  (kcycles) %v\n", r.TurnaroundSummary())
	// The per-class block appears exactly when the run carries SLO
	// classes, so class-blind runs keep the historical summary shape.
	if r.LatencyJobs() > 0 || len(r.Evictions) > 0 {
		fmt.Fprintf(&b, "latency wait       (kcycles) %v\n", r.WaitSummaryFor(Latency))
		fmt.Fprintf(&b, "latency turnaround (kcycles) %v\n", r.TurnaroundSummaryFor(Latency))
		fmt.Fprintf(&b, "latency slack      (kcycles) %v\n", r.SlackSummary())
		fmt.Fprintf(&b, "batch wait         (kcycles) %v\n", r.WaitSummaryFor(Batch))
		fmt.Fprintf(&b, "batch turnaround   (kcycles) %v\n", r.TurnaroundSummaryFor(Batch))
		fmt.Fprintf(&b, "deadline-miss      %d/%d (%.1f%%)\n", r.DeadlineMisses(), r.CompletedLatencyJobs(), 100*r.MissRate())
		fmt.Fprintf(&b, "evictions          %d (wasted %d cycles)\n", len(r.Evictions), r.WastedCycles())
	}
	return b.String()
}
