package fleet

import (
	"fmt"
	"strings"

	"repro/internal/classify"
	"repro/internal/sched"
	"repro/internal/stats"
)

// JobRecord is one job's lifecycle in fleet time (cycles).
type JobRecord struct {
	// ID is the arrival index.
	ID int
	// Name and Class identify the application.
	Name  string
	Class classify.Class
	// Arrival, Dispatch and Complete are absolute fleet cycles.
	Arrival  uint64
	Dispatch uint64
	Complete uint64
	// Device is which GPU ran the job.
	Device int
}

// Wait is the queueing delay before dispatch.
func (j JobRecord) Wait() uint64 { return j.Dispatch - j.Arrival }

// Turnaround is arrival to completion.
func (j JobRecord) Turnaround() uint64 { return j.Complete - j.Arrival }

// Result is a whole fleet run's accounting.
type Result struct {
	Policy sched.Policy
	// Roster is the fleet composition as the CLI spells it, e.g.
	// "2xGTX480-60SM,2xSmall-8SM".
	Roster string
	// Devices is the total device count across the roster.
	Devices int
	NC      int
	// Jobs holds every job in arrival order.
	Jobs []JobRecord
	// Makespan is when the last device went idle.
	Makespan uint64
	// ThreadInstructions sums retired instructions across the fleet.
	ThreadInstructions uint64
	// DeviceBusy is per-device busy cycles.
	DeviceBusy []uint64
	// DeviceConfig is each device's configuration name, indexed like
	// DeviceBusy (heterogeneous rosters mix names).
	DeviceConfig []string
	// Groups counts dispatches; GreedyGroups/ILPGroups split them by
	// how the group was formed.
	Groups       int
	GreedyGroups int
	ILPGroups    int
	// SMMoves counts completed SM reallocations (ILPSMRA only).
	SMMoves int
}

// Throughput is the fleet analogue of Equation 1.1: retired thread
// instructions over the fleet makespan. Devices run in parallel, so
// with N busy devices this approaches N times a single device's rate.
func (r Result) Throughput() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.ThreadInstructions) / float64(r.Makespan)
}

// Utilization is the fraction of the makespan device d spent executing.
func (r Result) Utilization(d int) float64 {
	if r.Makespan == 0 || d < 0 || d >= len(r.DeviceBusy) {
		return 0
	}
	return float64(r.DeviceBusy[d]) / float64(r.Makespan)
}

// MeanUtilization averages Utilization over the fleet.
func (r Result) MeanUtilization() float64 {
	if len(r.DeviceBusy) == 0 {
		return 0
	}
	sum := 0.0
	for d := range r.DeviceBusy {
		sum += r.Utilization(d)
	}
	return sum / float64(len(r.DeviceBusy))
}

// Waits returns every job's queueing delay in kilocycles.
func (r Result) Waits() []float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = float64(j.Wait()) / 1000
	}
	return out
}

// Turnarounds returns every job's turnaround in kilocycles.
func (r Result) Turnarounds() []float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = float64(j.Turnaround()) / 1000
	}
	return out
}

// WaitSummary summarizes queueing delay (kilocycles).
func (r Result) WaitSummary() stats.Summary { return stats.Summarize(r.Waits()) }

// TurnaroundSummary summarizes turnaround (kilocycles).
func (r Result) TurnaroundSummary() stats.Summary { return stats.Summarize(r.Turnarounds()) }

// deviceLabel names device d's configuration ("?" when unknown).
func (r Result) deviceLabel(d int) string {
	if d < len(r.DeviceConfig) {
		return r.DeviceConfig[d]
	}
	return "?"
}

// Summary renders the run as a deterministic multi-line report: two
// runs with the same seed and configuration produce byte-identical
// output (the reproducibility contract cmd/fleet and the tests rely
// on).
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: policy=%v devices=%d [%s] nc=%d jobs=%d\n", r.Policy, r.Devices, r.Roster, r.NC, len(r.Jobs))
	fmt.Fprintf(&b, "makespan    %d cycles\n", r.Makespan)
	fmt.Fprintf(&b, "throughput  %.2f instructions/cycle\n", r.Throughput())
	// SM moves is printed unconditionally — zero for non-SMRA policies —
	// so summaries keep one shape across policies and stay line-diffable.
	fmt.Fprintf(&b, "groups      %d (greedy %d, ilp %d), %d SM moves\n", r.Groups, r.GreedyGroups, r.ILPGroups, r.SMMoves)
	b.WriteString("device util")
	for d := range r.DeviceBusy {
		fmt.Fprintf(&b, " d%d[%s]=%.1f%%", d, r.deviceLabel(d), 100*r.Utilization(d))
	}
	fmt.Fprintf(&b, " mean=%.1f%%\n", 100*r.MeanUtilization())
	fmt.Fprintf(&b, "wait        (kcycles) %v\n", r.WaitSummary())
	fmt.Fprintf(&b, "turnaround  (kcycles) %v\n", r.TurnaroundSummary())
	return b.String()
}
