package fleet

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/match"
	"repro/internal/sched"
	"repro/internal/stats"
)

// EngineMode selects how the fleet learns a dispatched group's
// completion.
type EngineMode int

const (
	// Cycle simulates every dispatched group cycle-accurately through
	// sched.RunGroup — the reference engine, byte-identical to the
	// pre-engine-mode fleet.
	Cycle EngineMode = iota
	// Modeled computes group completions analytically from the solo
	// profiles and the interference matrix (each member's solo duration
	// scaled by its match.MemberSlowdown under the group's class
	// pattern) with zero cycle-accurate simulations. This is the same
	// model the dispatcher already trusts for completion lower bounds,
	// preemption would-miss tests and checkpoint accounting — promoted
	// from advisory to authoritative, which is what lets a 256-device,
	// 100k-job run finish in seconds.
	Modeled
	// Hybrid runs the first Config.HybridWarm occurrences of each
	// (device type, group composition) cycle-accurately, calibrates the
	// analytic model against them, and serves every later occurrence
	// from the calibrated model. Result.Summary reports the model's
	// fidelity delta over the calibration runs.
	Hybrid
)

// String names the mode as the CLI spells it.
func (e EngineMode) String() string {
	switch e {
	case Cycle:
		return "cycle"
	case Modeled:
		return "modeled"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("EngineMode(%d)", int(e))
	}
}

// ParseEngine parses the CLI spelling.
func ParseEngine(s string) (EngineMode, error) {
	switch strings.ToLower(s) {
	case "cycle", "":
		return Cycle, nil
	case "modeled", "model":
		return Modeled, nil
	case "hybrid":
		return Hybrid, nil
	default:
		return 0, fmt.Errorf("fleet: unknown engine %q (cycle, modeled, hybrid)", s)
	}
}

// DefaultHybridWarm is how many occurrences of each (device type,
// composition) the Hybrid engine simulates before trusting the model.
const DefaultHybridWarm = 2

// modelReport predicts a group's execution analytically, in the shape
// RunGroup would report it: per-member end cycles and retired
// instructions. Member i's end is its solo duration scaled by the
// interference matrix's predicted slowdown under the group's class
// pattern (Equation 3.4's s_i ingredient); a lone member runs at solo
// speed exactly, so Serial dispatch is identical under every engine.
// calib scales the modeled ends (1 = the raw model; the Hybrid engine
// passes the mean observed actual/model ratio for the composition).
func (f *Fleet) modelReport(members []*job, t int, calib float64) (sched.GroupReport, error) {
	m := f.types[t].Matrix()
	var pat match.Pattern
	if m != nil && len(members) > 1 {
		pat = make(match.Pattern, len(members))
		for i, j := range members {
			pat[i] = j.apps[t].Class
		}
	}
	rep := sched.GroupReport{}
	for i, j := range members {
		sp := j.solo[t]
		if !sp.ok {
			return sched.GroupReport{}, fmt.Errorf("fleet: no solo profile for %q on %s (modeled engine needs a calibrated universe)",
				j.name(), f.types[t].Config().Name)
		}
		s := 1.0
		if pat != nil {
			s = match.MemberSlowdown(m, pat, i)
		}
		end := uint64(math.Ceil(float64(sp.cycles) * s * calib))
		if end < 1 {
			end = 1
		}
		rep.Apps = append(rep.Apps, j.name())
		rep.Classes = append(rep.Classes, j.apps[t].Class)
		rep.Stats = append(rep.Stats, stats.App{
			Name:               j.name(),
			ThreadInstructions: sp.instrs,
			EndCycle:           end,
			Done:               true,
		})
		if end > rep.Cycles {
			rep.Cycles = end
		}
	}
	return rep, nil
}

// modelReportInto is modelReport rewritten for the steady state: the
// prediction lands in the flight's own (recycled) report buffers and
// the class pattern in the dispatcher's scratch, so a modeled dispatch
// allocates nothing once the pools are warm. Semantics are identical
// to modelReport — same solo data, same slowdowns, same rounding.
//
//simlint:hotpath
func (d *dispatcher) modelReportInto(fl *inflight, calib float64) error {
	f := d.f
	t := fl.typ
	m := f.types[t].Matrix()
	d.patBuf = d.patBuf[:0]
	if m != nil && len(fl.jobs) > 1 {
		for _, j := range fl.jobs {
			d.patBuf = append(d.patBuf, j.apps[t].Class)
		}
	}
	pat := d.patBuf
	rep := &fl.rep
	rep.Apps = rep.Apps[:0]
	rep.Classes = rep.Classes[:0]
	rep.Stats = rep.Stats[:0]
	rep.Cycles = 0
	rep.SMMoves = 0
	for i, j := range fl.jobs {
		sp := j.solo[t]
		if !sp.ok {
			return d.missingSolo(j, t)
		}
		s := 1.0
		if len(pat) > 0 {
			s = match.MemberSlowdown(m, pat, i)
		}
		end := uint64(math.Ceil(float64(sp.cycles) * s * calib))
		if end < 1 {
			end = 1
		}
		rep.Apps = append(rep.Apps, j.name())
		rep.Classes = append(rep.Classes, j.apps[t].Class)
		rep.Stats = append(rep.Stats, stats.App{
			Name:               j.name(),
			ThreadInstructions: sp.instrs,
			EndCycle:           end,
			Done:               true,
		})
		if end > rep.Cycles {
			rep.Cycles = end
		}
	}
	return nil
}

// missingSolo builds the cold-path error for an uncalibrated member
// (kept out of the hot-path functions so they stay fmt-free).
func (d *dispatcher) missingSolo(j *job, t int) error {
	return fmt.Errorf("fleet: no solo profile for %q on %s (modeled engine needs a calibrated universe)",
		j.name(), d.f.types[t].Config().Name)
}

// commitModeled resolves a modeled flight at dispatch time: one
// analytic report and one completion-heap event cover the whole group,
// where the group's members each used to pay their own allocations.
// The flight is born resolved — its pre-closed done channel keeps
// eviction bookkeeping uniform with simulated flights.
//
//simlint:hotpath
func (d *dispatcher) commitModeled(fl *inflight, now uint64, calib float64, resolved *flightHeap) error {
	if err := d.modelReportInto(fl, calib); err != nil {
		return err
	}
	fl.modeled = true
	fl.done = closedDone
	fl.state = flightResolved
	fl.complete = now + d.f.flightCycles(fl)
	fl.earliest = fl.complete
	resolved.push(fl)
	return nil
}

// compositionKey identifies a (device type, group composition) for the
// Hybrid engine's calibration table: the member names sorted, so the
// same multiset dispatched in a different draw order shares one
// calibration.
func compositionKey(members []*job, t int) string {
	names := make([]string, len(members))
	for i, j := range members {
		names[i] = j.name()
	}
	sort.Strings(names)
	return fmt.Sprintf("t%d:%s", t, strings.Join(names, "|"))
}

// hybridCal accumulates the Hybrid engine's per-composition
// calibration: how many cycle-accurate occurrences ran (or are in
// flight), and the observed actual/model ratios from the resolved ones.
type hybridCal struct {
	// started counts cycle-accurate dispatches of this composition,
	// incremented at dispatch time so concurrent warm runs of one
	// composition cannot overshoot HybridWarm.
	started int
	// n, ratio and delta aggregate over resolved calibration runs:
	// ratio sums the per-run mean actual/model member-end ratio (the
	// correction later modeled dispatches apply), delta the per-run mean
	// absolute relative error (the fidelity the summary reports).
	n     int
	ratio float64
	delta float64
}

// calibration returns the model correction for a composition: the mean
// observed actual/model ratio, or 1 before any calibration run
// resolved.
func (c *hybridCal) calibration() float64 {
	if c == nil || c.n == 0 {
		return 1
	}
	return c.ratio / float64(c.n)
}

// observe folds one resolved cycle-accurate run into the calibration:
// actual and model are the per-member end cycles of the same group.
func (c *hybridCal) observe(actual, model []uint64) {
	if len(actual) == 0 || len(actual) != len(model) {
		return
	}
	ratio, delta := 0.0, 0.0
	for i := range actual {
		a, m := float64(actual[i]), float64(model[i])
		if a <= 0 || m <= 0 {
			return
		}
		ratio += a / m
		delta += math.Abs(a-m) / a
	}
	n := float64(len(actual))
	c.ratio += ratio / n
	c.delta += delta / n
	c.n++
}
