package fleet

import (
	"fmt"
	"strings"
)

// SLOClass is a job's service-level class. The dispatcher only ever
// distinguishes two: work that must meet a deadline and work that only
// cares about throughput.
type SLOClass int

const (
	// Batch jobs optimize throughput; they have no deadline and may be
	// evicted (with checkpointed progress) to protect latency work.
	Batch SLOClass = iota
	// Latency jobs carry a deadline. They are dispatched ahead of batch
	// work and are never evicted.
	Latency
)

// String names the class as the CLI and summaries spell it.
func (c SLOClass) String() string {
	switch c {
	case Batch:
		return "batch"
	case Latency:
		return "latency"
	default:
		return fmt.Sprintf("SLOClass(%d)", int(c))
	}
}

// ParseSLOClass parses the CLI spelling.
func ParseSLOClass(s string) (SLOClass, error) {
	switch strings.ToLower(s) {
	case "batch":
		return Batch, nil
	case "latency", "lat":
		return Latency, nil
	default:
		return 0, fmt.Errorf("fleet: unknown SLO class %q (batch, latency)", s)
	}
}

// ParseSLOMode maps the CLI's -slo mode spellings to a dispatch
// configuration: "off" is class-blind, "priority" queues latency jobs
// first, "preempt" additionally evicts running batch groups to save
// deadlines. Shared by cmd/fleet and the sweep grid so both spell the
// modes identically.
func ParseSLOMode(s string) (SLOConfig, error) {
	switch strings.ToLower(s) {
	case "off":
		return SLOConfig{}, nil
	case "priority":
		return SLOConfig{Enabled: true}, nil
	case "preempt":
		return SLOConfig{Enabled: true, Preempt: true}, nil
	default:
		return SLOConfig{}, fmt.Errorf("fleet: unknown SLO mode %q (off, priority, preempt)", s)
	}
}

// SLOConfig parameterizes class-aware dispatch. The zero value disables
// it entirely, reproducing the class-blind dispatcher of earlier
// revisions.
type SLOConfig struct {
	// Enabled turns on class-aware dispatch: latency jobs queue ahead of
	// batch jobs and seed group formation first.
	Enabled bool
	// Preempt allows the dispatcher to evict a running batch-only group
	// when a waiting latency job would miss its deadline even if
	// dispatched the instant the next device is predicted to free (under
	// the solo-progress model). Evicted jobs re-enter the queue with
	// their completed fraction checkpointed.
	Preempt bool
	// RestartFrac is the restart cost of a checkpointed job, as a
	// fraction of its solo duration on the device that re-runs it, paid
	// once per re-dispatch (0 selects DefaultRestartFrac). It models
	// state re-materialization: reloading inputs and replaying the
	// un-checkpointed tail.
	RestartFrac float64
	// MaxCheckpoint caps the preserved completed fraction (0 selects
	// DefaultMaxCheckpoint): a job evicted arbitrarily late still has to
	// re-run at least 1-MaxCheckpoint of itself, because checkpoints are
	// taken from the solo-profile progress model, not from simulator
	// state.
	MaxCheckpoint float64
}

// Default SLO model parameters: a restart costs a tenth of the job's
// solo duration, and at most 90% of a job survives an eviction.
const (
	DefaultRestartFrac   = 0.1
	DefaultMaxCheckpoint = 0.9
)

// withDefaults resolves zero fields.
func (s SLOConfig) withDefaults() SLOConfig {
	if s.RestartFrac == 0 {
		s.RestartFrac = DefaultRestartFrac
	}
	if s.MaxCheckpoint == 0 {
		s.MaxCheckpoint = DefaultMaxCheckpoint
	}
	return s
}

// validate rejects impossible SLO models.
func (s SLOConfig) validate() error {
	if s.RestartFrac < 0 || s.RestartFrac >= 1 {
		return fmt.Errorf("fleet: restart fraction %g outside [0,1)", s.RestartFrac)
	}
	if s.MaxCheckpoint < 0 || s.MaxCheckpoint >= 1 {
		return fmt.Errorf("fleet: checkpoint cap %g outside [0,1)", s.MaxCheckpoint)
	}
	if s.Preempt && !s.Enabled {
		return fmt.Errorf("fleet: preemption requires SLO-aware dispatch (SLO.Enabled)")
	}
	return nil
}

// EvictionRecord is one preemption event: which device was cleared at
// which cycle, which jobs went back to the queue, and how much progress
// each kept.
type EvictionRecord struct {
	// Cycle is when the eviction happened (= the dispatch cycle of the
	// latency job that triggered it).
	Cycle uint64
	// Device is the cleared device.
	Device int
	// TriggerJob is the waiting latency job the eviction protects, or
	// chaosTriggerID (-1) when a device failure forced the eviction.
	TriggerJob int
	// Jobs lists the evicted jobs' IDs in launch order.
	Jobs []int
	// Progress is each evicted job's checkpointed completed fraction
	// after this eviction, indexed like Jobs.
	Progress []float64
	// Wasted is the solo-equivalent work the fleet must re-do because of
	// this eviction, summed over the evicted members: each member's
	// attempt time not preserved by its checkpoint plus the restart tax
	// its re-dispatch will pay, in cycles. It is a job-side re-work
	// measure, not device occupancy — an NC-member group can waste up to
	// NC times the attempt's device time (which DeviceBusy accounts
	// once).
	Wasted uint64
}

// String renders the record as one deterministic trace line.
func (e EvictionRecord) String() string {
	var b strings.Builder
	if e.TriggerJob < 0 {
		fmt.Fprintf(&b, "@%d d%d trigger=chaos evict=[", e.Cycle, e.Device)
	} else {
		fmt.Fprintf(&b, "@%d d%d trigger=j%d evict=[", e.Cycle, e.Device, e.TriggerJob)
	}
	for i, id := range e.Jobs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "j%d:%.3f", id, e.Progress[i])
	}
	fmt.Fprintf(&b, "] wasted=%d", e.Wasted)
	return b.String()
}
