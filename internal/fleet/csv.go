package fleet

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteJobsCSV renders the per-job records as CSV — one row per job in
// arrival order, cycles as raw integers — so fleet runs persist as
// plottable artifacts next to the figure CSVs (cmd/fleet -csv, and the
// experiments harness for the Fleet* scenarios). The output is
// deterministic: same run, byte-identical CSV.
func (r Result) WriteJobsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"id", "name", "class", "slo", "arrival", "dispatch", "complete",
		"wait", "turnaround", "device", "deadline", "slack", "missed", "evictions",
		"outcome", "attempts",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("fleet: write csv header: %w", err)
	}
	for _, j := range r.Jobs {
		// Slack is meaningful for completed latency jobs only; other rows
		// leave the column empty rather than printing a deadline-less (or
		// completion-less) negative.
		slack := ""
		if j.SLO == Latency && j.Outcome == Done {
			slack = strconv.FormatInt(j.Slack(), 10)
		}
		rec := []string{
			strconv.Itoa(j.ID),
			j.Name,
			j.Class.String(),
			j.SLO.String(),
			strconv.FormatUint(j.Arrival, 10),
			strconv.FormatUint(j.Dispatch, 10),
			strconv.FormatUint(j.Complete, 10),
			strconv.FormatUint(j.Wait(), 10),
			strconv.FormatUint(j.Turnaround(), 10),
			strconv.Itoa(j.Device),
			strconv.FormatUint(j.Deadline, 10),
			slack,
			strconv.FormatBool(j.Missed()),
			strconv.Itoa(j.Evictions),
			j.Outcome.String(),
			strconv.Itoa(j.Attempts),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("fleet: write csv row %d: %w", j.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("fleet: flush csv: %w", err)
	}
	return nil
}
