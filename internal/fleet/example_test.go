package fleet_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sched"
	"repro/internal/testkit"
)

// ExampleFleet_Run dispatches a tiny explicit trace — including one
// latency-class job with a deadline — onto a single miniature device
// and reports the per-class accounting.
func ExampleFleet_Run() {
	p, err := core.New(testkit.Config())
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Init(testkit.Universe()); err != nil {
		log.Fatal(err)
	}
	f, err := fleet.NewHomogeneous(p, 1, fleet.Config{
		NC:     2,
		Policy: sched.FCFS,
		SLO:    fleet.SLOConfig{Enabled: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := f.Run([]fleet.Arrival{
		{Name: "miniC", Cycle: 0},
		{Name: "miniA", Cycle: 0},
		{Name: "miniMC", Cycle: 100, SLO: fleet.Latency, Deadline: 400_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jobs=%d groups=%d devices=%d\n", len(res.Jobs), res.Groups, res.Devices)
	fmt.Printf("latency jobs=%d misses=%d evictions=%d\n",
		res.LatencyJobs(), res.DeadlineMisses(), len(res.Evictions))
	// Output:
	// jobs=3 groups=2 devices=1
	// latency jobs=1 misses=0 evictions=0
}
