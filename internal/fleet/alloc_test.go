package fleet

import (
	"testing"

	"repro/internal/sched"
)

// dispatchRig isolates the modeled engine's steady-state dispatch round
// for the alloc guard and BenchmarkFleetDispatch: a warm dispatcher, a
// standing backlog, and a completion heap, with completed jobs fed back
// into the queue so the backlog never drains.
type dispatchRig struct {
	f        *Fleet
	queue    jobQueue
	disp     *dispatcher
	resolved flightHeap
	now      uint64
	seq      int
}

// newDispatchRig builds the rig on the 4-device test fleet with a
// 128-job backlog, all waiting at cycle zero.
func newDispatchRig(tb testing.TB) *dispatchRig {
	tb.Helper()
	p := testPipeline(tb)
	f, err := New(Config{Devices: homo(p, 4), NC: 2, Policy: sched.ILP, Engine: Modeled})
	if err != nil {
		tb.Fatal(err)
	}
	names := testNames()
	arrivals := make([]Arrival, 128)
	for i := range arrivals {
		arrivals[i] = Arrival{Name: names[i%len(names)]}
	}
	jobs, err := f.resolve(arrivals)
	if err != nil {
		tb.Fatal(err)
	}
	rig := &dispatchRig{
		f:        f,
		disp:     f.newDispatcher(),
		resolved: flightHeap{live: flightResolved, less: completionLess},
	}
	for _, j := range jobs {
		rig.queue.insert(j)
	}
	return rig
}

// step runs one steady-state dispatch round on device 0 — exactly the
// modeled engine's per-decision work: form a group, commit its modeled
// completion, pop and retire it, recycle the flight — and returns how
// many jobs it dispatched. The completed group's jobs are re-queued
// before recycle (recycle nils the flight's job slots), so the backlog
// is invariant across rounds.
func (r *dispatchRig) step(tb testing.TB) int {
	fl := r.disp.newFlight()
	members, usedILP := r.disp.formGroup(fl.jobs[:0], &r.queue, 0, r.now)
	fl.device = 0
	fl.typ = 0
	fl.dispatch = r.now
	fl.seq = r.seq
	fl.jobs = members
	fl.ilp = usedILP
	r.seq++
	if err := r.disp.commitModeled(fl, r.now, 1.0, &r.resolved); err != nil {
		tb.Fatal(err)
	}
	got := r.resolved.pop()
	got.state = flightRetired
	for _, j := range got.jobs {
		r.queue.insert(j)
	}
	n := len(got.jobs)
	r.disp.recycle(got)
	r.now++
	return n
}

// TestDispatchSteadyStateAllocs locks the alloc scrub in place: once the
// dispatcher's scratch buffers, memo maps and flight pool are warm, one
// full dispatch round must not touch the heap at all. A regression here
// (a closure in the hot path, a map rebuilt per call, a profiler lookup
// creeping back in) fails this test before it shows up as a throughput
// cliff in the benchmarks.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	rig := newDispatchRig(t)
	// Warm every lazily grown structure: scratch buffers, the solve
	// memo, the flight pool, the heap and queue backing arrays.
	for i := 0; i < 200; i++ {
		rig.step(t)
	}
	if allocs := testing.AllocsPerRun(500, func() { rig.step(t) }); allocs != 0 {
		t.Fatalf("steady-state dispatch allocates %.1f times per round, want 0", allocs)
	}
}

// BenchmarkFleetDispatch times the dispatcher's steady-state hot path:
// back-to-back group formations (windowed ILP over the memoized
// pattern-efficiency tables and solve memo) plus the event-core heap
// round trip, with the Modeled engine supplying completions instantly.
// The ns/job metric is the fleet's per-job dispatch overhead; the alloc
// guard above pins the same loop at zero allocations, which -benchmem
// confirms here as allocs/op.
func BenchmarkFleetDispatch(b *testing.B) {
	rig := newDispatchRig(b)
	for i := 0; i < 200; i++ {
		rig.step(b)
	}
	b.ReportAllocs()
	b.ResetTimer()
	jobs := 0
	for i := 0; i < b.N; i++ {
		jobs += rig.step(b)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(jobs), "ns/job")
}
