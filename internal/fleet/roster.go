package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/kernel"
)

// RosterEntry is one parsed roster element: Count devices of the device
// configuration registered under Name (see config.ByName).
type RosterEntry struct {
	Name  string
	Count int
}

// ParseRoster parses the CLI roster spelling, e.g.
// "2xGTX480,2xSmall-8SM": comma-separated COUNTxNAME elements, where a
// bare NAME means one device. Names are resolved (and validated)
// against config.ByName.
func ParseRoster(s string) ([]RosterEntry, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("fleet: empty roster")
	}
	var out []RosterEntry
	for _, elem := range strings.Split(s, ",") {
		elem = strings.TrimSpace(elem)
		if elem == "" {
			return nil, fmt.Errorf("fleet: empty roster element in %q", s)
		}
		count := 1
		name := elem
		if cStr, rest, ok := strings.Cut(elem, "x"); ok {
			if n, err := strconv.Atoi(cStr); err == nil {
				if n < 1 {
					return nil, fmt.Errorf("fleet: roster element %q: count must be at least 1", elem)
				}
				count, name = n, rest
			}
		}
		if _, err := config.ByName(name); err != nil {
			return nil, fmt.Errorf("fleet: roster element %q: %w", elem, err)
		}
		out = append(out, RosterEntry{Name: name, Count: count})
	}
	return out, nil
}

// BuildRoster resolves and calibrates the parsed roster over the
// application universe: one core.Pipeline per distinct configuration
// name (calibration is disk-cached per config name via
// core.LoadOrInit, exactly like the homogeneous path), shared across
// entries that repeat a name.
func BuildRoster(entries []RosterEntry, apps []kernel.Params) ([]DeviceSpec, error) {
	pipes := make(map[string]*core.Pipeline)
	var out []DeviceSpec
	for _, e := range entries {
		cfg, err := config.ByName(e.Name)
		if err != nil {
			return nil, err
		}
		pipe, ok := pipes[cfg.Name]
		if !ok {
			pipe, err = core.LoadOrInit(cfg, apps)
			if err != nil {
				return nil, fmt.Errorf("fleet: calibrate %s: %w", cfg.Name, err)
			}
			pipes[cfg.Name] = pipe
		}
		out = append(out, DeviceSpec{Pipe: pipe, Count: e.Count})
	}
	return out, nil
}
