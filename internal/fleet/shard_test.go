package fleet

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

// shardedCase is the canonical shards>1 scenario the golden and
// determinism tests share: heterogeneous roster, Modeled engine,
// preemptive SLO traffic, a sampling interval, and an epoch short
// enough that the run crosses many router barriers.
func shardedCase(t *testing.T, shards int) (Config, []Arrival) {
	t.Helper()
	small := testPipeline(t)
	tiny := pipelineFor(t, tinyConfig())
	arr, err := ArrivalConfig{
		Kind: Poisson, Jobs: 48, Rate: 1.5,
		LatencyFrac: 0.25, Deadline: 60_000, Seed: 0x54A8D,
	}.Generate(testNames())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Devices:     []DeviceSpec{{Pipe: small, Count: 2}, {Pipe: tiny, Count: 2}},
		NC:          2,
		Policy:      sched.ILPSMRA,
		Engine:      Modeled,
		SLO:         SLOConfig{Enabled: true, Preempt: true},
		Shards:      shards,
		ShardEpoch:  10_000,
		SampleEvery: goldenSampleEvery,
	}
	return cfg, arr
}

// runShardedCase executes the scenario and renders the full observable
// output: the summary plus eviction trace, and the time-series CSV.
func runShardedCase(t *testing.T, shards int) (Result, string, string) {
	t.Helper()
	cfg, arr := shardedCase(t, shards)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil {
		t.Fatal("SampleEvery set but Result.Series is nil")
	}
	var csv strings.Builder
	if err := res.Series.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return res, res.Summary() + res.EvictionTrace(), csv.String()
}

// TestShardedGolden locks the sharded path's observable output — the
// shards>1 extension of the cycle/modeled goldens. Regenerate with
//
//	go test ./internal/fleet -run ShardedGolden -update
//
// only when the sharded engine's behavior is meant to change.
func TestShardedGolden(t *testing.T) {
	res, summary, csv := runShardedCase(t, 2)
	if res.Shards != 2 {
		t.Fatalf("Result.Shards = %d, want 2", res.Shards)
	}
	compareGolden(t, "modeled_sharded.golden", summary)
	compareGolden(t, "timeseries_sharded.golden", csv)
}

// TestShardedDeterminism is the reproducibility contract on the
// concurrent path: with goroutine-per-shard execution, repeated runs at
// every shard count must produce byte-identical summaries, eviction
// traces and time series. Runs under -race in CI, so a data race
// between shard loops fails loudly rather than flaking.
func TestShardedDeterminism(t *testing.T) {
	for _, shards := range []int{2, 3, 4} {
		_, firstSum, firstCSV := runShardedCase(t, shards)
		for run := 1; run < 3; run++ {
			_, sum, csv := runShardedCase(t, shards)
			if sum != firstSum {
				t.Fatalf("shards=%d run %d summary diverged from run 0:\n--- first ---\n%s--- again ---\n%s",
					shards, run, firstSum, sum)
			}
			if csv != firstCSV {
				t.Fatalf("shards=%d run %d time series diverged from run 0", shards, run)
			}
		}
	}
}

// TestShardsOneMatchesGoldens pins shards=1 to the classic loop: an
// explicit Shards: 1 must reproduce the existing Cycle-engine goldens
// byte for byte (it takes the identical code path, and validation must
// accept the shard count under every engine).
func TestShardsOneMatchesGoldens(t *testing.T) {
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			cfg.SampleEvery = goldenSampleEvery
			cfg.Shards = 1
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(tc.arr)
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, "cycle_"+tc.name+".golden", res.Summary()+res.EvictionTrace())
			var csv strings.Builder
			if err := res.Series.WriteCSV(&csv); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, "timeseries_"+tc.name+".golden", csv.String())
		})
	}
}

// TestShardedAccountsEveryJob checks global job conservation through
// the router and merge at several shard counts.
func TestShardedAccountsEveryJob(t *testing.T) {
	for _, shards := range []int{2, 4} {
		res, _, _ := runShardedCase(t, shards)
		if len(res.Jobs) != 48 {
			t.Fatalf("shards=%d: jobs = %d, want 48", shards, len(res.Jobs))
		}
		done := 0
		for _, j := range res.Jobs {
			if j.Complete <= j.Arrival {
				t.Errorf("shards=%d: job %d complete %d not after arrival %d", shards, j.ID, j.Complete, j.Arrival)
			}
			if j.Complete > res.Makespan {
				t.Errorf("shards=%d: job %d completes at %d past makespan %d", shards, j.ID, j.Complete, res.Makespan)
			}
			done++
		}
		if groups := res.GreedyGroups + res.ILPGroups; groups != res.Groups {
			t.Errorf("shards=%d: group split %d+%d != %d", shards, res.GreedyGroups, res.ILPGroups, res.Groups)
		}
		if res.ModeledGroups != res.Groups || res.CycleGroups != 0 {
			t.Errorf("shards=%d: modeled/cycle split %d/%d over %d groups", shards, res.ModeledGroups, res.CycleGroups, res.Groups)
		}
	}
}

// TestShardValidation covers the Config.Shards contract.
func TestShardValidation(t *testing.T) {
	p := testPipeline(t)
	base := Config{Devices: homo(p, 4), NC: 2, Policy: sched.ILP, Engine: Modeled}

	bad := base
	bad.Shards = -1
	if _, err := New(bad); err == nil {
		t.Error("negative shard count accepted")
	}
	bad = base
	bad.Shards = 5
	if _, err := New(bad); err == nil {
		t.Error("more shards than devices accepted")
	}
	bad = base
	bad.Engine = Cycle
	bad.Shards = 2
	if _, err := New(bad); err == nil {
		t.Error("sharded Cycle engine accepted")
	}
	ok := base
	ok.Shards = 4
	f, err := New(ok)
	if err != nil {
		t.Fatalf("valid shard config rejected: %v", err)
	}
	if got := f.Config().ShardEpoch; got != DefaultShardEpoch {
		t.Errorf("ShardEpoch defaulted to %d, want %d", got, DefaultShardEpoch)
	}
}
