package fleet

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/testkit"
)

// pipes shares calibrated pipelines across tests, keyed by config name
// and built lazily so a targeted `go test -run` only pays for the
// device configs it touches. Package tests run sequentially (none call
// t.Parallel), so a plain map with a mutex suffices.
var (
	pipeMu sync.Mutex
	pipes  = map[string]*core.Pipeline{}
)

// pipelineFor initializes (once, shared across tests) a pipeline for
// one device configuration over the miniature testkit universe — the
// expensive part of every fleet test. The mini kernels are small enough
// that even the full 60-SM device calibrates in well under a second.
func pipelineFor(t testing.TB, cfg config.GPUConfig) *core.Pipeline {
	t.Helper()
	pipeMu.Lock()
	defer pipeMu.Unlock()
	if p, ok := pipes[cfg.Name]; ok {
		return p
	}
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Init(testkit.Universe()); err != nil {
		t.Fatal(err)
	}
	pipes[cfg.Name] = p
	return p
}

// testPipeline returns the default (Small-8SM) test pipeline.
func testPipeline(t testing.TB) *core.Pipeline {
	return pipelineFor(t, testkit.Config())
}

// tinyConfig is a second, slower device generation for heterogeneous
// tests: half the SMs of the Small test device.
func tinyConfig() config.GPUConfig {
	c := config.Small()
	c.Name = "Tiny-4SM"
	c.NumSMs = 4
	return c
}

// homo wraps the single-type roster the pre-heterogeneity tests used.
func homo(pipe *core.Pipeline, count int) []DeviceSpec {
	return []DeviceSpec{{Pipe: pipe, Count: count}}
}

func testNames() []string {
	return []string{"miniM", "miniMC", "miniC", "miniA"}
}

func testArrivals(t *testing.T, jobs int, seed uint64) []Arrival {
	t.Helper()
	arr, err := ArrivalConfig{Kind: Poisson, Jobs: jobs, Rate: 2, Seed: seed}.Generate(testNames())
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestFleetRunAccountsEveryJob(t *testing.T) {
	p := testPipeline(t)
	f, err := New(Config{Devices: homo(p, 2), NC: 2, Policy: sched.ILP})
	if err != nil {
		t.Fatal(err)
	}
	arr := testArrivals(t, 12, 7)
	res, err := f.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 12 {
		t.Fatalf("jobs = %d, want 12", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Dispatch < j.Arrival {
			t.Errorf("job %d dispatched at %d before arrival %d", j.ID, j.Dispatch, j.Arrival)
		}
		if j.Complete <= j.Dispatch {
			t.Errorf("job %d complete %d not after dispatch %d", j.ID, j.Complete, j.Dispatch)
		}
		if j.Device < 0 || j.Device >= 2 {
			t.Errorf("job %d on device %d", j.ID, j.Device)
		}
		if j.Complete > res.Makespan {
			t.Errorf("job %d completes at %d past makespan %d", j.ID, j.Complete, res.Makespan)
		}
	}
	if res.Groups == 0 || res.ThreadInstructions == 0 {
		t.Fatalf("empty accounting: %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
}

// TestFleetDeterminism is the reproducibility contract: two runs with
// the same seed produce byte-identical summaries. The second run hits
// the scheduler's group memo everywhere the first one simulated, so
// this also checks warm and cold caches agree.
func TestFleetDeterminism(t *testing.T) {
	p := testPipeline(t)
	arr := testArrivals(t, 16, 3)
	var summaries []string
	for i := 0; i < 2; i++ {
		f, err := New(Config{Devices: homo(p, 3), NC: 2, Policy: sched.ILPSMRA})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, res.Summary())
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("summaries differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", summaries[0], summaries[1])
	}
	// The SM-moves field is part of the stable summary shape, whatever
	// its value, so ILPSMRA and ILP outputs stay line-diffable.
	if !strings.Contains(summaries[0], "SM moves") {
		t.Fatalf("summary missing the SM moves field:\n%s", summaries[0])
	}
}

// TestFleetHeterogeneousDeterminism extends the reproducibility
// contract to mixed rosters: same seed + same roster (two device
// generations with independent calibrations) must give byte-identical
// summaries run to run.
func TestFleetHeterogeneousDeterminism(t *testing.T) {
	small := pipelineFor(t, testkit.Config())
	tiny := pipelineFor(t, tinyConfig())
	arr := testArrivals(t, 16, 9)
	var summaries []string
	for i := 0; i < 2; i++ {
		f, err := New(Config{
			Devices: []DeviceSpec{{Pipe: small, Count: 1}, {Pipe: tiny, Count: 2}},
			NC:      2,
			Policy:  sched.ILPSMRA,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, res.Summary())
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("mixed-roster summaries differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", summaries[0], summaries[1])
	}
	for _, want := range []string{"1xSmall-8SM,2xTiny-4SM", "d0[Small-8SM]=", "d1[Tiny-4SM]=", "d2[Tiny-4SM]=", "SM moves"} {
		if !strings.Contains(summaries[0], want) {
			t.Fatalf("mixed-roster summary missing %q:\n%s", want, summaries[0])
		}
	}
}

// TestFleetHeterogeneousPlacement checks the structural pieces of
// placement-aware dispatch on a mixed roster: every job runs on a real
// device, device labels follow the roster, and the faster generation is
// offered work first when everything arrives at once.
func TestFleetHeterogeneousPlacement(t *testing.T) {
	small := pipelineFor(t, testkit.Config())
	tiny := pipelineFor(t, tinyConfig())
	f, err := New(Config{
		Devices: []DeviceSpec{{Pipe: tiny, Count: 1}, {Pipe: small, Count: 1}},
		NC:      2,
		Policy:  sched.FCFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The roster lists the slow device first, so placement order must
	// override roster order: with a single group of work, the faster
	// Small-8SM device (index 1) takes it.
	arr := []Arrival{{Name: "miniA", Cycle: 0}, {Name: "miniC", Cycle: 0}}
	res, err := f.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if j.Device != 1 {
			t.Errorf("job %d ran on device %d (%s), want the faster device 1",
				j.ID, j.Device, res.DeviceConfig[j.Device])
		}
	}
	if res.DeviceConfig[0] != "Tiny-4SM" || res.DeviceConfig[1] != "Small-8SM" {
		t.Fatalf("device configs = %v", res.DeviceConfig)
	}
}

// TestFleetRejectsMismatchedUniverses guards roster validation: device
// types calibrated over different application universes cannot form one
// fleet.
func TestFleetRejectsMismatchedUniverses(t *testing.T) {
	small := pipelineFor(t, testkit.Config())
	other, err := core.New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Init(testkit.Universe()[:2]); err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Devices: []DeviceSpec{{Pipe: small, Count: 1}, {Pipe: other, Count: 1}},
		NC:      2,
		Policy:  sched.FCFS,
	})
	if err == nil {
		t.Fatal("accepted a roster with mismatched universes")
	}
}

// TestLowerBoundCyclesSound asserts the event loop's pipelining
// invariant on both device generations: for every universe member (and
// every pair), dispatch + lowerBoundCycles never exceeds the cycle the
// group actually completes at. This is the guard against the
// warp-vs-thread instruction unit trap — PeakIPC counts issue slots
// (warp instructions per cycle), so a bound computed from thread
// instructions would be ~WarpSize too high and the loop would commit to
// events that precede the group's real completion.
func TestLowerBoundCyclesSound(t *testing.T) {
	for _, cfg := range []config.GPUConfig{config.GTX480(), config.Small()} {
		p := pipelineFor(t, cfg)
		f, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.FCFS})
		if err != nil {
			t.Fatal(err)
		}
		names := testNames()
		for i := 0; i < len(names); i++ {
			for j := i - 1; j < len(names); j++ {
				var arr []Arrival
				if j < i {
					arr = []Arrival{{Name: names[i], Cycle: 0}} // solo
				} else {
					arr = []Arrival{{Name: names[i], Cycle: 0}, {Name: names[j], Cycle: 0}}
				}
				jobs, err := f.resolve(arr)
				if err != nil {
					t.Fatal(err)
				}
				bound := f.lowerBoundCycles(jobs, 0)
				g := make(sched.Group, len(jobs))
				for k, m := range jobs {
					g[k] = m.apps[0]
				}
				rep, err := p.Scheduler().RunGroup(g, sched.FCFS)
				if err != nil {
					t.Fatal(err)
				}
				if bound > rep.Cycles {
					t.Errorf("%s: group %v bound %d exceeds actual completion %d",
						cfg.Name, arr, bound, rep.Cycles)
				}
				if bound == 0 {
					t.Errorf("%s: group %v has a vacuous zero bound", cfg.Name, arr)
				}
			}
		}
	}
}

// TestFleetSpeculationDoesNotChangeResults runs the same stream with
// and without speculative pre-simulation (forced on, since the test
// host may have one CPU): summaries must be byte-identical — the memo
// is keyed by group content and simulations are pure, so speculation
// can only move work in time.
func TestFleetSpeculationDoesNotChangeResults(t *testing.T) {
	p := testPipeline(t)
	arr := testArrivals(t, 16, 3)
	var summaries []string
	for _, spec := range []bool{false, true} {
		f, err := New(Config{Devices: homo(p, 3), NC: 2, Policy: sched.ILP, forceSpec: spec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, res.Summary())
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("speculation changed results:\n--- off ---\n%s--- on ---\n%s", summaries[0], summaries[1])
	}
}

func TestFleetSeedChangesArrivals(t *testing.T) {
	a1 := testArrivals(t, 16, 1)
	a2 := testArrivals(t, 16, 2)
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrival streams")
	}
}

func TestFleetUsesAllDevices(t *testing.T) {
	p := testPipeline(t)
	f, err := New(Config{Devices: homo(p, 2), NC: 2, Policy: sched.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	// Everything arrives at once, so both devices must pick up work.
	var arr []Arrival
	for i := 0; i < 8; i++ {
		arr = append(arr, Arrival{Name: testNames()[i%4], Cycle: 0})
	}
	res, err := f.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, j := range res.Jobs {
		used[j.Device] = true
	}
	if len(used) != 2 {
		t.Fatalf("devices used = %v, want both", used)
	}
	if res.DeviceBusy[0] == 0 || res.DeviceBusy[1] == 0 {
		t.Fatalf("device busy = %v", res.DeviceBusy)
	}
}

func TestFleetSerialRunsAlone(t *testing.T) {
	p := testPipeline(t)
	f, err := New(Config{Devices: homo(p, 1), NC: 3, Policy: sched.Serial})
	if err != nil {
		t.Fatal(err)
	}
	if f.Config().NC != 1 {
		t.Fatalf("serial NC = %d, want 1", f.Config().NC)
	}
	res, err := f.Run(testArrivals(t, 6, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 6 {
		t.Fatalf("serial groups = %d, want one per job", res.Groups)
	}
}

// TestFleetDeepQueueUsesILP floods the queue so the windowed matcher,
// not the greedy path, forms groups.
func TestFleetDeepQueueUsesILP(t *testing.T) {
	p := testPipeline(t)
	f, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.ILP})
	if err != nil {
		t.Fatal(err)
	}
	var arr []Arrival
	for i := 0; i < 12; i++ {
		arr = append(arr, Arrival{Name: testNames()[i%4], Cycle: 0})
	}
	res, err := f.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.ILPGroups == 0 {
		t.Fatalf("no ILP-formed groups in a deep queue: %+v", res)
	}
}

func TestFleetRejectsBadConfig(t *testing.T) {
	p := testPipeline(t)
	if _, err := New(Config{NC: 2, Policy: sched.FCFS}); err == nil {
		t.Fatal("accepted an empty roster")
	}
	if _, err := New(Config{Devices: homo(p, 0), NC: 2, Policy: sched.FCFS}); err == nil {
		t.Fatal("accepted a zero-count roster entry")
	}
	if _, err := New(Config{Devices: []DeviceSpec{{Pipe: nil, Count: 1}}, NC: 2, Policy: sched.FCFS}); err == nil {
		t.Fatal("accepted a nil pipeline")
	}
	if _, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.Policy(99)}); err == nil {
		t.Fatal("accepted unknown policy")
	}
	if _, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.ILP, Window: -1}); err == nil {
		t.Fatal("accepted negative ILP window")
	}
	if _, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.ILP, GreedyBelow: -1}); err == nil {
		t.Fatal("accepted negative greedy threshold")
	}
}

func TestFleetRejectsUnknownBenchmark(t *testing.T) {
	p := testPipeline(t)
	f, err := New(Config{Devices: homo(p, 1), NC: 2, Policy: sched.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run([]Arrival{{Name: "nope", Cycle: 0}}); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
}

func TestSummaryMentionsEveryDevice(t *testing.T) {
	p := testPipeline(t)
	f, err := New(Config{Devices: homo(p, 2), NC: 2, Policy: sched.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(testArrivals(t, 6, 11))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, want := range []string{"d0[Small-8SM]=", "d1[Small-8SM]=", "[2xSmall-8SM]", "throughput", "turnaround", "SM moves"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestParseRoster(t *testing.T) {
	entries, err := ParseRoster("2xGTX480, 2xSmall-8SM")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Count != 2 || entries[1].Count != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Name != "GTX480" || entries[1].Name != "Small-8SM" {
		t.Fatalf("entries = %+v", entries)
	}
	if _, err := ParseRoster("Small"); err != nil {
		t.Fatalf("bare name rejected: %v", err)
	}
	for _, bad := range []string{"", "0xGTX480", "2xNoSuchGPU", "GTX480,,Small"} {
		if _, err := ParseRoster(bad); err == nil {
			t.Fatalf("accepted roster %q", bad)
		}
	}
}
