package fleet

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/testkit"
)

var (
	pipeOnce sync.Once
	pipe     *core.Pipeline
	pipeErr  error
)

// testPipeline initializes one shared pipeline over the miniature
// testkit universe (4 apps, 8-SM device) — the expensive part of every
// fleet test.
func testPipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		p, err := core.New(testkit.Config())
		if err != nil {
			pipeErr = err
			return
		}
		if err := p.Init(testkit.Universe()); err != nil {
			pipeErr = err
			return
		}
		pipe = p
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe
}

func testNames() []string {
	return []string{"miniM", "miniMC", "miniC", "miniA"}
}

func testArrivals(t *testing.T, jobs int, seed uint64) []Arrival {
	t.Helper()
	arr, err := ArrivalConfig{Kind: Poisson, Jobs: jobs, Rate: 2, Seed: seed}.Generate(testNames())
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestFleetRunAccountsEveryJob(t *testing.T) {
	p := testPipeline(t)
	f, err := New(p, Config{Devices: 2, NC: 2, Policy: sched.ILP})
	if err != nil {
		t.Fatal(err)
	}
	arr := testArrivals(t, 12, 7)
	res, err := f.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 12 {
		t.Fatalf("jobs = %d, want 12", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Dispatch < j.Arrival {
			t.Errorf("job %d dispatched at %d before arrival %d", j.ID, j.Dispatch, j.Arrival)
		}
		if j.Complete <= j.Dispatch {
			t.Errorf("job %d complete %d not after dispatch %d", j.ID, j.Complete, j.Dispatch)
		}
		if j.Device < 0 || j.Device >= 2 {
			t.Errorf("job %d on device %d", j.ID, j.Device)
		}
		if j.Complete > res.Makespan {
			t.Errorf("job %d completes at %d past makespan %d", j.ID, j.Complete, res.Makespan)
		}
	}
	if res.Groups == 0 || res.ThreadInstructions == 0 {
		t.Fatalf("empty accounting: %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
}

// TestFleetDeterminism is the reproducibility contract: two runs with
// the same seed produce byte-identical summaries. The second run hits
// the scheduler's group memo everywhere the first one simulated, so
// this also checks warm and cold caches agree.
func TestFleetDeterminism(t *testing.T) {
	p := testPipeline(t)
	arr := testArrivals(t, 16, 3)
	var summaries []string
	for i := 0; i < 2; i++ {
		f, err := New(p, Config{Devices: 3, NC: 2, Policy: sched.ILPSMRA})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, res.Summary())
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("summaries differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", summaries[0], summaries[1])
	}
}

// TestFleetSpeculationDoesNotChangeResults runs the same stream with
// and without speculative pre-simulation (forced on, since the test
// host may have one CPU): summaries must be byte-identical — the memo
// is keyed by group content and simulations are pure, so speculation
// can only move work in time.
func TestFleetSpeculationDoesNotChangeResults(t *testing.T) {
	p := testPipeline(t)
	arr := testArrivals(t, 16, 3)
	var summaries []string
	for _, spec := range []bool{false, true} {
		f, err := New(p, Config{Devices: 3, NC: 2, Policy: sched.ILP, forceSpec: spec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(arr)
		if err != nil {
			t.Fatal(err)
		}
		summaries = append(summaries, res.Summary())
	}
	if summaries[0] != summaries[1] {
		t.Fatalf("speculation changed results:\n--- off ---\n%s--- on ---\n%s", summaries[0], summaries[1])
	}
}

func TestFleetSeedChangesArrivals(t *testing.T) {
	a1 := testArrivals(t, 16, 1)
	a2 := testArrivals(t, 16, 2)
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrival streams")
	}
}

func TestFleetUsesAllDevices(t *testing.T) {
	p := testPipeline(t)
	f, err := New(p, Config{Devices: 2, NC: 2, Policy: sched.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	// Everything arrives at once, so both devices must pick up work.
	var arr []Arrival
	for i := 0; i < 8; i++ {
		arr = append(arr, Arrival{Name: testNames()[i%4], Cycle: 0})
	}
	res, err := f.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, j := range res.Jobs {
		used[j.Device] = true
	}
	if len(used) != 2 {
		t.Fatalf("devices used = %v, want both", used)
	}
	if res.DeviceBusy[0] == 0 || res.DeviceBusy[1] == 0 {
		t.Fatalf("device busy = %v", res.DeviceBusy)
	}
}

func TestFleetSerialRunsAlone(t *testing.T) {
	p := testPipeline(t)
	f, err := New(p, Config{Devices: 1, NC: 3, Policy: sched.Serial})
	if err != nil {
		t.Fatal(err)
	}
	if f.Config().NC != 1 {
		t.Fatalf("serial NC = %d, want 1", f.Config().NC)
	}
	res, err := f.Run(testArrivals(t, 6, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 6 {
		t.Fatalf("serial groups = %d, want one per job", res.Groups)
	}
}

// TestFleetDeepQueueUsesILP floods the queue so the windowed matcher,
// not the greedy path, forms groups.
func TestFleetDeepQueueUsesILP(t *testing.T) {
	p := testPipeline(t)
	f, err := New(p, Config{Devices: 1, NC: 2, Policy: sched.ILP})
	if err != nil {
		t.Fatal(err)
	}
	var arr []Arrival
	for i := 0; i < 12; i++ {
		arr = append(arr, Arrival{Name: testNames()[i%4], Cycle: 0})
	}
	res, err := f.Run(arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.ILPGroups == 0 {
		t.Fatalf("no ILP-formed groups in a deep queue: %+v", res)
	}
}

func TestFleetRejectsBadConfig(t *testing.T) {
	p := testPipeline(t)
	if _, err := New(p, Config{Devices: 0, NC: 2, Policy: sched.FCFS}); err == nil {
		t.Fatal("accepted zero devices")
	}
	if _, err := New(p, Config{Devices: 1, NC: 2, Policy: sched.Policy(99)}); err == nil {
		t.Fatal("accepted unknown policy")
	}
	if _, err := New(p, Config{Devices: 1, NC: 2, Policy: sched.ILP, Window: -1}); err == nil {
		t.Fatal("accepted negative ILP window")
	}
	if _, err := New(p, Config{Devices: 1, NC: 2, Policy: sched.ILP, GreedyBelow: -1}); err == nil {
		t.Fatal("accepted negative greedy threshold")
	}
}

func TestFleetRejectsUnknownBenchmark(t *testing.T) {
	p := testPipeline(t)
	f, err := New(p, Config{Devices: 1, NC: 2, Policy: sched.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run([]Arrival{{Name: "nope", Cycle: 0}}); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
}

func TestSummaryMentionsEveryDevice(t *testing.T) {
	p := testPipeline(t)
	f, err := New(p, Config{Devices: 2, NC: 2, Policy: sched.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(testArrivals(t, 6, 11))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, want := range []string{"d0=", "d1=", "throughput", "turnaround"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}
