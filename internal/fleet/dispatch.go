package fleet

import (
	"math"
	"sort"

	"repro/internal/classify"
	"repro/internal/match"
	"repro/internal/sched"
)

// enqueue inserts j into the live queue preserving dispatch order:
// latency class before batch when SLO-aware dispatch is on, then
// arrival cycle, then arrival index. With SLO dispatch off every job
// has equal priority, so admission order (arrival order) is preserved
// exactly as before; with it on, evicted batch jobs re-enter among the
// batch segment at their arrival-order position — ahead of younger
// waiting batch work, behind every latency job.
func (f *Fleet) enqueue(queue []*job, j *job) []*job {
	before := func(a, b *job) bool {
		if f.cfg.SLO.Enabled && a.slo != b.slo {
			return a.slo == Latency
		}
		if a.arrival != b.arrival {
			return a.arrival < b.arrival
		}
		return a.id < b.id
	}
	pos := sort.Search(len(queue), func(i int) bool { return before(j, queue[i]) })
	queue = append(queue, nil)
	copy(queue[pos+1:], queue[pos:])
	queue[pos] = j
	return queue
}

// windowFor sizes the ILP window for one dispatch. A pinned
// Config.Window wins; otherwise the window adapts to what the matcher
// can actually exploit:
//
//   - queue depth: half the backlog, clamped to [MinWindow, MaxWindow] —
//     a shallow queue cannot fill a big window, and past MaxWindow the
//     extra choice stops paying for the larger ILP;
//   - class mix: the depth-sized window is scaled by the exponential of
//     the class entropy over the candidate prefix (the "effective number
//     of classes", 1..NumClasses). A one-class queue offers the matcher
//     no pairing choice, so a big window only delays jobs it will never
//     reorder; a uniform mix earns the full depth-sized window.
func (f *Fleet) windowFor(q []*job, t int) int {
	if f.cfg.Window > 0 {
		return f.cfg.Window
	}
	w := len(q) / 2
	if w < MinWindow {
		w = MinWindow
	}
	if w > MaxWindow {
		w = MaxWindow
	}
	prefix := q
	if len(prefix) > MaxWindow {
		prefix = prefix[:MaxWindow]
	}
	var counts [classify.NumClasses]int
	for _, j := range prefix {
		counts[j.apps[t].Class]++
	}
	h := 0.0
	for _, n := range counts {
		if n > 0 {
			p := float64(n) / float64(len(prefix))
			h -= p * math.Log(p)
		}
	}
	effective := math.Exp(h) // 1 (degenerate) .. NumClasses (uniform)
	scale := (effective - 1) / float64(classify.NumClasses-1)
	w = MinWindow + int(float64(w-MinWindow)*scale)
	return w
}

// agingWeights maps each waiting job in the window to its aging
// multiplier input: wait normalized to the longest wait in the window,
// in [0,1]. A nil map means aging is off (zero weight or an empty
// window).
func (f *Fleet) agingWeights(window []*job, now uint64) map[*job]float64 {
	if f.cfg.Aging == 0 || len(window) == 0 {
		return nil
	}
	maxWait := uint64(0)
	for _, j := range window {
		if w := now - j.arrival; w > maxWait {
			maxWait = w
		}
	}
	if maxWait == 0 {
		return nil
	}
	out := make(map[*job]float64, len(window))
	for _, j := range window {
		out[j] = float64(now-j.arrival) / float64(maxWait)
	}
	return out
}

// formGroup pops the next co-run group from the live queue (jobs that
// have arrived and are not yet dispatched, priority order) for a device
// of type t at fleet cycle now. It returns the members and whether the
// windowed ILP made the choice.
//
// Serial and FCFS reproduce the paper's baselines online; they ignore
// the device type (naive placement). The ILP policies adapt the offline
// matcher to the arrival setting and are placement-aware: classes and
// the interference matrix are the ones calibrated on type t's hardware,
// so the same queue can yield different groups for different device
// generations:
//
//   - shallow queue (fewer than GreedyBelow waiting): greedy formation
//     seeded with the highest-priority job, adding whichever waiting job
//     maximizes the group's Equation 3.4 efficiency. A deep
//     optimization over two jobs is pointless, and dispatching the
//     oldest job immediately keeps latency low.
//   - deep queue: solve the paper's ILP over the first windowFor jobs'
//     class composition and materialize the single best pattern that
//     includes the head job's class. Requiring the head job to be
//     schedulable guards against starvation — the ILP alone would
//     happily strand an awkward class forever while fresher arrivals
//     overtake it.
//
// With Config.Aging set, both paths weight efficiency by member wait:
// patterns (and greedy candidates) whose members have waited longest get
// their efficiency multiplied by 1+Aging*w, so tail latency competes
// with raw packing. With SLO dispatch on, the queue is priority-ordered,
// so the seed job is the oldest waiting latency job whenever one exists.
func (f *Fleet) formGroup(queue *[]*job, t int, now uint64) (members []*job, usedILP bool) {
	q := *queue
	switch f.cfg.Policy {
	case sched.Serial:
		*queue = q[1:]
		return q[:1], false
	case sched.FCFS, sched.ProfileBased:
		n := f.cfg.NC
		if n > len(q) {
			n = len(q)
		}
		*queue = q[n:]
		return q[:n], false
	}
	// ILP / ILPSMRA.
	if len(q) >= f.cfg.GreedyBelow && len(q) >= f.cfg.NC {
		if g := f.formILPGroup(queue, t, now); g != nil {
			return g, true
		}
	}
	return f.formGreedyGroup(queue, t, now), false
}

// formGreedyGroup starts from the head waiting job and repeatedly adds
// the job whose inclusion yields the highest (age-weighted) pattern
// efficiency on device type t's interference matrix. Candidates come
// from the same window prefix the ILP would see, so a deep queue does
// not make dispatch linear in the backlog.
func (f *Fleet) formGreedyGroup(queue *[]*job, t int, now uint64) []*job {
	q := *queue
	matrix := f.types[t].Matrix()
	window := q
	if w := f.windowFor(q, t); len(window) > w {
		window = window[:w]
	}
	aging := f.agingWeights(window, now)
	members := []*job{q[0]}
	taken := map[*job]bool{q[0]: true}
	for len(members) < f.cfg.NC {
		var best *job
		bestEff := -1.0
		for _, cand := range window {
			if taken[cand] {
				continue
			}
			eff := match.Efficiency(matrix, pattern(members, cand, t))
			if aging != nil {
				eff *= 1 + f.cfg.Aging*aging[cand]
			}
			// Strict > keeps the earliest-arrived candidate on ties.
			if eff > bestEff {
				best, bestEff = cand, eff
			}
		}
		if best == nil {
			break
		}
		members = append(members, best)
		taken[best] = true
	}
	*queue = removeJobs(q, taken)
	return members
}

// formILPGroup solves the matcher over the queue's window-prefix class
// composition as seen by device type t and materializes one group. It
// returns nil when the ILP cannot produce a pattern containing the head
// job's class (the caller falls back to greedy formation). With aging
// active the pattern efficiencies handed to the solver are age-weighted
// per class (match.AgedEfficiencies), so a pattern containing a starved
// class outbids a marginally better-packing one.
func (f *Fleet) formILPGroup(queue *[]*job, t int, now uint64) []*job {
	q := *queue
	matrix := f.types[t].Matrix()
	window := q
	if w := f.windowFor(q, t); len(window) > w {
		window = window[:w]
	}
	var counts [classify.NumClasses]int
	for _, j := range window {
		counts[j.apps[t].Class]++
	}
	var res match.Result
	var err error
	if aging := f.agingWeights(window, now); aging != nil {
		patterns := match.Patterns(f.cfg.NC)
		eff := make([]float64, len(patterns))
		for k, p := range patterns {
			eff[k] = match.Efficiency(matrix, p)
		}
		var classWait [classify.NumClasses]float64
		for _, j := range window {
			if w := aging[j]; w > classWait[j.apps[t].Class] {
				classWait[j.apps[t].Class] = w
			}
		}
		eff = match.AgedEfficiencies(patterns, eff, classWait, f.cfg.Aging)
		res, err = match.SolveWithEff(patterns, eff, counts, f.cfg.NC)
	} else {
		res, err = match.Solve(matrix, counts, f.cfg.NC)
	}
	if err != nil {
		return nil
	}
	// Among the patterns the ILP selected, take the most efficient one
	// that can dispatch the head waiting job.
	oldest := q[0].apps[t].Class
	best := -1
	for k, n := range res.Counts {
		if n == 0 || res.Patterns[k].Count(oldest) == 0 {
			continue
		}
		if best < 0 || res.Eff[k] > res.Eff[best] {
			best = k
		}
	}
	if best < 0 {
		return nil
	}
	// Materialize with the head waiting job of each required class.
	taken := make(map[*job]bool, f.cfg.NC)
	var members []*job
	for _, cls := range res.Patterns[best] {
		found := false
		for _, cand := range window {
			if cand.apps[t].Class == cls && !taken[cand] {
				members = append(members, cand)
				taken[cand] = true
				found = true
				break
			}
		}
		if !found {
			return nil // matcher over-committed; should not happen
		}
	}
	*queue = removeJobs(q, taken)
	return members
}

// pattern builds the sorted class multiset of members plus one extra,
// with classes as device type t sees them.
func pattern(members []*job, extra *job, t int) match.Pattern {
	p := make(match.Pattern, 0, len(members)+1)
	for _, m := range members {
		p = append(p, m.apps[t].Class)
	}
	p = append(p, extra.apps[t].Class)
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	return p
}

// removeJobs filters taken jobs out of the queue, preserving order.
func removeJobs(q []*job, taken map[*job]bool) []*job {
	out := q[:0]
	for _, j := range q {
		if !taken[j] {
			out = append(out, j)
		}
	}
	return out
}
