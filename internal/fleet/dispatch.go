package fleet

import (
	"sort"

	"repro/internal/classify"
	"repro/internal/match"
	"repro/internal/sched"
)

// formGroup pops the next co-run group from the live queue (jobs that
// have arrived and are not yet dispatched, FIFO order) for a device of
// type t. It returns the members and whether the windowed ILP made the
// choice.
//
// Serial and FCFS reproduce the paper's baselines online; they ignore
// the device type (naive placement). The ILP policies adapt the offline
// matcher to the arrival setting and are placement-aware: classes and
// the interference matrix are the ones calibrated on type t's hardware,
// so the same queue can yield different groups for different device
// generations:
//
//   - shallow queue (fewer than GreedyBelow waiting): greedy formation
//     seeded with the oldest job, adding whichever waiting job
//     maximizes the group's Equation 3.4 efficiency. A deep
//     optimization over two jobs is pointless, and dispatching the
//     oldest job immediately keeps latency low.
//   - deep queue: solve the paper's ILP over the first Window jobs'
//     class composition and materialize the single best pattern that
//     includes the oldest job's class. Requiring the oldest job to be
//     schedulable guards against starvation — the ILP alone would
//     happily strand an awkward class forever while fresher arrivals
//     overtake it.
func (f *Fleet) formGroup(queue *[]*job, t int) (members []*job, usedILP bool) {
	q := *queue
	switch f.cfg.Policy {
	case sched.Serial:
		*queue = q[1:]
		return q[:1], false
	case sched.FCFS, sched.ProfileBased:
		n := f.cfg.NC
		if n > len(q) {
			n = len(q)
		}
		*queue = q[n:]
		return q[:n], false
	}
	// ILP / ILPSMRA.
	if len(q) >= f.cfg.GreedyBelow && len(q) >= f.cfg.NC {
		if g := f.formILPGroup(queue, t); g != nil {
			return g, true
		}
	}
	return f.formGreedyGroup(queue, t), false
}

// formGreedyGroup starts from the oldest waiting job and repeatedly
// adds the job whose inclusion yields the highest pattern efficiency on
// device type t's interference matrix. Candidates come from the same
// window prefix the ILP would see, so a deep queue does not make
// dispatch linear in the backlog.
func (f *Fleet) formGreedyGroup(queue *[]*job, t int) []*job {
	q := *queue
	matrix := f.types[t].Matrix()
	window := q
	if len(window) > f.cfg.Window {
		window = window[:f.cfg.Window]
	}
	members := []*job{q[0]}
	taken := map[*job]bool{q[0]: true}
	for len(members) < f.cfg.NC {
		var best *job
		bestEff := -1.0
		for _, cand := range window {
			if taken[cand] {
				continue
			}
			eff := match.Efficiency(matrix, pattern(members, cand, t))
			// Strict > keeps the earliest-arrived candidate on ties.
			if eff > bestEff {
				best, bestEff = cand, eff
			}
		}
		if best == nil {
			break
		}
		members = append(members, best)
		taken[best] = true
	}
	*queue = removeJobs(q, taken)
	return members
}

// formILPGroup solves the matcher over the queue's Window-prefix class
// composition as seen by device type t and materializes one group. It
// returns nil when the ILP cannot produce a pattern containing the
// oldest job's class (the caller falls back to greedy formation).
func (f *Fleet) formILPGroup(queue *[]*job, t int) []*job {
	q := *queue
	matrix := f.types[t].Matrix()
	window := q
	if len(window) > f.cfg.Window {
		window = window[:f.cfg.Window]
	}
	var counts [classify.NumClasses]int
	for _, j := range window {
		counts[j.apps[t].Class]++
	}
	res, err := match.Solve(matrix, counts, f.cfg.NC)
	if err != nil {
		return nil
	}
	// Among the patterns the ILP selected, take the most efficient one
	// that can dispatch the oldest waiting job.
	oldest := q[0].apps[t].Class
	best := -1
	for k, n := range res.Counts {
		if n == 0 || res.Patterns[k].Count(oldest) == 0 {
			continue
		}
		if best < 0 || res.Eff[k] > res.Eff[best] {
			best = k
		}
	}
	if best < 0 {
		return nil
	}
	// Materialize with the oldest waiting job of each required class.
	taken := make(map[*job]bool, f.cfg.NC)
	var members []*job
	for _, cls := range res.Patterns[best] {
		found := false
		for _, cand := range window {
			if cand.apps[t].Class == cls && !taken[cand] {
				members = append(members, cand)
				taken[cand] = true
				found = true
				break
			}
		}
		if !found {
			return nil // matcher over-committed; should not happen
		}
	}
	*queue = removeJobs(q, taken)
	return members
}

// pattern builds the sorted class multiset of members plus one extra,
// with classes as device type t sees them.
func pattern(members []*job, extra *job, t int) match.Pattern {
	p := make(match.Pattern, 0, len(members)+1)
	for _, m := range members {
		p = append(p, m.apps[t].Class)
	}
	p = append(p, extra.apps[t].Class)
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	return p
}

// removeJobs filters taken jobs out of the queue, preserving order.
func removeJobs(q []*job, taken map[*job]bool) []*job {
	out := q[:0]
	for _, j := range q {
		if !taken[j] {
			out = append(out, j)
		}
	}
	return out
}
