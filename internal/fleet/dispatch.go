package fleet

import (
	"math"
	"sort"

	"repro/internal/classify"
	"repro/internal/match"
	"repro/internal/sched"
)

// windowFor sizes the ILP window for one dispatch. A pinned
// Config.Window wins; otherwise the window adapts to what the matcher
// can actually exploit:
//
//   - queue depth: half the backlog, clamped to [MinWindow, MaxWindow] —
//     a shallow queue cannot fill a big window, and past MaxWindow the
//     extra choice stops paying for the larger ILP;
//   - class mix: the depth-sized window is scaled by the exponential of
//     the class entropy over the candidate prefix (the "effective number
//     of classes", 1..NumClasses). A one-class queue offers the matcher
//     no pairing choice, so a big window only delays jobs it will never
//     reorder; a uniform mix earns the full depth-sized window.
func (f *Fleet) windowFor(q []*job, t int) int {
	if f.cfg.Window > 0 {
		return f.cfg.Window
	}
	w := len(q) / 2
	if w < MinWindow {
		w = MinWindow
	}
	if w > MaxWindow {
		w = MaxWindow
	}
	prefix := q
	if len(prefix) > MaxWindow {
		prefix = prefix[:MaxWindow]
	}
	var counts [classify.NumClasses]int
	for _, j := range prefix {
		counts[j.apps[t].Class]++
	}
	h := 0.0
	for _, n := range counts {
		if n > 0 {
			p := float64(n) / float64(len(prefix))
			h -= p * math.Log(p)
		}
	}
	effective := math.Exp(h) // 1 (degenerate) .. NumClasses (uniform)
	scale := (effective - 1) / float64(classify.NumClasses-1)
	w = MinWindow + int(float64(w-MinWindow)*scale)
	return w
}

// dispatcher owns one event loop's dispatch scratch state: the solve
// memo, the aging-weight and class-pattern buffers group formation and
// the analytic engine reuse across calls, and the retired-flight pool.
// The classic loop builds one; each shard of a sharded run builds its
// own, so parallel loops never share mutable state (the Fleet itself is
// read-only after New). Everything here is buffer reuse and
// memoization — a dispatcher never changes what is dispatched.
type dispatcher struct {
	f *Fleet
	// solveMemo memoizes matcher solves per (type, window composition);
	// see solveWindow. Nil when the match tables are disabled.
	solveMemo []map[[classify.NumClasses]int]match.Result
	// agingW is the window-aligned aging-weight scratch agingWeights
	// fills (index i weights window[i]).
	agingW []float64
	// patBuf is the reused class-pattern scratch for modelReportInto.
	patBuf match.Pattern
	// free pools retired modeled flights for reuse: their member slice
	// and report buffers keep their capacity, so steady-state dispatch
	// recycles records instead of allocating one per group.
	free []*inflight
}

// newDispatcher builds the per-event-loop scratch state.
func (f *Fleet) newDispatcher() *dispatcher {
	d := &dispatcher{f: f}
	if f.ncPatterns != nil {
		d.solveMemo = make([]map[[classify.NumClasses]int]match.Result, len(f.types))
		for t := range d.solveMemo {
			d.solveMemo[t] = make(map[[classify.NumClasses]int]match.Result)
		}
	}
	return d
}

// newFlight returns a zeroed in-flight record, reusing a pooled one's
// buffers when available.
func (d *dispatcher) newFlight() *inflight {
	if n := len(d.free); n > 0 {
		fl := d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		return fl
	}
	return &inflight{}
}

// recycle returns a retired modeled flight's record to the pool,
// keeping the member slice and report buffers (which the modeled
// engine owns and overwrites wholesale) but dropping every reference.
// Only retired flights may be recycled: evicted ones remain lazily
// referenced by the completion heaps until a later peek discards them.
func (d *dispatcher) recycle(fl *inflight) {
	jobs := fl.jobs
	for i := range jobs {
		jobs[i] = nil
	}
	apps, classes, sts := fl.rep.Apps[:0], fl.rep.Classes[:0], fl.rep.Stats[:0]
	*fl = inflight{}
	fl.jobs = jobs[:0]
	fl.rep.Apps, fl.rep.Classes, fl.rep.Stats = apps, classes, sts
	d.free = append(d.free, fl)
}

// agingWeights fills the window-aligned aging scratch: entry i is
// window[i]'s wait normalized to the longest wait in the window, in
// [0,1]. A nil result means aging is off (zero weight or an empty
// window).
func (d *dispatcher) agingWeights(window []*job, now uint64) []float64 {
	if d.f.cfg.Aging == 0 || len(window) == 0 {
		return nil
	}
	maxWait := uint64(0)
	for _, j := range window {
		if w := now - j.arrival; w > maxWait {
			maxWait = w
		}
	}
	if maxWait == 0 {
		return nil
	}
	d.agingW = d.agingW[:0]
	for _, j := range window {
		d.agingW = append(d.agingW, float64(now-j.arrival)/float64(maxWait))
	}
	return d.agingW
}

// containsJob reports whether a formed group (at most NC members)
// already holds j — the linear scan that replaced the per-dispatch
// taken maps, allocation-free and faster at group sizes up to 8.
func containsJob(members []*job, j *job) bool {
	for _, m := range members {
		if m == j {
			return true
		}
	}
	return false
}

// formGroup pops the next co-run group from the live queue (jobs that
// have arrived and are not yet dispatched, priority order) for a device
// of type t at fleet cycle now. It returns the members and whether the
// windowed ILP made the choice.
//
// Serial and FCFS reproduce the paper's baselines online; they ignore
// the device type (naive placement). The ILP policies adapt the offline
// matcher to the arrival setting and are placement-aware: classes and
// the interference matrix are the ones calibrated on type t's hardware,
// so the same queue can yield different groups for different device
// generations:
//
//   - shallow queue (fewer than GreedyBelow waiting): greedy formation
//     seeded with the highest-priority job, adding whichever waiting job
//     maximizes the group's Equation 3.4 efficiency. A deep
//     optimization over two jobs is pointless, and dispatching the
//     oldest job immediately keeps latency low.
//   - deep queue: solve the paper's ILP over the first windowFor jobs'
//     class composition and materialize the single best pattern that
//     includes the head job's class. Requiring the head job to be
//     schedulable guards against starvation — the ILP alone would
//     happily strand an awkward class forever while fresher arrivals
//     overtake it.
//
// With Config.Aging set, both paths weight efficiency by member wait:
// patterns (and greedy candidates) whose members have waited longest get
// their efficiency multiplied by 1+Aging*w, so tail latency competes
// with raw packing. With SLO dispatch on, the queue is priority-ordered,
// so the seed job is the oldest waiting latency job whenever one exists.
// The members are appended into dst (the flight's reused member
// buffer, passed in truncated to length zero), so steady-state
// dispatch forms groups without allocating.
func (d *dispatcher) formGroup(dst []*job, queue *jobQueue, t int, now uint64) (members []*job, usedILP bool) {
	f := d.f
	switch f.cfg.Policy {
	case sched.Serial:
		dst = append(dst, queue.at(0))
		queue.advance(1)
		return dst, false
	case sched.FCFS, sched.ProfileBased:
		n := f.cfg.NC
		if n > queue.Len() {
			n = queue.Len()
		}
		dst = append(dst, queue.view()[:n]...)
		queue.advance(n)
		return dst, false
	}
	// ILP / ILPSMRA.
	if queue.Len() >= f.cfg.GreedyBelow && queue.Len() >= f.cfg.NC {
		if g := d.formILPGroup(dst, queue, t, now); g != nil {
			return g, true
		}
	}
	return d.formGreedyGroup(dst[:0], queue, t, now), false
}

// formGreedyGroup starts from the head waiting job and repeatedly adds
// the job whose inclusion yields the highest (age-weighted) pattern
// efficiency on device type t's interference matrix. Candidates come
// from the same window prefix the ILP would see, so a deep queue does
// not make dispatch linear in the backlog.
//
//simlint:hotpath
func (d *dispatcher) formGreedyGroup(dst []*job, queue *jobQueue, t int, now uint64) []*job {
	f := d.f
	q := queue.view()
	window := q
	if w := f.windowFor(q, t); len(window) > w {
		window = window[:w]
	}
	aging := d.agingWeights(window, now)
	dst = append(dst, q[0])
	for len(dst) < f.cfg.NC {
		best := -1
		bestEff := -1.0
		for wi, cand := range window {
			if containsJob(dst, cand) {
				continue
			}
			eff := f.patternEff(t, dst, cand)
			if aging != nil {
				eff *= 1 + f.cfg.Aging*aging[wi]
			}
			// Strict > keeps the earliest-arrived candidate on ties.
			if eff > bestEff {
				best, bestEff = wi, eff
			}
		}
		if best < 0 {
			break
		}
		dst = append(dst, window[best])
	}
	queue.removeJobs(dst)
	return dst
}

// formILPGroup solves the matcher over the queue's window-prefix class
// composition as seen by device type t and materializes one group. It
// returns nil when the ILP cannot produce a pattern containing the head
// job's class (the caller falls back to greedy formation). With aging
// active the pattern efficiencies handed to the solver are age-weighted
// per class (match.AgedEfficiencies), so a pattern containing a starved
// class outbids a marginally better-packing one.
//
//simlint:hotpath
func (d *dispatcher) formILPGroup(dst []*job, queue *jobQueue, t int, now uint64) []*job {
	f := d.f
	q := queue.view()
	window := q
	if w := f.windowFor(q, t); len(window) > w {
		window = window[:w]
	}
	var counts [classify.NumClasses]int
	for _, j := range window {
		counts[j.apps[t].Class]++
	}
	var res match.Result
	var err error
	if aging := d.agingWeights(window, now); aging != nil {
		// The aging path re-weights and re-solves per dispatch (waits
		// change every cycle, so the solve cannot be memoized); the
		// zero-allocation contract covers the memoized aging-off path.
		patterns, eff := f.ncPatternTable(t)
		var classWait [classify.NumClasses]float64
		for wi, j := range window {
			if w := aging[wi]; w > classWait[j.apps[t].Class] {
				classWait[j.apps[t].Class] = w
			}
		}
		eff = match.AgedEfficiencies(patterns, eff, classWait, f.cfg.Aging)
		res, err = match.SolveWithEff(patterns, eff, counts, f.cfg.NC)
	} else {
		res, err = d.solveWindow(t, counts)
	}
	if err != nil {
		return nil
	}
	// Among the patterns the ILP selected, take the most efficient one
	// that can dispatch the head waiting job.
	oldest := q[0].apps[t].Class
	best := -1
	for k, n := range res.Counts {
		if n == 0 || res.Patterns[k].Count(oldest) == 0 {
			continue
		}
		if best < 0 || res.Eff[k] > res.Eff[best] {
			best = k
		}
	}
	if best < 0 {
		return nil
	}
	// Materialize with the head waiting job of each required class.
	for _, cls := range res.Patterns[best] {
		found := false
		for _, cand := range window {
			if cand.apps[t].Class == cls && !containsJob(dst, cand) {
				dst = append(dst, cand)
				found = true
				break
			}
		}
		if !found {
			return nil // matcher over-committed; should not happen
		}
	}
	queue.removeJobs(dst)
	return dst
}

// --- Memoized matcher inputs -------------------------------------------
//
// formILPGroup used to re-enumerate every class pattern and re-score it
// against the matrix on every dispatch decision, and the greedy scorer
// allocated and sorted a fresh Pattern per candidate. At warehouse
// scale (tens of thousands of dispatches per run) that dominated the
// dispatcher, so New precomputes, per device type:
//
//   - the pattern list for every group size up to NC and each pattern's
//     Equation 3.4 efficiency (effAll, looked up by packed class key);
//   - the size-NC pattern/efficiency table the solver consumes;
//   - a solve memo keyed by the window's class composition — group
//     formation is a pure function of (type, counts) when aging is off,
//     and deep-queue phases repeat the same compositions constantly.
//
// The tables are only built for the ILP policies with 2 <= NC <= 8
// (the packed key holds eight classes); anything else falls back to
// the direct computation, which is exactly what the tables memoize.

// packPattern packs a non-decreasing class multiset into a uint64 key
// (one byte per class, offset so a leading class 0 still contributes,
// making keys of different sizes collision-free).
func packPattern(p []classify.Class) uint64 {
	k := uint64(0)
	for _, c := range p {
		k = k<<8 | (uint64(c) + 1)
	}
	return k
}

// buildMatchTables precomputes the pattern/efficiency tables; called
// from New after validation (matrices exist for the ILP policies).
func (f *Fleet) buildMatchTables() {
	if f.cfg.Policy != sched.ILP && f.cfg.Policy != sched.ILPSMRA {
		return
	}
	if f.cfg.NC < 2 || f.cfg.NC > 8 {
		return
	}
	f.patIndex = make(map[uint64]int)
	var all []match.Pattern
	for size := 2; size <= f.cfg.NC; size++ {
		for _, p := range match.Patterns(size) {
			f.patIndex[packPattern(p)] = len(all)
			all = append(all, p)
		}
	}
	f.ncPatterns = match.Patterns(f.cfg.NC)
	f.effAll = make([][]float64, len(f.types))
	f.ncEff = make([][]float64, len(f.types))
	for t := range f.types {
		m := f.types[t].Matrix()
		eff := make([]float64, len(all))
		for i, p := range all {
			eff[i] = match.Efficiency(m, p)
		}
		f.effAll[t] = eff
		nc := make([]float64, len(f.ncPatterns))
		for i, p := range f.ncPatterns {
			nc[i] = match.Efficiency(m, p)
		}
		f.ncEff[t] = nc
	}
}

// patternEff scores the group members plus one candidate: the memoized
// Equation 3.4 efficiency of their class multiset on device type t
// (identical to match.Efficiency on the sorted pattern, without the
// per-candidate allocation and re-scoring).
//
//simlint:hotpath
func (f *Fleet) patternEff(t int, members []*job, extra *job) float64 {
	if f.patIndex == nil {
		return match.Efficiency(f.types[t].Matrix(), pattern(members, extra, t))
	}
	var buf [8]classify.Class
	n := 0
	for _, m := range members {
		buf[n] = m.apps[t].Class
		n++
	}
	buf[n] = extra.apps[t].Class
	n++
	for i := 1; i < n; i++ {
		for j := i; j > 0 && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return f.effAll[t][f.patIndex[packPattern(buf[:n])]]
}

// ncPatternTable returns the size-NC patterns and their efficiencies on
// type t, from the precomputed tables when available.
func (f *Fleet) ncPatternTable(t int) ([]match.Pattern, []float64) {
	if f.ncPatterns != nil {
		return f.ncPatterns, f.ncEff[t]
	}
	patterns := match.Patterns(f.cfg.NC)
	eff := make([]float64, len(patterns))
	m := f.types[t].Matrix()
	for k, p := range patterns {
		eff[k] = match.Efficiency(m, p)
	}
	return patterns, eff
}

// solveWindow runs the matcher over one window composition, memoized
// per device type: with aging off the solve is a pure function of the
// class counts, and saturated phases present the same composition for
// thousands of consecutive dispatches. The memo lives on the
// dispatcher (not the Fleet) so each shard's event loop memoizes
// privately and the Fleet stays read-only under concurrency.
func (d *dispatcher) solveWindow(t int, counts [classify.NumClasses]int) (match.Result, error) {
	f := d.f
	if d.solveMemo == nil {
		return match.Solve(f.types[t].Matrix(), counts, f.cfg.NC)
	}
	if res, ok := d.solveMemo[t][counts]; ok {
		return res, nil
	}
	res, err := match.SolveWithEff(f.ncPatterns, f.ncEff[t], counts, f.cfg.NC)
	if err != nil {
		return match.Result{}, err
	}
	d.solveMemo[t][counts] = res
	return res, nil
}

// pattern builds the sorted class multiset of members plus one extra,
// with classes as device type t sees them (the fallback path when the
// memo tables are disabled).
func pattern(members []*job, extra *job, t int) match.Pattern {
	p := make(match.Pattern, 0, len(members)+1)
	for _, m := range members {
		p = append(p, m.apps[t].Class)
	}
	p = append(p, extra.apps[t].Class)
	sort.SliceStable(p, func(i, j int) bool { return p[i] < p[j] })
	return p
}
