package fleet

import (
	"fmt"
	"strings"
	"testing"
)

// renderRoster is the canonical spelling of parsed roster entries —
// what ParseRoster's round-trip property re-parses.
func renderRoster(entries []RosterEntry) string {
	var b strings.Builder
	for i, e := range entries {
		if i > 0 {
			b.WriteByte(',')
		}
		if e.Count == 1 {
			b.WriteString(e.Name)
		} else {
			fmt.Fprintf(&b, "%dx%s", e.Count, e.Name)
		}
	}
	return b.String()
}

// FuzzParseRoster drives the roster parser with arbitrary input. The
// parser must never panic, and any accepted input must round-trip: the
// canonical rendering of the parsed entries re-parses to the very same
// entries.
func FuzzParseRoster(f *testing.F) {
	for _, seed := range []string{
		"GTX480", "gtx480-60sm", "Small", "small-8sm",
		"2xGTX480,2xSmall-8SM", "1xGTX480", " GTX480 , Small ",
		"", ",", "0xGTX480", "-1xSmall", "2x", "x", "2xNope",
		"GTX480,,Small", "999999999999999999999xGTX480",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		entries, err := ParseRoster(s)
		if err != nil {
			return
		}
		if len(entries) == 0 {
			t.Fatalf("ParseRoster(%q) accepted with no entries", s)
		}
		for _, e := range entries {
			if e.Count < 1 {
				t.Fatalf("ParseRoster(%q) produced count %d", s, e.Count)
			}
			if e.Name == "" {
				t.Fatalf("ParseRoster(%q) produced an empty name", s)
			}
		}
		canon := renderRoster(entries)
		again, err := ParseRoster(canon)
		if err != nil {
			t.Fatalf("ParseRoster(%q) round-trip %q rejected: %v", s, canon, err)
		}
		if len(again) != len(entries) {
			t.Fatalf("ParseRoster(%q) round-trip %q: %d entries, want %d", s, canon, len(again), len(entries))
		}
		for i := range entries {
			if again[i] != entries[i] {
				t.Fatalf("ParseRoster(%q) round-trip %q: entry %d = %+v, want %+v", s, canon, i, again[i], entries[i])
			}
		}
	})
}

// renderTrace is the canonical spelling of parsed trace arrivals.
func renderTrace(arrivals []Arrival) string {
	var b strings.Builder
	for i, a := range arrivals {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s@%d", a.Name, a.Cycle)
		if a.SLO == Latency {
			fmt.Fprintf(&b, "!%d", a.Deadline)
		}
	}
	return b.String()
}

// FuzzParseTrace drives the NAME@CYCLE[!DEADLINE] trace parser with
// arbitrary input: never panic, and accepted inputs round-trip through
// the canonical rendering.
func FuzzParseTrace(f *testing.F) {
	for _, seed := range []string{
		"mm@0", "mm@0,conv@5000", "mm@100!60000",
		"mm@0!0", " mm @5 ", "a@1,b@2!3,c@4",
		"", "@5", "mm@", "mm@-1", "mm@1.5", "mm@1!x",
		"mm@18446744073709551615", "mm@18446744073709551616",
		"a@@5", "a!5@1", ",", "a@5,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		arrivals, err := ParseTrace(s)
		if err != nil {
			return
		}
		if len(arrivals) == 0 {
			t.Fatalf("ParseTrace(%q) accepted with no arrivals", s)
		}
		for _, a := range arrivals {
			if a.Name == "" {
				t.Fatalf("ParseTrace(%q) produced an empty name", s)
			}
			if a.SLO == Batch && a.Deadline != 0 {
				t.Fatalf("ParseTrace(%q) produced a batch arrival with a deadline: %+v", s, a)
			}
		}
		canon := renderTrace(arrivals)
		again, err := ParseTrace(canon)
		if err != nil {
			t.Fatalf("ParseTrace(%q) round-trip %q rejected: %v", s, canon, err)
		}
		if len(again) != len(arrivals) {
			t.Fatalf("ParseTrace(%q) round-trip %q: %d arrivals, want %d", s, canon, len(again), len(arrivals))
		}
		for i := range arrivals {
			if again[i] != arrivals[i] {
				t.Fatalf("ParseTrace(%q) round-trip %q: arrival %d = %+v, want %+v", s, canon, i, again[i], arrivals[i])
			}
		}
	})
}

// FuzzParseChaos drives the KIND@CYCLE:DEV chaos-trace parser with
// arbitrary input: never panic, and accepted inputs round-trip through
// FormatChaos, the canonical rendering.
func FuzzParseChaos(f *testing.F) {
	for _, seed := range []string{
		"fail@1000:2", "drain@0:0", "restore@500:1",
		"fail@1000:0,restore@2000:0", "FAIL@9:3", " fail@5:0 , drain@6:1 ",
		"fail@18446744073709551615:0", "fail@18446744073709551616:0",
		"", ",", "fail", "fail@", "fail@5", "fail@5:", "fail@:1",
		"fail@-5:0", "fail@5:-1", "fail@5.5:0", "evict@5:0", "@5:0",
		"fail@5:0,", "fail@5:0:9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		events, err := ParseChaos(s)
		if err != nil {
			return
		}
		if len(events) == 0 {
			t.Fatalf("ParseChaos(%q) accepted with no events", s)
		}
		for _, ev := range events {
			if ev.Device < 0 {
				t.Fatalf("ParseChaos(%q) produced device %d", s, ev.Device)
			}
			switch ev.Kind {
			case ChaosFail, ChaosDrain, ChaosRestore:
			default:
				t.Fatalf("ParseChaos(%q) produced kind %v", s, ev.Kind)
			}
		}
		canon := FormatChaos(events)
		again, err := ParseChaos(canon)
		if err != nil {
			t.Fatalf("ParseChaos(%q) round-trip %q rejected: %v", s, canon, err)
		}
		if len(again) != len(events) {
			t.Fatalf("ParseChaos(%q) round-trip %q: %d events, want %d", s, canon, len(again), len(events))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("ParseChaos(%q) round-trip %q: event %d = %+v, want %+v", s, canon, i, again[i], events[i])
			}
		}
		if FormatChaos(again) != canon {
			t.Fatalf("ParseChaos(%q): canonical form %q is not a fixed point", s, canon)
		}
	})
}

// FuzzParseControls drives the admission and autoscale spelling
// parsers together (they share the PREFIX:VALUE shape): never panic,
// and accepted inputs re-parse to the same configuration.
func FuzzParseControls(f *testing.F) {
	for _, seed := range []string{
		"off", "OFF", "", "reject:60000", "degrade:25000",
		"reject:0", "reject:", "reject", "admit:5", "degrade:-1",
		"1:4", "2:8", "0:4", "4:2", "1:", ":4", "1:4:9", "x:y",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if adm, err := ParseAdmission(s); err == nil {
			if adm.Enabled && adm.MaxWait == 0 {
				t.Fatalf("ParseAdmission(%q) enabled with zero bound", s)
			}
			again, err := ParseAdmission(s)
			if err != nil || again != adm {
				t.Fatalf("ParseAdmission(%q) not stable: %+v vs %+v (%v)", s, adm, again, err)
			}
		}
		if as, err := ParseAutoscale(s); err == nil {
			if as.Enabled && (as.Min < 1 || as.Max < as.Min) {
				t.Fatalf("ParseAutoscale(%q) accepted invalid bounds: %+v", s, as)
			}
			again, err := ParseAutoscale(s)
			if err != nil || again != as {
				t.Fatalf("ParseAutoscale(%q) not stable: %+v vs %+v (%v)", s, as, again, err)
			}
		}
	})
}
