package fleet

import "sort"

// jobQueue is the live dispatch queue: jobs that have arrived and are
// not (currently) dispatched, in dispatch-priority order. It is
// head-indexed so the two operations the event loop performs per
// dispatch stay cheap at warehouse scale:
//
//   - insert: binary search for the position (latency class before
//     batch when SLO-aware, then arrival cycle, then arrival index).
//     Arrivals are admitted in cycle order, so in the common case the
//     position is the tail and insertion is an O(1) append; only
//     evicted jobs re-entering the queue pay the mid-queue copy.
//   - removeJobs: group formation only ever draws members from the
//     queue's window prefix (at most MaxWindow deep, or the FCFS/Serial
//     head), so removal compacts the surviving prefix entries onto the
//     freed slots and advances the head — O(window), independent of the
//     backlog depth behind it.
//
// A 100k-job bursty backlog would make the old []*job representation
// (full-slice filter per dispatch, full-slice copy per mid-queue
// insert) quadratic; this keeps the queue out of the event core's
// O(log n) budget.
type jobQueue struct {
	buf  []*job
	head int
	// slo selects SLO-aware ordering (latency before batch).
	slo bool
	// latency counts waiting Latency-class jobs, maintained by the
	// mutators below so the observability sampler reads the queue's class
	// split in O(1) instead of walking the backlog every interval.
	latency int
	// work sums the waiting jobs' mean solo cycles (job.soloEst),
	// maintained alongside latency so the admission predictor reads the
	// backlog's service demand in O(1). cowork sums the
	// interference-inflated estimates (job.coEst) the modeled predictor
	// reads instead; both are two integer ops per mutation, so they are
	// kept unconditionally.
	work   uint64
	cowork uint64
}

// Len is the number of waiting jobs.
func (q *jobQueue) Len() int { return len(q.buf) - q.head }

// view is the waiting jobs in dispatch-priority order. The slice
// aliases the queue; callers must not hold it across mutations.
func (q *jobQueue) view() []*job { return q.buf[q.head:] }

// at returns the i-th waiting job (0 = next to dispatch).
func (q *jobQueue) at(i int) *job { return q.buf[q.head+i] }

// before is the dispatch-priority order: latency class before batch
// when SLO-aware dispatch is on, then arrival cycle, then arrival
// index. With SLO dispatch off every job has equal priority, so
// admission order (arrival order) is preserved exactly; with it on,
// evicted batch jobs re-enter among the batch segment at their
// arrival-order position — ahead of younger waiting batch work, behind
// every latency job.
func (q *jobQueue) before(a, b *job) bool {
	if q.slo && a.slo != b.slo {
		return a.slo == Latency
	}
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.id < b.id
}

// insert places j at its priority position.
func (q *jobQueue) insert(j *job) {
	if j.slo == Latency {
		q.latency++
	}
	q.work += j.soloEst
	q.cowork += j.coEst
	j.state = jsWaiting
	v := q.view()
	pos := sort.Search(len(v), func(i int) bool { return q.before(j, v[i]) })
	q.buf = append(q.buf, j)
	if pos == len(v) {
		return
	}
	at := q.head + pos
	copy(q.buf[at+1:], q.buf[at:])
	q.buf[at] = j
}

// advance pops the first n waiting jobs (the FCFS/Serial paths, whose
// groups are exactly the queue prefix).
func (q *jobQueue) advance(n int) {
	for k := q.head; k < q.head+n; k++ {
		if q.buf[k].slo == Latency {
			q.latency--
		}
		q.work -= q.buf[k].soloEst
		q.cowork -= q.buf[k].coEst
		q.buf[k] = nil
	}
	q.head += n
	q.compact()
}

// removeJobs removes the given jobs (a just-formed group, at most NC
// entries) from the queue, preserving the order of the survivors.
// Every member must lie in the queue prefix group formation scanned
// (the dispatch window); the scan stops as soon as all of them are
// found, so the cost is O(window · NC + survivors in the prefix),
// never O(backlog), and — unlike the taken-map predecessor — it
// allocates nothing.
func (q *jobQueue) removeJobs(members []*job) {
	if len(members) == 0 {
		return
	}
	found := 0
	// kept collects prefix survivors; bounded by the dispatch window,
	// so the stack buffer almost always suffices.
	var keptBuf [MaxWindow]*job
	kept := keptBuf[:0]
	i := q.head
	for ; i < len(q.buf) && found < len(members); i++ {
		if containsJob(members, q.buf[i]) {
			found++
			if q.buf[i].slo == Latency {
				q.latency--
			}
			q.work -= q.buf[i].soloEst
			q.cowork -= q.buf[i].coEst
		} else {
			kept = append(kept, q.buf[i])
		}
	}
	newHead := i - len(kept)
	copy(q.buf[newHead:i], kept)
	// Nil out the freed slots so completed jobs do not pin the arrays
	// they reference for the queue's lifetime.
	for k := q.head; k < newHead; k++ {
		q.buf[k] = nil
	}
	q.head = newHead
	q.compact()
}

// compact slides the live suffix back to the front once the dead
// prefix dominates the buffer. Without it the head-indexed buffer only
// ever grows (inserts append at the tail while the head advances), so
// a long run reallocates forever and holds O(total jobs) slots; with
// it the buffer is bounded by twice the live backlog and steady-state
// dispatch stays allocation-free. The copy is amortized O(1) per
// removed job: each compaction moves at most as many entries as were
// consumed since the last one.
func (q *jobQueue) compact() {
	if q.head < MaxWindow || q.head*2 < len(q.buf) {
		return
	}
	n := copy(q.buf, q.buf[q.head:])
	for k := n; k < len(q.buf); k++ {
		q.buf[k] = nil
	}
	q.buf = q.buf[:n]
	q.head = 0
}
