package fleet

import (
	"fmt"

	"repro/internal/obs"
)

// The observability sampler. With Config.SampleEvery > 0 the event loop
// owns one sampler and the run's Result carries an obs.Series with one
// row per SampleEvery cycles of fleet time (plus a final partial row at
// the makespan when it does not land on a boundary). Each row reports
// the state "at the end of" its cycle: the loop emits a boundary's row
// only once simulated time provably advances past it, so all events at
// the boundary cycle itself (arrivals admitted, groups dispatched or
// retired there) are folded in. Between events the fleet's state is
// constant, which is what makes sampling on the event-time grid exact —
// there is nothing to observe between two events.
//
// Everything in a row is an integer and the sampling order is a pure
// function of the (already deterministic) event order, so identical
// seeds produce byte-identical series whatever the host is doing — the
// same contract the summary keeps, extended to the time axis.
//
// Row columns, fixed part first:
//
//	cycle          the sample's fleet cycle (the interval's right edge)
//	queue          waiting jobs, total / latency class / batch class
//	queue_latency
//	queue_batch
//	running        jobs currently executing across the fleet
//	busy_devices   devices with a group in flight
//	done           cumulative completed jobs
//	missed         cumulative latency jobs that completed past deadline
//	evictions      cumulative preemption events
//	groups         cumulative dispatched-and-completed groups,
//	groups_cycle   split by completion engine (cycle-accurate vs
//	groups_modeled analytic model)
//
// then, per device d: d<N>_inflight (members of the group executing on
// d, 0 = idle) and d<N>_busy (cycles of the row's interval d spent
// executing — interval-exact utilization, filled in when flights retire
// or are evicted since only then is the span known).
//
// The sampler allocates its buffers up front and reuses one scratch row
// per emission; with sampling off the event loop carries a nil pointer
// and pays nothing — the zero-steady-state-allocation property of the
// hot loop is preserved either way.
type sampler struct {
	interval uint64
	devices  int
	// extra selects the control-column block (submitted/rejected/…,
	// control.go); fixed is the per-device columns' base offset —
	// numFixedCols, plus numCtlCols when extra is on. Keeping the block
	// conditional keeps control-free series byte-identical to the
	// historical (golden-locked) layout.
	extra bool
	// chaos appends the chaos-column block (failed/draining gauges)
	// after the control block; it is only ever set together with extra,
	// because chaos enables the control surface.
	chaos bool
	fixed int
	// ctl is the owning loop's control block (nil without one); emit
	// reads its active-device gauge.
	ctl    *loopCtl
	series *obs.Series
	// scratch is the reused row buffer Append copies from.
	scratch []uint64
	// lastEdge is the most recently emitted boundary cycle.
	lastEdge uint64
	// busy accumulates per-interval per-device busy cycles, flat
	// [bucket*devices + d]; bucket k covers [k*interval, (k+1)*interval).
	busy []uint64
	// done and missed are the cumulative per-job counters the Result
	// does not track incrementally.
	done, missed uint64
}

// Fixed columns ahead of the per-device pairs.
const (
	colCycle = iota
	colQueue
	colQueueLatency
	colQueueBatch
	colRunning
	colBusyDevices
	colDone
	colMissed
	colEvictions
	colGroups
	colGroupsCycle
	colGroupsModeled
	numFixedCols
)

// The control-column block, present exactly when a control surface is
// configured (sampler.extra): cumulative submission/outcome counters
// plus the active-device gauge the autoscaler moves.
const (
	colSubmitted = numFixedCols + iota
	colRejected
	colDegraded
	colAbandoned
	colRetried
	colActiveDevices
	numCtlCols = iota
)

// The chaos-column block, present exactly when failure injection is
// configured (sampler.chaos): gauges of how many devices are currently
// failed or draining. Chaos implies a control surface (ctlEnabled), so
// the block always follows the control block and these absolute
// offsets hold whenever it is emitted.
const (
	colFailedDevices = numFixedCols + numCtlCols + iota
	colDrainingDevices
	numChaosCols = iota
)

// newSampler builds the sampler for a fleet of the given device count.
// extra appends the control-column block ahead of the per-device pairs;
// chaos appends the failed/draining gauges after it.
func newSampler(interval uint64, devices int, extra, chaos bool) *sampler {
	fixed := numFixedCols
	if extra {
		fixed += numCtlCols
	}
	if chaos {
		fixed += numChaosCols
	}
	cols := make([]string, 0, fixed+2*devices)
	cols = append(cols, "cycle", "queue", "queue_latency", "queue_batch",
		"running", "busy_devices", "done", "missed", "evictions",
		"groups", "groups_cycle", "groups_modeled")
	if extra {
		cols = append(cols, "submitted", "rejected", "degraded",
			"abandoned", "retried", "active_devices")
	}
	if chaos {
		cols = append(cols, "failed_devices", "draining_devices")
	}
	for d := 0; d < devices; d++ {
		cols = append(cols, fmt.Sprintf("d%d_inflight", d))
	}
	for d := 0; d < devices; d++ {
		cols = append(cols, fmt.Sprintf("d%d_busy", d))
	}
	return &sampler{
		interval: interval,
		devices:  devices,
		extra:    extra,
		chaos:    chaos,
		fixed:    fixed,
		series:   obs.NewSeries(interval, cols, 64),
		scratch:  make([]uint64, len(cols)),
	}
}

// advanceTo emits a row for every boundary strictly between the last
// emitted one and next, with the current (pre-advance) state. Events at
// next have not happened yet, so boundaries equal to next wait for a
// later advance (or finish) — their rows then include those events.
func (s *sampler) advanceTo(next uint64, q *jobQueue, flightOf []*inflight, res *Result) {
	for edge := s.lastEdge + s.interval; edge < next; edge += s.interval {
		s.emit(edge, q, flightOf, res)
	}
}

// noteRetire folds one retired flight's jobs into the cumulative done
// and deadline-miss counters (retire itself keeps Result incremental
// for everything else).
func (s *sampler) noteRetire(fl *inflight) {
	s.done += uint64(len(fl.jobs))
	for _, j := range fl.jobs {
		if j.slo == Latency && j.complete > j.deadlineAbs() {
			s.missed++
		}
	}
}

// addBusy charges device d's busy span [start, end) to the interval
// buckets it overlaps. Called when the span becomes known: at retire
// (dispatch to completion) and at eviction (dispatch to the eviction
// cycle). Total work over a run is one bucket visit per busy interval,
// O(makespan·devices/interval) — off the per-event critical path.
func (s *sampler) addBusy(d int, start, end uint64) {
	if end <= start {
		return
	}
	last := (end - 1) / s.interval
	s.growBuckets(last)
	for b := start / s.interval; b <= last; b++ {
		lo, hi := b*s.interval, (b+1)*s.interval
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		s.busy[int(b)*s.devices+d] += hi - lo
	}
}

// growBuckets extends the busy accounting out to bucket b.
func (s *sampler) growBuckets(b uint64) {
	need := (int(b) + 1) * s.devices
	for len(s.busy) < need {
		s.busy = append(s.busy, 0)
	}
}

// emit appends one row at cycle edge from the live loop state.
//
//simlint:hotpath
func (s *sampler) emit(edge uint64, q *jobQueue, flightOf []*inflight, res *Result) {
	row := s.scratch
	row[colCycle] = edge
	row[colQueue] = uint64(q.Len())
	row[colQueueLatency] = uint64(q.latency)
	row[colQueueBatch] = uint64(q.Len() - q.latency)
	running, busyDevs := uint64(0), uint64(0)
	for d, fl := range flightOf {
		n := uint64(0)
		if fl != nil {
			n = uint64(len(fl.jobs))
			busyDevs++
		}
		running += n
		row[s.fixed+d] = n
	}
	row[colRunning] = running
	row[colBusyDevices] = busyDevs
	row[colDone] = s.done
	row[colMissed] = s.missed
	row[colEvictions] = uint64(len(res.Evictions))
	row[colGroups] = uint64(res.Groups)
	row[colGroupsCycle] = uint64(res.CycleGroups)
	row[colGroupsModeled] = uint64(res.ModeledGroups)
	if s.extra {
		row[colSubmitted] = uint64(res.Submitted)
		row[colRejected] = uint64(res.Rejected)
		row[colDegraded] = uint64(res.Degraded)
		row[colAbandoned] = uint64(res.Abandoned)
		row[colRetried] = uint64(res.Retried)
		active := uint64(0)
		if s.ctl != nil {
			active = uint64(s.ctl.activeCount)
		}
		row[colActiveDevices] = active
	}
	if s.chaos {
		failed, draining := uint64(0), uint64(0)
		if s.ctl != nil {
			failed = uint64(s.ctl.failedCount)
			draining = uint64(s.ctl.drainingCount)
		}
		row[colFailedDevices] = failed
		row[colDrainingDevices] = draining
	}
	// Busy cycles are merged later (finish), once every overlapping
	// flight has retired; zero them here so a reused scratch row cannot
	// leak a previous sample's values.
	for d := 0; d < s.devices; d++ {
		row[s.fixed+s.devices+d] = 0
	}
	s.series.Append(row)
	s.lastEdge = edge
}

// mergeShardSeries folds the per-shard samplers into one fleet-wide
// series, row by row in interval order. Every shard samples the same
// edge grid (same interval, clocks start at 0) and is finished against
// the global makespan, so row r means the same cycle everywhere: the
// fixed columns — all either gauges of disjoint state or cumulative
// counters of disjoint events — sum across shards, and each shard's
// local device columns land at their global indices. The result is
// byte-identical to what a single sampler over the same merged event
// stream would have produced.
func mergeShardSeries(f *Fleet, shards []*shard, makespan uint64) (*obs.Series, error) {
	devices := len(f.devType)
	merged := newSampler(f.cfg.SampleEvery, devices, f.ctlEnabled(), f.cfg.Chaos.Enabled)
	// Control events (abandons, retries, scale ticks) can fire after a
	// shard's last completion, pushing its sampler past the fleet-wide
	// makespan; finishing every shard against the furthest horizon keeps
	// the per-shard row grids identical.
	horizon := makespan
	for _, s := range shards {
		if s.col.lastEdge > horizon {
			horizon = s.col.lastEdge
		}
	}
	parts := make([]*obs.Series, len(shards))
	for i, s := range shards {
		parts[i] = s.col.finish(horizon, &s.queue, s.flightOf, &s.res)
	}
	rows := parts[0].Rows()
	for _, p := range parts[1:] {
		if p.Rows() != rows {
			return nil, fmt.Errorf("fleet: shard series diverge (%d rows vs %d)", p.Rows(), rows)
		}
	}
	row := merged.scratch
	for r := 0; r < rows; r++ {
		for c := range row {
			row[c] = 0
		}
		row[colCycle] = parts[0].At(r, colCycle)
		for i, p := range parts {
			// Every fixed column past the cycle — the control block
			// included — is a gauge of disjoint state or a counter of
			// disjoint events, so summing across shards is exact.
			for c := colQueue; c < merged.fixed; c++ {
				row[c] += p.At(r, c)
			}
			s := shards[i]
			nd := len(s.devices)
			for local, d := range s.devices {
				row[merged.fixed+d] = p.At(r, merged.fixed+local)
				row[merged.fixed+devices+d] = p.At(r, merged.fixed+nd+local)
			}
		}
		merged.series.Append(row)
	}
	return merged.series, nil
}

// finish emits the remaining boundaries up to the makespan with the
// final state, appends a partial row at the makespan itself when it is
// not on a boundary, merges the per-interval busy accounting into the
// d<N>_busy columns, and returns the completed series.
func (s *sampler) finish(makespan uint64, q *jobQueue, flightOf []*inflight, res *Result) *obs.Series {
	for edge := s.lastEdge + s.interval; edge <= makespan; edge += s.interval {
		s.emit(edge, q, flightOf, res)
	}
	if s.lastEdge < makespan {
		s.emit(makespan, q, flightOf, res)
	}
	// Row k covers bucket k by construction: full rows sit at edge
	// (k+1)*interval, and the single partial row (if any) is last, over
	// the tail bucket.
	for r := 0; r < s.series.Rows(); r++ {
		for d := 0; d < s.devices; d++ {
			if i := r*s.devices + d; i < len(s.busy) {
				s.series.Set(r, s.fixed+s.devices+d, s.busy[i])
			}
		}
	}
	return s.series
}
