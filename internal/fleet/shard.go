package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// The sharded event core. With Config.Shards = K > 1 the roster is
// partitioned into K fixed device sets, each owned by an independent
// event loop — its own clock, queue, dispatcher scratch, completion
// heap and sampler — running on its own goroutine. Shards couple only
// through the arrival router, so the loops need no locks and no shared
// mutable state: everything a shard touches is either its own or
// read-only on the Fleet.
//
// Determinism is preserved by construction, not by luck:
//
//   - routing happens at epoch barriers. Time is cut into fixed
//     ShardEpoch windows; before assigning a window's arrivals the
//     coordinator runs every shard up to the window's start, so each
//     shard's load is a settled, host-independent function of the
//     already-routed arrivals. Arrivals are then assigned one at a
//     time to the least-loaded shard (ties to the lowest shard id) —
//     a pure function of deterministic state.
//   - inside an epoch each shard is the classic single-threaded DES
//     over its own devices; goroutine scheduling cannot reorder its
//     events because no other goroutine shares its state.
//   - the merge is order-fixed: per-device accounting lands at global
//     device indices, counters sum, eviction records sort by their
//     (cycle, device) total order, job records are emitted in global
//     arrival order, and time-series rows merge row-by-row on the
//     shared interval grid (mergeShardSeries).
//
// One shard degenerates to the classic loop, which is why Run only
// branches here for Shards > 1 — shards=1 output stays byte-identical
// to previous releases by running the previous code.

// DefaultShardEpoch is the router's synchronization quantum (fleet
// cycles) when Config.ShardEpoch is unset. Small epochs track load
// closely but synchronize often; 64k cycles is a few dispatch rounds
// on realistic workloads.
const DefaultShardEpoch = 1 << 16

// shard is one partition's event loop state.
type shard struct {
	f  *Fleet
	id int
	// devices are the global device indices this shard owns, ascending;
	// slot inverts the mapping (global index -> local slot, -1 when the
	// device belongs to another shard).
	devices []int
	slot    []int
	// The classic loop's per-run state, one copy per shard. flightOf is
	// indexed by local slot; the queue, heap and dispatcher are private.
	flightOf []*inflight
	queue    jobQueue
	resolved flightHeap
	idleDevs deviceHeap
	disp     *dispatcher
	col      *sampler
	now      uint64
	seq      int
	// arr is the shard's routed arrival stream (global arrival order is
	// preserved within a shard); the coordinator appends between epochs,
	// while the shard goroutine is parked at the barrier.
	arr     []*job
	nextArr int
	// ctl is the shard's control block (nil without control surfaces);
	// remaining counts the shard's unsettled jobs — routed or client-
	// owned submissions not yet completed, rejected or abandoned.
	ctl       *loopCtl
	remaining int
	// res accumulates the shard's share of the accounting. DeviceBusy is
	// global-sized so retire and evict index it by global device id.
	res Result
	err error
}

// newShards partitions the roster. Devices are dealt round-robin over
// the placement order, so every shard gets an equal slice of each
// speed tier and the fastest-idle-first dispatch rule keeps meaning
// the same thing inside a shard as it did globally.
func (f *Fleet) newShards() []*shard {
	k := f.cfg.Shards
	total := len(f.devType)
	shards := make([]*shard, k)
	for s := range shards {
		shards[s] = &shard{
			f:        f,
			id:       s,
			queue:    jobQueue{slo: f.cfg.SLO.Enabled},
			resolved: flightHeap{live: flightResolved, less: completionLess},
			idleDevs: deviceHeap{pos: f.orderPos},
			disp:     f.newDispatcher(),
		}
	}
	for i, d := range f.order {
		s := shards[i%k]
		s.devices = append(s.devices, d)
	}
	ctlOn := f.ctlEnabled()
	// The chaos schedule is resolved once, globally; each shard's ctl
	// keeps only the events for devices it owns (initChaos drops foreign
	// ones via the slot map), so every schedule event executes exactly
	// once regardless of the shard count.
	var chaosEvents []ChaosEvent
	if f.cfg.Chaos.Enabled {
		chaosEvents = f.resolveChaos()
	}
	for _, s := range shards {
		// Ascending global index keeps the sampler's local device columns
		// (and the busy accounting) in global order within the shard.
		sort.Ints(s.devices)
		s.slot = make([]int, total)
		for i := range s.slot {
			s.slot[i] = -1
		}
		for i, d := range s.devices {
			s.slot[d] = i
		}
		s.flightOf = make([]*inflight, len(s.devices))
		s.res.DeviceBusy = make([]uint64, total)
		if ctlOn {
			// The shard's devices in placement order, and its round-robin
			// share of the autoscale bounds (splitBound matches the deal
			// above, so per-shard bounds sum to the global ones).
			pdevs := append([]int(nil), s.devices...)
			sort.SliceStable(pdevs, func(a, b int) bool {
				return f.orderPos[pdevs[a]] < f.orderPos[pdevs[b]]
			})
			minD, maxD := len(pdevs), len(pdevs)
			if f.cfg.Autoscale.Enabled {
				minD = splitBound(f.cfg.Autoscale.Min, k, s.id)
				maxD = splitBound(f.cfg.Autoscale.Max, k, s.id)
			}
			s.ctl = f.newLoopCtl(&s.res, &s.queue, &s.idleDevs, s.flightOf,
				s.slot, &s.remaining, pdevs, minD, maxD)
			if chaosEvents != nil {
				s.ctl.initChaos(chaosEvents)
				// Shards are modeled-only, so a failed flight needs no
				// worker bookkeeping — only its busy time on the shard's
				// local sampler column (the closure reads s.col at fire
				// time, after it is built below).
				s.ctl.onChaosEvict = func(fl *inflight, at uint64) {
					if s.col != nil {
						s.col.addBusy(s.slot[fl.device], fl.dispatch, at)
					}
				}
			}
		}
		for _, d := range s.devices {
			if s.ctl == nil || s.ctl.active[d] {
				s.idleDevs.push(d)
			}
		}
		if f.cfg.SampleEvery > 0 {
			s.col = newSampler(f.cfg.SampleEvery, len(s.devices), ctlOn, f.cfg.Chaos.Enabled)
			s.col.ctl = s.ctl
		}
	}
	return shards
}

// completionLess is the resolved-heap order (completion cycle, then
// device), shared with the classic loop's heap.
func completionLess(a, b *inflight) bool {
	return a.complete < b.complete || (a.complete == b.complete && a.device < b.device)
}

// load is the shard's routing weight at an epoch barrier: jobs waiting
// or assigned plus jobs in flight. Pure function of the shard's settled
// state, so the router's least-loaded choice is deterministic.
func (s *shard) load() int {
	n := s.queue.Len() + (len(s.arr) - s.nextArr)
	for _, fl := range s.flightOf {
		if fl != nil {
			n += len(fl.jobs)
		}
	}
	return n
}

// runUntil advances the shard's event loop through every event strictly
// before limit, then parks the clock at the barrier. It is the classic
// loop specialized to the modeled engine: flights are born resolved, so
// there is no worker pool, no speculation and no unresolved heap. With
// limit = MaxUint64 it drains the shard completely.
//
//simlint:hotpath
func (s *shard) runUntil(limit uint64) {
	if s.err != nil {
		return
	}
	f := s.f
	const inf = math.MaxUint64
	for {
		// Admit arrivals due by now (priority order when SLO-aware);
		// admission control may reject or degrade a submission first.
		for s.nextArr < len(s.arr) && s.arr[s.nextArr].arrival <= s.now {
			j := s.arr[s.nextArr]
			s.nextArr++
			if s.ctl != nil && !s.ctl.admitOpen(j, s.now) {
				continue
			}
			s.queue.insert(j)
		}
		// Dispatch to idle devices while work is waiting, fastest first.
		for s.queue.Len() > 0 {
			d := s.idleDevs.pop()
			if d < 0 {
				break
			}
			t := f.devType[d]
			fl := s.disp.newFlight()
			members, usedILP := s.disp.formGroup(fl.jobs[:0], &s.queue, t, s.now)
			for _, m := range members {
				m.state = jsRunning
			}
			fl.device = d
			fl.typ = t
			fl.dispatch = s.now
			fl.seq = s.seq
			fl.jobs = members
			fl.ilp = usedILP
			s.seq++
			if err := s.disp.commitModeled(fl, s.now, 1, &s.resolved); err != nil {
				s.err = err
				return
			}
			s.flightOf[s.slot[d]] = fl
		}
		// Preemption, exactly as in the classic loop but over this
		// shard's flights only (a latency job can only be rescued by a
		// device its shard owns — the router decided its shard).
		if f.cfg.SLO.Preempt && s.queue.Len() > 0 && s.queue.at(0).slo == Latency {
			if victim := f.preemptVictim(s.queue.at(0), s.flightOf, s.ctl, s.now); victim != nil {
				f.evict(victim, s.queue.at(0), s.now, &s.res)
				if s.col != nil {
					// The aborted attempt's device time is real busy time.
					s.col.addBusy(s.slot[victim.device], victim.dispatch, s.now)
				}
				victim.state = flightEvicted
				s.flightOf[s.slot[victim.device]] = nil
				s.idleDevs.push(victim.device)
				for _, j := range victim.jobs {
					s.queue.insert(j)
				}
				continue
			}
		}
		// Pick the provably-earliest next event; arrivals win ties, then
		// control events (submissions, timeouts, scaling), then
		// completions.
		tArr := uint64(inf)
		if s.nextArr < len(s.arr) {
			tArr = s.arr[s.nextArr].arrival
		}
		tCtl := uint64(inf)
		if s.ctl != nil {
			tCtl = s.ctl.next()
		}
		cBest := s.resolved.peek()
		cTime := uint64(inf)
		if cBest != nil {
			cTime = cBest.complete
		}
		next := tArr
		if tCtl < next {
			next = tCtl
		}
		if cTime < next {
			next = cTime
		}
		if next >= limit {
			if limit == inf && s.remaining > 0 && s.ctl != nil {
				s.stall()
				return
			}
			// Park at the barrier. Between the last processed event and
			// the barrier the shard's state is constant, so sampler edges
			// in that span emit identically on the next advance.
			if limit != inf && s.now < limit {
				s.now = limit
			}
			return
		}
		if tArr <= tCtl && tArr <= cTime {
			if s.col != nil {
				s.col.advanceTo(tArr, &s.queue, s.flightOf, &s.res)
			}
			s.now = tArr
			continue
		}
		if tCtl <= cTime {
			if s.col != nil {
				s.col.advanceTo(tCtl, &s.queue, s.flightOf, &s.res)
			}
			s.now = tCtl
			s.ctl.step(s.now)
			continue
		}
		if s.col != nil {
			s.col.advanceTo(cTime, &s.queue, s.flightOf, &s.res)
		}
		s.now = cTime
		s.resolved.pop()
		cBest.state = flightRetired
		f.retire(cBest, &s.res)
		if s.col != nil {
			s.col.noteRetire(cBest)
			s.col.addBusy(s.slot[cBest.device], cBest.dispatch, cBest.complete)
		}
		s.remaining -= len(cBest.jobs)
		s.flightOf[s.slot[cBest.device]] = nil
		if s.ctl == nil || s.ctl.deviceUp(cBest.device) {
			// A draining device's last flight retires it out of placement
			// order; a restore pushes it back.
			s.idleDevs.push(cBest.device)
		}
		if s.ctl != nil {
			s.ctl.onRetire(cBest, s.now)
		}
		s.disp.recycle(cBest)
	}
}

// stall records the permanently-stalled-shard error: the final drain
// found no future event while jobs remain, which only chaos can cause
// (every owned device failed or draining with no restore scheduled) —
// fail loudly instead of parking forever and merging a silent
// shortfall. Split out of runUntil to keep the hot path free of
// formatting state.
func (s *shard) stall() {
	s.err = fmt.Errorf("fleet: shard %d stalled with %d jobs outstanding (%d devices failed, %d draining, and no restore scheduled)",
		s.id, s.remaining, s.ctl.failedCount, s.ctl.drainingCount)
}

// runSharded is the coordinator: it routes arrivals epoch by epoch and
// drives the shard goroutines between barriers. Shard goroutines only
// run inside runAll calls and the coordinator only touches shard state
// outside them, so the two sides never race; the WaitGroup barrier
// also orders memory between coordinator and shards.
func (f *Fleet) runSharded(jobs []*job, perClient [][]*job) (Result, error) {
	shards := f.newShards()
	epoch := f.cfg.ShardEpoch
	if epoch == 0 {
		epoch = DefaultShardEpoch
	}
	const inf = math.MaxUint64
	// Shards never touch each other's state, so between barriers they can
	// run in any order — concurrently on a multicore host, or one after
	// another when the runtime has a single CPU anyway (same bytes out,
	// none of the goroutine/barrier overhead). Determinism never depends
	// on which of the two executes.
	sequential := runtime.GOMAXPROCS(0) == 1
	runAll := func(limit uint64) error {
		if sequential {
			for _, s := range shards {
				s.runUntil(limit)
			}
		} else {
			var wg sync.WaitGroup
			for _, s := range shards {
				wg.Add(1)
				go func(s *shard) {
					defer wg.Done()
					s.runUntil(limit)
				}(s)
			}
			wg.Wait()
		}
		// First error by shard id, so a multi-shard failure reports
		// deterministically.
		for _, s := range shards {
			if s.err != nil {
				return s.err
			}
		}
		return nil
	}
	if f.cfg.Closed.Enabled {
		// Closed-loop: clients are partitioned round-robin across shards
		// up front — a pure function of the client id, so the assignment
		// (and every per-client draw) is identical at any host. Shards
		// then run fully independently: submissions are born inside the
		// owning shard, so there is no arrival routing and no epoch
		// barrier to synchronize on (the autoscaler still reconciles on
		// its own epoch grid within each shard).
		k := len(shards)
		ids := make([][]int, k)
		for c := range perClient {
			s := shards[c%k]
			ids[c%k] = append(ids[c%k], c)
			s.remaining += len(perClient[c])
		}
		for i, s := range shards {
			s.ctl.initClients(perClient, ids[i])
		}
		if err := runAll(inf); err != nil {
			return Result{}, err
		}
		return f.mergeShards(shards, jobs)
	}
	loads := make([]int, len(shards))
	t := uint64(0)
	for next := 0; next < len(jobs); {
		// Settle every shard at the start of the epoch holding the next
		// unrouted arrival, then route that epoch's arrivals against the
		// settled loads.
		at := jobs[next].arrival
		es := at - at%epoch
		if es < t {
			es = t
		}
		if es > t {
			if err := runAll(es); err != nil {
				return Result{}, err
			}
			t = es
		}
		ee := es + epoch
		for i, s := range shards {
			loads[i] = s.load()
		}
		for ; next < len(jobs) && jobs[next].arrival < ee; next++ {
			best := 0
			for i := 1; i < len(shards); i++ {
				if loads[i] < loads[best] {
					best = i
				}
			}
			shards[best].arr = append(shards[best].arr, jobs[next])
			shards[best].remaining++
			loads[best]++
		}
		if err := runAll(ee); err != nil {
			return Result{}, err
		}
		t = ee
	}
	if err := runAll(inf); err != nil {
		return Result{}, err
	}
	return f.mergeShards(shards, jobs)
}

// mergeShards folds the drained shards into one Result, identical in
// shape to the classic loop's.
func (f *Fleet) mergeShards(shards []*shard, jobs []*job) (Result, error) {
	devices := len(f.devType)
	res := Result{
		Policy:     f.cfg.Policy,
		Engine:     f.cfg.Engine,
		Roster:     f.cfg.RosterString(),
		Devices:    devices,
		NC:         f.cfg.NC,
		Shards:     f.cfg.Shards,
		Closed:     f.cfg.Closed.Enabled,
		Admission:  f.cfg.Admission.Enabled,
		Autoscale:  f.cfg.Autoscale.Enabled,
		Chaos:      f.cfg.Chaos.Enabled,
		DeviceBusy: make([]uint64, devices),
	}
	for d := range f.devType {
		res.DeviceConfig = append(res.DeviceConfig, f.deviceName(d))
	}
	for _, s := range shards {
		for d, busy := range s.res.DeviceBusy {
			res.DeviceBusy[d] += busy
		}
		if s.res.Makespan > res.Makespan {
			res.Makespan = s.res.Makespan
		}
		res.ThreadInstructions += s.res.ThreadInstructions
		res.Groups += s.res.Groups
		res.ILPGroups += s.res.ILPGroups
		res.GreedyGroups += s.res.GreedyGroups
		res.ModeledGroups += s.res.ModeledGroups
		res.CycleGroups += s.res.CycleGroups
		res.SMMoves += s.res.SMMoves
		res.Submitted += s.res.Submitted
		res.Rejected += s.res.Rejected
		res.Degraded += s.res.Degraded
		res.Abandoned += s.res.Abandoned
		res.Retried += s.res.Retried
		res.Provisions += s.res.Provisions
		res.Decommissions += s.res.Decommissions
		res.Failures += s.res.Failures
		res.Drains += s.res.Drains
		res.Restores += s.res.Restores
		res.ChaosEvictions += s.res.ChaosEvictions
		res.Evictions = append(res.Evictions, s.res.Evictions...)
	}
	// Within a shard eviction records are in event order, and one device
	// evicts at most one flight per cycle, so (cycle, device) is a total
	// order across shards.
	sort.SliceStable(res.Evictions, func(i, j int) bool {
		a, b := res.Evictions[i], res.Evictions[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		return a.Device < b.Device
	})
	if f.cfg.SampleEvery > 0 {
		series, err := mergeShardSeries(f, shards, res.Makespan)
		if err != nil {
			return Result{}, err
		}
		res.Series = series
	}
	for _, j := range jobs {
		res.Jobs = append(res.Jobs, f.jobRecord(j))
	}
	return res, nil
}
