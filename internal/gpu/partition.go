package gpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/fifo"
	"repro/internal/icnt"
	"repro/internal/memreq"
)

// partition is one memory partition: an L2 bank fronting a DRAM
// controller. The L2 bank is write-back for its own dirty lines but does
// not write-allocate incoming stores (store misses stream to DRAM), a
// common GPU L2 simplification that keeps store-heavy kernels from
// polluting the cache.
type partition struct {
	id        int
	lineBytes int
	l2        *cache.Cache
	mc        *dram.Controller

	// waiting maps an outstanding L2 miss line to the original upstream
	// read requests to answer when DRAM fills it.
	waiting map[uint64][]memreq.Request

	// respQ holds responses awaiting interconnect bandwidth; entries
	// become eligible at their readyAt cycle (L2 hit latency).
	respQ fifo.Queue[delayedResp]

	// stashQ holds requests popped from the network that hit downstream
	// backpressure and must retry before any newer network traffic.
	stashQ fifo.Queue[memreq.Request]

	// reqsPerCycle bounds L2 lookups per cycle (bank port width).
	reqsPerCycle int

	// idleUntil caches the partition's next internal event (computed at
	// the end of each full tick): ticks strictly before it are no-ops
	// unless new work arrives from the interconnect, and are skipped.
	idleUntil uint64
}

type delayedResp struct {
	req     memreq.Request
	readyAt uint64
}

func newPartition(id int, cfg config.GPUConfig) (*partition, error) {
	bank := cfg.L2Bank()
	// The partition implements no-write-allocate at the L2; the cache
	// must agree so store misses return Bypass.
	bank.WriteAllocate = false
	l2, err := cache.New(bank)
	if err != nil {
		return nil, fmt.Errorf("partition %d: %w", id, err)
	}
	mc, err := dram.New(cfg.DRAM, cfg.L2.LineBytes)
	if err != nil {
		return nil, fmt.Errorf("partition %d: %w", id, err)
	}
	return &partition{
		id:           id,
		lineBytes:    cfg.L2.LineBytes,
		l2:           l2,
		mc:           mc,
		waiting:      make(map[uint64][]memreq.Request),
		reqsPerCycle: 1,
	}, nil
}

// tick advances the partition one cycle.
func (p *partition) tick(now uint64, net *icnt.Network) {
	// Fast path: the previous tick proved nothing internal can happen
	// before idleUntil (DRAM bus-busy accounting catches up on the next
	// real tick), so only newly arrived interconnect work forces a tick.
	if now < p.idleUntil && !net.ArrivedForPartition(p.id, now) {
		return
	}

	// 1. DRAM: retire completed reads into the L2 and answer waiters.
	for _, done := range p.mc.Tick(now) {
		p.fillAndRespond(done, now)
	}

	// 2. Drain pending responses into the interconnect.
	p.drainResponses(now, net)

	// 3. Retry stashed requests first (FIFO order), then accept new work
	// from the interconnect.
	if p.processStashed(now) {
		for i := 0; i < p.reqsPerCycle; i++ {
			req, ok := net.PopForPartition(p.id, now)
			if !ok {
				break
			}
			if !p.process(req, now) {
				p.stashQ.Push(req)
				break
			}
		}
	}

	p.idleUntil = p.nextEvent(now)
}

// processStashed retries backpressured requests; it reports whether the
// stash fully drained.
func (p *partition) processStashed(now uint64) bool {
	for p.stashQ.Len() > 0 {
		if !p.process(*p.stashQ.Peek(), now) {
			return false
		}
		p.stashQ.Pop()
	}
	return true
}

// process handles one upstream request. It returns false when the
// request cannot make progress (DRAM queue or MSHRs exhausted) and must
// be retried.
func (p *partition) process(req memreq.Request, now uint64) bool {
	switch req.Kind {
	case memreq.Write:
		res := p.l2.Access(req.Line, true, 0, req.App)
		switch res {
		case cache.Hit:
			return true // absorbed by the L2, written back on eviction
		case cache.Bypass:
			if !p.mc.CanAccept() {
				return false
			}
			return p.mc.Enqueue(req, now)
		default:
			// Write to a line with an outstanding read miss: stream it
			// to DRAM; the later fill holds the pre-store value, which
			// synthetic kernels never re-validate.
			if !p.mc.CanAccept() {
				return false
			}
			return p.mc.Enqueue(memreq.Request{Kind: memreq.Write, Line: req.Line, App: req.App, Size: req.Size}, now)
		}
	case memreq.Read:
		wouldMiss := p.l2.ProbeMiss(req.Line)
		if wouldMiss && (p.l2.MSHRFree() == 0 || !p.mc.CanAccept()) {
			return false
		}
		if !wouldMiss && !p.l2.Probe(req.Line) && !p.l2.CanMerge(req.Line) {
			return false // merge list full
		}
		res := p.l2.Access(req.Line, false, 0, req.App)
		switch res {
		case cache.Hit:
			p.respQ.Push(delayedResp{
				req:     p.reply(req),
				readyAt: now + uint64(p.l2.Config().LatencyCycles),
			})
			return true
		case cache.Miss:
			if !p.mc.Enqueue(memreq.Request{Kind: memreq.Read, Line: req.Line, App: req.App, SM: req.SM, Warp: req.Warp, Size: memreq.ControlBytes}, now) {
				// Cannot happen: CanAccept was checked above, but keep
				// the request alive if it ever does.
				return false
			}
			p.waiting[req.Line] = append(p.waiting[req.Line], req)
			return true
		case cache.MissMerged:
			p.waiting[req.Line] = append(p.waiting[req.Line], req)
			return true
		default: // Stall
			return false
		}
	default:
		return true // replies never arrive here
	}
}

// fillAndRespond installs a DRAM-read line into the L2 and queues
// responses for every upstream request that waited on it.
func (p *partition) fillAndRespond(done memreq.Request, now uint64) {
	_, ev, evicted := p.l2.Fill(done.Line, done.App, false)
	if evicted {
		// Dirty victim: force the write-back out; refusal would deadlock
		// the fill path. The overflow is bounded by L2 associativity.
		p.mc.EnqueueForced(memreq.Request{
			Kind: memreq.Write,
			Line: ev.Line,
			App:  ev.Owner,
			Size: int32(p.lineBytes),
		}, now)
	}
	for _, orig := range p.waiting[done.Line] {
		p.respQ.Push(delayedResp{req: p.reply(orig), readyAt: now})
	}
	delete(p.waiting, done.Line)
}

func (p *partition) reply(orig memreq.Request) memreq.Request {
	return memreq.Request{
		Kind: memreq.ReadReply,
		Line: orig.Line,
		App:  orig.App,
		SM:   orig.SM,
		Warp: orig.Warp,
		Size: int32(p.lineBytes),
	}
}

func (p *partition) drainResponses(now uint64, net *icnt.Network) {
	for {
		head := p.respQ.Peek()
		if head == nil || head.readyAt > now {
			return
		}
		if !net.TrySendToSM(head.req, now) {
			return
		}
		p.respQ.Pop()
	}
}

// pending reports whether the partition still holds in-flight work.
func (p *partition) pending() int {
	return p.respQ.Len() + p.stashQ.Len() + p.mc.Pending() + len(p.waiting)
}

// nextEvent returns the earliest future cycle (> now) at which the
// partition could make progress on its own: the DRAM controller retires
// or schedules something, a stashed request retries, or a delayed
// response becomes eligible for injection. Work arriving from the
// interconnect is the network's concern; entries in the waiting map are
// covered by the DRAM events that will fill them. The respQ drains in
// FIFO order with head blocking, so only its head's readiness matters —
// an eligible head that could not inject this cycle (response bandwidth
// exhausted) retries next cycle.
func (p *partition) nextEvent(now uint64) uint64 {
	if p.stashQ.Len() > 0 {
		return now + 1
	}
	next := p.mc.NextEvent(now)
	if head := p.respQ.Peek(); head != nil {
		if head.readyAt <= now {
			return now + 1
		}
		if head.readyAt < next {
			next = head.readyAt
		}
	}
	return next
}
