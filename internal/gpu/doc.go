// Package gpu assembles the full simulated device: SIMT cores
// (internal/smcore), the interconnect (internal/icnt), L2 banks and
// memory controllers (internal/cache, internal/dram), plus the
// machinery for spatial multi-application execution — disjoint SM sets
// per application, a per-application thread-block dispatcher (the "work
// distributor" of Figure 2.2), and run-time SM reallocation using the
// drain-then-transfer protocol of Section 3.2.4.
//
// # Stepping and the event-horizon engine
//
// Device.Step advances every component by one cycle; Device.Run steps
// until all launched applications complete. On top of the per-cycle
// loop sits the event-horizon fast-forward engine: each component
// reports the earliest future cycle at which it could make progress
// (smcore.SM.NextEvent from warp wake cycles, dram.Controller.NextEvent
// from in-flight transfers and bank busy windows, the partition from
// its response/stash queues, icnt.Network.NextEvent from flit arrival
// times). Device.NextEvent folds these into one horizon, and
// Device.FastForward / Device.RunUntil jump provably-dead spans in a
// single step, accruing the per-cycle arithmetic (utilization slots,
// bandwidth-budget refills, bus-busy accounting, round-robin rotation)
// in O(1). Results are bit-identical to naive stepping — a cycle is
// skipped exactly when no component can make progress in it.
//
// # Multi-application execution
//
// Device.Launch places a kernel on an explicit SM set; applications on
// disjoint sets share the memory system but never an SM, reproducing
// the paper's spatial partitioning. Launch is atomic: if any SM in the
// set is invalid or busy, no assignment is retained. Device.ReassignSM
// moves one SM between running applications with the
// drain-then-transfer protocol; Device.AppStats reports
// per-application counters (instructions, cycles, stalls) used by the
// profiler and scheduler above.
package gpu
