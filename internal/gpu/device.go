// Package gpu assembles the full simulated device: SIMT cores, the
// interconnect, L2 banks and memory controllers, plus the machinery for
// spatial multi-application execution — disjoint SM sets per
// application, a per-application thread-block dispatcher (the "work
// distributor" of Figure 2.2), and run-time SM reallocation using the
// drain-then-transfer protocol of Section 3.2.4.
package gpu

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/icnt"
	"repro/internal/kernel"
	"repro/internal/smcore"
	"repro/internal/stats"
)

// AppHandle identifies a launched application within one Device.
type AppHandle int

// app tracks one application's dispatch and completion state.
type app struct {
	handle   AppHandle
	kern     *kernel.Kernel
	st       stats.App
	nextCTA  int
	ctasDone int
	started  bool
	done     bool
}

// Device is one simulated GPU. It is not safe for concurrent use.
type Device struct {
	cfg   config.GPUConfig
	sms   []*smcore.SM
	parts []*partition
	net   *icnt.Network
	apps  []*app
	cycle uint64
	// rrStart rotates SM service order so interconnect injection is fair
	// across cores when bandwidth-limited.
	rrStart int
}

// New builds an idle device from a validated configuration.
func New(cfg config.GPUConfig) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg}
	net, err := icnt.New(cfg.Icnt, cfg.NumMemPartitions, cfg.L2.LineBytes)
	if err != nil {
		return nil, err
	}
	d.net = net
	d.sms = make([]*smcore.SM, cfg.NumSMs)
	for i := range d.sms {
		sm, err := smcore.New(i, cfg)
		if err != nil {
			return nil, err
		}
		d.sms[i] = sm
	}
	d.parts = make([]*partition, cfg.NumMemPartitions)
	for i := range d.parts {
		p, err := newPartition(i, cfg)
		if err != nil {
			return nil, err
		}
		d.parts[i] = p
	}
	return d, nil
}

// MustNew is New panicking on error, for tests and examples.
func MustNew(cfg config.GPUConfig) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() config.GPUConfig { return d.cfg }

// Cycle returns the current simulated cycle.
func (d *Device) Cycle() uint64 { return d.cycle }

// Launch registers a kernel as a new application and assigns it the
// given SM set. Every named SM must currently be idle and unowned or
// owned by a finished application.
func (d *Device) Launch(k *kernel.Kernel, smIDs []int) (AppHandle, error) {
	if k == nil {
		return 0, fmt.Errorf("gpu: launch of nil kernel")
	}
	if len(smIDs) == 0 {
		return 0, fmt.Errorf("gpu: launch of %s with no SMs", k.Name)
	}
	h := AppHandle(len(d.apps))
	a := &app{handle: h, kern: k, st: stats.App{Name: k.Name, StartCycle: d.cycle}}
	for _, id := range smIDs {
		if id < 0 || id >= len(d.sms) {
			return 0, fmt.Errorf("gpu: launch of %s on invalid SM %d", k.Name, id)
		}
		sm := d.sms[id]
		if !sm.Idle() {
			return 0, fmt.Errorf("gpu: launch of %s on busy SM %d", k.Name, id)
		}
		if err := sm.Assign(int16(h), k, &a.st); err != nil {
			return 0, err
		}
		sm.OnCTADone = d.onCTADone
	}
	d.apps = append(d.apps, a)
	return h, nil
}

func (d *Device) onCTADone(appIdx int16) {
	if appIdx < 0 || int(appIdx) >= len(d.apps) {
		return
	}
	a := d.apps[appIdx]
	a.ctasDone++
	if a.ctasDone >= a.kern.CTAs && !a.done {
		a.done = true
		a.st.Done = true
		a.st.EndCycle = d.cycle
	}
}

// Done reports whether the application's grid has fully retired.
func (d *Device) Done(h AppHandle) bool {
	return d.apps[h].done
}

// AllDone reports whether every launched application has retired.
func (d *Device) AllDone() bool {
	for _, a := range d.apps {
		if !a.done {
			return false
		}
	}
	return len(d.apps) > 0
}

// SMOwner returns the application owning an SM, or -1.
func (d *Device) SMOwner(smID int) int16 { return d.sms[smID].App() }

// SMsOwnedBy returns the SM ids currently owned by h.
func (d *Device) SMsOwnedBy(h AppHandle) []int {
	var out []int
	for i, sm := range d.sms {
		if sm.App() == int16(h) {
			out = append(out, i)
		}
	}
	return out
}

// ReassignSM initiates a drain-then-transfer of one SM to application h.
// The transfer completes when the SM's resident blocks retire; new
// blocks of h start launching immediately after.
func (d *Device) ReassignSM(smID int, h AppHandle) error {
	if smID < 0 || smID >= len(d.sms) {
		return fmt.Errorf("gpu: reassign of invalid SM %d", smID)
	}
	if h < 0 || int(h) >= len(d.apps) {
		return fmt.Errorf("gpu: reassign to unknown app %d", h)
	}
	a := d.apps[h]
	d.sms[smID].RequestReassign(int16(h), a.kern, &a.st)
	d.sms[smID].OnCTADone = d.onCTADone
	return nil
}

// Step advances the device one core cycle.
func (d *Device) Step() {
	d.cycle++
	now := d.cycle
	d.net.Begin()

	// Dispatch thread blocks, execute, and inject memory traffic, with a
	// rotating start for fairness under bandwidth pressure.
	n := len(d.sms)
	for i := 0; i < n; i++ {
		sm := d.sms[(d.rrStart+i)%n]
		d.dispatch(sm, now)
		sm.Tick(now)
		for {
			req, ok := sm.PeekOut()
			if !ok || !d.net.TrySendToMem(req, now) {
				break
			}
			sm.PopOut()
		}
	}
	d.rrStart++

	for _, p := range d.parts {
		p.tick(now, d.net)
	}

	for _, resp := range d.net.PopArrivedToSM(now) {
		d.sms[resp.SM].HandleResponse(resp)
	}

	// Account SM-cycle ownership for utilization bookkeeping.
	for _, sm := range d.sms {
		if a := sm.App(); a >= 0 && int(a) < len(d.apps) && !d.apps[a].done {
			d.apps[a].st.SMCycleSlots++
		}
	}
}

// dispatch pulls pending thread blocks of the SM's owner onto the SM.
func (d *Device) dispatch(sm *smcore.SM, now uint64) {
	owner := sm.App()
	if owner < 0 || int(owner) >= len(d.apps) {
		return
	}
	a := d.apps[owner]
	// One block per SM per cycle: spreads the grid across the owner's SM
	// set instead of saturating the first cores scanned.
	if a.nextCTA < a.kern.CTAs && sm.CanLaunch() {
		if err := sm.LaunchCTA(a.nextCTA, now); err != nil {
			return
		}
		a.nextCTA++
	}
}

// Run steps the device until every application retires or maxCycles
// elapse; it returns an error on timeout (a livelock symptom in tests).
func (d *Device) Run(maxCycles uint64) error {
	start := d.cycle
	for !d.AllDone() {
		if d.cycle-start >= maxCycles {
			return fmt.Errorf("gpu: run exceeded %d cycles (%d apps unfinished)",
				maxCycles, d.unfinished())
		}
		d.Step()
	}
	return nil
}

func (d *Device) unfinished() int {
	n := 0
	for _, a := range d.apps {
		if !a.done {
			n++
		}
	}
	return n
}

// AppStats returns a snapshot of application h's counters with derived
// traffic attribution folded in from the memory system. For a running
// application the residency window is closed at the current cycle.
func (d *Device) AppStats(h AppHandle) stats.App {
	a := d.apps[h]
	st := a.st
	if !a.done {
		st.EndCycle = d.cycle
	}
	st.L2ToL1Bytes = d.net.AppToSMBytes(int16(h))
	var dramBytes uint64
	for _, p := range d.parts {
		dramBytes += p.mc.AppBytes(int16(h))
	}
	st.DRAMBytes = dramBytes
	return st
}

// AppMetrics derives the Table 3.2 metrics for application h.
func (d *Device) AppMetrics(h AppHandle) stats.Metrics {
	return d.AppStats(h).Derive(d.cfg)
}

// DeviceStats aggregates the whole run.
func (d *Device) DeviceStats() stats.Device {
	ds := stats.Device{Cycles: d.cycle}
	for i := range d.apps {
		st := d.AppStats(AppHandle(i))
		ds.Apps = append(ds.Apps, st)
		ds.ThreadInstructions += st.ThreadInstructions
	}
	return ds
}

// Apps returns the number of launched applications.
func (d *Device) Apps() int { return len(d.apps) }

// CTAsDone returns the number of completed thread blocks of h.
func (d *Device) CTAsDone(h AppHandle) int { return d.apps[h].ctasDone }
