package gpu

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/icnt"
	"repro/internal/kernel"
	"repro/internal/smcore"
	"repro/internal/stats"
)

// AppHandle identifies a launched application within one Device.
type AppHandle int

// app tracks one application's dispatch and completion state.
type app struct {
	handle   AppHandle
	kern     *kernel.Kernel
	st       stats.App
	nextCTA  int
	ctasDone int
	started  bool
	done     bool
}

// Device is one simulated GPU. It is not safe for concurrent use.
type Device struct {
	cfg   config.GPUConfig
	sms   []*smcore.SM
	parts []*partition
	net   *icnt.Network
	apps  []*app
	cycle uint64
	// rrStart rotates SM service order so interconnect injection is fair
	// across cores when bandwidth-limited.
	rrStart int
	// owned[h] counts the SMs currently owned by application h. It is
	// maintained through the SMs' owner-change hooks so per-cycle
	// utilization accounting never scans the full SM array.
	owned []int
	// pendingDispatch counts applications that still have thread blocks
	// to hand out; when zero, Step skips the per-SM dispatch calls.
	pendingDispatch int
	// skipped counts cycles the fast-forward engine jumped over instead
	// of stepping (introspection: SkippedCycles).
	skipped uint64
	// lastSig is the activity signature FastForward last observed; an
	// unchanged signature marks the preceding Step as dead and worth
	// computing a horizon for. ffWait/ffBackoff implement deterministic
	// exponential backoff: every futile probe (no cycles skipped)
	// doubles the number of Steps before the next probe, and any
	// successful skip resets it, so saturated phases stop paying the
	// probe cost while idle phases keep skipping at full resolution.
	lastSig   uint64
	ffWait    uint64
	ffBackoff uint64
}

// New builds an idle device from a validated configuration.
func New(cfg config.GPUConfig) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg}
	net, err := icnt.New(cfg.Icnt, cfg.NumMemPartitions, cfg.L2.LineBytes)
	if err != nil {
		return nil, err
	}
	d.net = net
	d.sms = make([]*smcore.SM, cfg.NumSMs)
	for i := range d.sms {
		sm, err := smcore.New(i, cfg)
		if err != nil {
			return nil, err
		}
		sm.OnOwnerChange = d.onOwnerChange
		d.sms[i] = sm
	}
	d.parts = make([]*partition, cfg.NumMemPartitions)
	for i := range d.parts {
		p, err := newPartition(i, cfg)
		if err != nil {
			return nil, err
		}
		d.parts[i] = p
	}
	return d, nil
}

// MustNew is New panicking on error, for tests and examples.
func MustNew(cfg config.GPUConfig) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() config.GPUConfig { return d.cfg }

// Cycle returns the current simulated cycle.
func (d *Device) Cycle() uint64 { return d.cycle }

// Launch registers a kernel as a new application and assigns it the
// given SM set. Every named SM must currently be idle and unowned or
// owned by a finished application. On error no SM changes owner: a
// partial assignment (a later SM in smIDs invalid or busy) is rolled
// back so earlier SMs are not left pointing at an application handle
// that was never registered.
func (d *Device) Launch(k *kernel.Kernel, smIDs []int) (AppHandle, error) {
	if k == nil {
		return 0, fmt.Errorf("gpu: launch of nil kernel")
	}
	if len(smIDs) == 0 {
		return 0, fmt.Errorf("gpu: launch of %s with no SMs", k.Name)
	}
	h := AppHandle(len(d.apps))
	a := &app{handle: h, kern: k, st: stats.App{Name: k.Name, StartCycle: d.cycle}}
	prev := make([]prevOwner, 0, len(smIDs))
	fail := func(err error) (AppHandle, error) {
		// Undo newest-first: a duplicate SM id in smIDs snapshots the SM
		// twice (the second time owned by the handle being rolled back),
		// and only reverse replay lands it back on its original owner.
		for i := len(prev) - 1; i >= 0; i-- {
			p := prev[i]
			_ = d.sms[p.sm].Assign(p.app, p.kern, p.st)
		}
		return 0, err
	}
	for _, id := range smIDs {
		if id < 0 || id >= len(d.sms) {
			return fail(fmt.Errorf("gpu: launch of %s on invalid SM %d", k.Name, id))
		}
		sm := d.sms[id]
		if !sm.Idle() {
			return fail(fmt.Errorf("gpu: launch of %s on busy SM %d", k.Name, id))
		}
		old := prevOwner{sm: id, app: sm.App()}
		if old.app >= 0 && int(old.app) < len(d.apps) {
			prior := d.apps[old.app]
			old.kern, old.st = prior.kern, &prior.st
		}
		if err := sm.Assign(int16(h), k, &a.st); err != nil {
			return fail(err)
		}
		prev = append(prev, old)
		sm.OnCTADone = d.onCTADone
	}
	d.apps = append(d.apps, a)
	d.pendingDispatch++
	return h, nil
}

// prevOwner snapshots one SM's ownership for Launch rollback.
type prevOwner struct {
	sm   int
	app  int16
	kern *kernel.Kernel
	st   *stats.App
}

// onOwnerChange maintains the per-application SM-ownership counts; it is
// installed as every SM's owner-change hook.
func (d *Device) onOwnerChange(old, new int16) {
	if old >= 0 && int(old) < len(d.owned) {
		d.owned[old]--
	}
	if new >= 0 {
		for int(new) >= len(d.owned) {
			d.owned = append(d.owned, 0)
		}
		d.owned[new]++
	}
}

func (d *Device) onCTADone(appIdx int16) {
	if appIdx < 0 || int(appIdx) >= len(d.apps) {
		return
	}
	a := d.apps[appIdx]
	a.ctasDone++
	if a.ctasDone >= a.kern.CTAs && !a.done {
		a.done = true
		a.st.Done = true
		a.st.EndCycle = d.cycle
	}
}

// Done reports whether the application's grid has fully retired.
func (d *Device) Done(h AppHandle) bool {
	return d.apps[h].done
}

// AllDone reports whether every launched application has retired.
func (d *Device) AllDone() bool {
	for _, a := range d.apps {
		if !a.done {
			return false
		}
	}
	return len(d.apps) > 0
}

// SMOwner returns the application owning an SM, or -1.
func (d *Device) SMOwner(smID int) int16 { return d.sms[smID].App() }

// SMsOwnedBy returns the SM ids currently owned by h.
func (d *Device) SMsOwnedBy(h AppHandle) []int {
	var out []int
	for i, sm := range d.sms {
		if sm.App() == int16(h) {
			out = append(out, i)
		}
	}
	return out
}

// ReassignSM initiates a drain-then-transfer of one SM to application h.
// The transfer completes when the SM's resident blocks retire; new
// blocks of h start launching immediately after.
func (d *Device) ReassignSM(smID int, h AppHandle) error {
	if smID < 0 || smID >= len(d.sms) {
		return fmt.Errorf("gpu: reassign of invalid SM %d", smID)
	}
	if h < 0 || int(h) >= len(d.apps) {
		return fmt.Errorf("gpu: reassign to unknown app %d", h)
	}
	a := d.apps[h]
	d.sms[smID].RequestReassign(int16(h), a.kern, &a.st)
	d.sms[smID].OnCTADone = d.onCTADone
	return nil
}

// Step advances the device one core cycle.
//
//simlint:hotpath
func (d *Device) Step() {
	d.cycle++
	now := d.cycle
	d.net.Begin()

	// Dispatch thread blocks, execute, and inject memory traffic, with a
	// rotating start for fairness under bandwidth pressure. The rotation
	// is two plain slice walks rather than a per-SM modulo.
	n := len(d.sms)
	start := d.rrStart % n
	for _, sm := range d.sms[start:] {
		d.stepSM(sm, now)
	}
	for _, sm := range d.sms[:start] {
		d.stepSM(sm, now)
	}
	d.rrStart++

	for _, p := range d.parts {
		p.tick(now, d.net)
	}

	for _, resp := range d.net.PopArrivedToSM(now) {
		d.sms[resp.SM].HandleResponse(resp)
	}

	// Account SM-cycle ownership for utilization bookkeeping. The
	// per-application ownership counts are maintained by the SMs'
	// owner-change hooks, so this never scans the SM array.
	for _, a := range d.apps {
		if !a.done && int(a.handle) < len(d.owned) {
			a.st.SMCycleSlots += uint64(d.owned[a.handle])
		}
	}
}

// stepSM advances one SM within a device cycle: dispatch, execute, and
// drain its memory output queue into the interconnect.
func (d *Device) stepSM(sm *smcore.SM, now uint64) {
	if d.pendingDispatch > 0 {
		d.dispatch(sm, now)
	}
	sm.Tick(now)
	for sm.OutPending() > 0 {
		req, _ := sm.PeekOut()
		if !d.net.TrySendToMem(req, now) {
			break
		}
		sm.PopOut()
	}
}

// dispatch pulls pending thread blocks of the SM's owner onto the SM.
func (d *Device) dispatch(sm *smcore.SM, now uint64) {
	owner := sm.App()
	if owner < 0 || int(owner) >= len(d.apps) {
		return
	}
	a := d.apps[owner]
	// One block per SM per cycle: spreads the grid across the owner's SM
	// set instead of saturating the first cores scanned.
	if a.nextCTA < a.kern.CTAs && sm.CanLaunch() {
		if err := sm.LaunchCTA(a.nextCTA, now); err != nil {
			return
		}
		a.nextCTA++
		if a.nextCTA == a.kern.CTAs {
			d.pendingDispatch--
		}
	}
}

// NoEvent is the NextEvent result of a device that can make no further
// progress on its own (every application retired, or a livelock).
const NoEvent = ^uint64(0)

// NextEvent returns the earliest future cycle (> Cycle) at which any
// component of the device could make progress: an SM issues or wakes a
// timer-parked warp, a thread block becomes dispatchable, a DRAM
// transfer completes or a queued request becomes serviceable, a
// response becomes eligible, or a flit finishes traversing the
// interconnect. Every cycle strictly before the returned horizon is
// provably identical to not stepping at all (modulo arithmetic
// accounting, which FastForward performs), which is what makes the
// fast-forward engine's results bit-identical to the naive Step loop.
//
// The scan exits as soon as any source reports the next cycle, so in
// saturated phases (ready warps everywhere) its cost is a handful of
// queue-length checks.
func (d *Device) NextEvent() uint64 {
	now := d.cycle
	next := uint64(NoEvent)
	for _, sm := range d.sms {
		// Pending thread-block dispatch is progress the SM cannot see:
		// the device's work distributor launches one block per SM per
		// cycle whenever the owner has blocks left and the SM has room.
		if d.pendingDispatch > 0 {
			if owner := sm.App(); owner >= 0 && int(owner) < len(d.apps) {
				a := d.apps[owner]
				if a.nextCTA < a.kern.CTAs && sm.CanLaunch() {
					return now + 1
				}
			}
		}
		h := sm.NextEvent(now)
		if h <= now+1 {
			return now + 1
		}
		if h < next {
			next = h
		}
	}
	for _, p := range d.parts {
		h := p.nextEvent(now)
		if h <= now+1 {
			return now + 1
		}
		if h < next {
			next = h
		}
	}
	h := d.net.NextEvent(now)
	if h <= now+1 {
		return now + 1
	}
	if h < next {
		next = h
	}
	return next
}

// FastForward jumps the device over provably-idle cycles: if no
// component can make progress before cycle H = NextEvent(), the device
// state after stepping naively to H-1 differs from the current state
// only by per-cycle arithmetic (utilization slots, bandwidth-budget
// refills, round-robin rotation — DRAM bus-busy accounting catches up
// on the controller's next tick), which is accrued here in O(1) per
// component. The jump lands at H-1 so the next
// Step executes the event cycle itself, and it never advances beyond
// limit, so callers interleaving external per-cycle control (run
// bounds, the SMRA controller's evaluation period) cap the skip at the
// last cycle they are willing to treat as idle. It returns the new
// current cycle.
func (d *Device) FastForward(limit uint64) uint64 {
	if limit <= d.cycle {
		return d.cycle
	}
	// Backoff and activity gates: probing costs a signature read and,
	// on a quiet Step, a horizon scan; both are pure cost dodges —
	// NextEvent remains the sole source of truth for how far a jump may
	// go, and an unprobed cycle simply steps naively.
	if d.ffWait > 0 {
		d.ffWait--
		return d.cycle
	}
	// A Step that advanced any monotone progress counter (instructions
	// issued, packets injected, DRAM commands scheduled) almost always
	// has its next event one cycle out.
	if sig := d.activitySignature(); sig != d.lastSig {
		d.lastSig = sig
		d.futileProbe()
		return d.cycle
	}
	to := limit
	if h := d.NextEvent(); h != NoEvent && h-1 < to {
		to = h - 1
	}
	if to <= d.cycle {
		d.futileProbe()
		return d.cycle
	}
	d.ffBackoff = 0
	span := to - d.cycle
	d.net.FastForward(span)
	for _, a := range d.apps {
		if !a.done && int(a.handle) < len(d.owned) {
			a.st.SMCycleSlots += span * uint64(d.owned[a.handle])
		}
	}
	// Keep the round-robin phase exactly where naive stepping would have
	// left it (rrStart is only ever read modulo the SM count).
	d.rrStart = int((uint64(d.rrStart) + span) % uint64(len(d.sms)))
	d.skipped += span
	d.cycle = to
	return d.cycle
}

// SkippedCycles returns the number of cycles the fast-forward engine
// jumped over instead of stepping.
func (d *Device) SkippedCycles() uint64 { return d.skipped }

// futileProbe doubles the probe backoff after a FastForward call that
// skipped nothing, capped so a phase change is noticed within tens of
// cycles.
func (d *Device) futileProbe() {
	if d.ffBackoff == 0 {
		d.ffBackoff = 1
	} else if d.ffBackoff < 64 {
		d.ffBackoff *= 2
	}
	d.ffWait = d.ffBackoff - 1
}

// activitySignature sums the device's monotone progress counters. All
// summands are non-decreasing, so an unchanged sum means no instruction
// issued, no packet entered the interconnect, and no DRAM command was
// scheduled since the last reading.
func (d *Device) activitySignature() uint64 {
	var s uint64
	for _, sm := range d.sms {
		s += sm.Issued()
	}
	s += d.net.Progress()
	for _, p := range d.parts {
		s += p.mc.Progress()
	}
	return s
}

// Run advances the device until every application retires or maxCycles
// elapse; it returns an error on timeout (a livelock symptom in tests).
// Idle spans are fast-forwarded; the result is bit-identical to calling
// Step in a loop.
func (d *Device) Run(maxCycles uint64) error {
	return d.RunUntil(d.cycle + maxCycles)
}

// RunUntil advances the device until every application retires,
// fast-forwarding provably-idle spans; it errors when the device
// reaches absolute cycle limit with applications unfinished, leaving
// the device at exactly the cycle the naive Step loop would have
// stopped at.
func (d *Device) RunUntil(limit uint64) error {
	start := d.cycle
	for !d.AllDone() {
		if d.cycle >= limit {
			return fmt.Errorf("gpu: run exceeded %d cycles (%d apps unfinished)",
				limit-start, d.unfinished())
		}
		d.Step()
		// Exit before fast-forwarding: once the last application retires
		// the naive loop stops at exactly this cycle, and post-completion
		// residue (draining write-backs) must not advance the clock.
		if d.AllDone() {
			break
		}
		d.FastForward(limit)
	}
	return nil
}

func (d *Device) unfinished() int {
	n := 0
	for _, a := range d.apps {
		if !a.done {
			n++
		}
	}
	return n
}

// AppStats returns a snapshot of application h's counters with derived
// traffic attribution folded in from the memory system. For a running
// application the residency window is closed at the current cycle.
func (d *Device) AppStats(h AppHandle) stats.App {
	a := d.apps[h]
	st := a.st
	if !a.done {
		st.EndCycle = d.cycle
	}
	st.L2ToL1Bytes = d.net.AppToSMBytes(int16(h))
	var dramBytes uint64
	for _, p := range d.parts {
		dramBytes += p.mc.AppBytes(int16(h))
	}
	st.DRAMBytes = dramBytes
	return st
}

// AppMetrics derives the Table 3.2 metrics for application h.
func (d *Device) AppMetrics(h AppHandle) stats.Metrics {
	return d.AppStats(h).Derive(d.cfg)
}

// DeviceStats aggregates the whole run.
func (d *Device) DeviceStats() stats.Device {
	ds := stats.Device{Cycles: d.cycle}
	for i := range d.apps {
		st := d.AppStats(AppHandle(i))
		ds.Apps = append(ds.Apps, st)
		ds.ThreadInstructions += st.ThreadInstructions
	}
	return ds
}

// Apps returns the number of launched applications.
func (d *Device) Apps() int { return len(d.apps) }

// CTAsDone returns the number of completed thread blocks of h.
func (d *Device) CTAsDone(h AppHandle) int { return d.apps[h].ctasDone }
