package gpu

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/kernel"
	"repro/internal/testkit"
)

// engineCase is one workload layout to cross-check between the naive
// per-cycle Step loop and the fast-forward engine.
type engineCase struct {
	name    string
	kernels []kernel.Params
	split   int // number of SM sets to split the device into
}

func engineCases() []engineCase {
	return []engineCase{
		{name: "soloM", kernels: []kernel.Params{testkit.MiniM()}, split: 1},
		{name: "soloC", kernels: []kernel.Params{testkit.MiniC()}, split: 1},
		{name: "soloA", kernels: []kernel.Params{testkit.MiniA()}, split: 1},
		{name: "pairMC", kernels: []kernel.Params{testkit.MiniM(), testkit.MiniC()}, split: 2},
	}
}

// launchCase builds a device and launches the case's kernels on even SM
// splits, mirroring interference.CoRun.
func launchCase(t *testing.T, cfg config.GPUConfig, ec engineCase) *Device {
	t.Helper()
	d := MustNew(cfg)
	per := cfg.NumSMs / ec.split
	for i, params := range ec.kernels {
		k, err := kernel.New(params, cfg.L1.LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		k.BaseAddr = uint64(i+1) << 40
		sms := make([]int, per)
		for j := range sms {
			sms[j] = i*per + j
		}
		if _, err := d.Launch(k, sms); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestEngineEquivalence asserts that the fast-forward engine produces
// byte-identical results to the naive per-cycle Step loop: same end
// cycle, same DeviceStats, for one kernel of each class solo and a
// co-run pair, on both the small test device and the full GTX480
// configuration.
func TestEngineEquivalence(t *testing.T) {
	const maxCycles = 10_000_000
	configs := []config.GPUConfig{testkit.Config(), config.GTX480()}
	for _, cfg := range configs {
		for _, ec := range engineCases() {
			t.Run(cfg.Name+"/"+ec.name, func(t *testing.T) {
				naive := launchCase(t, cfg, ec)
				for !naive.AllDone() {
					if naive.Cycle() >= maxCycles {
						t.Fatalf("naive loop exceeded %d cycles", uint64(maxCycles))
					}
					naive.Step()
				}
				fast := launchCase(t, cfg, ec)
				if err := fast.Run(maxCycles); err != nil {
					t.Fatal(err)
				}
				if naive.Cycle() != fast.Cycle() {
					t.Errorf("end cycle: naive=%d fast-forward=%d (skipped %d)",
						naive.Cycle(), fast.Cycle(), fast.SkippedCycles())
				}
				ns, fs := naive.DeviceStats(), fast.DeviceStats()
				if !reflect.DeepEqual(ns, fs) {
					t.Errorf("DeviceStats diverged:\nnaive:        %+v\nfast-forward: %+v", ns, fs)
				}
				if fast.SkippedCycles() == 0 {
					t.Logf("note: no cycles were skipped for %s on %s", ec.name, cfg.Name)
				}
			})
		}
	}
}
