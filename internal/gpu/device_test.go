package gpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/kernel"
)

func smRange(lo, hi int) []int {
	ids := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		ids = append(ids, i)
	}
	return ids
}

func computeKernel(name string, ctas int) kernel.Params {
	return kernel.Params{
		Name:          name,
		CTAs:          ctas,
		WarpsPerCTA:   4,
		InstrsPerWarp: 400,
		MemEvery:      0,
		Seed:          1,
	}
}

func streamKernel(name string, ctas int) kernel.Params {
	return kernel.Params{
		Name:           name,
		CTAs:           ctas,
		WarpsPerCTA:    4,
		InstrsPerWarp:  400,
		MemEvery:       4,
		Pattern:        kernel.PatternStream,
		CoalescedLines: 1,
		FootprintBytes: 8 << 20,
		Seed:           2,
	}
}

func TestSoloComputeKernelCompletes(t *testing.T) {
	cfg := config.Small()
	d := MustNew(cfg)
	k := kernel.MustNew(computeKernel("CMP", 32), cfg.L1.LineBytes)
	h, err := d.Launch(k, smRange(0, cfg.NumSMs))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	st := d.AppStats(h)
	if !st.Done {
		t.Fatal("app not done")
	}
	want := k.TotalInstrs() * uint64(cfg.WarpSize)
	if st.ThreadInstructions != want {
		t.Fatalf("thread instructions = %d, want %d", st.ThreadInstructions, want)
	}
	m := st.Derive(cfg)
	t.Logf("compute solo: %s", m)
	if m.IPC <= 0 {
		t.Fatal("zero IPC")
	}
	if m.MemBandwidthGBps != 0 {
		t.Fatalf("compute kernel touched DRAM: %v GB/s", m.MemBandwidthGBps)
	}
}

func TestSoloStreamKernelCompletes(t *testing.T) {
	cfg := config.Small()
	d := MustNew(cfg)
	k := kernel.MustNew(streamKernel("STR", 32), cfg.L1.LineBytes)
	h, err := d.Launch(k, smRange(0, cfg.NumSMs))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	m := d.AppMetrics(h)
	t.Logf("stream solo: %s", m)
	if m.MemBandwidthGBps <= 0 {
		t.Fatal("stream kernel produced no DRAM traffic")
	}
	if m.R <= 0.1 || m.R > 0.5 {
		t.Fatalf("R = %v out of expected range", m.R)
	}
}

func TestTwoAppPartitionedCoRun(t *testing.T) {
	cfg := config.Small()
	d := MustNew(cfg)
	half := cfg.NumSMs / 2
	k1 := kernel.MustNew(computeKernel("CMP", 16), cfg.L1.LineBytes)
	p2 := streamKernel("STR", 16)
	k2 := kernel.MustNew(p2, cfg.L1.LineBytes)
	k2.BaseAddr = 1 << 32
	h1, err := d.Launch(k1, smRange(0, half))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := d.Launch(k2, smRange(half, cfg.NumSMs))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if !d.Done(h1) || !d.Done(h2) {
		t.Fatal("apps not done")
	}
	m1, m2 := d.AppMetrics(h1), d.AppMetrics(h2)
	t.Logf("co-run: %s | %s", m1, m2)
	ds := d.DeviceStats()
	if ds.Throughput() <= 0 {
		t.Fatal("zero device throughput")
	}
}

func TestReassignSMDrainsAndTransfers(t *testing.T) {
	cfg := config.Small()
	d := MustNew(cfg)
	half := cfg.NumSMs / 2
	k1 := kernel.MustNew(computeKernel("CMP", 64), cfg.L1.LineBytes)
	k2 := kernel.MustNew(computeKernel("CMP2", 64), cfg.L1.LineBytes)
	h1, _ := d.Launch(k1, smRange(0, half))
	h2, _ := d.Launch(k2, smRange(half, cfg.NumSMs))
	// Let it warm up, then move SM 0 to app 2.
	for i := 0; i < 200; i++ {
		d.Step()
	}
	if err := d.ReassignSM(0, h2); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if !d.Done(h1) || !d.Done(h2) {
		t.Fatal("apps not done after reassignment")
	}
	if got := d.SMOwner(0); got != int16(h2) {
		t.Fatalf("SM 0 owner = %d, want %d", got, h2)
	}
}
