package gpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/kernel"
)

func TestLaunchValidation(t *testing.T) {
	cfg := config.Small()
	d := MustNew(cfg)
	k := kernel.MustNew(computeKernel("X", 4), cfg.L1.LineBytes)
	if _, err := d.Launch(nil, []int{0}); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := d.Launch(k, nil); err == nil {
		t.Error("empty SM set accepted")
	}
	if _, err := d.Launch(k, []int{cfg.NumSMs}); err == nil {
		t.Error("out-of-range SM accepted")
	}
	if _, err := d.Launch(k, []int{0}); err != nil {
		t.Fatalf("valid launch rejected: %v", err)
	}
	// SM 0 is now owned with resident-to-be work; a second app may not
	// claim it once blocks land.
	d.Step()
	d.Step()
	k2 := kernel.MustNew(computeKernel("Y", 4), cfg.L1.LineBytes)
	if _, err := d.Launch(k2, []int{0}); err == nil {
		t.Error("launch on busy SM accepted")
	}
}

// TestLaunchRollsBackPartialAssignment is the regression test for the
// partial-failure leak: when a later SM in the launch set is invalid or
// busy, the SMs already assigned must be returned to their previous
// owner instead of pointing at an application handle that was never
// registered.
func TestLaunchRollsBackPartialAssignment(t *testing.T) {
	cfg := config.Small()
	d := MustNew(cfg)

	// Unowned SMs: a launch that fails on its second SM must leave the
	// first unowned.
	bad := kernel.MustNew(computeKernel("bad", 4), cfg.L1.LineBytes)
	if _, err := d.Launch(bad, []int{1, cfg.NumSMs}); err == nil {
		t.Fatal("launch with out-of-range SM accepted")
	}
	if got := d.SMOwner(1); got != -1 {
		t.Fatalf("SM 1 owned by %d after failed launch, want unowned", got)
	}
	if d.Apps() != 0 {
		t.Fatalf("failed launch registered an app (%d apps)", d.Apps())
	}

	// Run one app to completion so its SMs are idle but still owned by a
	// finished application, then fail a launch across them: ownership
	// must revert to the finished app, not to the ghost handle.
	k1 := kernel.MustNew(computeKernel("first", 2), cfg.L1.LineBytes)
	h1, err := d.Launch(k1, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(bad, []int{0, 1, -5}); err == nil {
		t.Fatal("launch with negative SM accepted")
	}
	for _, sm := range []int{0, 1} {
		if got := d.SMOwner(sm); got != int16(h1) {
			t.Fatalf("SM %d owned by %d after failed launch, want finished app %d", sm, got, h1)
		}
	}

	// Duplicate SM ids snapshot the SM twice (the second time owned by
	// the handle being rolled back); reverse replay must still land it
	// on its original owner, not the ghost handle.
	if _, err := d.Launch(bad, []int{1, 1, -7}); err == nil {
		t.Fatal("launch with invalid trailing SM accepted")
	}
	if got := d.SMOwner(1); got != int16(h1) {
		t.Fatalf("SM 1 owned by %d after failed duplicate-id launch, want %d", got, h1)
	}

	// The rolled-back SMs remain fully usable: a subsequent valid launch
	// must succeed, dispatch and retire.
	k2 := kernel.MustNew(computeKernel("second", 2), cfg.L1.LineBytes)
	h2, err := d.Launch(k2, []int{0, 1})
	if err != nil {
		t.Fatalf("launch after rollback failed: %v", err)
	}
	if err := d.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !d.Done(h2) {
		t.Fatal("post-rollback launch never finished")
	}
	// Utilization accounting stayed consistent: both runs accrued slots.
	if st := d.AppStats(h2); st.SMCycleSlots == 0 {
		t.Fatal("post-rollback app accrued no SM-cycle slots")
	}
}

func TestReassignValidation(t *testing.T) {
	cfg := config.Small()
	d := MustNew(cfg)
	k := kernel.MustNew(computeKernel("X", 4), cfg.L1.LineBytes)
	h, err := d.Launch(k, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ReassignSM(-1, h); err == nil {
		t.Error("negative SM accepted")
	}
	if err := d.ReassignSM(0, AppHandle(99)); err == nil {
		t.Error("unknown app accepted")
	}
	if err := d.ReassignSM(2, h); err != nil {
		t.Errorf("valid reassign rejected: %v", err)
	}
}

func TestRunTimeoutReported(t *testing.T) {
	cfg := config.Small()
	d := MustNew(cfg)
	k := kernel.MustNew(computeKernel("X", 64), cfg.L1.LineBytes)
	if _, err := d.Launch(k, smRange(0, cfg.NumSMs)); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(10); err == nil {
		t.Fatal("timeout not reported")
	}
}

func TestAddressSpaceIsolationInCoRun(t *testing.T) {
	// Two instances of the same kernel with disjoint base addresses
	// must not share L2 lines: per-app DRAM traffic should be roughly
	// equal rather than the second app free-riding on the first's fills.
	cfg := config.Small()
	d := MustNew(cfg)
	mk := func(name string, base uint64) *kernel.Kernel {
		k := kernel.MustNew(streamKernel(name, 12), cfg.L1.LineBytes)
		k.BaseAddr = base
		return k
	}
	h1, err := d.Launch(mk("S1", 0), smRange(0, cfg.NumSMs/2))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := d.Launch(mk("S2", 1<<40), smRange(cfg.NumSMs/2, cfg.NumSMs))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	b1 := d.AppStats(h1).DRAMBytes
	b2 := d.AppStats(h2).DRAMBytes
	if b1 == 0 || b2 == 0 {
		t.Fatalf("missing DRAM traffic: %d / %d", b1, b2)
	}
	ratio := float64(b1) / float64(b2)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("asymmetric DRAM attribution for identical kernels: %d vs %d", b1, b2)
	}
}

func TestPerAppInstructionConservation(t *testing.T) {
	cfg := config.Small()
	d := MustNew(cfg)
	ks := []*kernel.Kernel{
		kernel.MustNew(computeKernel("A", 8), cfg.L1.LineBytes),
		kernel.MustNew(streamKernel("B", 8), cfg.L1.LineBytes),
	}
	ks[1].BaseAddr = 1 << 40
	half := cfg.NumSMs / 2
	h1, _ := d.Launch(ks[0], smRange(0, half))
	h2, _ := d.Launch(ks[1], smRange(half, cfg.NumSMs))
	if err := d.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	for i, h := range []AppHandle{h1, h2} {
		st := d.AppStats(h)
		want := ks[i].TotalInstrs() * uint64(cfg.WarpSize)
		if st.ThreadInstructions != want {
			t.Errorf("app %d retired %d thread instructions, want %d", i, st.ThreadInstructions, want)
		}
		if d.CTAsDone(h) != ks[i].CTAs {
			t.Errorf("app %d completed %d CTAs, want %d", i, d.CTAsDone(h), ks[i].CTAs)
		}
	}
}

func TestDeviceStatsAggregate(t *testing.T) {
	cfg := config.Small()
	d := MustNew(cfg)
	k := kernel.MustNew(computeKernel("X", 8), cfg.L1.LineBytes)
	if _, err := d.Launch(k, smRange(0, cfg.NumSMs)); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	ds := d.DeviceStats()
	if ds.Cycles != d.Cycle() {
		t.Fatal("device stats cycles mismatch")
	}
	util := ds.Utilization(cfg)
	if util <= 0 || util > 1 {
		t.Fatalf("utilization = %v out of (0,1]", util)
	}
}
