package gpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/kernel"
)

func BenchmarkStepStream(b *testing.B) {
	cfg := config.GTX480()
	d := MustNew(cfg)
	k := kernel.MustNew(kernel.Params{
		Name: "STR", CTAs: 4000, WarpsPerCTA: 6, InstrsPerWarp: 4000,
		MemEvery: 5, Pattern: kernel.PatternStream, CoalescedLines: 4,
		FootprintBytes: 64 << 20, Seed: 2,
	}, cfg.L1.LineBytes)
	sms := make([]int, cfg.NumSMs)
	for i := range sms {
		sms[i] = i
	}
	if _, err := d.Launch(k, sms); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		d.Step() // warm up
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step()
	}
}
