package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
)

func streamParams() Params {
	return Params{
		Name: "k", CTAs: 8, WarpsPerCTA: 4, InstrsPerWarp: 64,
		MemEvery: 4, StoreFraction: 0.25,
		Pattern: PatternStream, CoalescedLines: 4,
		FootprintBytes: 1 << 20, Seed: 7,
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Name = "" },
		func(p *Params) { p.CTAs = 0 },
		func(p *Params) { p.WarpsPerCTA = -1 },
		func(p *Params) { p.InstrsPerWarp = 0 },
		func(p *Params) { p.MemEvery = 1 },
		func(p *Params) { p.CoalescedLines = 0 },
		func(p *Params) { p.CoalescedLines = 64 },
		func(p *Params) { p.FootprintBytes = 0 },
		func(p *Params) { p.StoreFraction = 1.5 },
		func(p *Params) { p.SFUFraction = 0.7; p.SharedFraction = 0.7 },
		func(p *Params) { p.RegsPerThread = -2 },
	}
	for i, mutate := range cases {
		p := streamParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	if err := streamParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestFetchDeterministic(t *testing.T) {
	k1 := MustNew(streamParams(), 128)
	k2 := MustNew(streamParams(), 128)
	buf1 := make([]uint64, 32)
	buf2 := make([]uint64, 32)
	for w := 0; w < k1.TotalWarps(); w += 3 {
		for pc := 0; pc < k1.InstrsPerWarp; pc++ {
			a := k1.Fetch(w, pc, buf1)
			b := k2.Fetch(w, pc, buf2)
			if a.Op != b.Op || len(a.Lines) != len(b.Lines) {
				t.Fatalf("warp %d pc %d: %v vs %v", w, pc, a, b)
			}
			for i := range a.Lines {
				if a.Lines[i] != b.Lines[i] {
					t.Fatalf("warp %d pc %d line %d: %#x vs %#x", w, pc, i, a.Lines[i], b.Lines[i])
				}
			}
		}
	}
}

func TestProgramEndsWithExit(t *testing.T) {
	k := MustNew(streamParams(), 128)
	buf := make([]uint64, 32)
	in := k.Fetch(0, k.InstrsPerWarp-1, buf)
	if in.Op != isa.OpExit {
		t.Fatalf("last instruction = %v, want EXIT", in.Op)
	}
	// Past the end stays EXIT (defensive).
	if in := k.Fetch(0, k.InstrsPerWarp+5, buf); in.Op != isa.OpExit {
		t.Fatalf("past-end instruction = %v", in.Op)
	}
	// pc 0 is never memory or barrier, so launch ramps are clean.
	if in := k.Fetch(0, 0, buf); in.Op.IsMemory() || in.Op == isa.OpBarrier {
		t.Fatalf("first instruction = %v", in.Op)
	}
}

func TestMemEveryControlsR(t *testing.T) {
	p := streamParams()
	p.InstrsPerWarp = 4000
	k := MustNew(p, 128)
	buf := make([]uint64, 32)
	mem := 0
	for pc := 0; pc < p.InstrsPerWarp; pc++ {
		if k.Fetch(3, pc, buf).Op.IsMemory() {
			mem++
		}
	}
	r := float64(mem) / float64(p.InstrsPerWarp)
	want := 1.0 / float64(p.MemEvery)
	if r < want*0.9 || r > want*1.1 {
		t.Fatalf("memory fraction = %v, want about %v", r, want)
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, pattern := range []AccessPattern{PatternStream, PatternStrided, PatternRandom, PatternHotset} {
		p := streamParams()
		p.Pattern = pattern
		p.StrideBytes = 64 << 10
		p.HotBytes = 64 << 10
		p.HotFraction = 0.8
		p.FootprintBytes = 1 << 20
		k := MustNew(p, 128)
		k.BaseAddr = 1 << 40
		buf := make([]uint64, 32)
		for w := 0; w < 8; w++ {
			for pc := 0; pc < p.InstrsPerWarp; pc++ {
				in := k.Fetch(w, pc, buf)
				for _, ln := range in.Lines {
					if ln < k.BaseAddr || ln >= k.BaseAddr+p.FootprintBytes {
						t.Fatalf("%v: address %#x outside [base, base+footprint)", pattern, ln)
					}
					if ln%128 != 0 {
						t.Fatalf("%v: address %#x not line aligned", pattern, ln)
					}
				}
			}
		}
	}
}

func TestBarrierPlacement(t *testing.T) {
	p := streamParams()
	p.BarrierEvery = 8
	p.MemEvery = 0
	p.FootprintBytes = 0
	p.CoalescedLines = 0
	k := MustNew(p, 128)
	buf := make([]uint64, 32)
	bars := 0
	for pc := 0; pc < p.InstrsPerWarp-1; pc++ {
		if k.Fetch(0, pc, buf).Op == isa.OpBarrier {
			bars++
		}
	}
	if bars != (p.InstrsPerWarp-1)/p.BarrierEvery {
		t.Fatalf("barriers = %d over %d instrs", bars, p.InstrsPerWarp)
	}
}

func TestMaxCTAsPerSMOccupancyLimits(t *testing.T) {
	cfg := config.GTX480()
	p := streamParams()
	// Block-slot limited: 8.
	if got := p.MaxCTAsPerSM(cfg); got != 8 {
		t.Fatalf("block-limited = %d, want 8", got)
	}
	// Warp-slot limited: 48/12 = 4.
	p.WarpsPerCTA = 12
	if got := p.MaxCTAsPerSM(cfg); got != 4 {
		t.Fatalf("warp-limited = %d, want 4", got)
	}
	// Register limited: 32768 regs / (64 regs * 32 threads * 4 warps) = 4.
	p.WarpsPerCTA = 4
	p.RegsPerThread = 64
	if got := p.MaxCTAsPerSM(cfg); got != 4 {
		t.Fatalf("reg-limited = %d, want 4", got)
	}
	// Shared-memory limited: 48k / 24k = 2.
	p.RegsPerThread = 8
	p.SharedMemPerCTA = 24 << 10
	if got := p.MaxCTAsPerSM(cfg); got != 2 {
		t.Fatalf("shmem-limited = %d, want 2", got)
	}
	// Never below 1.
	p.SharedMemPerCTA = 100 << 10
	if got := p.MaxCTAsPerSM(cfg); got != 1 {
		t.Fatalf("floor = %d, want 1", got)
	}
}

func TestStreamBurstsAligned(t *testing.T) {
	p := streamParams()
	p.CoalescedLines = 8
	k := MustNew(p, 128)
	buf := make([]uint64, 32)
	for pc := 0; pc < p.InstrsPerWarp; pc++ {
		in := k.Fetch(1, pc, buf)
		if !in.Op.IsMemory() {
			continue
		}
		base := in.Lines[0]
		if base%(128*8) != 0 {
			t.Fatalf("burst base %#x not aligned to burst size", base)
		}
		for i, ln := range in.Lines {
			if ln != base+uint64(i)*128 {
				t.Fatalf("burst not contiguous at %d: %#x", i, ln)
			}
		}
	}
}

// TestFetchInvariants is a property test over arbitrary warp/pc pairs.
func TestFetchInvariants(t *testing.T) {
	k := MustNew(streamParams(), 128)
	buf := make([]uint64, 32)
	f := func(w uint16, pc uint16) bool {
		in := k.Fetch(int(w)%k.TotalWarps(), int(pc)%k.InstrsPerWarp, buf)
		if in.Op.IsMemory() {
			return len(in.Lines) > 0 && len(in.Lines) <= k.CoalescedLines
		}
		return len(in.Lines) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
