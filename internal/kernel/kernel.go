// Package kernel models GPU kernels as grids of thread blocks (CTAs) of
// warps, and provides a parameterized synthetic program generator.
//
// Real Rodinia binaries are not available to an offline pure-Go
// reproduction, so workloads are expressed as seeded synthetic programs:
// a deterministic function from (warp, pc) to a warp-level instruction.
// The generator exposes the knobs that determine where an application
// lands in the paper's classification space (Table 3.1/3.2):
//
//   - MemEvery:        memory-to-compute ratio R
//   - Pattern:         row-buffer locality and cache hit rates
//   - FootprintBytes:  whether the working set fits in L1 / L2 / DRAM
//   - CoalescedLines:  per-access interconnect and cache pressure
//   - CTAs/WarpsPerCTA: available thread-level parallelism
package kernel

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/rng"
)

// AccessPattern selects how a synthetic program generates global-memory
// addresses.
type AccessPattern int

const (
	// PatternStream walks the footprint sequentially per warp: perfectly
	// coalesced, row-buffer friendly, cache-averse (every line is new).
	// Typical of class M streaming kernels (BLK).
	PatternStream AccessPattern = iota
	// PatternStrided walks with a large stride: coalesced within the
	// warp but spreads across rows; moderate row locality. Typical of
	// class MC kernels (FFT, LPS).
	PatternStrided
	// PatternRandom draws a random block base per access and fetches the
	// coalesced lines contiguously from it (GUPS-style coalesced random
	// updates): row-local inside a burst, row-hostile across bursts, and
	// cache hostile throughout.
	PatternRandom
	// PatternHotset draws from a small hot region with probability
	// HotFraction and from the full footprint otherwise: high cache
	// locality with an irregular tail. Typical of class C kernels
	// (BFS2, SPMV).
	PatternHotset
)

// String returns the pattern name.
func (p AccessPattern) String() string {
	switch p {
	case PatternStream:
		return "stream"
	case PatternStrided:
		return "strided"
	case PatternRandom:
		return "random"
	case PatternHotset:
		return "hotset"
	default:
		return fmt.Sprintf("AccessPattern(%d)", int(p))
	}
}

// Params fully describes a synthetic kernel.
type Params struct {
	// Name labels the kernel in statistics and reports.
	Name string
	// CTAs is the grid size in thread blocks.
	CTAs int
	// WarpsPerCTA is the block size in warps.
	WarpsPerCTA int
	// InstrsPerWarp is the dynamic instruction count of each warp,
	// including the final EXIT.
	InstrsPerWarp int
	// MemEvery places one global-memory instruction every MemEvery
	// instructions; the memory-to-compute ratio R is roughly
	// 1/(MemEvery-1). Zero disables global memory accesses.
	MemEvery int
	// StoreFraction is the fraction of memory instructions that are
	// stores.
	StoreFraction float64
	// SFUFraction is the fraction of non-memory instructions that use
	// the special-function units.
	SFUFraction float64
	// SharedFraction is the fraction of non-memory instructions that
	// access scratchpad memory.
	SharedFraction float64
	// BarrierEvery inserts a block-wide barrier every BarrierEvery
	// instructions (0 disables barriers).
	BarrierEvery int
	// Pattern selects the address stream shape.
	Pattern AccessPattern
	// CoalescedLines is the number of distinct cache lines per memory
	// access (1 = fully coalesced; up to the warp size).
	CoalescedLines int
	// FootprintBytes is the kernel's global-memory working set.
	FootprintBytes uint64
	// HotBytes is the hot-region size for PatternHotset.
	HotBytes uint64
	// HotFraction is the probability an access falls in the hot region
	// for PatternHotset.
	HotFraction float64
	// StrideBytes is the inter-access stride for PatternStrided.
	StrideBytes uint64
	// RegsPerThread limits occupancy through register-file pressure.
	RegsPerThread int
	// SharedMemPerCTA limits occupancy through scratchpad pressure.
	SharedMemPerCTA int
	// Seed makes the program's address streams deterministic.
	Seed uint64
}

// Validate reports a descriptive error for inconsistent parameters.
func (p Params) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("kernel: empty name")
	}
	if p.CTAs <= 0 || p.WarpsPerCTA <= 0 || p.InstrsPerWarp <= 0 {
		return fmt.Errorf("kernel %s: grid/block/program sizes must be positive (got %d/%d/%d)",
			p.Name, p.CTAs, p.WarpsPerCTA, p.InstrsPerWarp)
	}
	if p.MemEvery < 0 || p.MemEvery == 1 {
		return fmt.Errorf("kernel %s: MemEvery must be 0 or >= 2 (got %d)", p.Name, p.MemEvery)
	}
	if p.MemEvery > 0 {
		if p.CoalescedLines <= 0 || p.CoalescedLines > 32 {
			return fmt.Errorf("kernel %s: CoalescedLines must be in [1,32] (got %d)", p.Name, p.CoalescedLines)
		}
		if p.FootprintBytes == 0 {
			return fmt.Errorf("kernel %s: memory kernel needs a footprint", p.Name)
		}
	}
	if p.StoreFraction < 0 || p.StoreFraction > 1 ||
		p.SFUFraction < 0 || p.SFUFraction > 1 ||
		p.SharedFraction < 0 || p.SharedFraction > 1 {
		return fmt.Errorf("kernel %s: fractions must be in [0,1]", p.Name)
	}
	if p.SFUFraction+p.SharedFraction > 1 {
		return fmt.Errorf("kernel %s: SFU+Shared fractions exceed 1", p.Name)
	}
	if p.Pattern == PatternHotset && (p.HotBytes == 0 || p.HotFraction <= 0) {
		return fmt.Errorf("kernel %s: hotset pattern needs HotBytes and HotFraction", p.Name)
	}
	if p.Pattern == PatternStrided && p.StrideBytes == 0 {
		return fmt.Errorf("kernel %s: strided pattern needs StrideBytes", p.Name)
	}
	if p.RegsPerThread < 0 || p.SharedMemPerCTA < 0 {
		return fmt.Errorf("kernel %s: occupancy costs must be non-negative", p.Name)
	}
	return nil
}

// TotalWarps returns the number of warps in the grid.
func (p Params) TotalWarps() int { return p.CTAs * p.WarpsPerCTA }

// TotalInstrs returns the dynamic instruction count of the whole grid.
func (p Params) TotalInstrs() uint64 {
	return uint64(p.TotalWarps()) * uint64(p.InstrsPerWarp)
}

// MaxCTAsPerSM returns the occupancy bound of this kernel on the given
// device: the minimum over the block-slot, warp-slot, register-file and
// scratchpad limits, but at least 1 so any kernel can make progress.
func (p Params) MaxCTAsPerSM(cfg config.GPUConfig) int {
	limit := cfg.MaxBlocksPerSM
	if byWarps := cfg.MaxWarpsPerSM / p.WarpsPerCTA; byWarps < limit {
		limit = byWarps
	}
	if p.RegsPerThread > 0 {
		regsPerCTA := p.RegsPerThread * cfg.WarpSize * p.WarpsPerCTA
		if byRegs := cfg.RegistersPerSM / regsPerCTA; byRegs < limit {
			limit = byRegs
		}
	}
	if p.SharedMemPerCTA > 0 {
		if byShmem := cfg.SharedMemPerSM / p.SharedMemPerCTA; byShmem < limit {
			limit = byShmem
		}
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// Kernel is a launchable instance of a synthetic program. BaseAddr places
// the kernel's footprint in the device address space so that concurrently
// running kernels do not share cache lines.
type Kernel struct {
	Params
	// BaseAddr is the start of this instance's address range.
	BaseAddr uint64

	lineBytes uint64
	// footMask and hotMask select lines within the footprint and hot
	// region. Footprints are rounded down to a power of two in lines so
	// address arithmetic is mask-based (this is the hot loop of the
	// whole simulator); the rounding is at most 2x and irrelevant to
	// classification behaviour.
	footMask    uint64
	hotMask     uint64
	perWarp     uint64
	strideLines uint64

	// seedMix caches Mix64(Seed) so the per-fetch hash chain starts one
	// avalanche round in: Hash3(Seed,b,c) == Mix64(Mix64(seedMix^b)^c).
	seedMix uint64
	// sfuThresh/sharedThresh/storeThresh/hotThresh are the fraction knobs lifted
	// into the integer domain of the hash (h>>11 holds 53 uniform bits),
	// so the op mix needs no int-to-float conversion or division per
	// fetch. Comparisons are bit-identical to rng.Float64(h) < frac.
	sfuThresh    uint64
	sharedThresh uint64
	storeThresh  uint64
	hotThresh    uint64
	// plainOps short-circuits Fetch when every non-memory instruction is
	// a plain ALU op (no SFU/shared mix to draw).
	plainOps bool
	// pcKind caches, per program counter, whether the slot is a plain
	// compute op, a memory access or a barrier — the two runtime modulos
	// this replaces sit on the hottest line of the simulator.
	pcKind []uint8
	// ops caches the fully resolved opcode of every (warp, pc) for
	// small grids: the op stream is a pure function of the seed and the
	// mix knobs, and the same kernel parameters are simulated many
	// times across the pipeline (per-SM-count profiles, all-pairs
	// co-runs, fleet groups), so the table is shared process-wide and
	// the hot-loop fetch of a compute op collapses to one byte load.
	// Memory addresses are not cached — they are drawn per access. Nil
	// for grids above the size cap.
	ops []uint8
}

// maxOpsEntries caps the per-kernel op table (one byte per dynamic
// instruction of the grid); larger grids fall back to hashing per fetch.
const maxOpsEntries = 4 << 20

// opsKey identifies an op stream: every parameter that influences the
// per-(warp, pc) opcode draw, and nothing else, so distinct footprints
// or access patterns still share one table.
type opsKey struct {
	seed                   uint64
	instrs, warps          int
	memEvery, barrierEvery int
	sfu, shared, storeFrac float64
}

// opsCache shares op tables across kernel instances; concurrent misses
// may build the same table twice, which is harmless (identical bytes).
var opsCache sync.Map

// pcKind values.
const (
	pcCompute uint8 = iota
	pcMem
	pcBarrier
	pcExit
)

// fracThreshold lifts a [0,1] fraction into the 53-bit integer domain:
// x < thresh  ⇔  float64(x)/2^53 < frac  for every integer x in
// [0, 2^53). float64(x) is exact at 53 bits and x is an integer, so
// x < frac*2^53 ⇔ x < ceil(frac*2^53), with the boundary (frac*2^53
// integral) exact in both forms.
func fracThreshold(frac float64) uint64 {
	return uint64(math.Ceil(frac * (1 << 53)))
}

// sharedOps returns the grid's opcode table, building it on first use
// and sharing it process-wide across kernel instances with the same
// op-relevant parameters. Entries hold isa.Op values and are drawn with
// exactly the arithmetic Fetch would use, so cached and uncached
// kernels execute bit-identical programs.
func (k *Kernel) sharedOps() []uint8 {
	key := opsKey{
		seed:         k.Seed,
		instrs:       k.InstrsPerWarp,
		warps:        k.TotalWarps(),
		memEvery:     k.MemEvery,
		barrierEvery: k.BarrierEvery,
		sfu:          k.SFUFraction,
		shared:       k.SharedFraction,
		storeFrac:    k.StoreFraction,
	}
	if cached, ok := opsCache.Load(key); ok {
		return cached.([]uint8)
	}
	warps, instrs := k.TotalWarps(), k.InstrsPerWarp
	ops := make([]uint8, warps*instrs)
	for warp := 0; warp < warps; warp++ {
		row := ops[warp*instrs:]
		for pc := 0; pc < instrs; pc++ {
			// opAtSlow is the single source of truth for the opcode
			// draw (k.ops is still nil here), so cached and uncached
			// kernels execute bit-identical programs by construction.
			row[pc] = uint8(k.opAtSlow(warp, pc))
		}
	}
	opsCache.Store(key, ops)
	return ops
}

// pow2Floor returns the largest power of two <= v, and at least 1.
func pow2Floor(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	p := uint64(1)
	for p<<1 <= v && p<<1 != 0 {
		p <<= 1
	}
	return p
}

// New validates params and binds the program to a device line size.
// BaseAddr may be set afterwards (it defaults to 0).
func New(p Params, lineBytes int) (*Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("kernel %s: line size must be a positive power of two (got %d)", p.Name, lineBytes)
	}
	k := &Kernel{Params: p, lineBytes: uint64(lineBytes)}
	k.seedMix = rng.Mix64(p.Seed)
	k.sfuThresh = fracThreshold(p.SFUFraction)
	k.sharedThresh = fracThreshold(p.SFUFraction + p.SharedFraction)
	k.storeThresh = fracThreshold(p.StoreFraction)
	k.hotThresh = fracThreshold(p.HotFraction)
	k.plainOps = p.SFUFraction == 0 && p.SharedFraction == 0
	k.pcKind = make([]uint8, p.InstrsPerWarp)
	for pc := 0; pc < p.InstrsPerWarp; pc++ {
		// Mirrors Fetch's slot arithmetic: +1 so pc 0 is never a barrier
		// or a memory op, and the last pc is the exit.
		slot := pc + 1
		switch {
		case pc >= p.InstrsPerWarp-1:
			k.pcKind[pc] = pcExit
		case p.BarrierEvery > 0 && slot%p.BarrierEvery == 0:
			k.pcKind[pc] = pcBarrier
		case p.MemEvery > 0 && slot%p.MemEvery == 0:
			k.pcKind[pc] = pcMem
		default:
			k.pcKind[pc] = pcCompute
		}
	}
	if p.TotalWarps() <= maxOpsEntries/p.InstrsPerWarp {
		k.ops = k.sharedOps()
	}
	if p.MemEvery > 0 {
		footLines := pow2Floor(p.FootprintBytes / k.lineBytes)
		k.footMask = footLines - 1
		k.hotMask = pow2Floor(p.HotBytes/k.lineBytes) - 1
		k.perWarp = footLines / uint64(p.TotalWarps())
		if k.perWarp == 0 {
			k.perWarp = 1
		}
		k.strideLines = p.StrideBytes / k.lineBytes
		if k.strideLines == 0 {
			k.strideLines = 1
		}
	}
	return k, nil
}

// MustNew is New for static kernel tables; it panics on invalid params.
func MustNew(p Params, lineBytes int) *Kernel {
	k, err := New(p, lineBytes)
	if err != nil {
		panic(err)
	}
	return k
}

// Fetch returns the instruction at (warp, pc). Memory instructions write
// their coalesced line addresses into buf, which must have capacity for
// CoalescedLines entries; the returned Instr aliases buf.
//
// The instruction mix is a deterministic function of (Seed, warp, pc), so
// a warp's stream can be replayed at any point without storage.
func (k *Kernel) Fetch(warp, pc int, buf []uint64) isa.Instr {
	op := k.OpAt(warp, pc)
	if op == isa.OpLoad || op == isa.OpStore {
		return isa.Instr{Op: op, Lines: k.memLines(warp, pc, buf)}
	}
	return isa.Instr{Op: op}
}

// OpsRow returns the warp's cached opcode row (indexed by pc, covering
// every pc including the exit), or nil when the grid exceeds the op
// table cap. SMs hold the row per resident warp so the compute fast
// path is a single byte index.
func (k *Kernel) OpsRow(warp int) []uint8 {
	if k.ops == nil {
		return nil
	}
	return k.ops[warp*k.InstrsPerWarp : (warp+1)*k.InstrsPerWarp]
}

// OpAt returns just the opcode at (warp, pc) — the simulator's compute
// fast path, which needs no address generation. Bit-identical to
// Fetch(warp, pc, ...).Op. The table branch is small enough to inline
// into the SM's issue loop.
func (k *Kernel) OpAt(warp, pc int) isa.Op {
	if k.ops != nil && pc < k.InstrsPerWarp-1 {
		return isa.Op(k.ops[warp*k.InstrsPerWarp+pc])
	}
	return k.opAtSlow(warp, pc)
}

// opAtSlow derives the opcode for kernels whose grid exceeds the op
// table cap (and handles the exit pc).
func (k *Kernel) opAtSlow(warp, pc int) isa.Op {
	if pc >= k.InstrsPerWarp-1 {
		return isa.OpExit
	}
	if k.ops != nil {
		return isa.Op(k.ops[warp*k.InstrsPerWarp+pc])
	}
	switch k.pcKind[pc] {
	case pcBarrier:
		return isa.OpBarrier
	case pcMem:
		op := isa.OpLoad
		if k.StoreFraction > 0 {
			h := rng.Mix64(rng.Mix64(k.seedMix^(uint64(warp)<<20|uint64(pc))) ^ 0x53)
			if h>>11 < k.storeThresh {
				op = isa.OpStore
			}
		}
		return op
	}
	if k.plainOps {
		return isa.OpALU
	}
	h := rng.Mix64(rng.Mix64(k.seedMix^(uint64(warp)<<20|uint64(pc))) ^ 0x41)
	switch x := h >> 11; {
	case x < k.sfuThresh:
		return isa.OpSFU
	case x < k.sharedThresh:
		return isa.OpShared
	default:
		return isa.OpALU
	}
}

// memLines fills buf with the coalesced line addresses of the memory
// access at (warp, pc).
func (k *Kernel) memLines(warp, pc int, buf []uint64) []uint64 {
	n := k.CoalescedLines
	if n > len(buf) {
		n = len(buf)
	}
	lines := buf[:0]
	memIdx := uint64(pc / k.MemEvery) // ordinal of this memory access in the warp's stream
	for i := 0; i < n; i++ {
		lines = append(lines, k.address(uint64(warp), memIdx, uint64(i)))
	}
	return lines
}

// address computes the i-th coalesced line of the memIdx-th memory access
// of a warp, according to the kernel's access pattern.
func (k *Kernel) address(warp, memIdx, i uint64) uint64 {
	var line uint64
	switch k.Pattern {
	case PatternStream:
		// Each warp streams through its own contiguous chunk; bursts are
		// aligned to their own size so they do not straddle DRAM rows.
		base := (warp*k.perWarp + memIdx*uint64(k.CoalescedLines)) &^ uint64(k.CoalescedLines-1)
		line = (base + i) & k.footMask
	case PatternStrided:
		line = (warp + (memIdx+i)*k.strideLines) & k.footMask
	case PatternRandom:
		base := rng.Mix64(rng.Mix64(k.seedMix^warp)^memIdx) &^ uint64(k.CoalescedLines-1)
		line = (base + i) & k.footMask
	case PatternHotset:
		h := rng.Mix64(rng.Mix64(rng.Mix64(k.seedMix^warp)^memIdx) ^ i)
		if h>>11 < k.hotThresh {
			line = rng.Mix64(h) & k.hotMask
		} else {
			line = rng.Mix64(h^0xabcd) & k.footMask
		}
	}
	return k.BaseAddr + line*k.lineBytes
}
