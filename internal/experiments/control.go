package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// meanSoloCycles is the calibrated universe's mean solo duration — the
// natural cycle scale for deadlines, think times and admission bounds,
// so the control scenarios track the workload suite instead of magic
// constants.
func (s *Suite) meanSoloCycles() uint64 {
	profiles := s.P.Profiles()
	mean := uint64(0)
	for _, r := range profiles {
		mean += r.Cycles
	}
	return mean / uint64(len(profiles))
}

// FleetAdmission is the admission-control ablation under a flash
// crowd: a closed-loop client pool far larger than the fleet's service
// capacity submits latency-heavy traffic, and the same crowd is served
// with admission off, with over-bound submissions rejected (pricing the
// backlog by solo estimates and, in the modeled variant, by
// interference-inflated co-run estimates), and with them degraded to
// the batch class. Clients think between requests, so
// a rejection genuinely sheds load rather than returning instantly.
// The artifact reports what admission buys the latency class
// (deadline-miss rate, tail wait) and what it costs (rejections or
// degradations, completed work) on identical client behavior.
func (s *Suite) FleetAdmission() (Artifact, error) {
	const (
		devices  = 4
		nc       = 2
		clients  = 12
		requests = 6
	)
	meanSolo := s.meanSoloCycles()
	deadline := 2 * meanSolo
	maxWait := meanSolo
	closed := fleet.ClosedConfig{
		Enabled: true, Clients: clients, Requests: requests,
		Think: float64(meanSolo), LatencyFrac: 0.5, Deadline: deadline,
		Seed: rng.Hash2(s.Seed, 0xad1), Universe: workloads.Names,
	}
	modes := []struct {
		name string
		adm  fleet.AdmissionConfig
	}{
		{"admission-off", fleet.AdmissionConfig{}},
		{"admission-reject", fleet.AdmissionConfig{Enabled: true, MaxWait: maxWait}},
		{"admission-reject-modeled", fleet.AdmissionConfig{Enabled: true, MaxWait: maxWait, Modeled: true}},
		{"admission-degrade", fleet.AdmissionConfig{Enabled: true, MaxWait: maxWait, Degrade: true}},
	}
	a := Artifact{
		ID: "FleetAdmission",
		Title: fmt.Sprintf("admission control: %d devices, %d closed-loop clients x %d requests, 50%% latency-class, bound %d kcyc (beyond the paper)",
			devices, clients, requests, maxWait/1000),
	}
	for _, m := range modes {
		a.Columns = append(a.Columns, m.name)
	}
	labels := []string{
		"deadline-miss rate",
		"latency p99 wait (kcyc)",
		"completed jobs",
		"rejected",
		"degraded",
		"throughput",
	}
	rows := map[string]*Row{}
	for _, label := range labels {
		rows[label] = &Row{Label: label}
	}
	for _, m := range modes {
		f, err := fleet.NewHomogeneous(s.P, devices, fleet.Config{
			NC: nc, Policy: sched.ILPSMRA, Engine: fleet.Modeled,
			SLO: fleet.SLOConfig{Enabled: true}, Closed: closed, Admission: m.adm,
		})
		if err != nil {
			return Artifact{}, err
		}
		res, err := f.Run(nil)
		if err != nil {
			return Artifact{}, fmt.Errorf("fleet admission/%s: %w", m.name, err)
		}
		add := func(label string, v float64) { rows[label].Values = append(rows[label].Values, v) }
		add("deadline-miss rate", res.MissRate())
		add("latency p99 wait (kcyc)", res.WaitSummaryFor(fleet.Latency).P99)
		add("completed jobs", float64(res.CompletedJobs()))
		add("rejected", float64(res.Rejected))
		add("degraded", float64(res.Degraded))
		add("throughput", res.Throughput())
	}
	for _, label := range labels {
		a.Rows = append(a.Rows, *rows[label])
	}
	// Headline: the ablation's trade — misses bought down, paid in
	// rejections (or degradations, which keep the work).
	off := a.MustValue("deadline-miss rate", "admission-off")
	rej := a.MustValue("deadline-miss rate", "admission-reject")
	a.Notes = append(a.Notes, fmt.Sprintf("flash-crowd deadline-miss rate with admission: %.3f -> %.3f, at %.0f rejections",
		off, rej, a.MustValue("rejected", "admission-reject")))
	a.Notes = append(a.Notes, fmt.Sprintf("degrade mode: miss rate %.3f with 0 rejections and %.0f degradations (no work dropped)",
		a.MustValue("deadline-miss rate", "admission-degrade"), a.MustValue("degraded", "admission-degrade")))
	// A/B: the interference-aware predictor prices the backlog with
	// co-run (slowed-down) estimates instead of solo cycles, so the same
	// bound admits less optimistically.
	a.Notes = append(a.Notes, fmt.Sprintf("interference-aware predictor: miss rate %.3f at %.0f rejections (solo-estimate reject: %.3f at %.0f)",
		a.MustValue("deadline-miss rate", "admission-reject-modeled"), a.MustValue("rejected", "admission-reject-modeled"),
		rej, a.MustValue("rejected", "admission-reject")))
	return a, nil
}

// FleetElastic is the elastic-roster ablation under a diurnal load
// curve: long bursty ON/OFF phases (hours of the simulated day, on the
// suite's cycle scale) alternately load and idle the fleet, served
// once by the full fixed roster and once by the autoscaler breathing
// between a 2-device floor and the full 8. The artifact reports what
// elasticity saves (mean devices held active, integrated from the
// run's time series) against what it costs (wait and deadline tails
// while capacity catches up), with the roster churn itself —
// provisions and decommissions — alongside.
func (s *Suite) FleetElastic() (Artifact, error) {
	const (
		devices = 8
		nc      = 2
		jobs    = 96
	)
	meanSolo := s.meanSoloCycles()
	deadline := 4 * meanSolo
	acfg := fleet.ArrivalConfig{
		Kind: fleet.Bursty, Jobs: jobs, Rate: 0.15, BurstRate: 2.0,
		MeanOn: float64(4 * meanSolo), MeanOff: float64(12 * meanSolo),
		LatencyFrac: 0.25, Deadline: deadline,
		Seed: rng.Hash2(s.Seed, 0xe1a5),
	}
	arrivals, err := acfg.Generate(workloads.Names)
	if err != nil {
		return Artifact{}, err
	}
	modes := []struct {
		name  string
		scale fleet.AutoscaleConfig
	}{
		{"fixed-roster", fleet.AutoscaleConfig{}},
		{"autoscale-2:8", fleet.AutoscaleConfig{Enabled: true, Min: 2, Max: devices, High: 1.0, Low: 0.25}},
	}
	a := Artifact{
		ID: "FleetElastic",
		Title: fmt.Sprintf("elastic roster: %d devices, %d diurnal bursty jobs, autoscale off vs 2:%d (beyond the paper)",
			devices, jobs, devices),
	}
	for _, m := range modes {
		a.Columns = append(a.Columns, m.name)
	}
	labels := []string{
		"mean active devices",
		"deadline-miss rate",
		"wait p95 (kcyc)",
		"throughput",
		"provisions",
		"decommissions",
		"makespan (Mcyc)",
	}
	rows := map[string]*Row{}
	for _, label := range labels {
		rows[label] = &Row{Label: label}
	}
	for _, m := range modes {
		f, err := fleet.NewHomogeneous(s.P, devices, fleet.Config{
			NC: nc, Policy: sched.ILPSMRA, Engine: fleet.Modeled,
			SLO: fleet.SLOConfig{Enabled: true}, Autoscale: m.scale,
			SampleEvery: meanSolo / 4, ShardEpoch: meanSolo / 2,
		})
		if err != nil {
			return Artifact{}, err
		}
		res, err := f.Run(arrivals)
		if err != nil {
			return Artifact{}, fmt.Errorf("fleet elastic/%s: %w", m.name, err)
		}
		add := func(label string, v float64) { rows[label].Values = append(rows[label].Values, v) }
		add("mean active devices", meanActiveDevices(res, devices))
		add("deadline-miss rate", res.MissRate())
		add("wait p95 (kcyc)", res.WaitSummary().P95)
		add("throughput", res.Throughput())
		add("provisions", float64(res.Provisions))
		add("decommissions", float64(res.Decommissions))
		add("makespan (Mcyc)", float64(res.Makespan)/1e6)
	}
	for _, label := range labels {
		a.Rows = append(a.Rows, *rows[label])
	}
	fixedActive := a.MustValue("mean active devices", "fixed-roster")
	elasticActive := a.MustValue("mean active devices", "autoscale-2:8")
	a.Notes = append(a.Notes, fmt.Sprintf("diurnal curve: mean active devices %.2f -> %.2f (%.0f%% fewer device-cycles held) with %0.f provisions / %0.f decommissions; wait p95 %.1f -> %.1f kcyc",
		fixedActive, elasticActive, 100*(1-elasticActive/fixedActive),
		a.MustValue("provisions", "autoscale-2:8"), a.MustValue("decommissions", "autoscale-2:8"),
		a.MustValue("wait p95 (kcyc)", "fixed-roster"), a.MustValue("wait p95 (kcyc)", "autoscale-2:8")))
	return a, nil
}

// meanActiveDevices integrates the active-roster size over the run's
// time series — the device-cycles the operator actually held, per
// cycle of makespan. Without an autoscaler the series has no active
// column and the whole roster is held for the whole run.
func meanActiveDevices(res fleet.Result, devices int) float64 {
	if res.Series == nil || res.Series.Rows() == 0 {
		return float64(devices)
	}
	col := res.Series.Col("active_devices")
	if col < 0 {
		return float64(devices)
	}
	sum := 0.0
	for r := 0; r < res.Series.Rows(); r++ {
		sum += float64(res.Series.At(r, col))
	}
	return sum / float64(res.Series.Rows())
}
