package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// fleetPolicies are the policies the online comparison sweeps — the
// paper's offline ladder (Fig 4.1) transplanted to the arrival-driven
// setting.
var fleetPolicies = []sched.Policy{sched.Serial, sched.FCFS, sched.ILP, sched.ILPSMRA}

// FleetOnline is an extension beyond the paper: the same policy ladder
// evaluated online, with jobs arriving over simulated time to a
// 4-device fleet under three traffic regimes — light (fleet mostly
// drains between arrivals), saturating (a standing queue, where the
// windowed ILP has real choice), and bursty (on-off arrivals stressing
// latency). For each regime the artifact reports fleet throughput
// (instructions/cycle over the makespan) and the p95 job turnaround in
// kilocycles.
func (s *Suite) FleetOnline() (Artifact, error) {
	const (
		devices = 4
		nc      = 2
		jobs    = 48
	)
	regimes := []struct {
		name string
		cfg  fleet.ArrivalConfig
	}{
		{"light", fleet.ArrivalConfig{Kind: fleet.Poisson, Jobs: jobs, Rate: 0.03}},
		{"saturating", fleet.ArrivalConfig{Kind: fleet.Poisson, Jobs: jobs, Rate: 1.0}},
		{"bursty", fleet.ArrivalConfig{Kind: fleet.Bursty, Jobs: jobs, Rate: 0.25}},
	}
	a := Artifact{
		ID:    "FleetOnline",
		Title: fmt.Sprintf("online fleet: %d devices, NC=%d, %d jobs per regime (beyond the paper)", devices, nc, jobs),
	}
	for _, p := range fleetPolicies {
		a.Columns = append(a.Columns, p.String())
	}
	for i, regime := range regimes {
		regime.cfg.Seed = rng.Hash2(s.Seed, uint64(i)+1)
		arrivals, err := regime.cfg.Generate(workloads.Names)
		if err != nil {
			return Artifact{}, err
		}
		thpt := Row{Label: regime.name + " throughput"}
		p95 := Row{Label: regime.name + " p95 turnaround (kcyc)"}
		for _, policy := range fleetPolicies {
			f, err := fleet.NewHomogeneous(s.P, devices, fleet.Config{NC: nc, Policy: policy})
			if err != nil {
				return Artifact{}, err
			}
			res, err := f.Run(arrivals)
			if err != nil {
				return Artifact{}, fmt.Errorf("fleet %s/%v: %w", regime.name, policy, err)
			}
			thpt.Values = append(thpt.Values, res.Throughput())
			p95.Values = append(p95.Values, res.TurnaroundSummary().P95)
		}
		a.Rows = append(a.Rows, thpt, p95)
	}
	// Headline: the ILP-SMRA gain over FCFS under saturation, the regime
	// the paper's offline evaluation approximates.
	fcfs, err := a.Value("saturating throughput", sched.FCFS.String())
	if err != nil {
		return Artifact{}, err
	}
	smra, err := a.Value("saturating throughput", sched.ILPSMRA.String())
	if err != nil {
		return Artifact{}, err
	}
	if fcfs > 0 {
		a.Notes = append(a.Notes, fmt.Sprintf("saturating ILP-SMRA/FCFS throughput: %.3fx", smra/fcfs))
	}
	return a, nil
}

// FleetHetero evaluates mixed-generation rosters: the same saturating
// traffic is dispatched onto a homogeneous big-device fleet and onto a
// heterogeneous roster that swaps one big device for two small-
// generation ones, under naive FCFS placement and under the
// placement-aware ILP-SMRA dispatcher (per-device-type classes,
// interference matrices and completion bounds). The interesting cell is
// the mixed roster: FCFS places groups blindly, while the
// placement-aware dispatcher forms each device's group with the matrix
// of the generation that will run it.
func (s *Suite) FleetHetero() (Artifact, error) {
	const (
		nc   = 2
		jobs = 40
	)
	small, err := core.LoadOrInit(config.Small(), workloads.All())
	if err != nil {
		return Artifact{}, fmt.Errorf("calibrate %s: %w", config.Small().Name, err)
	}
	bigName := s.P.Config().Name
	mixedLabel := fmt.Sprintf("mixed 1x%s+2x%s", bigName, small.Config().Name)
	rosters := []struct {
		name string
		devs []fleet.DeviceSpec
	}{
		{"homogeneous 2x" + bigName, []fleet.DeviceSpec{{Pipe: s.P, Count: 2}}},
		{mixedLabel, []fleet.DeviceSpec{{Pipe: s.P, Count: 1}, {Pipe: small, Count: 2}}},
	}
	policies := []sched.Policy{sched.FCFS, sched.ILPSMRA}
	a := Artifact{
		ID:    "FleetHetero",
		Title: fmt.Sprintf("heterogeneous fleet: homogeneous vs mixed rosters, NC=%d, %d jobs (beyond the paper)", nc, jobs),
	}
	for _, p := range policies {
		a.Columns = append(a.Columns, p.String())
	}
	acfg := fleet.ArrivalConfig{Kind: fleet.Poisson, Jobs: jobs, Rate: 0.8, Seed: rng.Hash2(s.Seed, 0xe7e0)}
	arrivals, err := acfg.Generate(workloads.Names)
	if err != nil {
		return Artifact{}, err
	}
	for _, roster := range rosters {
		thpt := Row{Label: roster.name + " throughput"}
		p95 := Row{Label: roster.name + " p95 wait (kcyc)"}
		for _, policy := range policies {
			f, err := fleet.New(fleet.Config{Devices: roster.devs, NC: nc, Policy: policy})
			if err != nil {
				return Artifact{}, err
			}
			res, err := f.Run(arrivals)
			if err != nil {
				return Artifact{}, fmt.Errorf("fleet %s/%v: %w", roster.name, policy, err)
			}
			thpt.Values = append(thpt.Values, res.Throughput())
			p95.Values = append(p95.Values, res.WaitSummary().P95)
		}
		a.Rows = append(a.Rows, thpt, p95)
	}
	// Headline: what placement-awareness buys on the mixed roster.
	mixedThpt := a.MustValue(mixedLabel+" throughput", sched.ILPSMRA.String()) /
		a.MustValue(mixedLabel+" throughput", sched.FCFS.String())
	fcfsWait := a.MustValue(mixedLabel+" p95 wait (kcyc)", sched.FCFS.String())
	smraWait := a.MustValue(mixedLabel+" p95 wait (kcyc)", sched.ILPSMRA.String())
	a.Notes = append(a.Notes, fmt.Sprintf("mixed roster ILP-SMRA/FCFS: %.3fx throughput, p95 wait %.1f -> %.1f kcyc",
		mixedThpt, fcfsWait, smraWait))
	return a, nil
}
