package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// fleetPolicies are the policies the online comparison sweeps — the
// paper's offline ladder (Fig 4.1) transplanted to the arrival-driven
// setting.
var fleetPolicies = []sched.Policy{sched.Serial, sched.FCFS, sched.ILP, sched.ILPSMRA}

// FleetOnline is an extension beyond the paper: the same policy ladder
// evaluated online, with jobs arriving over simulated time to a
// 4-device fleet under three traffic regimes — light (fleet mostly
// drains between arrivals), saturating (a standing queue, where the
// windowed ILP has real choice), and bursty (on-off arrivals stressing
// latency). For each regime the artifact reports fleet throughput
// (instructions/cycle over the makespan) and the p95 job turnaround in
// kilocycles.
func (s *Suite) FleetOnline() (Artifact, error) {
	const (
		devices = 4
		nc      = 2
		jobs    = 48
	)
	regimes := []struct {
		name string
		cfg  fleet.ArrivalConfig
	}{
		{"light", fleet.ArrivalConfig{Kind: fleet.Poisson, Jobs: jobs, Rate: 0.03}},
		{"saturating", fleet.ArrivalConfig{Kind: fleet.Poisson, Jobs: jobs, Rate: 1.0}},
		{"bursty", fleet.ArrivalConfig{Kind: fleet.Bursty, Jobs: jobs, Rate: 0.25}},
	}
	a := Artifact{
		ID:    "FleetOnline",
		Title: fmt.Sprintf("online fleet: %d devices, NC=%d, %d jobs per regime (beyond the paper)", devices, nc, jobs),
	}
	for _, p := range fleetPolicies {
		a.Columns = append(a.Columns, p.String())
	}
	for i, regime := range regimes {
		regime.cfg.Seed = rng.Hash2(s.Seed, uint64(i)+1)
		arrivals, err := regime.cfg.Generate(workloads.Names)
		if err != nil {
			return Artifact{}, err
		}
		thpt := Row{Label: regime.name + " throughput"}
		p95 := Row{Label: regime.name + " p95 turnaround (kcyc)"}
		for _, policy := range fleetPolicies {
			f, err := fleet.New(s.P, fleet.Config{Devices: devices, NC: nc, Policy: policy})
			if err != nil {
				return Artifact{}, err
			}
			res, err := f.Run(arrivals)
			if err != nil {
				return Artifact{}, fmt.Errorf("fleet %s/%v: %w", regime.name, policy, err)
			}
			thpt.Values = append(thpt.Values, res.Throughput())
			p95.Values = append(p95.Values, res.TurnaroundSummary().P95)
		}
		a.Rows = append(a.Rows, thpt, p95)
	}
	// Headline: the ILP-SMRA gain over FCFS under saturation, the regime
	// the paper's offline evaluation approximates.
	fcfs, err := a.Value("saturating throughput", sched.FCFS.String())
	if err != nil {
		return Artifact{}, err
	}
	smra, err := a.Value("saturating throughput", sched.ILPSMRA.String())
	if err != nil {
		return Artifact{}, err
	}
	if fcfs > 0 {
		a.Notes = append(a.Notes, fmt.Sprintf("saturating ILP-SMRA/FCFS throughput: %.3fx", smra/fcfs))
	}
	return a, nil
}
