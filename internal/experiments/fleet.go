package experiments

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// fleetPolicies are the policies the online comparison sweeps — the
// paper's offline ladder (Fig 4.1) transplanted to the arrival-driven
// setting.
var fleetPolicies = []sched.Policy{sched.Serial, sched.FCFS, sched.ILP, sched.ILPSMRA}

// FleetOnline is an extension beyond the paper: the same policy ladder
// evaluated online, with jobs arriving over simulated time to a
// 4-device fleet under three traffic regimes — light (fleet mostly
// drains between arrivals), saturating (a standing queue, where the
// windowed ILP has real choice), and bursty (on-off arrivals stressing
// latency). For each regime the artifact reports fleet throughput
// (instructions/cycle over the makespan) and the p95 job turnaround in
// kilocycles.
func (s *Suite) FleetOnline() (Artifact, error) {
	const (
		devices = 4
		nc      = 2
		jobs    = 48
	)
	regimes := []struct {
		name string
		cfg  fleet.ArrivalConfig
	}{
		{"light", fleet.ArrivalConfig{Kind: fleet.Poisson, Jobs: jobs, Rate: 0.03}},
		{"saturating", fleet.ArrivalConfig{Kind: fleet.Poisson, Jobs: jobs, Rate: 1.0}},
		{"bursty", fleet.ArrivalConfig{Kind: fleet.Bursty, Jobs: jobs, Rate: 0.25}},
	}
	a := Artifact{
		ID:    "FleetOnline",
		Title: fmt.Sprintf("online fleet: %d devices, NC=%d, %d jobs per regime (beyond the paper)", devices, nc, jobs),
	}
	for _, p := range fleetPolicies {
		a.Columns = append(a.Columns, p.String())
	}
	for i, regime := range regimes {
		regime.cfg.Seed = rng.Hash2(s.Seed, uint64(i)+1)
		arrivals, err := regime.cfg.Generate(workloads.Names)
		if err != nil {
			return Artifact{}, err
		}
		thpt := Row{Label: regime.name + " throughput"}
		p95 := Row{Label: regime.name + " p95 turnaround (kcyc)"}
		for _, policy := range fleetPolicies {
			f, err := fleet.NewHomogeneous(s.P, devices, fleet.Config{NC: nc, Policy: policy})
			if err != nil {
				return Artifact{}, err
			}
			res, err := f.Run(arrivals)
			if err != nil {
				return Artifact{}, fmt.Errorf("fleet %s/%v: %w", regime.name, policy, err)
			}
			thpt.Values = append(thpt.Values, res.Throughput())
			p95.Values = append(p95.Values, res.TurnaroundSummary().P95)
		}
		a.Rows = append(a.Rows, thpt, p95)
	}
	// Headline: the ILP-SMRA gain over FCFS under saturation, the regime
	// the paper's offline evaluation approximates.
	fcfs, err := a.Value("saturating throughput", sched.FCFS.String())
	if err != nil {
		return Artifact{}, err
	}
	smra, err := a.Value("saturating throughput", sched.ILPSMRA.String())
	if err != nil {
		return Artifact{}, err
	}
	if fcfs > 0 {
		a.Notes = append(a.Notes, fmt.Sprintf("saturating ILP-SMRA/FCFS throughput: %.3fx", smra/fcfs))
	}
	return a, nil
}

// FleetSLO is the service-level ablation: identical saturating traffic
// with a latency-class share is dispatched under class-blind dispatch,
// SLO-priority dispatch (latency jobs queue first), and SLO dispatch
// with preemption (running all-batch groups are evicted, with
// checkpointed progress, when a waiting latency job would provably miss
// its deadline). The arrival generator draws the class tags from a
// stream independent of the time/name draws, so all three columns see
// the very same traffic — the deadline-miss differences are pure
// dispatch policy. The artifact reports the latency-class deadline-miss
// rate and tail latency alongside what the protection costs the batch
// class (wait, completion rate, fleet throughput) and how many
// evictions paid for it.
func (s *Suite) FleetSLO() (Artifact, error) {
	const (
		devices     = 4
		nc          = 2
		jobs        = 60
		latencyFrac = 0.1
	)
	// The deadline scales with the calibrated universe rather than being
	// a magic cycle count: twice the mean solo duration, comfortable for
	// a dispatched latency job (even co-running) but tight enough that
	// queueing behind batch backlogs blows it.
	profiles := s.P.Profiles()
	meanSolo := uint64(0)
	for _, r := range profiles {
		meanSolo += r.Cycles
	}
	meanSolo /= uint64(len(profiles))
	deadline := 2 * meanSolo
	acfg := fleet.ArrivalConfig{
		Kind: fleet.Poisson, Jobs: jobs, Rate: 0.8,
		LatencyFrac: latencyFrac, Deadline: deadline,
		Seed: rng.Hash2(s.Seed, 0x510),
	}
	arrivals, err := acfg.Generate(workloads.Names)
	if err != nil {
		return Artifact{}, err
	}
	modes := []struct {
		name string
		slo  fleet.SLOConfig
	}{
		{"class-blind", fleet.SLOConfig{}},
		{"slo-priority", fleet.SLOConfig{Enabled: true}},
		{"slo-preempt", fleet.SLOConfig{Enabled: true, Preempt: true}},
	}
	a := Artifact{
		ID: "FleetSLO",
		Title: fmt.Sprintf("SLO classes: %d devices, NC=%d, %d jobs, %.0f%% latency-class, deadline %d kcyc (beyond the paper)",
			devices, nc, jobs, 100*latencyFrac, deadline/1000),
	}
	for _, m := range modes {
		a.Columns = append(a.Columns, m.name)
	}
	labels := []string{
		"deadline-miss rate",
		"latency p99 turnaround (kcyc)",
		"latency p99 wait (kcyc)",
		"batch p95 wait (kcyc)",
		"batch jobs per Mcycle",
		"throughput",
		"evictions",
	}
	rows := map[string]*Row{}
	for _, label := range labels {
		rows[label] = &Row{Label: label}
	}
	for _, m := range modes {
		f, err := fleet.NewHomogeneous(s.P, devices, fleet.Config{NC: nc, Policy: sched.ILPSMRA, SLO: m.slo})
		if err != nil {
			return Artifact{}, err
		}
		res, err := f.Run(arrivals)
		if err != nil {
			return Artifact{}, fmt.Errorf("fleet slo/%s: %w", m.name, err)
		}
		batchJobs := len(res.Jobs) - res.LatencyJobs()
		add := func(label string, v float64) { rows[label].Values = append(rows[label].Values, v) }
		add("deadline-miss rate", res.MissRate())
		add("latency p99 turnaround (kcyc)", res.TurnaroundSummaryFor(fleet.Latency).P99)
		add("latency p99 wait (kcyc)", res.WaitSummaryFor(fleet.Latency).P99)
		add("batch p95 wait (kcyc)", res.WaitSummaryFor(fleet.Batch).P95)
		add("batch jobs per Mcycle", 1e6*float64(batchJobs)/float64(res.Makespan))
		add("throughput", res.Throughput())
		add("evictions", float64(len(res.Evictions)))
	}
	for _, label := range labels {
		a.Rows = append(a.Rows, *rows[label])
	}
	// Headlines: what preemption buys the latency class and what it
	// costs the batch class, on identical traffic.
	noPre := a.MustValue("deadline-miss rate", "slo-priority")
	withPre := a.MustValue("deadline-miss rate", "slo-preempt")
	a.Notes = append(a.Notes, fmt.Sprintf("latency deadline-miss rate with preemption: %.3f -> %.3f", noPre, withPre))
	bNoPre := a.MustValue("batch jobs per Mcycle", "slo-priority")
	bPre := a.MustValue("batch jobs per Mcycle", "slo-preempt")
	tNoPre := a.MustValue("throughput", "slo-priority")
	tPre := a.MustValue("throughput", "slo-preempt")
	if bNoPre > 0 && tNoPre > 0 {
		a.Notes = append(a.Notes, fmt.Sprintf("batch side on the same traffic: %.2f -> %.2f completed jobs/Mcycle (%+.1f%%), fleet throughput %.2f -> %.2f (%+.1f%%)",
			bNoPre, bPre, 100*(bPre-bNoPre)/bNoPre, tNoPre, tPre, 100*(tPre-tNoPre)/tNoPre))
	}
	return a, nil
}

// FleetScale is the warehouse-scale scenario the Modeled engine
// exists for: a 64-device mixed-generation roster serving a 100k-job
// bursty arrival stream with SLO classes and preemption on — three
// orders of magnitude beyond what cycle-accurate group simulation can
// sweep. Group completions come from the analytic engine (solo
// profiles scaled by the interference matrix's predicted slowdowns),
// so the whole run is a pure discrete-event computation over the
// indexed event core; the artifact contrasts naive FCFS dispatch with
// the placement-aware windowed ILP at a scale where the dispatcher's
// own cost would previously have dominated.
func (s *Suite) FleetScale() (Artifact, error) {
	const (
		nc          = 2
		jobs        = 100_000
		latencyFrac = 0.1
	)
	small, err := core.LoadOrInit(config.Small(), workloads.All())
	if err != nil {
		return Artifact{}, fmt.Errorf("calibrate %s: %w", config.Small().Name, err)
	}
	roster := []fleet.DeviceSpec{{Pipe: s.P, Count: 32}, {Pipe: small, Count: 32}}
	devices := 0
	for _, r := range roster {
		devices += r.Count
	}
	// Deadline scaled from the calibrated universe exactly as FleetSLO
	// does: twice the mean solo duration on the big generation.
	profiles := s.P.Profiles()
	meanSolo := uint64(0)
	for _, r := range profiles {
		meanSolo += r.Cycles
	}
	meanSolo /= uint64(len(profiles))
	deadline := 2 * meanSolo
	acfg := fleet.ArrivalConfig{
		Kind: fleet.Bursty, Jobs: jobs, Rate: 1.2,
		LatencyFrac: latencyFrac, Deadline: deadline,
		Seed: rng.Hash2(s.Seed, 0x5ca1e),
	}
	arrivals, err := acfg.Generate(workloads.Names)
	if err != nil {
		return Artifact{}, err
	}
	policies := []sched.Policy{sched.FCFS, sched.ILPSMRA}
	a := Artifact{
		ID: "FleetScale",
		Title: fmt.Sprintf("warehouse scale: %d mixed devices, %dk bursty jobs, %.0f%% latency-class, modeled engine (beyond the paper)",
			devices, jobs/1000, 100*latencyFrac),
	}
	for _, p := range policies {
		a.Columns = append(a.Columns, p.String())
	}
	labels := []string{
		"throughput",
		"mean utilization",
		"deadline-miss rate",
		"latency p99 wait (kcyc)",
		"batch p95 wait (kcyc)",
		"evictions",
		"makespan (Mcyc)",
	}
	rows := map[string]*Row{}
	for _, label := range labels {
		rows[label] = &Row{Label: label}
	}
	for _, policy := range policies {
		f, err := fleet.New(fleet.Config{
			Devices: roster, NC: nc, Policy: policy, Engine: fleet.Modeled,
			SLO: fleet.SLOConfig{Enabled: true, Preempt: true},
		})
		if err != nil {
			return Artifact{}, err
		}
		res, err := f.Run(arrivals)
		if err != nil {
			return Artifact{}, fmt.Errorf("fleet scale/%v: %w", policy, err)
		}
		add := func(label string, v float64) { rows[label].Values = append(rows[label].Values, v) }
		add("throughput", res.Throughput())
		add("mean utilization", res.MeanUtilization())
		add("deadline-miss rate", res.MissRate())
		add("latency p99 wait (kcyc)", res.WaitSummaryFor(fleet.Latency).P99)
		add("batch p95 wait (kcyc)", res.WaitSummaryFor(fleet.Batch).P95)
		add("evictions", float64(len(res.Evictions)))
		add("makespan (Mcyc)", float64(res.Makespan)/1e6)
	}
	for _, label := range labels {
		a.Rows = append(a.Rows, *rows[label])
	}
	fcfs := a.MustValue("throughput", sched.FCFS.String())
	smra := a.MustValue("throughput", sched.ILPSMRA.String())
	if fcfs > 0 {
		a.Notes = append(a.Notes, fmt.Sprintf("ILP-SMRA/FCFS throughput at %d devices x %dk jobs: %.3fx (modeled engine, zero cycle-accurate sims)",
			devices, jobs/1000, smra/fcfs))
	}
	// Sharding headline: the ILP-SMRA cell re-run under 1 and 8 parallel
	// event loops. The accounting is byte-identical by contract (checked
	// here), so the only thing sharding can change is how long the host
	// takes — which is exactly what the note reports. Wall time is a
	// measurement of the simulator, not a simulated quantity, hence the
	// wallclock waivers.
	shardWall := func(shards int) (time.Duration, fleet.Result, error) {
		f, err := fleet.New(fleet.Config{
			Devices: roster, NC: nc, Policy: sched.ILPSMRA, Engine: fleet.Modeled,
			SLO:    fleet.SLOConfig{Enabled: true, Preempt: true},
			Shards: shards,
		})
		if err != nil {
			return 0, fleet.Result{}, err
		}
		//simlint:ignore wallclock -- host wall time is the measurement itself, never a simulated quantity
		start := time.Now()
		res, err := f.Run(arrivals)
		if err != nil {
			return 0, fleet.Result{}, fmt.Errorf("fleet scale/%d shards: %w", shards, err)
		}
		//simlint:ignore wallclock -- host wall time is the measurement itself, never a simulated quantity
		return time.Since(start), res, nil
	}
	const shardK = 8
	oneWall, oneRes, err := shardWall(1)
	if err != nil {
		return Artifact{}, err
	}
	kWall, kRes, err := shardWall(shardK)
	if err != nil {
		return Artifact{}, err
	}
	// Sharding splits the backlog K ways, so the simulated schedule is
	// allowed to drift from the single loop's — but never the job count.
	if len(oneRes.Jobs) != len(kRes.Jobs) {
		return Artifact{}, fmt.Errorf("fleet scale: %d shards completed %d jobs, single loop %d",
			shardK, len(kRes.Jobs), len(oneRes.Jobs))
	}
	speedup := 0.0
	if kWall > 0 {
		speedup = float64(oneWall) / float64(kWall)
	}
	a.Notes = append(a.Notes, fmt.Sprintf("sharded event loops: 1 shard %v vs %d shards %v wall-clock (%.2fx); %d-way split makespan %.2fx of single loop",
		oneWall.Round(time.Millisecond), shardK, kWall.Round(time.Millisecond), speedup,
		shardK, float64(kRes.Makespan)/float64(oneRes.Makespan)))
	return a, nil
}

// FleetHetero evaluates mixed-generation rosters: the same saturating
// traffic is dispatched onto a homogeneous big-device fleet and onto a
// heterogeneous roster that swaps one big device for two small-
// generation ones, under naive FCFS placement and under the
// placement-aware ILP-SMRA dispatcher (per-device-type classes,
// interference matrices and completion bounds). The interesting cell is
// the mixed roster: FCFS places groups blindly, while the
// placement-aware dispatcher forms each device's group with the matrix
// of the generation that will run it.
func (s *Suite) FleetHetero() (Artifact, error) {
	const (
		nc   = 2
		jobs = 40
	)
	small, err := core.LoadOrInit(config.Small(), workloads.All())
	if err != nil {
		return Artifact{}, fmt.Errorf("calibrate %s: %w", config.Small().Name, err)
	}
	bigName := s.P.Config().Name
	mixedLabel := fmt.Sprintf("mixed 1x%s+2x%s", bigName, small.Config().Name)
	rosters := []struct {
		name string
		devs []fleet.DeviceSpec
	}{
		{"homogeneous 2x" + bigName, []fleet.DeviceSpec{{Pipe: s.P, Count: 2}}},
		{mixedLabel, []fleet.DeviceSpec{{Pipe: s.P, Count: 1}, {Pipe: small, Count: 2}}},
	}
	policies := []sched.Policy{sched.FCFS, sched.ILPSMRA}
	a := Artifact{
		ID:    "FleetHetero",
		Title: fmt.Sprintf("heterogeneous fleet: homogeneous vs mixed rosters, NC=%d, %d jobs (beyond the paper)", nc, jobs),
	}
	for _, p := range policies {
		a.Columns = append(a.Columns, p.String())
	}
	acfg := fleet.ArrivalConfig{Kind: fleet.Poisson, Jobs: jobs, Rate: 0.8, Seed: rng.Hash2(s.Seed, 0xe7e0)}
	arrivals, err := acfg.Generate(workloads.Names)
	if err != nil {
		return Artifact{}, err
	}
	for _, roster := range rosters {
		thpt := Row{Label: roster.name + " throughput"}
		p95 := Row{Label: roster.name + " p95 wait (kcyc)"}
		for _, policy := range policies {
			f, err := fleet.New(fleet.Config{Devices: roster.devs, NC: nc, Policy: policy})
			if err != nil {
				return Artifact{}, err
			}
			res, err := f.Run(arrivals)
			if err != nil {
				return Artifact{}, fmt.Errorf("fleet %s/%v: %w", roster.name, policy, err)
			}
			thpt.Values = append(thpt.Values, res.Throughput())
			p95.Values = append(p95.Values, res.WaitSummary().P95)
		}
		a.Rows = append(a.Rows, thpt, p95)
	}
	// Headline: what placement-awareness buys on the mixed roster.
	mixedThpt := a.MustValue(mixedLabel+" throughput", sched.ILPSMRA.String()) /
		a.MustValue(mixedLabel+" throughput", sched.FCFS.String())
	fcfsWait := a.MustValue(mixedLabel+" p95 wait (kcyc)", sched.FCFS.String())
	smraWait := a.MustValue(mixedLabel+" p95 wait (kcyc)", sched.ILPSMRA.String())
	a.Notes = append(a.Notes, fmt.Sprintf("mixed roster ILP-SMRA/FCFS: %.3fx throughput, p95 wait %.1f -> %.1f kcyc",
		mixedThpt, fcfsWait, smraWait))
	return a, nil
}
