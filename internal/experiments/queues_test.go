package experiments

import (
	"testing"

	"repro/internal/workloads"
)

func TestDistributionCounts(t *testing.T) {
	for _, d := range Distributions() {
		counts := d.classCounts(20)
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != 20 {
			t.Fatalf("%v: counts sum to %d", d, total)
		}
		if dom := d.dominant(); dom >= 0 {
			if counts[dom] != 11 {
				t.Fatalf("%v: dominant class has %d entries, want 11 (55%% of 20)", d, counts[dom])
			}
		} else {
			for _, n := range counts {
				if n != 5 {
					t.Fatalf("equal distribution uneven: %v", counts)
				}
			}
		}
	}
}

func TestBuildQueueDeterministicAndValid(t *testing.T) {
	a := BuildQueue(DistM, 20, 42)
	b := BuildQueue(DistM, 20, 42)
	if len(a) != 20 {
		t.Fatalf("queue size %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different queues")
		}
		if _, err := workloads.Params(a[i]); err != nil {
			t.Fatalf("queue entry %q unknown", a[i])
		}
	}
	c := BuildQueue(DistM, 20, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical order")
	}
}

func TestFig41QueueIsWholeSuite(t *testing.T) {
	q := Fig41Queue(1)
	if len(q) != 14 {
		t.Fatalf("queue size %d", len(q))
	}
	seen := map[string]bool{}
	for _, n := range q {
		seen[n] = true
	}
	for _, n := range workloads.Names {
		if !seen[n] {
			t.Fatalf("missing %s", n)
		}
	}
}

func TestFig49QueueExcludesRAYandNN(t *testing.T) {
	q := Fig49Queue(1)
	if len(q) != 12 {
		t.Fatalf("queue size %d, want 12", len(q))
	}
	for _, n := range q {
		if n == "RAY" || n == "NN" {
			t.Fatalf("%s should be excluded", n)
		}
	}
}

func TestArtifactValueLookup(t *testing.T) {
	a := Artifact{
		ID:      "T",
		Columns: []string{"x", "y"},
		Rows:    []Row{{Label: "r1", Values: []float64{1, 2}}},
	}
	if v := a.MustValue("r1", "y"); v != 2 {
		t.Fatalf("value = %v", v)
	}
	if _, err := a.Value("r1", "z"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := a.Value("r9", "x"); err == nil {
		t.Fatal("unknown row accepted")
	}
	if s := a.String(); s == "" {
		t.Fatal("empty render")
	}
}
