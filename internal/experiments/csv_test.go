package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSVRoundTrip(t *testing.T) {
	a := Artifact{
		ID:      "T",
		Columns: []string{"x", "y"},
		Rows: []Row{
			{Label: "r1", Values: []float64{1, 2.5}},
			{Label: "r,2", Values: []float64{-3, 0.125}},
		},
	}
	var b strings.Builder
	if err := a.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0][0] != "label" || recs[0][2] != "y" {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[2][0] != "r,2" || recs[2][1] != "-3" || recs[2][2] != "0.125" {
		t.Fatalf("row = %v", recs[2])
	}
}
