package experiments

import (
	"fmt"
	"sort"

	"repro/internal/classify"
	"repro/internal/rng"
	"repro/internal/workloads"
)

// Distribution names one of the paper's five queue compositions
// (Section 4.1): equal per-class representation, or 55% of one class
// with 15% of each other class.
type Distribution int

const (
	// DistEqual has equal per-class representation.
	DistEqual Distribution = iota
	// DistM is the memory-oriented workload (55% class M).
	DistM
	// DistMC is the memory+cache-oriented workload.
	DistMC
	// DistC is the cache-oriented workload.
	DistC
	// DistA is the compute-oriented workload.
	DistA
)

// Distributions lists all five in the paper's figure order.
func Distributions() []Distribution {
	return []Distribution{DistEqual, DistM, DistMC, DistC, DistA}
}

// String returns the figure label of the distribution.
func (d Distribution) String() string {
	switch d {
	case DistEqual:
		return "Equal-dist"
	case DistM:
		return "M-oriented"
	case DistMC:
		return "MC-oriented"
	case DistC:
		return "C-oriented"
	case DistA:
		return "A-oriented"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// dominant returns the oversampled class, or -1 for the equal mix.
func (d Distribution) dominant() classify.Class {
	switch d {
	case DistM:
		return classify.ClassM
	case DistMC:
		return classify.ClassMC
	case DistC:
		return classify.ClassC
	case DistA:
		return classify.ClassA
	default:
		return classify.Class(-1)
	}
}

// classCounts returns per-class entry counts for a queue of size n:
// equal shares, or 55%/15%/15%/15% rounded with the dominant class
// absorbing the remainder.
func (d Distribution) classCounts(n int) [classify.NumClasses]int {
	var counts [classify.NumClasses]int
	if d == DistEqual {
		for c := range counts {
			counts[c] = n / int(classify.NumClasses)
		}
		for i := 0; i < n%int(classify.NumClasses); i++ {
			counts[i]++
		}
		return counts
	}
	dom := d.dominant()
	minor := int(0.15 * float64(n))
	if minor < 1 {
		minor = 1
	}
	for c := range counts {
		counts[c] = minor
	}
	counts[dom] = n - 3*minor
	return counts
}

// BuildQueue returns benchmark names composing a queue of the given
// size and distribution. Entries cycle through each class's benchmarks
// (so repeats spread across the suite) and the arrival order is a
// deterministic shuffle of the composition.
func BuildQueue(d Distribution, size int, seed uint64) []string {
	counts := d.classCounts(size)
	var names []string
	for c := classify.Class(0); c < classify.NumClasses; c++ {
		pool := workloads.ByClass(c.String())
		sort.Strings(pool)
		for i := 0; i < counts[c]; i++ {
			names = append(names, pool[i%len(pool)])
		}
	}
	s := rng.NewStream(seed ^ 0x9d2c5680)
	s.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	return names
}

// Fig41Queue is the 14-application queue of Section 4.1: 2 class M, 5
// class MC, 2 class C and 5 class A applications — exactly the Rodinia
// suite of Table 3.2 — in a deterministic shuffled arrival order.
func Fig41Queue(seed uint64) []string {
	names := append([]string(nil), workloads.Names...)
	s := rng.NewStream(seed ^ 0x85ebca6b)
	s.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	return names
}

// Fig49Queue is the 12-application queue used for the three-application
// experiments (Fig 4.9/4.10): the suite minus RAY and NN, matching the
// four triples the thesis reports.
func Fig49Queue(seed uint64) []string {
	var names []string
	for _, n := range workloads.Names {
		if n == "RAY" || n == "NN" {
			continue
		}
		names = append(names, n)
	}
	s := rng.NewStream(seed ^ 0xc2b2ae35)
	s.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	return names
}
