package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

// FleetSweep is the sweep harness's smoke scenario: a small dispatch ×
// SLO grid (the FleetSLO ablation's corners) executed through
// internal/sweep's parallel runner instead of hand-driven loops, then
// folded into the usual artifact table — one column per grid cell, one
// row per headline metric. It demonstrates (and exercises end to end)
// exactly what cmd/sweep does at scale: grid expansion, shared traffic
// across cells, a bounded worker pool, and deterministic cell order.
func (s *Suite) FleetSweep() (Artifact, error) {
	const (
		devices     = 4
		jobs        = 48
		latencyFrac = 0.15
	)
	// Deadline scaled from the calibrated universe, as in FleetSLO.
	profiles := s.P.Profiles()
	meanSolo := uint64(0)
	for _, r := range profiles {
		meanSolo += r.Cycles
	}
	meanSolo /= uint64(len(profiles))

	roster := fmt.Sprintf("%dx%s", devices, s.P.Config().Name)
	g := sweep.Grid{
		Policies:    []string{"fcfs", "ilp-smra"},
		Engines:     []string{"modeled"},
		Rosters:     []string{roster},
		Arrivals:    []string{"poisson"},
		SLOs:        []string{"off", "preempt"},
		Jobs:        jobs,
		Rate:        0.8,
		LatencyFrac: latencyFrac,
		Deadline:    2 * meanSolo,
		Seed:        rng.Hash2(s.Seed, 0x53EE9),
	}
	r := sweep.Runner{
		Names: workloads.Names,
		Roster: func(string) ([]fleet.DeviceSpec, error) {
			return []fleet.DeviceSpec{{Pipe: s.P, Count: devices}}, nil
		},
	}
	art, err := r.Run(g)
	if err != nil {
		return Artifact{}, err
	}

	a := Artifact{
		ID:    "FleetSweep",
		Title: fmt.Sprintf("sweep harness smoke: policy × SLO grid, %d devices, %d jobs, modeled engine (beyond the paper)", devices, jobs),
	}
	// One column per cell, labeled policy/slo (the axes that vary).
	pCol, sCol := paramIndex("policy"), paramIndex("slo")
	for _, c := range art.Cells {
		a.Columns = append(a.Columns, c.Params[pCol]+"/"+c.Params[sCol])
	}
	for _, m := range []string{"throughput", "mean_util", "turn_p95_kcyc", "miss_rate", "evictions"} {
		row := Row{Label: m}
		for _, c := range art.Cells {
			v, ok := metricValue(art, c, m)
			if !ok {
				return Artifact{}, fmt.Errorf("FleetSweep: metric %q missing from sweep artifact", m)
			}
			row.Values = append(row.Values, v)
		}
		a.Rows = append(a.Rows, row)
	}
	// Headline: what preemption buys the best policy's latency class.
	off, err := a.Value("miss_rate", "ilp-smra/off")
	if err != nil {
		return Artifact{}, err
	}
	pre, err := a.Value("miss_rate", "ilp-smra/preempt")
	if err != nil {
		return Artifact{}, err
	}
	a.Notes = append(a.Notes, fmt.Sprintf("ilp-smra deadline-miss rate: %.1f%% class-blind -> %.1f%% preemptive (identical traffic)", 100*off, 100*pre))
	return a, nil
}

// paramIndex locates a canonical parameter column (-1 never happens for
// sweep.ParamColumns names).
func paramIndex(name string) int {
	for i, p := range sweep.ParamColumns {
		if p == name {
			return i
		}
	}
	return -1
}

// metricValue reads one metric of one cell from a sweep artifact.
func metricValue(art *sweep.Artifact, c sweep.CellResult, name string) (float64, bool) {
	for i, m := range art.Metrics {
		if m == name && i < len(c.Values) {
			return c.Values[i], true
		}
	}
	return 0, false
}
