package experiments

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/match"
	"repro/internal/workloads"
)

// Fig1_2 reproduces Figure 1.2: maximum device utilization achieved by
// each benchmark running alone on the full device.
func (s *Suite) Fig1_2() (Artifact, error) {
	a := Artifact{
		ID:      "Fig1.2",
		Title:   "Max utilization of Rodinia benchmarks (solo, full device)",
		Columns: []string{"Utilization%"},
	}
	for _, r := range s.P.Profiles() {
		a.Rows = append(a.Rows, Row{Label: r.Name, Values: []float64{r.Utilization * 100}})
	}
	return a, nil
}

// Table3_2 reproduces Table 3.2: per-benchmark profile signature and
// resulting class.
func (s *Suite) Table3_2() (Artifact, error) {
	a := Artifact{
		ID:      "Table3.2",
		Title:   "Classification of Rodinia benchmarks",
		Columns: []string{"MB(GB/s)", "L2->L1(GB/s)", "IPC", "R", "Class"},
	}
	th := s.P.Thresholds()
	a.Notes = append(a.Notes,
		fmt.Sprintf("thresholds: alpha=%.1fGB/s beta=%.1fGB/s gamma=%.1fGB/s epsilon=%.0f IPC",
			th.AlphaGBps, th.BetaGBps, th.GammaGBps, th.EpsilonIPC))
	for _, c := range s.P.Classification() {
		a.Rows = append(a.Rows, Row{
			Label: c.Name,
			Values: []float64{
				c.Metrics.MemBandwidthGBps,
				c.Metrics.L2ToL1GBps,
				c.Metrics.IPC,
				c.Metrics.R,
				float64(c.Class),
			},
		})
		if want := workloads.ExpectedClass[c.Name]; want != c.Class.String() {
			a.Notes = append(a.Notes,
				fmt.Sprintf("MISMATCH: %s classified %s, paper reports %s", c.Name, c.Class, want))
		}
	}
	return a, nil
}

// Fig3_4 reproduces Figure 3.4: average slowdown a row class suffers
// when co-executing with a column class.
func (s *Suite) Fig3_4() (Artifact, error) {
	a := Artifact{
		ID:      "Fig3.4",
		Title:   "Average application slowdown due to co-execution (row with column)",
		Columns: []string{"with M", "with MC", "with C", "with A"},
	}
	m := s.P.Matrix()
	for _, row := range classify.All() {
		vals := make([]float64, 0, classify.NumClasses)
		for _, col := range classify.All() {
			vals = append(vals, m.At(row, col))
		}
		a.Rows = append(a.Rows, Row{Label: "class " + row.String(), Values: vals})
	}
	return a, nil
}

// fig35SMCounts are the core counts swept by Figures 3.5 and 3.6.
var fig35SMCounts = []int{10, 15, 20, 25, 30}

// Fig3_5 reproduces Figure 3.5: IPC scalability trends (normalized to
// the 10-core point) for the benchmarks the thesis highlights.
func (s *Suite) Fig3_5() (Artifact, error) {
	subjects := []string{"BFS2", "LUD", "FFT", "LPS", "GUPS", "HS"}
	a := Artifact{
		ID:    "Fig3.5",
		Title: "Scalability trends: IPC vs #SMs, normalized to 10 SMs",
	}
	for _, n := range fig35SMCounts {
		a.Columns = append(a.Columns, fmt.Sprintf("%d SMs", n))
	}
	ideal := Row{Label: "Ideal"}
	for _, n := range fig35SMCounts {
		ideal.Values = append(ideal.Values, float64(n)/float64(fig35SMCounts[0]))
	}
	a.Rows = append(a.Rows, ideal)
	for _, name := range subjects {
		params := workloads.MustParams(name)
		var base float64
		row := Row{Label: name}
		for i, n := range fig35SMCounts {
			r, err := s.P.Profiler().Run(params, n)
			if err != nil {
				return Artifact{}, err
			}
			if i == 0 {
				base = r.IPC
			}
			row.Values = append(row.Values, r.IPC/base)
		}
		a.Rows = append(a.Rows, row)
	}
	return a, nil
}

// Fig3_6 reproduces Figure 3.6: absolute IPC of every benchmark at 10,
// 15, 20 and 30 cores.
func (s *Suite) Fig3_6() (Artifact, error) {
	counts := []int{10, 15, 20, 30}
	a := Artifact{
		ID:    "Fig3.6",
		Title: "IPC of benchmarks with different numbers of cores",
	}
	for _, n := range counts {
		a.Columns = append(a.Columns, fmt.Sprintf("%d Cores", n))
	}
	for _, name := range workloads.Names {
		params := workloads.MustParams(name)
		row := Row{Label: name}
		for _, n := range counts {
			r, err := s.P.Profiler().Run(params, n)
			if err != nil {
				return Artifact{}, err
			}
			row.Values = append(row.Values, r.IPC)
		}
		a.Rows = append(a.Rows, row)
	}
	return a, nil
}

// AppendixA reproduces the Appendix A worked example with this
// simulator's measured interference matrix: a 14-application queue with
// class counts (2 M, 5 MC, 2 C, 5 A), NC=2, NP=10.
func (s *Suite) AppendixA() (Artifact, error) {
	var counts [classify.NumClasses]int
	for _, n := range workloads.Names {
		cls, err := s.P.ClassOf(n)
		if err != nil {
			return Artifact{}, err
		}
		counts[cls]++
	}
	res, err := match.Solve(s.P.Matrix(), counts, 2)
	if err != nil {
		return Artifact{}, err
	}
	a := Artifact{
		ID:      "AppendixA",
		Title:   "Worked ILP example: pattern multiplicities for the 14-app queue",
		Columns: []string{"e_k", "L_k"},
		Notes: []string{
			fmt.Sprintf("objective f = %.4f over %d groups", res.Objective, res.Groups),
			fmt.Sprintf("queue class counts: M=%d MC=%d C=%d A=%d",
				counts[classify.ClassM], counts[classify.ClassMC], counts[classify.ClassC], counts[classify.ClassA]),
		},
	}
	for k, p := range res.Patterns {
		a.Rows = append(a.Rows, Row{Label: p.String(), Values: []float64{res.Eff[k], float64(res.Counts[k])}})
	}
	return a, nil
}
