package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV renders the artifact as CSV: a header row of "label" plus the
// column names, then one record per row. Use it to feed the regenerated
// figures into external plotting tools.
func (a Artifact) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"label"}, a.Columns...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("%s: write csv header: %w", a.ID, err)
	}
	for _, r := range a.Rows {
		rec := make([]string, 0, len(r.Values)+1)
		rec = append(rec, r.Label)
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("%s: write csv row %q: %w", a.ID, r.Label, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("%s: flush csv: %w", a.ID, err)
	}
	return nil
}
