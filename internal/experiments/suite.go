package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// DefaultSeed fixes the queue arrival orders so every regeneration of
// the figures is reproducible.
const DefaultSeed = 0xda7e2018

// Suite owns one initialized pipeline over the full workload suite and
// memoizes queue executions, since several figures share the same runs
// (e.g. Fig 4.3 and Fig 4.4 both need the equal-distribution queues).
type Suite struct {
	P    *core.Pipeline
	Seed uint64

	mu        sync.Mutex
	queueMemo map[string]sched.Report
	// groupCache is the on-disk location of the scheduler's persisted
	// group memo ("" disables persistence).
	groupCache string
}

// NewSuite builds and initializes a suite on the given device
// configuration (profiles + classification + interference matrix).
//
// Calibration (solo profiles + the all-pairs interference campaign) is
// the expensive step; it is cached on disk keyed by device name and a
// fingerprint of every workload parameter, so repeated regenerations of
// the figures within one environment skip it. Set REPRO_CALIBRATION to
// choose the cache path, or to "off" to disable caching.
func NewSuite(cfg config.GPUConfig) (*Suite, error) {
	apps := workloads.All()
	p, err := core.LoadOrInit(cfg, apps)
	if err != nil {
		return nil, err
	}
	s := &Suite{P: p, Seed: DefaultSeed, queueMemo: make(map[string]sched.Report)}
	s.groupCache = groupCachePath(cfg.Name, core.Fingerprint(apps))
	s.loadGroups()
	return s, nil
}

// groupCachePath resolves the persisted group-execution memo location,
// tied to the same cache directory and fingerprint as the calibration.
func groupCachePath(device, fingerprint string) string {
	base := core.CalibrationCachePath(device)
	if base == "" {
		return ""
	}
	return filepath.Join(filepath.Dir(base), "repro-groups-"+device+"-"+fingerprint+".json")
}

// loadGroups seeds the scheduler's deterministic group memo from disk.
func (s *Suite) loadGroups() {
	if s.groupCache == "" {
		return
	}
	data, err := os.ReadFile(s.groupCache)
	if err != nil {
		return
	}
	var groups map[string]sched.GroupReport
	if json.Unmarshal(data, &groups) != nil {
		return
	}
	s.P.Scheduler().RestoreGroups(groups)
}

// saveGroups persists the group memo (best effort).
func (s *Suite) saveGroups() {
	if s.groupCache == "" {
		return
	}
	data, err := json.Marshal(s.P.Scheduler().SnapshotGroups())
	if err != nil {
		return
	}
	_ = os.WriteFile(s.groupCache, data, 0o644)
}

// runNames executes a queue given as benchmark names, memoized.
func (s *Suite) runNames(key string, names []string, nc int, policy sched.Policy) (sched.Report, error) {
	memoKey := fmt.Sprintf("%s/%d/%v", key, nc, policy)
	s.mu.Lock()
	if rep, ok := s.queueMemo[memoKey]; ok {
		s.mu.Unlock()
		return rep, nil
	}
	s.mu.Unlock()
	queue, err := s.P.Queue(names)
	if err != nil {
		return sched.Report{}, err
	}
	rep, err := s.P.Run(queue, nc, policy)
	if err != nil {
		return sched.Report{}, err
	}
	s.mu.Lock()
	s.queueMemo[memoKey] = rep
	s.mu.Unlock()
	s.saveGroups()
	return rep, nil
}

// gen is one named artifact generator.
type gen struct {
	name string
	fn   func() (Artifact, error)
}

// gens lists the artifact generators in paper order.
func (s *Suite) gens() []gen {
	return []gen{
		{"Fig1.2", s.Fig1_2},
		{"Table3.2", s.Table3_2},
		{"Fig3.4", s.Fig3_4},
		{"Fig3.5", s.Fig3_5},
		{"Fig3.6", s.Fig3_6},
		{"Fig4.1", s.Fig4_1},
		{"Fig4.2", s.Fig4_2},
		{"Fig4.3", s.Fig4_3},
		{"Fig4.4", s.Fig4_4},
		{"Fig4.5", s.Fig4_5},
		{"Fig4.6", s.Fig4_6},
		{"Fig4.7", s.Fig4_7},
		{"Fig4.8", s.Fig4_8},
		{"Fig4.9", s.Fig4_9},
		{"Fig4.10", s.Fig4_10},
		{"Fig4.11", s.Fig4_11},
		{"Fig4.12", s.Fig4_12},
		{"AppendixA", s.AppendixA},
		{"FleetOnline", s.FleetOnline},
		{"FleetHetero", s.FleetHetero},
		{"FleetSLO", s.FleetSLO},
		{"FleetScale", s.FleetScale},
		{"FleetAdmission", s.FleetAdmission},
		{"FleetElastic", s.FleetElastic},
		{"FleetSweep", s.FleetSweep},
		{"FleetChaos", s.FleetChaos},
	}
}

// All runs every experiment and returns the artifacts in paper order.
func (s *Suite) All() ([]Artifact, error) {
	gens := s.gens()
	out := make([]Artifact, 0, len(gens))
	for _, g := range gens {
		a, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.name, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run generates a single artifact by ID (case-insensitive), without
// computing the rest of the suite.
func (s *Suite) Run(id string) (Artifact, error) {
	for _, g := range s.gens() {
		if strings.EqualFold(g.name, id) {
			a, err := g.fn()
			if err != nil {
				return Artifact{}, fmt.Errorf("%s: %w", g.name, err)
			}
			return a, nil
		}
	}
	return Artifact{}, fmt.Errorf("no artifact named %q", id)
}
