// Package experiments regenerates every table and figure of the paper's
// evaluation: the motivation and analysis artifacts of Chapters 1 and 3
// (Fig 1.2, Table 3.2, Fig 3.4–3.6) and the full evaluation of Chapter 4
// (Fig 4.1–4.12), plus the Appendix A worked example.
//
// Each experiment returns an Artifact — a labeled table of the same
// rows/series the paper plots — so the cmd/experiments tool and the
// bench harness print directly comparable output. Absolute values are
// not expected to match the paper (the substrate is a from-scratch
// simulator); the shapes are asserted in experiments tests.
package experiments

import (
	"fmt"
	"strings"
)

// Row is one labeled line of an artifact.
type Row struct {
	Label  string
	Values []float64
}

// Artifact is one reproduced table or figure.
type Artifact struct {
	// ID names the paper artifact, e.g. "Fig4.3".
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Columns label the value columns.
	Columns []string
	// Rows hold the series.
	Rows []Row
	// Notes carries derived headline numbers (e.g. average gains).
	Notes []string
}

// Value returns the cell at (rowLabel, column), or an error.
func (a Artifact) Value(rowLabel, column string) (float64, error) {
	col := -1
	for i, c := range a.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, fmt.Errorf("%s: no column %q", a.ID, column)
	}
	for _, r := range a.Rows {
		if r.Label == rowLabel {
			if col >= len(r.Values) {
				return 0, fmt.Errorf("%s: row %q has no column %d", a.ID, rowLabel, col)
			}
			return r.Values[col], nil
		}
	}
	return 0, fmt.Errorf("%s: no row %q", a.ID, rowLabel)
}

// MustValue is Value panicking on error (test helper).
func (a Artifact) MustValue(rowLabel, column string) float64 {
	v, err := a.Value(rowLabel, column)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the artifact as an aligned text table.
func (a Artifact) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", a.ID, a.Title)
	width := 14
	for _, r := range a.Rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	colw := 14
	for _, c := range a.Columns {
		if len(c) >= colw {
			colw = len(c) + 1
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, c := range a.Columns {
		fmt.Fprintf(&b, "%*s", colw, c)
	}
	b.WriteByte('\n')
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-*s", width+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*.4f", colw, v)
		}
		b.WriteByte('\n')
	}
	for _, n := range a.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
