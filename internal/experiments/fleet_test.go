package experiments

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/testkit"
)

var (
	testPipeMu sync.Mutex
	testPipe   *core.Pipeline
)

// testSuite builds a Suite over the miniature testkit device and
// universe (calibrated once, shared across tests). Only scenarios that
// draw their application names from the pipeline — not the full
// workload list — can run on it; FleetChaos is written that way so the
// failure-injection path has a fast deterministic smoke test.
func testSuite(t *testing.T) *Suite {
	t.Helper()
	testPipeMu.Lock()
	defer testPipeMu.Unlock()
	if testPipe == nil {
		p, err := core.New(testkit.Config())
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Init(testkit.Universe()); err != nil {
			t.Fatal(err)
		}
		testPipe = p
	}
	return &Suite{P: testPipe, Seed: DefaultSeed}
}

// TestFleetChaosDeterministic reruns the failure-injection scenario
// and demands byte-identical artifacts, then checks the physics the
// scenario exists to demonstrate: a crash evicts in-flight work and a
// planned drain does not, so the drain column never pays the fail
// column's eviction count or tail wait.
func TestFleetChaosDeterministic(t *testing.T) {
	s := testSuite(t)
	a, err := s.FleetChaos()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.FleetChaos()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("FleetChaos not deterministic:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	for _, col := range []string{"fcfs-fail", "ilp-fail", "ilp-fail-autoscale", "ilp-drain"} {
		if got := a.MustValue("restores", col); got != 2 {
			t.Errorf("%s restores = %.0f, want 2", col, got)
		}
	}
	if got := a.MustValue("chaos evictions", "ilp-drain"); got != 0 {
		t.Errorf("drain evicted %.0f flights; drains must retire in-flight work", got)
	}
	if got := a.MustValue("chaos evictions", "ilp-fail"); got == 0 {
		t.Errorf("fail wave evicted nothing; outage cycle misses all in-flight work")
	}
	drain, fail := a.MustValue("wait p99 (kcyc)", "ilp-drain"), a.MustValue("wait p99 (kcyc)", "ilp-fail")
	if drain > fail {
		t.Errorf("drain wait p99 %.1f kcyc > fail wait p99 %.1f kcyc; planned drain should not beat a crash's tail", drain, fail)
	}
}
