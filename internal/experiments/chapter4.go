package experiments

import (
	"fmt"
	"sort"

	"repro/internal/sched"
)

// QueueSize is the paper's distribution-queue length (Section 4.1).
const QueueSize = 20

// Fig4_1 reproduces Figure 4.1: device throughput of the 14-application
// queue when pairs are formed serially, FCFS, and with the ILP matcher.
func (s *Suite) Fig4_1() (Artifact, error) {
	return s.policyComparison("Fig4.1",
		"Two-application execution: Serial vs FCFS vs ILP device throughput",
		Fig41Queue(s.Seed), "fig41", 2)
}

// Fig4_9 reproduces Figure 4.9: the three-application version of 4.1.
func (s *Suite) Fig4_9() (Artifact, error) {
	return s.policyComparison("Fig4.9",
		"Three-application execution: Serial vs FCFS vs ILP device throughput",
		Fig49Queue(s.Seed), "fig49", 3)
}

func (s *Suite) policyComparison(id, title string, names []string, key string, nc int) (Artifact, error) {
	a := Artifact{ID: id, Title: title, Columns: []string{"Throughput", "vs Serial"}}
	serial, err := s.runNames(key, names, 1, sched.Serial)
	if err != nil {
		return Artifact{}, err
	}
	for _, pol := range []sched.Policy{sched.Serial, sched.FCFS, sched.ILP} {
		rep := serial
		if pol != sched.Serial {
			rep, err = s.runNames(key, names, nc, pol)
			if err != nil {
				return Artifact{}, err
			}
		}
		a.Rows = append(a.Rows, Row{
			Label:  pol.String(),
			Values: []float64{rep.Throughput(), rep.Throughput() / serial.Throughput()},
		})
	}
	fcfs := a.Rows[1].Values[0]
	ilp := a.Rows[2].Values[0]
	a.Notes = append(a.Notes,
		fmt.Sprintf("ILP vs FCFS: %+.1f%%; ILP vs Serial: %+.1f%%",
			100*(ilp/fcfs-1), 100*(ilp/a.Rows[0].Values[0]-1)))
	return a, nil
}

// Fig4_2 reproduces Figure 4.2: cycles taken by each co-run group under
// (a) ILP and (b) FCFS grouping, relative to the members' summed serial
// execution time.
func (s *Suite) Fig4_2() (Artifact, error) {
	return s.groupCycles("Fig4.2",
		"Per-pair cycles relative to serial execution (ILP and FCFS groupings)",
		Fig41Queue(s.Seed), "fig41", 2)
}

// Fig4_10 reproduces Figure 4.10: the three-application version of 4.2.
func (s *Suite) Fig4_10() (Artifact, error) {
	return s.groupCycles("Fig4.10",
		"Per-triple cycles relative to serial execution (ILP and FCFS groupings)",
		Fig49Queue(s.Seed), "fig49", 3)
}

func (s *Suite) groupCycles(id, title string, names []string, key string, nc int) (Artifact, error) {
	a := Artifact{ID: id, Title: title, Columns: []string{"rel. to serial"}}
	soloCycles := make(map[string]uint64)
	for _, r := range s.P.Profiles() {
		soloCycles[r.Name] = r.Cycles
	}
	for _, pol := range []sched.Policy{sched.ILP, sched.FCFS} {
		rep, err := s.runNames(key, names, nc, pol)
		if err != nil {
			return Artifact{}, err
		}
		under50 := 0
		for _, g := range rep.Groups {
			var serialSum uint64
			label := pol.String() + ": "
			for i, name := range g.Apps {
				if i > 0 {
					label += "-"
				}
				label += name
				serialSum += soloCycles[name]
			}
			rel := float64(g.Cycles) / float64(serialSum)
			if rel < 0.5 {
				under50++
			}
			a.Rows = append(a.Rows, Row{Label: label, Values: []float64{rel}})
		}
		a.Notes = append(a.Notes,
			fmt.Sprintf("%s: %d of %d groups finished in under 50%% of serial time",
				pol, under50, len(rep.Groups)))
	}
	return a, nil
}

// distPolicies are the four policies compared across queue
// distributions (Figures 4.3 and 4.11).
var distPolicies = []sched.Policy{sched.FCFS, sched.ProfileBased, sched.ILP, sched.ILPSMRA}

// Fig4_3 reproduces Figure 4.3: two-application device throughput across
// the five queue distributions, normalized to the Even approach.
func (s *Suite) Fig4_3() (Artifact, error) {
	return s.distComparison("Fig4.3",
		"Concurrent execution of two applications (normalized to Even)", 2)
}

// Fig4_11 reproduces Figure 4.11: the three-application version of 4.3.
func (s *Suite) Fig4_11() (Artifact, error) {
	return s.distComparison("Fig4.11",
		"Concurrent execution of three applications (normalized to Even)", 3)
}

func (s *Suite) distComparison(id, title string, nc int) (Artifact, error) {
	a := Artifact{ID: id, Title: title}
	for _, pol := range distPolicies {
		a.Columns = append(a.Columns, pol.String())
	}
	gains := make([]float64, len(distPolicies))
	for _, dist := range Distributions() {
		names := BuildQueue(dist, QueueSize, s.Seed)
		key := fmt.Sprintf("dist-%v", dist)
		var even float64
		row := Row{Label: dist.String() + " workload"}
		for i, pol := range distPolicies {
			rep, err := s.runNames(key, names, nc, pol)
			if err != nil {
				return Artifact{}, err
			}
			t := rep.Throughput()
			if pol == sched.FCFS {
				even = t
			}
			row.Values = append(row.Values, t/even)
			gains[i] += t / even
		}
		a.Rows = append(a.Rows, row)
	}
	nd := float64(len(Distributions()))
	for i, pol := range distPolicies {
		a.Notes = append(a.Notes, fmt.Sprintf("%s average vs Even: %+.1f%%", pol, 100*(gains[i]/nd-1)))
	}
	return a, nil
}

// Fig4_4 reproduces Figure 4.4: per-benchmark throughput under the
// equal-distribution queue for all four policies (two applications).
func (s *Suite) Fig4_4() (Artifact, error) {
	return s.perBenchmark("Fig4.4", DistEqual, 2)
}

// Fig4_5 reproduces Figure 4.5 (computation-dense queue).
func (s *Suite) Fig4_5() (Artifact, error) {
	return s.perBenchmark("Fig4.5", DistA, 2)
}

// Fig4_6 reproduces Figure 4.6 (memory-class-dense queue).
func (s *Suite) Fig4_6() (Artifact, error) {
	return s.perBenchmark("Fig4.6", DistM, 2)
}

// Fig4_7 reproduces Figure 4.7 (class MC-dense queue).
func (s *Suite) Fig4_7() (Artifact, error) {
	return s.perBenchmark("Fig4.7", DistMC, 2)
}

// Fig4_8 reproduces Figure 4.8 (class C-dense queue).
func (s *Suite) Fig4_8() (Artifact, error) {
	return s.perBenchmark("Fig4.8", DistC, 2)
}

// Fig4_12 reproduces Figure 4.12: per-benchmark average throughput under
// three-application execution of the equal-distribution queue.
func (s *Suite) Fig4_12() (Artifact, error) {
	return s.perBenchmark("Fig4.12", DistEqual, 3)
}

// perBenchmark reports, per benchmark appearing in the distribution's
// queue, the mean per-instance IPC under each policy normalized to the
// Even approach — the per-application bars of Figures 4.4–4.8 and 4.12.
func (s *Suite) perBenchmark(id string, dist Distribution, nc int) (Artifact, error) {
	a := Artifact{
		ID:    id,
		Title: fmt.Sprintf("Per-benchmark throughput, %s workload, %d concurrent apps (normalized to Even)", dist, nc),
	}
	for _, pol := range distPolicies {
		a.Columns = append(a.Columns, pol.String())
	}
	names := BuildQueue(dist, QueueSize, s.Seed)
	key := fmt.Sprintf("dist-%v", dist)
	// perPolicy[p][bench] = average IPC over that benchmark's instances.
	perPolicy := make([]map[string]float64, len(distPolicies))
	for i, pol := range distPolicies {
		rep, err := s.runNames(key, names, nc, pol)
		if err != nil {
			return Artifact{}, err
		}
		sums := make(map[string]float64)
		counts := make(map[string]int)
		for _, g := range rep.Groups {
			for _, st := range g.Stats {
				if c := st.Cycles(); c > 0 {
					sums[st.Name] += float64(st.ThreadInstructions) / float64(c)
					counts[st.Name]++
				}
			}
		}
		perPolicy[i] = make(map[string]float64, len(sums))
		for name, sum := range sums {
			perPolicy[i][name] = sum / float64(counts[name])
		}
	}
	var benches []string
	for name := range perPolicy[0] {
		benches = append(benches, name)
	}
	sort.Strings(benches)
	for _, name := range benches {
		even := perPolicy[0][name]
		row := Row{Label: name}
		for i := range distPolicies {
			row.Values = append(row.Values, perPolicy[i][name]/even)
		}
		a.Rows = append(a.Rows, row)
	}
	return a, nil
}
