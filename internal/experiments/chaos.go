package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/sched"
)

// universeNames returns the initialized universe's application names
// in profile order. Chaos draws traffic from the suite's own pipeline
// rather than the full workload list so the scenario runs unchanged
// over the miniature testkit universe the deterministic smoke test
// uses.
func (s *Suite) universeNames() []string {
	profiles := s.P.Profiles()
	names := make([]string, len(profiles))
	for i, r := range profiles {
		names[i] = r.Name
	}
	return names
}

// FleetChaos is the failure-injection ablation under bursty traffic: a
// third of the roster goes down mid-run and comes back two burst
// periods later, and the same arrival stream is served through the
// outage by FCFS and ILP-SMRA, with and without an autoscaler to
// backfill the lost capacity, and once with the outage announced as a
// drain instead of a crash. The artifact reports what a crash costs
// (checkpoint-evicted flights, tail wait, deadline misses) against the
// calm baseline, what co-scheduling and elasticity claw back, and what
// a planned drain saves over a fail — drained devices retire their
// in-flight group, so the drain column should never pay the fail
// column's eviction tail.
func (s *Suite) FleetChaos() (Artifact, error) {
	const (
		devices = 6
		nc      = 2
		jobs    = 96
		down    = 2
	)
	meanSolo := s.meanSoloCycles()
	deadline := 4 * meanSolo
	acfg := fleet.ArrivalConfig{
		Kind: fleet.Bursty, Jobs: jobs, Rate: 0.15, BurstRate: 2.0,
		MeanOn: float64(4 * meanSolo), MeanOff: float64(12 * meanSolo),
		LatencyFrac: 0.25, Deadline: deadline,
		Seed: rng.Hash2(s.Seed, 0xc4a0),
	}
	arrivals, err := acfg.Generate(s.universeNames())
	if err != nil {
		return Artifact{}, err
	}
	// The outage wave: two of six devices go down early in the run and
	// return eight mean-solo durations later — the run is
	// service-dominated at roughly jobs/devices solo durations
	// (~16 meanSolo), so the restore lands mid-run and the backlog the
	// outage strands drains through the survivors while traffic keeps
	// arriving.
	wave := func(kind fleet.ChaosKind) fleet.ChaosConfig {
		var trace []fleet.ChaosEvent
		for d := 0; d < down; d++ {
			trace = append(trace, fleet.ChaosEvent{Cycle: 4 * meanSolo, Device: d, Kind: kind})
		}
		for d := 0; d < down; d++ {
			trace = append(trace, fleet.ChaosEvent{Cycle: 12 * meanSolo, Device: d, Kind: fleet.ChaosRestore})
		}
		return fleet.ChaosConfig{Enabled: true, Trace: trace}
	}
	modes := []struct {
		name   string
		policy sched.Policy
		chaos  fleet.ChaosConfig
		scale  fleet.AutoscaleConfig
	}{
		{"ilp-calm", sched.ILPSMRA, fleet.ChaosConfig{}, fleet.AutoscaleConfig{}},
		{"fcfs-fail", sched.FCFS, wave(fleet.ChaosFail), fleet.AutoscaleConfig{}},
		{"ilp-fail", sched.ILPSMRA, wave(fleet.ChaosFail), fleet.AutoscaleConfig{}},
		{"ilp-fail-autoscale", sched.ILPSMRA, wave(fleet.ChaosFail),
			fleet.AutoscaleConfig{Enabled: true, Min: 2, Max: devices, High: 1.0, Low: 0.25}},
		{"ilp-drain", sched.ILPSMRA, wave(fleet.ChaosDrain), fleet.AutoscaleConfig{}},
	}
	a := Artifact{
		ID: "FleetChaos",
		Title: fmt.Sprintf("failure injection: %d devices, %d bursty jobs, %d-device outage wave, fail vs drain vs autoscale backfill (beyond the paper)",
			devices, jobs, down),
	}
	for _, m := range modes {
		a.Columns = append(a.Columns, m.name)
	}
	labels := []string{
		"deadline-miss rate",
		"wait p99 (kcyc)",
		"completed jobs",
		"chaos evictions",
		"failures",
		"drains",
		"restores",
		"throughput",
		"makespan (Mcyc)",
	}
	rows := map[string]*Row{}
	for _, label := range labels {
		rows[label] = &Row{Label: label}
	}
	for _, m := range modes {
		f, err := fleet.NewHomogeneous(s.P, devices, fleet.Config{
			NC: nc, Policy: m.policy, Engine: fleet.Modeled,
			SLO: fleet.SLOConfig{Enabled: true}, Chaos: m.chaos, Autoscale: m.scale,
			SampleEvery: meanSolo / 4, ShardEpoch: meanSolo / 2,
		})
		if err != nil {
			return Artifact{}, err
		}
		res, err := f.Run(arrivals)
		if err != nil {
			return Artifact{}, fmt.Errorf("fleet chaos/%s: %w", m.name, err)
		}
		add := func(label string, v float64) { rows[label].Values = append(rows[label].Values, v) }
		add("deadline-miss rate", res.MissRate())
		add("wait p99 (kcyc)", res.WaitSummary().P99)
		add("completed jobs", float64(res.CompletedJobs()))
		add("chaos evictions", float64(res.ChaosEvictions))
		add("failures", float64(res.Failures))
		add("drains", float64(res.Drains))
		add("restores", float64(res.Restores))
		add("throughput", res.Throughput())
		add("makespan (Mcyc)", float64(res.Makespan)/1e6)
	}
	for _, label := range labels {
		a.Rows = append(a.Rows, *rows[label])
	}
	// Headline: what the outage costs and what a planned drain saves.
	calm := a.MustValue("wait p99 (kcyc)", "ilp-calm")
	failP99 := a.MustValue("wait p99 (kcyc)", "ilp-fail")
	drainP99 := a.MustValue("wait p99 (kcyc)", "ilp-drain")
	a.Notes = append(a.Notes, fmt.Sprintf("2-device outage: wait p99 %.1f -> %.1f kcyc, miss rate %.3f -> %.3f, %.0f checkpoint evictions",
		calm, failP99,
		a.MustValue("deadline-miss rate", "ilp-calm"), a.MustValue("deadline-miss rate", "ilp-fail"),
		a.MustValue("chaos evictions", "ilp-fail")))
	a.Notes = append(a.Notes, fmt.Sprintf("planned drain vs crash: wait p99 %.1f vs %.1f kcyc with %.0f evictions (drained flights retire)",
		drainP99, failP99, a.MustValue("chaos evictions", "ilp-drain")))
	a.Notes = append(a.Notes, fmt.Sprintf("autoscale backfill through the outage: wait p99 %.1f kcyc, miss rate %.3f",
		a.MustValue("wait p99 (kcyc)", "ilp-fail-autoscale"),
		a.MustValue("deadline-miss rate", "ilp-fail-autoscale")))
	return a, nil
}
