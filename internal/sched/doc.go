// Package sched executes queues of applications on the simulated GPU
// under the policies the paper evaluates:
//
//	Serial        — one application at a time on the whole device
//	FCFS (Even)   — NC applications co-run in arrival order, equal SM split
//	Profile-based — arrival order, SM partition sized from offline
//	                scalability profiles (Adriaens et al. [17])
//	ILP           — groups chosen by the contention-minimizing matcher,
//	                equal SM split (Section 3.2.3)
//	ILP+SMRA      — ILP groups plus run-time SM reallocation
//	                (Algorithm 1, Section 3.2.4)
//
// Groups run to completion before the next group launches, matching the
// paper's evaluation methodology; device throughput is total retired
// instructions over total makespan (Equation 1.1).
//
// # Entry points
//
// Scheduler.Run is the offline path: it forms all groups from the full
// queue up front (the ILP policies solve the matcher over the whole
// queue's class composition) and simulates them concurrently.
// Scheduler.RunGroup executes one already-formed group; it is the
// shared single-group path used both by Run and by the online fleet
// dispatcher (internal/fleet), safe for concurrent use.
//
// Group executions are deterministic, so RunGroup memoizes them: a
// group with the same members, SM partition and reallocation mode
// always produces the same GroupReport. Distribution queues repeat such
// groups across policies and figures, and the fleet layer leans on the
// memo to pre-simulate likely next dispatches speculatively without
// ever doubling work. SnapshotGroups/RestoreGroups persist the memo
// across processes (keyed externally by device config and workload
// fingerprint, see internal/core).
package sched
