package sched

import (
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/stats"
)

// SMRAConfig parameterizes Algorithm 1 (dynamic SM allocation).
type SMRAConfig struct {
	// TCCycles is the evaluation period (TC in the paper).
	TCCycles uint64
	// IPCThrPerSM scores an application when its per-owned-SM thread
	// IPC falls below this value (IPCthr).
	IPCThrPerSM float64
	// BWThrFraction scores an application when its share of peak DRAM
	// bandwidth exceeds this fraction (BWthr).
	BWThrFraction float64
	// MoveSMs is the number of SMs transferred per decision (nr).
	MoveSMs int
	// MinSMs is the floor below which an application cannot be
	// deallocated (Rmin).
	MinSMs int
}

// DefaultSMRAConfig returns the parameters used in the evaluation.
func DefaultSMRAConfig(cfg config.GPUConfig) SMRAConfig {
	return SMRAConfig{
		TCCycles:      4000,
		IPCThrPerSM:   float64(cfg.SchedulersPerSM*cfg.WarpSize) * 0.25,
		BWThrFraction: 0.5,
		MoveSMs:       2,
		MinSMs:        4,
	}
}

// smraController implements Algorithm 1 against a running device: every
// TC cycles it scores each live application from its windowed IPC and
// bandwidth utilization, moves nr SMs from the highest-scoring (most
// destructive) application to the lowest-scoring one, and reverts the
// move if device throughput drops in the following window. SMs of
// finished applications are recycled to the remaining ones immediately.
type smraController struct {
	d       *gpu.Device
	handles []gpu.AppHandle
	cfg     SMRAConfig

	lastEval   uint64
	prevWindow []stats.App
	prevInstr  uint64
	prevTput   float64
	havePrev   bool

	// lastMove remembers the most recent transfer for reversion.
	lastMoveFrom gpu.AppHandle
	lastMoveTo   gpu.AppHandle
	lastMoveSMs  []int
	moved        bool

	recycled map[gpu.AppHandle]bool
	moves    int
}

func newSMRAController(d *gpu.Device, handles []gpu.AppHandle, cfg SMRAConfig) *smraController {
	c := &smraController{d: d, handles: handles, cfg: cfg, recycled: make(map[gpu.AppHandle]bool)}
	c.prevWindow = make([]stats.App, len(handles))
	return c
}

// Moves returns the number of SM transfers performed.
func (c *smraController) Moves() int { return c.moves }

// NextEval returns the next cycle at which Tick will run an Algorithm 1
// evaluation. The group loop must not fast-forward past it: the windowed
// IPC and bandwidth scores depend on the evaluation happening exactly
// every TCCycles.
func (c *smraController) NextEval() uint64 { return c.lastEval + c.cfg.TCCycles }

// Tick must be called after every device step.
//
//simlint:hotpath
func (c *smraController) Tick() {
	c.recycleFinished()
	now := c.d.Cycle()
	if now-c.lastEval < c.cfg.TCCycles {
		return
	}
	c.lastEval = now
	c.evaluate()
}

// recycleFinished hands the SMs of completed applications to the live
// application with the fewest cores.
func (c *smraController) recycleFinished() {
	for _, h := range c.handles {
		if !c.d.Done(h) || c.recycled[h] {
			continue
		}
		c.recycled[h] = true
		target, ok := c.smallestLive()
		if !ok {
			continue
		}
		for _, sm := range c.d.SMsOwnedBy(h) {
			_ = c.d.ReassignSM(sm, target)
			c.moves++
		}
	}
}

func (c *smraController) smallestLive() (gpu.AppHandle, bool) {
	best := gpu.AppHandle(-1)
	bestN := int(^uint(0) >> 1)
	for _, h := range c.handles {
		if c.d.Done(h) {
			continue
		}
		n := len(c.d.SMsOwnedBy(h))
		if n < bestN {
			best, bestN = h, n
		}
	}
	return best, best >= 0
}

// evaluate performs one Algorithm 1 step over the last window.
func (c *smraController) evaluate() {
	live := make([]gpu.AppHandle, 0, len(c.handles))
	for _, h := range c.handles {
		if !c.d.Done(h) {
			live = append(live, h)
		}
	}
	if len(live) < 2 {
		return
	}
	// Windowed device throughput.
	var totalInstr uint64
	cur := make([]stats.App, len(c.handles))
	for i, h := range c.handles {
		cur[i] = c.d.AppStats(h)
		totalInstr += cur[i].ThreadInstructions
	}
	windowInstr := totalInstr - c.prevInstr
	tput := float64(windowInstr) / float64(c.cfg.TCCycles)

	if c.moved && c.havePrev && tput < c.prevTput {
		// The previous move hurt device throughput: restore the donor's
		// cores (Algorithm 1's T > Tp guard).
		for _, sm := range c.lastMoveSMs {
			_ = c.d.ReassignSM(sm, c.lastMoveFrom)
			c.moves++
		}
		c.moved = false
	} else {
		c.tryMove(live, cur)
	}

	c.prevInstr = totalInstr
	c.prevTput = tput
	c.havePrev = true
	copy(c.prevWindow, cur)
}

// tryMove scores the live applications and transfers MoveSMs cores from
// the worst-scoring to the best-scoring one.
func (c *smraController) tryMove(live []gpu.AppHandle, cur []stats.App) {
	peakBW := peakDRAMBytesPerCycle(c.d.Config())
	scores := make(map[gpu.AppHandle]int, len(live))
	for _, h := range live {
		prev := c.prevWindow[h]
		d := cur[h]
		instr := d.ThreadInstructions - prev.ThreadInstructions
		bytes := d.DRAMBytes - prev.DRAMBytes
		smCount := len(c.d.SMsOwnedBy(h))
		if smCount == 0 {
			continue
		}
		ipcPerSM := float64(instr) / float64(c.cfg.TCCycles) / float64(smCount)
		bwFrac := float64(bytes) / float64(c.cfg.TCCycles) / peakBW
		v := 0
		if ipcPerSM < c.cfg.IPCThrPerSM {
			v++
		}
		if bwFrac > c.cfg.BWThrFraction {
			v += 2
		}
		scores[h] = v
	}
	donor, receiver := gpu.AppHandle(-1), gpu.AppHandle(-1)
	for _, h := range live {
		if donor < 0 || scores[h] > scores[donor] {
			donor = h
		}
		if receiver < 0 || scores[h] < scores[receiver] {
			receiver = h
		}
	}
	if donor == receiver || scores[donor] == scores[receiver] {
		c.moved = false
		return
	}
	donorSMs := c.d.SMsOwnedBy(donor)
	if len(donorSMs)-c.cfg.MoveSMs < c.cfg.MinSMs {
		c.moved = false
		return
	}
	moved := donorSMs[len(donorSMs)-c.cfg.MoveSMs:]
	for _, sm := range moved {
		_ = c.d.ReassignSM(sm, receiver)
	}
	c.moves += len(moved)
	c.lastMoveFrom, c.lastMoveTo = donor, receiver
	c.lastMoveSMs = append([]int(nil), moved...)
	c.moved = true
}

// peakDRAMBytesPerCycle returns the device's aggregate DRAM data-bus
// capacity in bytes per core cycle.
func peakDRAMBytesPerCycle(cfg config.GPUConfig) float64 {
	return float64(cfg.NumMemPartitions) * float64(cfg.L2.LineBytes) / float64(cfg.DRAM.BurstCycles)
}
