package sched_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/testkit"
)

// ExampleScheduler_RunGroup calibrates the miniature test device and
// co-runs one two-application group through the shared single-group
// execution path (the same one the offline Run and the online fleet
// dispatcher use).
func ExampleScheduler_RunGroup() {
	p, err := core.New(testkit.Config())
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Init(testkit.Universe()); err != nil {
		log.Fatal(err)
	}
	queue, err := p.Queue([]string{"miniC", "miniA"})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := p.Scheduler().RunGroup(sched.Group(queue), sched.FCFS)
	if err != nil {
		log.Fatal(err)
	}
	done := true
	for _, st := range rep.Stats {
		done = done && st.Done
	}
	fmt.Printf("co-ran %v\n", rep.Apps)
	fmt.Printf("both finished: %v, cycles > 0: %v\n", done, rep.Cycles > 0)
	// Output:
	// co-ran [miniC miniA]
	// both finished: true, cycles > 0: true
}
