package sched

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/classify"
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/interference"
	"repro/internal/kernel"
	"repro/internal/match"
	"repro/internal/memo"
	"repro/internal/profile"
	"repro/internal/stats"
)

// Policy selects the scheduling strategy.
type Policy int

const (
	// Serial runs each application alone on the full device.
	Serial Policy = iota
	// FCFS co-runs applications in arrival order with an even SM split.
	// The paper's "Even approach" is this policy.
	FCFS
	// ProfileBased co-runs in arrival order with SM counts proportional
	// to each application's profiled saturation point.
	ProfileBased
	// ILP forms groups with the contention-minimizing matcher and
	// splits SMs evenly.
	ILP
	// ILPSMRA adds run-time SM reallocation to ILP groups.
	ILPSMRA
)

// String names the policy as the paper's figures label it.
func (p Policy) String() string {
	switch p {
	case Serial:
		return "Serial"
	case FCFS:
		return "Even/FCFS"
	case ProfileBased:
		return "Profile-based"
	case ILP:
		return "ILP"
	case ILPSMRA:
		return "ILP-SMRA"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses the CLI spelling of a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "serial":
		return Serial, nil
	case "fcfs", "even":
		return FCFS, nil
	case "profile", "profile-based":
		return ProfileBased, nil
	case "ilp":
		return ILP, nil
	case "ilp-smra", "smra":
		return ILPSMRA, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (serial, fcfs, profile, ilp, ilp-smra)", s)
	}
}

// QueuedApp is one entry of the waiting queue.
type QueuedApp struct {
	// Params is the kernel to run.
	Params kernel.Params
	// Class is the application's class from the classification step.
	Class classify.Class
	// Arrival is the queue position (FCFS order).
	Arrival int
}

// Group is a set of applications co-scheduled on the device.
type Group []QueuedApp

// GroupReport records one group's execution.
type GroupReport struct {
	// Apps lists member names in launch order.
	Apps []string
	// Classes lists member classes.
	Classes []classify.Class
	// Cycles is the group makespan.
	Cycles uint64
	// Stats holds per-member counters.
	Stats []stats.App
	// SMMoves counts completed SM reallocations (SMRA only).
	SMMoves int
}

// Report summarizes a whole queue execution.
type Report struct {
	Policy Policy
	NC     int
	Groups []GroupReport
	// TotalCycles is the queue makespan (sum of group makespans).
	TotalCycles uint64
	// ThreadInstructions sums all retired instructions.
	ThreadInstructions uint64
}

// Throughput is the paper's device throughput (Equation 1.1).
func (r Report) Throughput() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(r.ThreadInstructions) / float64(r.TotalCycles)
}

// AppCycles returns, per queue entry name (with duplicate names
// suffixed), the completion cycles of each application instance.
func (r Report) AppCycles() map[string]uint64 {
	out := make(map[string]uint64)
	for _, g := range r.Groups {
		for i, name := range g.Apps {
			key := name
			for n := 2; ; n++ {
				if _, dup := out[key]; !dup {
					break
				}
				key = fmt.Sprintf("%s#%d", name, n)
			}
			out[key] = g.Stats[i].Cycles()
		}
	}
	return out
}

// MaxGroupCycles bounds one group simulation.
const MaxGroupCycles = 80_000_000

// Scheduler executes queues under the different policies.
type Scheduler struct {
	cfg    config.GPUConfig
	prof   *profile.Profiler
	matrix *interference.Matrix
	smra   SMRAConfig
	// satPoints memoizes profile-based SM demands per benchmark.
	satMu     sync.Mutex
	satPoints map[string]int
	// groups caches group executions, deduplicating concurrent runs of
	// the same group. Simulations are fully deterministic, so a group
	// with the same members, the same SM partition and the same
	// dynamic-reallocation mode always produces the same result;
	// distribution queues repeat such groups many times across policies
	// and figures, and the fleet dispatcher leans on the dedup to
	// pre-simulate likely next groups speculatively without ever
	// doubling work.
	groups *memo.Table[GroupReport]
}

// New builds a scheduler. matrix may be nil when only Serial/FCFS/
// ProfileBased runs are requested.
func New(cfg config.GPUConfig, prof *profile.Profiler, matrix *interference.Matrix) *Scheduler {
	return &Scheduler{
		cfg:       cfg,
		prof:      prof,
		matrix:    matrix,
		smra:      DefaultSMRAConfig(cfg),
		satPoints: make(map[string]int),
		groups:    memo.NewTable[GroupReport](),
	}
}

// SetSMRAConfig overrides the SM reallocation parameters (ablations).
func (s *Scheduler) SetSMRAConfig(c SMRAConfig) { s.smra = c }

// SnapshotGroups returns a copy of the deterministic group-execution
// memo, for persistence across processes.
func (s *Scheduler) SnapshotGroups() map[string]GroupReport {
	return s.groups.Snapshot()
}

// RestoreGroups seeds the group-execution memo with previously captured
// results. Callers are responsible for only restoring snapshots taken
// with identical workload definitions and device configuration (see
// core.Fingerprint).
func (s *Scheduler) RestoreGroups(groups map[string]GroupReport) {
	for k, v := range groups {
		s.groups.Put(k, v)
	}
}

// Run executes the queue under policy with groups of nc applications.
func (s *Scheduler) Run(queue []QueuedApp, nc int, policy Policy) (Report, error) {
	if len(queue) == 0 {
		return Report{}, fmt.Errorf("sched: empty queue")
	}
	if policy == Serial {
		nc = 1
	}
	if nc < 1 {
		return Report{}, fmt.Errorf("sched: group size %d", nc)
	}
	groups, err := s.formGroups(queue, nc, policy)
	if err != nil {
		return Report{}, err
	}
	// Groups execute one after another on the real device, so the queue
	// makespan is the sum of group makespans — but each group runs on a
	// fresh simulated device, so the simulations themselves are
	// independent and run concurrently here. The profiler dedups
	// concurrent requests for the same solo profile, so no sequential
	// warming pass is needed.
	reports := make([]GroupReport, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g Group) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reports[i], errs[i] = s.RunGroup(g, policy)
		}(i, g)
	}
	wg.Wait()
	rep := Report{Policy: policy, NC: nc}
	for i := range reports {
		if errs[i] != nil {
			return Report{}, errs[i]
		}
		rep.Groups = append(rep.Groups, reports[i])
		rep.TotalCycles += reports[i].Cycles
		for _, st := range reports[i].Stats {
			rep.ThreadInstructions += st.ThreadInstructions
		}
	}
	return rep, nil
}

// formGroups assembles the co-run groups per policy.
func (s *Scheduler) formGroups(queue []QueuedApp, nc int, policy Policy) ([]Group, error) {
	switch policy {
	case Serial:
		groups := make([]Group, len(queue))
		for i, a := range queue {
			groups[i] = Group{a}
		}
		return groups, nil
	case FCFS, ProfileBased:
		var groups []Group
		for i := 0; i < len(queue); i += nc {
			end := i + nc
			if end > len(queue) {
				end = len(queue)
			}
			groups = append(groups, Group(append([]QueuedApp(nil), queue[i:end]...)))
		}
		return groups, nil
	case ILP, ILPSMRA:
		return s.formILPGroups(queue, nc)
	default:
		return nil, fmt.Errorf("sched: unknown policy %v", policy)
	}
}

// formILPGroups runs the matcher on the queue's class composition and
// materializes groups by drawing the oldest queued application of each
// required class.
func (s *Scheduler) formILPGroups(queue []QueuedApp, nc int) ([]Group, error) {
	if s.matrix == nil {
		return nil, fmt.Errorf("sched: ILP policy requires an interference matrix")
	}
	var counts [classify.NumClasses]int
	for _, a := range queue {
		counts[a.Class]++
	}
	res, err := match.Solve(s.matrix, counts, nc)
	if err != nil {
		return nil, err
	}
	// Per-class pools ordered by solo duration (longest first). The ILP
	// decides class patterns; within a pattern the i-th group takes the
	// i-th longest instance of each required class, so long applications
	// co-run with long ones and short with short — otherwise a group's
	// makespan is dominated by its longest member while its partners'
	// SMs idle (classic LPT co-scheduling). Falls back to arrival order
	// when solo profiles are unavailable.
	pools := make([][]QueuedApp, classify.NumClasses)
	for _, a := range queue {
		pools[a.Class] = append(pools[a.Class], a)
	}
	for c := range pools {
		pool := pools[c]
		sort.SliceStable(pool, func(i, j int) bool { return pool[i].Arrival < pool[j].Arrival })
		if s.prof != nil {
			type timed struct {
				app QueuedApp
				dur uint64
			}
			entries := make([]timed, 0, len(pool))
			ok := true
			for _, a := range pool {
				r, err := s.prof.Run(a.Params, 0)
				if err != nil {
					ok = false
					break
				}
				entries = append(entries, timed{app: a, dur: r.Cycles})
			}
			if ok {
				sort.SliceStable(entries, func(i, j int) bool { return entries[i].dur > entries[j].dur })
				for i := range entries {
					pool[i] = entries[i].app
				}
			}
		}
		pools[c] = pool
	}
	var groups []Group
	for k, n := range res.Counts {
		for rep := 0; rep < n; rep++ {
			var g Group
			for _, cls := range res.Patterns[k] {
				if len(pools[cls]) == 0 {
					return nil, fmt.Errorf("sched: matcher over-committed class %v", cls)
				}
				g = append(g, pools[cls][0])
				pools[cls] = pools[cls][1:]
			}
			groups = append(groups, g)
		}
	}
	// Remainder (Nq mod NC): run together in arrival order.
	var leftover Group
	for _, pool := range pools {
		leftover = append(leftover, pool...)
	}
	if len(leftover) > 0 {
		sort.SliceStable(leftover, func(i, j int) bool { return leftover[i].Arrival < leftover[j].Arrival })
		for i := 0; i < len(leftover); i += nc {
			end := i + nc
			if end > len(leftover) {
				end = len(leftover)
			}
			groups = append(groups, Group(append([]QueuedApp(nil), leftover[i:end]...)))
		}
	}
	return groups, nil
}

// groupKey identifies a deterministic group execution: members in
// launch order, their SM partition sizes, and whether run-time
// reallocation is active (with its parameters).
func (s *Scheduler) groupKey(g Group, smSets [][]int, policy Policy) string {
	key := ""
	for i, a := range g {
		key += fmt.Sprintf("%s/%d;", a.Params.Name, len(smSets[i]))
	}
	if policy == ILPSMRA && len(g) > 1 {
		key += fmt.Sprintf("smra:%+v", s.smra)
	}
	return key
}

// RunGroup launches one group and simulates it to completion. It is the
// single-group execution path shared by the batch Run above and the
// online fleet dispatcher (internal/fleet); it is safe for concurrent
// use and memoizes deterministic executions.
func (s *Scheduler) RunGroup(g Group, policy Policy) (GroupReport, error) {
	if len(g) == 0 {
		return GroupReport{}, fmt.Errorf("sched: empty group")
	}
	if len(g) == 1 && s.prof != nil {
		// A single-application group on the full device is exactly a
		// solo profile; reuse the memoized run instead of resimulating.
		r, err := s.prof.Run(g[0].Params, 0)
		if err != nil {
			return GroupReport{}, err
		}
		return GroupReport{
			Apps:    []string{g[0].Params.Name},
			Classes: []classify.Class{g[0].Class},
			Cycles:  r.Cycles,
			Stats: []stats.App{{
				Name:               g[0].Params.Name,
				ThreadInstructions: r.ThreadInstructions,
				EndCycle:           r.Cycles,
				Done:               true,
			}},
		}, nil
	}
	smSets, err := s.partition(g, policy)
	if err != nil {
		return GroupReport{}, err
	}
	return s.groups.Do(s.groupKey(g, smSets, policy), func() (GroupReport, error) {
		return s.simulateGroup(g, smSets, policy)
	})
}

// simulateGroup performs the actual co-run simulation (no memoization).
func (s *Scheduler) simulateGroup(g Group, smSets [][]int, policy Policy) (GroupReport, error) {
	d, err := gpu.New(s.cfg)
	if err != nil {
		return GroupReport{}, err
	}
	handles := make([]gpu.AppHandle, len(g))
	for i, a := range g {
		k, err := kernel.New(a.Params, s.cfg.L1.LineBytes)
		if err != nil {
			return GroupReport{}, err
		}
		k.BaseAddr = uint64(i+1) << 40
		h, err := d.Launch(k, smSets[i])
		if err != nil {
			return GroupReport{}, err
		}
		handles[i] = h
	}
	gr := GroupReport{}
	if policy == ILPSMRA && len(g) > 1 {
		ctrl := newSMRAController(d, handles, s.smra)
		for !d.AllDone() {
			if d.Cycle() >= MaxGroupCycles {
				return GroupReport{}, fmt.Errorf("sched: group exceeded %d cycles", uint64(MaxGroupCycles))
			}
			d.Step()
			ctrl.Tick()
			if d.AllDone() {
				break // stop the clock at the finishing cycle
			}
			// Fast-forward idle spans, but never past the controller's
			// next evaluation boundary: the windowed scores require the
			// evaluation Step to execute at exactly lastEval+TC. The jump
			// lands one cycle short so the next Step processes the
			// boundary (or the next event) itself.
			limit := ctrl.NextEval() - 1
			if mg := uint64(MaxGroupCycles); mg < limit {
				limit = mg
			}
			d.FastForward(limit)
		}
		gr.SMMoves = ctrl.Moves()
	} else {
		if err := d.Run(MaxGroupCycles); err != nil {
			return GroupReport{}, err
		}
	}
	gr.Cycles = d.Cycle()
	for i, h := range handles {
		st := d.AppStats(h)
		gr.Apps = append(gr.Apps, g[i].Params.Name)
		gr.Classes = append(gr.Classes, g[i].Class)
		gr.Stats = append(gr.Stats, st)
	}
	return gr, nil
}

// partition assigns SM sets to group members per policy.
func (s *Scheduler) partition(g Group, policy Policy) ([][]int, error) {
	if len(g) == 1 {
		all := make([]int, s.cfg.NumSMs)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, nil
	}
	if policy != ProfileBased {
		return interference.EvenSplit(s.cfg.NumSMs, len(g)), nil
	}
	// Profile-based: SMs proportional to each member's saturation point.
	weights := make([]int, len(g))
	total := 0
	for i, a := range g {
		w, err := s.saturationPoint(a.Params)
		if err != nil {
			return nil, err
		}
		weights[i] = w
		total += w
	}
	counts := make([]int, len(g))
	assigned := 0
	for i, w := range weights {
		counts[i] = s.cfg.NumSMs * w / total
		if counts[i] < 1 {
			counts[i] = 1
		}
		assigned += counts[i]
	}
	// Distribute the remainder to the heaviest members.
	for i := 0; assigned < s.cfg.NumSMs; i = (i + 1) % len(counts) {
		counts[i]++
		assigned++
	}
	for i := 0; assigned > s.cfg.NumSMs; i = (i + 1) % len(counts) {
		if counts[i] > 1 {
			counts[i]--
			assigned--
		}
	}
	sets := make([][]int, len(g))
	next := 0
	for i, n := range counts {
		for j := 0; j < n; j++ {
			sets[i] = append(sets[i], next)
			next++
		}
	}
	return sets, nil
}

// saturationPoint profiles the application at increasing core counts
// and returns the smallest count achieving 90% of its full-device IPC —
// the offline demand estimate the profile-based policy allocates by.
func (s *Scheduler) saturationPoint(params kernel.Params) (int, error) {
	s.satMu.Lock()
	v, ok := s.satPoints[params.Name]
	s.satMu.Unlock()
	if ok {
		return v, nil
	}
	full, err := s.prof.Run(params, 0)
	if err != nil {
		return 0, err
	}
	point := s.cfg.NumSMs
	for _, frac := range []int{6, 4, 3, 2} { // NumSMs/6 .. NumSMs/2
		n := s.cfg.NumSMs / frac
		if n < 1 {
			continue
		}
		r, err := s.prof.Run(params, n)
		if err != nil {
			return 0, err
		}
		if r.IPC >= 0.9*full.IPC {
			point = n
			break
		}
	}
	s.satMu.Lock()
	s.satPoints[params.Name] = point
	s.satMu.Unlock()
	return point, nil
}
