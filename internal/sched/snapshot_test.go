package sched

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/profile"
	"repro/internal/testkit"
)

// TestSnapshotRestoreRoundTrip checks the persistence contract the
// experiments suite relies on: a snapshot survives a JSON round trip
// and, restored into a fresh scheduler, reproduces the same executions
// without resimulating.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfg := testkit.Config()
	a := New(cfg, profile.New(cfg), flatMatrix())
	q := miniQueue()
	rep, err := a.Run(q, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	snap := a.SnapshotGroups()
	if len(snap) == 0 {
		t.Fatal("no memoized groups after a run")
	}

	// Persistence path: the suite stores snapshots as JSON.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]GroupReport
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, decoded) {
		t.Fatalf("JSON round trip changed the snapshot:\n%+v\nvs\n%+v", snap, decoded)
	}

	// A fresh scheduler seeded with the snapshot must serve the same
	// executions the original scheduler produced.
	b := New(cfg, nil, flatMatrix())
	b.RestoreGroups(decoded)
	if got := b.SnapshotGroups(); !reflect.DeepEqual(snap, got) {
		t.Fatalf("restore + snapshot is not the identity:\n%+v\nvs\n%+v", snap, got)
	}
	groups, err := b.formGroups(q, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for i, g := range groups {
		gr, err := b.RunGroup(g, FCFS)
		if err != nil {
			t.Fatalf("group %d not served from restored memo: %v", i, err)
		}
		if !reflect.DeepEqual(gr, rep.Groups[i]) {
			t.Fatalf("group %d differs from original execution:\n%+v\nvs\n%+v", i, gr, rep.Groups[i])
		}
		total += gr.Cycles
	}
	if total != rep.TotalCycles {
		t.Fatalf("restored total %d, original %d", total, rep.TotalCycles)
	}
}

// TestSnapshotIsACopy guards against callers mutating the scheduler's
// internal memo through a snapshot.
func TestSnapshotIsACopy(t *testing.T) {
	s := newScheduler()
	if _, err := s.Run(miniQueue()[:2], 2, FCFS); err != nil {
		t.Fatal(err)
	}
	snap := s.SnapshotGroups()
	for k := range snap {
		delete(snap, k)
	}
	if len(s.SnapshotGroups()) == 0 {
		t.Fatal("deleting from a snapshot drained the scheduler's memo")
	}
}
