package sched

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/interference"
	"repro/internal/kernel"
	"repro/internal/profile"
	"repro/internal/testkit"
)

// flatMatrix returns a uniform interference matrix (every pairing equal)
// so ILP grouping is deterministic but unconstrained.
func flatMatrix() *interference.Matrix {
	m := &interference.Matrix{}
	for a := range m.Slowdown {
		for b := range m.Slowdown[a] {
			m.Slowdown[a][b] = 2.2
			m.Samples[a][b] = 1
		}
	}
	return m
}

func miniQueue() []QueuedApp {
	apps := []struct {
		p kernel.Params
		c classify.Class
	}{
		{testkit.MiniM(), classify.ClassM},
		{testkit.MiniA(), classify.ClassA},
		{testkit.MiniC(), classify.ClassC},
		{testkit.MiniMC(), classify.ClassMC},
	}
	var q []QueuedApp
	for i, a := range apps {
		q = append(q, QueuedApp{Params: a.p, Class: a.c, Arrival: i})
	}
	return q
}

func newScheduler() *Scheduler {
	cfg := testkit.Config()
	return New(cfg, profile.New(cfg), flatMatrix())
}

func TestFCFSGroupsInArrivalOrder(t *testing.T) {
	s := newScheduler()
	groups, err := s.formGroups(miniQueue(), 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0][0].Params.Name != "miniM" || groups[0][1].Params.Name != "miniA" {
		t.Fatalf("first group = %v, want arrival order", groups[0])
	}
}

func TestFCFSOddQueueLeavesPartialGroup(t *testing.T) {
	s := newScheduler()
	q := miniQueue()[:3]
	groups, err := s.formGroups(q, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[1]) != 1 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestILPGroupsCoverQueueExactlyOnce(t *testing.T) {
	s := newScheduler()
	q := miniQueue()
	groups, err := s.formGroups(q, 2, ILP)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	total := 0
	for _, g := range groups {
		for _, a := range g {
			seen[a.Params.Name]++
			total++
		}
	}
	if total != len(q) {
		t.Fatalf("grouped %d apps, want %d", total, len(q))
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("%s appears %d times", name, n)
		}
	}
}

func TestILPAvoidsCatastrophicPairing(t *testing.T) {
	cfg := testkit.Config()
	m := flatMatrix()
	m.Slowdown[classify.ClassM][classify.ClassM] = 50
	s := New(cfg, profile.New(cfg), m)
	// Two M apps and two A apps: M-M must not be chosen.
	q := []QueuedApp{
		{Params: testkit.MiniM(), Class: classify.ClassM, Arrival: 0},
		{Params: renamed(testkit.MiniM(), "miniM2"), Class: classify.ClassM, Arrival: 1},
		{Params: testkit.MiniA(), Class: classify.ClassA, Arrival: 2},
		{Params: renamed(testkit.MiniA(), "miniA2"), Class: classify.ClassA, Arrival: 3},
	}
	groups, err := s.formGroups(q, 2, ILP)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if len(g) == 2 && g[0].Class == classify.ClassM && g[1].Class == classify.ClassM {
			t.Fatalf("ILP paired M with M despite 50x slowdown: %v", groups)
		}
	}
}

func renamed(p kernel.Params, name string) kernel.Params {
	p.Name = name
	return p
}

func TestSerialReportMatchesProfiles(t *testing.T) {
	s := newScheduler()
	q := miniQueue()[:2]
	rep, err := s.Run(q, 2, Serial)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 2 {
		t.Fatalf("serial groups = %d", len(rep.Groups))
	}
	var wantCycles uint64
	for _, a := range q {
		r, err := s.prof.Run(a.Params, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantCycles += r.Cycles
	}
	if rep.TotalCycles != wantCycles {
		t.Fatalf("serial cycles = %d, want %d (profile reuse)", rep.TotalCycles, wantCycles)
	}
}

func TestProfileBasedPartitionsSumToDevice(t *testing.T) {
	s := newScheduler()
	g := Group{miniQueue()[0], miniQueue()[1]}
	sets, err := s.partition(g, ProfileBased)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := map[int]bool{}
	for _, set := range sets {
		for _, sm := range set {
			if seen[sm] {
				t.Fatalf("SM %d assigned twice", sm)
			}
			seen[sm] = true
			total++
		}
	}
	if total != testkit.Config().NumSMs {
		t.Fatalf("assigned %d SMs, want %d", total, testkit.Config().NumSMs)
	}
}

func TestRunEmptyQueueFails(t *testing.T) {
	s := newScheduler()
	if _, err := s.Run(nil, 2, FCFS); err == nil {
		t.Fatal("empty queue accepted")
	}
}

func TestILPRequiresMatrix(t *testing.T) {
	cfg := testkit.Config()
	s := New(cfg, profile.New(cfg), nil)
	if _, err := s.Run(miniQueue(), 2, ILP); err == nil {
		t.Fatal("ILP without matrix accepted")
	}
}

func TestReportThroughputAndAppCycles(t *testing.T) {
	s := newScheduler()
	q := miniQueue()
	rep, err := s.Run(q, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
	cycles := rep.AppCycles()
	if len(cycles) != len(q) {
		t.Fatalf("AppCycles has %d entries, want %d", len(cycles), len(q))
	}
	for name, c := range cycles {
		if c == 0 {
			t.Fatalf("%s reported zero cycles", name)
		}
	}
}

// TestSMRAReallocatesUnderAsymmetry pairs a bandwidth hog with a compute
// kernel: the SMRA controller must perform SM moves, and the result must
// not be slower than static ILP partitioning.
func TestSMRAReallocatesUnderAsymmetry(t *testing.T) {
	cfg := testkit.Config()
	s := New(cfg, profile.New(cfg), flatMatrix())
	smra := DefaultSMRAConfig(cfg)
	smra.TCCycles = 1500
	smra.MinSMs = 1
	smra.MoveSMs = 1
	s.SetSMRAConfig(smra)
	// Lengthen the kernels so several TC windows elapse.
	m := testkit.MiniM()
	m.CTAs *= 4
	a := testkit.MiniA()
	a.CTAs *= 4
	q := []QueuedApp{
		{Params: m, Class: classify.ClassM, Arrival: 0},
		{Params: a, Class: classify.ClassA, Arrival: 1},
	}
	rep, err := s.Run(q, 2, ILPSMRA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %d", len(rep.Groups))
	}
	if rep.Groups[0].SMMoves == 0 {
		t.Fatal("SMRA made no SM moves under an asymmetric pair")
	}
	static, err := s.Run(q, 2, ILP)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ILP: %d cycles, SMRA: %d cycles (%d moves)",
		static.TotalCycles, rep.TotalCycles, rep.Groups[0].SMMoves)
	if float64(rep.TotalCycles) > 1.15*float64(static.TotalCycles) {
		t.Fatalf("SMRA (%d cycles) much slower than static ILP (%d cycles)",
			rep.TotalCycles, static.TotalCycles)
	}
}
