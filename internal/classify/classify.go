// Package classify implements the paper's application classification
// (Section 3.2.1, Table 3.1): each application's solo profile signature
// is mapped to one of four classes —
//
//	M  — memory intensive (DRAM bandwidth above α)
//	MC — memory and cache intensive (DRAM bandwidth between β and α)
//	C  — cache intensive (low DRAM bandwidth, but heavy L2→L1 refill
//	     traffic or a high memory-to-compute ratio at low IPC)
//	A  — compute intensive (everything else)
//
// The thesis prose garbles α and β (it assigns α the smaller value,
// which would make the MC band empty); Table 3.2's data implies α is the
// class M floor and β the class MC floor, which is what this package
// implements.
//
// Threshold values are device-calibrated constants, exactly as in the
// paper (which fits α=0.55·MBmax, β=0.30·MBmax, γ=100 GB/s, ε=200 IPC to
// its GTX 480 + GPGPU-Sim measurements). This simulator's saturated
// row-miss bandwidth sits closer to its streaming peak than GDDR5's, so
// the fitted fractions differ; the structure of the rule is identical.
package classify

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/profile"
	"repro/internal/stats"
)

// Class is one of the paper's four application classes.
type Class int

const (
	// ClassM is memory intensive.
	ClassM Class = iota
	// ClassMC is memory and cache intensive.
	ClassMC
	// ClassC is cache intensive.
	ClassC
	// ClassA is compute intensive.
	ClassA
	// NumClasses is the number of classes (NT in the paper).
	NumClasses
)

// String returns the paper's class label.
func (c Class) String() string {
	switch c {
	case ClassM:
		return "M"
	case ClassMC:
		return "MC"
	case ClassC:
		return "C"
	case ClassA:
		return "A"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass converts a label ("M", "MC", "C", "A") to a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "M":
		return ClassM, nil
	case "MC":
		return ClassMC, nil
	case "C":
		return ClassC, nil
	case "A":
		return ClassA, nil
	default:
		return 0, fmt.Errorf("classify: unknown class %q", s)
	}
}

// All lists the classes in Table 3.1 order.
func All() []Class { return []Class{ClassM, ClassMC, ClassC, ClassA} }

// Thresholds are the calibrated classification constants of Table 3.1.
type Thresholds struct {
	// AlphaGBps is the class M floor on DRAM bandwidth (α).
	AlphaGBps float64
	// BetaGBps is the class MC floor on DRAM bandwidth (β).
	BetaGBps float64
	// GammaGBps is the class C floor on L2→L1 bandwidth (γ).
	GammaGBps float64
	// EpsilonIPC is the class C ceiling on IPC (ε).
	EpsilonIPC float64
	// RCut is the memory-to-compute ratio cut (0.2 in the paper).
	RCut float64
}

// Calibration fractions, fitted to this simulator the same way the
// paper fits its constants to GTX 480 measurements.
const (
	// AlphaFraction of the maximum measured DRAM bandwidth (the paper
	// uses 0.55 on GDDR5; this simulator's row-miss saturation point
	// sits closer to its streaming peak, so the M floor is higher).
	AlphaFraction = 0.88
	// BetaFraction of the maximum measured DRAM bandwidth (paper: 0.30).
	BetaFraction = 0.40
	// GammaFraction of the interconnect's peak response bandwidth;
	// yields ~100 GB/s on the default device, the paper's value.
	GammaFraction = 0.37
	// EpsilonFraction of the maximum measured IPC (paper: 0.2·IPCmax).
	EpsilonFraction = 0.2
)

// CalibrateThresholds derives thresholds from a set of solo profiles,
// mirroring the paper's MBmax/IPCmax-relative definitions.
func CalibrateThresholds(cfg config.GPUConfig, profiles []profile.Result) Thresholds {
	var mbMax, ipcMax float64
	for _, p := range profiles {
		if p.MemBandwidthGBps > mbMax {
			mbMax = p.MemBandwidthGBps
		}
		if p.IPC > ipcMax {
			ipcMax = p.IPC
		}
	}
	icntPeak := cfg.BytesPerCycleToGBps(float64(cfg.Icnt.BytesPerCycle))
	return Thresholds{
		AlphaGBps:  AlphaFraction * mbMax,
		BetaGBps:   BetaFraction * mbMax,
		GammaGBps:  GammaFraction * icntPeak,
		EpsilonIPC: EpsilonFraction * ipcMax,
		RCut:       0.2,
	}
}

// Classify maps one application's metrics to its class per Table 3.1.
func (t Thresholds) Classify(m stats.Metrics) Class {
	switch {
	case m.MemBandwidthGBps > t.AlphaGBps:
		return ClassM
	case m.MemBandwidthGBps > t.BetaGBps:
		return ClassMC
	case m.L2ToL1GBps > t.GammaGBps ||
		(m.R > t.RCut && m.IPC < t.EpsilonIPC):
		return ClassC
	default:
		return ClassA
	}
}

// Classification pairs an application with its class and signature.
type Classification struct {
	Name    string
	Class   Class
	Metrics stats.Metrics
}

// Table classifies a full profile set, returning rows in input order —
// the reproduction of Table 3.2.
func Table(t Thresholds, profiles []profile.Result) []Classification {
	out := make([]Classification, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, Classification{
			Name:    p.Name,
			Class:   t.Classify(p.Metrics),
			Metrics: p.Metrics,
		})
	}
	return out
}
