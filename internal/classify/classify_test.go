package classify

import (
	"testing"

	"repro/internal/config"
	"repro/internal/profile"
	"repro/internal/stats"
)

func thresholds() Thresholds {
	return Thresholds{AlphaGBps: 70, BetaGBps: 30, GammaGBps: 100, EpsilonIPC: 500, RCut: 0.2}
}

func TestClassifyRules(t *testing.T) {
	th := thresholds()
	cases := []struct {
		name string
		m    stats.Metrics
		want Class
	}{
		{"high bandwidth", stats.Metrics{MemBandwidthGBps: 90}, ClassM},
		{"just above alpha", stats.Metrics{MemBandwidthGBps: 70.1}, ClassM},
		{"mid bandwidth", stats.Metrics{MemBandwidthGBps: 50}, ClassMC},
		{"just above beta", stats.Metrics{MemBandwidthGBps: 30.1}, ClassMC},
		{"cache heavy fills", stats.Metrics{MemBandwidthGBps: 10, L2ToL1GBps: 150, IPC: 900}, ClassC},
		{"memory ratio at low IPC", stats.Metrics{MemBandwidthGBps: 5, L2ToL1GBps: 20, R: 0.3, IPC: 100}, ClassC},
		{"high R but high IPC", stats.Metrics{MemBandwidthGBps: 5, L2ToL1GBps: 20, R: 0.3, IPC: 900}, ClassA},
		{"compute", stats.Metrics{MemBandwidthGBps: 3, L2ToL1GBps: 20, R: 0.05, IPC: 2000}, ClassA},
		{"idle-ish", stats.Metrics{}, ClassA},
	}
	for _, c := range cases {
		if got := th.Classify(c.m); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassStringRoundTrip(t *testing.T) {
	for _, c := range All() {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("round trip %v: %v %v", c, got, err)
		}
	}
	if _, err := ParseClass("Z"); err == nil {
		t.Fatal("ParseClass accepted garbage")
	}
}

func TestCalibrateThresholds(t *testing.T) {
	cfg := config.GTX480()
	profiles := []profile.Result{
		{Metrics: stats.Metrics{Name: "a", MemBandwidthGBps: 100, IPC: 3000}},
		{Metrics: stats.Metrics{Name: "b", MemBandwidthGBps: 40, IPC: 100}},
	}
	th := CalibrateThresholds(cfg, profiles)
	if th.AlphaGBps != AlphaFraction*100 {
		t.Fatalf("alpha = %v", th.AlphaGBps)
	}
	if th.BetaGBps != BetaFraction*100 {
		t.Fatalf("beta = %v", th.BetaGBps)
	}
	if th.EpsilonIPC != EpsilonFraction*3000 {
		t.Fatalf("epsilon = %v", th.EpsilonIPC)
	}
	if th.GammaGBps < 90 || th.GammaGBps > 110 {
		t.Fatalf("gamma = %v, want about 100 GB/s on the default device", th.GammaGBps)
	}
	if th.AlphaGBps <= th.BetaGBps {
		t.Fatal("alpha must exceed beta")
	}
}

func TestTablePreservesOrder(t *testing.T) {
	profiles := []profile.Result{
		{Metrics: stats.Metrics{Name: "x", MemBandwidthGBps: 90}},
		{Metrics: stats.Metrics{Name: "y", MemBandwidthGBps: 1, IPC: 900}},
	}
	rows := Table(thresholds(), profiles)
	if len(rows) != 2 || rows[0].Name != "x" || rows[1].Name != "y" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Class != ClassM || rows[1].Class != ClassA {
		t.Fatalf("classes = %v %v", rows[0].Class, rows[1].Class)
	}
}
