// Package rng provides a small, allocation-free, splittable pseudo-random
// hash used to generate deterministic synthetic memory traces. Unlike
// math/rand it is a pure function of its inputs, so a warp's address
// stream can be recomputed at any point of the simulation without storing
// it, and two simulator runs with the same seed are bit-identical.
package rng

// Mix64 is the SplitMix64 finalizer: a bijective avalanche function over
// 64-bit integers with good statistical properties.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 hashes two values into one 64-bit result.
func Hash2(a, b uint64) uint64 { return Mix64(Mix64(a) ^ b) }

// Hash3 hashes three values into one 64-bit result.
func Hash3(a, b, c uint64) uint64 { return Mix64(Hash2(a, b) ^ c) }

// Hash4 hashes four values into one 64-bit result.
func Hash4(a, b, c, d uint64) uint64 { return Mix64(Hash3(a, b, c) ^ d) }

// Float64 maps a hash to [0, 1).
func Float64(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Stream is an incremental SplitMix64 generator for callers that want a
// sequence rather than a pure hash (e.g. queue shuffling in experiments).
type Stream struct{ state uint64 }

// NewStream returns a generator seeded with seed.
func NewStream(seed uint64) *Stream { return &Stream{state: seed} }

// Next returns the next 64-bit value.
func (s *Stream) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (s *Stream) Float64() float64 { return Float64(s.Next()) }

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
