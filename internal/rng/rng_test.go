package rng

import (
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// Distinct inputs map to distinct outputs over a dense sample.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(x uint64) bool {
		v := Float64(Mix64(x))
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestHashFamilyDistinct(t *testing.T) {
	// Argument order matters.
	if Hash2(1, 2) == Hash2(2, 1) {
		t.Fatal("Hash2 symmetric")
	}
	if Hash3(1, 2, 3) == Hash3(3, 2, 1) {
		t.Fatal("Hash3 symmetric")
	}
	if Hash4(1, 2, 3, 4) == Hash4(4, 3, 2, 1) {
		t.Fatal("Hash4 symmetric")
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("streams with equal seeds diverged")
		}
	}
	c := NewStream(43)
	same := 0
	a = NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewStream(1)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("Intn badly skewed: value %d appeared %d/7000", v, n)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		NewStream(seed).Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := make([]bool, n)
		for _, v := range vals {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
