// Package config defines the architectural configuration of the simulated
// GPU. The default configuration mirrors Table 4.1 of the paper: a
// GTX-480-like device with 60 streaming multiprocessors (SMs), a 700 MHz
// core clock, 48 warps and 8 thread blocks per SM, 16 kB of L1 data cache
// per SM, a 768 kB shared L2, and greedy-then-oldest (GTO) warp
// scheduling.
//
// All latencies and clock-derived quantities in the simulator are
// expressed in core cycles; config converts between cycles and wall-clock
// bandwidth figures (GB/s) so that measured metrics are comparable with
// the numbers the paper reports.
package config

import (
	"fmt"
	"strings"
)

// WarpSchedPolicy selects the per-SM warp scheduling discipline.
type WarpSchedPolicy int

const (
	// SchedGTO is greedy-then-oldest: a scheduler keeps issuing from the
	// warp it issued from last until that warp stalls, then falls back to
	// the oldest ready warp. This is the policy used in the paper
	// (Rogers et al., "Cache-conscious wavefront scheduling").
	SchedGTO WarpSchedPolicy = iota
	// SchedLRR is loose round-robin: schedulers rotate through ready
	// warps. Provided as an ablation against GTO.
	SchedLRR
)

// String returns the conventional short name of the policy.
func (p WarpSchedPolicy) String() string {
	switch p {
	case SchedGTO:
		return "GTO"
	case SchedLRR:
		return "LRR"
	default:
		return fmt.Sprintf("WarpSchedPolicy(%d)", int(p))
	}
}

// MemSchedPolicy selects the DRAM request scheduling discipline of each
// memory controller.
type MemSchedPolicy int

const (
	// MemFRFCFS is first-ready, first-come-first-served: requests that
	// hit an open DRAM row are served before older requests that would
	// require a row activation. This is the GPGPU-Sim default and the
	// mechanism the paper identifies as favouring memory-streaming
	// (class M) applications.
	MemFRFCFS MemSchedPolicy = iota
	// MemFCFS serves requests strictly in arrival order. Provided as an
	// ablation against FR-FCFS.
	MemFCFS
)

// String returns the conventional short name of the policy.
func (p MemSchedPolicy) String() string {
	switch p {
	case MemFRFCFS:
		return "FR-FCFS"
	case MemFCFS:
		return "FCFS"
	default:
		return fmt.Sprintf("MemSchedPolicy(%d)", int(p))
	}
}

// CacheConfig describes one level of set-associative cache.
type CacheConfig struct {
	// SizeBytes is the total capacity. It must equal Sets*Assoc*LineBytes.
	SizeBytes int
	// LineBytes is the cache line (sector) size in bytes.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// LatencyCycles is the hit latency in core cycles.
	LatencyCycles int
	// MSHREntries bounds the number of distinct outstanding misses; when
	// exhausted the cache refuses new misses (structural stall).
	MSHREntries int
	// MSHRMaxMerged bounds how many requesters may merge onto one
	// outstanding miss before further accesses to the line stall.
	MSHRMaxMerged int
	// WriteBack selects write-back (true) or write-through (false).
	WriteBack bool
	// WriteAllocate selects whether stores allocate lines on miss.
	WriteAllocate bool
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (c.LineBytes * c.Assoc)
}

// Validate reports a descriptive error for an inconsistent geometry.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("config: cache size/line/assoc must be positive (got %d/%d/%d)",
			c.SizeBytes, c.LineBytes, c.Assoc)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("config: cache size %d not divisible by line*assoc %d",
			c.SizeBytes, c.LineBytes*c.Assoc)
	}
	if c.Sets()&(c.Sets()-1) != 0 {
		return fmt.Errorf("config: cache sets %d must be a power of two", c.Sets())
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("config: cache line %d must be a power of two", c.LineBytes)
	}
	if c.MSHREntries <= 0 || c.MSHRMaxMerged <= 0 {
		return fmt.Errorf("config: MSHR entries/merged must be positive (got %d/%d)",
			c.MSHREntries, c.MSHRMaxMerged)
	}
	return nil
}

// DRAMConfig describes one memory partition's controller and devices.
type DRAMConfig struct {
	// Banks is the number of DRAM banks per partition.
	Banks int
	// RowBytes is the row-buffer size per bank in bytes.
	RowBytes int
	// QueueSize bounds the controller's request queue; when full the
	// partition exerts backpressure on the interconnect.
	QueueSize int
	// CASLatency is the column access latency (row hit) in core cycles.
	CASLatency int
	// RPLatency is the precharge latency in core cycles.
	RPLatency int
	// RCDLatency is the activate (row open) latency in core cycles.
	RCDLatency int
	// BurstCycles is the data-bus occupancy of one line transfer.
	BurstCycles int
	// Sched selects FR-FCFS or FCFS request scheduling.
	Sched MemSchedPolicy
}

// RowMissLatency returns the service latency of a request that must close
// the current row and open another (precharge + activate + column access).
func (d DRAMConfig) RowMissLatency() int { return d.RPLatency + d.RCDLatency + d.CASLatency }

// Validate reports a descriptive error for inconsistent DRAM parameters.
func (d DRAMConfig) Validate() error {
	if d.Banks <= 0 || d.RowBytes <= 0 || d.QueueSize <= 0 {
		return fmt.Errorf("config: DRAM banks/row/queue must be positive (got %d/%d/%d)",
			d.Banks, d.RowBytes, d.QueueSize)
	}
	if d.RowBytes&(d.RowBytes-1) != 0 {
		return fmt.Errorf("config: DRAM row size %d must be a power of two", d.RowBytes)
	}
	if d.CASLatency <= 0 || d.RPLatency <= 0 || d.RCDLatency <= 0 || d.BurstCycles <= 0 {
		return fmt.Errorf("config: DRAM latencies must be positive")
	}
	return nil
}

// IcntConfig describes the SM-to-memory-partition interconnect.
type IcntConfig struct {
	// LatencyCycles is the one-way traversal latency.
	LatencyCycles int
	// BytesPerCycle is the aggregate per-direction bandwidth of the
	// network. Request and response traffic contend for it separately.
	BytesPerCycle int
	// QueueSize bounds each direction's in-flight queue per partition.
	QueueSize int
}

// Validate reports a descriptive error for inconsistent parameters.
func (i IcntConfig) Validate() error {
	if i.LatencyCycles <= 0 || i.BytesPerCycle <= 0 || i.QueueSize <= 0 {
		return fmt.Errorf("config: icnt latency/bandwidth/queue must be positive (got %d/%d/%d)",
			i.LatencyCycles, i.BytesPerCycle, i.QueueSize)
	}
	return nil
}

// GPUConfig is the full architectural description of a simulated device.
type GPUConfig struct {
	// Name labels the configuration in reports.
	Name string
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// CoreClockMHz is the core clock; bandwidth figures are derived from
	// it (bytes/cycle * clock = bytes/second).
	CoreClockMHz int
	// WarpSize is the number of threads per warp.
	WarpSize int
	// MaxWarpsPerSM bounds resident warps per SM.
	MaxWarpsPerSM int
	// MaxBlocksPerSM bounds resident thread blocks (CTAs) per SM.
	MaxBlocksPerSM int
	// SchedulersPerSM is the number of warp schedulers (issue slots per
	// cycle) per SM.
	SchedulersPerSM int
	// RegistersPerSM is the register-file capacity in 32-bit registers.
	RegistersPerSM int
	// SharedMemPerSM is the scratchpad capacity in bytes.
	SharedMemPerSM int
	// ALULatency is the default arithmetic latency in cycles.
	ALULatency int
	// SFULatency is the special-function-unit latency in cycles.
	SFULatency int
	// SharedLatency is the scratchpad access latency in cycles.
	SharedLatency int
	// WarpSched selects GTO or LRR warp scheduling.
	WarpSched WarpSchedPolicy
	// L1 is the per-SM data cache.
	L1 CacheConfig
	// L2 is the device-wide cache, banked across memory partitions;
	// SizeBytes is the total across all partitions.
	L2 CacheConfig
	// NumMemPartitions is the number of L2 bank + memory controller
	// pairs.
	NumMemPartitions int
	// DRAM configures each partition's memory controller.
	DRAM DRAMConfig
	// Icnt configures the SM-to-partition interconnect.
	Icnt IcntConfig
}

// GTX480 returns the paper's experimental setup (Table 4.1): a Fermi-class
// device scaled to 60 SMs. Unspecified microarchitectural latencies use
// GPGPU-Sim 3.x defaults for the GTX 480 card.
func GTX480() GPUConfig {
	return GPUConfig{
		Name:            "GTX480-60SM",
		NumSMs:          60,
		CoreClockMHz:    700,
		WarpSize:        32,
		MaxWarpsPerSM:   48,
		MaxBlocksPerSM:  8,
		SchedulersPerSM: 2,
		RegistersPerSM:  32768,
		SharedMemPerSM:  48 * 1024,
		ALULatency:      4,
		SFULatency:      8,
		SharedLatency:   24,
		WarpSched:       SchedGTO,
		L1: CacheConfig{
			SizeBytes:     16 * 1024,
			LineBytes:     128,
			Assoc:         4,
			LatencyCycles: 1,
			MSHREntries:   32,
			MSHRMaxMerged: 8,
			WriteBack:     false,
			WriteAllocate: false,
		},
		L2: CacheConfig{
			SizeBytes:     768 * 1024,
			LineBytes:     128,
			Assoc:         8,
			LatencyCycles: 8,
			MSHREntries:   64,
			MSHRMaxMerged: 16,
			WriteBack:     true,
			WriteAllocate: true,
		},
		NumMemPartitions: 6,
		DRAM: DRAMConfig{
			Banks:       8,
			RowBytes:    4096,
			QueueSize:   64,
			CASLatency:  20,
			RPLatency:   20,
			RCDLatency:  20,
			BurstCycles: 4,
			Sched:       MemFRFCFS,
		},
		Icnt: IcntConfig{
			LatencyCycles: 8,
			BytesPerCycle: 384,
			QueueSize:     64,
		},
	}
}

// Small returns a reduced device for unit tests: 8 SMs, 2 partitions,
// small caches. It keeps every mechanism of the full device but runs
// orders of magnitude faster.
func Small() GPUConfig {
	c := GTX480()
	c.Name = "Small-8SM"
	c.NumSMs = 8
	c.NumMemPartitions = 2
	c.L1.SizeBytes = 4 * 1024
	c.L2.SizeBytes = 64 * 1024
	c.Icnt.BytesPerCycle = 64
	return c
}

// ByName resolves a device configuration from its registered name, for
// CLI roster flags and experiment specs. Both the full config name
// ("GTX480-60SM") and the constructor shorthand ("GTX480") are
// accepted, case-insensitively.
func ByName(name string) (GPUConfig, error) {
	switch strings.ToLower(name) {
	case "gtx480", "gtx480-60sm":
		return GTX480(), nil
	case "small", "small-8sm":
		return Small(), nil
	default:
		return GPUConfig{}, fmt.Errorf("config: unknown device %q (GTX480, Small)", name)
	}
}

// Validate checks the full configuration for internal consistency.
func (g GPUConfig) Validate() error {
	if g.NumSMs <= 0 {
		return fmt.Errorf("config: NumSMs must be positive (got %d)", g.NumSMs)
	}
	if g.CoreClockMHz <= 0 {
		return fmt.Errorf("config: CoreClockMHz must be positive (got %d)", g.CoreClockMHz)
	}
	if g.WarpSize <= 0 || g.WarpSize&(g.WarpSize-1) != 0 {
		return fmt.Errorf("config: WarpSize must be a positive power of two (got %d)", g.WarpSize)
	}
	if g.MaxWarpsPerSM <= 0 || g.MaxBlocksPerSM <= 0 || g.SchedulersPerSM <= 0 {
		return fmt.Errorf("config: per-SM limits must be positive")
	}
	if g.RegistersPerSM <= 0 || g.SharedMemPerSM <= 0 {
		return fmt.Errorf("config: per-SM register/shared capacities must be positive")
	}
	if g.ALULatency <= 0 || g.SFULatency <= 0 || g.SharedLatency <= 0 {
		return fmt.Errorf("config: functional-unit latencies must be positive")
	}
	if g.NumMemPartitions <= 0 {
		return fmt.Errorf("config: NumMemPartitions must be positive (got %d)", g.NumMemPartitions)
	}
	if g.L2.SizeBytes%g.NumMemPartitions != 0 {
		return fmt.Errorf("config: L2 size %d not divisible by %d partitions",
			g.L2.SizeBytes, g.NumMemPartitions)
	}
	if err := g.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	bank := g.L2
	bank.SizeBytes = g.L2.SizeBytes / g.NumMemPartitions
	if err := bank.Validate(); err != nil {
		return fmt.Errorf("L2 bank: %w", err)
	}
	if g.L1.LineBytes != g.L2.LineBytes {
		return fmt.Errorf("config: L1 line %d != L2 line %d", g.L1.LineBytes, g.L2.LineBytes)
	}
	if err := g.DRAM.Validate(); err != nil {
		return err
	}
	if err := g.Icnt.Validate(); err != nil {
		return err
	}
	return nil
}

// L2Bank returns the per-partition slice of the L2 configuration.
func (g GPUConfig) L2Bank() CacheConfig {
	bank := g.L2
	bank.SizeBytes = g.L2.SizeBytes / g.NumMemPartitions
	return bank
}

// PeakIPC returns the maximum instructions per cycle the device can
// retire: one instruction per scheduler per SM per cycle.
func (g GPUConfig) PeakIPC() float64 {
	return float64(g.NumSMs * g.SchedulersPerSM)
}

// BytesPerCycleToGBps converts an on-chip bytes/cycle figure to GB/s at
// the configured core clock (1 GB = 1e9 bytes, matching vendor marketing
// and the paper's units).
func (g GPUConfig) BytesPerCycleToGBps(bytesPerCycle float64) float64 {
	return bytesPerCycle * float64(g.CoreClockMHz) * 1e6 / 1e9
}

// GBpsToBytesPerCycle is the inverse of BytesPerCycleToGBps.
func (g GPUConfig) GBpsToBytesPerCycle(gbps float64) float64 {
	return gbps * 1e9 / (float64(g.CoreClockMHz) * 1e6)
}

// PeakDRAMBandwidthGBps returns the aggregate DRAM data-bus bandwidth of
// all partitions: one line per BurstCycles per partition.
func (g GPUConfig) PeakDRAMBandwidthGBps() float64 {
	bytesPerCycle := float64(g.NumMemPartitions) * float64(g.L2.LineBytes) / float64(g.DRAM.BurstCycles)
	return g.BytesPerCycleToGBps(bytesPerCycle)
}
