package config

import (
	"testing"
	"testing/quick"
)

func TestGTX480Valid(t *testing.T) {
	cfg := GTX480()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 4.1 values.
	if cfg.NumSMs != 60 || cfg.CoreClockMHz != 700 || cfg.MaxWarpsPerSM != 48 ||
		cfg.MaxBlocksPerSM != 8 || cfg.SharedMemPerSM != 48*1024 ||
		cfg.L1.SizeBytes != 16*1024 || cfg.L2.SizeBytes != 768*1024 ||
		cfg.WarpSched != SchedGTO {
		t.Fatalf("GTX480 deviates from Table 4.1: %+v", cfg)
	}
}

func TestSmallValid(t *testing.T) {
	if err := Small().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*GPUConfig){
		func(c *GPUConfig) { c.NumSMs = 0 },
		func(c *GPUConfig) { c.CoreClockMHz = -1 },
		func(c *GPUConfig) { c.WarpSize = 33 },
		func(c *GPUConfig) { c.SchedulersPerSM = 0 },
		func(c *GPUConfig) { c.ALULatency = 0 },
		func(c *GPUConfig) { c.NumMemPartitions = 0 },
		func(c *GPUConfig) { c.NumMemPartitions = 7 }, // 768k not divisible
		func(c *GPUConfig) { c.L1.Assoc = 3 },         // sets not power of two
		func(c *GPUConfig) { c.L1.LineBytes = 96 },
		func(c *GPUConfig) { c.L1.MSHREntries = 0 },
		func(c *GPUConfig) { c.L2.LineBytes = 64 }, // mismatched line sizes
		func(c *GPUConfig) { c.DRAM.RowBytes = 3000 },
		func(c *GPUConfig) { c.DRAM.BurstCycles = 0 },
		func(c *GPUConfig) { c.Icnt.BytesPerCycle = 0 },
	}
	for i, mutate := range mutations {
		cfg := GTX480()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBandwidthConversionRoundTrip(t *testing.T) {
	cfg := GTX480()
	f := func(raw uint16) bool {
		v := float64(raw) / 7.0
		back := cfg.GBpsToBytesPerCycle(cfg.BytesPerCycleToGBps(v))
		return back > v-1e-9 && back < v+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// 192 bytes/cycle at 700 MHz = 134.4 GB/s.
	got := cfg.BytesPerCycleToGBps(192)
	if got < 134.3 || got > 134.5 {
		t.Fatalf("192 B/c = %v GB/s, want 134.4", got)
	}
}

func TestPeakFigures(t *testing.T) {
	cfg := GTX480()
	if got := cfg.PeakIPC(); got != 120 {
		t.Fatalf("peak warp IPC = %v, want 120", got)
	}
	peak := cfg.PeakDRAMBandwidthGBps()
	if peak < 100 || peak > 200 {
		t.Fatalf("peak DRAM bandwidth = %v GB/s, implausible", peak)
	}
	if cfg.L2Bank().SizeBytes*cfg.NumMemPartitions != cfg.L2.SizeBytes {
		t.Fatal("L2 bank slicing loses capacity")
	}
}

func TestRowMissLatency(t *testing.T) {
	d := GTX480().DRAM
	if d.RowMissLatency() != d.RPLatency+d.RCDLatency+d.CASLatency {
		t.Fatal("row miss latency wrong")
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"GTX480":      "GTX480-60SM",
		"gtx480-60sm": "GTX480-60SM",
		"Small":       "Small-8SM",
		"small-8sm":   "Small-8SM",
	} {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if cfg.Name != want {
			t.Fatalf("ByName(%q).Name = %q, want %q", name, cfg.Name, want)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ByName(%q) returns invalid config: %v", name, err)
		}
	}
	if _, err := ByName("H100"); err == nil {
		t.Fatal("accepted unregistered device name")
	}
}
