package memreq

import (
	"testing"
	"unsafe"
)

func TestKindStrings(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || ReadReply.String() != "read-reply" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() != "unknown" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestRequestIsCompactValue(t *testing.T) {
	// Requests are copied through bounded queues millions of times per
	// simulated second; keep the struct within two cache words.
	if size := unsafe.Sizeof(Request{}); size > 32 {
		t.Fatalf("Request grew to %d bytes; keep it <= 32", size)
	}
}
