// Package memreq defines the memory request/response messages exchanged
// between SIMT cores, the interconnect, L2 banks and memory controllers.
package memreq

// Kind distinguishes message roles on the network.
type Kind uint8

const (
	// Read asks a partition for one cache line.
	Read Kind = iota
	// Write delivers one dirty/stored line to a partition. Writes are
	// fire-and-forget: no acknowledgement flows back.
	Write
	// ReadReply carries one filled cache line back to an SM.
	ReadReply
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case ReadReply:
		return "read-reply"
	default:
		return "unknown"
	}
}

// Request is one message. Requests are small values copied through
// bounded queues; no pointers are shared across components.
type Request struct {
	// Kind is the message role.
	Kind Kind
	// Line is the cache-line base address.
	Line uint64
	// App attributes traffic to an application for statistics and for
	// the paper's per-application bandwidth metrics.
	App int16
	// SM is the issuing core, used to route replies.
	SM int32
	// Warp is the waiter token inside the SM's L1 (warp slot index).
	Warp int32
	// Size is the payload size in bytes charged to interconnect
	// bandwidth (control-only packets use a small constant; data
	// packets use the line size).
	Size int32
}

// ControlBytes is the size charged for a read request packet (address +
// metadata, no payload).
const ControlBytes = 8
