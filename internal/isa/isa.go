// Package isa defines the warp-level instruction vocabulary of the
// simulator. Kernels are modeled at warp granularity: one Instr describes
// what an entire 32-thread warp does in one issue slot, with memory
// instructions carrying the set of distinct cache lines the warp touches
// after address coalescing (1 line for a fully coalesced access, up to
// WarpSize lines for a fully divergent one).
package isa

import "fmt"

// Op is a warp-level operation class.
type Op uint8

const (
	// OpNop issues and retires immediately; used as a filler.
	OpNop Op = iota
	// OpALU is an integer/float arithmetic operation on the SP units.
	OpALU
	// OpSFU is a special-function operation (transcendental, rsqrt).
	OpSFU
	// OpShared is a scratchpad (shared memory) access.
	OpShared
	// OpLoad is a global-memory load; the warp blocks until all of its
	// lines have been filled.
	OpLoad
	// OpStore is a global-memory store; modeled fire-and-forget (the
	// warp does not wait for completion) but it consumes interconnect,
	// L2 and DRAM bandwidth.
	OpStore
	// OpBarrier blocks the warp until every warp of its thread block has
	// arrived at the same barrier.
	OpBarrier
	// OpExit retires the warp.
	OpExit
)

// String returns the mnemonic of the operation.
func (o Op) String() string {
	switch o {
	case OpNop:
		return "NOP"
	case OpALU:
		return "ALU"
	case OpSFU:
		return "SFU"
	case OpShared:
		return "SHMEM"
	case OpLoad:
		return "LD.GLOBAL"
	case OpStore:
		return "ST.GLOBAL"
	case OpBarrier:
		return "BAR.SYNC"
	case OpExit:
		return "EXIT"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// IsMemory reports whether the operation accesses global memory.
func (o Op) IsMemory() bool { return o == OpLoad || o == OpStore }

// Instr is one warp-level instruction.
type Instr struct {
	// Op is the operation class.
	Op Op
	// Lines holds the distinct cache-line base addresses touched by a
	// memory instruction, already coalesced. It aliases a caller-provided
	// buffer and is only valid until the next Fetch on the same buffer.
	Lines []uint64
}

// String renders the instruction for traces and test failures.
func (in Instr) String() string {
	if in.Op.IsMemory() {
		return fmt.Sprintf("%s x%d", in.Op, len(in.Lines))
	}
	return in.Op.String()
}
