package isa

import "testing"

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpNop: "NOP", OpALU: "ALU", OpSFU: "SFU", OpShared: "SHMEM",
		OpLoad: "LD.GLOBAL", OpStore: "ST.GLOBAL", OpBarrier: "BAR.SYNC",
		OpExit: "EXIT",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d: %q, want %q", op, op.String(), want)
		}
	}
	if Op(200).String() == "" {
		t.Error("unknown op renders empty")
	}
}

func TestIsMemory(t *testing.T) {
	for _, op := range []Op{OpLoad, OpStore} {
		if !op.IsMemory() {
			t.Errorf("%v should be memory", op)
		}
	}
	for _, op := range []Op{OpNop, OpALU, OpSFU, OpShared, OpBarrier, OpExit} {
		if op.IsMemory() {
			t.Errorf("%v should not be memory", op)
		}
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: OpLoad, Lines: []uint64{0, 128}}
	if got := in.String(); got != "LD.GLOBAL x2" {
		t.Errorf("got %q", got)
	}
	if got := (Instr{Op: OpALU}).String(); got != "ALU" {
		t.Errorf("got %q", got)
	}
}
