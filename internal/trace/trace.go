// Package trace records windowed time series from a running device:
// per-application IPC and DRAM bandwidth sampled every N cycles. The
// paper's Algorithm 1 makes its decisions from exactly these windowed
// signals, so the tracer is the tool for inspecting *why* the SM
// reallocator moved cores — and for visualizing co-run phase behaviour
// in general.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/gpu"
	"repro/internal/stats"
)

// Sample is one application's activity over one window.
type Sample struct {
	// Cycle is the window's end cycle.
	Cycle uint64
	// App is the application handle.
	App gpu.AppHandle
	// IPC is thread instructions per cycle within the window.
	IPC float64
	// DRAMBytesPerCycle is data-bus traffic per cycle within the window.
	DRAMBytesPerCycle float64
	// SMs is the number of cores owned at sampling time.
	SMs int
}

// Tracer samples a device as it is stepped.
type Tracer struct {
	d       *gpu.Device
	every   uint64
	apps    []gpu.AppHandle
	prev    []stats.App
	last    uint64
	samples []Sample
}

// New builds a tracer over the given applications, sampling every
// `every` cycles.
func New(d *gpu.Device, apps []gpu.AppHandle, every uint64) (*Tracer, error) {
	if d == nil {
		return nil, fmt.Errorf("trace: nil device")
	}
	if every == 0 {
		return nil, fmt.Errorf("trace: zero sampling window")
	}
	if len(apps) == 0 {
		return nil, fmt.Errorf("trace: no applications to trace")
	}
	t := &Tracer{d: d, every: every, apps: apps, prev: make([]stats.App, len(apps)), last: d.Cycle()}
	for i, h := range apps {
		t.prev[i] = d.AppStats(h)
	}
	return t, nil
}

// Tick must be called after every device step; it emits one sample per
// application at each window boundary.
func (t *Tracer) Tick() {
	now := t.d.Cycle()
	if now-t.last < t.every {
		return
	}
	window := float64(now - t.last)
	t.last = now
	for i, h := range t.apps {
		cur := t.d.AppStats(h)
		t.samples = append(t.samples, Sample{
			Cycle:             now,
			App:               h,
			IPC:               float64(cur.ThreadInstructions-t.prev[i].ThreadInstructions) / window,
			DRAMBytesPerCycle: float64(cur.DRAMBytes-t.prev[i].DRAMBytes) / window,
			SMs:               len(t.d.SMsOwnedBy(h)),
		})
		t.prev[i] = cur
	}
}

// Samples returns the recorded series in emission order.
func (t *Tracer) Samples() []Sample { return t.samples }

// Run steps the device until every application retires or maxCycles
// elapse, sampling along the way.
func (t *Tracer) Run(maxCycles uint64) error {
	start := t.d.Cycle()
	for !t.d.AllDone() {
		if t.d.Cycle()-start >= maxCycles {
			return fmt.Errorf("trace: run exceeded %d cycles", maxCycles)
		}
		t.d.Step()
		t.Tick()
	}
	t.Tick()
	return nil
}

// WriteCSV renders the series as CSV (cycle, app, ipc, dram_bpc, sms).
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cycle", "app", "ipc", "dram_bytes_per_cycle", "sms"}); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	for _, s := range t.samples {
		rec := []string{
			strconv.FormatUint(s.Cycle, 10),
			strconv.Itoa(int(s.App)),
			strconv.FormatFloat(s.IPC, 'g', 6, 64),
			strconv.FormatFloat(s.DRAMBytesPerCycle, 'g', 6, 64),
			strconv.Itoa(s.SMs),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
