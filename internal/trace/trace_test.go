package trace

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/kernel"
	"repro/internal/testkit"
)

func tracedDevice(t *testing.T) (*gpu.Device, []gpu.AppHandle) {
	t.Helper()
	cfg := testkit.Config()
	d := gpu.MustNew(cfg)
	k1, err := kernel.New(testkit.MiniA(), cfg.L1.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := kernel.New(testkit.MiniM(), cfg.L1.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	k2.BaseAddr = 1 << 40
	half := cfg.NumSMs / 2
	sms := func(lo, hi int) []int {
		var out []int
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}
	h1, err := d.Launch(k1, sms(0, half))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := d.Launch(k2, sms(half, cfg.NumSMs))
	if err != nil {
		t.Fatal(err)
	}
	return d, []gpu.AppHandle{h1, h2}
}

func TestTracerSamplesWindows(t *testing.T) {
	d, apps := tracedDevice(t)
	tr, err := New(d, apps, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	samples := tr.Samples()
	if len(samples) < 4 {
		t.Fatalf("only %d samples", len(samples))
	}
	var sawComputeIPC, sawMemTraffic bool
	for _, s := range samples {
		if s.SMs < 0 || s.IPC < 0 || s.DRAMBytesPerCycle < 0 {
			t.Fatalf("negative sample: %+v", s)
		}
		if s.App == apps[0] && s.IPC > 1 {
			sawComputeIPC = true
		}
		if s.App == apps[1] && s.DRAMBytesPerCycle > 1 {
			sawMemTraffic = true
		}
	}
	if !sawComputeIPC {
		t.Error("compute app never showed IPC in any window")
	}
	if !sawMemTraffic {
		t.Error("memory app never showed DRAM traffic in any window")
	}
}

func TestTracerCSV(t *testing.T) {
	d, apps := tracedDevice(t)
	tr, err := New(d, apps, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(b.String(), "\n")
	if lines != len(tr.Samples())+1 {
		t.Fatalf("csv has %d lines for %d samples", lines, len(tr.Samples()))
	}
}

func TestTracerValidation(t *testing.T) {
	d, apps := tracedDevice(t)
	if _, err := New(nil, apps, 100); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := New(d, nil, 100); err == nil {
		t.Error("no apps accepted")
	}
	if _, err := New(d, apps, 0); err == nil {
		t.Error("zero window accepted")
	}
}
