// Package obs holds the observability layer's data containers: fixed-
// column, integer-valued time series sampled at a constant cycle
// interval, with deterministic CSV and JSON renderings. The fleet event
// loop fills one Series per run (internal/fleet wires the sampling);
// this package deliberately knows nothing about fleets, so any layer
// that wants a plottable per-interval trace can reuse it.
//
// The storage is a single flat []uint64 in row-major order — appending
// a row copies the caller's scratch slice into the tail, so a run's
// steady state performs no per-sample allocations (the flat buffer
// grows by amortized doubling, and callers that know the makespan can
// pre-size it away entirely).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Series is a fixed-column time series of uint64 samples. The zero
// value is not usable; construct with NewSeries.
type Series struct {
	// interval is the sampling interval in cycles (every row covers the
	// interval ending at its cycle column).
	interval uint64
	// columns labels the values of every row, in storage order.
	columns []string
	// data is the row-major sample storage.
	data []uint64
}

// NewSeries builds an empty series with the given sampling interval and
// column labels. capRows pre-sizes the storage (0 is fine: the buffer
// grows by amortized doubling).
func NewSeries(interval uint64, columns []string, capRows int) *Series {
	cols := append([]string(nil), columns...)
	return &Series{
		interval: interval,
		columns:  cols,
		data:     make([]uint64, 0, capRows*len(cols)),
	}
}

// Interval is the sampling interval in cycles.
func (s *Series) Interval() uint64 { return s.interval }

// Columns is the column labels in storage order. Callers must not
// mutate the returned slice.
func (s *Series) Columns() []string { return s.columns }

// Rows is the number of appended samples.
func (s *Series) Rows() int {
	if len(s.columns) == 0 {
		return 0
	}
	return len(s.data) / len(s.columns)
}

// Append copies one sample row into the series. The row length must
// match the column count exactly — a mismatch is a programming error in
// the sampler, reported loudly rather than silently mis-aligned.
func (s *Series) Append(row []uint64) {
	if len(row) != len(s.columns) {
		panic(fmt.Sprintf("obs: sample has %d values for %d columns", len(row), len(s.columns)))
	}
	s.data = append(s.data, row...)
}

// At returns the value at row r, column c.
func (s *Series) At(r, c int) uint64 { return s.data[r*len(s.columns)+c] }

// Set overwrites the value at row r, column c. The fleet sampler uses
// it to merge per-interval busy-cycle accounting (known only when a
// flight retires) into rows that were emitted while the flight was
// still running.
func (s *Series) Set(r, c int, v uint64) { s.data[r*len(s.columns)+c] = v }

// Col returns the index of the named column, or -1.
func (s *Series) Col(name string) int {
	for i, c := range s.columns {
		if c == name {
			return i
		}
	}
	return -1
}

// WriteCSV renders the series as CSV: a header row of the column
// labels, then one record per sample, raw integers. The output is
// deterministic — identical series, byte-identical CSV.
func (s *Series) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, c := range s.columns {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(c)
	}
	bw.WriteByte('\n')
	var buf [20]byte // fits a full uint64
	for r := 0; r < s.Rows(); r++ {
		base := r * len(s.columns)
		for c := range s.columns {
			if c > 0 {
				bw.WriteByte(',')
			}
			bw.Write(strconv.AppendUint(buf[:0], s.data[base+c], 10))
		}
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: write csv: %w", err)
	}
	return nil
}

// seriesJSON is the stable JSON shape of a series.
type seriesJSON struct {
	Interval uint64     `json:"interval"`
	Columns  []string   `json:"columns"`
	Rows     [][]uint64 `json:"rows"`
}

// WriteJSON renders the series as one JSON document with the sampling
// interval, the column labels and the rows. Deterministic, like the
// CSV form.
func (s *Series) WriteJSON(w io.Writer) error {
	out := seriesJSON{Interval: s.interval, Columns: s.columns, Rows: make([][]uint64, s.Rows())}
	for r := range out.Rows {
		out.Rows[r] = s.data[r*len(s.columns) : (r+1)*len(s.columns)]
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: write json: %w", err)
	}
	return nil
}
