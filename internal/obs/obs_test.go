package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Series {
	s := NewSeries(100, []string{"cycle", "queue", "busy"}, 4)
	s.Append([]uint64{100, 3, 1})
	s.Append([]uint64{200, 0, 2})
	return s
}

func TestSeriesAccessors(t *testing.T) {
	s := sample()
	if s.Interval() != 100 {
		t.Fatalf("interval = %d", s.Interval())
	}
	if s.Rows() != 2 {
		t.Fatalf("rows = %d", s.Rows())
	}
	if got := s.At(1, 1); got != 0 {
		t.Fatalf("At(1,1) = %d", got)
	}
	if s.Col("busy") != 2 || s.Col("nope") != -1 {
		t.Fatalf("Col lookup wrong: busy=%d nope=%d", s.Col("busy"), s.Col("nope"))
	}
	s.Set(1, 1, 9)
	if got := s.At(1, 1); got != 9 {
		t.Fatalf("Set did not stick: %d", got)
	}
}

func TestSeriesAppendRejectsWrongWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short row accepted")
		}
	}()
	sample().Append([]uint64{1, 2})
}

func TestSeriesWriteCSV(t *testing.T) {
	var b bytes.Buffer
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "cycle,queue,busy\n100,3,1\n200,0,2\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestSeriesWriteJSON(t *testing.T) {
	var b bytes.Buffer
	if err := sample().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got seriesJSON
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatalf("invalid json %q: %v", b.String(), err)
	}
	if got.Interval != 100 || len(got.Columns) != 3 || len(got.Rows) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Rows[0][0] != 100 || got.Rows[1][2] != 2 {
		t.Fatalf("rows = %v", got.Rows)
	}
	// Two renders are byte-identical (determinism contract).
	var b2 bytes.Buffer
	if err := sample().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatalf("json not deterministic:\n%s\n%s", b.String(), b2.String())
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(50, []string{"cycle"}, 0)
	var b bytes.Buffer
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "cycle\n" {
		t.Fatalf("empty csv = %q", b.String())
	}
	b.Reset()
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"rows":[]`) {
		t.Fatalf("empty json = %q", b.String())
	}
}
