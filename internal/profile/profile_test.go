package profile

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/testkit"
)

func TestRunProducesMetricsAndMemoizes(t *testing.T) {
	p := New(testkit.Config())
	r1, err := p.Run(testkit.MiniA(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.IPC <= 0 || r1.Cycles == 0 {
		t.Fatalf("degenerate profile: %+v", r1)
	}
	if r1.NumSMs != testkit.Config().NumSMs {
		t.Fatalf("NumSMs = %d", r1.NumSMs)
	}
	r2, err := p.Run(testkit.MiniA(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("memoized run differs")
	}
}

func TestRunAtReducedSMCount(t *testing.T) {
	p := New(testkit.Config())
	full, err := p.Run(testkit.MiniA(), 0)
	if err != nil {
		t.Fatal(err)
	}
	half, err := p.Run(testkit.MiniA(), testkit.Config().NumSMs/2)
	if err != nil {
		t.Fatal(err)
	}
	if half.NumSMs != testkit.Config().NumSMs/2 {
		t.Fatalf("NumSMs = %d", half.NumSMs)
	}
	// A parallel compute kernel must lose IPC with half the cores.
	if half.IPC >= full.IPC {
		t.Fatalf("IPC did not drop with fewer SMs: full=%v half=%v", full.IPC, half.IPC)
	}
}

func TestRunAllOrderPreserved(t *testing.T) {
	p := New(testkit.Config())
	apps := testkit.Universe()
	rs, err := p.RunAll(apps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(apps) {
		t.Fatalf("results = %d", len(rs))
	}
	for i := range rs {
		if rs[i].Name != apps[i].Name {
			t.Fatalf("order broken at %d: %s vs %s", i, rs[i].Name, apps[i].Name)
		}
	}
}

func TestRunInvalidKernel(t *testing.T) {
	p := New(testkit.Config())
	if _, err := p.Run(kernel.Params{Name: "bad"}, 0); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}
