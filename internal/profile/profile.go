// Package profile runs applications solo on a simulated device and
// extracts the signature metrics the methodology consumes (Section
// 3.2.1): DRAM bandwidth, L2→L1 bandwidth, IPC, memory-to-compute ratio
// and device utilization. Results are memoized per (benchmark, SM
// count), since the experiment suite re-reads the same profiles many
// times. The profiler is safe for concurrent use: the online fleet
// dispatcher profiles from many scheduling goroutines at once, and
// duplicate concurrent requests for the same profile share one
// simulation.
package profile

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kernel"
	"repro/internal/memo"
	"repro/internal/stats"
)

// Result is one solo profile.
type Result struct {
	stats.Metrics
	// Utilization is device throughput normalized to peak (Fig 1.2).
	Utilization float64
	// NumSMs is the core count the profile was taken at.
	NumSMs int
}

// String renders one profile row.
func (r Result) String() string {
	return fmt.Sprintf("%s util=%5.1f%% SMs=%d", r.Metrics, r.Utilization*100, r.NumSMs)
}

// MaxRunCycles bounds any single profiling simulation; exceeding it
// indicates a livelock and is reported as an error.
const MaxRunCycles = 50_000_000

// Profiler memoizes solo runs on one device configuration.
type Profiler struct {
	cfg  config.GPUConfig
	runs *memo.Table[Result]
}

// New builds a profiler for the configuration.
func New(cfg config.GPUConfig) *Profiler {
	return &Profiler{cfg: cfg, runs: memo.NewTable[Result]()}
}

// Config returns the profiler's device configuration.
func (p *Profiler) Config() config.GPUConfig { return p.cfg }

func key(name string, numSMs int) string { return fmt.Sprintf("%s/%d", name, numSMs) }

// Prime seeds the memo with an externally obtained full-device profile
// (e.g. restored from a calibration file), so later Run calls for the
// same application skip the simulation.
func (p *Profiler) Prime(name string, r Result) {
	numSMs := r.NumSMs
	if numSMs <= 0 || numSMs > p.cfg.NumSMs {
		numSMs = p.cfg.NumSMs
	}
	p.runs.Put(key(name, numSMs), r)
}

// Peek returns the memoized profile for (name, numSMs) without ever
// simulating (numSMs <= 0 selects all cores). The online fleet
// dispatcher uses it to bound group completion times cheaply.
func (p *Profiler) Peek(name string, numSMs int) (Result, bool) {
	if numSMs <= 0 || numSMs > p.cfg.NumSMs {
		numSMs = p.cfg.NumSMs
	}
	return p.runs.Get(key(name, numSMs))
}

// Run profiles params solo on the first numSMs cores of the device
// (numSMs <= 0 selects all cores).
func (p *Profiler) Run(params kernel.Params, numSMs int) (Result, error) {
	if numSMs <= 0 || numSMs > p.cfg.NumSMs {
		numSMs = p.cfg.NumSMs
	}
	return p.runs.Do(key(params.Name, numSMs), func() (Result, error) {
		return p.simulate(params, numSMs)
	})
}

// simulate performs the actual solo run (no memoization).
func (p *Profiler) simulate(params kernel.Params, numSMs int) (Result, error) {
	d, err := gpu.New(p.cfg)
	if err != nil {
		return Result{}, err
	}
	k, err := kernel.New(params, p.cfg.L1.LineBytes)
	if err != nil {
		return Result{}, err
	}
	sms := make([]int, numSMs)
	for i := range sms {
		sms[i] = i
	}
	h, err := d.Launch(k, sms)
	if err != nil {
		return Result{}, err
	}
	if err := d.Run(MaxRunCycles); err != nil {
		return Result{}, fmt.Errorf("profile %s on %d SMs: %w", params.Name, numSMs, err)
	}
	return Result{
		Metrics:     d.AppMetrics(h),
		Utilization: d.DeviceStats().Utilization(p.cfg),
		NumSMs:      numSMs,
	}, nil
}

// RunAll profiles a list of kernels at one core count.
func (p *Profiler) RunAll(all []kernel.Params, numSMs int) ([]Result, error) {
	out := make([]Result, 0, len(all))
	for _, params := range all {
		r, err := p.Run(params, numSMs)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
