// Package stats defines the measurement vocabulary of the simulator:
// raw per-application counters collected during a run, and the derived
// metrics the paper's methodology consumes — IPC, DRAM bandwidth,
// L2→L1 bandwidth, the memory-to-compute ratio R, and device
// throughput/utilization (Section 1.2).
//
// Following GPGPU-Sim convention (and the magnitudes in Table 3.2), IPC
// counts thread-level instructions: one warp instruction on a 32-wide
// machine retires 32 instructions.
package stats

import (
	"fmt"

	"repro/internal/config"
)

// App accumulates raw counters for one application over one run.
type App struct {
	// Name labels the application.
	Name string
	// WarpInstructions counts issued warp-level instructions.
	WarpInstructions uint64
	// ThreadInstructions counts WarpInstructions times the warp width.
	ThreadInstructions uint64
	// MemWarpInstructions counts global-memory warp instructions.
	MemWarpInstructions uint64
	// StartCycle and EndCycle bound the application's residency.
	StartCycle uint64
	EndCycle   uint64
	// Done reports whether the grid completed.
	Done bool
	// DRAMBytes is data-bus traffic (reads + writes) attributed to the
	// application.
	DRAMBytes uint64
	// L2ToL1Bytes is fill traffic returned toward the SMs.
	L2ToL1Bytes uint64
	// L1Accesses and L1Hits aggregate over every SM the app ran on.
	L1Accesses uint64
	L1Hits     uint64
	// SMCycleSlots counts SM-cycles the application owned (for
	// utilization normalization under partitioning).
	SMCycleSlots uint64
}

// Cycles returns the application's residency window.
func (a App) Cycles() uint64 {
	if a.EndCycle <= a.StartCycle {
		return 0
	}
	return a.EndCycle - a.StartCycle
}

// Metrics are the derived quantities of Table 3.2.
type Metrics struct {
	// Name labels the application.
	Name string
	// IPC is thread instructions per cycle over the residency window.
	IPC float64
	// MemBandwidthGBps is DRAM data-bus bandwidth ("MemoryBandwidth").
	MemBandwidthGBps float64
	// L2ToL1GBps is fill bandwidth from the L2 toward the SMs.
	L2ToL1GBps float64
	// R is the memory-to-compute ratio: memory warp instructions over
	// all warp instructions.
	R float64
	// L1HitRate is the aggregate L1 hit rate.
	L1HitRate float64
	// Cycles is the residency window length.
	Cycles uint64
	// ThreadInstructions echoes the raw count.
	ThreadInstructions uint64
}

// Derive computes Metrics from raw counters under a device configuration.
func (a App) Derive(cfg config.GPUConfig) Metrics {
	m := Metrics{Name: a.Name, Cycles: a.Cycles(), ThreadInstructions: a.ThreadInstructions}
	if c := a.Cycles(); c > 0 {
		m.IPC = float64(a.ThreadInstructions) / float64(c)
		m.MemBandwidthGBps = cfg.BytesPerCycleToGBps(float64(a.DRAMBytes) / float64(c))
		m.L2ToL1GBps = cfg.BytesPerCycleToGBps(float64(a.L2ToL1Bytes) / float64(c))
	}
	if a.WarpInstructions > 0 {
		m.R = float64(a.MemWarpInstructions) / float64(a.WarpInstructions)
	}
	if a.L1Accesses > 0 {
		m.L1HitRate = float64(a.L1Hits) / float64(a.L1Accesses)
	}
	return m
}

// String renders one Table 3.2-style row.
func (m Metrics) String() string {
	return fmt.Sprintf("%-6s MB=%7.2fGB/s L2->L1=%7.2fGB/s IPC=%8.1f R=%.3f L1hit=%.2f cycles=%d",
		m.Name, m.MemBandwidthGBps, m.L2ToL1GBps, m.IPC, m.R, m.L1HitRate, m.Cycles)
}

// Device aggregates a whole run.
type Device struct {
	// Cycles is the simulated makespan.
	Cycles uint64
	// ThreadInstructions sums every application's retired instructions.
	ThreadInstructions uint64
	// Apps holds per-application counters in launch order.
	Apps []App
}

// Throughput returns device throughput per Equation 1.1: total
// instructions over total cycles.
func (d Device) Throughput() float64 {
	if d.Cycles == 0 {
		return 0
	}
	return float64(d.ThreadInstructions) / float64(d.Cycles)
}

// Utilization returns throughput normalized to the device's peak
// thread-IPC (Section 1.2.2).
func (d Device) Utilization(cfg config.GPUConfig) float64 {
	peak := cfg.PeakIPC() * float64(cfg.WarpSize)
	if peak == 0 {
		return 0
	}
	return d.Throughput() / peak
}
