package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of samples using
// linear interpolation between closest ranks, the same estimator NumPy
// defaults to. The input need not be sorted; an empty input returns 0.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile over an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	// NaN p compares false against both range checks below and would
	// otherwise flow into the index math; propagate it instead.
	if math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary condenses a latency (or any scalar) sample set into the
// headline order statistics the fleet scheduler reports per job:
// wait and turnaround percentiles, plus range and mean.
type Summary struct {
	N    int
	Min  float64
	Mean float64
	Max  float64
	P50  float64
	P95  float64
	P99  float64
}

// Summarize computes a Summary over samples. An empty input yields the
// zero Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		N:    len(sorted),
		Min:  sorted[0],
		Mean: sum / float64(len(sorted)),
		Max:  sorted[len(sorted)-1],
		P50:  percentileSorted(sorted, 50),
		P95:  percentileSorted(sorted, 95),
		P99:  percentileSorted(sorted, 99),
	}
}

// String renders the summary as one deterministic line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f mean=%.1f",
		s.N, s.Min, s.P50, s.P95, s.P99, s.Max, s.Mean)
}
