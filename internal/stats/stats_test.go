package stats

import (
	"math"
	"testing"

	"repro/internal/config"
)

func TestDeriveBasics(t *testing.T) {
	cfg := config.GTX480()
	a := App{
		Name:                "X",
		WarpInstructions:    1000,
		ThreadInstructions:  32000,
		MemWarpInstructions: 125,
		StartCycle:          100,
		EndCycle:            1100,
		DRAMBytes:           70000,
		L2ToL1Bytes:         140000,
		L1Accesses:          200,
		L1Hits:              50,
	}
	m := a.Derive(cfg)
	if m.IPC != 32 {
		t.Fatalf("IPC = %v, want 32", m.IPC)
	}
	if math.Abs(m.R-0.125) > 1e-12 {
		t.Fatalf("R = %v, want 0.125", m.R)
	}
	if math.Abs(m.L1HitRate-0.25) > 1e-12 {
		t.Fatalf("L1 hit rate = %v", m.L1HitRate)
	}
	wantMB := cfg.BytesPerCycleToGBps(70.0)
	if math.Abs(m.MemBandwidthGBps-wantMB) > 1e-9 {
		t.Fatalf("MB = %v, want %v", m.MemBandwidthGBps, wantMB)
	}
	if m.L2ToL1GBps <= m.MemBandwidthGBps {
		t.Fatal("L2->L1 should be double MB here")
	}
}

func TestDeriveZeroWindow(t *testing.T) {
	m := App{Name: "Z"}.Derive(config.GTX480())
	if m.IPC != 0 || m.MemBandwidthGBps != 0 || m.R != 0 {
		t.Fatalf("zero-window metrics nonzero: %+v", m)
	}
}

func TestCyclesClampsInvertedWindow(t *testing.T) {
	a := App{StartCycle: 10, EndCycle: 5}
	if a.Cycles() != 0 {
		t.Fatalf("inverted window cycles = %d", a.Cycles())
	}
}

func TestDeviceThroughputAndUtilization(t *testing.T) {
	cfg := config.GTX480()
	d := Device{Cycles: 1000, ThreadInstructions: 384000}
	if d.Throughput() != 384 {
		t.Fatalf("throughput = %v", d.Throughput())
	}
	util := d.Utilization(cfg)
	want := 384.0 / (cfg.PeakIPC() * float64(cfg.WarpSize))
	if math.Abs(util-want) > 1e-12 {
		t.Fatalf("utilization = %v, want %v", util, want)
	}
	var empty Device
	if empty.Throughput() != 0 || empty.Utilization(cfg) != 0 {
		t.Fatal("empty device stats nonzero")
	}
}
