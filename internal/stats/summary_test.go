package stats

import (
	"math"
	"testing"
)

func TestPercentile(t *testing.T) {
	tests := []struct {
		name    string
		samples []float64
		p       float64
		want    float64
	}{
		{"empty", nil, 50, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"pair p50 interpolates", []float64{10, 20}, 50, 15},
		{"pair p25 interpolates", []float64{10, 20}, 25, 12.5},
		{"unsorted input", []float64{30, 10, 20}, 50, 20},
		{"five p50", []float64{1, 2, 3, 4, 5}, 50, 3},
		{"five p95", []float64{1, 2, 3, 4, 5}, 95, 4.8},
		{"five p100", []float64{1, 2, 3, 4, 5}, 100, 5},
		{"below range clamps", []float64{1, 2, 3}, -5, 1},
		{"above range clamps", []float64{1, 2, 3}, 120, 3},
		{"duplicates", []float64{4, 4, 4, 4}, 99, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Percentile(tt.samples, tt.p)
			if math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tt.samples, tt.p, got, tt.want)
			}
		})
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

// TestPercentileNaNP locks that a NaN percentile propagates as NaN
// instead of panicking: NaN compares false against both range clamps,
// so without an explicit guard it reached the rank/index arithmetic
// and indexed out of range.
func TestPercentileNaNP(t *testing.T) {
	got := Percentile([]float64{1, 2, 3}, math.NaN())
	if !math.IsNaN(got) {
		t.Fatalf("Percentile(_, NaN) = %v, want NaN", got)
	}
	if got := Percentile(nil, math.NaN()); got != 0 {
		t.Fatalf("Percentile(nil, NaN) = %v, want 0 (empty-input lock)", got)
	}
}

// TestPercentileInfSamples locks behavior on infinite samples: they
// sort to the extremes and interpolation involving them follows IEEE
// arithmetic, with no panic.
func TestPercentileInfSamples(t *testing.T) {
	in := []float64{math.Inf(1), 1, math.Inf(-1)}
	if got := Percentile(in, 0); !math.IsInf(got, -1) {
		t.Fatalf("p0 = %v, want -Inf", got)
	}
	if got := Percentile(in, 100); !math.IsInf(got, 1) {
		t.Fatalf("p100 = %v, want +Inf", got)
	}
	if got := Percentile(in, 50); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
}

// TestPercentileInfP locks that infinite p hits the range clamps like
// any other out-of-range value.
func TestPercentileInfP(t *testing.T) {
	in := []float64{1, 2, 3}
	if got := Percentile(in, math.Inf(-1)); got != 1 {
		t.Fatalf("p=-Inf = %v, want min", got)
	}
	if got := Percentile(in, math.Inf(1)); got != 3 {
		t.Fatalf("p=+Inf = %v, want max", got)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestSummarize(t *testing.T) {
	tests := []struct {
		name    string
		samples []float64
		want    Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []float64{5}, Summary{N: 1, Min: 5, Mean: 5, Max: 5, P50: 5, P95: 5, P99: 5}},
		{
			"uniform 1..100",
			seq(1, 100),
			Summary{N: 100, Min: 1, Mean: 50.5, Max: 100, P50: 50.5, P95: 95.05, P99: 99.01},
		},
		{
			"unsorted",
			[]float64{20, 10, 40, 30},
			Summary{N: 4, Min: 10, Mean: 25, Max: 40, P50: 25, P95: 38.5, P99: 39.7},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Summarize(tt.samples)
			fields := []struct {
				name      string
				got, want float64
			}{
				{"Min", got.Min, tt.want.Min},
				{"Mean", got.Mean, tt.want.Mean},
				{"Max", got.Max, tt.want.Max},
				{"P50", got.P50, tt.want.P50},
				{"P95", got.P95, tt.want.P95},
				{"P99", got.P99, tt.want.P99},
			}
			if got.N != tt.want.N {
				t.Fatalf("N = %d, want %d", got.N, tt.want.N)
			}
			for _, f := range fields {
				if math.Abs(f.got-f.want) > 1e-9 {
					t.Fatalf("%s = %v, want %v", f.name, f.got, f.want)
				}
			}
		})
	}
}

func seq(lo, hi int) []float64 {
	var out []float64
	for v := lo; v <= hi; v++ {
		out = append(out, float64(v))
	}
	return out
}
