package smcore

import (
	"testing"

	"repro/internal/config"
	"repro/internal/kernel"
	"repro/internal/memreq"
	"repro/internal/stats"
)

func testCfg() config.GPUConfig {
	cfg := config.Small()
	cfg.MaxWarpsPerSM = 8
	cfg.MaxBlocksPerSM = 4
	return cfg
}

func computeParams(ctas, warps, instrs int) kernel.Params {
	return kernel.Params{
		Name: "cmp", CTAs: ctas, WarpsPerCTA: warps, InstrsPerWarp: instrs, Seed: 1,
	}
}

func memParams(ctas, warps, instrs int) kernel.Params {
	return kernel.Params{
		Name: "mem", CTAs: ctas, WarpsPerCTA: warps, InstrsPerWarp: instrs,
		MemEvery: 3, Pattern: kernel.PatternStream, CoalescedLines: 2,
		FootprintBytes: 1 << 20, Seed: 2,
	}
}

func newSM(t *testing.T, params kernel.Params) (*SM, *stats.App, *kernel.Kernel) {
	t.Helper()
	cfg := testCfg()
	sm, err := New(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(params, cfg.L1.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.App{Name: params.Name}
	if err := sm.Assign(0, k, st); err != nil {
		t.Fatal(err)
	}
	return sm, st, k
}

// runCompute drives a pure-compute SM to completion.
func runCompute(t *testing.T, sm *SM, k *kernel.Kernel, maxCycles int) uint64 {
	t.Helper()
	next := 0
	var now uint64
	for cycle := 0; cycle < maxCycles; cycle++ {
		now++
		if next < k.CTAs && sm.CanLaunch() {
			if err := sm.LaunchCTA(next, now); err != nil {
				t.Fatal(err)
			}
			next++
		}
		sm.Tick(now)
		if next == k.CTAs && sm.Idle() {
			return now
		}
	}
	t.Fatalf("SM did not finish in %d cycles (resident=%d)", maxCycles, sm.ResidentCTAs())
	return 0
}

func TestComputeKernelRetiresAllInstructions(t *testing.T) {
	params := computeParams(6, 2, 50)
	sm, st, k := newSM(t, params)
	runCompute(t, sm, k, 100000)
	want := uint64(params.CTAs * params.WarpsPerCTA * params.InstrsPerWarp)
	if st.WarpInstructions != want {
		t.Fatalf("warp instructions = %d, want %d", st.WarpInstructions, want)
	}
	if st.ThreadInstructions != want*uint64(testCfg().WarpSize) {
		t.Fatalf("thread instructions = %d", st.ThreadInstructions)
	}
}

func TestOccupancyLimitsRespected(t *testing.T) {
	params := computeParams(100, 2, 2000)
	sm, _, k := newSM(t, params)
	cfg := testCfg()
	next := 0
	var now uint64
	maxResident := 0
	for cycle := 0; cycle < 3000; cycle++ {
		now++
		if next < k.CTAs && sm.CanLaunch() {
			_ = sm.LaunchCTA(next, now)
			next++
		}
		sm.Tick(now)
		if sm.ResidentCTAs() > maxResident {
			maxResident = sm.ResidentCTAs()
		}
	}
	if maxResident > cfg.MaxBlocksPerSM {
		t.Fatalf("resident CTAs peaked at %d > limit %d", maxResident, cfg.MaxBlocksPerSM)
	}
	if maxResident != cfg.MaxBlocksPerSM {
		t.Fatalf("occupancy never reached the block limit (peak %d)", maxResident)
	}
}

func TestBarrierSynchronizesBlock(t *testing.T) {
	params := computeParams(1, 4, 40)
	params.BarrierEvery = 10
	sm, st, k := newSM(t, params)
	runCompute(t, sm, k, 100000)
	want := uint64(params.CTAs * params.WarpsPerCTA * params.InstrsPerWarp)
	if st.WarpInstructions != want {
		t.Fatalf("with barriers: %d instructions, want %d", st.WarpInstructions, want)
	}
}

func TestMemoryKernelEmitsRequestsAndBlocks(t *testing.T) {
	params := memParams(2, 2, 30)
	sm, _, k := newSM(t, params)
	var now uint64
	launched := 0
	var outbound []memreq.Request
	for cycle := 0; cycle < 2000 && !sm.Idle() || launched == 0; cycle++ {
		now++
		if launched < k.CTAs && sm.CanLaunch() {
			_ = sm.LaunchCTA(launched, now)
			launched++
		}
		sm.Tick(now)
		for {
			req, ok := sm.PeekOut()
			if !ok {
				break
			}
			sm.PopOut()
			outbound = append(outbound, req)
			if req.Kind == memreq.Read {
				// Answer immediately: fill the line.
				sm.HandleResponse(memreq.Request{Kind: memreq.ReadReply, Line: req.Line, App: req.App, Size: 128})
			}
		}
		if launched == k.CTAs && sm.Idle() {
			break
		}
	}
	if !sm.Idle() {
		t.Fatal("memory kernel did not finish with instant responses")
	}
	reads, writes := 0, 0
	for _, r := range outbound {
		switch r.Kind {
		case memreq.Read:
			reads++
		case memreq.Write:
			writes++
		}
	}
	if reads == 0 {
		t.Fatal("no read requests emitted")
	}
	if writes != 0 {
		t.Fatal("unexpected writes from a load-only kernel")
	}
}

func TestDrainThenTransfer(t *testing.T) {
	paramsA := computeParams(8, 2, 400)
	sm, _, kA := newSM(t, paramsA)
	cfg := testCfg()
	kB, err := kernel.New(computeParams(4, 2, 100), cfg.L1.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	stB := &stats.App{Name: "B"}
	var now uint64
	next := 0
	// Warm up with a few CTAs of app A.
	for cycle := 0; cycle < 50; cycle++ {
		now++
		if next < kA.CTAs && sm.CanLaunch() {
			_ = sm.LaunchCTA(next, now)
			next++
		}
		sm.Tick(now)
	}
	if sm.Idle() {
		t.Fatal("SM idle during warm-up")
	}
	sm.RequestReassign(1, kB, stB)
	if !sm.Draining() {
		t.Fatal("not draining after reassign request")
	}
	if sm.CanLaunch() {
		t.Fatal("draining SM accepted new blocks")
	}
	// Run until the transfer happens.
	for cycle := 0; cycle < 100000 && sm.App() != 1; cycle++ {
		now++
		sm.Tick(now)
	}
	if sm.App() != 1 {
		t.Fatal("ownership never transferred")
	}
	if !sm.Idle() {
		t.Fatal("new owner should start idle")
	}
	if sm.Draining() {
		t.Fatal("still draining after transfer")
	}
	// New owner's blocks launch and run.
	next = 0
	for cycle := 0; cycle < 100000; cycle++ {
		now++
		if next < kB.CTAs && sm.CanLaunch() {
			_ = sm.LaunchCTA(next, now)
			next++
		}
		sm.Tick(now)
		if next == kB.CTAs && sm.Idle() {
			break
		}
	}
	want := uint64(4 * 2 * 100)
	if stB.WarpInstructions != want {
		t.Fatalf("app B instructions = %d, want %d", stB.WarpInstructions, want)
	}
}

func TestReassignToSelfCancelsDrain(t *testing.T) {
	params := computeParams(8, 2, 400)
	sm, st, k := newSM(t, params)
	var now uint64
	_ = sm.LaunchCTA(0, now)
	sm.RequestReassign(1, k, st)
	if !sm.Draining() {
		t.Fatal("expected draining")
	}
	sm.RequestReassign(0, k, st)
	if sm.Draining() {
		t.Fatal("reassign-to-self did not cancel the drain")
	}
}

func TestOnCTADoneCallback(t *testing.T) {
	params := computeParams(3, 2, 30)
	sm, _, k := newSM(t, params)
	done := 0
	sm.OnCTADone = func(app int16) {
		if app != 0 {
			t.Fatalf("callback app = %d", app)
		}
		done++
	}
	runCompute(t, sm, k, 100000)
	if done != params.CTAs {
		t.Fatalf("OnCTADone fired %d times, want %d", done, params.CTAs)
	}
}

func TestGTOvsLRRBothComplete(t *testing.T) {
	for _, sched := range []config.WarpSchedPolicy{config.SchedGTO, config.SchedLRR} {
		cfg := testCfg()
		cfg.WarpSched = sched
		sm, err := New(0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		params := computeParams(6, 2, 80)
		k, err := kernel.New(params, cfg.L1.LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		st := &stats.App{}
		if err := sm.Assign(0, k, st); err != nil {
			t.Fatal(err)
		}
		next := 0
		var now uint64
		for cycle := 0; cycle < 100000; cycle++ {
			now++
			if next < k.CTAs && sm.CanLaunch() {
				_ = sm.LaunchCTA(next, now)
				next++
			}
			sm.Tick(now)
			if next == k.CTAs && sm.Idle() {
				break
			}
		}
		want := uint64(params.CTAs * params.WarpsPerCTA * params.InstrsPerWarp)
		if st.WarpInstructions != want {
			t.Fatalf("%v: %d instructions, want %d", sched, st.WarpInstructions, want)
		}
	}
}
