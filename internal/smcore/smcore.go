// Package smcore models one streaming multiprocessor (SIMT core): CTA
// and warp slots with occupancy limits, dual GTO/LRR warp schedulers, a
// scoreboard (per-warp pending-load counts and fixed-latency busy
// windows), an L1 data cache with MSHRs, and a bounded memory output
// queue toward the interconnect.
//
// An SM is owned by at most one application at a time. Ownership can be
// transferred with the drain-then-transfer protocol the thesis adopts
// (Section 3.2.4, "the last way"): the SM stops accepting new CTAs,
// finishes its resident blocks, and only then switches to the new owner.
package smcore

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/memreq"
	"repro/internal/stats"
)

// NoApp marks an unowned SM.
const NoApp int16 = -1

type warp struct {
	active       bool
	finished     bool
	atBarrier    bool
	cachedValid  bool // cachedOp/cachedLines replay a structurally stalled instruction
	cachedOp     isa.Op
	ctaSlot      int32
	globalID     int32 // kernel-wide warp index, drives Fetch
	pc           int32
	pendingLoads int32
	blockedUntil uint64
	launchSeq    uint64
	cachedLines  []uint64
}

func (w *warp) ready(now uint64) bool {
	return w.active && !w.finished && !w.atBarrier &&
		w.pendingLoads == 0 && w.blockedUntil <= now
}

type ctaSlot struct {
	active    bool
	warpsLeft int32
	arrived   int32
	warpSlots []int32
}

// SM is one streaming multiprocessor.
type SM struct {
	id  int32
	cfg config.GPUConfig
	l1  *cache.Cache

	app      int16
	kern     *kernel.Kernel
	appStats *stats.App
	maxCTAs  int

	warps        []warp
	ctas         []ctaSlot
	residentCTAs int
	launchSeq    uint64

	// ready holds, per scheduler, a min-heap of issuable warp slots.
	// Under GTO the heap key is warp age (launchSeq), so the pop order
	// is greedy-then-oldest collapsed to oldest-ready-first — the greedy
	// warp, once it wakes, is the oldest ready warp whenever it is still
	// runnable. Under LRR the key is push order, giving FIFO rotation.
	// wheel is a timer wheel: warps blocked on a fixed latency are
	// parked in the bucket of their wake-up cycle. Together they make
	// per-cycle scheduler work proportional to runnable warps rather
	// than to warp slots. Purely a performance device — no architectural
	// effect.
	ready    []readyHeap
	readySeq uint64
	wheel    [wheelSize][]int32

	activeWarps int

	out      []memreq.Request
	outHead  int
	outLimit int

	lineBuf []uint64

	pendingApp    int16
	pendingKernel *kernel.Kernel
	pendingStats  *stats.App

	// OnCTADone is invoked when a thread block completes, with the
	// owning application at completion time.
	OnCTADone func(app int16)

	// issued counts warp instructions issued by this SM (all owners).
	issued uint64
}

// New builds an idle SM.
func New(id int, cfg config.GPUConfig) (*SM, error) {
	l1, err := cache.New(cfg.L1)
	if err != nil {
		return nil, fmt.Errorf("sm %d: %w", id, err)
	}
	sm := &SM{
		id:         int32(id),
		cfg:        cfg,
		l1:         l1,
		app:        NoApp,
		pendingApp: NoApp,
		warps:      make([]warp, cfg.MaxWarpsPerSM),
		ctas:       make([]ctaSlot, cfg.MaxBlocksPerSM),
		ready:      make([]readyHeap, cfg.SchedulersPerSM),
		outLimit:   cfg.MaxWarpsPerSM, // one outstanding miss per warp on average
		lineBuf:    make([]uint64, cfg.WarpSize),
	}
	for i := range sm.ctas {
		sm.ctas[i].warpSlots = make([]int32, 0, cfg.MaxWarpsPerSM)
	}
	return sm, nil
}

// wheelSize buckets cover every fixed functional-unit latency; longer
// waits re-park when their bucket drains early.
const wheelSize = 64

// readyEntry pairs a warp slot with its scheduling key.
type readyEntry struct {
	key  uint64
	slot int32
}

// readyHeap is a binary min-heap over scheduling keys.
type readyHeap []readyEntry

func (h *readyHeap) push(e readyEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].key <= (*h)[i].key {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *readyHeap) pop() (readyEntry, bool) {
	old := *h
	if len(old) == 0 {
		return readyEntry{}, false
	}
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	old = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(old) && old[l].key < old[smallest].key {
			smallest = l
		}
		if r < len(old) && old[r].key < old[smallest].key {
			smallest = r
		}
		if smallest == i {
			break
		}
		old[i], old[smallest] = old[smallest], old[i]
		i = smallest
	}
	*h = old
	return top, true
}

// pushWake parks a warp until cycle at.
func (sm *SM) pushWake(slot int32, at uint64) {
	sm.wheel[at%wheelSize] = append(sm.wheel[at%wheelSize], slot)
}

// pushReady marks a warp immediately issuable.
func (sm *SM) pushReady(slot int32) {
	s := int(slot) % sm.cfg.SchedulersPerSM
	var key uint64
	if sm.cfg.WarpSched == config.SchedGTO {
		key = sm.warps[slot].launchSeq
	} else {
		sm.readySeq++
		key = sm.readySeq
	}
	sm.ready[s].push(readyEntry{key: key, slot: slot})
}

// drainWheel moves warps whose timers expired onto their ready lists.
func (sm *SM) drainWheel(now uint64) {
	b := &sm.wheel[now%wheelSize]
	if len(*b) == 0 {
		return
	}
	for _, slot := range *b {
		w := &sm.warps[slot]
		if !w.active || w.finished {
			continue
		}
		if w.blockedUntil > now {
			sm.pushWake(slot, w.blockedUntil) // long wait wrapped around
			continue
		}
		if w.atBarrier || w.pendingLoads > 0 {
			continue // an event push will resurface it
		}
		sm.pushReady(slot)
	}
	*b = (*b)[:0]
}

func (sm *SM) clearSchedState() {
	for i := range sm.ready {
		sm.ready[i] = sm.ready[i][:0]
	}
	for i := range sm.wheel {
		sm.wheel[i] = sm.wheel[i][:0]
	}
}

// ID returns the SM index.
func (sm *SM) ID() int { return int(sm.id) }

// App returns the current owner, or NoApp.
func (sm *SM) App() int16 { return sm.app }

// L1 exposes the data cache (read-only use: stats, tests).
func (sm *SM) L1() *cache.Cache { return sm.l1 }

// Issued returns warp instructions issued over the SM's lifetime.
func (sm *SM) Issued() uint64 { return sm.issued }

// ResidentCTAs returns the number of active thread blocks.
func (sm *SM) ResidentCTAs() int { return sm.residentCTAs }

// Idle reports whether the SM has no resident work.
func (sm *SM) Idle() bool { return sm.residentCTAs == 0 }

// Draining reports whether an ownership transfer is pending.
func (sm *SM) Draining() bool { return sm.pendingApp != NoApp }

// Assign makes app the immediate owner. The SM must be idle.
func (sm *SM) Assign(app int16, k *kernel.Kernel, st *stats.App) error {
	if !sm.Idle() {
		return fmt.Errorf("smcore: assign on busy SM %d", sm.id)
	}
	sm.app = app
	sm.kern = k
	sm.appStats = st
	sm.pendingApp = NoApp
	sm.pendingKernel = nil
	sm.pendingStats = nil
	if k != nil {
		sm.maxCTAs = k.MaxCTAsPerSM(sm.cfg)
	} else {
		sm.maxCTAs = 0
	}
	sm.l1.InvalidateAll()
	sm.clearSchedState()
	return nil
}

// Release detaches the owner once the SM is idle, leaving it unowned.
func (sm *SM) Release() error {
	return sm.Assign(NoApp, nil, nil)
}

// RequestReassign schedules a drain-then-transfer to app. New CTAs stop
// launching immediately; the switch happens when the last resident CTA
// retires. Passing the current owner cancels a pending transfer.
func (sm *SM) RequestReassign(app int16, k *kernel.Kernel, st *stats.App) {
	if app == sm.app {
		sm.pendingApp = NoApp
		sm.pendingKernel = nil
		sm.pendingStats = nil
		return
	}
	if sm.Idle() {
		// Nothing to drain; switch now.
		_ = sm.Assign(app, k, st)
		return
	}
	sm.pendingApp = app
	sm.pendingKernel = k
	sm.pendingStats = st
}

// CanLaunch reports whether a new CTA of the current kernel could be
// accepted this cycle.
func (sm *SM) CanLaunch() bool {
	if sm.app == NoApp || sm.kern == nil || sm.Draining() {
		return false
	}
	if sm.residentCTAs >= sm.maxCTAs {
		return false
	}
	return sm.freeWarpSlots() >= sm.kern.WarpsPerCTA
}

func (sm *SM) freeWarpSlots() int { return len(sm.warps) - sm.activeWarps }

// LaunchCTA installs thread block ctaID of the current kernel. The
// caller must have checked CanLaunch.
func (sm *SM) LaunchCTA(ctaID int, now uint64) error {
	if !sm.CanLaunch() {
		return fmt.Errorf("smcore: launch on SM %d without capacity", sm.id)
	}
	slot := -1
	for i := range sm.ctas {
		if !sm.ctas[i].active {
			slot = i
			break
		}
	}
	if slot < 0 {
		return fmt.Errorf("smcore: no CTA slot on SM %d", sm.id)
	}
	c := &sm.ctas[slot]
	c.active = true
	c.warpsLeft = int32(sm.kern.WarpsPerCTA)
	c.arrived = 0
	c.warpSlots = c.warpSlots[:0]
	launched := 0
	for i := range sm.warps {
		if launched == sm.kern.WarpsPerCTA {
			break
		}
		w := &sm.warps[i]
		if w.active {
			continue
		}
		sm.launchSeq++
		buf := w.cachedLines // keep the replay buffer across reuse
		*w = warp{
			active:       true,
			ctaSlot:      int32(slot),
			globalID:     int32(ctaID*sm.kern.WarpsPerCTA + launched),
			blockedUntil: now + 1,
			launchSeq:    sm.launchSeq,
			cachedLines:  buf[:0],
		}
		c.warpSlots = append(c.warpSlots, int32(i))
		sm.pushWake(int32(i), now+1)
		launched++
	}
	sm.activeWarps += launched
	sm.residentCTAs++
	return nil
}

// OutPending returns the occupancy of the memory output queue.
func (sm *SM) OutPending() int { return len(sm.out) - sm.outHead }

// PeekOut returns the oldest outgoing memory request without removing it.
func (sm *SM) PeekOut() (memreq.Request, bool) {
	if sm.outHead >= len(sm.out) {
		return memreq.Request{}, false
	}
	return sm.out[sm.outHead], true
}

// PopOut removes the oldest outgoing memory request. Callers peek first,
// attempt injection into the interconnect, and pop only on success.
func (sm *SM) PopOut() {
	if sm.outHead >= len(sm.out) {
		return
	}
	sm.outHead++
	if sm.outHead == len(sm.out) {
		sm.out = sm.out[:0]
		sm.outHead = 0
	}
}
