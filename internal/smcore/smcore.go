// Package smcore models one streaming multiprocessor (SIMT core): CTA
// and warp slots with occupancy limits, dual GTO/LRR warp schedulers, a
// scoreboard (per-warp pending-load counts and fixed-latency busy
// windows), an L1 data cache with MSHRs, and a bounded memory output
// queue toward the interconnect.
//
// An SM is owned by at most one application at a time. Ownership can be
// transferred with the drain-then-transfer protocol the thesis adopts
// (Section 3.2.4, "the last way"): the SM stops accepting new CTAs,
// finishes its resident blocks, and only then switches to the new owner.
package smcore

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/fifo"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/memreq"
	"repro/internal/stats"
)

// NoApp marks an unowned SM.
const NoApp int16 = -1

// NoEvent is the NextEvent result of a component that cannot make
// progress on its own at any future cycle.
const NoEvent = ^uint64(0)

type warp struct {
	active       bool
	finished     bool
	atBarrier    bool
	cachedValid  bool // cachedOp/cachedLines replay a structurally stalled instruction
	cachedOp     isa.Op
	ctaSlot      int32
	globalID     int32 // kernel-wide warp index, drives Fetch
	pc           int32
	pendingLoads int32
	blockedUntil uint64
	launchSeq    uint64
	cachedLines  []uint64
	// opRow is the warp's row of the kernel's opcode table (nil for
	// grids above the table cap); it makes the compute fast path a
	// single byte index.
	opRow []uint8
}

func (w *warp) ready(now uint64) bool {
	return w.active && !w.finished && !w.atBarrier &&
		w.pendingLoads == 0 && w.blockedUntil <= now
}

type ctaSlot struct {
	active    bool
	warpsLeft int32
	arrived   int32
	warpSlots []int32
}

// SM is one streaming multiprocessor.
type SM struct {
	id  int32
	cfg config.GPUConfig
	l1  *cache.Cache

	app      int16
	kern     *kernel.Kernel
	appStats *stats.App
	maxCTAs  int

	warps        []warp
	ctas         []ctaSlot
	residentCTAs int
	launchSeq    uint64

	// readyBuf holds, per scheduler, a fixed-region min-heap of issuable
	// warp slots (region s is readyBuf[s*maxSlots:], occupancy
	// readyLen[s]). Under GTO the heap key is warp age (launchSeq), so
	// the pop order is greedy-then-oldest collapsed to
	// oldest-ready-first — the greedy warp, once it wakes, is the oldest
	// ready warp whenever it is still runnable. Under LRR the key is
	// push order, giving FIFO rotation. wheelBuf is a timer wheel laid
	// out the same way (bucket b is wheelBuf[b*maxSlots:], occupancy
	// wheelLen[b]): warps blocked on a fixed latency are parked in the
	// bucket of their wake-up cycle. Together they make per-cycle
	// scheduler work proportional to runnable warps rather than to warp
	// slots, and the flat preallocated regions keep the hot loop free of
	// append growth and pointer write barriers. A warp is in at most one
	// structure at a time, so every region is bounded by maxSlots.
	// Purely a performance device — no architectural effect.
	readyBuf []readyEntry
	readyLen []int32
	readySeq uint64
	wheelBuf []int32
	wheelLen [wheelSize]int32
	// wheelScratch is where drainWheel copies a bucket before processing
	// it: a wait longer than wheelSize re-parks into the same bucket.
	// wrapFree records that no fixed latency of this configuration can
	// reach wheelSize, so buckets never self-re-park and drain in place.
	wheelScratch []int32
	wrapFree     bool
	maxSlots     int

	// useScan selects the GTO fast path: under greedy-then-oldest the
	// scheduling key (launchSeq) is static per warp and a ready warp
	// stays ready until it issues, so the ready heap always holds
	// exactly the ready set and popping its minimum is equivalent to
	// scanning the scheduler's warps in age order for the first ready
	// one. The scan needs no wheel parking, no wake pushes and no heap
	// maintenance — the structures above then serve only the LRR
	// policy, whose keys depend on push order.
	//
	// ageSlot/ageWake/ageLen hold, per scheduler, its live warps in
	// launch (age) order as parallel arrays: ageWake[i] is warp
	// ageSlot[i]'s effective wake cycle (NoEvent while it waits on a
	// load fill or barrier release), so the scan walks a dense uint64
	// array instead of chasing warp structs. agePos maps a slot to its
	// position in its region. scanAt[s] is the
	// earliest cycle at which scheduler s's scan could find a ready
	// warp: a failed scan records the region's minimum wake, and every
	// event wake-up (load fill, barrier release, warp launch) resets
	// it. Scans are skipped while scanAt > now — exactly the cycles in
	// which they would fail — so a fully memory-blocked SM costs O(1)
	// per cycle, like the heap path.
	// idleUntil is min(scanAt): Tick returns immediately while now is
	// strictly below it. Event wake-ups reset it alongside scanAt.
	useScan   bool
	ageSlot   []int32
	ageWake   []uint64
	ageLen    []int32
	agePos    []int32
	scanAt    []uint64
	idleUntil uint64
	// slotSched caches slot % SchedulersPerSM (a non-constant modulo on
	// the hottest paths otherwise); aluLat/sfuLat/sharedLat cache the
	// functional-unit latencies pre-widened for the compute fast path.
	slotSched []int32
	aluLat    uint64
	sfuLat    uint64
	sharedLat uint64

	activeWarps int

	out      fifo.Queue[memreq.Request]
	outLimit int

	lineBuf []uint64

	pendingApp    int16
	pendingKernel *kernel.Kernel
	pendingStats  *stats.App

	// OnCTADone is invoked when a thread block completes, with the
	// owning application at completion time.
	OnCTADone func(app int16)

	// OnOwnerChange is invoked whenever the SM's owning application
	// switches (Assign, drain-then-transfer completion, Release), with
	// the outgoing and incoming owners. The device uses it to maintain
	// per-application ownership counts without scanning every SM each
	// cycle.
	OnOwnerChange func(old, new int16)

	// issued counts warp instructions issued by this SM (all owners).
	issued uint64
}

// New builds an idle SM.
func New(id int, cfg config.GPUConfig) (*SM, error) {
	l1, err := cache.New(cfg.L1)
	if err != nil {
		return nil, fmt.Errorf("sm %d: %w", id, err)
	}
	sm := &SM{
		id:         int32(id),
		cfg:        cfg,
		l1:         l1,
		app:        NoApp,
		pendingApp: NoApp,
		warps:      make([]warp, cfg.MaxWarpsPerSM),
		ctas:       make([]ctaSlot, cfg.MaxBlocksPerSM),
		maxSlots:   cfg.MaxWarpsPerSM,
		outLimit:   cfg.MaxWarpsPerSM, // one outstanding miss per warp on average
		lineBuf:    make([]uint64, cfg.WarpSize),
		aluLat:     uint64(cfg.ALULatency),
		sfuLat:     uint64(cfg.SFULatency),
		sharedLat:  uint64(cfg.SharedLatency),
	}
	// The timer wheel only ever parks fixed functional-unit and replay
	// waits; when they all fit inside one wheel revolution no entry can
	// wrap around, which lets drainWheel skip its defensive bucket copy.
	maxWait := cfg.ALULatency
	for _, l := range [...]int{cfg.SFULatency, cfg.SharedLatency, cfg.L1.LatencyCycles + 1, replayPenalty} {
		if l > maxWait {
			maxWait = l
		}
	}
	sm.wrapFree = maxWait < wheelSize
	// Exactly one scheduling structure is allocated: the GTO scan path
	// or the LRR wheel+heap machinery, never both.
	sm.useScan = cfg.WarpSched == config.SchedGTO
	if sm.useScan {
		sm.ageSlot = make([]int32, cfg.SchedulersPerSM*cfg.MaxWarpsPerSM)
		sm.ageWake = make([]uint64, cfg.SchedulersPerSM*cfg.MaxWarpsPerSM)
		sm.ageLen = make([]int32, cfg.SchedulersPerSM)
		sm.agePos = make([]int32, cfg.MaxWarpsPerSM)
		sm.scanAt = make([]uint64, cfg.SchedulersPerSM)
		sm.slotSched = make([]int32, cfg.MaxWarpsPerSM)
		for i := range sm.slotSched {
			sm.slotSched[i] = int32(i % cfg.SchedulersPerSM)
		}
	} else {
		sm.readyBuf = make([]readyEntry, cfg.SchedulersPerSM*cfg.MaxWarpsPerSM)
		sm.readyLen = make([]int32, cfg.SchedulersPerSM)
		sm.wheelBuf = make([]int32, wheelSize*cfg.MaxWarpsPerSM)
		sm.wheelScratch = make([]int32, cfg.MaxWarpsPerSM)
	}
	for i := range sm.ctas {
		sm.ctas[i].warpSlots = make([]int32, 0, cfg.MaxWarpsPerSM)
	}
	return sm, nil
}

// wheelSize buckets cover every fixed functional-unit latency; longer
// waits re-park when their bucket drains early.
const wheelSize = 64

// readyEntry pairs a warp slot with its scheduling key.
type readyEntry struct {
	key  uint64
	slot int32
}

// heapPush adds an entry to scheduler s's ready min-heap.
func (sm *SM) heapPush(s int, key uint64, slot int32) {
	h := sm.readyBuf[s*sm.maxSlots : (s+1)*sm.maxSlots]
	i := int(sm.readyLen[s])
	sm.readyLen[s] = int32(i + 1)
	h[i] = readyEntry{key: key, slot: slot}
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].key <= h[i].key {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// heapPop removes the minimum-key entry of scheduler s's ready heap.
func (sm *SM) heapPop(s int) (readyEntry, bool) {
	n := int(sm.readyLen[s])
	if n == 0 {
		return readyEntry{}, false
	}
	h := sm.readyBuf[s*sm.maxSlots : (s+1)*sm.maxSlots]
	top := h[0]
	n--
	sm.readyLen[s] = int32(n)
	if n > 0 {
		h[0] = h[n]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < n && h[l].key < h[smallest].key {
				smallest = l
			}
			if r < n && h[r].key < h[smallest].key {
				smallest = r
			}
			if smallest == i {
				break
			}
			h[i], h[smallest] = h[smallest], h[i]
			i = smallest
		}
	}
	return top, true
}

// pushWake parks a warp until cycle at.
func (sm *SM) pushWake(slot int32, at uint64) {
	b := int(at % wheelSize)
	i := sm.wheelLen[b]
	sm.wheelBuf[b*sm.maxSlots+int(i)] = slot
	sm.wheelLen[b] = i + 1
}

// pushReady marks a warp immediately issuable.
func (sm *SM) pushReady(slot int32) {
	s := int(slot) % sm.cfg.SchedulersPerSM
	var key uint64
	if sm.cfg.WarpSched == config.SchedGTO {
		key = sm.warps[slot].launchSeq
	} else {
		sm.readySeq++
		key = sm.readySeq
	}
	sm.heapPush(s, key, slot)
}

// agePush appends a newly launched warp to its scheduler's age order
// (GTO scan path). launchSeq grows monotonically, so appending keeps
// the region sorted by age.
func (sm *SM) agePush(slot int32, wake uint64) {
	s := int(sm.slotSched[slot])
	i := s*sm.maxSlots + int(sm.ageLen[s])
	sm.agePos[slot] = sm.ageLen[s]
	sm.ageSlot[i] = slot
	sm.ageWake[i] = wake
	sm.ageLen[s]++
	sm.scanAt[s] = 0
	sm.idleUntil = 0
}

// ageRemove drops a retired warp from its scheduler's age order,
// preserving the order of the rest.
func (sm *SM) ageRemove(slot int32) {
	s := int(sm.slotSched[slot])
	base := s * sm.maxSlots
	n := int(sm.ageLen[s])
	slots := sm.ageSlot[base : base+n]
	wakes := sm.ageWake[base : base+n]
	i := int(sm.agePos[slot])
	copy(slots[i:], slots[i+1:])
	copy(wakes[i:], wakes[i+1:])
	sm.ageLen[s]--
	for ; i < n-1; i++ {
		sm.agePos[slots[i]] = int32(i)
	}
}

// wakeAt records an event wake-up: the warp becomes issuable at cycle
// wake and its scheduler's scan watermark is un-armed.
func (sm *SM) wakeAt(slot int32, wake uint64) {
	s := int(sm.slotSched[slot])
	sm.ageWake[s*sm.maxSlots+int(sm.agePos[slot])] = wake
	sm.scanAt[s] = 0
	sm.idleUntil = 0
}

// drainWheel moves warps whose timers expired onto their ready lists.
// The bucket is copied out before processing: a wait longer than
// wheelSize re-parks into the *same* bucket (its wake cycle is congruent
// mod wheelSize), and clearing after iteration would silently drop it.
func (sm *SM) drainWheel(now uint64) {
	b := int(now % wheelSize)
	n := int(sm.wheelLen[b])
	if n == 0 {
		return
	}
	entries := sm.wheelBuf[b*sm.maxSlots : b*sm.maxSlots+n]
	if !sm.wrapFree {
		copy(sm.wheelScratch, entries)
		entries = sm.wheelScratch[:n]
	}
	sm.wheelLen[b] = 0
	for _, slot := range entries {
		w := &sm.warps[slot]
		if !w.active || w.finished {
			continue
		}
		if w.blockedUntil > now {
			sm.pushWake(slot, w.blockedUntil) // long wait wrapped around
			continue
		}
		if w.atBarrier || w.pendingLoads > 0 {
			continue // an event push will resurface it
		}
		sm.pushReady(slot)
	}
}

func (sm *SM) clearSchedState() {
	for i := range sm.readyLen {
		sm.readyLen[i] = 0
	}
	for i := range sm.wheelLen {
		sm.wheelLen[i] = 0
	}
	for i := range sm.ageLen {
		sm.ageLen[i] = 0
	}
	for i := range sm.scanAt {
		sm.scanAt[i] = 0
	}
	sm.idleUntil = 0
}

// ID returns the SM index.
func (sm *SM) ID() int { return int(sm.id) }

// App returns the current owner, or NoApp.
func (sm *SM) App() int16 { return sm.app }

// L1 exposes the data cache (read-only use: stats, tests).
func (sm *SM) L1() *cache.Cache { return sm.l1 }

// Issued returns warp instructions issued over the SM's lifetime.
func (sm *SM) Issued() uint64 { return sm.issued }

// ResidentCTAs returns the number of active thread blocks.
func (sm *SM) ResidentCTAs() int { return sm.residentCTAs }

// Idle reports whether the SM has no resident work.
func (sm *SM) Idle() bool { return sm.residentCTAs == 0 }

// Draining reports whether an ownership transfer is pending.
func (sm *SM) Draining() bool { return sm.pendingApp != NoApp }

// Assign makes app the immediate owner. The SM must be idle.
func (sm *SM) Assign(app int16, k *kernel.Kernel, st *stats.App) error {
	if !sm.Idle() {
		return fmt.Errorf("smcore: assign on busy SM %d", sm.id)
	}
	if sm.OnOwnerChange != nil && sm.app != app {
		sm.OnOwnerChange(sm.app, app)
	}
	sm.app = app
	sm.kern = k
	sm.appStats = st
	sm.pendingApp = NoApp
	sm.pendingKernel = nil
	sm.pendingStats = nil
	if k != nil {
		sm.maxCTAs = k.MaxCTAsPerSM(sm.cfg)
	} else {
		sm.maxCTAs = 0
	}
	sm.l1.InvalidateAll()
	sm.clearSchedState()
	return nil
}

// Release detaches the owner once the SM is idle, leaving it unowned.
func (sm *SM) Release() error {
	return sm.Assign(NoApp, nil, nil)
}

// RequestReassign schedules a drain-then-transfer to app. New CTAs stop
// launching immediately; the switch happens when the last resident CTA
// retires. Passing the current owner cancels a pending transfer.
func (sm *SM) RequestReassign(app int16, k *kernel.Kernel, st *stats.App) {
	if app == sm.app {
		sm.pendingApp = NoApp
		sm.pendingKernel = nil
		sm.pendingStats = nil
		return
	}
	if sm.Idle() {
		// Nothing to drain; switch now.
		_ = sm.Assign(app, k, st)
		return
	}
	sm.pendingApp = app
	sm.pendingKernel = k
	sm.pendingStats = st
}

// CanLaunch reports whether a new CTA of the current kernel could be
// accepted this cycle.
func (sm *SM) CanLaunch() bool {
	if sm.app == NoApp || sm.kern == nil || sm.Draining() {
		return false
	}
	if sm.residentCTAs >= sm.maxCTAs {
		return false
	}
	return sm.freeWarpSlots() >= sm.kern.WarpsPerCTA
}

func (sm *SM) freeWarpSlots() int { return len(sm.warps) - sm.activeWarps }

// LaunchCTA installs thread block ctaID of the current kernel. The
// caller must have checked CanLaunch.
func (sm *SM) LaunchCTA(ctaID int, now uint64) error {
	if !sm.CanLaunch() {
		return fmt.Errorf("smcore: launch on SM %d without capacity", sm.id)
	}
	slot := -1
	for i := range sm.ctas {
		if !sm.ctas[i].active {
			slot = i
			break
		}
	}
	if slot < 0 {
		return fmt.Errorf("smcore: no CTA slot on SM %d", sm.id)
	}
	c := &sm.ctas[slot]
	c.active = true
	c.warpsLeft = int32(sm.kern.WarpsPerCTA)
	c.arrived = 0
	c.warpSlots = c.warpSlots[:0]
	launched := 0
	for i := range sm.warps {
		if launched == sm.kern.WarpsPerCTA {
			break
		}
		w := &sm.warps[i]
		if w.active {
			continue
		}
		sm.launchSeq++
		buf := w.cachedLines // keep the replay buffer across reuse
		globalID := ctaID*sm.kern.WarpsPerCTA + launched
		*w = warp{
			active:       true,
			ctaSlot:      int32(slot),
			globalID:     int32(globalID),
			blockedUntil: now + 1,
			launchSeq:    sm.launchSeq,
			cachedLines:  buf[:0],
			opRow:        sm.kern.OpsRow(globalID),
		}
		c.warpSlots = append(c.warpSlots, int32(i))
		if sm.useScan {
			sm.agePush(int32(i), now+1)
		} else {
			sm.pushWake(int32(i), now+1)
		}
		launched++
	}
	sm.activeWarps += launched
	sm.residentCTAs++
	return nil
}

// OutPending returns the occupancy of the memory output queue.
func (sm *SM) OutPending() int { return sm.out.Len() }

// PeekOut returns the oldest outgoing memory request without removing it.
func (sm *SM) PeekOut() (memreq.Request, bool) {
	if p := sm.out.Peek(); p != nil {
		return *p, true
	}
	return memreq.Request{}, false
}

// PopOut removes the oldest outgoing memory request. Callers peek first,
// attempt injection into the interconnect, and pop only on success.
func (sm *SM) PopOut() {
	if sm.out.Len() > 0 {
		sm.out.Pop()
	}
}

// NextEvent returns the earliest future cycle (> now) at which this SM
// could make progress on its own: issue from a ready warp, wake a
// timer-parked warp, or retry injection of a queued memory request.
// Progress driven from outside — response fills and CTA dispatch — is
// the device's concern. NoEvent means the SM is fully passive (idle, or
// every resident warp is waiting on loads or a barrier release that only
// an external fill can trigger).
func (sm *SM) NextEvent(now uint64) uint64 {
	if sm.out.Len() > 0 {
		return now + 1 // retries interconnect injection every cycle
	}
	if sm.app == NoApp || sm.residentCTAs == 0 {
		return NoEvent
	}
	next := uint64(NoEvent)
	if sm.useScan {
		// scanAt[s] is exact while armed (> now): no scan, and hence no
		// issue, has happened since it was computed, and event wake-ups
		// reset it. An unarmed scheduler may hold a ready warp.
		for _, t := range sm.scanAt {
			if t <= now {
				return now + 1
			}
			if t < next {
				next = t
			}
		}
		return next
	}
	for _, n := range sm.readyLen {
		if n > 0 {
			return now + 1
		}
	}
	for i := range sm.warps {
		w := &sm.warps[i]
		if !w.active || w.finished || w.atBarrier || w.pendingLoads > 0 {
			continue
		}
		if w.blockedUntil <= now {
			return now + 1 // should be on a ready list; stay conservative
		}
		if w.blockedUntil < next {
			next = w.blockedUntil
		}
	}
	return next
}
