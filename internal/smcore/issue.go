package smcore

import (
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/memreq"
	"repro/internal/stats"
)

// Tick advances the SM one core cycle: each warp scheduler issues at
// most one instruction from a ready warp it owns. Scheduler s owns warp
// slots where slot % SchedulersPerSM == s, mirroring the odd/even warp
// split of Fermi's dual schedulers.
//
//simlint:hotpath
func (sm *SM) Tick(now uint64) {
	if now < sm.idleUntil {
		return
	}
	if sm.app == NoApp || sm.kern == nil || sm.residentCTAs == 0 {
		return
	}
	if sm.useScan {
		// GTO: the oldest ready warp of each scheduler, found by direct
		// scan of the age order — no wheel or heap maintenance. scanAt
		// skips schedulers whose scan would provably fail.
		for s := 0; s < sm.cfg.SchedulersPerSM; s++ {
			if sm.scanAt[s] > now {
				continue
			}
			base := s * sm.maxSlots
			wakes := sm.ageWake[base : base+int(sm.ageLen[s])]
			idx := -1
			for i, wake := range wakes {
				if wake <= now {
					idx = i
					break
				}
			}
			if idx < 0 {
				// Failed scan (the rare transition into idleness): one
				// extra pass arms the watermark with the earliest wake.
				next := uint64(NoEvent)
				for _, wake := range wakes {
					if wake < next {
						next = wake
					}
				}
				sm.scanAt[s] = next
				continue
			}
			slot := sm.ageSlot[base+idx]
			w := &sm.warps[slot]
			// Compute fast path: ALU/SFU/shared ops mutate nothing
			// outside the warp, so they retire inline off one opcode
			// load — no instruction struct, no full issue machinery.
			if !w.cachedValid {
				var op isa.Op
				if w.opRow != nil {
					op = isa.Op(w.opRow[w.pc])
				} else {
					op = sm.kern.OpAt(int(w.globalID), int(w.pc))
				}
				var lat uint64
				switch op {
				case isa.OpALU, isa.OpNop:
					lat = sm.aluLat
				case isa.OpSFU:
					lat = sm.sfuLat
				case isa.OpShared:
					lat = sm.sharedLat
				}
				if lat > 0 {
					w.blockedUntil = now + lat
					w.pc++
					sm.recordIssue(sm.appStats, op)
					sm.ageWake[base+idx] = w.blockedUntil
					continue
				}
			}
			if sm.issue(slot, now) {
				// Refresh the issued warp's age entry with its new wait
				// (NoEvent while an event — fill or barrier release —
				// must wake it). A retired warp's entry is already gone
				// (and the region compacted), so leave it alone; the
				// backing array is stable, making the indexed write safe
				// for a live warp.
				if w.active {
					wake := w.blockedUntil
					if w.atBarrier || w.pendingLoads > 0 {
						wake = NoEvent
					}
					sm.ageWake[base+idx] = wake
				}
			} else {
				// Structural stall (MSHR or output queue full): replay
				// the instruction after a short penalty, like hardware
				// replay queues do.
				w.blockedUntil = now + replayPenalty
				sm.ageWake[base+idx] = now + replayPenalty
			}
		}
		// The loop left scanAt[s] exact for every scheduler that did
		// not issue; one that did stays un-armed (≤ now), keeping the
		// SM ticking. Event wake-ups reset idleUntil directly.
		idle := sm.scanAt[0]
		for _, t := range sm.scanAt[1:] {
			if t < idle {
				idle = t
			}
		}
		sm.idleUntil = idle
		return
	}
	sm.drainWheel(now)
	for s := 0; s < sm.cfg.SchedulersPerSM; s++ {
		slot := sm.pickWarp(s, now)
		if slot < 0 {
			continue
		}
		if !sm.issue(slot, now) {
			// Structural stall: as above, with the replay parked in the
			// timer wheel. The backoff also keeps saturated cores from
			// re-decoding the same stalled access every cycle.
			w := &sm.warps[slot]
			w.blockedUntil = now + replayPenalty
			sm.pushWake(slot, w.blockedUntil)
		}
	}
}

// replayPenalty is the re-issue delay after a structural stall.
const replayPenalty = 4

// stashReplay saves a decoded instruction so its replay skips fetch and
// address generation.
func (sm *SM) stashReplay(w *warp, in isa.Instr) {
	if w.cachedValid {
		return // already replaying this instruction
	}
	w.cachedOp = in.Op
	w.cachedLines = append(w.cachedLines[:0], in.Lines...)
	w.cachedValid = true
}

// pickWarp removes and returns an issuable warp slot from scheduler s's
// ready heap, or -1 (LRR path). Stale entries (retired or re-blocked
// warps) are dropped lazily.
func (sm *SM) pickWarp(s int, now uint64) int32 {
	for {
		e, ok := sm.heapPop(s)
		if !ok {
			return -1
		}
		if sm.warps[e.slot].ready(now) {
			return e.slot
		}
	}
}

// issue executes one instruction for the warp in slot. It returns false
// on a structural stall, leaving all state unchanged so the instruction
// retries later. On success the warp is re-parked according to its new
// state (timer wheel, memory wait, barrier wait, or retirement).
func (sm *SM) issue(slot int32, now uint64) bool {
	w := &sm.warps[slot]
	// Snapshot the owner's counters: retiring the last warp can complete
	// a drain-then-transfer inside the switch below, and the issued
	// instruction belongs to the old owner.
	issuedFor := sm.appStats
	var in isa.Instr
	if w.cachedValid {
		in = isa.Instr{Op: w.cachedOp, Lines: w.cachedLines}
	} else {
		in = sm.kern.Fetch(int(w.globalID), int(w.pc), sm.lineBuf)
	}
	switch in.Op {
	case isa.OpLoad:
		if !sm.issueLoad(slot, in.Lines, now) {
			sm.stashReplay(w, in)
			return false
		}
	case isa.OpStore:
		if !sm.issueStore(slot, in.Lines, now) {
			sm.stashReplay(w, in)
			return false
		}
	case isa.OpALU, isa.OpNop:
		w.blockedUntil = now + uint64(sm.cfg.ALULatency)
		w.pc++
	case isa.OpSFU:
		w.blockedUntil = now + uint64(sm.cfg.SFULatency)
		w.pc++
	case isa.OpShared:
		w.blockedUntil = now + uint64(sm.cfg.SharedLatency)
		w.pc++
	case isa.OpBarrier:
		sm.issueBarrier(slot, now)
	case isa.OpExit:
		sm.retireWarp(slot)
	}
	w.cachedValid = false
	sm.recordIssue(issuedFor, in.Op)
	if !sm.useScan && w.active && !w.finished && !w.atBarrier && w.pendingLoads == 0 {
		sm.pushWake(slot, w.blockedUntil)
	}
	return true
}

func (sm *SM) recordIssue(st *stats.App, op isa.Op) {
	sm.issued++
	if st == nil {
		return
	}
	st.WarpInstructions++
	st.ThreadInstructions += uint64(sm.cfg.WarpSize)
	if op.IsMemory() {
		st.MemWarpInstructions++
	}
}

// issueLoad performs the L1 lookups for every coalesced line of a load.
// All-or-nothing: capacity (MSHR entries, merge slots, output queue) is
// verified before any state changes.
func (sm *SM) issueLoad(slot int32, lines []uint64, now uint64) bool {
	newMisses := 0
	for _, ln := range lines {
		if sm.l1.ProbeMiss(ln) {
			newMisses++
		} else if !sm.l1.CanMerge(ln) {
			return false
		}
	}
	if newMisses > 0 {
		if sm.l1.MSHRFree() < newMisses {
			return false
		}
		if sm.outLimit-sm.OutPending() < newMisses {
			return false
		}
	}
	w := &sm.warps[slot]
	waits := int32(0)
	for _, ln := range lines {
		res := sm.l1.Access(ln, false, uint64(slot), sm.app)
		if sm.appStats != nil {
			sm.appStats.L1Accesses++
			if res == cache.Hit {
				sm.appStats.L1Hits++
			}
		}
		switch res {
		case cache.Miss:
			waits++
			sm.out.Push(memreq.Request{
				Kind: memreq.Read,
				Line: ln,
				App:  sm.app,
				SM:   sm.id,
				Warp: slot,
				Size: memreq.ControlBytes,
			})
		case cache.MissMerged:
			waits++
		}
	}
	w.pendingLoads += waits
	if waits == 0 {
		w.blockedUntil = now + uint64(sm.cfg.L1.LatencyCycles) + 1
	}
	w.pc++
	return true
}

// issueStore forwards write-through stores downstream without blocking
// the warp.
func (sm *SM) issueStore(slot int32, lines []uint64, now uint64) bool {
	if sm.outLimit-sm.OutPending() < len(lines) {
		return false
	}
	w := &sm.warps[slot]
	for _, ln := range lines {
		res := sm.l1.Access(ln, true, uint64(slot), sm.app)
		if sm.appStats != nil {
			sm.appStats.L1Accesses++
			if res == cache.Hit {
				sm.appStats.L1Hits++
			}
		}
		sm.out.Push(memreq.Request{
			Kind: memreq.Write,
			Line: ln,
			App:  sm.app,
			SM:   sm.id,
			Warp: slot,
			Size: int32(sm.cfg.L1.LineBytes),
		})
	}
	w.blockedUntil = now + 1
	w.pc++
	return true
}

func (sm *SM) issueBarrier(slot int32, now uint64) {
	w := &sm.warps[slot]
	c := &sm.ctas[w.ctaSlot]
	w.pc++
	w.atBarrier = true
	c.arrived++
	if c.arrived >= c.warpsLeft {
		// Synthetic programs are barrier-uniform: every live warp of the
		// block reaches the same barrier, so arrival of the last live
		// warp releases the block.
		for _, ws := range c.warpSlots {
			rw := &sm.warps[ws]
			if rw.active && !rw.finished && rw.atBarrier {
				rw.atBarrier = false
				rw.blockedUntil = now + 1
				if sm.useScan {
					// Wake at now+1 like the wheel park would: released
					// warps never issue in their release cycle.
					sm.wakeAt(ws, now+1)
				} else if ws != slot {
					sm.pushWake(ws, now+1)
				}
			}
		}
		c.arrived = 0
	}
	w.blockedUntil = now + 1
}

func (sm *SM) retireWarp(slot int32) {
	w := &sm.warps[slot]
	w.finished = true
	w.active = false
	sm.activeWarps--
	if sm.useScan {
		sm.ageRemove(slot)
	}
	c := &sm.ctas[w.ctaSlot]
	c.warpsLeft--
	if c.warpsLeft > 0 {
		return
	}
	// Thread block complete.
	c.active = false
	sm.residentCTAs--
	doneApp := sm.app
	if sm.OnCTADone != nil {
		sm.OnCTADone(doneApp)
	}
	if sm.residentCTAs == 0 && sm.pendingApp != NoApp {
		app, k, st := sm.pendingApp, sm.pendingKernel, sm.pendingStats
		sm.pendingApp = NoApp
		sm.pendingKernel = nil
		sm.pendingStats = nil
		_ = sm.Assign(app, k, st)
	}
}

// HandleResponse completes a read fill that arrived from the
// interconnect: the line is installed in the L1 and every warp recorded
// in the MSHR entry is woken.
func (sm *SM) HandleResponse(req memreq.Request) {
	waiters, _, _ := sm.l1.Fill(req.Line, req.App, false)
	for _, tok := range waiters {
		w := &sm.warps[tok]
		if w.pendingLoads > 0 {
			w.pendingLoads--
			if w.pendingLoads == 0 && w.active && !w.finished && !w.atBarrier {
				if sm.useScan {
					sm.wakeAt(int32(tok), w.blockedUntil)
				} else {
					sm.pushReady(int32(tok))
				}
			}
		}
	}
}
