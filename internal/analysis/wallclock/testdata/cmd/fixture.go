// Package fixture holds the allowlisted side of the wallclock check: a
// cmd-scoped package may report wall-clock durations, so the same calls
// that internal/ rejects must pass here.
package fixture

import (
	"fmt"
	"time"
)

// Report measures and prints a human wall-clock duration — fine in a
// command-line frontend.
func Report() {
	start := time.Now()
	time.Sleep(time.Millisecond)
	fmt.Println("took", time.Since(start))
}
