// Package fixture exercises the wallclock analyzer: host-clock reads
// are flagged under internal/, pure time arithmetic and annotated
// lines pass.
package fixture

import "time"

// Elapsed reads the host clock twice: both flagged.
func Elapsed() time.Duration {
	start := time.Now() // want `wallclock: time.Now reads the host clock`
	doWork()
	return time.Since(start) // want `wallclock: time.Since reads the host clock`
}

// Poll schedules against the host clock: flagged.
func Poll() {
	for range time.Tick(time.Second) { // want `wallclock: time.Tick reads the host clock`
		doWork()
	}
}

// Delay sleeps on the host clock: flagged.
func Delay() {
	time.Sleep(time.Millisecond) // want `wallclock: time.Sleep reads the host clock`
}

// PureArithmetic only converts and compares durations: passes.
func PureArithmetic(cycles uint64, hz uint64) time.Duration {
	return time.Duration(cycles * uint64(time.Second) / hz)
}

// Annotated reads the clock with a reasoned waiver: passes.
func Annotated() time.Duration {
	//simlint:ignore wallclock -- progress logging only, value never reaches a summary
	t := time.Now()
	return time.Duration(t.Unix())
}

func doWork() {}
