package wallclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "testdata/internal", "repro/internal/fixture")
}

// TestWallclockAllowsCmd verifies cmd/* stays allowlisted for
// wall-clock reporting.
func TestWallclockAllowsCmd(t *testing.T) {
	analysistest.RunExpectNone(t, wallclock.Analyzer, "testdata/cmd", "repro/cmd/fixture")
}
