// Package wallclock forbids reading the host's wall clock inside
// internal packages. Simulation time is the event loop's cycle counter;
// a time.Now or time.Since in internal code couples results to the
// machine the run happens on and breaks the identical-seeds →
// byte-identical-goldens contract. Command-line frontends under cmd/
// may report human wall-clock durations and are outside the analyzer's
// scope (it fires only on import paths containing "/internal/").
package wallclock

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// banned lists the time-package functions that observe the host clock
// or schedule against it.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// Analyzer is the wallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Tick and friends under internal/ — simulation time comes from the event loop, never the host clock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.PkgPath, "/internal/") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !banned[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s reads the host clock; internal packages must take time from the event loop (cycle counters), leave wall-clock reporting to cmd/*",
				fn.Name())
			return true
		})
	}
	return nil
}
