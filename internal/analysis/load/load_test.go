package load_test

import (
	"testing"

	"repro/internal/analysis/load"
)

// TestLoadTypeChecks loads a small real package and verifies the loader
// delivers syntax plus a populated types.Info resolved through export
// data.
func TestLoadTypeChecks(t *testing.T) {
	pkgs, err := load.Load("", "repro/internal/rng")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "repro/internal/rng" {
		t.Errorf("ImportPath = %q", p.ImportPath)
	}
	if len(p.Files) == 0 {
		t.Error("no parsed files")
	}
	if p.Types == nil || p.Types.Scope().Lookup("Mix64") == nil {
		t.Error("type information missing: rng.Mix64 not in package scope")
	}
	if len(p.Info.Defs) == 0 || len(p.Info.Uses) == 0 {
		t.Error("types.Info not populated")
	}
}

// TestLoadMultiplePatterns verifies pattern expansion and that targets
// come back sorted by import path.
func TestLoadMultiplePatterns(t *testing.T) {
	pkgs, err := load.Load("", "repro/internal/rng", "repro/internal/fifo")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	if pkgs[0].ImportPath != "repro/internal/fifo" || pkgs[1].ImportPath != "repro/internal/rng" {
		t.Errorf("unsorted targets: %s, %s", pkgs[0].ImportPath, pkgs[1].ImportPath)
	}
}
