// Package load builds type-checked packages for the simlint analyzers
// without depending on golang.org/x/tools/go/packages. It shells out to
// `go list -deps -export -json` to enumerate packages and compile export
// data, parses the target packages' non-test sources with go/parser, and
// type-checks them with go/types, resolving every import (stdlib and
// intra-module alike) through the gc export data the list step produced.
// The result is exactly the Pass input the analysis framework needs:
// syntax, *types.Package, and a fully populated *types.Info.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	Export     string
	Match      []string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, or
// the current directory if dir is empty), compiles export data for them
// and their dependencies, and returns the matched packages parsed and
// type-checked. Test files are not analyzed: simlint enforces contracts
// on shipping code, and fixtures exercise deliberate violations that
// must stay out of the build graph.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, append([]string{"-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listPkg
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.Match) > 0 {
			if p.Error != nil {
				return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}
	sort.SliceStable(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, t := range targets {
		p, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Check parses and type-checks one ad-hoc package from the given files,
// resolving imports through freshly listed export data. The analysistest
// harness uses it to compile testdata fixtures that live outside the
// module's build graph. importPath is the path the checked package
// claims (fixtures typically pose as "repro/internal/..." so that
// path-scoped analyzers fire).
func Check(importPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			importSet[importString(spec)] = true
		}
	}
	imports := make([]string, 0, len(importSet))
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)

	exports := map[string]string{}
	if len(imports) > 0 {
		pkgs, err := goList("", append([]string{"-deps"}, imports...))
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return typeCheck(fset, imp, importPath, "", files)
}

// goList runs `go list -export -json` with the given extra args (the
// first args may themselves be flags, e.g. "-deps") and decodes the
// JSON stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmdArgs := append([]string{"list", "-e", "-export", "-json=ImportPath,Dir,Standard,GoFiles,Export,Match,Incomplete,Error"}, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		fn := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typeCheck(fset, imp, t.ImportPath, t.Dir, files)
}

func typeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}

func importString(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	return s[1 : len(s)-1] // strip quotes
}
