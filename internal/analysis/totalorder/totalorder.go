// Package totalorder guards sorting determinism. A sort.Slice whose
// less-func is a single key comparison leaves equal elements in
// unspecified relative order (sort.Slice is not stable), and a float
// key additionally makes the order partial: NaN compares false against
// everything, so the "sorted" permutation depends on input order and
// pivot choice. Both turn golden files timing- and history-dependent.
//
// The analyzer flags sort.Slice calls whose less-func is one bare
// comparison. Passing idioms: sort.SliceStable with any less-func
// (insertion order is the deterministic tie-break), or a sort.Slice
// whose less-func chains to a tie-breaker (a || / && chain or
// multi-statement body ending on a unique key). Each finding carries a
// machine-applicable suggested fix rewriting the call to
// sort.SliceStable, which `simlint -fix` applies.
package totalorder

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the totalorder check.
var Analyzer = &analysis.Analyzer{
	Name: "totalorder",
	Doc:  "flag sort.Slice less-funcs that compare a single (or floating-point) key with no deterministic tie-break; require sort.SliceStable or a tie-break chain",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			if !analysis.IsPkgCall(pass.TypesInfo, call, "sort", "Slice") {
				return true
			}
			less, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			cmp := bareComparison(less)
			if cmp == nil {
				return true // tie-break chain or opaque body: assume total
			}
			msg := "sort.Slice with a single-key less-func: equal keys land in input-dependent relative order; use sort.SliceStable or add a deterministic tie-break chain"
			if analysis.IsFloat(pass.TypesInfo.Types[cmp.X].Type) || analysis.IsFloat(pass.TypesInfo.Types[cmp.Y].Type) {
				msg = "sort.Slice less-func compares floats with no tie-break: NaN makes the order partial and equal keys land input-dependently; use sort.SliceStable or add a total tie-break chain"
			}
			d := analysis.Diagnostic{Pos: call.Pos(), End: call.End(), Message: msg}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{{
					Message: "replace sort.Slice with sort.SliceStable",
					TextEdits: []analysis.TextEdit{{
						Pos:     sel.Sel.Pos(),
						End:     sel.Sel.End(),
						NewText: []byte("SliceStable"),
					}},
				}}
			}
			pass.Report(d)
			return true
		})
	}
	return nil
}

// bareComparison returns the sole comparison of a single-expression
// less-func body (`return a.x < b.x`), or nil when the body chains,
// branches, or otherwise encodes a tie-break.
func bareComparison(less *ast.FuncLit) *ast.BinaryExpr {
	if len(less.Body.List) != 1 {
		return nil
	}
	ret, ok := less.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	cmp, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return cmp
	}
	return nil
}
