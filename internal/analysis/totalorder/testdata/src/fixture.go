// Package fixture exercises the totalorder analyzer: sort.Slice with a
// bare single-key less-func is flagged (floats get the NaN message);
// sort.SliceStable and tie-break chains pass.
package fixture

import "sort"

type rec struct {
	score float64
	load  int
	id    int
}

// ByScore orders by a float with no tie-break: flagged with the NaN
// message.
func ByScore(rs []rec) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].score < rs[j].score }) // want `totalorder: sort.Slice less-func compares floats`
}

// ByLoad orders by one non-unique int key: flagged.
func ByLoad(rs []rec) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].load > rs[j].load }) // want `totalorder: sort.Slice with a single-key less-func`
}

// ByLoadStable uses the stable sort: insertion order is the
// deterministic tie-break, passes.
func ByLoadStable(rs []rec) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].load > rs[j].load })
}

// ByScoreChained falls through to a unique key on ties: passes.
func ByScoreChained(rs []rec) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score < rs[j].score
		}
		return rs[i].id < rs[j].id
	})
}

// ByLoadOrID chains in one expression: passes.
func ByLoadOrID(rs []rec) {
	sort.Slice(rs, func(i, j int) bool {
		return rs[i].load > rs[j].load || (rs[i].load == rs[j].load && rs[i].id < rs[j].id)
	})
}

// Annotated sorts provably-unique keys with a reasoned waiver: passes.
func Annotated(ids []int) {
	//simlint:ignore totalorder -- ids are unique by construction (device indices)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
