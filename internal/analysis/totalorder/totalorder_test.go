package totalorder_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simlint"
	"repro/internal/analysis/totalorder"
)

func TestTotalOrder(t *testing.T) {
	analysistest.Run(t, totalorder.Analyzer, "testdata/src", "repro/internal/fixture")
}

// TestSuggestedFix runs the analyzer's machine fix over a copy of the
// fixtures and verifies the flagged calls become sort.SliceStable (and
// nothing else changes).
func TestSuggestedFix(t *testing.T) {
	src, err := os.ReadFile("testdata/src/fixture.go")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fn := filepath.Join(dir, "fixture.go")
	// Strip want comments so the copy is plain source.
	clean := analysistest.StripWants(string(src))
	if err := os.WriteFile(fn, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	goMod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(goMod, []byte("module fixture\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := simlint.Run(dir, ".")
	if err != nil {
		t.Fatalf("simlint.Run: %v", err)
	}
	var fixable []simlint.Finding
	for _, f := range findings {
		if f.Analyzer == "totalorder" {
			fixable = append(fixable, f)
		}
	}
	if len(fixable) != 2 {
		t.Fatalf("want 2 totalorder findings in fix fixture, got %d: %v", len(fixable), findings)
	}
	if n, err := simlint.ApplyFixes(fixable); err != nil || n != 2 {
		t.Fatalf("ApplyFixes = %d, %v; want 2, nil", n, err)
	}
	fixed, err := os.ReadFile(fn)
	if err != nil {
		t.Fatal(err)
	}
	got := string(fixed)
	if strings.Contains(got, "sort.Slice(rs, func(i, j int) bool { return rs[i].score") ||
		strings.Contains(got, "sort.Slice(rs, func(i, j int) bool { return rs[i].load") {
		t.Errorf("flagged sort.Slice calls survived -fix:\n%s", got)
	}
	if strings.Count(got, "sort.SliceStable") != strings.Count(clean, "sort.SliceStable")+2 {
		t.Errorf("expected exactly the two flagged calls rewritten to SliceStable:\n%s", got)
	}

	// The fixed file must now be clean.
	after, err := simlint.Run(dir, ".")
	if err != nil {
		t.Fatalf("simlint.Run after fix: %v", err)
	}
	for _, f := range after {
		if f.Analyzer == "totalorder" {
			t.Errorf("finding survived fix: %s", f)
		}
	}
}
