package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const directiveSrc = `package p

func f() {
	a() //simlint:ignore check -- same-line waiver
	//simlint:ignore check -- next-line waiver
	b()
	//simlint:ignore check
	c()
	//simlint:ignore other -- wrong analyzer
	d()
	//simlint:ignore check, second -- two analyzers at once
	e()
	//simlint:ignore -- nameless
	g()
	//simlint:ignore nosuch -- unknown analyzer
	h()
}
`

func parse(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// lineOf returns the 1-based line containing the first occurrence of
// needle, as a token.Pos-producing diagnostic anchor.
func posOnLine(fset *token.FileSet, files []*ast.File, line int) token.Pos {
	var pos token.Pos
	ast.Inspect(files[0], func(n ast.Node) bool {
		if n == nil || pos != token.NoPos {
			return false
		}
		if fset.Position(n.Pos()).Line == line {
			pos = n.Pos()
			return false
		}
		return true
	})
	return pos
}

func TestSuppress(t *testing.T) {
	fset, files := parse(t, directiveSrc)
	lineFor := func(call string) int {
		for i, l := range strings.Split(directiveSrc, "\n") {
			if strings.Contains(l, call+"()") {
				return i + 1
			}
		}
		t.Fatalf("call %s not found", call)
		return 0
	}
	mk := func(category, call string) Diagnostic {
		return Diagnostic{Pos: posOnLine(fset, files, lineFor(call)), Category: category, Message: call}
	}
	diags := []Diagnostic{
		mk("check", "a"), // same-line directive: suppressed
		mk("check", "b"), // directive on line above: suppressed
		mk("check", "c"), // reasonless directive: kept
		mk("check", "d"), // directive names another analyzer: kept
		mk("check", "e"), // multi-name directive: suppressed
		mk("second", "e"),
	}
	kept := Suppress(fset, files, diags)
	var names []string
	for _, d := range kept {
		names = append(names, d.Message)
	}
	if got, want := strings.Join(names, ","), "c,d"; got != want {
		t.Errorf("Suppress kept %q, want %q", got, want)
	}
}

func TestCheckDirectives(t *testing.T) {
	fset, files := parse(t, directiveSrc)
	known := map[string]bool{"check": true, "second": true, "other": true}
	var msgs []string
	for _, d := range CheckDirectives(fset, files, known) {
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 3 {
		t.Fatalf("want 3 directive findings (reasonless, nameless, unknown), got %d: %v", len(msgs), msgs)
	}
	for i, want := range []string{"needs a reason", "names no analyzer", "unknown analyzer"} {
		if !strings.Contains(msgs[i], want) {
			t.Errorf("finding %d = %q, want substring %q", i, msgs[i], want)
		}
	}
}
