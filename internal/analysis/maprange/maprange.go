// Package maprange flags iteration over Go maps in internal packages
// when the loop body feeds ordering-sensitive sinks. Go randomises map
// iteration order per run, so a map range that appends to a slice,
// writes output, or sends on a channel silently breaks the repository's
// determinism contract (identical seeds must produce byte-identical
// summaries and goldens at any concurrency).
//
// The canonical fix is the sorted-keys idiom, which the analyzer
// recognises and allows:
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)        // or sort.Strings/Ints/slices.Sort
//	for _, k := range keys { ... use m[k] ... }
//
// Pure aggregation (counters, sums, min/max, building another map,
// deleting keys) is order-insensitive and passes. Genuinely safe map
// ranges that the analyzer cannot prove safe can be annotated
// //simlint:ignore maprange -- <reason>.
package maprange

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the maprange check.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flag map iteration whose body feeds ordering-sensitive sinks (slice append, output writes, channel sends) in internal packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.PkgPath, "/internal/") {
		return nil
	}
	for _, f := range pass.Files {
		// parent maps each range statement to the statement list that
		// contains it and its index there, so the sorted-keys idiom can
		// look at the statement that follows the loop.
		parent := map[*ast.RangeStmt]parentSlot{}
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				list = b.List
			case *ast.CaseClause:
				list = b.Body
			case *ast.CommClause:
				list = b.Body
			default:
				return true
			}
			for i, s := range list {
				if rs, ok := s.(*ast.RangeStmt); ok {
					parent[rs] = parentSlot{list, i}
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !analysis.IsMap(pass.TypesInfo.Types[rs.X].Type) {
				return true
			}
			sinks := bodySinks(pass, rs)
			if len(sinks.desc) == 0 {
				return true
			}
			// Collect-then-sort: when the loop's only ordering-sensitive
			// effect is appending to one slice and the statement after
			// the loop sorts that slice, the map's iteration order is
			// laundered out — this is the canonical sorted-keys idiom
			// and its filter/collect variants.
			if sinks.onlyAppendsTo != nil {
				if slot, ok := parent[rs]; ok && sortedNext(pass, slot, sinks.onlyAppendsTo) {
					return true
				}
			}
			pass.Report(analysis.Diagnostic{
				Pos: rs.For,
				End: rs.End(),
				Message: fmt.Sprintf(
					"map iteration order is nondeterministic but the loop body %s; collect the keys, sort them, and range the sorted slice (or annotate //simlint:ignore maprange -- <reason>)",
					strings.Join(sinks.desc, " and ")),
			})
			return true
		})
	}
	return nil
}

type parentSlot struct {
	list []ast.Stmt
	idx  int
}

// sinkSet describes the ordering-sensitive operations of a loop body.
// onlyAppendsTo is the single outer slice every sink appends to, or nil
// when the body has non-append sinks or appends to multiple targets.
type sinkSet struct {
	desc          []string
	onlyAppendsTo types.Object
}

// bodySinks returns every ordering-sensitive operation in the loop
// body: appends to slices declared outside the loop, fmt calls,
// Write*/Encode*/Print* method calls, and channel sends.
func bodySinks(pass *analysis.Pass, rs *ast.RangeStmt) sinkSet {
	var sinks sinkSet
	onlyAppends := true
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			sinks.desc = append(sinks.desc, "sends on a channel")
			onlyAppends = false
		case *ast.AssignStmt:
			if tgt, obj := outerAppendTarget(pass, rs, n); tgt != "" {
				sinks.desc = append(sinks.desc, fmt.Sprintf("appends to %q", tgt))
				switch {
				case obj == nil:
					onlyAppends = false // field/element target: can't track
				case sinks.onlyAppendsTo == nil:
					sinks.onlyAppendsTo = obj
				case sinks.onlyAppendsTo != obj:
					onlyAppends = false
				}
			}
		case *ast.CallExpr:
			if analysis.IsPkgCall(pass.TypesInfo, n, "fmt") {
				sinks.desc = append(sinks.desc, "calls fmt")
				onlyAppends = false
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && pass.TypesInfo.Selections[sel] != nil {
				name := sel.Sel.Name
				if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Print") {
					sinks.desc = append(sinks.desc, fmt.Sprintf("calls %s", name))
					onlyAppends = false
				}
			}
		}
		return true
	})
	if !onlyAppends {
		sinks.onlyAppendsTo = nil
	}
	return sinks
}

// outerAppendTarget reports the name and object of the outside-the-loop
// slice that assign grows via append, or "" if assign is not such an
// append. The object is nil for non-identifier targets (fields,
// elements).
func outerAppendTarget(pass *analysis.Pass, rs *ast.RangeStmt, assign *ast.AssignStmt) (string, types.Object) {
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fnID, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fnID.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fnID].(*types.Builtin); !isBuiltin {
			continue // shadowed: not the builtin append
		}
		if i >= len(assign.Lhs) {
			continue
		}
		id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
		if !ok {
			// Appending to a field or element (s.rows = append(s.rows, ...))
			// is still an ordering-sensitive sink.
			return exprString(assign.Lhs[i]), nil
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj != nil && !within(obj.Pos(), rs) {
			return id.Name, obj
		}
	}
	return "", nil
}

// sortedNext reports whether the statement directly after the loop in
// its enclosing statement list is a sort/slices call over obj.
func sortedNext(pass *analysis.Pass, slot parentSlot, obj types.Object) bool {
	if slot.idx+1 >= len(slot.list) {
		return false
	}
	next, ok := slot.list[slot.idx+1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := next.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	if !analysis.IsPkgCall(pass.TypesInfo, call, "sort") && !analysis.IsPkgCall(pass.TypesInfo, call, "slices") {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			return true
		}
	}
	return false
}

func within(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos < n.End()
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "expression"
	}
}
