package maprange_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maprange"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, maprange.Analyzer, "testdata/src", "repro/internal/fixture")
}

// TestMapRangeOutsideInternal re-checks the same fixtures posing as a
// cmd package: the analyzer is scoped to internal/ and must stay quiet.
func TestMapRangeOutsideInternal(t *testing.T) {
	analysistest.RunExpectNone(t, maprange.Analyzer, "testdata/src", "repro/cmd/fixture")
}
