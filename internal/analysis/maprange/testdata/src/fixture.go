// Package fixture exercises the maprange analyzer: map iterations that
// feed ordering-sensitive sinks are flagged; aggregation, the
// sorted-keys idiom, and annotated loops pass.
package fixture

import (
	"fmt"
	"sort"
)

// AppendNoSort feeds an outer slice straight from map order: flagged.
func AppendNoSort(m map[string]int) []string {
	var out []string
	for k := range m { // want `maprange: map iteration order is nondeterministic but the loop body appends to "out"`
		out = append(out, k)
	}
	return out
}

// PrintDirect writes output in map order: flagged.
func PrintDirect(m map[string]int) {
	for k, v := range m { // want `maprange: .*calls fmt`
		fmt.Println(k, v)
	}
}

// SendDirect streams values in map order: flagged.
func SendDirect(m map[string]int, ch chan int) {
	for _, v := range m { // want `maprange: .*sends on a channel`
		ch <- v
	}
}

// FieldAppend grows a struct field in map order: flagged even though
// the target is not a plain identifier.
type collector struct{ rows []string }

func (c *collector) FieldAppend(m map[string]int) {
	for k := range m { // want `maprange: .*appends to "c.rows"`
		c.rows = append(c.rows, k)
	}
}

// SortedKeys is the canonical idiom: collect, sort, then range the
// slice. The collection loop passes.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FilterCollect appends under a condition but sorts straight after:
// the map's order never escapes, so it passes.
func FilterCollect(m map[string]int, min int) []string {
	var out []string
	for k, v := range m {
		if v >= min {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Aggregate is order-insensitive: counters and a derived map.
func Aggregate(m map[string]int) (int, map[int]bool) {
	total := 0
	seen := map[int]bool{}
	for _, v := range m {
		total += v
		seen[v] = true
	}
	return total, seen
}

// Annotated is order-sensitive but deliberately waived with a reasoned
// ignore directive.
func Annotated(m map[string]int) []string {
	var out []string
	//simlint:ignore maprange -- order is canonicalised by the caller before use
	for k := range m {
		out = append(out, k)
	}
	return out
}
