// Package fixture exercises the hotpath analyzer: annotated functions
// reject allocation-introducing constructs; the same code passes
// un-annotated, and reasoned waivers pass annotated.
package fixture

import "fmt"

type state struct {
	buf   []int
	table map[int]int
}

func consume(x any) {}

// Hot is annotated and full of per-call allocations: every construct
// below is flagged.
//
//simlint:hotpath
func Hot(s *state, v int) {
	cb := func() int { return v } // want `hotpath: closure literal in hotpath Hot allocates`
	_ = cb
	p := &state{} // want `hotpath: &fixture.state literal in hotpath Hot escapes to the heap`
	_ = p
	lit := []int{v} // want `hotpath: \[\]int composite literal in hotpath Hot allocates per call`
	_ = lit
	m := map[int]int{} // want `hotpath: map\[int\]int composite literal in hotpath Hot allocates per call`
	_ = m
	tmp := make([]int, 8) // want `hotpath: make in hotpath Hot allocates per call`
	_ = tmp
	q := new(state) // want `hotpath: new in hotpath Hot allocates per call`
	_ = q
	_ = fmt.Sprintf("%d", v) // want `hotpath: fmt call in hotpath Hot allocates`
	var local []int
	local = append(local, v) // want `hotpath: append grows "local", a slice local to hotpath Hot`
	_ = local
	consume(v) // want `hotpath: passing concrete int as interface any in hotpath Hot boxes the argument`
	var sink any
	sink = v // want `hotpath: storing concrete int into interface any in hotpath Hot boxes the value`
	_ = sink
}

// Cold is the identical body without the annotation: nothing fires.
func Cold(s *state, v int) {
	cb := func() int { return v }
	_ = cb
	lit := []int{v}
	_ = lit
	tmp := make([]int, 8)
	_ = tmp
	_ = fmt.Sprintf("%d", v)
	consume(v)
}

// HotClean is annotated and steady-state allocation-free: index writes,
// arithmetic, appends into caller-owned buffers, and field reuse all
// pass.
//
//simlint:hotpath
func HotClean(s *state, row []uint64, v int) []uint64 {
	s.buf = s.buf[:0]
	s.table[v] = v * 2
	row[0] = uint64(v)
	row = append(row, uint64(v)) // parameter-owned buffer: amortised, allowed
	s.buf = append(s.buf, v)     // field-owned buffer: hoisted, allowed
	return row
}

// HotWaived is annotated but its one allocation sits on a reasoned
// cold path: the ignore directive suppresses it.
//
//simlint:hotpath
func HotWaived(s *state, v int) error {
	if v < 0 {
		//simlint:ignore hotpath -- cold invariant-violation path, never taken in steady state
		return fmt.Errorf("negative v %d", v)
	}
	s.table[v] = v
	return nil
}
