// Package hotpath enforces the zero-steady-state-allocation contract on
// functions annotated with a //simlint:hotpath comment (placed in the
// function's doc comment). The simulator's inner loops — Device.Step,
// the dispatcher's speculation pass, the time-series sampler's row emit
// — run millions of times per simulated second; a single allocation in
// one of them shows up directly as ns/op and GC pressure in the bench
// suite. The analyzer rejects the constructs that introduce per-call
// allocations:
//
//   - closure literals (captured variables escape)
//   - map/slice composite literals and &struct{} literals
//   - make/new in the body (buffers belong in setup, reused per call)
//   - append that grows a slice declared in the function itself
//     (appending into a reused field or parameter-owned buffer passes)
//   - fmt.* calls (interface boxing plus formatting state)
//   - passing or converting a concrete value to an interface parameter
//     (boxes the value)
//
// Code that must do one of these anyway (e.g. a cold error path)
// annotates the line //simlint:ignore hotpath -- <reason>.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Annotation marks a function as allocation-checked.
const Annotation = "simlint:hotpath"

// Analyzer is the hotpath check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation-introducing constructs (closures, literals, make/new, growing local appends, fmt, interface boxing) in //simlint:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !annotated(fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func annotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, Annotation) {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hotpath %s allocates (captures escape); hoist it to setup or inline the logic", name)
			return false // don't double-report the closure's own body
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				pass.Reportf(n.Pos(), "&%s literal in hotpath %s escapes to the heap; reuse a preallocated value", litName(pass, lit), name)
				return false
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map, *types.Slice:
				pass.Reportf(n.Pos(), "%s composite literal in hotpath %s allocates per call; hoist the buffer into setup", litName(pass, n), name)
				return false
			}
		case *ast.CallExpr:
			checkCall(pass, fn, n, name)
		case *ast.AssignStmt:
			checkAssign(pass, fn, n, name)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, name string) {
	// Builtins make and new always allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "make" || id.Name == "new") {
			pass.Reportf(call.Pos(), "%s in hotpath %s allocates per call; hoist the buffer into setup and reuse it", id.Name, name)
			return
		}
	}
	if analysis.IsPkgCall(pass.TypesInfo, call, "fmt") {
		pass.Reportf(call.Pos(), "fmt call in hotpath %s allocates (boxing + formatting state); move formatting off the hot path", name)
		return
	}
	// Explicit conversion to an interface type: io.Writer(x).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && isConcrete(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface %s in hotpath %s boxes the value", typeString(tv.Type), name)
		}
		return
	}
	// Concrete arguments passed to interface parameters box.
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && isConcrete(pass, arg) {
			pass.Reportf(arg.Pos(), "passing concrete %s as interface %s in hotpath %s boxes the argument", typeString(pass.TypesInfo.Types[arg].Type), typeString(pt), name)
		}
	}
}

func checkAssign(pass *analysis.Pass, fn *ast.FuncDecl, assign *ast.AssignStmt, name string) {
	for i, rhs := range assign.Rhs {
		// Appends that grow a slice declared inside this function: the
		// backing array is reallocated on every growth, every call.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && i < len(assign.Lhs) {
					if tgt, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
						obj := pass.TypesInfo.Uses[tgt]
						if obj == nil {
							obj = pass.TypesInfo.Defs[tgt]
						}
						if obj != nil && fn.Body.Pos() <= obj.Pos() && obj.Pos() < fn.Body.End() {
							pass.Reportf(call.Pos(), "append grows %q, a slice local to hotpath %s; hoist the buffer (field or parameter) and reuse its capacity", tgt.Name, name)
						}
					}
				}
			}
		}
		// Assigning a concrete value into an interface-typed location boxes.
		if i < len(assign.Lhs) {
			lt := pass.TypesInfo.Types[assign.Lhs[i]].Type
			if lt != nil && types.IsInterface(lt) && isConcrete(pass, rhs) {
				pass.Reportf(rhs.Pos(), "storing concrete %s into interface %s in hotpath %s boxes the value", typeString(pass.TypesInfo.Types[rhs].Type), typeString(lt), name)
			}
		}
	}
}

// isConcrete reports whether e has a concrete (non-interface, non-nil)
// type, i.e. whether converting it to an interface boxes it.
func isConcrete(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	if isBasic && b.Kind() == types.UntypedNil {
		return false
	}
	return !types.IsInterface(tv.Type)
}

func litName(pass *analysis.Pass, lit *ast.CompositeLit) string {
	if t := pass.TypesInfo.Types[lit].Type; t != nil {
		return typeString(t)
	}
	return "composite"
}

func typeString(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
