// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// with a Run function over a type-checked package (a Pass), and reports
// positioned Diagnostics that may carry machine-applicable SuggestedFixes.
//
// The repository cannot vendor x/tools (the build is hermetic), so this
// package mirrors the upstream API shape — Analyzer, Pass, Diagnostic,
// SuggestedFix, TextEdit — closely enough that migrating the simlint
// analyzers onto the real framework is a mechanical import swap. The
// pieces upstream gets from go/packages live in the sibling package
// load (building type-checked packages from `go list -export` output)
// and analysistest (fixture-driven golden tests using `// want` comments).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name appears in diagnostics and
// in //simlint:ignore directives; Doc is the one-paragraph contract the
// check enforces.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is one analyzer's view of one type-checked package. The driver
// constructs a Pass per (analyzer, package) pair; analyzers report
// findings through Report.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// PkgPath is the package import path ("repro/internal/fleet").
	// Path-scoped analyzers (wallclock, globalrand) key their
	// allowlists off it.
	PkgPath string

	diagnostics []Diagnostic
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	if d.Category == "" {
		d.Category = p.Analyzer.Name
	}
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a finding at pos with a formatted message and no fix.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, before ignore
// directives are applied.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: end of the flagged region
	Category string    // analyzer name; filled by Report if empty
	Message  string

	// SuggestedFixes holds zero or more machine-applicable rewrites.
	// The driver applies the first fix of each diagnostic under -fix.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one rewrite that resolves a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// RunAnalyzer runs one analyzer over one package and returns its
// findings with //simlint:ignore suppressions already applied.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		PkgPath:   pkgPath,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return Suppress(fset, files, pass.diagnostics), nil
}
