package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for calls through function-typed values, conversions, and
// builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgCall reports whether call invokes one of the named package-level
// functions of the package with import path pkgPath. With no names it
// matches any function of that package.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsMap reports whether t's core type is a map.
func IsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// IsFloat reports whether t's underlying type is a floating-point type.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
