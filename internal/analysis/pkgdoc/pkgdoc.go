// Package pkgdoc is the docs-health gate, absorbed from the former
// scripts/docscheck command: every package must carry a package-level
// doc comment on at least one of its files so `go doc` output stays
// useful. Running it as a simlint analyzer instead of a standalone
// script gives findings real positions and folds the docs gate into the
// same CI step as the determinism and hot-path checks.
package pkgdoc

import (
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the pkgdoc check.
var Analyzer = &analysis.Analyzer{
	Name: "pkgdoc",
	Doc:  "require a package-level doc comment on at least one file of every package",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return nil
		}
	}
	if len(pass.Files) == 0 {
		return nil
	}
	pass.Reportf(pass.Files[0].Name.Pos(),
		"package %s has no package-level doc comment on any file; document what the package is for",
		pass.Pkg.Name())
	return nil
}
