package nodoc // want `pkgdoc: package nodoc has no package-level doc comment`

// A has a doc comment, but the package clause itself has none on any
// file — that is the finding.
func A() int { return 1 }
