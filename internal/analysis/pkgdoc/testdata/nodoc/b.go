package nodoc

// B also carries only function-level docs.
func B() int { return 2 }
