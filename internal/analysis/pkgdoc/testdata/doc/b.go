package doc

// B lives in a doc-less file of a documented package: fine, one
// documented file per package suffices.
func B() int { return 2 }
