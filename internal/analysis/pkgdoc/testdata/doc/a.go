// Package doc carries a package-level doc comment on its first file,
// which is all the pkgdoc analyzer asks of a package.
package doc

func A() int { return 1 }
