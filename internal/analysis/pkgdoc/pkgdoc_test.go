package pkgdoc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pkgdoc"
)

func TestPkgdocMissing(t *testing.T) {
	analysistest.Run(t, pkgdoc.Analyzer, "testdata/nodoc", "repro/internal/nodoc")
}

func TestPkgdocPresent(t *testing.T) {
	analysistest.RunExpectNone(t, pkgdoc.Analyzer, "testdata/doc", "repro/internal/doc")
}
