// Package analysistest runs a simlint analyzer over fixture packages in
// a testdata directory and diffs its findings against `// want` comments
// embedded in the fixtures, mirroring the golden-test workflow of
// golang.org/x/tools/go/analysis/analysistest:
//
//	m := map[string]int{}
//	for k := range m { // want `maprange: .*`
//		out = append(out, k)
//	}
//
// A want comment is a backquoted regular expression that must match a
// diagnostic reported on the same line; lines without a want comment
// must produce no diagnostic. Fixtures live under testdata/<name>/ so
// the deliberately-broken code stays out of the module's build graph,
// and each fixture directory is compiled as a single package whose
// import path the test chooses (most pose as repro/internal/... so the
// path-scoped analyzers fire).
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run type-checks the fixture package rooted at dir (a directory of .go
// files), runs the analyzer over it under the posed import path, and
// reports any mismatch between diagnostics and `// want` comments as
// test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	result := run(t, a, dir, importPath)
	check(t, a.Name, result.fset, result.diags, wants(t, result.files))
}

// result carries one fixture run's outcome.
type result struct {
	fset  *token.FileSet
	diags []analysis.Diagnostic
	files []string
}

func run(t *testing.T, a *analysis.Analyzer, dir, importPath string) result {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	sort.Strings(files)

	pkg, err := load.Check(importPath, files)
	if err != nil {
		t.Fatalf("compiling fixtures: %v", err)
	}
	diags, err := analysis.RunAnalyzer(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, importPath)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return result{fset: pkg.Fset, diags: diags, files: files}
}

// RunExpectNone type-checks the fixture package at dir under the posed
// import path and asserts the analyzer reports nothing at all, `// want`
// comments notwithstanding. Path-scoped analyzers use it to verify they
// stay quiet when the same violating code sits outside their scope.
func RunExpectNone(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	result := run(t, a, dir, importPath)
	for _, d := range result.diags {
		pos := result.fset.Position(d.Pos)
		t.Errorf("%s:%d: unexpected diagnostic outside analyzer scope: %s: %s", pos.Filename, pos.Line, d.Category, d.Message)
	}
}

// StripWants removes `// want ...` expectation comments from fixture
// source, for tests that need a plain copy of a fixture (e.g. to
// exercise fix application on disk).
func StripWants(src string) string {
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		if loc := wantRE.FindStringIndex(line); loc != nil {
			lines[i] = strings.TrimRight(line[:loc[0]], " \t")
		}
	}
	return strings.Join(lines, "\n")
}

// want is one expectation: a regexp that must match a diagnostic
// reported at file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("// want `([^`]*)`")

func wants(t *testing.T, files []string) []*want {
	t.Helper()
	var out []*want
	for _, fn := range files {
		data, err := os.ReadFile(fn)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", fn, i+1, err)
			}
			out = append(out, &want{file: fn, line: i + 1, re: re})
		}
	}
	return out
}

func check(t *testing.T, name string, fset *token.FileSet, diags []analysis.Diagnostic, wanted []*want) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		text := fmt.Sprintf("%s: %s", d.Category, d.Message)
		matched := false
		for _, w := range wanted {
			if w.hit || filepath.Clean(w.file) != filepath.Clean(pos.Filename) || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(text) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, text)
		}
	}
	for _, w := range wanted {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q from %s, got none", w.file, w.line, w.re, name)
		}
	}
}
