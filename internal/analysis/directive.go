package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//simlint:ignore maprange -- CSV column order is canonicalised downstream
//
// The directive names one or more analyzers (comma-separated) and MUST
// carry a reason after " -- "; a reasonless ignore is itself reported by
// CheckDirectives. A directive suppresses matching diagnostics on its
// own line and on the line directly below it (the usual comment-above-
// statement placement).
const ignorePrefix = "simlint:ignore"

// directive is one parsed //simlint:ignore comment.
type directive struct {
	line      int // line the comment sits on
	names     []string
	hasReason bool
	pos       token.Pos
}

func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				d := directive{line: fset.Position(c.Pos()).Line, pos: c.Pos()}
				if names, reason, ok := strings.Cut(rest, "--"); ok {
					d.hasReason = strings.TrimSpace(reason) != ""
					rest = names
				}
				d.names = strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
				out = append(out, d)
			}
		}
	}
	return out
}

// Suppress drops diagnostics covered by a well-formed //simlint:ignore
// directive for their analyzer on the same line or the line above.
func Suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	dirs := parseDirectives(fset, files)
	if len(dirs) == 0 {
		return diags
	}
	// covered["name"] holds the set of suppressed lines for one analyzer.
	covered := map[string]map[int]bool{}
	for _, d := range dirs {
		if !d.hasReason {
			continue // malformed; CheckDirectives reports it
		}
		for _, n := range d.names {
			if covered[n] == nil {
				covered[n] = map[int]bool{}
			}
			covered[n][d.line] = true
			covered[n][d.line+1] = true
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		if covered[d.Category][fset.Position(d.Pos).Line] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// CheckDirectives validates every //simlint:ignore in files: each must
// name at least one known analyzer and carry a " -- reason" tail. Known
// maps analyzer name -> true; pass nil to skip the name check.
func CheckDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range parseDirectives(fset, files) {
		switch {
		case !d.hasReason:
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Category: "simlint",
				Message:  "simlint:ignore directive needs a reason: //simlint:ignore <analyzer> -- <why>",
			})
		case len(d.names) == 0:
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Category: "simlint",
				Message:  "simlint:ignore directive names no analyzer",
			})
		default:
			for _, n := range d.names {
				if known != nil && !known[n] {
					out = append(out, Diagnostic{
						Pos:      d.pos,
						Category: "simlint",
						Message:  fmt.Sprintf("simlint:ignore names unknown analyzer %q (known: %s)", n, knownList(known)),
					})
				}
			}
		}
	}
	return out
}

func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
