// Package simlint assembles the repository's analyzer suite — maprange,
// wallclock, globalrand, totalorder, hotpath, pkgdoc — into one runner
// shared by the cmd/simlint multichecker and the self-check test that
// keeps the repo lint-clean. See ARCHITECTURE.md's "Static analysis"
// section for what each analyzer enforces and why.
package simlint

import (
	"fmt"
	"go/token"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/load"
	"repro/internal/analysis/maprange"
	"repro/internal/analysis/pkgdoc"
	"repro/internal/analysis/totalorder"
	"repro/internal/analysis/wallclock"
)

// Analyzers is the full suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	globalrand.Analyzer,
	hotpath.Analyzer,
	maprange.Analyzer,
	pkgdoc.Analyzer,
	totalorder.Analyzer,
	wallclock.Analyzer,
}

// Known maps analyzer name -> true, for validating ignore directives.
func Known() map[string]bool {
	m := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		m[a.Name] = true
	}
	return m
}

// Finding is one reported diagnostic with its resolved position.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
	Fixes    []analysis.SuggestedFix
	fset     *token.FileSet
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
}

// Run loads the packages matching patterns (resolved in dir) and runs
// the whole suite plus directive validation, returning findings sorted
// by position.
func Run(dir string, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	known := Known()
	var out []Finding
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range Analyzers {
			ds, err := analysis.RunAnalyzer(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.ImportPath)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			diags = append(diags, ds...)
		}
		diags = append(diags, analysis.CheckDirectives(pkg.Fset, pkg.Files, known)...)
		for _, d := range diags {
			out = append(out, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: d.Category,
				Message:  d.Message,
				Fixes:    d.SuggestedFixes,
				fset:     pkg.Fset,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ApplyFixes applies the first suggested fix of every finding that has
// one, editing files in place, and returns how many findings it fixed.
// Edits are applied per file from the end backwards so earlier offsets
// stay valid.
func ApplyFixes(findings []Finding) (int, error) {
	type edit struct {
		start, end int // byte offsets
		newText    []byte
	}
	perFile := map[string][]edit{}
	fixed := 0
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		fixed++
		for _, te := range f.Fixes[0].TextEdits {
			start := f.fset.Position(te.Pos)
			end := f.fset.Position(te.End)
			perFile[start.Filename] = append(perFile[start.Filename], edit{start.Offset, end.Offset, te.NewText})
		}
	}
	files := make([]string, 0, len(perFile))
	for name := range perFile {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		edits := perFile[name]
		data, err := os.ReadFile(name)
		if err != nil {
			return fixed, err
		}
		sort.SliceStable(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			if e.start < 0 || e.end > len(data) || e.start > e.end {
				return fixed, fmt.Errorf("fix out of range in %s", name)
			}
			data = append(data[:e.start], append(e.newText, data[e.end:]...)...)
		}
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return fixed, err
		}
	}
	return fixed, nil
}
