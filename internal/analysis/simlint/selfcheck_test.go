package simlint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/simlint"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean is the smoke test the CI gate depends on: the
// whole module must run clean under every analyzer, so a violation
// introduced anywhere fails here before it ships as golden churn or a
// bench regression.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module via go list -export; skipped in -short")
	}
	findings, err := simlint.Run(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("simlint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestSuiteShape(t *testing.T) {
	if len(simlint.Analyzers) != 6 {
		t.Fatalf("suite has %d analyzers, want 6", len(simlint.Analyzers))
	}
	known := simlint.Known()
	for _, name := range []string{"maprange", "wallclock", "globalrand", "totalorder", "hotpath", "pkgdoc"} {
		if !known[name] {
			t.Errorf("missing analyzer %q", name)
		}
	}
	for _, a := range simlint.Analyzers {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
