// Package fixture holds the allowlisted side of the globalrand check:
// internal/rng itself wraps the entropy sources, so the same imports
// that are rejected elsewhere must pass when the package poses as
// repro/internal/rng.
package fixture

import (
	crand "crypto/rand"
	"math/rand"
)

// Roll is fine here: internal/rng is the one place generators live.
func Roll() int { return rand.Intn(6) }

// Entropy is fine here for the same reason.
func Entropy(buf []byte) { _, _ = crand.Read(buf) }
