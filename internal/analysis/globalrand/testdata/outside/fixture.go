// Package fixture exercises the globalrand analyzer: entropy-bearing
// imports outside internal/rng are flagged; the seeded streams and
// annotated imports pass.
package fixture

import (
	crand "crypto/rand" // want `globalrand: import of crypto/rand outside internal/rng`
	"math/rand"         // want `globalrand: import of math/rand outside internal/rng`
)

// Roll consumes the global generator whose sequence depends on every
// other consumer: the import above is the finding.
func Roll() int { return rand.Intn(6) }

// Entropy reads true randomness, unreproducible by construction.
func Entropy(buf []byte) { _, _ = crand.Read(buf) }
