// Package globalrand confines randomness to the repository's seeded,
// splittable streams. Importing math/rand (or /v2, or crypto/rand)
// anywhere but internal/rng introduces either a global generator whose
// sequence depends on what other code consumed before you, or true
// entropy — both destroy run-to-run reproducibility. All stochastic
// behaviour (arrival processes, queue shuffles, synthetic traces) must
// flow through internal/rng's pure hash streams, which are a function
// of the seed alone.
package globalrand

import (
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// bannedImports are the entropy-bearing packages only internal/rng may
// wrap.
var bannedImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// Analyzer is the globalrand check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand and crypto/rand outside internal/rng — all randomness derives from the seeded splittable streams",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.PkgPath, "/internal/rng") || pass.PkgPath == "internal/rng" {
		return nil
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || !bannedImports[path] {
				continue
			}
			pass.Reportf(spec.Pos(),
				"import of %s outside internal/rng: global or true randomness breaks seed-reproducibility; use internal/rng's seeded streams",
				path)
		}
	}
	return nil
}
