package globalrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/globalrand"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, globalrand.Analyzer, "testdata/outside", "repro/internal/fixture")
}

// TestGlobalRandAllowsRNG verifies internal/rng itself may import the
// entropy sources it wraps.
func TestGlobalRandAllowsRNG(t *testing.T) {
	analysistest.RunExpectNone(t, globalrand.Analyzer, "testdata/insiderng", "repro/internal/rng")
}
