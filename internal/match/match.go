// Package match implements the paper's contention-minimization step
// (Section 3.2.3): given the per-class interference matrix and the class
// composition of the waiting queue, it chooses how many co-run groups of
// each class pattern to form so that total inverse slowdown — and hence
// device throughput — is maximized, solving the integer linear program
// of Equations 3.3–3.7 exactly.
package match

import (
	"fmt"
	"math"

	"repro/internal/classify"
	"repro/internal/ilp"
	"repro/internal/interference"
)

// Pattern is a multiset of NC classes co-scheduled on the device, kept
// in non-decreasing class order (Equation 3.1's vector form).
type Pattern []classify.Class

// String renders the pattern as "M-MC" style.
func (p Pattern) String() string {
	s := ""
	for i, c := range p {
		if i > 0 {
			s += "-"
		}
		s += c.String()
	}
	return s
}

// Count returns how many members of class c the pattern has.
func (p Pattern) Count(c classify.Class) int {
	n := 0
	for _, x := range p {
		if x == c {
			n++
		}
	}
	return n
}

// Patterns enumerates every class multiset of size nc in lexicographic
// order; the count is NP = C(NT+NC-1, NC) (Equation 3.2).
func Patterns(nc int) []Pattern {
	var out []Pattern
	var rec func(start classify.Class, cur Pattern)
	rec = func(start classify.Class, cur Pattern) {
		if len(cur) == nc {
			out = append(out, append(Pattern(nil), cur...))
			return
		}
		for c := start; c < classify.NumClasses; c++ {
			rec(c, append(cur, c))
		}
	}
	rec(0, nil)
	return out
}

// NumPatterns returns C(NT+NC-1, NC).
func NumPatterns(nc int) int {
	n := int(classify.NumClasses) + nc - 1
	k := nc
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
	}
	return r
}

// MemberSlowdown predicts member i's slowdown under pattern p from the
// interference matrix — the s_i ingredient of Equation 3.4. Besides the
// efficiency computation below, the fleet layer uses it to estimate
// when a running group will free its device (preemption decisions).
// Member order within p does not matter; the lookups are symmetric.
func MemberSlowdown(m *interference.Matrix, p Pattern, i int) float64 {
	ci := p[i]
	var s float64
	switch len(p) {
	case 1:
		s = 1
	case 2:
		s = m.At(ci, p[1-i])
	case 3:
		s = m.TripleSlowdown(ci, p[(i+1)%3], p[(i+2)%3])
	default:
		// General composition: multiply pairwise contention factors.
		s = float64(len(p))
		for j, cj := range p {
			if j != i {
				s *= m.At(ci, cj) / 2
			}
		}
	}
	if s <= 0 {
		s = float64(len(p))
	}
	return s
}

// Efficiency computes e_k for a pattern (Equation 3.4): the mean of the
// members' inverse slowdowns under that co-schedule.
func Efficiency(m *interference.Matrix, p Pattern) float64 {
	sum := 0.0
	for i := range p {
		sum += 1 / MemberSlowdown(m, p, i)
	}
	return sum / float64(len(p))
}

// AgedEfficiencies rescales pattern efficiencies by member wait time
// (aging): pattern k's efficiency is multiplied by 1 + aging*w̄, where
// w̄ is the mean of classWait over the pattern's members and
// classWait[c] is class c's wait signal normalized to [0,1] (0 = fresh,
// 1 = the longest-waiting job in the dispatch window). With aging == 1
// a pattern of maximally starved members doubles its appeal, so the
// windowed ILP optimizes tail latency alongside raw packing efficiency;
// aging == 0 returns a copy of eff unchanged.
func AgedEfficiencies(patterns []Pattern, eff []float64, classWait [classify.NumClasses]float64, aging float64) []float64 {
	out := make([]float64, len(eff))
	for k, p := range patterns {
		sum := 0.0
		for _, c := range p {
			sum += classWait[c]
		}
		out[k] = eff[k] * (1 + aging*sum/float64(len(p)))
	}
	return out
}

// Result is the matcher's output: how many groups of each pattern to
// form.
type Result struct {
	NC        int
	Patterns  []Pattern
	Counts    []int
	Eff       []float64
	Objective float64
	// Groups is the total number of full groups (L in the paper).
	Groups int
}

// String renders the selected patterns.
func (r Result) String() string {
	s := fmt.Sprintf("f=%.4f groups=%d:", r.Objective, r.Groups)
	for i, c := range r.Counts {
		if c > 0 {
			s += fmt.Sprintf(" %dx%s", c, r.Patterns[i])
		}
	}
	return s
}

// BuildProblem assembles the ILP of Equations 3.3–3.7 for a queue with
// queueCounts applications of each class, forming groups of size nc.
// eff[k] must hold e_k for pattern k.
func BuildProblem(patterns []Pattern, eff []float64, queueCounts [classify.NumClasses]int, nc int) ilp.Problem {
	np := len(patterns)
	total := 0
	for _, n := range queueCounts {
		total += n
	}
	groups := total / nc
	cons := make([]ilp.Constraint, 0, int(classify.NumClasses)+1)
	// Per-class usage cannot exceed availability (Equation 3.6; the
	// appendix relaxes the equality to ≤ so a remainder is allowed).
	for c := classify.Class(0); c < classify.NumClasses; c++ {
		row := make([]float64, np)
		for k, p := range patterns {
			row[k] = float64(p.Count(c))
		}
		cons = append(cons, ilp.Constraint{Coeffs: row, Rel: ilp.LE, RHS: float64(queueCounts[c])})
	}
	// Exactly L groups are formed (Equation 3.7).
	ones := make([]float64, np)
	for k := range ones {
		ones[k] = 1
	}
	cons = append(cons, ilp.Constraint{Coeffs: ones, Rel: ilp.EQ, RHS: float64(groups)})
	integer := make([]bool, np)
	for k := range integer {
		integer[k] = true
	}
	return ilp.Problem{Objective: eff, Constraints: cons, Integer: integer}
}

// Solve chooses the optimal pattern multiplicities for the queue.
func Solve(m *interference.Matrix, queueCounts [classify.NumClasses]int, nc int) (Result, error) {
	if nc < 2 {
		return Result{}, fmt.Errorf("match: group size %d must be at least 2", nc)
	}
	patterns := Patterns(nc)
	eff := make([]float64, len(patterns))
	for k, p := range patterns {
		eff[k] = Efficiency(m, p)
	}
	return SolveWithEff(patterns, eff, queueCounts, nc)
}

// SolveWithEff is Solve with externally supplied pattern efficiencies
// (used by tests reproducing Appendix A's literal numbers).
func SolveWithEff(patterns []Pattern, eff []float64, queueCounts [classify.NumClasses]int, nc int) (Result, error) {
	prob := BuildProblem(patterns, eff, queueCounts, nc)
	sol, err := ilp.Solve(prob)
	if err != nil {
		return Result{}, err
	}
	if sol.Status != ilp.Optimal {
		return Result{}, fmt.Errorf("match: ILP %v", sol.Status)
	}
	res := Result{
		NC:        nc,
		Patterns:  patterns,
		Eff:       eff,
		Counts:    make([]int, len(patterns)),
		Objective: sol.Objective,
	}
	for k, v := range sol.X {
		res.Counts[k] = int(math.Round(v))
		res.Groups += res.Counts[k]
	}
	return res, nil
}
