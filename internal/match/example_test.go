package match_test

import (
	"fmt"

	"repro/internal/match"
)

// ExamplePatterns enumerates the class multisets of Equation 3.2: with
// NT=4 classes and groups of NC=2, there are C(5,2) = 10 patterns.
func ExamplePatterns() {
	patterns := match.Patterns(2)
	fmt.Printf("%d patterns for NC=2\n", len(patterns))
	fmt.Printf("first %v, last %v\n", patterns[0], patterns[len(patterns)-1])
	// Output:
	// 10 patterns for NC=2
	// first M-M, last A-A
}
