package match

import (
	"testing"
	"testing/quick"

	"repro/internal/classify"
	"repro/internal/interference"
)

func randomMatrix(seed uint64) *interference.Matrix {
	m := &interference.Matrix{}
	s := seed
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>40) / float64(1<<24)
	}
	for a := range m.Slowdown {
		for b := range m.Slowdown[a] {
			m.Slowdown[a][b] = 1.5 + 6*next()
			m.Samples[a][b] = 1
		}
	}
	return m
}

// TestGreedyNeverBeatsILP is the optimality cross-check: on random
// interference matrices and queue compositions the exact solver's
// objective must always be at least the greedy heuristic's.
func TestGreedyNeverBeatsILP(t *testing.T) {
	f := func(seed uint64, c0, c1, c2, c3 uint8) bool {
		m := randomMatrix(seed)
		counts := [classify.NumClasses]int{
			int(c0 % 6), int(c1 % 6), int(c2 % 6), int(c3 % 6),
		}
		total := counts[0] + counts[1] + counts[2] + counts[3]
		if total < 2 {
			return true
		}
		exact, err := Solve(m, counts, 2)
		if err != nil {
			t.Logf("ilp error: %v", err)
			return false
		}
		greedy, err := SolveGreedy(m, counts, 2)
		if err != nil {
			t.Logf("greedy error: %v", err)
			return false
		}
		if greedy.Groups != exact.Groups {
			t.Logf("group counts differ: greedy %d vs ilp %d", greedy.Groups, exact.Groups)
			return false
		}
		if greedy.Objective > exact.Objective+1e-9 {
			t.Logf("greedy %.6f beats ilp %.6f for counts %v", greedy.Objective, exact.Objective, counts)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedySuboptimalExample pins a case where greedy is strictly
// worse: committing the locally best pattern starves the global
// optimum.
func TestGreedySuboptimalExample(t *testing.T) {
	m := &interference.Matrix{}
	for a := range m.Slowdown {
		for b := range m.Slowdown[a] {
			m.Slowdown[a][b] = 10
			m.Samples[a][b] = 1
		}
	}
	// M-A is superb, M-M and A-A are terrible, M-C and A-C are decent.
	set := func(a, b classify.Class, v float64) {
		m.Slowdown[a][b] = v
		m.Slowdown[b][a] = v
	}
	set(classify.ClassM, classify.ClassA, 1.2)
	set(classify.ClassM, classify.ClassC, 2.0)
	set(classify.ClassA, classify.ClassC, 2.0)
	// Queue: 1 M, 1 A, 2 C. Greedy takes M-A first, leaving the dire
	// C-C pair; the optimum is M-C + A-C.
	counts := [classify.NumClasses]int{}
	counts[classify.ClassM] = 1
	counts[classify.ClassA] = 1
	counts[classify.ClassC] = 2
	exact, err := Solve(m, counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := SolveGreedy(m, counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Objective >= exact.Objective-1e-9 {
		t.Fatalf("expected greedy (%.4f) to be strictly worse than ILP (%.4f)",
			greedy.Objective, exact.Objective)
	}
}

func TestGreedyRespectsAvailability(t *testing.T) {
	m := randomMatrix(7)
	counts := [classify.NumClasses]int{2, 3, 1, 4}
	res, err := SolveGreedy(m, counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	var used [classify.NumClasses]int
	for k, n := range res.Counts {
		for _, c := range res.Patterns[k] {
			used[c] += n
		}
	}
	for c := range used {
		if used[c] > counts[c] {
			t.Fatalf("class %d used %d > available %d", c, used[c], counts[c])
		}
	}
	if res.Groups != 5 {
		t.Fatalf("groups = %d, want 5", res.Groups)
	}
}
