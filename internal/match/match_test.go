package match

import (
	"math"
	"testing"

	"repro/internal/classify"
	"repro/internal/interference"
)

func TestPatternsCount(t *testing.T) {
	for nc := 2; nc <= 4; nc++ {
		got := len(Patterns(nc))
		want := NumPatterns(nc)
		if got != want {
			t.Fatalf("nc=%d: %d patterns, want %d", nc, got, want)
		}
	}
	if NumPatterns(2) != 10 {
		t.Fatalf("NP for NC=2 should be 10 (paper), got %d", NumPatterns(2))
	}
	if NumPatterns(3) != 20 {
		t.Fatalf("NP for NC=3 should be 20, got %d", NumPatterns(3))
	}
}

func TestPatternsSortedAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Patterns(3) {
		for i := 1; i < len(p); i++ {
			if p[i] < p[i-1] {
				t.Fatalf("pattern %v not sorted", p)
			}
		}
		if seen[p.String()] {
			t.Fatalf("duplicate pattern %v", p)
		}
		seen[p.String()] = true
	}
}

// TestAppendixAExample reproduces the worked example of Appendix A: a
// queue of 2 class M, 5 class MC, 2 class C and 5 class A applications
// with the thesis's literal e_k coefficients. The optimal solution the
// thesis reports is L3(M-C)=2, L5(MC-MC)=2, L7(MC-A)=1, L10(A-A)=2 with
// f = 0.4718.
func TestAppendixAExample(t *testing.T) {
	patterns := Patterns(2)
	labels := make([]string, len(patterns))
	for i, p := range patterns {
		labels[i] = p.String()
	}
	want := []string{"M-M", "M-MC", "M-C", "M-A", "MC-MC", "MC-C", "MC-A", "C-C", "C-A", "A-A"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("pattern order mismatch at %d: got %s want %s", i, labels[i], want[i])
		}
	}
	eff := []float64{0.0072, 0.0110, 0.0146, 0.03584, 0.0204, 0.0202, 0.0698, 0.0178, 0.0412, 0.166}
	counts := [classify.NumClasses]int{}
	counts[classify.ClassM] = 2
	counts[classify.ClassMC] = 5
	counts[classify.ClassC] = 2
	counts[classify.ClassA] = 5
	res, err := SolveWithEff(patterns, eff, counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 7 {
		t.Fatalf("groups = %d, want 7", res.Groups)
	}
	wantObj := 2*0.0146 + 2*0.0204 + 1*0.0698 + 2*0.166
	if math.Abs(res.Objective-wantObj) > 1e-9 {
		t.Fatalf("objective = %v, want %v (thesis solution)", res.Objective, wantObj)
	}
	wantCounts := []int{0, 0, 2, 0, 2, 0, 1, 0, 0, 2}
	for k := range wantCounts {
		if res.Counts[k] != wantCounts[k] {
			t.Fatalf("counts = %v, want %v", res.Counts, wantCounts)
		}
	}
}

// TestSolveRespectsAvailability: pattern usage never exceeds queue
// counts, and the group total is floor(Nq/NC).
func TestSolveRespectsAvailability(t *testing.T) {
	m := &interference.Matrix{}
	for a := range m.Slowdown {
		for b := range m.Slowdown[a] {
			m.Slowdown[a][b] = 2 + 0.5*float64(a+b)
			m.Samples[a][b] = 1
		}
	}
	counts := [classify.NumClasses]int{3, 4, 2, 6} // Nq=15, NC=2 → 7 groups
	res, err := Solve(m, counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 7 {
		t.Fatalf("groups = %d, want 7", res.Groups)
	}
	var used [classify.NumClasses]int
	for k, c := range res.Counts {
		for _, cls := range res.Patterns[k] {
			used[cls] += c
		}
	}
	for cls, u := range used {
		if u > counts[cls] {
			t.Fatalf("class %v used %d > available %d", classify.Class(cls), u, counts[cls])
		}
	}
}

// TestSolvePrefersComplementaryClasses: with a matrix where M-M co-runs
// are catastrophic and M-A benign, the matcher must avoid pairing the
// two M applications together.
func TestSolvePrefersComplementaryClasses(t *testing.T) {
	m := &interference.Matrix{}
	for a := range m.Slowdown {
		for b := range m.Slowdown[a] {
			m.Slowdown[a][b] = 2.2
			m.Samples[a][b] = 1
		}
	}
	m.Slowdown[classify.ClassM][classify.ClassM] = 9
	m.Slowdown[classify.ClassA][classify.ClassM] = 2.1
	m.Slowdown[classify.ClassM][classify.ClassA] = 2.3
	counts := [classify.NumClasses]int{}
	counts[classify.ClassM] = 2
	counts[classify.ClassA] = 2
	res, err := Solve(m, counts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range res.Counts {
		if c > 0 && res.Patterns[k].String() == "M-M" {
			t.Fatalf("matcher chose M-M despite catastrophic interference: %v", res)
		}
	}
}

func TestSolveThreeWay(t *testing.T) {
	m := &interference.Matrix{}
	for a := range m.Slowdown {
		for b := range m.Slowdown[a] {
			m.Slowdown[a][b] = 2.5
			m.Samples[a][b] = 1
		}
	}
	counts := [classify.NumClasses]int{3, 3, 3, 3} // 12 apps → 4 triples
	res, err := Solve(m, counts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 4 {
		t.Fatalf("groups = %d, want 4", res.Groups)
	}
}

func TestEfficiencySymmetricPair(t *testing.T) {
	m := &interference.Matrix{}
	m.Slowdown[classify.ClassM][classify.ClassA] = 4
	m.Samples[classify.ClassM][classify.ClassA] = 1
	m.Slowdown[classify.ClassA][classify.ClassM] = 2
	m.Samples[classify.ClassA][classify.ClassM] = 1
	p := Pattern{classify.ClassM, classify.ClassA}
	got := Efficiency(m, p)
	want := 0.5 * (1.0/4 + 1.0/2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("efficiency = %v, want %v", got, want)
	}
}
