package match

import (
	"fmt"
	"sort"

	"repro/internal/classify"
	"repro/internal/interference"
)

// SolveGreedy is a baseline matcher: it repeatedly takes the remaining
// pattern with the highest efficiency e_k that the queue can still
// supply, without lookahead. It is the natural heuristic an
// implementation might ship instead of an exact solver; the exact ILP
// (Solve) dominates it whenever committing the best local pattern
// starves a better global combination. Exposed for the ablation
// comparison and as a cross-check oracle in tests (greedy can never
// beat the ILP optimum).
func SolveGreedy(m *interference.Matrix, queueCounts [classify.NumClasses]int, nc int) (Result, error) {
	if nc < 2 {
		return Result{}, fmt.Errorf("match: group size %d must be at least 2", nc)
	}
	patterns := Patterns(nc)
	eff := make([]float64, len(patterns))
	order := make([]int, len(patterns))
	for k, p := range patterns {
		eff[k] = Efficiency(m, p)
		order[k] = k
	}
	sort.SliceStable(order, func(i, j int) bool { return eff[order[i]] > eff[order[j]] })

	total := 0
	for _, n := range queueCounts {
		total += n
	}
	groups := total / nc
	remaining := queueCounts
	res := Result{NC: nc, Patterns: patterns, Eff: eff, Counts: make([]int, len(patterns))}
	for res.Groups < groups {
		placed := false
		for _, k := range order {
			if fits(patterns[k], remaining) {
				take(patterns[k], &remaining)
				res.Counts[k]++
				res.Objective += eff[k]
				res.Groups++
				placed = true
				break
			}
		}
		if !placed {
			// Queue exhausted early (cannot happen while groups*nc <=
			// total, but guard against future pattern-set changes).
			break
		}
	}
	return res, nil
}

func fits(p Pattern, remaining [classify.NumClasses]int) bool {
	var need [classify.NumClasses]int
	for _, c := range p {
		need[c]++
	}
	for c := range need {
		if need[c] > remaining[c] {
			return false
		}
	}
	return true
}

func take(p Pattern, remaining *[classify.NumClasses]int) {
	for _, c := range p {
		remaining[c]--
	}
}
