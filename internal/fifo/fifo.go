// Package fifo provides a head-indexed FIFO queue for the simulator's
// hot loops. The naive idiom q = q[1:] leaks the popped element's slot
// forever: the backing array can never be reused and every queue that
// stays non-empty reallocates without bound. Queue instead advances a
// head index, recycles the backing array outright whenever the queue
// drains, and compacts in place once the dead prefix dominates, so
// steady-state push/pop performs no allocations.
package fifo

// Queue is a FIFO over T with O(1) amortized push/pop and no
// steady-state allocations. The zero value is an empty queue.
type Queue[T any] struct {
	buf  []T
	head int
}

// compactAt bounds the dead prefix: once at least compactAt popped slots
// accumulate and they make up half the backing array, the live tail is
// copied down. Amortized O(1): each element moves at most once per
// doubling of the dead prefix.
const compactAt = 32

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.buf) - q.head }

// Push appends v to the tail.
func (q *Queue[T]) Push(v T) {
	if q.head >= compactAt && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		clearTail(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, v)
}

// Peek returns a pointer to the head element, or nil when empty. The
// pointer is invalidated by the next Push or Pop.
func (q *Queue[T]) Peek() *T {
	if q.head >= len(q.buf) {
		return nil
	}
	return &q.buf[q.head]
}

// At returns a pointer to the i-th queued element (0 = head). The
// pointer is invalidated by the next Push or Pop.
func (q *Queue[T]) At(i int) *T { return &q.buf[q.head+i] }

// Pop removes and returns the head element. It panics on an empty queue
// (callers check Len or Peek first).
func (q *Queue[T]) Pop() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release references held by the dead slot
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}

// clearTail zeroes released slots so popped elements do not pin heap
// objects through the backing array.
func clearTail[T any](s []T) {
	var zero T
	for i := range s {
		s[i] = zero
	}
}
