package fifo

import "testing"

func TestOrderAndLen(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 || q.Peek() != nil {
		t.Fatal("zero value must be empty")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		if p := q.Peek(); p == nil || *p != i {
			t.Fatalf("Peek = %v, want %d", p, i)
		}
		if got := q.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if q.Len() != 0 || q.Peek() != nil {
		t.Fatal("queue must be empty after draining")
	}
}

func TestAt(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	for i := 0; i < 5; i++ {
		q.Pop()
	}
	for i := 0; i < q.Len(); i++ {
		if got := *q.At(i); got != 5+i {
			t.Fatalf("At(%d) = %d, want %d", i, got, 5+i)
		}
	}
}

// TestInterleavedNoGrowth drives a never-empty queue long enough to
// trigger compaction many times and checks FIFO order survives while
// the backing array stays bounded.
func TestInterleavedNoGrowth(t *testing.T) {
	var q Queue[int]
	next, expect := 0, 0
	for i := 0; i < 8; i++ {
		q.Push(next)
		next++
	}
	for round := 0; round < 10000; round++ {
		q.Push(next)
		next++
		if got := q.Pop(); got != expect {
			t.Fatalf("round %d: Pop = %d, want %d", round, got, expect)
		}
		expect++
	}
	if c := cap(q.buf); c > 4*compactAt+16 {
		t.Fatalf("backing array grew to %d for a depth-9 queue", c)
	}
}

func TestSteadyStateAllocs(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 256; i++ {
		q.Push(i) // warm capacity
	}
	for q.Len() > 0 {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			q.Push(i)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady state allocated %.1f times per run, want 0", allocs)
	}
}

func TestPopReleasesReferences(t *testing.T) {
	var q Queue[*int]
	v := new(int)
	q.Push(v)
	q.Push(new(int))
	q.Pop()
	if q.buf[0] != nil {
		t.Fatal("popped slot must not pin its element")
	}
}
