// Package icnt models the on-chip interconnect between SIMT cores and
// memory partitions: a crossbar with a fixed traversal latency, bounded
// per-partition input queues, and an aggregate per-direction bandwidth
// budget. The request direction (SM→partition) and the response
// direction (partition→SM) contend independently, so heavy fill traffic
// (the paper's "L2→L1 bandwidth") saturates separately from request
// injection.
package icnt

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/fifo"
	"repro/internal/memreq"
)

type flit struct {
	req     memreq.Request
	readyAt uint64
}

// Stats counts network events per direction.
type Stats struct {
	ToMemPackets uint64
	ToMemBytes   uint64
	ToSMPackets  uint64
	ToSMBytes    uint64
	// ToMemStalls and ToSMStalls count refused injections (bandwidth or
	// queue-full), each of which the sender retries.
	ToMemStalls uint64
	ToSMStalls  uint64
}

// Network is the device interconnect. Drive Begin once per cycle before
// any sends, then TrySend*/PopFor* freely within the cycle.
type Network struct {
	cfg        config.IcntConfig
	partitions int
	lineBytes  int

	toMem  []fifo.Queue[flit] // per-partition input queues
	toSM   fifo.Queue[flit]   // single response stream, routed by req.SM
	budget struct {
		toMem int
		toSM  int
	}
	stats Stats
	// perAppToSM accumulates response bytes per application: this is the
	// paper's L2→L1 bandwidth numerator. It grows on demand.
	perAppToSM []uint64
	// arrivedBuf backs PopArrivedToSM's return value so per-cycle
	// response delivery performs no allocations.
	arrivedBuf []memreq.Request
}

// New builds a network for the given partition count.
func New(cfg config.IcntConfig, partitions, lineBytes int) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if partitions <= 0 {
		return nil, fmt.Errorf("icnt: partitions must be positive (got %d)", partitions)
	}
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("icnt: line size must be a positive power of two (got %d)", lineBytes)
	}
	return &Network{
		cfg:        cfg,
		partitions: partitions,
		lineBytes:  lineBytes,
		toMem:      make([]fifo.Queue[flit], partitions),
	}, nil
}

// MustNew is New panicking on error.
func MustNew(cfg config.IcntConfig, partitions, lineBytes int) *Network {
	n, err := New(cfg, partitions, lineBytes)
	if err != nil {
		panic(err)
	}
	return n
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats { return n.stats }

// Progress returns a monotone counter of accepted packets in both
// directions, for cheap per-cycle activity detection.
func (n *Network) Progress() uint64 { return n.stats.ToMemPackets + n.stats.ToSMPackets }

// AppToSMBytes returns response bytes delivered toward SMs for app.
func (n *Network) AppToSMBytes(app int16) uint64 {
	if app < 0 || int(app) >= len(n.perAppToSM) {
		return 0
	}
	return n.perAppToSM[app]
}

// Partition maps a line address to its memory partition. Lines
// interleave round-robin (GPGPU-Sim style fine-grained interleaving), so
// streams spread across controllers while row locality inside each
// controller is preserved.
func (n *Network) Partition(line uint64) int {
	return int((line / uint64(n.lineBytes)) % uint64(n.partitions))
}

// Begin refills the per-cycle bandwidth budgets. Call once per core
// cycle. Budgets are leaky buckets: a packet larger than one cycle's
// refill injects by driving the budget negative and the debt is paid off
// over the following cycles, so configured bandwidth below the line size
// throttles rather than deadlocks.
func (n *Network) Begin() {
	n.budget.toMem += n.cfg.BytesPerCycle
	if n.budget.toMem > n.cfg.BytesPerCycle {
		n.budget.toMem = n.cfg.BytesPerCycle
	}
	n.budget.toSM += n.cfg.BytesPerCycle
	if n.budget.toSM > n.cfg.BytesPerCycle {
		n.budget.toSM = n.cfg.BytesPerCycle
	}
}

// TrySendToMem injects a request toward its partition. It fails (and the
// sender must retry) when the cycle's bandwidth budget is spent or the
// destination queue is full.
func (n *Network) TrySendToMem(req memreq.Request, now uint64) bool {
	p := n.Partition(req.Line)
	if n.toMem[p].Len() >= n.cfg.QueueSize {
		n.stats.ToMemStalls++
		return false
	}
	if n.budget.toMem <= 0 {
		n.stats.ToMemStalls++
		return false
	}
	n.budget.toMem -= int(req.Size)
	n.toMem[p].Push(flit{req: req, readyAt: now + uint64(n.cfg.LatencyCycles)})
	n.stats.ToMemPackets++
	n.stats.ToMemBytes += uint64(req.Size)
	return true
}

// TrySendToSM injects a response toward its SM, subject to the response
// bandwidth budget. The response path has no queue bound: SMs always
// sink fills.
func (n *Network) TrySendToSM(req memreq.Request, now uint64) bool {
	if n.budget.toSM <= 0 {
		n.stats.ToSMStalls++
		return false
	}
	n.budget.toSM -= int(req.Size)
	n.toSM.Push(flit{req: req, readyAt: now + uint64(n.cfg.LatencyCycles)})
	n.stats.ToSMPackets++
	n.stats.ToSMBytes += uint64(req.Size)
	if req.App >= 0 {
		for int(req.App) >= len(n.perAppToSM) {
			n.perAppToSM = append(n.perAppToSM, 0)
		}
		n.perAppToSM[req.App] += uint64(req.Size)
	}
	return true
}

// PopForPartition removes and returns the oldest arrived request queued
// for partition p, if any.
func (n *Network) PopForPartition(p int, now uint64) (memreq.Request, bool) {
	head := n.toMem[p].Peek()
	if head == nil || head.readyAt > now {
		return memreq.Request{}, false
	}
	return n.toMem[p].Pop().req, true
}

// PartitionQueueLen returns the occupancy of partition p's input queue.
func (n *Network) PartitionQueueLen(p int) int { return n.toMem[p].Len() }

// ArrivedForPartition reports whether partition p's oldest queued
// request has completed traversal and is poppable at now.
func (n *Network) ArrivedForPartition(p int, now uint64) bool {
	head := n.toMem[p].Peek()
	return head != nil && head.readyAt <= now
}

// PopArrivedToSM removes and returns every response that has completed
// traversal by now. The caller routes each to req.SM. The returned slice
// is reused by the next call; callers consume it before popping again.
func (n *Network) PopArrivedToSM(now uint64) []memreq.Request {
	out := n.arrivedBuf[:0]
	for {
		head := n.toSM.Peek()
		if head == nil || head.readyAt > now {
			break
		}
		out = append(out, n.toSM.Pop().req)
	}
	n.arrivedBuf = out
	return out
}

// Pending returns the number of messages in flight in both directions.
func (n *Network) Pending() int {
	total := n.toSM.Len()
	for p := range n.toMem {
		total += n.toMem[p].Len()
	}
	return total
}

// NoEvent is the NextEvent result of a network with nothing in flight.
const NoEvent = ^uint64(0)

// NextEvent returns the earliest future cycle (> now) at which a flit
// completes traversal and becomes poppable. Flits within one queue are
// in non-decreasing readyAt order (each is stamped now+latency at
// injection), so only queue heads matter. A head that has already
// arrived but was not drained this cycle (receiver port limit or
// backpressure) is retried next cycle.
func (n *Network) NextEvent(now uint64) uint64 {
	next := uint64(NoEvent)
	for p := range n.toMem {
		if head := n.toMem[p].Peek(); head != nil {
			if head.readyAt <= now {
				return now + 1
			}
			if head.readyAt < next {
				next = head.readyAt
			}
		}
	}
	if head := n.toSM.Peek(); head != nil {
		if head.readyAt <= now {
			return now + 1
		}
		if head.readyAt < next {
			next = head.readyAt
		}
	}
	return next
}

// FastForward refills the bandwidth budgets for span skipped idle
// cycles, as span calls to Begin would have: debt (a negative budget
// left by an oversized packet) pays off at BytesPerCycle per cycle and
// the balance saturates at one cycle's refill. Nothing else in the
// network changes during a cycle with no sends or pops.
func (n *Network) FastForward(span uint64) {
	n.budget.toMem = refill(n.budget.toMem, n.cfg.BytesPerCycle, span)
	n.budget.toSM = refill(n.budget.toSM, n.cfg.BytesPerCycle, span)
}

// refill advances a leaky-bucket balance by span per-cycle refills,
// saturating at one refill, without risking overflow on huge spans.
func refill(balance, perCycle int, span uint64) int {
	if balance >= perCycle {
		return perCycle
	}
	// Cycles needed to clear the deficit, rounded up.
	deficit := uint64(perCycle - balance)
	need := (deficit + uint64(perCycle) - 1) / uint64(perCycle)
	if span >= need {
		return perCycle
	}
	return balance + int(span)*perCycle
}
