package icnt

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/memreq"
)

func testCfg() config.IcntConfig {
	return config.IcntConfig{LatencyCycles: 4, BytesPerCycle: 64, QueueSize: 4}
}

func newNet(t *testing.T) *Network {
	t.Helper()
	n, err := New(testCfg(), 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func req(line uint64, size int32) memreq.Request {
	return memreq.Request{Kind: memreq.Read, Line: line, Size: size, App: 0}
}

func TestLatencyEnforced(t *testing.T) {
	n := newNet(t)
	n.Begin()
	if !n.TrySendToMem(req(0, 8), 10) {
		t.Fatal("send refused")
	}
	if _, ok := n.PopForPartition(0, 13); ok {
		t.Fatal("arrived before latency elapsed")
	}
	got, ok := n.PopForPartition(0, 14)
	if !ok || got.Line != 0 {
		t.Fatalf("pop = %v %v", got, ok)
	}
}

func TestPartitionRouting(t *testing.T) {
	n := newNet(t)
	n.Begin()
	// Line index interleaving: line 0 -> partition 0, line 1*128 -> 1.
	if p := n.Partition(0); p != 0 {
		t.Fatalf("partition(0) = %d", p)
	}
	if p := n.Partition(128); p != 1 {
		t.Fatalf("partition(128) = %d", p)
	}
	n.TrySendToMem(req(128, 8), 0)
	if _, ok := n.PopForPartition(0, 100); ok {
		t.Fatal("request routed to wrong partition")
	}
	if _, ok := n.PopForPartition(1, 100); !ok {
		t.Fatal("request missing from partition 1")
	}
}

func TestQueueBoundBackpressure(t *testing.T) {
	n := newNet(t)
	cfg := testCfg()
	for i := 0; i < cfg.QueueSize; i++ {
		n.Begin()
		if !n.TrySendToMem(req(0, 8), uint64(i)) {
			t.Fatalf("send %d refused below bound", i)
		}
	}
	n.Begin()
	if n.TrySendToMem(req(0, 8), 99) {
		t.Fatal("send accepted above queue bound")
	}
	if n.Stats().ToMemStalls == 0 {
		t.Fatal("stall not counted")
	}
}

func TestBandwidthBudgetLeakyBucket(t *testing.T) {
	n := newNet(t)
	n.Begin()
	// 64 B/cycle budget; a 128 B packet must inject by driving the
	// budget negative, and the debt must block the next packet for one
	// extra Begin.
	if !n.TrySendToSM(memreq.Request{Kind: memreq.ReadReply, Line: 0, Size: 128}, 0) {
		t.Fatal("large packet refused")
	}
	if n.TrySendToSM(memreq.Request{Kind: memreq.ReadReply, Line: 0, Size: 128}, 0) {
		t.Fatal("second packet accepted with spent budget")
	}
	n.Begin() // budget: -64 + 64 = 0, still blocked
	if n.TrySendToSM(memreq.Request{Kind: memreq.ReadReply, Line: 0, Size: 128}, 1) {
		t.Fatal("packet accepted while still in debt")
	}
	n.Begin() // budget: 0 + 64 = 64 > 0
	if !n.TrySendToSM(memreq.Request{Kind: memreq.ReadReply, Line: 0, Size: 128}, 2) {
		t.Fatal("packet refused after debt paid")
	}
}

func TestResponsesDeliveredInOrder(t *testing.T) {
	n := newNet(t)
	n.Begin()
	n.TrySendToSM(memreq.Request{Kind: memreq.ReadReply, Line: 0, SM: 1, Size: 8}, 0)
	n.Begin()
	n.TrySendToSM(memreq.Request{Kind: memreq.ReadReply, Line: 128, SM: 2, Size: 8}, 1)
	out := n.PopArrivedToSM(10)
	if len(out) != 2 || out[0].SM != 1 || out[1].SM != 2 {
		t.Fatalf("arrivals = %v", out)
	}
	if n.Pending() != 0 {
		t.Fatalf("pending = %d after drain", n.Pending())
	}
}

func TestPerAppResponseBytes(t *testing.T) {
	n := newNet(t)
	n.Begin()
	n.TrySendToSM(memreq.Request{Kind: memreq.ReadReply, Line: 0, App: 2, Size: 40}, 0)
	if got := n.AppToSMBytes(2); got != 40 {
		t.Fatalf("app 2 bytes = %d", got)
	}
	if got := n.AppToSMBytes(7); got != 0 {
		t.Fatalf("app 7 bytes = %d", got)
	}
}

// TestConservation: every accepted message is eventually delivered
// exactly once, for arbitrary interleavings.
func TestConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		n, err := New(testCfg(), 2, 128)
		if err != nil {
			return false
		}
		sent, received := 0, 0
		now := uint64(0)
		for _, op := range ops {
			now++
			n.Begin()
			line := uint64(op) * 128
			if op%2 == 0 {
				if n.TrySendToMem(req(line, 8), now) {
					sent++
				}
			}
			for p := 0; p < 2; p++ {
				if _, ok := n.PopForPartition(p, now); ok {
					received++
				}
			}
		}
		// Drain.
		for i := 0; i < 100; i++ {
			now++
			for p := 0; p < 2; p++ {
				if _, ok := n.PopForPartition(p, now); ok {
					received++
				}
			}
		}
		return sent == received && n.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
