// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablation benchmarks for the design choices called
// out in DESIGN.md.
//
// The paper artifacts share one lazily initialized experiment suite
// (solo profiles + all-pairs interference on the 60-SM device); the
// first figure benchmark pays that cost and later ones reuse the
// memoized state, so `go test -bench=. -benchmem` regenerates the whole
// evaluation exactly once. Custom metrics report the headline numbers
// (normalized throughput gains) next to the usual ns/op.
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/gpu"
	"repro/internal/interference"
	"repro/internal/kernel"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/testkit"
	"repro/internal/workloads"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func sharedSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	if testing.Short() {
		// The shared suite pays full-device calibration plus the
		// all-pairs interference campaign — minutes of work. The CI
		// smoke run (-short -benchtime 1x) only needs to prove the
		// harness still compiles and executes.
		b.Skip("figure benchmarks need the full experiment suite; skipped in -short")
	}
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(config.GTX480())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// artifactBench regenerates one paper artifact per iteration and logs it
// on the first run.
func artifactBench(b *testing.B, gen func(*experiments.Suite) (experiments.Artifact, error)) experiments.Artifact {
	s := sharedSuite(b)
	var art experiments.Artifact
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := gen(s)
		if err != nil {
			b.Fatal(err)
		}
		art = a
	}
	b.StopTimer()
	b.Logf("\n%s", art)
	return art
}

// --- Paper artifacts ---------------------------------------------------

func BenchmarkFig1_2(b *testing.B) {
	art := artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig1_2() })
	max := 0.0
	for _, r := range art.Rows {
		if r.Values[0] > max {
			max = r.Values[0]
		}
	}
	b.ReportMetric(max, "max-util-%")
}

func BenchmarkTable3_2(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Table3_2() })
}

func BenchmarkFig3_4(b *testing.B) {
	art := artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig3_4() })
	b.ReportMetric(art.MustValue("class MC", "with M"), "MC-slowdown-by-M")
}

func BenchmarkFig3_5(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig3_5() })
}

func BenchmarkFig3_6(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig3_6() })
}

func BenchmarkFig4_1(b *testing.B) {
	art := artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_1() })
	b.ReportMetric(art.MustValue("ILP", "vs Serial"), "ILP-vs-serial")
}

func BenchmarkFig4_2(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_2() })
}

func BenchmarkFig4_3(b *testing.B) {
	art := artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_3() })
	sum := 0.0
	for _, r := range art.Rows {
		v, err := art.Value(r.Label, "ILP-SMRA")
		if err != nil {
			b.Fatal(err)
		}
		sum += v
	}
	b.ReportMetric(sum/float64(len(art.Rows)), "ILP-SMRA-vs-even")
}

func BenchmarkFig4_4(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_4() })
}

func BenchmarkFig4_5(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_5() })
}

func BenchmarkFig4_6(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_6() })
}

func BenchmarkFig4_7(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_7() })
}

func BenchmarkFig4_8(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_8() })
}

func BenchmarkFig4_9(b *testing.B) {
	art := artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_9() })
	b.ReportMetric(art.MustValue("ILP", "vs Serial"), "ILP-vs-serial")
}

func BenchmarkFig4_10(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_10() })
}

func BenchmarkFig4_11(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_11() })
}

func BenchmarkFig4_12(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.Fig4_12() })
}

func BenchmarkAppendixA(b *testing.B) {
	artifactBench(b, func(s *experiments.Suite) (experiments.Artifact, error) { return s.AppendixA() })
}

// --- Ablations (DESIGN.md) --------------------------------------------
// These use the small test device so each ablation point costs seconds,
// not minutes; the contrasts, not the absolute numbers, are the point.

// coRunCycles runs two mini kernels split across the small device and
// returns the makespan.
func coRunCycles(b *testing.B, cfg config.GPUConfig) uint64 {
	b.Helper()
	sets := interference.EvenSplit(cfg.NumSMs, 2)
	sts, err := interference.CoRun(cfg, []kernel.Params{testkit.MiniM(), testkit.MiniC()}, sets)
	if err != nil {
		b.Fatal(err)
	}
	maxEnd := sts[0].EndCycle
	if sts[1].EndCycle > maxEnd {
		maxEnd = sts[1].EndCycle
	}
	return maxEnd
}

// BenchmarkAblationMemSched contrasts FR-FCFS against plain FCFS memory
// scheduling under an M+C co-run — the mechanism behind class M's
// dominance in Fig 3.4.
func BenchmarkAblationMemSched(b *testing.B) {
	var frfcfs, fcfs uint64
	for i := 0; i < b.N; i++ {
		cfg := testkit.Config()
		cfg.DRAM.Sched = config.MemFRFCFS
		frfcfs = coRunCycles(b, cfg)
		cfg.DRAM.Sched = config.MemFCFS
		fcfs = coRunCycles(b, cfg)
	}
	b.ReportMetric(float64(fcfs)/float64(frfcfs), "fcfs/frfcfs-cycles")
}

// BenchmarkAblationWarpSched contrasts GTO against loose round-robin
// warp scheduling on a cache-sensitive kernel.
func BenchmarkAblationWarpSched(b *testing.B) {
	run := func(pol config.WarpSchedPolicy) uint64 {
		cfg := testkit.Config()
		cfg.WarpSched = pol
		prof := profile.New(cfg)
		r, err := prof.Run(testkit.MiniC(), 0)
		if err != nil {
			b.Fatal(err)
		}
		return r.Cycles
	}
	var gto, lrr uint64
	for i := 0; i < b.N; i++ {
		gto = run(config.SchedGTO)
		lrr = run(config.SchedLRR)
	}
	b.ReportMetric(float64(lrr)/float64(gto), "lrr/gto-cycles")
}

// smraQueue is an asymmetric M+A pair that gives the reallocator room
// to act.
func smraQueue() []sched.QueuedApp {
	m := testkit.MiniM()
	m.CTAs *= 4
	a := testkit.MiniA()
	a.CTAs *= 4
	return []sched.QueuedApp{
		{Params: m, Class: classify.ClassM, Arrival: 0},
		{Params: a, Class: classify.ClassA, Arrival: 1},
	}
}

func smraRun(b *testing.B, mutate func(*sched.SMRAConfig)) uint64 {
	b.Helper()
	cfg := testkit.Config()
	m := &interference.Matrix{}
	for x := range m.Slowdown {
		for y := range m.Slowdown[x] {
			m.Slowdown[x][y] = 2.2
			m.Samples[x][y] = 1
		}
	}
	s := sched.New(cfg, profile.New(cfg), m)
	sc := sched.DefaultSMRAConfig(cfg)
	sc.MinSMs = 1
	sc.MoveSMs = 1
	sc.TCCycles = 1500
	if mutate != nil {
		mutate(&sc)
	}
	s.SetSMRAConfig(sc)
	rep, err := s.Run(smraQueue(), 2, sched.ILPSMRA)
	if err != nil {
		b.Fatal(err)
	}
	return rep.TotalCycles
}

// BenchmarkAblationSMRAThresholds sweeps the Algorithm 1 scoring
// thresholds against the defaults.
func BenchmarkAblationSMRAThresholds(b *testing.B) {
	var base, lax uint64
	for i := 0; i < b.N; i++ {
		base = smraRun(b, nil)
		lax = smraRun(b, func(c *sched.SMRAConfig) {
			c.IPCThrPerSM /= 4 // scores almost nobody: reallocation disabled in practice
			c.BWThrFraction = 0.95
		})
	}
	b.ReportMetric(float64(lax)/float64(base), "lax/default-cycles")
}

// BenchmarkAblationSMRAPeriod contrasts a slow reallocation period (TC)
// with the default: the drain-then-transfer handoff only pays off when
// decisions come often enough.
func BenchmarkAblationSMRAPeriod(b *testing.B) {
	var fast, slow uint64
	for i := 0; i < b.N; i++ {
		fast = smraRun(b, nil)
		slow = smraRun(b, func(c *sched.SMRAConfig) { c.TCCycles = 50_000 })
	}
	b.ReportMetric(float64(slow)/float64(fast), "slowTC/fastTC-cycles")
}

// --- Fleet engine benchmarks -------------------------------------------
// These calibrate the miniature testkit universe once (about a second)
// and then exercise the fleet's indexed event core and completion
// engines; they run even in -short mode so CI smokes the whole path.

var (
	fleetPipeOnce sync.Once
	fleetPipe     *core.Pipeline
	fleetPipeErr  error
)

// fleetBenchPipeline calibrates (once) a pipeline over the testkit
// universe for the fleet benchmarks.
func fleetBenchPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	fleetPipeOnce.Do(func() {
		p, err := core.New(testkit.Config())
		if err != nil {
			fleetPipeErr = err
			return
		}
		if err := p.Init(testkit.Universe()); err != nil {
			fleetPipeErr = err
			return
		}
		fleetPipe = p
	})
	if fleetPipeErr != nil {
		b.Fatal(fleetPipeErr)
	}
	return fleetPipe
}

func fleetBenchNames() []string { return []string{"miniM", "miniMC", "miniC", "miniA"} }

// BenchmarkFleetDispatch lives in internal/fleet (alloc_test.go): the
// steady-state dispatch round it times needs package-internal access to
// exclude per-run setup, which is what lets -benchmem pin its hot loop
// at 0 allocs/op.

// fleetRunBenchArrivals is the shared 1k-job traffic for the engine
// comparison; fleetRunBenchConfig the shared fleet shape.
func fleetRunBenchArrivals(b *testing.B) []fleet.Arrival {
	b.Helper()
	arr, err := fleet.ArrivalConfig{Kind: fleet.Poisson, Jobs: 1000, Rate: 1, Seed: 1}.Generate(fleetBenchNames())
	if err != nil {
		b.Fatal(err)
	}
	return arr
}

func fleetRunBenchConfig(pipe *core.Pipeline, engine fleet.EngineMode) fleet.Config {
	return fleet.Config{
		Devices: []fleet.DeviceSpec{{Pipe: pipe, Count: 4}},
		NC:      2, Policy: sched.ILP, Engine: engine,
	}
}

var (
	fleetCycleRefOnce sync.Once
	fleetCycleRefNs   float64
	fleetCycleRefErr  error
)

// fleetCycleReference times one Cycle-engine run of the shared 1k-job
// configuration on a freshly calibrated pipeline (cold group memo, the
// cost a first run pays; calibration itself excluded). Computed once —
// the benchmark function is invoked several times while the framework
// ramps b.N, and the reference must not be re-paid on every ramp step.
func fleetCycleReference(b *testing.B) float64 {
	b.Helper()
	arr := fleetRunBenchArrivals(b)
	fleetCycleRefOnce.Do(func() {
		fresh, err := core.New(testkit.Config())
		if err != nil {
			fleetCycleRefErr = err
			return
		}
		if err := fresh.Init(testkit.Universe()); err != nil {
			fleetCycleRefErr = err
			return
		}
		start := time.Now()
		f, err := fleet.New(fleetRunBenchConfig(fresh, fleet.Cycle))
		if err != nil {
			fleetCycleRefErr = err
			return
		}
		if _, err := f.Run(arr); err != nil {
			fleetCycleRefErr = err
			return
		}
		fleetCycleRefNs = float64(time.Since(start).Nanoseconds())
	})
	if fleetCycleRefErr != nil {
		b.Fatal(fleetCycleRefErr)
	}
	return fleetCycleRefNs
}

// BenchmarkFleetRunModeled measures the Modeled engine on a 1k-job
// fleet configuration and reports how many times cheaper it is than the
// Cycle engine on the identical configuration and traffic — the
// engine-mode acceptance ratio tracked in BENCH_*.json.
func BenchmarkFleetRunModeled(b *testing.B) {
	p := fleetBenchPipeline(b)
	arr := fleetRunBenchArrivals(b)
	cycleNs := fleetCycleReference(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fleet.New(fleetRunBenchConfig(p, fleet.Modeled))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Run(arr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	modeledNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(cycleNs/modeledNs, "cycle/modeled-x")
	b.ReportMetric(modeledNs/1000, "ns/job")
}

// BenchmarkFleetSharded measures the sharded modeled path end to end: a
// 16-device fleet serving 32k Poisson jobs at 1, 4 and 8 event-loop
// shards. Dispatch is FCFS so the subject is the event core itself —
// admit, route, commit, retire — rather than the windowed ILP's LP
// solves, which BenchmarkFleetDispatch measures in isolation. The
// output bytes are identical at every count (the determinism tests
// enforce it), so ns/job across sub-benchmarks is a pure wall-time
// comparison — the million-jobs-per-second headline is Mjobs/s at
// shards >= 4.
func BenchmarkFleetSharded(b *testing.B) {
	p := fleetBenchPipeline(b)
	const jobs = 32768
	arr, err := fleet.ArrivalConfig{Kind: fleet.Poisson, Jobs: jobs, Rate: 4, Seed: 7}.Generate(fleetBenchNames())
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := fleet.New(fleet.Config{
					Devices: []fleet.DeviceSpec{{Pipe: p, Count: 16}},
					NC:      2, Policy: sched.FCFS, Engine: fleet.Modeled,
					Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.Run(arr); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perJob := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / jobs
			b.ReportMetric(perJob, "ns/job")
			b.ReportMetric(1e3/perJob, "Mjobs/s")
		})
	}
}

// --- Substrate micro-benchmarks ----------------------------------------

// newSaturatedDevice builds a full device running a long streaming
// kernel, warmed into steady state.
func newSaturatedDevice(cfg config.GPUConfig) (*gpu.Device, error) {
	d, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(kernel.Params{
		Name: "steady", CTAs: 100000, WarpsPerCTA: 6, InstrsPerWarp: 100000,
		MemEvery: 5, Pattern: kernel.PatternStream, CoalescedLines: 4,
		FootprintBytes: 64 << 20, Seed: 9,
	}, cfg.L1.LineBytes)
	if err != nil {
		return nil, err
	}
	sms := make([]int, cfg.NumSMs)
	for i := range sms {
		sms[i] = i
	}
	if _, err := d.Launch(k, sms); err != nil {
		return nil, err
	}
	for i := 0; i < 2000; i++ {
		d.Step()
	}
	return d, nil
}

func BenchmarkDeviceStepSaturated(b *testing.B) {
	cfg := config.GTX480()
	d, err := newSaturatedDevice(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step()
	}
}

func BenchmarkSoloProfileMiniKernel(b *testing.B) {
	cfg := testkit.Config()
	for i := 0; i < b.N; i++ {
		prof := profile.New(cfg)
		if _, err := prof.Run(testkit.MiniA(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassifySuite(b *testing.B) {
	if testing.Short() {
		b.Skip("profiles the full workload suite on GTX480; skipped in -short")
	}
	cfg := config.GTX480()
	prof := profile.New(cfg)
	profiles, err := prof.RunAll(workloads.All(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th := classify.CalibrateThresholds(cfg, profiles)
		classify.Table(th, profiles)
	}
}
