// Command docscheck is the CI docs-health gate: every Go package in the
// repository (internal, cmd, examples) must carry a package-level doc
// comment on at least one of its files, so `go doc` output stays
// useful. It walks the tree with go/parser in comment-preserving mode —
// no go/packages dependency, no build step — and exits non-zero listing
// every undocumented package.
//
// Usage (from the repository root):
//
//	go run ./scripts/docscheck
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	// documented maps package directory -> whether any file carries a
	// package comment. Test files may document a separate _test package;
	// they are excluded so the check reflects what `go doc` shows.
	documented := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		dir := filepath.Dir(path)
		if _, ok := documented[dir]; !ok {
			documented[dir] = false
		}
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	var missing []string
	for dir, ok := range documented {
		if !ok {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		fmt.Fprintln(os.Stderr, "docscheck: packages without a package-level doc comment:")
		for _, dir := range missing {
			fmt.Fprintln(os.Stderr, "  "+dir)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages documented\n", len(documented))
}
