#!/usr/bin/env bash
# bench.sh — run the benchmark suite with -benchmem and record a JSON
# summary (ns/op, B/op, allocs/op, plus every custom metric) so the
# performance trajectory is tracked from PR to PR, then print the
# per-metric deltas against the most recent committed snapshot.
#
# Usage:
#   scripts/bench.sh                 # full suite, 1s per benchmark
#   scripts/bench.sh 'Step|Solo'     # only matching benchmarks
#   scripts/bench.sh '.' 5s          # full suite, 5s per benchmark
#
# Output: BENCH_<yyyymmdd>.json in the repo root (suffixed -2, -3, ...
# if that name is already committed — snapshots are history, never
# overwritten), plus the raw `go test` output on stdout and a delta
# table against the latest committed BENCH_*.json (via
# scripts/benchdelta). Each entry is
#   {"name": ..., "iterations": N, "metrics": {"ns/op": ..., ...}}
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${2:-1s}"
out="BENCH_$(date +%Y%m%d).json"
if git ls-files --error-unmatch "$out" >/dev/null 2>&1; then
    n=2
    while git ls-files --error-unmatch "BENCH_$(date +%Y%m%d)-$n.json" >/dev/null 2>&1; do
        n=$((n + 1))
    done
    out="BENCH_$(date +%Y%m%d)-$n.json"
fi
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" ./... | tee "$raw"

awk '
BEGIN { n = 0 }
/^Benchmark/ && NF >= 3 {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
    iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (metrics != "") metrics = metrics ", "
        metrics = metrics "\"" unit "\": " val
    }
    if (n > 0) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}", name, iters, metrics
    n++
}
END { printf "\n" }
' "$raw" > "$out.body"

{
    echo "["
    cat "$out.body"
    echo "]"
} > "$out"
rm -f "$out.body"
echo "wrote $out"

# Delta table against the most recent committed snapshot (the committed
# content, via git show, so re-runs in a dirty tree still compare
# against the real baseline). Plain lexical sort would rank
# BENCH_D-2.json before BENCH_D.json ('-' < '.') and -10 before -2, so
# order by (date, numeric suffix) explicitly.
baseline="$(git ls-files 'BENCH_*.json' | awk '{
    name = $0
    d = $0; sub(/^BENCH_/, "", d); sub(/\.json$/, "", d)
    n = 0
    if (split(d, parts, "-") == 2) { d = parts[1]; n = parts[2] }
    printf "%s %09d %s\n", d, n, name
}' | sort | tail -1 | awk '{print $3}' || true)"
if [ -n "$baseline" ] && [ "$baseline" != "$out" ]; then
    base_tmp="$(mktemp)"
    if git show "HEAD:$baseline" > "$base_tmp" 2>/dev/null; then
        go run ./scripts/benchdelta "$base_tmp" "$out" || true
    fi
    rm -f "$base_tmp"
fi
