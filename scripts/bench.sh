#!/usr/bin/env bash
# bench.sh — run the benchmark suite with -benchmem and record a JSON
# summary (ns/op, B/op, allocs/op, plus every custom metric) so the
# performance trajectory is tracked from PR to PR.
#
# Usage:
#   scripts/bench.sh                 # full suite, 1s per benchmark
#   scripts/bench.sh 'Step|Solo'     # only matching benchmarks
#   scripts/bench.sh '.' 5s          # full suite, 5s per benchmark
#
# Output: BENCH_<yyyymmdd>.json in the repo root (and the raw `go test`
# output on stdout). Each entry is
#   {"name": ..., "iterations": N, "metrics": {"ns/op": ..., ...}}
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${2:-1s}"
out="BENCH_$(date +%Y%m%d).json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" ./... | tee "$raw"

awk '
BEGIN { n = 0 }
/^Benchmark/ && NF >= 3 {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
    iters = $2
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (metrics != "") metrics = metrics ", "
        metrics = metrics "\"" unit "\": " val
    }
    if (n > 0) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}", name, iters, metrics
    n++
}
END { printf "\n" }
' "$raw" > "$out.body"

{
    echo "["
    cat "$out.body"
    echo "]"
} > "$out"
rm -f "$out.body"
echo "wrote $out"
