// Command benchdelta compares two BENCH_*.json snapshots produced by
// scripts/bench.sh and prints per-benchmark, per-metric deltas, so a
// bench run immediately shows how it moved against the last committed
// baseline.
//
// Usage:
//
//	go run ./scripts/benchdelta baseline.json new.json
//
// Output is one line per (benchmark, metric) present in either file:
// the baseline value, the new value and the relative change; metrics
// only present on one side are marked new/gone. For time-like and
// allocation metrics lower is better; benchdelta does not judge, it
// only reports.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
)

type entry struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func load(path string) (map[string]entry, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var list []entry
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]entry, len(list))
	var order []string
	for _, e := range list {
		if _, dup := m[e.Name]; !dup {
			order = append(order, e.Name)
		}
		m[e.Name] = e
	}
	return m, order, nil
}

func main() {
	log.SetFlags(0)
	if len(os.Args) != 3 {
		log.Fatal("usage: benchdelta baseline.json new.json")
	}
	base, baseOrder, err := load(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	cur, curOrder, err := load(os.Args[2])
	if err != nil {
		log.Fatal(err)
	}
	// New-file order first, then baseline-only benchmarks.
	names := append([]string(nil), curOrder...)
	for _, n := range baseOrder {
		if _, ok := cur[n]; !ok {
			names = append(names, n)
		}
	}
	fmt.Printf("benchmark deltas (%s -> %s):\n", os.Args[1], os.Args[2])
	for _, name := range names {
		b, hasBase := base[name]
		c, hasCur := cur[name]
		switch {
		case !hasCur:
			fmt.Printf("  %-40s gone (was in baseline)\n", name)
			continue
		case !hasBase:
			fmt.Printf("  %-40s new benchmark\n", name)
			// Still print its metrics so the snapshot line is readable.
		}
		metrics := make([]string, 0, len(c.Metrics))
		for k := range c.Metrics {
			metrics = append(metrics, k)
		}
		for k := range b.Metrics {
			if _, ok := c.Metrics[k]; !ok {
				metrics = append(metrics, k)
			}
		}
		sort.Strings(metrics)
		for _, k := range metrics {
			nv, hasN := c.Metrics[k]
			ov, hasO := b.Metrics[k]
			label := fmt.Sprintf("%s %s", name, k)
			switch {
			case !hasN:
				fmt.Printf("  %-56s %12.4g -> gone\n", label, ov)
			case !hasO:
				fmt.Printf("  %-56s %12s -> %-12.4g (new)\n", label, "-", nv)
			default:
				delta := "n/a"
				if ov != 0 {
					d := 100 * (nv - ov) / math.Abs(ov)
					delta = fmt.Sprintf("%+.1f%%", d)
				}
				fmt.Printf("  %-56s %12.4g -> %-12.4g %s\n", label, ov, nv, delta)
			}
		}
	}
}
