// Command benchdelta compares two BENCH_*.json snapshots produced by
// scripts/bench.sh and prints per-benchmark, per-metric deltas, so a
// bench run immediately shows how it moved against the last committed
// baseline.
//
// Usage:
//
//	go run ./scripts/benchdelta baseline.json new.json
//
// Output is one line per (benchmark, metric) present in either file:
// the baseline value, the new value and the relative change. Metrics or
// whole benchmarks present on one side only are marked new/gone — with
// their values still printed — rather than misreported as changes. For
// time-like and allocation metrics lower is better; benchdelta does not
// judge, it only reports.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"
)

type entry struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func load(path string) (map[string]entry, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return parse(data, path)
}

// parse decodes one snapshot, keeping first-seen order and deduplicating
// by name (last entry wins, as bench.sh appends reruns).
func parse(data []byte, path string) (map[string]entry, []string, error) {
	var list []entry
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]entry, len(list))
	var order []string
	for _, e := range list {
		if _, dup := m[e.Name]; !dup {
			order = append(order, e.Name)
		}
		m[e.Name] = e
	}
	return m, order, nil
}

// metricNames is the union of both sides' metric names: the new side's
// sorted first, then baseline-only ones (also sorted).
func metricNames(b, c map[string]float64) []string {
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	var gone []string
	for k := range b {
		if _, ok := c[k]; !ok {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	return append(names, gone...)
}

// diff writes the per-benchmark, per-metric comparison. Benchmarks in
// the new snapshot print in its order, baseline-only benchmarks follow;
// both one-sided benchmarks and one-sided metrics report their actual
// values tagged new/gone instead of a bogus delta.
func diff(base map[string]entry, baseOrder []string, cur map[string]entry, curOrder []string, w io.Writer) {
	names := append([]string(nil), curOrder...)
	for _, n := range baseOrder {
		if _, ok := cur[n]; !ok {
			names = append(names, n)
		}
	}
	for _, name := range names {
		b, hasBase := base[name]
		c, hasCur := cur[name]
		switch {
		case !hasCur:
			fmt.Fprintf(w, "  %-40s gone (was in baseline)\n", name)
		case !hasBase:
			fmt.Fprintf(w, "  %-40s new benchmark\n", name)
		}
		// Both one-sided cases still print their metrics below, so the
		// snapshot lines stay readable either way.
		for _, k := range metricNames(b.Metrics, c.Metrics) {
			nv, hasN := c.Metrics[k]
			ov, hasO := b.Metrics[k]
			label := fmt.Sprintf("%s %s", name, k)
			switch {
			case !hasN:
				fmt.Fprintf(w, "  %-56s %12.4g -> gone\n", label, ov)
			case !hasO:
				fmt.Fprintf(w, "  %-56s %12s -> %-12.4g (new)\n", label, "-", nv)
			default:
				delta := "n/a"
				if ov != 0 {
					d := 100 * (nv - ov) / math.Abs(ov)
					delta = fmt.Sprintf("%+.1f%%", d)
				}
				fmt.Fprintf(w, "  %-56s %12.4g -> %-12.4g %s\n", label, ov, nv, delta)
			}
		}
	}
}

func main() {
	log.SetFlags(0)
	if len(os.Args) != 3 {
		log.Fatal("usage: benchdelta baseline.json new.json")
	}
	base, baseOrder, err := load(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	cur, curOrder, err := load(os.Args[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark deltas (%s -> %s):\n", os.Args[1], os.Args[2])
	diff(base, baseOrder, cur, curOrder, os.Stdout)
}
