package main

import (
	"bytes"
	"strings"
	"testing"
)

// snapshot builds a parsed snapshot from literal JSON.
func snapshot(t *testing.T, js string) (map[string]entry, []string) {
	t.Helper()
	m, order, err := parse([]byte(js), "test.json")
	if err != nil {
		t.Fatal(err)
	}
	return m, order
}

func TestDiffReportsChangesAndDirection(t *testing.T) {
	base, baseOrder := snapshot(t, `[{"name":"BenchmarkA","metrics":{"ns/op":100,"allocs/op":8}}]`)
	cur, curOrder := snapshot(t, `[{"name":"BenchmarkA","metrics":{"ns/op":150,"allocs/op":8}}]`)
	var buf bytes.Buffer
	diff(base, baseOrder, cur, curOrder, &buf)
	out := buf.String()
	if !strings.Contains(out, "+50.0%") {
		t.Errorf("missing +50%% delta:\n%s", out)
	}
	if !strings.Contains(out, "+0.0%") {
		t.Errorf("missing flat allocs delta:\n%s", out)
	}
}

// TestDiffOneSidedBenchmarks locks the graceful handling of benchmarks
// present in only one snapshot: both directions are labeled, and their
// metric values still print (tagged new/gone) instead of fake deltas.
func TestDiffOneSidedBenchmarks(t *testing.T) {
	base, baseOrder := snapshot(t, `[
		{"name":"BenchmarkKept","metrics":{"ns/op":10}},
		{"name":"BenchmarkRemoved","metrics":{"ns/op":42,"B/op":1024}}]`)
	cur, curOrder := snapshot(t, `[
		{"name":"BenchmarkKept","metrics":{"ns/op":12}},
		{"name":"BenchmarkAdded","metrics":{"ns/op":7}}]`)
	var buf bytes.Buffer
	diff(base, baseOrder, cur, curOrder, &buf)
	out := buf.String()
	for _, want := range []string{
		"BenchmarkRemoved", "gone (was in baseline)",
		"BenchmarkRemoved ns/op", "-> gone", // removed benchmark's values still shown
		"BenchmarkAdded", "new benchmark",
		"(new)", // added benchmark's values tagged new
		"+20.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	// The removed benchmark's B/op metric must appear exactly once, as
	// a gone line — not as a delta against zero.
	if strings.Count(out, "BenchmarkRemoved B/op") != 1 {
		t.Errorf("BenchmarkRemoved B/op misreported:\n%s", out)
	}
	// New-snapshot order first, baseline-only benchmarks after.
	if strings.Index(out, "BenchmarkAdded") > strings.Index(out, "BenchmarkRemoved") {
		t.Errorf("baseline-only benchmark printed before new-snapshot ones:\n%s", out)
	}
}

func TestDiffOneSidedMetrics(t *testing.T) {
	base, baseOrder := snapshot(t, `[{"name":"BenchmarkA","metrics":{"ns/op":100,"old":5}}]`)
	cur, curOrder := snapshot(t, `[{"name":"BenchmarkA","metrics":{"ns/op":90,"fresh":3}}]`)
	var buf bytes.Buffer
	diff(base, baseOrder, cur, curOrder, &buf)
	out := buf.String()
	for _, want := range []string{"-10.0%", "BenchmarkA old", "-> gone", "BenchmarkA fresh", "(new)"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestParseDeduplicatesByName(t *testing.T) {
	m, order := snapshot(t, `[
		{"name":"BenchmarkA","metrics":{"ns/op":1}},
		{"name":"BenchmarkA","metrics":{"ns/op":2}}]`)
	if len(order) != 1 {
		t.Fatalf("order = %v, want one entry", order)
	}
	if m["BenchmarkA"].Metrics["ns/op"] != 2 {
		t.Fatalf("last entry should win: %v", m["BenchmarkA"].Metrics)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, _, err := parse([]byte("not json"), "x.json"); err == nil {
		t.Fatal("garbage accepted")
	}
}
