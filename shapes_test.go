// Shape assertions: the reproduction's acceptance tests. Absolute
// numbers are not expected to match the paper (different substrate,
// scaled workloads); these tests pin the *shapes* of the evaluation —
// who wins, roughly by how much, and the qualitative trends the paper's
// narrative depends on.
package repro

import (
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func sharedSuiteT(t *testing.T) *experiments.Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("full 60-SM evaluation suite is slow")
	}
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(config.GTX480())
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

// TestShapeTable3_2 asserts every benchmark classifies as in the paper.
func TestShapeTable3_2(t *testing.T) {
	s := sharedSuiteT(t)
	for _, c := range s.P.Classification() {
		if want := workloads.ExpectedClass[c.Name]; c.Class.String() != want {
			t.Errorf("%s classified %s, paper reports %s (%s)", c.Name, c.Class, want, c.Metrics)
		}
	}
}

// TestShapeFig3_4 asserts class M is the most destructive co-runner on
// average and class A the least — the paper's central observation.
func TestShapeFig3_4(t *testing.T) {
	s := sharedSuiteT(t)
	m := s.P.Matrix()
	colAvg := func(col classify.Class) float64 {
		sum := 0.0
		for _, row := range classify.All() {
			sum += m.At(row, col)
		}
		return sum / float64(classify.NumClasses)
	}
	t.Logf("\n%s", m)
	avgM, avgA := colAvg(classify.ClassM), colAvg(classify.ClassA)
	if avgM <= avgA {
		t.Errorf("class M co-runners (avg slowdown %.2f) should hurt more than class A (%.2f)", avgM, avgA)
	}
	for _, col := range []classify.Class{classify.ClassMC, classify.ClassC} {
		if v := colAvg(col); v > avgM+0.05 {
			t.Errorf("class %v co-runners (%.2f) dominate class M (%.2f)", col, v, avgM)
		}
	}
}

// TestShapeFig3_5 asserts the scalability trends the thesis highlights:
// LUD flat, GUPS flat-to-decreasing, HS near-linear.
func TestShapeFig3_5(t *testing.T) {
	s := sharedSuiteT(t)
	art, err := s.Fig3_5()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", art)
	last := art.Columns[len(art.Columns)-1] // 30 SMs, normalized to 10
	if v := art.MustValue("LUD", last); v > 1.4 {
		t.Errorf("LUD scaled %.2fx from 10 to 30 SMs; paper reports flat", v)
	}
	if v := art.MustValue("GUPS", last); v > 1.4 {
		t.Errorf("GUPS scaled %.2fx from 10 to 30 SMs; paper reports flat-to-decreasing", v)
	}
	if v := art.MustValue("HS", last); v < 1.8 {
		t.Errorf("HS scaled only %.2fx from 10 to 30 SMs; paper reports near-linear", v)
	}
	hs := art.MustValue("HS", last)
	gups := art.MustValue("GUPS", last)
	if hs <= gups {
		t.Errorf("HS (%.2f) should scale better than GUPS (%.2f)", hs, gups)
	}
}

// TestShapeFig4_1 asserts the two-application policy ordering:
// ILP >= FCFS > Serial in device throughput.
func TestShapeFig4_1(t *testing.T) {
	s := sharedSuiteT(t)
	art, err := s.Fig4_1()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", art)
	serial := art.MustValue("Serial", "Throughput")
	fcfs := art.MustValue(sched.FCFS.String(), "Throughput")
	ilp := art.MustValue("ILP", "Throughput")
	if fcfs <= serial {
		t.Errorf("FCFS co-run (%.1f) should beat serial (%.1f)", fcfs, serial)
	}
	// Co-scheduling gain over serial reproduces; the paper's additional
	// ILP-over-FCFS margin does not on this substrate (see
	// EXPERIMENTS.md, "Known divergence"): slowdowns are measured
	// against full-device solo runs, so bandwidth-saturated classes
	// (which lose no throughput from losing SMs) look like cheap
	// co-runners to the Eq. 3.3 objective, and this simulator's
	// compute-to-bandwidth ratio amplifies that bias.
	if ilp <= serial*1.02 {
		t.Errorf("ILP (%.1f) should still beat serial (%.1f)", ilp, serial)
	}
	if ilp < fcfs*0.85 {
		t.Errorf("ILP (%.1f) collapsed against FCFS (%.1f)", ilp, fcfs)
	}
}

// TestShapeFig4_3 asserts the distribution study: ILP-SMRA is the best
// policy on average, and no policy collapses below Even.
func TestShapeFig4_3(t *testing.T) {
	s := sharedSuiteT(t)
	art, err := s.Fig4_3()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", art)
	avg := func(col string) float64 {
		sum := 0.0
		for _, r := range art.Rows {
			sum += art.MustValue(r.Label, col)
		}
		return sum / float64(len(art.Rows))
	}
	smra := avg(sched.ILPSMRA.String())
	ilp := avg("ILP")
	// Paper: +36%% on average. On this substrate the average gain is a
	// few percent (see EXPERIMENTS.md, "Known divergence"); the shape
	// kept here is that dynamic reallocation never loses to static ILP
	// and the combined policy does not collapse below Even.
	if smra < 0.97 {
		t.Errorf("ILP-SMRA average vs Even = %.3f, collapsed", smra)
	}
	if smra < ilp-0.03 {
		t.Errorf("ILP-SMRA (%.3f) should not trail plain ILP (%.3f) on average", smra, ilp)
	}
	for _, dist := range []string{"C-oriented workload", "A-oriented workload"} {
		if v := art.MustValue(dist, sched.ILPSMRA.String()); v < 1.0 {
			t.Errorf("%s: ILP-SMRA %.3f should beat Even (the paper's strongest cases)", dist, v)
		}
	}
}

// TestShapeFig4_9 asserts the three-application ordering (paper: ILP
// about double the Serial baseline and ahead of FCFS).
func TestShapeFig4_9(t *testing.T) {
	s := sharedSuiteT(t)
	art, err := s.Fig4_9()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", art)
	serial := art.MustValue("Serial", "Throughput")
	fcfs := art.MustValue(sched.FCFS.String(), "Throughput")
	ilp := art.MustValue("ILP", "Throughput")
	if fcfs <= serial {
		t.Errorf("3-app FCFS (%.1f) should beat serial (%.1f)", fcfs, serial)
	}
	// See TestShapeFig4_1: the ILP-over-FCFS margin is a known
	// divergence; guard only against collapse.
	if ilp < fcfs*0.8 {
		t.Errorf("3-app ILP (%.1f) collapsed against FCFS (%.1f)", ilp, fcfs)
	}
}

// guard against accidental reuse of the bench suite variables elsewhere.
var _ = sync.Once{}
