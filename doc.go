// Package repro reproduces "Throughput Optimization and Resource
// Allocation on GPUs under Multi-Application Execution" (Punyala, 2017;
// DATE 2018) as a production-quality Go library: a cycle-level GPU
// simulator substrate, a Rodinia-like synthetic workload suite, and the
// paper's classification / interference / ILP-matching / SM-reallocation
// methodology.
//
// The root package holds only documentation and the benchmark harness
// (bench_test.go), which regenerates every table and figure of the
// paper's evaluation; the implementation lives under internal/ and the
// public entry point is internal/core. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package repro
