// Command gpusim runs one benchmark solo on the simulated device and
// prints its profile signature — the quickest way to inspect a
// workload's behaviour.
//
// Usage:
//
//	gpusim -bench BLK            # run BLK on all 60 SMs
//	gpusim -bench GUPS -sms 30   # run on a 30-SM partition
//	gpusim -list                 # list available benchmarks
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/profile"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	bench := flag.String("bench", "", "benchmark name (see -list)")
	sms := flag.Int("sms", 0, "number of SMs (0 = all)")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()

	if *list {
		for _, n := range workloads.Names {
			p := workloads.MustParams(n)
			fmt.Printf("%-5s expected class %-2s  grid %d x %d warps, %d instrs/warp, pattern %v\n",
				n, workloads.ExpectedClass[n], p.CTAs, p.WarpsPerCTA, p.InstrsPerWarp, p.Pattern)
		}
		return
	}
	if *bench == "" {
		log.Fatal("need -bench (or -list)")
	}
	params, err := workloads.Params(*bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg := config.GTX480()
	prof := profile.New(cfg)
	r, err := prof.Run(params, *sms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r)
}
