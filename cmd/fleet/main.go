// Command fleet runs the online, arrival-driven co-scheduler: jobs
// arrive over simulated time to a fleet of simulated GPUs, and an
// online dispatcher forms co-run groups from the live queue with the
// paper's interference-aware machinery.
//
// Usage:
//
//	fleet -devices 4 -apps 200 -arrivals poisson -rate 0.5 -nc 2 -policy ilp-smra -seed 1
//	fleet -fleet "2xGTX480,2xSmall-8SM" -policy ilp-smra -seed 1
//	fleet -devices 2 -arrivals bursty -rate 1 -burst-rate 6 -mean-on 15000 -mean-off 45000 -policy fcfs
//	fleet -arrivals trace -trace BLK@0,HS@1000,GUPS@2500 -policy ilp
//
// The fleet may be heterogeneous: -fleet takes a roster of
// COUNTxCONFIG elements (configs from internal/config: GTX480, Small),
// each device type gets its own calibration, and the dispatcher scores
// candidate groups with the matrix of the device type that will run
// them. When -fleet is unset, -devices N selects a homogeneous GTX480
// fleet as before.
//
// The summary is deterministic: the same flags (and seed) produce
// byte-identical output, whatever the host machine is doing.
//
// Calibration (solo profiles + the all-pairs interference campaign) is
// cached on disk per device configuration exactly like cmd/experiments
// — set REPRO_CALIBRATION to choose the path, or to "off" to disable.
// The group-execution memo is deliberately NOT persisted here, so
// device-count comparisons measure real simulation work.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	devices := flag.Int("devices", 4, "number of simulated GPUs (homogeneous GTX480; ignored with -fleet)")
	rosterFlag := flag.String("fleet", "", "heterogeneous roster as COUNTxCONFIG,... (e.g. \"2xGTX480,2xSmall-8SM\")")
	apps := flag.Int("apps", 200, "number of arriving jobs (poisson/bursty)")
	arrivalsFlag := flag.String("arrivals", "poisson", "arrival process: poisson | bursty | trace")
	rate := flag.Float64("rate", 0.5, "mean arrival rate in jobs per 1000 cycles")
	burstRate := flag.Float64("burst-rate", 0, "bursty ON-phase rate in jobs per 1000 cycles (0 = 4x -rate)")
	meanOn := flag.Float64("mean-on", 0, "bursty mean ON-phase length in cycles (0 = default)")
	meanOff := flag.Float64("mean-off", 0, "bursty mean OFF-phase length in cycles (0 = default)")
	nc := flag.Int("nc", 2, "co-run group size per device")
	policyFlag := flag.String("policy", "ilp-smra", "serial | fcfs | profile | ilp | ilp-smra")
	seed := flag.Uint64("seed", 1, "arrival-stream seed")
	window := flag.Int("window", 0, "windowed-ILP queue prefix (0 = default)")
	greedyBelow := flag.Int("greedy-below", 0, "queue depth under which ILP policies dispatch greedily (0 = 2*nc)")
	traceFlag := flag.String("trace", "", "explicit arrivals as NAME@CYCLE,... (with -arrivals trace)")
	flag.Parse()

	kind, err := fleet.ParseArrivalKind(*arrivalsFlag)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := sched.ParsePolicy(*policyFlag)
	if err != nil {
		log.Fatal(err)
	}
	// Reject flags the chosen arrival process or policy would silently
	// ignore.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["devices"] && *rosterFlag != "" {
		log.Fatal("fleet: -devices is ignored with -fleet; size the roster instead (e.g. \"4xGTX480\")")
	}
	if kind != fleet.Bursty {
		for _, name := range []string{"burst-rate", "mean-on", "mean-off"} {
			if set[name] {
				log.Fatalf("fleet: -%s only applies to -arrivals bursty (got %v)", name, kind)
			}
		}
	}
	if kind == fleet.Trace {
		for _, name := range []string{"rate", "apps"} {
			if set[name] {
				log.Fatalf("fleet: -%s has no effect with -arrivals trace; the trace stands on its own", name)
			}
		}
	} else if set["trace"] {
		log.Fatalf("fleet: -trace requires -arrivals trace (got %v)", kind)
	}
	if policy != sched.ILP && policy != sched.ILPSMRA {
		for _, name := range []string{"greedy-below", "window"} {
			if set[name] {
				log.Fatalf("fleet: -%s only applies to the ILP policies (got %v)", name, policy)
			}
		}
	}
	acfg := fleet.ArrivalConfig{Kind: kind, Seed: *seed}
	if kind == fleet.Trace {
		// Jobs/Rate stay zero: a trace stands on its own.
		acfg.Trace, err = parseTrace(*traceFlag)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		acfg.Jobs = *apps
		acfg.Rate = *rate
		acfg.BurstRate = *burstRate
		acfg.MeanOn = *meanOn
		acfg.MeanOff = *meanOff
	}
	arrivals, err := acfg.Generate(workloads.Names)
	if err != nil {
		log.Fatal(err)
	}

	spec := *rosterFlag
	if spec == "" {
		spec = fmt.Sprintf("%dxGTX480", *devices)
	}
	entries, err := fleet.ParseRoster(spec)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	log.Printf("calibrating roster %s (cached per device config) ...", spec)
	roster, err := fleet.BuildRoster(entries, workloads.All())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("roster ready in %v", time.Since(start).Round(time.Second))

	f, err := fleet.New(fleet.Config{
		Devices:     roster,
		NC:          *nc,
		Policy:      policy,
		Window:      *window,
		GreedyBelow: *greedyBelow,
	})
	if err != nil {
		log.Fatal(err)
	}
	runStart := time.Now()
	res, err := f.Run(arrivals)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("fleet run finished in %v wall-clock", time.Since(runStart).Round(time.Millisecond))
	switch kind {
	case fleet.Trace:
		fmt.Printf("arrivals: %v (%d entries)\n", kind, len(acfg.Trace))
	case fleet.Bursty:
		r := acfg.Resolved()
		fmt.Printf("arrivals: %v rate=%.2f/kcycle burst-rate=%.2f/kcycle mean-on=%.0f mean-off=%.0f seed=%d\n",
			kind, r.Rate, r.BurstRate, r.MeanOn, r.MeanOff, *seed)
	default:
		fmt.Printf("arrivals: %v rate=%.2f/kcycle seed=%d\n", kind, *rate, *seed)
	}
	fmt.Print(res.Summary())
}

// parseTrace parses "BLK@0,HS@1000" into arrivals.
func parseTrace(s string) ([]fleet.Arrival, error) {
	if s == "" {
		return nil, fmt.Errorf("fleet: -arrivals trace needs -trace NAME@CYCLE,...")
	}
	var out []fleet.Arrival
	for _, entry := range strings.Split(s, ",") {
		name, cycleStr, ok := strings.Cut(strings.TrimSpace(entry), "@")
		if !ok {
			return nil, fmt.Errorf("fleet: trace entry %q is not NAME@CYCLE", entry)
		}
		cycle, err := strconv.ParseUint(cycleStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: trace entry %q: %v", entry, err)
		}
		out = append(out, fleet.Arrival{Name: name, Cycle: cycle})
	}
	return out, nil
}
