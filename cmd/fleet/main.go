// Command fleet runs the online, arrival-driven co-scheduler: jobs
// arrive over simulated time to a fleet of simulated GPUs, and an
// online dispatcher forms co-run groups from the live queue with the
// paper's interference-aware machinery.
//
// Usage:
//
//	fleet -devices 4 -apps 200 -arrivals poisson -rate 0.5 -nc 2 -policy ilp-smra -seed 1
//	fleet -devices 2 -arrivals bursty -rate 1 -policy fcfs
//	fleet -arrivals trace -trace BLK@0,HS@1000,GUPS@2500 -policy ilp
//
// The summary is deterministic: the same flags (and seed) produce
// byte-identical output, whatever the host machine is doing.
//
// Calibration (solo profiles + the all-pairs interference campaign) is
// cached on disk exactly like cmd/experiments — set REPRO_CALIBRATION
// to choose the path, or to "off" to disable. The group-execution memo
// is deliberately NOT persisted here, so device-count comparisons
// measure real simulation work.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	devices := flag.Int("devices", 4, "number of simulated GPUs")
	apps := flag.Int("apps", 200, "number of arriving jobs (poisson/bursty)")
	arrivalsFlag := flag.String("arrivals", "poisson", "arrival process: poisson | bursty | trace")
	rate := flag.Float64("rate", 0.5, "mean arrival rate in jobs per 1000 cycles")
	nc := flag.Int("nc", 2, "co-run group size per device")
	policyFlag := flag.String("policy", "ilp-smra", "serial | fcfs | profile | ilp | ilp-smra")
	seed := flag.Uint64("seed", 1, "arrival-stream seed")
	window := flag.Int("window", 0, "windowed-ILP queue prefix (0 = default)")
	traceFlag := flag.String("trace", "", "explicit arrivals as NAME@CYCLE,... (with -arrivals trace)")
	flag.Parse()

	kind, err := fleet.ParseArrivalKind(*arrivalsFlag)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := sched.ParsePolicy(*policyFlag)
	if err != nil {
		log.Fatal(err)
	}
	acfg := fleet.ArrivalConfig{Kind: kind, Jobs: *apps, Rate: *rate, Seed: *seed}
	if kind == fleet.Trace {
		acfg.Trace, err = parseTrace(*traceFlag)
		if err != nil {
			log.Fatal(err)
		}
	}
	arrivals, err := acfg.Generate(workloads.Names)
	if err != nil {
		log.Fatal(err)
	}

	cfg := config.GTX480()
	pipe := core.MustNew(cfg)
	start := time.Now()
	if path := core.CalibrationCachePath(cfg.Name); path != "" && pipe.LoadCalibration(path, workloads.All()) == nil {
		log.Printf("calibration restored from %s", path)
	} else {
		log.Printf("initializing pipeline (solo profiles + all-pairs interference) ...")
		if err := pipe.Init(workloads.All()); err != nil {
			log.Fatal(err)
		}
		if path != "" {
			_ = pipe.SaveCalibration(path)
		}
		log.Printf("pipeline ready in %v", time.Since(start).Round(time.Second))
	}

	f, err := fleet.New(pipe, fleet.Config{
		Devices: *devices,
		NC:      *nc,
		Policy:  policy,
		Window:  *window,
	})
	if err != nil {
		log.Fatal(err)
	}
	runStart := time.Now()
	res, err := f.Run(arrivals)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("fleet run finished in %v wall-clock", time.Since(runStart).Round(time.Millisecond))
	if kind == fleet.Trace {
		fmt.Printf("arrivals: %v (%d entries)\n", kind, len(acfg.Trace))
	} else {
		fmt.Printf("arrivals: %v rate=%.2f/kcycle seed=%d\n", kind, *rate, *seed)
	}
	fmt.Print(res.Summary())
}

// parseTrace parses "BLK@0,HS@1000" into arrivals.
func parseTrace(s string) ([]fleet.Arrival, error) {
	if s == "" {
		return nil, fmt.Errorf("fleet: -arrivals trace needs -trace NAME@CYCLE,...")
	}
	var out []fleet.Arrival
	for _, entry := range strings.Split(s, ",") {
		name, cycleStr, ok := strings.Cut(strings.TrimSpace(entry), "@")
		if !ok {
			return nil, fmt.Errorf("fleet: trace entry %q is not NAME@CYCLE", entry)
		}
		cycle, err := strconv.ParseUint(cycleStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: trace entry %q: %v", entry, err)
		}
		out = append(out, fleet.Arrival{Name: name, Cycle: cycle})
	}
	return out, nil
}
