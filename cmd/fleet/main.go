// Command fleet runs the online, arrival-driven co-scheduler: jobs
// arrive over simulated time to a fleet of simulated GPUs, and an
// online dispatcher forms co-run groups from the live queue with the
// paper's interference-aware machinery.
//
// Usage:
//
//	fleet -devices 4 -apps 200 -arrivals poisson -rate 0.5 -nc 2 -policy ilp-smra -seed 1
//	fleet -fleet "2xGTX480,2xSmall-8SM" -policy ilp-smra -seed 1
//	fleet -devices 2 -arrivals bursty -rate 1 -burst-rate 6 -mean-on 15000 -mean-off 45000 -policy fcfs
//	fleet -arrivals trace -trace BLK@0,HS@1000,GUPS@2500 -policy ilp
//	fleet -devices 2 -slo preempt -latency-frac 0.3 -deadline 2000000 -aging 1 -csv jobs.csv
//	fleet -fleet "32xGTX480,32xSmall-8SM" -apps 100000 -arrivals bursty -engine modeled
//
// The fleet may be heterogeneous: -fleet takes a roster of
// COUNTxCONFIG elements (configs from internal/config: GTX480, Small),
// each device type gets its own calibration, and the dispatcher scores
// candidate groups with the matrix of the device type that will run
// them. When -fleet is unset, -devices N selects a homogeneous GTX480
// fleet as before.
//
// SLO classes: -latency-frac tags a share of the generated arrivals as
// latency-class jobs carrying a relative -deadline; -slo picks the
// dispatch discipline (off = class-blind, priority = latency jobs queue
// first, preempt = priority plus eviction of running batch groups when
// a waiting latency job would provably miss its deadline). -aging
// weights the ILP's pattern efficiencies by member wait so tail latency
// competes with raw packing. The summary then carries per-class
// wait/turnaround/slack percentiles, the deadline-miss rate and the
// eviction count; -csv additionally writes the per-job records for
// external plotting.
//
// Engine modes: -engine picks how dispatched groups complete. cycle
// (the default) simulates every group cycle-accurately; modeled
// computes completions analytically from solo profiles and the
// interference matrix with zero simulations — the warehouse-scale mode
// that runs 100k jobs on 64 devices in seconds; hybrid simulates the
// first -hybrid-warm occurrences of each (device type, composition) to
// calibrate the model and serves the rest from it, reporting the
// model's fidelity delta in the summary. With -engine modeled, -shards
// N partitions the roster across N parallel event loops coupled by a
// deterministic router: a given seed and shard count always reproduce
// the same bytes (-shards 1 byte-matches the single loop), and N > 1
// trades the global backlog for K split queues — lower wall time on
// big rosters, with the K-way schedule echoed in a "shards:" header.
//
// Failure injection: -chaos "fail@CYCLE:DEV,drain@CYCLE:DEV,
// restore@CYCLE:DEV" executes a deterministic failure schedule mid-run
// (fail evicts the device's in-flight group with checkpointed progress
// and takes it out of placement; drain lets the flight retire but stops
// new dispatch; restore returns it to service), and -mtbf/-mttr swap
// the explicit trace for per-device exponential failure/repair draws
// from the run's seed. Either way the schedule is a pure function of
// the flags, so chaos runs keep the byte-identical determinism
// contract; the summary gains a "chaos" ledger line, and the time
// series gains failed_devices/draining_devices columns.
//
// Observability: -timeseries FILE samples the run every
// -sample-interval cycles (queue depth and class split, per-device
// occupancy and busy cycles, cumulative completions/misses/evictions,
// engine-mode counters) and writes the series as CSV — or JSON when
// FILE ends in .json — ready for plotting; see internal/obs for the
// column layout. cmd/sweep drives whole grids of these runs.
//
// The summary is deterministic: the same flags (and seed) produce
// byte-identical output, whatever the host machine is doing. The
// -timeseries output shares the contract: same seed, byte-identical
// series.
//
// Calibration (solo profiles + the all-pairs interference campaign) is
// cached on disk per device configuration exactly like cmd/experiments
// — set REPRO_CALIBRATION to choose the path, or to "off" to disable.
// The group-execution memo is deliberately NOT persisted here, so
// device-count comparisons measure real simulation work.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	devices := flag.Int("devices", 4, "number of simulated GPUs (homogeneous GTX480; ignored with -fleet)")
	rosterFlag := flag.String("fleet", "", "heterogeneous roster as COUNTxCONFIG,... (e.g. \"2xGTX480,2xSmall-8SM\")")
	apps := flag.Int("apps", 200, "number of arriving jobs (poisson/bursty)")
	arrivalsFlag := flag.String("arrivals", "poisson", "arrival process: poisson | bursty | trace | closed")
	rate := flag.Float64("rate", 0.5, "mean arrival rate in jobs per 1000 cycles")
	burstRate := flag.Float64("burst-rate", 0, "bursty ON-phase rate in jobs per 1000 cycles (0 = 4x -rate)")
	meanOn := flag.Float64("mean-on", 0, "bursty mean ON-phase length in cycles (0 = default)")
	meanOff := flag.Float64("mean-off", 0, "bursty mean OFF-phase length in cycles (0 = default)")
	nc := flag.Int("nc", 2, "co-run group size per device")
	policyFlag := flag.String("policy", "ilp-smra", "serial | fcfs | profile | ilp | ilp-smra")
	seed := flag.Uint64("seed", 1, "arrival-stream seed")
	window := flag.Int("window", 0, "windowed-ILP queue prefix (0 = adaptive from queue depth and class mix)")
	greedyBelow := flag.Int("greedy-below", 0, "queue depth under which ILP policies dispatch greedily (0 = 2*nc)")
	traceFlag := flag.String("trace", "", "explicit arrivals as NAME@CYCLE,... (with -arrivals trace)")
	sloFlag := flag.String("slo", "off", "SLO dispatch: off | priority | preempt")
	latencyFrac := flag.Float64("latency-frac", 0, "fraction of generated jobs tagged latency-class (poisson/bursty)")
	deadline := flag.Uint64("deadline", 0, "relative deadline in cycles for generated latency jobs (0 = default)")
	aging := flag.Float64("aging", 0, "wait-time aging weight for the ILP policies (0 = off)")
	csvPath := flag.String("csv", "", "also write the per-job records as CSV to this file")
	engineFlag := flag.String("engine", "cycle", "completion engine: cycle | modeled | hybrid")
	hybridWarm := flag.Int("hybrid-warm", 0, "cycle-accurate runs per group composition before the hybrid engine trusts the model (0 = default)")
	shards := flag.Int("shards", 0, "parallel event-loop shards for -engine modeled (0/1 = single loop; same seed and count reproduce the same bytes)")
	closedFlag := flag.Bool("closed", false, "closed-loop clients replace the arrival stream (equivalent to -arrivals closed)")
	clients := flag.Int("clients", 8, "closed-loop client pools, each with one request outstanding (with -closed)")
	requests := flag.Int("requests", 0, "requests per client (0 = default, with -closed)")
	think := flag.Float64("think", 0, "mean client think time in cycles between requests (with -closed)")
	timeoutFlag := flag.Uint64("timeout", 0, "per-request patience in cycles; a submission queued longer is abandoned (0 = never, with -closed)")
	retries := flag.Int("retries", 0, "resubmissions allowed after a rejection or abandonment (with -closed)")
	backoffFlag := flag.Uint64("backoff", 0, "base retry backoff in cycles, doubling per attempt (0 = default, with -closed)")
	admission := flag.Uint64("admission", 0, "admission bound: refuse submissions whose predicted wait exceeds this many cycles (0 = off)")
	admissionDegrade := flag.Bool("admission-degrade", false, "degrade over-bound latency submissions to batch instead of rejecting them (with -admission)")
	admissionModeled := flag.Bool("admission-modeled", false, "predict waits from the interference-aware backlog estimate instead of the solo-work sum (with -admission)")
	chaosFlag := flag.String("chaos", "", "failure schedule as KIND@CYCLE:DEV,... with kinds fail|drain|restore (empty = off)")
	mtbf := flag.Float64("mtbf", 0, "chaos generator: mean cycles between failures per device (0 = off; needs -mttr)")
	mttr := flag.Float64("mttr", 0, "chaos generator: mean outage length in cycles (with -mtbf)")
	chaosHorizon := flag.Uint64("chaos-horizon", 0, "chaos generator schedule bound in cycles (0 = default, with -mtbf)")
	autoscaleFlag := flag.String("autoscale", "", "elastic roster bounds as MIN:MAX active devices (empty = off)")
	scaleHigh := flag.Float64("scale-high", 0, "scale-up queue-pressure watermark in waiting jobs per active device (0 = default, with -autoscale)")
	scaleLow := flag.Float64("scale-low", 0, "scale-down watermark (0 = default, with -autoscale)")
	provisionDelay := flag.Uint64("provision-delay", 0, "cycles between a scale-up decision and the device accepting work (0 = default, with -autoscale)")
	timeseries := flag.String("timeseries", "", "write the per-interval time series to this file (CSV, or JSON with a .json extension)")
	sampleInterval := flag.Uint64("sample-interval", 100_000, "time-series sampling interval in cycles (with -timeseries)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	// writeHeap snapshots the heap to -memprofile (no-op when unset); it
	// runs at normal exit and on the fatal paths, so a failed run still
	// leaves its profile behind.
	writeHeap := func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Print(err)
			return
		}
		runtime.GC() // flush unreached allocations so the profile shows live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Print(err)
		}
		if err := f.Close(); err != nil {
			log.Print(err)
		}
	}
	// log.Fatal's os.Exit skips deferred profile flushing, so every
	// fatal below goes through fail instead.
	fail := func(v ...any) {
		pprof.StopCPUProfile()
		writeHeap()
		log.Fatal(v...)
	}
	failf := func(format string, v ...any) {
		pprof.StopCPUProfile()
		writeHeap()
		log.Fatalf(format, v...)
	}

	kind, err := fleet.ParseArrivalKind(*arrivalsFlag)
	if err != nil {
		fail(err)
	}
	policy, err := sched.ParsePolicy(*policyFlag)
	if err != nil {
		fail(err)
	}
	// Reject flags the chosen arrival process or policy would silently
	// ignore.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["devices"] && *rosterFlag != "" {
		fail("fleet: -devices is ignored with -fleet; size the roster instead (e.g. \"4xGTX480\")")
	}
	// Closed-loop traffic can be asked for by flag or by arrival kind;
	// either way the clients pace themselves, so the open-stream shape
	// flags are rejected rather than silently ignored (and vice versa).
	closed := *closedFlag || kind == fleet.ClosedLoop
	if set["closed"] && set["arrivals"] && kind != fleet.ClosedLoop {
		failf("fleet: -closed conflicts with -arrivals %v; closed-loop runs generate their own traffic", kind)
	}
	if closed {
		kind = fleet.ClosedLoop
		for _, name := range []string{"rate", "apps", "trace", "burst-rate", "mean-on", "mean-off"} {
			if set[name] {
				failf("fleet: -%s has no effect with closed-loop traffic; -clients and -think shape the load", name)
			}
		}
	} else {
		for _, name := range []string{"clients", "requests", "think", "timeout", "retries", "backoff"} {
			if set[name] {
				failf("fleet: -%s only applies to closed-loop traffic (-closed)", name)
			}
		}
	}
	if set["admission-degrade"] && *admission == 0 {
		fail("fleet: -admission-degrade needs -admission to set the bound")
	}
	if set["admission-modeled"] && *admission == 0 {
		fail("fleet: -admission-modeled needs -admission to set the bound")
	}
	if *chaosFlag != "" && (*mtbf > 0 || *mttr > 0) {
		fail("fleet: -chaos conflicts with -mtbf/-mttr; pick the explicit trace or the generator")
	}
	if (*mtbf > 0) != (*mttr > 0) {
		fail("fleet: -mtbf and -mttr must be set together")
	}
	if set["chaos-horizon"] && *mtbf == 0 {
		fail("fleet: -chaos-horizon needs -mtbf/-mttr to enable the generator")
	}
	autoscale, err := fleet.ParseAutoscale(*autoscaleFlag)
	if err != nil {
		fail(err)
	}
	if !autoscale.Enabled {
		for _, name := range []string{"scale-high", "scale-low", "provision-delay"} {
			if set[name] {
				failf("fleet: -%s needs -autoscale to enable the elastic roster", name)
			}
		}
	}
	if kind != fleet.Bursty {
		for _, name := range []string{"burst-rate", "mean-on", "mean-off"} {
			if set[name] {
				failf("fleet: -%s only applies to -arrivals bursty (got %v)", name, kind)
			}
		}
	}
	if kind == fleet.Trace {
		for _, name := range []string{"rate", "apps"} {
			if set[name] {
				failf("fleet: -%s has no effect with -arrivals trace; the trace stands on its own", name)
			}
		}
	} else if set["trace"] {
		failf("fleet: -trace requires -arrivals trace (got %v)", kind)
	}
	if policy != sched.ILP && policy != sched.ILPSMRA {
		for _, name := range []string{"greedy-below", "window", "aging"} {
			if set[name] {
				failf("fleet: -%s only applies to the ILP policies (got %v)", name, policy)
			}
		}
	}
	engine, err := fleet.ParseEngine(*engineFlag)
	if err != nil {
		fail(err)
	}
	if set["hybrid-warm"] && engine != fleet.Hybrid {
		failf("fleet: -hybrid-warm only applies to -engine hybrid (got %v)", engine)
	}
	if set["shards"] && *shards > 1 && engine != fleet.Modeled {
		failf("fleet: -shards only applies to -engine modeled (got %v)", engine)
	}
	if set["sample-interval"] {
		if *timeseries == "" {
			fail("fleet: -sample-interval needs -timeseries to write the series somewhere")
		}
		if *sampleInterval == 0 {
			fail("fleet: -sample-interval must be positive")
		}
	}
	slo, err := fleet.ParseSLOMode(*sloFlag)
	if err != nil {
		fail(err)
	}
	if kind == fleet.Trace {
		for _, name := range []string{"latency-frac", "deadline"} {
			if set[name] {
				failf("fleet: -%s only applies to generated arrivals; tag trace entries as NAME@CYCLE!DEADLINE instead", name)
			}
		}
	} else if set["deadline"] && *latencyFrac == 0 {
		fail("fleet: -deadline needs -latency-frac to generate latency jobs")
	}
	acfg := fleet.ArrivalConfig{Kind: kind, Seed: *seed}
	var arrivals []fleet.Arrival
	switch kind {
	case fleet.ClosedLoop:
		// Closed-loop runs generate their own submissions inside Run;
		// there is no arrival stream to materialize.
	case fleet.Trace:
		if *traceFlag == "" {
			fail("fleet: -arrivals trace needs -trace NAME@CYCLE[!DEADLINE],...")
		}
		// Jobs/Rate stay zero: a trace stands on its own.
		acfg.Trace, err = fleet.ParseTrace(*traceFlag)
		if err != nil {
			fail(err)
		}
		arrivals, err = acfg.Generate(workloads.Names)
		if err != nil {
			fail(err)
		}
	default:
		acfg.Jobs = *apps
		acfg.Rate = *rate
		acfg.BurstRate = *burstRate
		acfg.MeanOn = *meanOn
		acfg.MeanOff = *meanOff
		acfg.LatencyFrac = *latencyFrac
		acfg.Deadline = *deadline
		arrivals, err = acfg.Generate(workloads.Names)
		if err != nil {
			fail(err)
		}
	}

	spec := *rosterFlag
	if spec == "" {
		spec = fmt.Sprintf("%dxGTX480", *devices)
	}
	entries, err := fleet.ParseRoster(spec)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	log.Printf("calibrating roster %s (cached per device config) ...", spec)
	roster, err := fleet.BuildRoster(entries, workloads.All())
	if err != nil {
		fail(err)
	}
	log.Printf("roster ready in %v", time.Since(start).Round(time.Second))

	cfg := fleet.Config{
		Devices:     roster,
		NC:          *nc,
		Policy:      policy,
		Window:      *window,
		GreedyBelow: *greedyBelow,
		Aging:       *aging,
		SLO:         slo,
		Engine:      engine,
		HybridWarm:  *hybridWarm,
		Shards:      *shards,
	}
	if *timeseries != "" {
		cfg.SampleEvery = *sampleInterval
	}
	if closed {
		cfg.Closed = fleet.ClosedConfig{
			Enabled: true, Clients: *clients, Requests: *requests,
			Think: *think, Timeout: *timeoutFlag,
			Retries: *retries, Backoff: *backoffFlag,
			LatencyFrac: *latencyFrac, Deadline: *deadline,
			Seed: *seed, Universe: workloads.Names,
		}
	}
	if *admission > 0 {
		cfg.Admission = fleet.AdmissionConfig{Enabled: true, MaxWait: *admission, Degrade: *admissionDegrade, Modeled: *admissionModeled}
	}
	if autoscale.Enabled {
		autoscale.High = *scaleHigh
		autoscale.Low = *scaleLow
		autoscale.Delay = *provisionDelay
		cfg.Autoscale = autoscale
	}
	if *chaosFlag != "" {
		trace, err := fleet.ParseChaos(*chaosFlag)
		if err != nil {
			fail(err)
		}
		cfg.Chaos = fleet.ChaosConfig{Enabled: true, Trace: trace}
	} else if *mtbf > 0 {
		cfg.Chaos = fleet.ChaosConfig{Enabled: true, MTBF: *mtbf, MTTR: *mttr, Horizon: *chaosHorizon, Seed: *seed}
	}
	f, err := fleet.New(cfg)
	if err != nil {
		fail(err)
	}
	runStart := time.Now()
	res, err := f.Run(arrivals)
	if err != nil {
		fail(err)
	}
	log.Printf("fleet run finished in %v wall-clock", time.Since(runStart).Round(time.Millisecond))
	switch kind {
	case fleet.ClosedLoop:
		// Echo the resolved closed-loop parameters (defaults filled in).
		rc := f.Config().Closed
		fmt.Printf("arrivals: closed clients=%d requests=%d think=%.0f timeout=%d retries=%d backoff=%d seed=%d\n",
			rc.Clients, rc.Requests, rc.Think, rc.Timeout, rc.Retries, rc.Backoff, rc.Seed)
	case fleet.Trace:
		fmt.Printf("arrivals: %v (%d entries)\n", kind, len(acfg.Trace))
	case fleet.Bursty:
		r := acfg.Resolved()
		fmt.Printf("arrivals: %v rate=%.2f/kcycle burst-rate=%.2f/kcycle mean-on=%.0f mean-off=%.0f seed=%d\n",
			kind, r.Rate, r.BurstRate, r.MeanOn, r.MeanOff, *seed)
	default:
		fmt.Printf("arrivals: %v rate=%.2f/kcycle seed=%d\n", kind, *rate, *seed)
	}
	if ac := f.Config().Admission; ac.Enabled {
		mode := "reject"
		if ac.Degrade {
			mode = "degrade"
		}
		if ac.Modeled {
			mode += "-modeled"
		}
		fmt.Printf("admission: mode=%s max-wait=%d\n", mode, ac.MaxWait)
	}
	if as := f.Config().Autoscale; as.Enabled {
		fmt.Printf("autoscale: min=%d max=%d high=%g low=%g delay=%d epoch=%d\n",
			as.Min, as.Max, as.High, as.Low, as.Delay, as.Epoch)
	}
	if ch := f.Config().Chaos; ch.Enabled {
		if len(ch.Trace) > 0 {
			fmt.Printf("chaos: trace %s\n", fleet.FormatChaos(ch.Trace))
		} else {
			fmt.Printf("chaos: mtbf=%g mttr=%g horizon=%d seed=%d\n", ch.MTBF, ch.MTTR, ch.Horizon, ch.Seed)
		}
	}
	// The SLO header echoes the generation parameters actually used;
	// trace runs carry per-entry deadlines, so only the mode applies.
	switch {
	case kind == fleet.Trace && slo.Enabled:
		fmt.Printf("slo: mode=%s aging=%g (per-entry deadlines)\n", strings.ToLower(*sloFlag), *aging)
	case kind == fleet.ClosedLoop && (slo.Enabled || *latencyFrac > 0):
		fmt.Printf("slo: mode=%s latency-frac=%.2f deadline=%d aging=%g\n",
			strings.ToLower(*sloFlag), *latencyFrac, f.Config().Closed.Deadline, *aging)
	case slo.Enabled || *latencyFrac > 0:
		fmt.Printf("slo: mode=%s latency-frac=%.2f deadline=%d aging=%g\n",
			strings.ToLower(*sloFlag), *latencyFrac, acfg.Resolved().Deadline, *aging)
	}
	// The shard count shapes the simulated schedule (the router splits
	// the backlog K ways), so artifacts must say which K produced them;
	// at 0/1 the line is omitted and output matches previous releases.
	if res.Shards > 1 {
		epoch := cfg.ShardEpoch
		if epoch == 0 {
			epoch = fleet.DefaultShardEpoch
		}
		fmt.Printf("shards: %d event loops, epoch=%d cycles\n", res.Shards, epoch)
	}
	fmt.Print(res.Summary())
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		if err := res.WriteJobsCSV(out); err != nil {
			fail(err)
		}
		if err := out.Close(); err != nil {
			fail(err)
		}
		log.Printf("wrote per-job records to %s", *csvPath)
	}
	if *timeseries != "" {
		out, err := os.Create(*timeseries)
		if err != nil {
			fail(err)
		}
		if strings.HasSuffix(*timeseries, ".json") {
			err = res.Series.WriteJSON(out)
		} else {
			err = res.Series.WriteCSV(out)
		}
		if err != nil {
			fail(err)
		}
		if err := out.Close(); err != nil {
			fail(err)
		}
		log.Printf("wrote %d-sample time series to %s", res.Series.Rows(), *timeseries)
	}
	writeHeap()
}
