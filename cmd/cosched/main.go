// Command cosched schedules an arbitrary queue of benchmarks under a
// chosen policy and prints per-group and device-level results — the
// paper's full methodology applied to a user-supplied queue.
//
// Usage:
//
//	cosched -list
//	cosched -queue BLK,HS,GUPS,SAD -nc 2 -policy ilp-smra
//	cosched -queue BLK,HS,GUPS,SAD,SPMV,LUD -nc 3 -policy ilp
//	cosched -queue BLK,HS,GUPS,SAD -seed 7   # deterministic shuffle
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	queueFlag := flag.String("queue", "", "comma-separated benchmark names")
	nc := flag.Int("nc", 2, "concurrent applications per group")
	policyFlag := flag.String("policy", "ilp-smra", "serial | fcfs | profile | ilp | ilp-smra")
	seed := flag.Uint64("seed", 0, "shuffle the queue deterministically (0 keeps the given order)")
	list := flag.Bool("list", false, "print the available benchmark names and exit")
	flag.Parse()

	if *list {
		fmt.Println("available benchmarks (paper's expected class in parentheses):")
		for _, name := range workloads.Names {
			fmt.Printf("  %-5s (%s)\n", name, workloads.ExpectedClass[name])
		}
		return
	}
	if *queueFlag == "" {
		log.Fatal("need -queue (e.g. -queue BLK,HS,GUPS,SAD); run cosched -list for names")
	}
	names := strings.Split(*queueFlag, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		if _, err := workloads.Params(names[i]); err != nil {
			log.Fatalf("%v (run cosched -list for the available names)", err)
		}
	}
	if *seed != 0 {
		rng.NewStream(*seed).Shuffle(len(names), func(i, j int) {
			names[i], names[j] = names[j], names[i]
		})
		log.Printf("queue shuffled with seed %d: %s", *seed, strings.Join(names, ","))
	}
	policy, err := sched.ParsePolicy(*policyFlag)
	if err != nil {
		log.Fatal(err)
	}

	cfg := config.GTX480()
	p := core.MustNew(cfg)
	log.Printf("initializing pipeline (profiles + interference) ...")
	start := time.Now()
	if err := p.Init(workloads.All()); err != nil {
		log.Fatal(err)
	}
	log.Printf("ready in %v", time.Since(start).Round(time.Second))

	queue, err := p.Queue(names)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := p.Run(queue, *nc, policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy %v, %d groups:\n", rep.Policy, len(rep.Groups))
	for i, g := range rep.Groups {
		fmt.Printf("  group %d: %v (%v) — %d cycles", i+1, g.Apps, g.Classes, g.Cycles)
		if g.SMMoves > 0 {
			fmt.Printf(", %d SM moves", g.SMMoves)
		}
		fmt.Println()
		for _, st := range g.Stats {
			m := st.Derive(cfg)
			fmt.Printf("      %s\n", m)
		}
	}
	fmt.Printf("device throughput: %.1f instructions/cycle over %d cycles\n",
		rep.Throughput(), rep.TotalCycles)
}
