// Command simlint is the repository's static-analysis gate: a
// multichecker over six custom analyzers that encode the simulator's
// determinism and hot-path contracts (maprange, wallclock, globalrand,
// totalorder, hotpath, pkgdoc — see ARCHITECTURE.md, "Static analysis").
// CI runs it over the whole module on every PR; violations that runtime
// tests would only catch later as golden churn or bench regressions are
// rejected at lint time instead.
//
// Usage (from the repository root):
//
//	go run ./cmd/simlint ./...          # report findings, exit 1 if any
//	go run ./cmd/simlint -fix ./...     # apply safe suggested fixes
//	go run ./cmd/simlint -list          # print the suite and each contract
//
// Findings print as file:line:col: analyzer: message. A finding the
// code cannot reasonably avoid is suppressed in place with
// //simlint:ignore <analyzer> -- <reason>; reasonless ignores are
// themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/simlint"
)

func main() {
	fix := flag.Bool("fix", false, "apply safe suggested fixes in place (e.g. sort.Slice -> sort.SliceStable)")
	list := flag.Bool("list", false, "list the analyzers and the contracts they enforce")
	flag.Parse()

	if *list {
		for _, a := range simlint.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := simlint.Run("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if *fix {
		n, err := simlint.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint: applying fixes:", err)
			os.Exit(2)
		}
		var remaining []simlint.Finding
		for _, f := range findings {
			if len(f.Fixes) == 0 {
				remaining = append(remaining, f)
			}
		}
		fmt.Printf("simlint: fixed %d finding(s), %d remaining\n", n, len(remaining))
		findings = remaining
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("simlint: %d analyzers clean\n", len(simlint.Analyzers))
}
