// Command experiments regenerates the paper's tables and figures on the
// simulated GTX-480-class device.
//
// Usage:
//
//	experiments              # run everything (Fig 1.2 .. Appendix A)
//	experiments -only Fig4.3 # run one artifact
//	experiments -setup       # print the Table 4.1 configuration
//	experiments -seed 7      # change the deterministic queue shuffles
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	only := flag.String("only", "", "run a single artifact (e.g. Fig4.3, Table3.2, AppendixA)")
	seed := flag.Uint64("seed", experiments.DefaultSeed, "queue shuffle seed")
	setup := flag.Bool("setup", false, "print the experimental setup (Table 4.1) and exit")
	csvDir := flag.String("csv", "", "also write each artifact as CSV into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	// writeHeap snapshots the heap to -memprofile (no-op when unset); it
	// runs on both the normal and fatal exit paths, like the CPU profile
	// flush below.
	writeHeap := func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Print(err)
			return
		}
		runtime.GC() // flush unreached allocations so the profile shows live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Print(err)
		}
		if err := f.Close(); err != nil {
			log.Print(err)
		}
	}
	if err := run(*only, *seed, *setup, *csvDir); err != nil {
		// Flush the profiles before exiting: log.Fatal's os.Exit would
		// skip the deferred StopCPUProfile and leave them unparsable.
		pprof.StopCPUProfile()
		writeHeap()
		log.Fatal(err)
	}
	writeHeap()
}

func run(only string, seed uint64, setup bool, csvDir string) error {
	cfg := config.GTX480()
	if setup {
		printSetup(cfg)
		return nil
	}

	start := time.Now()
	log.Printf("initializing pipeline (solo profiles + all-pairs interference) on %s ...", cfg.Name)
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}
	suite.Seed = seed
	log.Printf("pipeline ready in %v", time.Since(start).Round(time.Second))

	var arts []experiments.Artifact
	if only != "" {
		a, err := suite.Run(only)
		if err != nil {
			return err
		}
		arts = []experiments.Artifact{a}
	} else {
		arts, err = suite.All()
		if err != nil {
			return err
		}
	}
	for _, a := range arts {
		fmt.Println(a)
		if csvDir != "" {
			if err := writeCSV(csvDir, a); err != nil {
				return err
			}
		}
	}
	log.Printf("done in %v", time.Since(start).Round(time.Second))
	_ = os.Stdout.Sync()
	return nil
}

func writeCSV(dir string, a experiments.Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.ReplaceAll(a.ID, ".", "_") + ".csv"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return a.WriteCSV(f)
}

func printSetup(cfg config.GPUConfig) {
	fmt.Printf("Experimental setup (Table 4.1)\n")
	fmt.Printf("  GPU architecture    %s\n", cfg.Name)
	fmt.Printf("  # of SMs            %d\n", cfg.NumSMs)
	fmt.Printf("  Core frequency      %d MHz\n", cfg.CoreClockMHz)
	fmt.Printf("  Warps per SM        %d\n", cfg.MaxWarpsPerSM)
	fmt.Printf("  Blocks per SM       %d\n", cfg.MaxBlocksPerSM)
	fmt.Printf("  Shared memory       %d kB\n", cfg.SharedMemPerSM/1024)
	fmt.Printf("  L1 data cache       %d kB per SM\n", cfg.L1.SizeBytes/1024)
	fmt.Printf("  L2 cache            %d kB\n", cfg.L2.SizeBytes/1024)
	fmt.Printf("  Memory partitions   %d\n", cfg.NumMemPartitions)
	fmt.Printf("  Warp scheduler      %s\n", cfg.WarpSched)
	fmt.Printf("  Memory scheduler    %s\n", cfg.DRAM.Sched)
	fmt.Printf("  Peak DRAM bandwidth %.1f GB/s\n", cfg.PeakDRAMBandwidthGBps())
}
