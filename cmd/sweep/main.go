// Command sweep runs a scenario grid — dispatch policy × completion
// engine × roster × arrival process × SLO mode × shard count — over a bounded worker
// pool and collects every cell's summary metrics into one tidy CSV or
// JSON artifact, the Go-native analogue of hand-driving cmd/fleet once
// per configuration. The same binary diffs two such artifacts cell by
// cell (-delta), mirroring scripts/benchdelta for benchmark snapshots.
//
// Usage:
//
//	sweep -policies fcfs,ilp,ilp-smra -engines modeled -slo off,preempt \
//	      -rosters "4xGTX480;2xGTX480,2xSmall-8SM" -arrivals poisson,bursty \
//	      -jobs 64 -rate 0.8 -latency-frac 0.2 -out sweep.csv
//	sweep -config grid.json -out sweep.json
//	sweep -delta baseline.csv new.csv
//
// Axes are comma-separated except -rosters and -chaoses, whose
// elements themselves contain commas ("2xGTX480,2xSmall-8SM";
// "fail@50000:0,restore@200000:0") and are therefore separated by
// semicolons. -config reads the same grid as JSON (see
// internal/sweep.Grid); explicit axis flags override the file's axes.
// -out picks the format by extension (.json = JSON, otherwise CSV);
// without -out the CSV goes to stdout.
//
// Every cell of an arrival kind replays the identical generated
// traffic, so metric differences across cells are pure configuration.
// The whole artifact is deterministic: the same grid (and seed) twice
// is byte-identical, whatever the worker pool did — which is what makes
// -delta meaningful.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	configPath := flag.String("config", "", "read the grid from this JSON file (axis flags override)")
	policies := flag.String("policies", "", "comma-separated dispatch policies (default ilp-smra)")
	engines := flag.String("engines", "", "comma-separated completion engines (default modeled)")
	rosters := flag.String("rosters", "", "semicolon-separated rosters, each COUNTxCONFIG,... (default 4xGTX480)")
	arrivals := flag.String("arrivals", "", "comma-separated arrival processes: poisson, bursty (default poisson)")
	slos := flag.String("slo", "", "comma-separated SLO modes: off, priority, preempt (default off)")
	admissions := flag.String("admissions", "", "comma-separated admission modes: off, reject:MAXWAIT, degrade:MAXWAIT (default off)")
	autoscales := flag.String("autoscales", "", "comma-separated elastic-roster bounds: off or MIN:MAX (default off)")
	chaoses := flag.String("chaoses", "", "semicolon-separated failure schedules: off, KIND@CYCLE:DEV,... traces, or mtbf:MTBF:MTTR[:HORIZON] (default off)")
	shards := flag.String("shards", "", "comma-separated event-loop shard counts for the modeled engine (default 1)")
	nc := flag.Int("nc", 0, "co-run group size per device (0 = default 2)")
	jobs := flag.Int("jobs", 0, "arriving jobs per cell (0 = default 32)")
	rate := flag.Float64("rate", 0, "mean arrival rate in jobs per 1000 cycles (0 = default 0.5)")
	latencyFrac := flag.Float64("latency-frac", 0, "fraction of jobs tagged latency-class")
	deadline := flag.Uint64("deadline", 0, "relative deadline in cycles for latency jobs (0 = default)")
	aging := flag.Float64("aging", 0, "wait-time aging weight for the ILP policies")
	hybridWarm := flag.Int("hybrid-warm", 0, "hybrid engine warm-up runs per composition (0 = default)")
	seed := flag.Uint64("seed", 0, "arrival-stream seed (0 = default 1)")
	workers := flag.Int("workers", 0, "concurrent cells (0 = NumCPU)")
	out := flag.String("out", "", "write the artifact to this file (.json = JSON, else CSV; empty = CSV to stdout)")
	delta := flag.Bool("delta", false, "diff two sweep artifacts: sweep -delta baseline new")
	flag.Parse()

	if *delta {
		if flag.NArg() != 2 {
			log.Fatal("sweep: -delta needs exactly two artifacts: sweep -delta baseline new")
		}
		if err := runDelta(flag.Arg(0), flag.Arg(1)); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() != 0 {
		log.Fatalf("sweep: unexpected arguments %v (grids are spelled with flags or -config)", flag.Args())
	}

	var g sweep.Grid
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(data, &g); err != nil {
			log.Fatalf("sweep: parse %s: %v", *configPath, err)
		}
	}
	axis := func(dst *[]string, csv, sep string) {
		if csv == "" {
			return
		}
		*dst = (*dst)[:0]
		for _, v := range strings.Split(csv, sep) {
			if v = strings.TrimSpace(v); v != "" {
				*dst = append(*dst, v)
			}
		}
	}
	axis(&g.Policies, *policies, ",")
	axis(&g.Engines, *engines, ",")
	axis(&g.Rosters, *rosters, ";")
	axis(&g.Arrivals, *arrivals, ",")
	axis(&g.SLOs, *slos, ",")
	axis(&g.Admissions, *admissions, ",")
	axis(&g.Autoscales, *autoscales, ",")
	axis(&g.Chaoses, *chaoses, ";")
	if *shards != "" {
		g.Shards = g.Shards[:0]
		for _, v := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				log.Fatalf("sweep: -shards entry %q: %v", v, err)
			}
			g.Shards = append(g.Shards, n)
		}
	}
	scalar := func(set bool, apply func()) {
		if set {
			apply()
		}
	}
	scalar(*nc != 0, func() { g.NC = *nc })
	scalar(*jobs != 0, func() { g.Jobs = *jobs })
	scalar(*rate != 0, func() { g.Rate = *rate })
	scalar(*latencyFrac != 0, func() { g.LatencyFrac = *latencyFrac })
	scalar(*deadline != 0, func() { g.Deadline = *deadline })
	scalar(*aging != 0, func() { g.Aging = *aging })
	scalar(*hybridWarm != 0, func() { g.HybridWarm = *hybridWarm })
	scalar(*seed != 0, func() { g.Seed = *seed })

	cells, err := g.Expand()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sweep: %d cells", len(cells))
	start := time.Now()
	r := sweep.Runner{
		Workers: *workers,
		Names:   workloads.Names,
		Roster: func(label string) ([]fleet.DeviceSpec, error) {
			entries, err := fleet.ParseRoster(label)
			if err != nil {
				return nil, err
			}
			// Calibration is disk-cached per device config, shared
			// across rosters that repeat a configuration.
			return fleet.BuildRoster(entries, workloads.All())
		},
		Progress: func(done, total int) { log.Printf("sweep: cell %d/%d done", done, total) },
	}
	art, err := r.Run(g)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sweep: %d cells in %v wall-clock", len(art.Cells), time.Since(start).Round(time.Millisecond))
	if *out == "" {
		if err := art.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if strings.HasSuffix(*out, ".json") {
		err = art.WriteJSON(f)
	} else {
		err = art.WriteCSV(f)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("sweep: wrote %s", *out)
}

// runDelta loads two artifacts and prints their cell-by-cell diff.
func runDelta(basePath, curPath string) error {
	load := func(path string) (*sweep.Artifact, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("sweep: cannot read artifact %s: %w (run sweep -out %s first?)", path, err, path)
		}
		defer f.Close()
		a, err := sweep.Load(f)
		if err != nil {
			return nil, fmt.Errorf("sweep: artifact %s does not parse as a sweep CSV or JSON artifact: %w", path, err)
		}
		return a, nil
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(curPath)
	if err != nil {
		return err
	}
	fmt.Printf("sweep deltas (%s -> %s):\n", basePath, curPath)
	return sweep.Delta(base, cur, os.Stdout)
}
