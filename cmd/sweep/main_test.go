package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// writeArtifact persists a small artifact for the delta tests.
func writeArtifact(t *testing.T, path string, throughput float64) {
	t.Helper()
	a := &sweep.Artifact{
		Params:  []string{"policy"},
		Metrics: []string{"throughput"},
		Cells: []sweep.CellResult{
			{Params: []string{"fcfs"}, Values: []float64{throughput}},
		},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := a.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeltaMissingArtifact(t *testing.T) {
	dir := t.TempDir()
	present := filepath.Join(dir, "base.csv")
	writeArtifact(t, present, 1.0)
	missing := filepath.Join(dir, "nope.csv")
	for _, tc := range []struct{ base, cur string }{
		{missing, present},
		{present, missing},
	} {
		err := runDelta(tc.base, tc.cur)
		if err == nil {
			t.Fatalf("runDelta(%s, %s) succeeded with a missing artifact", tc.base, tc.cur)
		}
		if !strings.Contains(err.Error(), missing) || !strings.Contains(err.Error(), "cannot read artifact") {
			t.Errorf("runDelta(%s, %s) error does not name the missing artifact: %v", tc.base, tc.cur, err)
		}
	}
}

func TestRunDeltaUnparsableArtifact(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.csv")
	writeArtifact(t, base, 1.0)
	garbage := filepath.Join(dir, "garbage.csv")
	if err := os.WriteFile(garbage, []byte("this is not an artifact\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runDelta(base, garbage)
	if err == nil {
		t.Fatal("runDelta accepted an unparsable artifact")
	}
	if !strings.Contains(err.Error(), garbage) || !strings.Contains(err.Error(), "does not parse") {
		t.Errorf("runDelta error does not name the unparsable artifact: %v", err)
	}
}

func TestRunDeltaValidArtifacts(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.csv")
	cur := filepath.Join(dir, "cur.csv")
	writeArtifact(t, base, 1.0)
	writeArtifact(t, cur, 1.25)
	if err := runDelta(base, cur); err != nil {
		t.Fatalf("runDelta on two valid artifacts: %v", err)
	}
}

// TestDeltaMissingArtifactExitCode re-executes the test binary as the
// sweep CLI (main runs in the child) and requires the documented
// contract: a missing -delta artifact is a clear error on stderr and
// exit status 1, not a stack trace or a silent success.
func TestDeltaMissingArtifactExitCode(t *testing.T) {
	if os.Getenv("SWEEP_DELTA_CHILD") == "1" {
		os.Args = []string{"sweep", "-delta", "definitely-missing-base.csv", "definitely-missing-cur.csv"}
		main()
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=TestDeltaMissingArtifactExitCode")
	cmd.Env = append(os.Environ(), "SWEEP_DELTA_CHILD=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("child did not exit with an error (err %v):\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(string(out), "definitely-missing-base.csv") {
		t.Fatalf("stderr does not name the missing artifact:\n%s", out)
	}
}
