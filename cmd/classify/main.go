// Command classify profiles the full workload suite solo and prints the
// reproduction of Table 3.2: each benchmark's DRAM bandwidth, L2→L1
// bandwidth, IPC, memory-to-compute ratio and resulting class.
package main

import (
	"fmt"
	"log"

	"repro/internal/classify"
	"repro/internal/config"
	"repro/internal/profile"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	cfg := config.GTX480()
	prof := profile.New(cfg)
	profiles, err := prof.RunAll(workloads.All(), 0)
	if err != nil {
		log.Fatal(err)
	}
	th := classify.CalibrateThresholds(cfg, profiles)
	fmt.Printf("thresholds: alpha=%.1f GB/s  beta=%.1f GB/s  gamma=%.1f GB/s  epsilon=%.0f IPC\n\n",
		th.AlphaGBps, th.BetaGBps, th.GammaGBps, th.EpsilonIPC)
	fmt.Printf("%-6s %12s %14s %10s %8s  %-5s %s\n",
		"bench", "MB(GB/s)", "L2->L1(GB/s)", "IPC", "R", "class", "paper")
	for _, c := range classify.Table(th, profiles) {
		note := ""
		if want := workloads.ExpectedClass[c.Name]; want != c.Class.String() {
			note = "  << MISMATCH"
		}
		fmt.Printf("%-6s %12.2f %14.2f %10.1f %8.3f  %-5s %s%s\n",
			c.Name, c.Metrics.MemBandwidthGBps, c.Metrics.L2ToL1GBps,
			c.Metrics.IPC, c.Metrics.R, c.Class, workloads.ExpectedClass[c.Name], note)
	}
}
