// Command interference runs the all-pairs co-run campaign and prints the
// per-class average slowdown matrix of Figure 3.4, optionally with every
// underlying pair measurement.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/classify"
	"repro/internal/config"
	"repro/internal/interference"
	"repro/internal/profile"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	pairs := flag.Bool("pairs", false, "also print every pair measurement")
	flag.Parse()

	cfg := config.GTX480()
	prof := profile.New(cfg)
	profiles, err := prof.RunAll(workloads.All(), 0)
	if err != nil {
		log.Fatal(err)
	}
	th := classify.CalibrateThresholds(cfg, profiles)
	classes := make(map[string]classify.Class)
	for _, c := range classify.Table(th, profiles) {
		classes[c.Name] = c.Class
	}
	start := time.Now()
	m, err := interference.Compute(cfg, prof, classes, workloads.All())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("all-pairs campaign (%d co-runs) finished in %v", len(m.Pairs), time.Since(start).Round(time.Second))
	fmt.Println(m)
	if *pairs {
		for _, p := range m.Pairs {
			fmt.Printf("%-6s + %-6s  slowdownA=%.2f slowdownB=%.2f  (co %d vs solo %d / %d)\n",
				p.A, p.B, p.SlowdownA, p.SlowdownB, p.CoRunCycles, p.SoloCyclesA, p.SoloCyclesB)
		}
	}
}
